// Package luqr is a pure-Go implementation of the hybrid LU-QR dense linear
// solvers of Faverge, Herrmann, Langou, Lowery, Robert and Dongarra,
// "Designing LU-QR hybrid solvers for performance and stability"
// (IPDPS 2014, arXiv:1401.5522).
//
// The hybrid algorithm factors a tiled matrix step by step, choosing at
// every panel between a cheap LU elimination (pivoting confined to the
// diagonal domain) and an unconditionally stable QR elimination, driven by
// a robustness criterion with a tunable threshold α:
//
//	a := luqr.NewMatrix(n, n)        // fill a ...
//	b := make([]float64, n)          // fill b ...
//	res, err := luqr.Solve(a, b, luqr.Config{
//		Alg:       luqr.AlgLUQR,
//		NB:        40,
//		Grid:      luqr.NewGrid(4, 4),
//		Criterion: luqr.MaxCriterion(100),
//	})
//	// res.X is the solution; res.Report carries LU/QR step counts, the
//	// HPL3 backward error, the growth factor, and timings.
//
// The package is a facade over the implementation packages: the dense and
// tiled kernels, the dataflow runtime with dynamic task-graph unfolding,
// the robustness criteria, the comparison algorithms (LU NoPiv, LU IncPiv,
// LUPP, HQR, and CALU with tournament pivoting), the test-matrix
// generators, and the discrete-event performance simulator. See README.md
// and DESIGN.md for the architecture and EXPERIMENTS.md for the
// reproduction record.
package luqr

import (
	"math/rand"

	"luqr/internal/core"
	"luqr/internal/criteria"
	"luqr/internal/mat"
	"luqr/internal/matgen"
	"luqr/internal/runtime"
	"luqr/internal/sim"
	"luqr/internal/tile"
	"luqr/internal/tree"
)

// Matrix is a dense row-major matrix; element (i, j) is Data[i*Stride+j].
type Matrix = mat.Matrix

// NewMatrix allocates a zeroed rows×cols dense matrix.
func NewMatrix(rows, cols int) *Matrix { return mat.New(rows, cols) }

// MatrixFromSlice builds a rows×cols matrix from row-major data (copied).
func MatrixFromSlice(rows, cols int, data []float64) *Matrix {
	return mat.FromSlice(rows, cols, data)
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix { return mat.Identity(n) }

// Grid is a virtual p×q process grid; tiles are distributed 2-D
// block-cyclically over it and it determines the diagonal domains of the
// hybrid's LU steps.
type Grid = tile.Grid

// NewGrid returns a p×q grid.
func NewGrid(p, q int) Grid { return tile.NewGrid(p, q) }

// Config configures a factorization (see the field docs on core.Config).
type Config = core.Config

// Result carries the solution, the factored tiles, the run report, and the
// stored transformations (Result.Solve solves further right-hand sides;
// Result.Refine performs iterative refinement).
type Result = core.Result

// Report summarizes a run: per-step LU/QR decisions, the HPL3 backward
// error, the element-growth factor, breakdown detection, and timings.
type Report = core.Report

// Algorithm selects a factorization algorithm.
type Algorithm = core.Algorithm

// The available algorithms.
const (
	// AlgLUQR is the paper's hybrid LU-QR algorithm.
	AlgLUQR = core.LUQR
	// AlgLUNoPiv is LU with pivoting confined to the diagonal tile.
	AlgLUNoPiv = core.LUNoPiv
	// AlgLUIncPiv is tiled LU with incremental (pairwise) pivoting.
	AlgLUIncPiv = core.LUIncPiv
	// AlgLUPP is LU with partial pivoting across the whole panel.
	AlgLUPP = core.LUPP
	// AlgHQR is the hierarchical tiled QR factorization.
	AlgHQR = core.HQR
	// AlgCALU is communication-avoiding LU with tournament pivoting.
	AlgCALU = core.CALU
	// AlgHLU is hierarchical LU with multiple eliminators per panel — the
	// §VII future-work prototype (pairwise-pivoting stability).
	AlgHLU = core.HLU
)

// LUVariant selects the LU-step formulation of the hybrid (§II-C).
type LUVariant = core.LUVariant

// The LU-step variants.
const (
	VariantA1 = core.VarA1
	VariantA2 = core.VarA2
	VariantB1 = core.VarB1
	VariantB2 = core.VarB2
)

// Scope selects the pivot-search region of the hybrid's LU steps.
type Scope = core.Scope

// The pivot scopes.
const (
	ScopeDomain = core.ScopeDomain
	ScopeTile   = core.ScopeTile
)

// Tree selects a QR-step reduction tree.
type Tree = tree.Tree

// The reduction-tree families.
const (
	TreeFlatTS    = tree.FlatTS
	TreeFlatTT    = tree.FlatTT
	TreeBinary    = tree.Binary
	TreeGreedy    = tree.Greedy
	TreeFibonacci = tree.Fibonacci
)

// Criterion decides, per panel step, between an LU and a QR elimination.
type Criterion = criteria.Criterion

// MaxCriterion accepts an LU step iff α·‖(A_kk)⁻¹‖₁⁻¹ ≥ max_{i>k}‖A_ik‖₁
// (growth bound (1+α)^{n−1} on tile norms).
func MaxCriterion(alpha float64) Criterion { return criteria.Max{Alpha: alpha} }

// SumCriterion accepts an LU step iff α·‖(A_kk)⁻¹‖₁⁻¹ ≥ Σ_{i>k}‖A_ik‖₁
// (linear growth for α = 1; always satisfied on block diagonally dominant
// matrices).
func SumCriterion(alpha float64) Criterion { return criteria.Sum{Alpha: alpha} }

// MUMPSCriterion accepts an LU step iff every local pivot dominates the
// growth-scaled off-domain column maximum: α·pivot(j) ≥
// away_max(j)·pivot(j)/local_max(j).
func MUMPSCriterion(alpha float64) Criterion { return criteria.MUMPS{Alpha: alpha} }

// RandomCriterion takes an LU step with probability α%% (seeded via
// Config.Seed) — the paper's control experiment.
func RandomCriterion(alphaPercent float64) Criterion { return criteria.Random{Alpha: alphaPercent} }

// AlwaysLU disables the criterion (α = ∞): every step is an LU step.
func AlwaysLU() Criterion { return criteria.Always{} }

// AlwaysQR forces a QR step everywhere (α = 0): HQR plus the decision path.
func AlwaysQR() Criterion { return criteria.Never{} }

// Solve factors A (augmented with b) with the configured algorithm and
// solves Ax = b. A and b are not modified; N need not be a multiple of
// Config.NB (the system is padded to the next tile boundary).
func Solve(a *Matrix, b []float64, cfg Config) (*Result, error) {
	return core.Run(a, b, cfg)
}

// GenerateMatrix builds one of the named test matrices: "random",
// "diagdom", or any Table III name (hilb, wilkinson, foster, fiedler, …).
// See SpecialMatrices for the full list.
func GenerateMatrix(name string, n int, rng *rand.Rand) (*Matrix, error) {
	ent, err := matgen.ByName(name)
	if err != nil {
		return nil, err
	}
	return ent.Gen(n, rng), nil
}

// SpecialMatrices returns the names and descriptions of the paper's special
// matrix set (Table III plus the Fiedler matrix of §V-C).
func SpecialMatrices() []struct{ Name, Desc string } {
	set := matgen.SpecialSet()
	out := make([]struct{ Name, Desc string }, len(set))
	for i, e := range set {
		out[i] = struct{ Name, Desc string }{e.Name, e.Desc}
	}
	return out
}

// RandSVD returns an n×n matrix with Haar-random singular vectors and a
// prescribed 2-norm condition number (geometric singular-value decay).
func RandSVD(n int, kappa float64, rng *rand.Rand) *Matrix {
	return matgen.RandSVD(n, kappa, matgen.SigmaGeometric, rng)
}

// HPL3 computes the High-Performance-Linpack backward-error metric
// ‖Ax−b‖∞ / (‖A‖∞‖x‖∞·ε·N) used throughout the paper's evaluation.
func HPL3(a *Matrix, x, b []float64) float64 { return mat.HPL3(a, x, b) }

// Machine is a distributed-platform model for the trace simulator.
type Machine = sim.Machine

// Dancer returns the model of the paper's 16-node evaluation platform.
func Dancer() Machine { return sim.Dancer() }

// SimResult summarizes a simulated execution of a recorded task trace.
type SimResult = sim.Result

// Simulate replays the task trace recorded by a Config{Trace: true} run
// (Result.Report.Trace) on the machine model and returns the simulated
// makespan and communication statistics.
func Simulate(trace []*runtime.TraceTask, m Machine) SimResult {
	return sim.Simulate(trace, m, nil)
}

// TraceDOT renders a recorded task trace as a Graphviz digraph (the
// paper's Figure 1 view), optionally clustered by node.
func TraceDOT(trace []*runtime.TraceTask, clusterByNode bool) string {
	return runtime.DOT(trace, clusterByNode)
}
