package tile

import (
	"sync"
	"sync/atomic"
	"time"

	"luqr/internal/mat"
)

// Float32 tile residency: the conversion-amortization layer behind the
// mixed-precision path.
//
// Each tile of a factorization carries one of three precision states:
//
//	f64    — only the float64 array is valid (no live f32 image)
//	clean  — the f32 image is valid and the float64 array holds exactly its
//	         widened values (either may be read; the f64 array is the
//	         epoch's master copy)
//	dirty  — the f32 image is newer than the float64 array (the image is
//	         the truth; the f64 array is the pre-epoch master copy)
//
// A tile is promoted (f64 → clean/dirty, one rounding pass) the first time a
// float32 step touches it and then stays resident across consecutive f32
// steps — kernels read and write the image directly through the resident
// entry points in blas/lapack. It is demoted (dirty → f64, one widening
// pass) only at an epoch boundary: the criterion flips the step back to
// f64, an excursion forces the step to rerun in f64, or the run ends
// (Flush). Because float32 widens to float64 exactly, demotion re-creates
// exactly the float64 values the per-task round/widen kernels of the
// non-resident path would have produced, so results are unchanged — only
// the conversion count drops from once per task to once per tile per epoch.
//
// Counter taxonomy: Epochs counts tile promotions (f64 → resident);
// To32/To64 count the rounding and widening passes (dropping a clean image
// is free and uncounted). The step-resident stack path splits the two
// moments: AcquireRowStack32 counts the rounding pass when it rounds a
// stateF64 tile into the stack, CommitRowStack32 counts the epoch when the
// stack view becomes the tile's image — so an abandoned stack leaves a
// counted rounding pass but no epoch.
type Residency struct {
	a   *Matrix
	rhs *Vector // may be nil

	am [][]entry
	vm []entry

	epochs atomic.Int64 // tile promotions f64 → resident
	to32   atomic.Int64 // rounding passes (promotion with existing f64 content)
	to64   atomic.Int64 // widening passes (demotion of a dirty image)
	convNS atomic.Int64 // wall time spent inside conversion passes
}

const (
	stateF64   int8 = iota // no live image
	stateClean             // image valid, f64 array identical
	stateDirty             // image newer than f64 array
)

type entry struct {
	mu    sync.Mutex
	state int8
	img   *mat.Matrix32 // retained across epochs; may view a committed step stack
}

// Meter accumulates conversion nanoseconds on behalf of one task, so the
// task body can charge them to its trace record. Residency methods accept a
// nil Meter when the caller does not attribute conversion time.
type Meter struct{ NS int64 }

func (m *Meter) add(ns int64) {
	if m != nil {
		m.NS += ns
	}
}

// NewResidency creates the residency tracker for a tiled matrix and an
// optional right-hand side. All tiles start in the f64 state.
func NewResidency(a *Matrix, rhs *Vector) *Residency {
	r := &Residency{a: a, rhs: rhs}
	r.am = make([][]entry, a.MT)
	for i := range r.am {
		r.am[i] = make([]entry, a.NT)
	}
	if rhs != nil {
		r.vm = make([]entry, rhs.MT)
	}
	return r
}

// promote ensures e has a valid image for the f64 tile t, rounding the
// current float64 content unless the caller will overwrite the whole image.
func (r *Residency) promote(e *entry, t *mat.Matrix, rows, cols int, round bool, m *Meter) {
	if e.img == nil {
		e.img = mat.NewMatrix32(rows, cols)
	}
	r.epochs.Add(1)
	if round {
		start := time.Now()
		e.img.RoundFrom(t)
		ns := time.Since(start).Nanoseconds()
		r.to32.Add(1)
		r.convNS.Add(ns)
		m.add(ns)
	}
}

// demote widens a dirty image back into the f64 tile.
func (r *Residency) demote(e *entry, t *mat.Matrix, m *Meter) {
	start := time.Now()
	e.img.WidenInto(t)
	ns := time.Since(start).Nanoseconds()
	r.to64.Add(1)
	r.convNS.Add(ns)
	m.add(ns)
}

func (r *Residency) read32(e *entry, t *mat.Matrix, m *Meter) *mat.Matrix32 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.state == stateF64 {
		r.promote(e, t, t.Rows, t.Cols, true, m)
		e.state = stateClean
	}
	return e.img
}

func (r *Residency) write32(e *entry, t *mat.Matrix, m *Meter) (*mat.Matrix32, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	wasDirty := e.state == stateDirty
	if e.state == stateF64 {
		r.promote(e, t, t.Rows, t.Cols, true, m)
	}
	e.state = stateDirty
	return e.img, wasDirty
}

func (r *Residency) ensureF64(e *entry, t *mat.Matrix, m *Meter) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.state == stateDirty {
		r.demote(e, t, m)
	}
	e.state = stateF64
}

func (r *Residency) discard32(e *entry) {
	e.mu.Lock()
	e.state = stateF64
	e.mu.Unlock()
}

// Read32 returns tile (i, j)'s f32 image for read-only kernel access,
// promoting the tile if this is its first resident touch of the epoch.
func (r *Residency) Read32(i, j int, m *Meter) *mat.Matrix32 {
	return r.read32(&r.am[i][j], r.a.Tile(i, j), m)
}

// Write32 returns tile (i, j)'s f32 image for read-write kernel access and
// reports whether the image was already dirty before this acquisition — the
// excursion harness uses that to pick between snapshot-restore (dirty
// before: the f64 array predates the epoch) and plain discard (clean or f64
// before: the f64 array is the master copy).
func (r *Residency) Write32(i, j int, m *Meter) (*mat.Matrix32, bool) {
	return r.write32(&r.am[i][j], r.a.Tile(i, j), m)
}

// EnsureF64 makes tile (i, j)'s float64 array current and drops the image
// from service: a dirty image is widened back (one counted demotion), a
// clean image is dropped for free. Every f64 task must call this for every
// tile it touches before running; on tiles already in the f64 state it is a
// single mutex-protected state check.
func (r *Residency) EnsureF64(i, j int, m *Meter) {
	r.ensureF64(&r.am[i][j], r.a.Tile(i, j), m)
}

// Discard32 invalidates tile (i, j)'s image without conversion, returning
// the tile to the f64 state. Only valid when the f64 array is known current
// (the excursion harness's clean/f64-before restore rule).
func (r *Residency) Discard32(i, j int) {
	r.discard32(&r.am[i][j])
}

// StoreF64 overwrites tile (i, j)'s float64 array with src and invalidates
// any image — the resident-safe form of Tile(i,j).CopyFrom(src) used by the
// QR-path restore task.
func (r *Residency) StoreF64(i, j int, src *mat.Matrix) {
	e := &r.am[i][j]
	e.mu.Lock()
	e.state = stateF64
	r.a.Tile(i, j).CopyFrom(src)
	e.mu.Unlock()
}

// ReadVec32, WriteVec32, EnsureVecF64, DiscardVec32 are the right-hand-side
// analogues of the matrix-tile methods.
func (r *Residency) ReadVec32(i int, m *Meter) *mat.Matrix32 {
	return r.read32(&r.vm[i], r.rhs.Tile(i), m)
}

func (r *Residency) WriteVec32(i int, m *Meter) (*mat.Matrix32, bool) {
	return r.write32(&r.vm[i], r.rhs.Tile(i), m)
}

func (r *Residency) EnsureVecF64(i int, m *Meter) {
	r.ensureF64(&r.vm[i], r.rhs.Tile(i), m)
}

func (r *Residency) DiscardVec32(i int) {
	r.discard32(&r.vm[i])
}

// Read-through queries: criterion and growth-probe tasks need norms of
// tiles that may be resident without disturbing their state. A dirty tile
// is measured over its widened image (bit-identical to what demotion would
// produce); otherwise the float64 array is current and is used directly.

// TileNorm1 returns ‖A_ij‖₁ over the tile's current values.
func (r *Residency) TileNorm1(i, j int) float64 {
	e := &r.am[i][j]
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.state == stateDirty {
		return e.img.Norm1()
	}
	return r.a.Tile(i, j).Norm1()
}

// TileColAbsMax returns max_r |A_ij(r, col)| over the tile's current values.
func (r *Residency) TileColAbsMax(i, j, col int) float64 {
	e := &r.am[i][j]
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.state == stateDirty {
		return e.img.ColAbsMax(col)
	}
	return r.a.Tile(i, j).ColAbsMax(col)
}

// TileNormMax returns max |A_ij| over the tile's current values.
func (r *Residency) TileNormMax(i, j int) float64 {
	e := &r.am[i][j]
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.state == stateDirty {
		return e.img.NormMax()
	}
	return r.a.Tile(i, j).NormMax()
}

// CopyTileInto copies tile (i, j)'s current values into dst (widening a
// dirty image) without changing the tile's state — the backup task's
// read-through.
func (r *Residency) CopyTileInto(dst *mat.Matrix, i, j int) {
	e := &r.am[i][j]
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.state == stateDirty {
		e.img.WidenInto(dst)
		return
	}
	dst.CopyFrom(r.a.Tile(i, j))
}

// Step-resident stacks. A SWPTRSM or panel-factor task works on a stacked
// row panel — column j's tiles at rows, laid out contiguously. Acquire
// builds the stack reading through each tile's state; Commit rebinds the
// tiles' images to views of the stack, so the stack IS the resident storage
// from then on: no scatter-back copy, and a stateF64 tile pays exactly one
// rounding pass per (tile, step) — at acquire — no matter how many stack
// views later kernels touch.

// AcquireRowStack32 returns the stacked float32 panel of column j's tiles
// at rows: a live image is copied, a stateF64 tile is rounded directly into
// its stack slot. Only the rounding branches are timed and charged to the
// conversion meter — copies of already-resident images are plain data
// movement, not conversion. No tile state changes until CommitRowStack32,
// so a caller that abandons the stack (excursion demotion, singular factor)
// leaves every tile exactly as it found it; the rounding work it did is
// still counted, honestly, as conversion that ran.
//
// The stack is allocated fresh, never pooled: after Commit the tiles'
// images alias its views, and the residency entries own its lifetime from
// then on.
func (r *Residency) AcquireRowStack32(rows []int, j int, m *Meter) *mat.Matrix32 {
	nb := r.a.NB
	s := mat.NewMatrix32(len(rows)*nb, nb)
	for ri, i := range rows {
		e := &r.am[i][j]
		dst := s.View(ri*nb, 0, nb, nb)
		e.mu.Lock()
		if e.state == stateF64 {
			start := time.Now()
			dst.RoundFrom(r.a.Tile(i, j))
			ns := time.Since(start).Nanoseconds()
			r.to32.Add(1)
			r.convNS.Add(ns)
			m.add(ns)
		} else {
			dst.CopyFrom(e.img)
		}
		e.mu.Unlock()
	}
	return s
}

// CommitRowStack32 installs an acquired (and now factored or updated) stack
// as column j's resident images: each tile's image is rebound to its stack
// view and marked dirty. A tile entering residency here counts an epoch;
// its rounding pass was already counted at acquire time, and a tile that
// was already resident continues its epoch with no conversion at all.
func (r *Residency) CommitRowStack32(s *mat.Matrix32, rows []int, j int) {
	nb := r.a.NB
	for ri, i := range rows {
		e := &r.am[i][j]
		e.mu.Lock()
		if e.state == stateF64 {
			r.epochs.Add(1)
		}
		e.img = s.View(ri*nb, 0, nb, nb)
		e.state = stateDirty
		e.mu.Unlock()
	}
}

// AcquireVecStack32 is the right-hand-side analogue of AcquireRowStack32.
func (r *Residency) AcquireVecStack32(rows []int, m *Meter) *mat.Matrix32 {
	nb, w := r.rhs.NB, r.rhs.W
	s := mat.NewMatrix32(len(rows)*nb, w)
	for ri, i := range rows {
		e := &r.vm[i]
		dst := s.View(ri*nb, 0, nb, w)
		e.mu.Lock()
		if e.state == stateF64 {
			start := time.Now()
			dst.RoundFrom(r.rhs.Tile(i))
			ns := time.Since(start).Nanoseconds()
			r.to32.Add(1)
			r.convNS.Add(ns)
			m.add(ns)
		} else {
			dst.CopyFrom(e.img)
		}
		e.mu.Unlock()
	}
	return s
}

// CommitVecStack32 is the right-hand-side analogue of CommitRowStack32.
func (r *Residency) CommitVecStack32(s *mat.Matrix32, rows []int) {
	nb, w := r.rhs.NB, r.rhs.W
	for ri, i := range rows {
		e := &r.vm[i]
		e.mu.Lock()
		if e.state == stateF64 {
			r.epochs.Add(1)
		}
		e.img = s.View(ri*nb, 0, nb, w)
		e.state = stateDirty
		e.mu.Unlock()
	}
}

// Flush demotes every dirty tile and drops every image, leaving the plain
// float64 arrays authoritative. Called once after the dataflow engine
// drains, before growth computation, solves, and serialization — which is
// why stored factorizations and digests never see residency.
func (r *Residency) Flush(m *Meter) {
	for i := range r.am {
		for j := range r.am[i] {
			r.ensureF64(&r.am[i][j], r.a.Tile(i, j), m)
		}
	}
	for i := range r.vm {
		r.ensureF64(&r.vm[i], r.rhs.Tile(i), m)
	}
}

// Counters returns the lifetime conversion counters: tile promotions
// (epochs), rounding passes (to32), and widening passes (to64).
func (r *Residency) Counters() (epochs, to32, to64 int64) {
	return r.epochs.Load(), r.to32.Load(), r.to64.Load()
}

// ConvNS returns the total wall time spent in conversion passes, in
// nanoseconds.
func (r *Residency) ConvNS() int64 { return r.convNS.Load() }
