package tile

import (
	"math/rand"
	"testing"
	"testing/quick"

	"luqr/internal/mat"
)

func randDense(rng *rand.Rand, n int) *mat.Matrix {
	m := mat.New(n, n)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestGridOwnerBlockCyclic(t *testing.T) {
	g := NewGrid(4, 4)
	if g.Nodes() != 16 {
		t.Fatal("Nodes")
	}
	// Paper layout: owner is periodic with period p in rows, q in cols.
	for i := 0; i < 12; i++ {
		for j := 0; j < 12; j++ {
			if g.Owner(i, j) != g.Owner(i+4, j) || g.Owner(i, j) != g.Owner(i, j+4) {
				t.Fatal("block-cyclic periodicity violated")
			}
		}
	}
	if g.Owner(0, 0) != 0 || g.Owner(1, 0) != 4 || g.Owner(0, 1) != 1 {
		t.Fatal("owner rank layout unexpected")
	}
}

func TestGridOwnerBalance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, q := 1+rng.Intn(4), 1+rng.Intn(4)
		g := NewGrid(p, q)
		nt := p * q * (1 + rng.Intn(3))
		counts := make([]int, g.Nodes())
		for i := 0; i < nt; i++ {
			for j := 0; j < nt; j++ {
				counts[g.Owner(i, j)]++
			}
		}
		// With nt a multiple of p and q, the distribution is perfectly even.
		want := nt * nt / g.Nodes()
		for _, c := range counts {
			if c != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDiagonalDomain(t *testing.T) {
	g := NewGrid(4, 1)
	rows := g.DiagonalDomain(2, 10)
	want := []int{2, 6}
	if len(rows) != len(want) {
		t.Fatalf("domain %v, want %v", rows, want)
	}
	for i := range rows {
		if rows[i] != want[i] {
			t.Fatalf("domain %v, want %v", rows, want)
		}
	}
	// Every domain row must be owned by the diagonal owner.
	for k := 0; k < 10; k++ {
		for _, i := range g.DiagonalDomain(k, 10) {
			if g.Owner(i, k) != g.Owner(k, k) {
				t.Fatalf("row %d of domain %d not on diagonal node", i, k)
			}
		}
	}
}

func TestPanelDomainsPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(5)
		g := NewGrid(p, 1+rng.Intn(3))
		mt := 1 + rng.Intn(12)
		k := rng.Intn(mt)
		doms := g.PanelDomains(k, mt)
		seen := map[int]bool{}
		for d, rows := range doms {
			if len(rows) == 0 {
				return false
			}
			r0 := rows[0] % g.P
			for _, i := range rows {
				if i < k || i >= mt || seen[i] || i%g.P != r0 {
					return false
				}
				seen[i] = true
			}
			// The first listed domain must be the diagonal domain.
			if d == 0 && r0 != k%g.P {
				return false
			}
		}
		return len(seen) == mt-k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFromDenseToDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, cfg := range [][2]int{{1, 4}, {3, 2}, {5, 8}} {
		nt, nb := cfg[0], cfg[1]
		a := randDense(rng, nt*nb)
		tm := FromDense(a, nb)
		if tm.MT != nt || tm.NT != nt || tm.NB != nb || tm.N() != nt*nb {
			t.Fatalf("shape %d,%d,%d", tm.MT, tm.NT, tm.NB)
		}
		back := tm.ToDense()
		if !mat.Equal(a, back) {
			t.Fatalf("round trip failed for nt=%d nb=%d", nt, nb)
		}
	}
}

func TestFromDenseRejectsNonMultiple(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromDense(mat.New(10, 10), 4)
}

func TestTileAliasesMatrix(t *testing.T) {
	tm := New(2, 2, 3)
	tm.Tile(1, 1).Set(0, 0, 42)
	if tm.ToDense().At(3, 3) != 42 {
		t.Fatal("tile write not reflected in dense view")
	}
}

func TestNorm1MatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randDense(rng, 12)
	tm := FromDense(a, 4)
	if tm.Norm1() != a.Norm1() {
		t.Fatal("tiled Norm1 mismatch")
	}
	if tm.TileNorm1(1, 2) != a.View(4, 8, 4, 4).Norm1() {
		t.Fatal("TileNorm1 mismatch")
	}
}

func TestStackUnstackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randDense(rng, 20)
	tm := FromDense(a, 4)
	orig := tm.Clone()
	rows := []int{0, 2, 4}
	s := tm.StackRows(rows, 1)
	if s.Rows != 12 || s.Cols != 4 {
		t.Fatalf("stack shape %dx%d", s.Rows, s.Cols)
	}
	// Scramble then restore.
	for i := range s.Data {
		s.Data[i] *= 2
	}
	tm.UnstackRows(s, rows, 1)
	for _, i := range rows {
		for r := 0; r < 4; r++ {
			for c := 0; c < 4; c++ {
				if tm.Tile(i, 1).At(r, c) != 2*orig.Tile(i, 1).At(r, c) {
					t.Fatal("unstack placed wrong values")
				}
			}
		}
	}
	// Other tiles untouched.
	if !mat.Equal(tm.Tile(1, 1), orig.Tile(1, 1)) {
		t.Fatal("unstack touched unrelated tile")
	}
}

func TestCloneIndependent(t *testing.T) {
	tm := New(2, 2, 2)
	c := tm.Clone()
	c.Tile(0, 0).Set(0, 0, 5)
	if tm.Tile(0, 0).At(0, 0) != 0 {
		t.Fatal("clone shares tiles")
	}
}

func TestVectorRoundTrip(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6}
	v := VectorFromSlice(x, 2)
	if v.MT != 3 || v.W != 1 {
		t.Fatalf("vector shape %d %d", v.MT, v.W)
	}
	got := v.ToSlice()
	for i := range x {
		if got[i] != x[i] {
			t.Fatal("vector round trip failed")
		}
	}
}

func TestVectorStackUnstack(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	v := VectorFromSlice(x, 2)
	s := v.StackRows([]int{1, 3})
	if s.At(0, 0) != 3 || s.At(1, 0) != 4 || s.At(2, 0) != 7 || s.At(3, 0) != 8 {
		t.Fatalf("stacked vector wrong: %v", s.Data)
	}
	for i := range s.Data {
		s.Data[i] = -s.Data[i]
	}
	v.UnstackRows(s, []int{1, 3})
	got := v.ToSlice()
	want := []float64{1, 2, -3, -4, 5, 6, -7, -8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("unstacked vector %v", got)
		}
	}
}

func TestVectorClone(t *testing.T) {
	v := VectorFromSlice([]float64{1, 2}, 2)
	c := v.Clone()
	c.Tile(0).Set(0, 0, 9)
	if v.Tile(0).At(0, 0) != 1 {
		t.Fatal("vector clone shares tiles")
	}
}
