// Package tile provides the tiled-matrix representation used by all the
// factorization algorithms: an n×n grid of nb×nb dense tiles, together with
// the standard 2-D block-cyclic distribution of tiles onto a virtual p×q
// process grid (§II of the paper).
package tile

import (
	"fmt"

	"luqr/internal/mat"
)

// Grid is a virtual p×q process grid. Tile (i, j) is owned by process
// (i mod p, j mod q), the classical 2-D block-cyclic distribution that
// balances load for both the LU and the QR steps.
type Grid struct {
	P int // process rows
	Q int // process columns
}

// NewGrid validates and returns a p×q grid.
func NewGrid(p, q int) Grid {
	if p < 1 || q < 1 {
		panic(fmt.Sprintf("tile: invalid grid %dx%d", p, q))
	}
	return Grid{P: p, Q: q}
}

// Nodes returns the number of processes in the grid.
func (g Grid) Nodes() int { return g.P * g.Q }

// Owner returns the rank (0..P·Q−1) owning tile (i, j).
func (g Grid) Owner(i, j int) int {
	return (i%g.P)*g.Q + j%g.Q
}

// OwnerRow returns the grid row of the process owning tile row i.
func (g Grid) OwnerRow(i int) int { return i % g.P }

// DiagonalDomain returns the rows of panel k that live on the node owning
// the diagonal tile (k, k): all i in [k, mt) with owner(i, k) == owner(k, k).
// These are the rows among which the LU step may pivot without inter-node
// communication.
func (g Grid) DiagonalDomain(k, mt int) []int {
	var rows []int
	for i := k; i < mt; i += 1 {
		if i%g.P == k%g.P {
			rows = append(rows, i)
		}
	}
	return rows
}

// PanelDomains groups the rows i in [k, mt) of panel k by owning grid row,
// in order of first appearance (the diagonal domain first). Each group is
// one "domain" in the paper's sense: the set of panel tiles local to one
// node row.
func (g Grid) PanelDomains(k, mt int) [][]int {
	order := make([]int, 0, g.P)
	byRow := make(map[int][]int)
	for i := k; i < mt; i++ {
		r := i % g.P
		if _, seen := byRow[r]; !seen {
			order = append(order, r)
		}
		byRow[r] = append(byRow[r], i)
	}
	out := make([][]int, 0, len(order))
	for _, r := range order {
		out = append(out, byRow[r])
	}
	return out
}

// Matrix is a tiled matrix: MT×NT tiles, each NB×NB. Tiles are individually
// allocated so that a task runtime can treat each as an independent datum.
type Matrix struct {
	MT, NT int // tiles per column / per row
	NB     int // tile order
	Tiles  [][]*mat.Matrix
}

// New allocates a zeroed tiled matrix.
func New(mt, nt, nb int) *Matrix {
	if mt < 0 || nt < 0 || nb < 1 {
		panic(fmt.Sprintf("tile: invalid tiled shape %dx%d nb=%d", mt, nt, nb))
	}
	t := &Matrix{MT: mt, NT: nt, NB: nb, Tiles: make([][]*mat.Matrix, mt)}
	for i := range t.Tiles {
		t.Tiles[i] = make([]*mat.Matrix, nt)
		for j := range t.Tiles[i] {
			t.Tiles[i][j] = mat.New(nb, nb)
		}
	}
	return t
}

// FromDense tiles an N×N dense matrix with tile order nb. N must be a
// multiple of nb (the paper makes the same simplifying assumption, §II-D.2).
func FromDense(a *mat.Matrix, nb int) *Matrix {
	if a.Rows%nb != 0 || a.Cols%nb != 0 {
		panic(fmt.Sprintf("tile: %dx%d not tileable by nb=%d", a.Rows, a.Cols, nb))
	}
	t := New(a.Rows/nb, a.Cols/nb, nb)
	for i := 0; i < t.MT; i++ {
		for j := 0; j < t.NT; j++ {
			t.Tiles[i][j].CopyFrom(a.View(i*nb, j*nb, nb, nb))
		}
	}
	return t
}

// ToDense reassembles the dense matrix.
func (t *Matrix) ToDense() *mat.Matrix {
	a := mat.New(t.MT*t.NB, t.NT*t.NB)
	for i := 0; i < t.MT; i++ {
		for j := 0; j < t.NT; j++ {
			a.View(i*t.NB, j*t.NB, t.NB, t.NB).CopyFrom(t.Tiles[i][j])
		}
	}
	return a
}

// Tile returns tile (i, j).
func (t *Matrix) Tile(i, j int) *mat.Matrix {
	if i < 0 || i >= t.MT || j < 0 || j >= t.NT {
		panic(fmt.Sprintf("tile: Tile(%d,%d) out of range %dx%d", i, j, t.MT, t.NT))
	}
	return t.Tiles[i][j]
}

// N returns the dense order of a square tiled matrix.
func (t *Matrix) N() int { return t.NT * t.NB }

// Clone deep-copies the tiled matrix.
func (t *Matrix) Clone() *Matrix {
	c := New(t.MT, t.NT, t.NB)
	for i := 0; i < t.MT; i++ {
		for j := 0; j < t.NT; j++ {
			c.Tiles[i][j].CopyFrom(t.Tiles[i][j])
		}
	}
	return c
}

// Norm1 returns the induced 1-norm of the full matrix.
func (t *Matrix) Norm1() float64 { return t.ToDense().Norm1() }

// TileNorm1 returns ‖A_ij‖₁ of a single tile — the quantity exchanged by the
// Max and Sum criteria.
func (t *Matrix) TileNorm1(i, j int) float64 { return t.Tile(i, j).Norm1() }

// StackRows copies the tiles (rows[0], j), (rows[1], j), … into a newly
// allocated (len(rows)·NB)×NB matrix — the "stacked domain panel" that the
// LU step factors with partial pivoting.
func (t *Matrix) StackRows(rows []int, j int) *mat.Matrix {
	s := mat.New(len(rows)*t.NB, t.NB)
	for r, i := range rows {
		s.View(r*t.NB, 0, t.NB, t.NB).CopyFrom(t.Tile(i, j))
	}
	return s
}

// StackRowsInto copies the tiles (rows[0], j), (rows[1], j), … into the
// caller-provided (len(rows)·NB)×NB matrix s — the allocation-free variant of
// StackRows for pooled workspaces. Every element of s is overwritten, so an
// unzeroed pooled buffer is safe.
func (t *Matrix) StackRowsInto(s *mat.Matrix, rows []int, j int) {
	if s.Rows != len(rows)*t.NB || s.Cols != t.NB {
		panic(fmt.Sprintf("tile: StackRowsInto shape %dx%d for %d rows nb=%d", s.Rows, s.Cols, len(rows), t.NB))
	}
	for r, i := range rows {
		s.View(r*t.NB, 0, t.NB, t.NB).CopyFrom(t.Tile(i, j))
	}
}

// UnstackRows scatters a stacked matrix produced by StackRows back into the
// tiles (rows[r], j).
func (t *Matrix) UnstackRows(s *mat.Matrix, rows []int, j int) {
	if s.Rows != len(rows)*t.NB || s.Cols != t.NB {
		panic(fmt.Sprintf("tile: UnstackRows shape %dx%d for %d rows nb=%d", s.Rows, s.Cols, len(rows), t.NB))
	}
	for r, i := range rows {
		t.Tile(i, j).CopyFrom(s.View(r*t.NB, 0, t.NB, t.NB))
	}
}

// Vector is a tiled column vector: MT tiles of shape NB×W. It carries the
// right-hand side(s) through the factorization (the paper augments A with b,
// §II-D.1).
type Vector struct {
	MT, NB, W int
	Tiles     []*mat.Matrix
}

// NewVector allocates a zeroed tiled vector of width w.
func NewVector(mt, nb, w int) *Vector {
	v := &Vector{MT: mt, NB: nb, W: w, Tiles: make([]*mat.Matrix, mt)}
	for i := range v.Tiles {
		v.Tiles[i] = mat.New(nb, w)
	}
	return v
}

// VectorFromSlice tiles a dense vector (width 1).
func VectorFromSlice(x []float64, nb int) *Vector {
	if len(x)%nb != 0 {
		panic(fmt.Sprintf("tile: vector length %d not tileable by %d", len(x), nb))
	}
	v := NewVector(len(x)/nb, nb, 1)
	for i := 0; i < v.MT; i++ {
		for r := 0; r < nb; r++ {
			v.Tiles[i].Set(r, 0, x[i*nb+r])
		}
	}
	return v
}

// ToSlice flattens a width-1 tiled vector.
func (v *Vector) ToSlice() []float64 {
	if v.W != 1 {
		panic("tile: ToSlice on multi-column vector")
	}
	x := make([]float64, v.MT*v.NB)
	for i := 0; i < v.MT; i++ {
		for r := 0; r < v.NB; r++ {
			x[i*v.NB+r] = v.Tiles[i].At(r, 0)
		}
	}
	return x
}

// Tile returns tile i of the vector.
func (v *Vector) Tile(i int) *mat.Matrix {
	if i < 0 || i >= v.MT {
		panic(fmt.Sprintf("tile: Vector.Tile(%d) out of range %d", i, v.MT))
	}
	return v.Tiles[i]
}

// Clone deep-copies the vector.
func (v *Vector) Clone() *Vector {
	c := NewVector(v.MT, v.NB, v.W)
	for i := range v.Tiles {
		c.Tiles[i].CopyFrom(v.Tiles[i])
	}
	return c
}

// StackRows stacks vector tiles rows[0..] into one (len·NB)×W matrix.
func (v *Vector) StackRows(rows []int) *mat.Matrix {
	s := mat.New(len(rows)*v.NB, v.W)
	for r, i := range rows {
		s.View(r*v.NB, 0, v.NB, v.W).CopyFrom(v.Tile(i))
	}
	return s
}

// StackRowsInto copies vector tiles rows[0..] into the caller-provided
// (len·NB)×W matrix s — the allocation-free variant of StackRows. Every
// element of s is overwritten, so an unzeroed pooled buffer is safe.
func (v *Vector) StackRowsInto(s *mat.Matrix, rows []int) {
	if s.Rows != len(rows)*v.NB || s.Cols != v.W {
		panic(fmt.Sprintf("tile: Vector.StackRowsInto shape %dx%d for %d rows nb=%d w=%d", s.Rows, s.Cols, len(rows), v.NB, v.W))
	}
	for r, i := range rows {
		s.View(r*v.NB, 0, v.NB, v.W).CopyFrom(v.Tile(i))
	}
}

// UnstackRows scatters a stacked matrix back into vector tiles.
func (v *Vector) UnstackRows(s *mat.Matrix, rows []int) {
	for r, i := range rows {
		v.Tile(i).CopyFrom(s.View(r*v.NB, 0, v.NB, v.W))
	}
}
