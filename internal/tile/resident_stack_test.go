package tile

import (
	"math/rand"
	"testing"
)

// Accounting contract of the step-resident stack API: acquiring a stack of
// stateF64 tiles counts one rounding pass per tile (and no epochs — those
// belong to commit), committing counts one epoch per newly resident tile,
// and a second acquire+commit over the now-resident column converts nothing
// at all. Values must read through exactly: a committed stack's views ARE
// the images, and EnsureF64 must widen them back bit-identically.
func TestAcquireCommitRowStackAccounting(t *testing.T) {
	const nb, mt, nt = 8, 4, 4
	rng := rand.New(rand.NewSource(41))
	a := New(mt, nt, nb)
	for i := 0; i < mt; i++ {
		for j := 0; j < nt; j++ {
			tl := a.Tile(i, j)
			for r := 0; r < nb; r++ {
				row := tl.Row(r)
				for c := range row {
					row[c] = rng.NormFloat64()
				}
			}
		}
	}
	res := NewResidency(a, nil)
	rows := []int{1, 2, 3}
	j := 2
	m := &Meter{}

	s := res.AcquireRowStack32(rows, j, m)
	epochs, to32, to64 := res.Counters()
	if epochs != 0 || to32 != int64(len(rows)) || to64 != 0 {
		t.Fatalf("after acquire: epochs=%d to32=%d to64=%d, want 0/%d/0", epochs, to32, to64, len(rows))
	}
	if m.NS <= 0 || res.ConvNS() < m.NS {
		t.Fatalf("acquire rounding passes not timed: meter=%dns convNS=%dns", m.NS, res.ConvNS())
	}
	// The stack must hold the rounded tiles.
	for ri, i := range rows {
		for r := 0; r < nb; r++ {
			for c := 0; c < nb; c++ {
				if s.At(ri*nb+r, c) != float32(a.Tile(i, j).At(r, c)) {
					t.Fatalf("stack row %d (tile %d) not the rounded tile", ri, i)
				}
			}
		}
	}

	// Abandoning an acquired stack must leave the tiles untouched: a fresh
	// acquire still sees stateF64 tiles and rounds again.
	_ = res.AcquireRowStack32(rows, j, nil)
	if _, to32b, _ := res.Counters(); to32b != 2*int64(len(rows)) {
		t.Fatalf("abandoned stack changed tile state: to32=%d want %d", to32b, 2*len(rows))
	}

	res.CommitRowStack32(s, rows, j)
	epochs, to32, to64 = res.Counters()
	if epochs != int64(len(rows)) || to32 != 2*int64(len(rows)) || to64 != 0 {
		t.Fatalf("after commit: epochs=%d to32=%d to64=%d", epochs, to32, to64)
	}

	// Mutate through the stack; reads must see it (the views are the images).
	s.Set(0, 0, 7.5)
	if got := res.Read32(rows[0], j, nil); got.At(0, 0) != 7.5 {
		t.Fatalf("committed stack view is not the tile image: Read32 saw %v", got.At(0, 0))
	}

	// Re-acquire + commit over the resident column: pure copies, no new
	// rounding passes, no new epochs.
	s2 := res.AcquireRowStack32(rows, j, nil)
	res.CommitRowStack32(s2, rows, j)
	epochs, to32, to64 = res.Counters()
	if epochs != int64(len(rows)) || to32 != 2*int64(len(rows)) || to64 != 0 {
		t.Fatalf("resident re-acquire converted: epochs=%d to32=%d to64=%d", epochs, to32, to64)
	}
	if got := res.Read32(rows[0], j, nil); got.At(0, 0) != 7.5 {
		t.Fatalf("re-committed stack lost the image value: %v", got.At(0, 0))
	}

	// Demotion widens the stack views back into the f64 tiles.
	for _, i := range rows {
		res.EnsureF64(i, j, nil)
	}
	if a.Tile(rows[0], j).At(0, 0) != 7.5 {
		t.Fatalf("EnsureF64 did not widen the committed stack view")
	}
	epochs, to32, to64 = res.Counters()
	if to64 != int64(len(rows)) {
		t.Fatalf("demotion passes: to64=%d want %d", to64, len(rows))
	}
}

// TestAcquireCommitVecStackAccounting is the right-hand-side analogue.
func TestAcquireCommitVecStackAccounting(t *testing.T) {
	const nb, mt, w = 8, 4, 3
	rng := rand.New(rand.NewSource(43))
	a := New(mt, mt, nb)
	rhs := NewVector(mt, nb, w)
	for i := 0; i < mt; i++ {
		tl := rhs.Tile(i)
		for r := 0; r < nb; r++ {
			row := tl.Row(r)
			for c := range row {
				row[c] = rng.NormFloat64()
			}
		}
	}
	res := NewResidency(a, rhs)
	rows := []int{0, 2}

	s := res.AcquireVecStack32(rows, nil)
	if epochs, to32, _ := res.Counters(); epochs != 0 || to32 != int64(len(rows)) {
		t.Fatalf("after acquire: epochs=%d to32=%d", epochs, to32)
	}
	res.CommitVecStack32(s, rows)
	if epochs, to32, _ := res.Counters(); epochs != int64(len(rows)) || to32 != int64(len(rows)) {
		t.Fatalf("after commit: epochs=%d to32=%d", epochs, to32)
	}
	s.Set(nb, 1, -2.25) // tile rows[1], row 0
	if got := res.ReadVec32(rows[1], nil); got.At(0, 1) != -2.25 {
		t.Fatalf("committed vec stack view is not the tile image")
	}
	s2 := res.AcquireVecStack32(rows, nil)
	res.CommitVecStack32(s2, rows)
	if epochs, to32, _ := res.Counters(); epochs != int64(len(rows)) || to32 != int64(len(rows)) {
		t.Fatalf("resident vec re-acquire converted: epochs=%d to32=%d", epochs, to32)
	}
	var m Meter
	res.Flush(&m)
	if rhs.Tile(rows[1]).At(0, 1) != -2.25 {
		t.Fatalf("Flush did not widen the committed vec stack view")
	}
}
