// Package dist models the distributed-memory aspects of the reproduction:
// which nodes participate in a panel, and the Bruck all-reduce schedule the
// paper uses to exchange criterion data among the nodes hosting panel tiles
// (§III: "collected and exchanged (using a Bruck's all-reduce algorithm)
// between all nodes hosting at least one tile of the panel").
//
// The actual numerical work runs in shared memory; this package produces the
// message schedules that the discrete-event simulator charges for, so the
// simulated performance includes the criterion-exchange cost exactly where
// the paper's implementation pays it.
package dist

import (
	"sort"

	"luqr/internal/runtime"
	"luqr/internal/tile"
)

// PanelNodes returns the sorted set of node ranks hosting at least one tile
// of panel k (rows k..mt−1 of column k) under grid g.
func PanelNodes(g tile.Grid, k, mt int) []int {
	seen := map[int]bool{}
	var nodes []int
	for i := k; i < mt; i++ {
		r := g.Owner(i, k)
		if !seen[r] {
			seen[r] = true
			nodes = append(nodes, r)
		}
	}
	sort.Ints(nodes)
	return nodes
}

// AllReduceRounds returns ⌈log₂ p⌉, the number of communication rounds of a
// Bruck all-reduce among p participants.
func AllReduceRounds(p int) int {
	r := 0
	for (1 << r) < p {
		r++
	}
	return r
}

// BruckAllReduce returns the messages of a Bruck all-reduce of `bytes` bytes
// among the given participants: in round r (r = 0, 1, …) participant i sends
// its accumulated value to participant (i + 2^r) mod p. After ⌈log₂ p⌉
// rounds every participant holds the reduction. The message list is ordered
// round by round; messages within a round are concurrent.
func BruckAllReduce(participants []int, bytes int) []runtime.Message {
	p := len(participants)
	if p <= 1 {
		return nil
	}
	var msgs []runtime.Message
	for r := 0; (1 << r) < p; r++ {
		d := 1 << r
		for i := 0; i < p; i++ {
			msgs = append(msgs, runtime.Message{
				From:  participants[i],
				To:    participants[(i+d)%p],
				Bytes: bytes,
			})
		}
	}
	return msgs
}
