package dist

import (
	"testing"
	"testing/quick"

	"luqr/internal/tile"
)

func TestPanelNodes(t *testing.T) {
	g := tile.NewGrid(4, 4)
	// Panel 0 of a 8-tile column touches rows 0..7 → grid rows 0..3, column
	// owner fixed by column 0 → 4 distinct ranks.
	nodes := PanelNodes(g, 0, 8)
	if len(nodes) != 4 {
		t.Fatalf("panel nodes = %v", nodes)
	}
	// Panel mt−1 touches one row → one node.
	if n := PanelNodes(g, 7, 8); len(n) != 1 || n[0] != g.Owner(7, 7) {
		t.Fatalf("last panel nodes = %v", n)
	}
}

func TestPanelNodesCoverOwners(t *testing.T) {
	f := func(seed uint32) bool {
		p := int(seed%4) + 1
		q := int(seed/4%3) + 1
		g := tile.NewGrid(p, q)
		mt := 9
		k := int(seed/16) % mt
		nodes := PanelNodes(g, k, mt)
		set := map[int]bool{}
		for _, n := range nodes {
			set[n] = true
		}
		for i := k; i < mt; i++ {
			if !set[g.Owner(i, k)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAllReduceRounds(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4}
	for p, want := range cases {
		if got := AllReduceRounds(p); got != want {
			t.Fatalf("AllReduceRounds(%d) = %d, want %d", p, got, want)
		}
	}
}

func TestBruckAllReduceMessages(t *testing.T) {
	parts := []int{2, 5, 7, 11}
	msgs := BruckAllReduce(parts, 64)
	// 2 rounds × 4 participants.
	if len(msgs) != 8 {
		t.Fatalf("got %d messages", len(msgs))
	}
	// Round 0: distance 1 ring; round 1: distance 2.
	if msgs[0].From != 2 || msgs[0].To != 5 {
		t.Fatalf("round 0 first message %v", msgs[0])
	}
	if msgs[4].From != 2 || msgs[4].To != 7 {
		t.Fatalf("round 1 first message %v", msgs[4])
	}
	for _, m := range msgs {
		if m.Bytes != 64 || m.From == m.To {
			t.Fatalf("bad message %v", m)
		}
	}
}

func TestBruckAllReduceTrivial(t *testing.T) {
	if msgs := BruckAllReduce([]int{3}, 8); msgs != nil {
		t.Fatal("single participant needs no messages")
	}
	if msgs := BruckAllReduce(nil, 8); msgs != nil {
		t.Fatal("empty participant set needs no messages")
	}
}

// TestBruckDissemination verifies the correctness of the schedule: after the
// rounds, every participant has received (directly or transitively) the
// contribution of every other participant.
func TestBruckDissemination(t *testing.T) {
	for _, p := range []int{2, 3, 4, 5, 7, 8, 16} {
		parts := make([]int, p)
		for i := range parts {
			parts[i] = i * 10
		}
		msgs := BruckAllReduce(parts, 1)
		// know[x] = set of contributions node x holds.
		know := map[int]map[int]bool{}
		for _, x := range parts {
			know[x] = map[int]bool{x: true}
		}
		// Process round by round: messages in a round carry the knowledge
		// held at the START of the round (classic Bruck semantics).
		perRound := p
		for r := 0; r*perRound < len(msgs); r++ {
			snapshot := map[int]map[int]bool{}
			for x, s := range know {
				c := map[int]bool{}
				for k := range s {
					c[k] = true
				}
				snapshot[x] = c
			}
			for _, m := range msgs[r*perRound : (r+1)*perRound] {
				for k := range snapshot[m.From] {
					know[m.To][k] = true
				}
			}
		}
		for _, x := range parts {
			if len(know[x]) != p {
				t.Fatalf("p=%d: node %d holds %d/%d contributions", p, x, len(know[x]), p)
			}
		}
	}
}
