package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"luqr/internal/core"
	"luqr/internal/tune"
)

// State is a job's lifecycle position.
type State string

// The job lifecycle: queued → running → done/failed, or queued → canceled.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Job is one factorization request moving through the Manager.
type Job struct {
	ID  string
	req *parsedRequest

	// ctx is canceled by Cancel or by the manager's shutdown; a job whose
	// context is canceled before it starts never runs.
	ctx    context.Context
	cancel context.CancelFunc

	// done closes when the job reaches a terminal state.
	done chan struct{}

	mu        sync.Mutex
	state     State
	err       error
	res       *core.Result
	submitted time.Time
	started   time.Time
	finishedT time.Time
}

func newJob(seq int64, p *parsedRequest, root context.Context) *Job {
	ctx, cancel := context.WithCancel(root)
	return &Job{
		ID:        fmt.Sprintf("j-%06d", seq),
		req:       p,
		ctx:       ctx,
		cancel:    cancel,
		done:      make(chan struct{}),
		state:     StateQueued,
		submitted: time.Now(),
	}
}

// markRunning transitions queued → running; false when the job was canceled
// while queued (it must not run).
func (j *Job) markRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	return true
}

// tryCancel cancels a still-queued job; false once it is running or done.
func (j *Job) tryCancel() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateCanceled
	j.finishedT = time.Now()
	j.err = errors.New("service: canceled")
	j.cancel()
	close(j.done)
	return true
}

// finish records the terminal state and releases every waiter.
func (j *Job) finish(res *core.Result, err error) {
	j.mu.Lock()
	if j.state == StateCanceled { // already terminal (raced with cancel)
		j.mu.Unlock()
		return
	}
	j.res = res
	j.err = err
	if err != nil {
		j.state = StateFailed
	} else {
		j.state = StateDone
	}
	j.finishedT = time.Now()
	j.mu.Unlock()
	j.cancel() // release the context's resources
	close(j.done)
}

// Err returns the job's terminal error (nil while running or on success).
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// ReportView is the JSON shape of a finished job's run report: the per-step
// LU/QR choices the criterion made, the stability and growth metrics, and
// the measured wall time.
type ReportView struct {
	Alg       string `json:"alg"`
	N         int    `json:"n"`
	NB        int    `json:"nb"`
	IB        int    `json:"ib"`
	GridP     int    `json:"grid_p"`
	GridQ     int    `json:"grid_q"`
	Criterion string `json:"criterion,omitempty"`
	// Alpha is the effective robustness threshold the run used and
	// AlphaSource how it was resolved: "explicit", "learned", or "default".
	// Absent for non-LUQR runs.
	Alpha       float64  `json:"alpha,omitempty"`
	AlphaSource string   `json:"alpha_source,omitempty"`
	Decisions   []string `json:"decisions"`
	LUSteps     int      `json:"lu_steps"`
	QRSteps     int      `json:"qr_steps"`
	FracLU      float64  `json:"frac_lu"`
	HPL3        float64  `json:"hpl3"`
	Growth      float64  `json:"growth"`
	// PeakGrowth is the peak intermediate growth, present when the run
	// tracked it (learner-feeding jobs do).
	PeakGrowth float64 `json:"peak_growth,omitempty"`
	Breakdown  bool    `json:"breakdown,omitempty"`
	// Precision is the effective kernel precision ("auto" or "f32"; absent
	// for pure-f64 runs), with the mixed path's accounting: steps that
	// accepted float32 kernels, excursion demotions back to f64, the
	// float32 residency epochs the run's tiles entered, the conversion
	// passes those epochs cost (with their wall time), and the
	// iterative-refinement rounds the solve needed.
	Precision   string  `json:"precision,omitempty"`
	F32Steps    int     `json:"f32_steps,omitempty"`
	Demotions   int     `json:"demotions,omitempty"`
	F32Epochs   int     `json:"f32_epochs,omitempty"`
	Conversions int     `json:"conversions,omitempty"`
	ConvMS      float64 `json:"conv_ms,omitempty"`
	RefineIters int     `json:"refine_iters,omitempty"`
	// MarginMin/MarginMax summarize the criterion decision margins over the
	// run's steps (present when at least one step had a finite margin).
	MarginMin float64 `json:"margin_min,omitempty"`
	MarginMax float64 `json:"margin_max,omitempty"`
	WallMS    float64 `json:"wall_ms"`
}

// JobView is the JSON shape of GET /v1/jobs/{id}. CacheKey is the full
// SHA-256 digest — it names the factorization in the cache and the disk
// store; CacheKeyShort is the documented 12-hex display form.
type JobView struct {
	ID            string `json:"id"`
	State         State  `json:"state"`
	Error         string `json:"error,omitempty"`
	CacheKey      string `json:"cache_key"`
	CacheKeyShort string `json:"cache_key_short"`
	SubmittedMS   int64  `json:"submitted_unix_ms"`
	StartedMS     int64  `json:"started_unix_ms,omitempty"`
	FinishedMS    int64  `json:"finished_unix_ms,omitempty"`
	// Tuned is the autotuner's operating point when it chose the tile size
	// for this job (absent when the request pinned nb or tuning is off).
	Tuned  *tune.Entry `json:"tuned,omitempty"`
	Report *ReportView `json:"report,omitempty"`
}

// View snapshots the job for the status endpoint.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:            j.ID,
		State:         j.state,
		CacheKey:      j.req.key,
		CacheKeyShort: ShortDigest(j.req.key),
		SubmittedMS:   j.submitted.UnixMilli(),
		Tuned:         j.req.tuned,
	}
	if !j.started.IsZero() {
		v.StartedMS = j.started.UnixMilli()
	}
	if !j.finishedT.IsZero() {
		v.FinishedMS = j.finishedT.UnixMilli()
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	if j.res != nil {
		r := j.res.Report
		rv := &ReportView{
			Alg: r.Alg.String(), N: r.N, NB: r.NB, IB: r.IB,
			GridP: r.GridP, GridQ: r.GridQ,
			Criterion: j.req.criterion,
			Alpha:     j.req.alpha, AlphaSource: j.req.alphaSource,
			LUSteps: r.LUSteps, QRSteps: r.QRSteps, FracLU: r.FracLU(),
			HPL3: r.HPL3, Growth: r.Growth, PeakGrowth: r.PeakGrowth,
			Breakdown: r.Breakdown,
			WallMS:    float64(r.WallTime.Microseconds()) / 1000,
		}
		if r.Precision != core.PrecisionF64 {
			rv.Precision = r.Precision.String()
			rv.F32Steps = r.F32Steps
			rv.Demotions = r.Demotions
			rv.F32Epochs = r.F32Epochs
			rv.Conversions = r.Conversions
			rv.ConvMS = float64(r.ConvTime.Microseconds()) / 1000
			rv.RefineIters = r.RefineIters
		}
		if !math.IsNaN(r.MarginMin) {
			// NaN (no step had a finite margin) cannot be marshaled; the pair
			// is always set together.
			rv.MarginMin, rv.MarginMax = r.MarginMin, r.MarginMax
		}
		rv.Decisions = make([]string, len(r.Decisions))
		for k, lu := range r.Decisions {
			if lu {
				rv.Decisions[k] = "lu"
			} else {
				rv.Decisions[k] = "qr"
			}
		}
		v.Report = rv
	}
	return v
}
