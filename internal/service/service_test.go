package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"luqr/internal/core"
	"luqr/internal/matgen"
)

// mustManager builds a Manager or fails the test (NewManager can only fail
// on factor-store setup, which these options don't use).
func mustManager(t *testing.T, opts Options) *Manager {
	t.Helper()
	m, err := NewManager(opts)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	return m
}

func postJSON(t *testing.T, client *http.Client, url string, body any) (int, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	out.ReadFrom(resp.Body)
	return resp.StatusCode, out.Bytes()
}

func getJSON(t *testing.T, client *http.Client, url string, v any) int {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestServiceEndToEnd drives the full HTTP surface: submit an N=480 job,
// poll it to completion, inspect its per-step decisions, then issue two
// solve calls against the now-cached factorization and assert via /metrics
// that neither re-factored.
func TestServiceEndToEnd(t *testing.T) {
	m := mustManager(t, Options{QueueSize: 8, Concurrency: 2, CacheEntries: 4})
	defer m.Drain(context.Background())
	ts := httptest.NewServer(NewServer(m, 0))
	defer ts.Close()
	client := ts.Client()

	const n, seed = 480, 3
	mtx := map[string]any{"n": n, "gen": "random", "seed": seed}
	cfg := map[string]any{"alg": "luqr", "nb": 40, "criterion": "max", "alpha": 100}

	// Submit and poll to completion.
	st, body := postJSON(t, client, ts.URL+"/v1/jobs", map[string]any{"matrix": mtx, "config": cfg})
	if st != http.StatusAccepted {
		t.Fatalf("submit: got %d, want 202: %s", st, body)
	}
	var sub submitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatalf("submit response: %v", err)
	}
	var jv JobView
	deadline := time.Now().Add(60 * time.Second)
	for {
		if st := getJSON(t, client, ts.URL+"/v1/jobs/"+sub.ID, &jv); st != http.StatusOK {
			t.Fatalf("status: got %d", st)
		}
		if jv.State == StateDone || jv.State == StateFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", sub.ID, jv.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if jv.State != StateDone {
		t.Fatalf("job failed: %s", jv.Error)
	}
	if jv.Report == nil {
		t.Fatal("done job has no report")
	}
	if got := len(jv.Report.Decisions); got != n/40 {
		t.Fatalf("report has %d per-step decisions, want %d", got, n/40)
	}
	for _, d := range jv.Report.Decisions {
		if d != "lu" && d != "qr" {
			t.Fatalf("decision %q is neither lu nor qr", d)
		}
	}

	// Two solves against the cached factorization; both must be hits.
	rng := rand.New(rand.NewSource(99))
	var xs [2][]float64
	var rhss [2][]float64
	for i := 0; i < 2; i++ {
		rhs := make([]float64, n)
		for k := range rhs {
			rhs[k] = rng.NormFloat64()
		}
		rhss[i] = rhs
		st, body := postJSON(t, client, ts.URL+"/v1/solve",
			map[string]any{"matrix": mtx, "config": cfg, "rhs": rhs})
		if st != http.StatusOK {
			t.Fatalf("solve %d: got %d: %s", i, st, body)
		}
		var sr solveResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatalf("solve %d response: %v", i, err)
		}
		if !sr.CacheHit {
			t.Fatalf("solve %d: cache_hit=false, want a cached factorization", i)
		}
		if len(sr.X) != n {
			t.Fatalf("solve %d: len(x)=%d, want %d", i, len(sr.X), n)
		}
		xs[i] = sr.X
	}

	// The solutions must actually solve A·x = b.
	e, err := matgen.ByName("random")
	if err != nil {
		t.Fatal(err)
	}
	a := e.Gen(n, rand.New(rand.NewSource(seed)))
	for i := 0; i < 2; i++ {
		var worst float64
		for r := 0; r < n; r++ {
			s := 0.0
			for c := 0; c < n; c++ {
				s += a.Data[r*a.Stride+c] * xs[i][c]
			}
			if d := math.Abs(s - rhss[i][r]); d > worst {
				worst = d
			}
		}
		if worst > 1e-6 {
			t.Fatalf("solve %d residual too large: %g", i, worst)
		}
	}

	// The factorization ran exactly once; both solves were hits.
	var ms MetricsSnapshot
	if st := getJSON(t, client, ts.URL+"/metrics", &ms); st != http.StatusOK {
		t.Fatalf("metrics: got %d", st)
	}
	if ms.Cache.Misses != 1 {
		t.Fatalf("cache misses = %d, want exactly 1 (a single factorization)", ms.Cache.Misses)
	}
	if ms.Cache.Hits < 2 {
		t.Fatalf("cache hits = %d, want >= 2 (both solves cached)", ms.Cache.Hits)
	}
	if ms.Jobs.Done < 1 {
		t.Fatalf("jobs done = %d, want >= 1", ms.Jobs.Done)
	}
	if ms.Solve.Requests != 2 || ms.Solve.BatchedRHS != 2 {
		t.Fatalf("solve counters = %+v, want 2 requests / 2 batched RHS", ms.Solve)
	}
	if len(ms.Kernels.Kernels) == 0 || ms.Kernels.Tasks == 0 {
		t.Fatalf("metrics carry no kernel totals: %+v", ms.Kernels)
	}

	if st := getJSON(t, client, ts.URL+"/healthz", nil); st != http.StatusOK {
		t.Fatalf("healthz: got %d", st)
	}
}

// TestQueueFull429 fills a 1-slot queue behind a single busy worker and
// asserts the service answers 429 rather than queueing unboundedly.
func TestQueueFull429(t *testing.T) {
	m := mustManager(t, Options{QueueSize: 1, Concurrency: 1, CacheEntries: 4})
	defer m.Drain(context.Background())
	ts := httptest.NewServer(NewServer(m, 0))
	defer ts.Close()
	client := ts.Client()

	// Distinct seeds → distinct cache keys → every job factors from scratch.
	// The first keeps the only worker busy for a while (N=960 ≈ 8x the work
	// of N=480); the rest overfill the 1-slot queue.
	saw429 := false
	for i := 0; i < 4; i++ {
		n := 480
		if i == 0 {
			n = 960
		}
		st, body := postJSON(t, client, ts.URL+"/v1/jobs", map[string]any{
			"matrix": map[string]any{"n": n, "gen": "random", "seed": 100 + i},
			"config": map[string]any{"nb": 40},
		})
		switch st {
		case http.StatusAccepted:
		case http.StatusTooManyRequests:
			saw429 = true
			var eb errorBody
			if err := json.Unmarshal(body, &eb); err != nil || !strings.Contains(eb.Error, "queue full") {
				t.Fatalf("429 body = %s", body)
			}
		default:
			t.Fatalf("submit %d: got %d: %s", i, st, body)
		}
	}
	if !saw429 {
		t.Fatal("never saw a 429 despite overfilling a 1-slot queue")
	}
	var ms MetricsSnapshot
	getJSON(t, client, ts.URL+"/metrics", &ms)
	if ms.Queue.Rejected == 0 {
		t.Fatal("metrics report zero rejected submissions")
	}
}

// TestDrainCompletesRunningJobs starts work, then drains: the running and
// queued jobs must finish, and post-drain submissions must be refused.
func TestDrainCompletesRunningJobs(t *testing.T) {
	m := mustManager(t, Options{QueueSize: 4, Concurrency: 1, CacheEntries: 4})
	var jobs []*Job
	for i := 0; i < 2; i++ {
		p, err := parse(MatrixSpec{N: 480, Gen: "random", Seed: int64(200 + i)},
			ConfigSpec{NB: 40}, nil, Options{MaxN: 4096})
		if err != nil {
			t.Fatal(err)
		}
		j, err := m.Submit(p)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for i, j := range jobs {
		if s := j.State(); s != StateDone {
			t.Fatalf("job %d drained into state %s (err=%v), want done", i, s, j.Err())
		}
	}
	p, err := parse(MatrixSpec{N: 480, Gen: "random", Seed: 1}, ConfigSpec{NB: 40}, nil, Options{MaxN: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(p); err != ErrDraining {
		t.Fatalf("post-drain submit: err=%v, want ErrDraining", err)
	}
}

// TestCancelQueuedJob cancels a job stuck behind a busy worker before it
// runs.
func TestCancelQueuedJob(t *testing.T) {
	m := mustManager(t, Options{QueueSize: 4, Concurrency: 1, CacheEntries: 4})
	defer m.Drain(context.Background())
	ts := httptest.NewServer(NewServer(m, 0))
	defer ts.Close()
	client := ts.Client()

	// Blocker holds the only worker; victim waits in the queue.
	blocker := map[string]any{
		"matrix": map[string]any{"n": 960, "gen": "random", "seed": 300},
		"config": map[string]any{"nb": 40},
	}
	victim := map[string]any{
		"matrix": map[string]any{"n": 480, "gen": "random", "seed": 301},
		"config": map[string]any{"nb": 40},
	}
	if st, body := postJSON(t, client, ts.URL+"/v1/jobs", blocker); st != http.StatusAccepted {
		t.Fatalf("blocker: got %d: %s", st, body)
	}
	st, body := postJSON(t, client, ts.URL+"/v1/jobs", victim)
	if st != http.StatusAccepted {
		t.Fatalf("victim: got %d: %s", st, body)
	}
	var sub submitResponse
	json.Unmarshal(body, &sub)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sub.ID, nil)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var jv JobView
	json.NewDecoder(resp.Body).Decode(&jv)
	resp.Body.Close()
	// The victim is either still queued (cancel lands, 200) or the blocker
	// finished improbably fast and it ran (409). Both are valid protocol
	// outcomes; only the queued case must cancel.
	switch resp.StatusCode {
	case http.StatusOK:
		if jv.State != StateCanceled {
			t.Fatalf("canceled job in state %s", jv.State)
		}
	case http.StatusConflict:
		t.Logf("victim already running; cancel correctly refused")
	default:
		t.Fatalf("cancel: got %d", resp.StatusCode)
	}
}

// TestSolveBatchingDeterministic stages three right-hand sides against one
// cached factorization and runs a single drain pass, asserting they ride in
// one batch.
func TestSolveBatchingDeterministic(t *testing.T) {
	const n = 160
	p, err := parse(MatrixSpec{N: n, Gen: "random", Seed: 7}, ConfigSpec{NB: 40}, nil, Options{MaxN: 4096})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(p.a, p.b, p.cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := &entry{key: p.key, ready: make(chan struct{})}
	e.complete(res, nil)

	var met Metrics
	rng := rand.New(rand.NewSource(11))
	chans := make([]chan solveOut, 3)
	e.bmu.Lock()
	for i := range chans {
		b := make([]float64, n)
		for k := range b {
			b[k] = rng.NormFloat64()
		}
		chans[i] = make(chan solveOut, 1)
		e.pending = append(e.pending, pendingSolve{b: b, ch: chans[i]})
	}
	e.solving = true
	e.bmu.Unlock()
	e.drainBatches(&met)

	for i, ch := range chans {
		out := <-ch
		if out.err != nil {
			t.Fatalf("batched solve %d: %v", i, out.err)
		}
		if out.batch != 3 {
			t.Fatalf("solve %d rode in batch of %d, want 3", i, out.batch)
		}
	}
	if got := met.SolveMaxBatch.Load(); got != 3 {
		t.Fatalf("max batch = %d, want 3", got)
	}
	if met.SolveBatches.Load() != 1 || met.SolveBatchedRHS.Load() != 3 {
		t.Fatalf("batches=%d rhs=%d, want 1/3", met.SolveBatches.Load(), met.SolveBatchedRHS.Load())
	}
}

// TestConcurrentSolvesShareOneFactorization fires many concurrent solves of
// one cold operator; exactly one factorization may run.
func TestConcurrentSolvesShareOneFactorization(t *testing.T) {
	m := mustManager(t, Options{QueueSize: 16, Concurrency: 2, CacheEntries: 4})
	defer m.Drain(context.Background())

	const n, workers = 480, 6
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := parse(MatrixSpec{N: n, Gen: "random", Seed: 42},
				ConfigSpec{NB: 40}, nil, Options{MaxN: 4096})
			if err != nil {
				errs <- err
				return
			}
			rhs := make([]float64, n)
			rhs[i] = 1
			x, _, _, _, err := m.Solve(context.Background(), p, rhs)
			if err != nil {
				errs <- fmt.Errorf("solve %d: %w", i, err)
				return
			}
			if len(x) != n {
				errs <- fmt.Errorf("solve %d: len(x)=%d", i, len(x))
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := m.met.CacheMisses.Load(); got != 1 {
		t.Fatalf("cache misses = %d, want 1: concurrent solves must share a factorization", got)
	}
}

func TestDigestKey(t *testing.T) {
	base := func() (*parsedRequest, error) {
		return parse(MatrixSpec{N: 160, Gen: "random", Seed: 1}, ConfigSpec{NB: 40}, nil, Options{MaxN: 4096})
	}
	p1, err := base()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := base()
	if err != nil {
		t.Fatal(err)
	}
	if p1.key != p2.key {
		t.Fatalf("identical requests digest differently: %s vs %s", p1.key, p2.key)
	}
	// Workers must NOT split the cache (factors are bit-identical).
	p3, err := parse(MatrixSpec{N: 160, Gen: "random", Seed: 1}, ConfigSpec{NB: 40, Workers: 3}, nil, Options{MaxN: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if p3.key != p1.key {
		t.Fatal("worker count split the cache key")
	}
	// Anything numerically relevant must split it.
	alpha50 := 50.0
	for name, cs := range map[string]ConfigSpec{
		"nb":        {NB: 80},
		"alg":       {NB: 40, Alg: "hqr"},
		"criterion": {NB: 40, Criterion: "sum"},
		"alpha":     {NB: 40, Alpha: &alpha50},
		"grid":      {NB: 40, P: 2, Q: 2},
	} {
		p, err := parse(MatrixSpec{N: 160, Gen: "random", Seed: 1}, cs, nil, Options{MaxN: 4096})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.key == p1.key {
			t.Fatalf("changing %s did not change the cache key", name)
		}
	}
	// A different seed is a different operator.
	p4, err := parse(MatrixSpec{N: 160, Gen: "random", Seed: 2}, ConfigSpec{NB: 40}, nil, Options{MaxN: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if p4.key == p1.key {
		t.Fatal("different matrix seeds share a cache key")
	}
	// Explicit data digests by value.
	d1 := make([]float64, 160*160)
	d2 := make([]float64, 160*160)
	for i := range d1 {
		d1[i] = float64(i%7) + 1
		d2[i] = d1[i]
	}
	d2[0] += 1e-9
	q1, err := parse(MatrixSpec{N: 160, Data: d1}, ConfigSpec{NB: 40}, nil, Options{MaxN: 4096})
	if err != nil {
		t.Fatal(err)
	}
	q2, err := parse(MatrixSpec{N: 160, Data: d2}, ConfigSpec{NB: 40}, nil, Options{MaxN: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if q1.key == q2.key {
		t.Fatal("matrices differing in one bit share a cache key")
	}
}

func TestCacheLRUEvictsOnlyCompleted(t *testing.T) {
	var met Metrics
	c := newCache(2, &met)

	e1, created := c.getOrCreate("k1")
	if !created {
		t.Fatal("k1 should be created")
	}
	e1.complete(nil, nil)
	e2, _ := c.getOrCreate("k2") // in flight, never completed
	_ = e2
	// k3 must evict k1 (completed), not k2 (in flight).
	c.getOrCreate("k3")
	if _, ok := c.lookup("k1"); ok {
		t.Fatal("k1 should have been evicted")
	}
	if _, ok := c.lookup("k2"); !ok {
		t.Fatal("in-flight k2 must survive eviction")
	}
	if met.CacheEvictions.Load() != 1 {
		t.Fatalf("evictions = %d, want 1", met.CacheEvictions.Load())
	}
	// With both residents in flight/over cap, creation still succeeds.
	c.getOrCreate("k4")
	if c.len() != 3 {
		t.Fatalf("cache len = %d, want 3 (transient over-cap with in-flight entries)", c.len())
	}
}

func TestHTTPValidation(t *testing.T) {
	m := mustManager(t, Options{QueueSize: 4, Concurrency: 1, MaxN: 512})
	defer m.Drain(context.Background())
	ts := httptest.NewServer(NewServer(m, 2048)) // tiny body limit for the 413 case
	defer ts.Close()
	client := ts.Client()

	// 404 for an unknown job.
	if st := getJSON(t, client, ts.URL+"/v1/jobs/j-999999", nil); st != http.StatusNotFound {
		t.Fatalf("unknown job: got %d, want 404", st)
	}

	// 400 for malformed JSON.
	resp, err := client.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: got %d, want 400", resp.StatusCode)
	}

	// 400 for semantic errors.
	for name, body := range map[string]map[string]any{
		"no-operator":  {"matrix": map[string]any{"n": 160}},
		"n-not-tile":   {"matrix": map[string]any{"n": 161, "gen": "random"}},
		"over-max-n":   {"matrix": map[string]any{"n": 1024, "gen": "random"}},
		"bad-alg":      {"matrix": map[string]any{"n": 160, "gen": "random"}, "config": map[string]any{"alg": "cholesky"}},
		"bad-gen":      {"matrix": map[string]any{"n": 160, "gen": "nosuch"}},
		"rhs-mismatch": {"matrix": map[string]any{"n": 160, "gen": "random"}, "rhs": []float64{1, 2}},
	} {
		if st, out := postJSON(t, client, ts.URL+"/v1/jobs", body); st != http.StatusBadRequest {
			t.Fatalf("%s: got %d, want 400: %s", name, st, out)
		}
	}

	// 413 for an oversized body.
	bigRHS := make([]float64, 4096)
	for i := range bigRHS {
		bigRHS[i] = 0.123456789
	}
	big := map[string]any{"matrix": map[string]any{"n": 160, "gen": "random"}, "rhs": bigRHS}
	if st, _ := postJSON(t, client, ts.URL+"/v1/solve", big); st != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: got %d, want 413", st)
	}
}
