package service

import (
	"container/list"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"luqr/internal/core"
)

// store is the disk-backed factor store: completed factorizations are
// serialized via core.EncodeFactorization and spilled to
// <dir>/<full-digest>.fact, so a restarted server warm-loads them instead of
// re-paying O(N³). The store is byte-capped: an LRU over the files (seeded
// from modification times at startup, maintained by touches afterwards)
// evicts the coldest factorizations once the cap is exceeded.
//
// Durability posture: writes are crash-safe (temp file in the same
// directory + rename, so a file either exists completely or not at all) and
// every load re-verifies the stream's checksum/version header. Any damaged,
// truncated, or version-skewed file is logged, quarantined (deleted), and
// treated as a cache miss — the service re-factors; it never serves a wrong
// answer from disk.
type store struct {
	dir      string
	maxBytes int64
	met      *Metrics

	mu    sync.Mutex
	size  int64
	files map[string]*list.Element // digest → element in lru
	lru   *list.List               // front = coldest, back = hottest; values *storeFile
}

// storeFile is the accounting record of one spilled factorization.
type storeFile struct {
	key  string
	size int64
}

const factExt = ".fact"

// newStore opens (creating if needed) the factor store at dir. Leftover
// temp files from a crashed writer are removed, existing .fact files are
// adopted into the LRU ordered by modification time, and the byte cap is
// enforced immediately.
func newStore(dir string, maxBytes int64, met *Metrics) (*store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: creating store dir: %w", err)
	}
	s := &store{
		dir:      dir,
		maxBytes: maxBytes,
		met:      met,
		files:    make(map[string]*list.Element),
		lru:      list.New(),
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("service: scanning store dir: %w", err)
	}
	type found struct {
		key  string
		size int64
		mod  time.Time
	}
	var adopt []found
	for _, de := range entries {
		name := de.Name()
		switch {
		case de.IsDir():
			continue
		case strings.HasSuffix(name, ".tmp"):
			// A writer died mid-spill; the rename never happened.
			_ = os.Remove(filepath.Join(dir, name))
		case strings.HasSuffix(name, factExt):
			info, err := de.Info()
			if err != nil {
				continue
			}
			adopt = append(adopt, found{
				key:  strings.TrimSuffix(name, factExt),
				size: info.Size(),
				mod:  info.ModTime(),
			})
		}
	}
	sort.Slice(adopt, func(i, j int) bool { return adopt[i].mod.Before(adopt[j].mod) })
	for _, f := range adopt {
		s.files[f.key] = s.lru.PushBack(&storeFile{key: f.key, size: f.size})
		s.size += f.size
	}
	s.mu.Lock()
	s.evictLocked()
	s.mu.Unlock()
	return s, nil
}

func (s *store) path(key string) string { return filepath.Join(s.dir, key+factExt) }

// spill serializes res and writes it under key, crash-safely. Errors are
// logged and counted, never propagated: a failed spill only costs a future
// warm start.
func (s *store) spill(key string, res *core.Result) {
	start := time.Now()
	data, err := res.EncodeFactorization()
	if err != nil {
		log.Printf("luqr-serve: store: encoding %s: %v", ShortDigest(key), err)
		s.met.StoreSpillErrors.Add(1)
		return
	}
	if int64(len(data)) > s.maxBytes {
		// The file would be evicted the moment it lands; don't write it.
		log.Printf("luqr-serve: store: %s is %d bytes, over the %d-byte cap; not spilling",
			ShortDigest(key), len(data), s.maxBytes)
		s.met.StoreSpillErrors.Add(1)
		return
	}
	if err := s.writeFile(key, data); err != nil {
		log.Printf("luqr-serve: store: writing %s: %v", ShortDigest(key), err)
		s.met.StoreSpillErrors.Add(1)
		return
	}
	s.met.StoreSpills.Add(1)
	s.met.StoreSpillBytes.Add(int64(len(data)))
	s.met.StoreSpillNS.Add(time.Since(start).Nanoseconds())
}

// writeFile lands data at path(key) via temp-file + rename in the same
// directory, then folds the file into the accounting and enforces the cap.
func (s *store) writeFile(key string, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, ".spill-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	// Sync before rename: otherwise a crash can leave the *renamed* file
	// with torn contents, which the checksum would catch but a full sync
	// avoids having to.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	s.mu.Lock()
	if el, ok := s.files[key]; ok {
		// Replaced an existing spill (e.g. re-factored after an in-memory
		// eviction): swap the accounting instead of double-counting.
		s.size -= el.Value.(*storeFile).size
		s.lru.Remove(el)
	}
	s.files[key] = s.lru.PushBack(&storeFile{key: key, size: int64(len(data))})
	s.size += int64(len(data))
	s.evictLocked()
	s.mu.Unlock()
	return nil
}

// loadResult attempts a warm load of key from disk. A missing file is a
// plain miss; a damaged one (torn write, bit rot, version skew) is logged,
// quarantined, and reported as a miss so the caller re-factors.
func (s *store) loadResult(key string) (*core.Result, bool) {
	start := time.Now()
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		if !os.IsNotExist(err) {
			log.Printf("luqr-serve: store: reading %s: %v", ShortDigest(key), err)
			s.met.StoreLoadErrors.Add(1)
		}
		return nil, false
	}
	res, err := core.DecodeFactorization(data)
	if err != nil {
		log.Printf("luqr-serve: store: quarantining %s: %v", ShortDigest(key), err)
		s.met.StoreLoadErrors.Add(1)
		s.removeFile(key)
		return nil, false
	}
	s.mu.Lock()
	if el, ok := s.files[key]; ok {
		s.lru.MoveToBack(el)
	}
	s.mu.Unlock()
	s.met.StoreWarmHits.Add(1)
	s.met.StoreLoadBytes.Add(int64(len(data)))
	s.met.StoreLoadNS.Add(time.Since(start).Nanoseconds())
	return res, true
}

// removeFile deletes key's spill and drops it from the accounting.
func (s *store) removeFile(key string) {
	s.mu.Lock()
	if el, ok := s.files[key]; ok {
		s.size -= el.Value.(*storeFile).size
		s.lru.Remove(el)
		delete(s.files, key)
	}
	s.mu.Unlock()
	_ = os.Remove(s.path(key))
}

// evictLocked deletes coldest-first until the store fits the byte cap.
// Caller holds s.mu.
func (s *store) evictLocked() {
	for s.size > s.maxBytes {
		el := s.lru.Front()
		if el == nil {
			return
		}
		f := el.Value.(*storeFile)
		s.lru.Remove(el)
		delete(s.files, f.key)
		s.size -= f.size
		_ = os.Remove(s.path(f.key))
		s.met.StoreEvictions.Add(1)
	}
}

// stats samples the store occupancy for /metrics.
func (s *store) stats() (files int, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.files), s.size
}
