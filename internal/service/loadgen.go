package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"
)

// LoadOptions configures RunLoad, the luqr-load client mode of luqr-bench.
type LoadOptions struct {
	// URL is the base address of a running luqr-serve, e.g.
	// "http://127.0.0.1:8090".
	URL string
	// Clients is the number of concurrent client goroutines. Default 4.
	Clients int
	// Requests is the total number of requests across all clients.
	// Default 64.
	Requests int
	// N and NB shape the generated problems. Defaults 480 and 40.
	N, NB int
	// Matrices is the number of distinct operators cycled through (distinct
	// seeds of the random generator) — it controls the attainable cache hit
	// rate. Default 4.
	Matrices int
	// Seed seeds the request mix and RHS generation.
	Seed int64
}

func (o LoadOptions) withDefaults() LoadOptions {
	if o.Clients <= 0 {
		o.Clients = 4
	}
	if o.Requests <= 0 {
		o.Requests = 64
	}
	if o.N <= 0 {
		o.N = 480
	}
	if o.NB <= 0 {
		o.NB = 40
	}
	if o.Matrices <= 0 {
		o.Matrices = 4
	}
	return o
}

// LoadResult aggregates one load run.
type LoadResult struct {
	Requests int
	Errors   int
	Rejected int // 429 responses (backpressure working as intended)
	Hits     int // solve responses served from the factorization cache
	Elapsed  time.Duration

	// Latencies per operation kind ("solve", "submit", "status"), sorted.
	Latencies map[string][]time.Duration
}

// Percentile returns the p-th percentile (0–100) of ds, which must be
// sorted. Zero when ds is empty.
func Percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	i := int(p / 100 * float64(len(ds)-1))
	return ds[i]
}

// RunLoad drives a running luqr-serve with a mixed workload — roughly 60%
// synchronous solves (repeating operators so the factorization cache gets
// exercised), 20% async job submissions, 20% status/metrics polls — and
// reports per-operation latency percentiles to out.
func RunLoad(opts LoadOptions, out io.Writer) (*LoadResult, error) {
	opts = opts.withDefaults()
	client := &http.Client{Timeout: 5 * time.Minute}

	// Smoke the target first so a wrong URL fails fast.
	resp, err := client.Get(opts.URL + "/healthz")
	if err != nil {
		return nil, fmt.Errorf("load: target unreachable: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("load: /healthz returned %s", resp.Status)
	}

	res := &LoadResult{Latencies: map[string][]time.Duration{}}
	var mu sync.Mutex
	record := func(kind string, d time.Duration, rejected, errored, hit bool) {
		mu.Lock()
		res.Requests++
		res.Latencies[kind] = append(res.Latencies[kind], d)
		if rejected {
			res.Rejected++
		}
		if errored {
			res.Errors++
		}
		if hit {
			res.Hits++
		}
		mu.Unlock()
	}

	var wg sync.WaitGroup
	startAll := time.Now()
	var jobIDs sync.Map // known job IDs for status polls
	perClient := opts.Requests / opts.Clients
	extra := opts.Requests % opts.Clients
	for c := 0; c < opts.Clients; c++ {
		n := perClient
		if c < extra {
			n++
		}
		wg.Add(1)
		go func(id, n int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opts.Seed + int64(id)*7919))
			for i := 0; i < n; i++ {
				seed := int64(rng.Intn(opts.Matrices))
				body := map[string]any{
					"matrix": map[string]any{"n": opts.N, "gen": "random", "seed": seed},
					"config": map[string]any{"nb": opts.NB},
				}
				switch r := rng.Float64(); {
				case r < 0.6: // synchronous cached solve
					rhs := make([]float64, opts.N)
					for k := range rhs {
						rhs[k] = rng.NormFloat64()
					}
					body["rhs"] = rhs
					st, out, d := post(client, opts.URL+"/v1/solve", body)
					var sr solveResponse
					hit := st == http.StatusOK && json.Unmarshal(out, &sr) == nil && sr.CacheHit
					record("solve", d, st == http.StatusTooManyRequests,
						st != http.StatusOK && st != http.StatusTooManyRequests, hit)
				case r < 0.8: // async submission
					st, out, d := post(client, opts.URL+"/v1/jobs", body)
					if st == http.StatusAccepted {
						var jr submitResponse
						if json.Unmarshal(out, &jr) == nil {
							jobIDs.Store(jr.ID, struct{}{})
						}
					}
					record("submit", d, st == http.StatusTooManyRequests,
						st != http.StatusAccepted && st != http.StatusTooManyRequests, false)
				default: // status poll of a known job, or /metrics
					url := opts.URL + "/metrics"
					jobIDs.Range(func(k, _ any) bool {
						url = opts.URL + "/v1/jobs/" + k.(string)
						return false
					})
					t0 := time.Now()
					resp, err := client.Get(url)
					d := time.Since(t0)
					ok := err == nil
					if ok {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						ok = resp.StatusCode == http.StatusOK
					}
					record("status", d, false, !ok, false)
				}
			}
		}(c, n)
	}
	wg.Wait()
	res.Elapsed = time.Since(startAll)

	for _, ds := range res.Latencies {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	}
	if out != nil {
		fmt.Fprintf(out, "luqr-load: %d requests, %d clients, n=%d nb=%d, %d operators, %.2fs\n",
			res.Requests, opts.Clients, opts.N, opts.NB, opts.Matrices, res.Elapsed.Seconds())
		fmt.Fprintf(out, "  errors=%d rejected(429)=%d cache_hits=%d\n", res.Errors, res.Rejected, res.Hits)
		kinds := make([]string, 0, len(res.Latencies))
		for k := range res.Latencies {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		fmt.Fprintf(out, "  %-8s %6s %10s %10s %10s %10s\n", "op", "count", "p50", "p90", "p99", "max")
		for _, k := range kinds {
			ds := res.Latencies[k]
			fmt.Fprintf(out, "  %-8s %6d %10s %10s %10s %10s\n", k, len(ds),
				Percentile(ds, 50).Round(time.Microsecond),
				Percentile(ds, 90).Round(time.Microsecond),
				Percentile(ds, 99).Round(time.Microsecond),
				ds[len(ds)-1].Round(time.Microsecond))
		}
	}
	return res, nil
}

// post sends one JSON request and returns (status, body, latency). A
// transport error reports status 0.
func post(client *http.Client, url string, body any) (int, []byte, time.Duration) {
	buf, _ := json.Marshal(body)
	t0 := time.Now()
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	d := time.Since(t0)
	if err != nil {
		return 0, nil, d
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, out, d
}
