package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"luqr/internal/core"
)

// storeOpts returns Manager options wired to a per-test store directory.
func storeOpts(t *testing.T) Options {
	t.Helper()
	return Options{QueueSize: 8, Concurrency: 2, CacheEntries: 4, StoreDir: t.TempDir()}
}

func mustParse(t *testing.T, spec MatrixSpec, cs ConfigSpec) *parsedRequest {
	t.Helper()
	p, err := parse(spec, cs, nil, Options{MaxN: 4096})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// factorAndDrain factors one operator through m and drains it, flushing the
// spill to disk. Returns the solution of a probe solve for later
// comparison.
func factorAndDrain(t *testing.T, m *Manager, p *parsedRequest, rhs []float64) []float64 {
	t.Helper()
	x, _, _, _, err := m.Solve(context.Background(), p, rhs)
	if err != nil {
		t.Fatalf("cold solve: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	return x
}

// TestStoreRestartWarmHit is the restart round trip of the factor store: a
// factorization spilled by one Manager warm-loads in a fresh Manager over
// the same directory — no re-factoring (zero cache misses), the warm-hit
// metric increments, and the replayed solution is bit-identical.
func TestStoreRestartWarmHit(t *testing.T) {
	opts := storeOpts(t)
	p := mustParse(t, MatrixSpec{N: 160, Gen: "random", Seed: 9}, ConfigSpec{NB: 40})
	rhs := make([]float64, 160)
	for i := range rhs {
		rhs[i] = float64(i%13) - 6
	}

	m1 := mustManager(t, opts)
	x1 := factorAndDrain(t, m1, p, rhs)
	if got := m1.met.StoreSpills.Load(); got != 1 {
		t.Fatalf("spills = %d, want 1", got)
	}
	if _, err := os.Stat(filepath.Join(opts.StoreDir, p.key+factExt)); err != nil {
		t.Fatalf("spill file missing: %v", err)
	}

	// "Restart": a fresh Manager over the same directory.
	m2 := mustManager(t, opts)
	defer m2.Drain(context.Background())
	x2, _, _, _, err := m2.Solve(context.Background(), p, rhs)
	if err != nil {
		t.Fatalf("warm solve: %v", err)
	}
	if len(x2) != len(x1) {
		t.Fatalf("warm solution has length %d, want %d", len(x2), len(x1))
	}
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("warm replay diverges at x[%d]: %g vs %g", i, x1[i], x2[i])
		}
	}
	if got := m2.met.StoreWarmHits.Load(); got != 1 {
		t.Fatalf("warm hits = %d, want 1", got)
	}
	if got := m2.met.CacheMisses.Load(); got != 0 {
		t.Fatalf("cache misses = %d, want 0 (warm load must skip factorization)", got)
	}
}

// TestStoreRestartOverHTTP repeats the restart round trip through the full
// HTTP surface, the way the smoke script exercises it: solve, shut down,
// restart against the same -store-dir, solve again, and compare wire-level
// solutions and /metrics.
func TestStoreRestartOverHTTP(t *testing.T) {
	opts := storeOpts(t)
	body := map[string]any{
		"matrix": map[string]any{"n": 160, "gen": "random", "seed": 4},
		"config": map[string]any{"alg": "luqr", "nb": 40},
	}
	solveOnce := func(m *Manager) []float64 {
		ts := httptest.NewServer(NewServer(m, 0))
		defer ts.Close()
		st, out := postJSON(t, ts.Client(), ts.URL+"/v1/solve", body)
		if st != http.StatusOK {
			t.Fatalf("solve: got %d: %s", st, out)
		}
		var sr solveResponse
		if err := json.Unmarshal(out, &sr); err != nil {
			t.Fatal(err)
		}
		return sr.X
	}

	m1 := mustManager(t, opts)
	x1 := solveOnce(m1)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := m1.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	m2 := mustManager(t, opts)
	defer m2.Drain(context.Background())
	x2 := solveOnce(m2)
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("restarted solve diverges at x[%d]: %g vs %g", i, x1[i], x2[i])
		}
	}
	ms := m2.MetricsSnapshot()
	if !ms.Store.Enabled || ms.Store.WarmHits != 1 || ms.Cache.Misses != 0 {
		t.Fatalf("store metrics after restart = %+v, want enabled, 1 warm hit, 0 misses", ms.Store)
	}
	if ms.Store.Files != 1 || ms.Store.Bytes <= 0 {
		t.Fatalf("store occupancy = %d files / %d bytes, want 1 file with content", ms.Store.Files, ms.Store.Bytes)
	}
}

// TestStoreCorruptFileQuarantined: a damaged spill must be logged, deleted,
// and degraded to a re-factoring miss — the request still succeeds and the
// bad file never survives.
func TestStoreCorruptFileQuarantined(t *testing.T) {
	opts := storeOpts(t)
	p := mustParse(t, MatrixSpec{N: 160, Gen: "random", Seed: 5}, ConfigSpec{NB: 40})
	rhs := make([]float64, 160)
	for i := range rhs {
		rhs[i] = 1
	}

	m1 := mustManager(t, opts)
	x1 := factorAndDrain(t, m1, p, rhs)

	// Corrupt the payload (past the header) so the checksum catches it.
	path := filepath.Join(opts.StoreDir, p.key+factExt)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	m2 := mustManager(t, opts)
	defer m2.Drain(context.Background())
	x2, _, _, _, err := m2.Solve(context.Background(), p, rhs)
	if err != nil {
		t.Fatalf("solve against corrupted store: %v", err)
	}
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("re-factored solution diverges at x[%d]", i)
		}
	}
	if got := m2.met.StoreLoadErrors.Load(); got != 1 {
		t.Fatalf("load errors = %d, want 1", got)
	}
	if got := m2.met.StoreWarmHits.Load(); got != 0 {
		t.Fatalf("warm hits = %d, want 0 (corrupted file must not hit)", got)
	}
	if got := m2.met.CacheMisses.Load(); got != 1 {
		t.Fatalf("cache misses = %d, want 1 (graceful degradation re-factors)", got)
	}
	// The quarantined file is gone; the re-factoring spilled a fresh one.
	if err := m2.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if fresh, err := os.ReadFile(path); err != nil {
		t.Fatalf("re-spill missing: %v", err)
	} else if _, err := core.DecodeFactorization(fresh); err != nil {
		t.Fatalf("re-spilled file does not decode: %v", err)
	}
}

// TestStoreByteCapEvicts: spilling past StoreMaxBytes evicts the coldest
// file, and a fresh store scan (restart) enforces the cap too.
func TestStoreByteCapEvicts(t *testing.T) {
	dir := t.TempDir()
	// One n=160 nb=40 factorization serializes to a few hundred KiB; a
	// 600 KiB cap holds one spill but not two.
	opts := Options{QueueSize: 8, Concurrency: 1, CacheEntries: 4, StoreDir: dir, StoreMaxBytes: 600 << 10}
	m := mustManager(t, opts)

	p1 := mustParse(t, MatrixSpec{N: 160, Gen: "random", Seed: 1}, ConfigSpec{NB: 40})
	p2 := mustParse(t, MatrixSpec{N: 160, Gen: "random", Seed: 2}, ConfigSpec{NB: 40})
	rhs := make([]float64, 160)
	for i := range rhs {
		rhs[i] = 1
	}
	if _, _, _, _, err := m.Solve(context.Background(), p1, rhs); err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, err := m.Solve(context.Background(), p2, rhs); err != nil {
		t.Fatal(err)
	}
	if err := m.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := m.met.StoreEvictions.Load(); got == 0 {
		t.Fatal("no store eviction despite exceeding the byte cap")
	}
	files, bytes := m.cache.store.stats()
	if files != 1 || bytes > opts.StoreMaxBytes {
		t.Fatalf("store holds %d files / %d bytes, want 1 file within the %d cap", files, bytes, opts.StoreMaxBytes)
	}
	// p2's spill is the survivor (p1 was the coldest).
	if _, err := os.Stat(filepath.Join(dir, p2.key+factExt)); err != nil {
		t.Fatalf("newest spill evicted: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, p1.key+factExt)); !os.IsNotExist(err) {
		t.Fatalf("coldest spill not evicted (stat err=%v)", err)
	}
}

// TestStoreStartupCleansAndAdopts: newStore removes leftover temp files
// from a crashed writer, adopts existing spills, and ignores foreign files.
func TestStoreStartupCleansAndAdopts(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, ".spill-123.tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("not a spill"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "abc123"+factExt), []byte("adopted"), 0o644); err != nil {
		t.Fatal(err)
	}
	var met Metrics
	s, err := newStore(dir, 1<<20, &met)
	if err != nil {
		t.Fatal(err)
	}
	files, bytes := s.stats()
	if files != 1 || bytes != int64(len("adopted")) {
		t.Fatalf("adopted %d files / %d bytes, want 1 / %d", files, bytes, len("adopted"))
	}
	if _, err := os.Stat(filepath.Join(dir, ".spill-123.tmp")); !os.IsNotExist(err) {
		t.Fatal("leftover temp file survived the startup scan")
	}
	if _, err := os.Stat(filepath.Join(dir, "README")); err != nil {
		t.Fatal("foreign file was removed by the startup scan")
	}
}

// TestStoreFilenamePrefixCollision: two factorizations whose digests share
// a long common prefix (the old 16-char truncation would have merged them)
// must store and load independently. Regression for the digest truncation
// fix.
func TestStoreFilenamePrefixCollision(t *testing.T) {
	dir := t.TempDir()
	var met Metrics
	s, err := newStore(dir, 1<<30, &met)
	if err != nil {
		t.Fatal(err)
	}
	p1 := mustParse(t, MatrixSpec{N: 80, Gen: "random", Seed: 1}, ConfigSpec{NB: 40})
	p2 := mustParse(t, MatrixSpec{N: 80, Gen: "random", Seed: 2}, ConfigSpec{NB: 40})
	r1, err := core.Run(p1.a, p1.b, p1.cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := core.Run(p2.a, p2.b, p2.cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Force the collision the truncation bug allowed: identical 16-char
	// prefixes, distinct full digests.
	const prefix = "0011223344556677"
	k1 := prefix + strings.Repeat("a", 48)
	k2 := prefix + strings.Repeat("b", 48)
	s.spill(k1, r1)
	s.spill(k2, r2)
	if files, _ := s.stats(); files != 2 {
		t.Fatalf("store holds %d files, want 2 (prefix-sharing digests must not merge)", files)
	}
	g1, ok := s.loadResult(k1)
	if !ok {
		t.Fatal("k1 load missed")
	}
	g2, ok := s.loadResult(k2)
	if !ok {
		t.Fatal("k2 load missed")
	}
	same := true
	for i := range g1.X {
		if g1.X[i] != g2.X[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("prefix-sharing keys returned the same factorization")
	}
	for i := range g1.X {
		if g1.X[i] != r1.X[i] || g2.X[i] != r2.X[i] {
			t.Fatal("loads returned swapped factorizations")
		}
	}
}

// TestDigestFullLength: the cache key is the full SHA-256, not a truncation.
func TestDigestFullLength(t *testing.T) {
	p := mustParse(t, MatrixSpec{N: 80, Gen: "random", Seed: 1}, ConfigSpec{NB: 40})
	if len(p.key) != 64 {
		t.Fatalf("digest has %d hex chars, want the full 64", len(p.key))
	}
	if s := ShortDigest(p.key); len(s) != 12 || !strings.HasPrefix(p.key, s) {
		t.Fatalf("ShortDigest(%q) = %q, want its 12-char prefix", p.key, s)
	}
}

// TestAlphaZeroPureHQR: an explicit `"alpha": 0` must reach the criterion
// (pure HQR — zero LU steps) and cache under a different key than the
// default α = 100. Regression for the zero-vs-unset remapping bug.
func TestAlphaZeroPureHQR(t *testing.T) {
	zero := 0.0
	p0 := mustParse(t, MatrixSpec{N: 160, Gen: "random", Seed: 8}, ConfigSpec{NB: 40, Alpha: &zero})
	pDef := mustParse(t, MatrixSpec{N: 160, Gen: "random", Seed: 8}, ConfigSpec{NB: 40})
	if p0.key == pDef.key {
		t.Fatal("alpha 0 and default alpha share a cache key")
	}
	if p0.criterion != "max/0" {
		t.Fatalf("criterion label = %q, want max/0", p0.criterion)
	}

	m := mustManager(t, Options{QueueSize: 4, Concurrency: 1})
	defer m.Drain(context.Background())
	ts := httptest.NewServer(NewServer(m, 0))
	defer ts.Close()
	client := ts.Client()
	st, body := postJSON(t, client, ts.URL+"/v1/jobs", map[string]any{
		"matrix": map[string]any{"n": 160, "gen": "random", "seed": 8},
		"config": map[string]any{"alg": "luqr", "nb": 40, "alpha": 0},
	})
	if st != http.StatusAccepted {
		t.Fatalf("submit: got %d: %s", st, body)
	}
	var sub submitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	var jv JobView
	deadline := time.Now().Add(30 * time.Second)
	for {
		getJSON(t, client, ts.URL+"/v1/jobs/"+sub.ID, &jv)
		if jv.State == StateDone || jv.State == StateFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", jv.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if jv.State != StateDone {
		t.Fatalf("job failed: %s", jv.Error)
	}
	if jv.Report.LUSteps != 0 {
		t.Fatalf("alpha 0 ran %d LU steps, want 0 (pure HQR)", jv.Report.LUSteps)
	}
	for k, d := range jv.Report.Decisions {
		if d != "qr" {
			t.Fatalf("decision[%d] = %q, want qr everywhere under alpha 0", k, d)
		}
	}
}

// TestAlphaNegativeRejected: a negative α is a 400, not a silent remap.
func TestAlphaNegativeRejected(t *testing.T) {
	neg := -1.0
	if _, err := parse(MatrixSpec{N: 80, Gen: "random"}, ConfigSpec{NB: 40, Alpha: &neg}, nil, Options{MaxN: 4096}); err == nil {
		t.Fatal("negative alpha accepted")
	}
	m := mustManager(t, Options{QueueSize: 4, Concurrency: 1})
	defer m.Drain(context.Background())
	ts := httptest.NewServer(NewServer(m, 0))
	defer ts.Close()
	st, body := postJSON(t, ts.Client(), ts.URL+"/v1/jobs", map[string]any{
		"matrix": map[string]any{"n": 160, "gen": "random"},
		"config": map[string]any{"nb": 40, "alpha": -3},
	})
	if st != http.StatusBadRequest {
		t.Fatalf("negative alpha over the wire: got %d, want 400: %s", st, body)
	}
}

// TestCacheEvictionRacesInFlight hammers getOrCreate/lookup/complete from
// many goroutines over a tiny cache so eviction constantly runs against
// in-flight entries. Run under -race; also asserts an entry in flight
// throughout is never evicted.
func TestCacheEvictionRacesInFlight(t *testing.T) {
	var met Metrics
	c := newCache(2, &met)

	pinned, created := c.getOrCreate("pinned")
	if !created {
		t.Fatal("pinned should be fresh")
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := string(rune('a'+g)) + "-" + string(rune('0'+i%10))
				e, created := c.getOrCreate(key)
				if created {
					e.complete(nil, nil)
				}
				c.lookup(key)
				c.lookup("pinned")
			}
		}(g)
	}
	wg.Wait()

	if _, ok := c.lookup("pinned"); !ok {
		t.Fatal("in-flight entry was evicted")
	}
	pinned.complete(nil, nil)
	if met.CacheEvictions.Load() == 0 {
		t.Fatal("no evictions despite 80 keys through a 2-entry cache")
	}
}

// TestCacheRemoveWithQueuedSolves: removing an entry from the cache (the
// failed-entry retry path) must not strand right-hand sides already queued
// against it — the batch leader drains them off the entry object itself.
func TestCacheRemoveWithQueuedSolves(t *testing.T) {
	var met Metrics
	c := newCache(4, &met)
	p := mustParse(t, MatrixSpec{N: 80, Gen: "random", Seed: 3}, ConfigSpec{NB: 40})
	res, err := core.Run(p.a, p.b, p.cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, created := c.getOrCreate(p.key)
	if !created {
		t.Fatal("entry should be fresh")
	}
	e.complete(res, nil)

	// Queue three solves without a running leader, then drop the entry from
	// the cache before draining — exactly what a concurrent remove does.
	chans := make([]chan solveOut, 3)
	e.bmu.Lock()
	for i := range chans {
		b := make([]float64, 80)
		b[i] = 1
		chans[i] = make(chan solveOut, 1)
		e.pending = append(e.pending, pendingSolve{b: b, ch: chans[i]})
	}
	e.solving = true
	e.bmu.Unlock()

	c.remove(p.key)
	if _, ok := c.lookup(p.key); ok {
		t.Fatal("entry still resident after remove")
	}
	e.drainBatches(&met)
	for i, ch := range chans {
		out := <-ch
		if out.err != nil {
			t.Fatalf("queued solve %d failed after remove: %v", i, out.err)
		}
		if out.batch != 3 {
			t.Fatalf("queued solve %d rode batch %d, want 3", i, out.batch)
		}
	}
}
