package service

import (
	"encoding/json"
	"errors"
	"net/http"
)

// DefaultMaxBodyBytes bounds request bodies (an explicit 2048×2048 float64
// matrix in JSON is ~80 MB; the default allows it with headroom).
const DefaultMaxBodyBytes = 128 << 20

// Server is the HTTP surface over a Manager. It holds no state of its own,
// so one instance may serve any number of concurrent requests.
type Server struct {
	m        *Manager
	maxBytes int64
	mux      *http.ServeMux
}

// NewServer builds the HTTP handler for m. maxBytes bounds request bodies
// (0 = DefaultMaxBodyBytes).
func NewServer(m *Manager, maxBytes int64) *Server {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBodyBytes
	}
	s := &Server{m: m, maxBytes: maxBytes, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// errorBody is the uniform error shape: {"error": "..."}.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// decodeBody reads a size-limited JSON body into v, mapping an oversized
// body to 413 and malformed JSON to 400. Reports whether decoding succeeded;
// on failure the response has been written.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, err)
		} else {
			writeError(w, http.StatusBadRequest, err)
		}
		return false
	}
	return true
}

// submitResponse is the body of a 202 from POST /v1/jobs.
type submitResponse struct {
	ID       string `json:"id"`
	State    State  `json:"state"`
	CacheKey string `json:"cache_key"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	p, err := parse(req.Matrix, req.Config, req.RHS, s.m.Options())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	j, err := s.m.Submit(p)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusAccepted, submitResponse{ID: j.ID, State: j.State(), CacheKey: p.key})
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.m.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	writeJSON(w, http.StatusOK, j.View())
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, canceled, err := s.m.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	if !canceled {
		// Already running or terminal; report the state with 409.
		writeJSON(w, http.StatusConflict, j.View())
		return
	}
	writeJSON(w, http.StatusOK, j.View())
}

// solveResponse is the body of a 200 from POST /v1/solve.
type solveResponse struct {
	X        []float64 `json:"x"`
	CacheHit bool      `json:"cache_hit"`
	Batched  int       `json:"batched"`
	JobID    string    `json:"job_id,omitempty"`
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	p, err := parse(req.Matrix, req.Config, req.RHS, s.m.Options())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	x, hit, batch, jobID, err := s.m.Solve(r.Context(), p, p.b)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, solveResponse{X: x, CacheHit: hit, Batched: batch, JobID: jobID})
}

// healthResponse is the body of GET /healthz.
type healthResponse struct {
	Status   string  `json:"status"`
	Draining bool    `json:"draining"`
	UptimeS  float64 `json:"uptime_s"`
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, healthResponse{
		Status:   "ok",
		Draining: s.m.draining.Load(),
		UptimeS:  s.m.Uptime().Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.m.MetricsSnapshot())
}
