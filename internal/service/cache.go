package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"luqr/internal/core"
)

// digestKey derives the factorization-cache key: the full SHA-256 (64 hex
// chars) over the operator identity and every config field that affects the
// stored factors — including the inner block size ib (blocked kernels with
// different ib round differently) and, through the criterion string, the
// EFFECTIVE α the run used (explicit, learned, or default), so a job served
// under a learned α never collides with one pinned to a different value —
// and the effective kernel precision, since f32 and f64 runs of the same
// operator store different factors.
// Generator-specified matrices hash their (gen, n, seed) triple; explicit
// matrices hash the raw float64 bits. Workers and tracing are deliberately
// excluded — the runtime guarantees bit-identical factors for any worker
// count, so they must not split the cache.
//
// The full digest is used everywhere a key identifies a factorization:
// in-memory cache entries, job status views, and the on-disk factor store's
// filenames (which outlive the process, so truncation-induced collisions
// would silently serve one operator's factors for another). Display
// surfaces may shorten it with ShortDigest.
func digestKey(spec MatrixSpec, cfg core.Config, criterion string) string {
	h := sha256.New()
	if spec.Gen != "" {
		fmt.Fprintf(h, "gen:%s:%d:%d", spec.Gen, spec.N, spec.Seed)
	} else {
		fmt.Fprintf(h, "data:%d:", spec.N)
		var buf [8]byte
		for _, v := range spec.Data {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
	}
	fmt.Fprintf(h, "|alg=%s nb=%d ib=%d grid=%dx%d crit=%s variant=%s scope=%d seed=%d",
		cfg.Alg, cfg.NB, cfg.IB, cfg.Grid.P, cfg.Grid.Q, criterion, cfg.Variant, cfg.Scope, cfg.Seed)
	// The digest carries the EFFECTIVE precision, appended only when non-f64:
	// pure-f64 keys keep their historical form (factor-store files written
	// before the knob existed stay addressable), while an auto or f32
	// factorization can never be served where f64 was asked, or vice versa.
	if p := cfg.EffectivePrecision(); p != core.PrecisionF64 {
		fmt.Fprintf(h, " prec=%s", p)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// ShortDigest is the documented display form of a cache key: the first 12
// hex characters, for logs and human-facing views only. Never use it to
// address a factorization — only the full digest is collision-safe.
func ShortDigest(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}

// entry is one cached factorization. ready closes when the creator finishes
// (res or err set); consumers wait on it, never re-factor. The batching
// state collects right-hand sides that arrive while a solve pass is in
// flight, so they share one block back-substitution.
type entry struct {
	key   string
	ready chan struct{}
	res   *core.Result
	err   error

	bmu     sync.Mutex
	pending []pendingSolve
	solving bool
}

type pendingSolve struct {
	b  []float64
	ch chan solveOut
}

type solveOut struct {
	x     []float64
	batch int
	err   error
}

// complete publishes the factorization (or its error) and releases every
// waiter. Called exactly once, by the creator.
func (e *entry) complete(res *core.Result, err error) {
	e.res = res
	e.err = err
	close(e.ready)
}

// solve runs b through the cached factorization, batching with any other
// right-hand sides queued against it. Returns the solution and the size of
// the batch it rode in. Only valid after ready has closed with err == nil.
func (e *entry) solve(b []float64, met *Metrics) ([]float64, int, error) {
	ps := pendingSolve{b: b, ch: make(chan solveOut, 1)}
	e.bmu.Lock()
	e.pending = append(e.pending, ps)
	if !e.solving {
		e.solving = true
		go e.drainBatches(met)
	}
	e.bmu.Unlock()
	out := <-ps.ch
	return out.x, out.batch, out.err
}

// drainBatches is the per-entry solve leader: it repeatedly claims the
// whole pending list and solves it in one core.Result.SolveBatch pass (one
// transformation replay + one block back-substitution for the entire
// batch), until no more right-hand sides are waiting.
func (e *entry) drainBatches(met *Metrics) {
	for {
		e.bmu.Lock()
		batch := e.pending
		e.pending = nil
		if len(batch) == 0 {
			e.solving = false
			e.bmu.Unlock()
			return
		}
		e.bmu.Unlock()

		bs := make([][]float64, len(batch))
		for i := range batch {
			bs[i] = batch[i].b
		}
		xs, iters, err := e.res.SolveBatchRefined(bs)
		if met != nil {
			met.SolveBatches.Add(1)
			met.SolveBatchedRHS.Add(int64(len(batch)))
			met.foldMaxBatch(int64(len(batch)))
			met.RefineIters.Add(int64(iters))
		}
		for i := range batch {
			if err != nil {
				batch[i].ch <- solveOut{err: err}
			} else {
				batch[i].ch <- solveOut{x: xs[i], batch: len(batch)}
			}
		}
	}
}

// cache is the LRU factorization cache, optionally backed by a disk store.
// Only completed entries are evicted; in-flight factorizations always
// survive until their creator completes them. Recency is tracked with a
// container/list so lookups touch in O(1) instead of scanning an order
// slice.
type cache struct {
	mu      sync.Mutex
	cap     int
	met     *Metrics
	entries map[string]*list.Element // key → element; element value is *entry
	lru     *list.List               // front = least recently used

	store  *store // nil when persistence is disabled
	spills sync.WaitGroup
}

func newCache(capacity int, met *Metrics) *cache {
	return &cache{
		cap:     capacity,
		met:     met,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

// lookup returns the entry for key, marking it recently used.
func (c *cache) lookup(key string) (*entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToBack(el)
	return el.Value.(*entry), true
}

// getOrCreate returns the entry for key, creating an in-flight one (ready
// open) when absent; created reports whether this caller must factor and
// complete it. A freshly created entry is first offered a lazy warm load
// from the disk store (when one is configured): on success the entry
// completes immediately and created is false — the caller treats it exactly
// like an in-memory hit. Creation evicts the least-recently-used completed
// entry beyond capacity.
func (c *cache) getOrCreate(key string) (e *entry, created bool) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToBack(el)
		c.mu.Unlock()
		return el.Value.(*entry), false
	}
	e = &entry{key: key, ready: make(chan struct{})}
	c.entries[key] = c.lru.PushBack(e)
	for len(c.entries) > c.cap {
		if !c.evictOldestDone() {
			break // every older entry is in flight; allow transient over-cap
		}
	}
	c.mu.Unlock()

	// Warm load outside the cache lock: disk I/O and gob decoding must not
	// stall unrelated lookups. Concurrent callers for this key share the
	// in-flight entry and wait on ready either way.
	if c.store != nil {
		if res, ok := c.store.loadResult(key); ok {
			e.complete(res, nil)
			return e, false
		}
	}
	return e, true
}

// evictOldestDone removes the least-recently-used completed entry,
// reporting whether one was found. Caller holds c.mu.
func (c *cache) evictOldestDone() bool {
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		select {
		case <-e.ready:
			c.lru.Remove(el)
			delete(c.entries, e.key)
			if c.met != nil {
				c.met.CacheEvictions.Add(1)
			}
			return true
		default:
		}
	}
	return false
}

// remove drops a (typically failed) entry.
func (c *cache) remove(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return
	}
	c.lru.Remove(el)
	delete(c.entries, key)
}

// spill asynchronously persists a freshly computed factorization to the
// disk store. A no-op without a store. The spill WaitGroup lets Drain flush
// in-flight spills before the process exits.
func (c *cache) spill(key string, res *core.Result) {
	if c.store == nil || res == nil {
		return
	}
	c.spills.Add(1)
	go func() {
		defer c.spills.Done()
		c.store.spill(key, res)
	}()
}

// waitSpills blocks until every in-flight spill has landed (or failed).
func (c *cache) waitSpills() { c.spills.Wait() }

// len reports the number of cached entries.
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
