package service

import (
	"context"
	"math"
	"testing"

	"luqr/internal/core"
	"luqr/internal/mat"
)

// TestPrecisionDigestSeparation checks the cache-key contract of the
// precision knob: pure-f64 keys keep their historical (precision-free) form,
// auto/f32 requests get distinct keys, and an algorithm without float32
// coverage shares the f64 key — its effective precision IS f64.
func TestPrecisionDigestSeparation(t *testing.T) {
	spec := MatrixSpec{N: 160, Gen: "random", Seed: 3}
	base := mustParse(t, spec, ConfigSpec{NB: 40})
	f64 := mustParse(t, spec, ConfigSpec{NB: 40, Precision: "f64"})
	auto := mustParse(t, spec, ConfigSpec{NB: 40, Precision: "auto"})
	f32 := mustParse(t, spec, ConfigSpec{NB: 40, Precision: "f32"})
	if f64.key != base.key {
		t.Fatalf("explicit f64 changed the digest: %s vs %s", f64.key, base.key)
	}
	if auto.key == base.key || f32.key == base.key || auto.key == f32.key {
		t.Fatalf("precision digests collide: f64=%s auto=%s f32=%s",
			ShortDigest(base.key), ShortDigest(auto.key), ShortDigest(f32.key))
	}
	// luincpiv has no float32 path; requesting f32 on it must share the f64
	// factorization rather than split the cache on a knob that does nothing.
	inc := mustParse(t, spec, ConfigSpec{Alg: "luincpiv", NB: 40})
	incF32 := mustParse(t, spec, ConfigSpec{Alg: "luincpiv", NB: 40, Precision: "f32"})
	if inc.key != incF32.key {
		t.Fatalf("ineffective f32 split the luincpiv digest: %s vs %s", inc.key, incF32.key)
	}
	if _, err := parse(spec, ConfigSpec{NB: 40, Precision: "half"}, nil, Options{MaxN: 4096}); err == nil {
		t.Fatal("precision \"half\" accepted")
	}
}

// TestPrecisionJobReportAndMetrics submits a forced-f32 job and checks the
// mixed-precision accounting surfaces: the job view's report carries
// precision, f32_steps and refine_iters, and /metrics accumulates them.
func TestPrecisionJobReportAndMetrics(t *testing.T) {
	m := mustManager(t, Options{QueueSize: 8, Concurrency: 1})
	defer m.Drain(context.Background())
	p := mustParse(t, MatrixSpec{N: 160, Gen: "diagdom", Seed: 7}, ConfigSpec{NB: 40, Precision: "f32"})
	j, err := m.Submit(p)
	if err != nil {
		t.Fatal(err)
	}
	<-j.done
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	v := j.View()
	if v.Report == nil {
		t.Fatal("finished job has no report")
	}
	r := v.Report
	if r.Precision != "f32" {
		t.Fatalf("report precision = %q, want f32", r.Precision)
	}
	if r.F32Steps == 0 {
		t.Fatalf("report shows no f32 steps (demotions=%d)", r.Demotions)
	}
	if r.RefineIters == 0 {
		t.Fatal("report shows no refinement on an f32 factorization")
	}
	if math.IsNaN(r.HPL3) || r.HPL3 > 16 {
		t.Fatalf("refined HPL3 = %g, want inside the acceptance band", r.HPL3)
	}
	ms := m.MetricsSnapshot()
	if ms.Precision.F32Jobs != 1 || ms.Precision.F32Steps != int64(r.F32Steps) ||
		ms.Precision.RefineIters < int64(r.RefineIters) {
		t.Fatalf("metrics precision block = %+v, want 1 f32 job / %d steps / ≥%d refine iters",
			ms.Precision, r.F32Steps, r.RefineIters)
	}
	// A pure-f64 job must leave the report's precision fields absent.
	p64 := mustParse(t, MatrixSpec{N: 160, Gen: "diagdom", Seed: 7}, ConfigSpec{NB: 40})
	j64, err := m.Submit(p64)
	if err != nil {
		t.Fatal(err)
	}
	<-j64.done
	if r64 := j64.View().Report; r64 == nil || r64.Precision != "" || r64.F32Steps != 0 {
		t.Fatalf("f64 job leaked precision fields: %+v", r64)
	}
}

// TestPrecisionRestartRoundTrip is the restart round trip for a
// mixed-precision factorization: an f32 job spilled by one Manager
// warm-loads in a fresh one, the warm solve still refines (the retained
// original matrix survived serialization), and the solution is bit-identical
// to the pre-restart one.
func TestPrecisionRestartRoundTrip(t *testing.T) {
	opts := storeOpts(t)
	p := mustParse(t, MatrixSpec{N: 160, Gen: "diagdom", Seed: 11}, ConfigSpec{NB: 40, Precision: "f32"})
	rhs := make([]float64, 160)
	for i := range rhs {
		rhs[i] = float64(i%17) - 8
	}

	m1 := mustManager(t, opts)
	x1 := factorAndDrain(t, m1, p, rhs)
	if m1.met.F32Jobs.Load() != 1 {
		t.Fatalf("f32 jobs = %d, want 1", m1.met.F32Jobs.Load())
	}
	if h := mat.HPL3(p.a, x1, rhs); math.IsNaN(h) || h > 16 {
		t.Fatalf("cold refined solve HPL3 = %g", h)
	}

	m2 := mustManager(t, opts)
	defer m2.Drain(context.Background())
	x2, _, _, _, err := m2.Solve(context.Background(), p, rhs)
	if err != nil {
		t.Fatalf("warm solve: %v", err)
	}
	if got := m2.met.StoreWarmHits.Load(); got != 1 {
		t.Fatalf("warm hits after restart = %d, want 1", got)
	}
	if got := m2.met.CacheMisses.Load(); got != 0 {
		t.Fatalf("cache misses after restart = %d, want 0", got)
	}
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("restarted f32 solve diverges at x[%d]: %g vs %g", i, x1[i], x2[i])
		}
	}
	// The warm solve refined through the reloaded factors.
	if got := m2.met.RefineIters.Load(); got == 0 {
		t.Fatal("warm solve performed no refinement on an f32 factorization")
	}
	if res := warmResult(t, m2, p.key); res.Report.F32Steps == 0 || res.Report.Precision != core.PrecisionF32 {
		t.Fatalf("reloaded report lost precision state: prec=%v f32 steps=%d",
			res.Report.Precision, res.Report.F32Steps)
	}
}

// warmResult digs the reloaded Result for key out of m's cache.
func warmResult(t *testing.T, m *Manager, key string) *core.Result {
	t.Helper()
	e, ok := m.cache.lookup(key)
	if !ok {
		t.Fatalf("no cache entry for %s", ShortDigest(key))
	}
	<-e.ready
	if e.err != nil {
		t.Fatal(e.err)
	}
	return e.res
}
