package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"luqr/internal/tune"
)

// svcTuner builds a deterministic tuner for service tests: nb=80 always wins
// the probe, and the table persists under dir.
func svcTuner(dir string) *tune.Tuner {
	return tune.New(tune.Options{
		Path: filepath.Join(dir, "tuning.json"),
		Candidates: []tune.Point{
			{NB: 40, IB: 16, Workers: 1},
			{NB: 80, IB: 16, Workers: 1},
		},
		Bench: func(p tune.Point, n int, alg string) (float64, error) {
			if p.NB == 80 {
				return 9, nil
			}
			return 1, nil
		},
		Machine: "svc-test",
	})
}

// TestServiceAutotune submits a job that leaves nb unset against a manager
// with tuning enabled and asserts the tuned tile size shows up everywhere it
// must: the job view, the run report, the cache key, and /metrics.
func TestServiceAutotune(t *testing.T) {
	dir := t.TempDir()
	tuner := svcTuner(dir)
	m := mustManager(t, Options{QueueSize: 8, Concurrency: 1, CacheEntries: 4, Tuner: tuner})
	defer m.Drain(context.Background())
	ts := httptest.NewServer(NewServer(m, 0))
	defer ts.Close()
	client := ts.Client()

	mtx := map[string]any{"n": 160, "gen": "random", "seed": 5}
	st, body := postJSON(t, client, ts.URL+"/v1/jobs",
		map[string]any{"matrix": mtx, "config": map[string]any{"alg": "luqr"}})
	if st != http.StatusAccepted {
		t.Fatalf("submit: got %d: %s", st, body)
	}
	var sub submitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatalf("submit response: %v", err)
	}

	var jv JobView
	deadline := time.Now().Add(60 * time.Second)
	for {
		getJSON(t, client, ts.URL+"/v1/jobs/"+sub.ID, &jv)
		if jv.State == StateDone || jv.State == StateFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", jv.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if jv.State != StateDone {
		t.Fatalf("job failed: %s", jv.Error)
	}
	if jv.Tuned == nil || jv.Tuned.NB != 80 {
		t.Fatalf("job view tuned point = %+v, want nb=80", jv.Tuned)
	}
	if jv.Report == nil || jv.Report.NB != 80 {
		t.Fatalf("run report nb = %+v, want 80", jv.Report)
	}

	// The tuned nb participates in the cache key: an auto request digests
	// identically to an explicit nb=80 request and differently from nb=40.
	spec := MatrixSpec{N: 160, Gen: "random", Seed: 5}
	auto, err := parse(spec, ConfigSpec{Alg: "luqr"}, nil, 4096, tuner)
	if err != nil {
		t.Fatal(err)
	}
	exp80, err := parse(spec, ConfigSpec{Alg: "luqr", NB: 80, Workers: 1}, nil, 4096, nil)
	if err != nil {
		t.Fatal(err)
	}
	exp40, err := parse(spec, ConfigSpec{Alg: "luqr", NB: 40, Workers: 1}, nil, 4096, nil)
	if err != nil {
		t.Fatal(err)
	}
	if auto.key != exp80.key {
		t.Fatalf("auto key %s != explicit nb=80 key %s", auto.key[:12], exp80.key[:12])
	}
	if auto.key == exp40.key {
		t.Fatal("auto key collides with the nb=40 key")
	}

	// /metrics reports the tuner: the probe ran once, the class is recorded
	// with the winning point, and later lookups were table hits.
	var ms MetricsSnapshot
	if st := getJSON(t, client, ts.URL+"/metrics", &ms); st != http.StatusOK {
		t.Fatalf("/metrics: %d", st)
	}
	if !ms.Tune.Enabled {
		t.Fatal("/metrics tune block disabled")
	}
	if ms.Tune.Probes != 1 {
		t.Fatalf("probes = %d, want 1", ms.Tune.Probes)
	}
	if ms.Tune.Hits < 1 {
		t.Fatalf("hits = %d, want >= 1 (the parse above)", ms.Tune.Hits)
	}
	e, ok := ms.Tune.Classes["luqr/n160"]
	if !ok || e.NB != 80 {
		t.Fatalf("tuned classes = %+v, want luqr/n160 at nb=80", ms.Tune.Classes)
	}

	// A restarted service (fresh tuner, same table file) skips the probe.
	tuner2 := svcTuner(dir)
	if _, probed, err := tuner2.Tune(160, "luqr"); err != nil || probed {
		t.Fatalf("warm restart: probed=%v err=%v", probed, err)
	}
}
