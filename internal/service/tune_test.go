package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"luqr/internal/tune"
)

// svcTuner builds a deterministic tuner for service tests: nb=80 always wins
// the probe, and the table persists under dir.
func svcTuner(dir string) *tune.Tuner {
	return tune.New(tune.Options{
		Path: filepath.Join(dir, "tuning.json"),
		Candidates: []tune.Point{
			{NB: 40, IB: 16, Workers: 1},
			{NB: 80, IB: 16, Workers: 1},
		},
		Bench: func(p tune.Point, n int, alg string) (float64, error) {
			if p.NB == 80 {
				return 9, nil
			}
			return 1, nil
		},
		Machine: "svc-test",
	})
}

// TestServiceAutotune submits a job that leaves nb unset against a manager
// with tuning enabled and asserts the tuned tile size shows up everywhere it
// must: the job view, the run report, the cache key, and /metrics.
func TestServiceAutotune(t *testing.T) {
	dir := t.TempDir()
	tuner := svcTuner(dir)
	m := mustManager(t, Options{QueueSize: 8, Concurrency: 1, CacheEntries: 4, Tuner: tuner})
	defer m.Drain(context.Background())
	ts := httptest.NewServer(NewServer(m, 0))
	defer ts.Close()
	client := ts.Client()

	mtx := map[string]any{"n": 160, "gen": "random", "seed": 5}
	st, body := postJSON(t, client, ts.URL+"/v1/jobs",
		map[string]any{"matrix": mtx, "config": map[string]any{"alg": "luqr"}})
	if st != http.StatusAccepted {
		t.Fatalf("submit: got %d: %s", st, body)
	}
	var sub submitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatalf("submit response: %v", err)
	}

	var jv JobView
	deadline := time.Now().Add(60 * time.Second)
	for {
		getJSON(t, client, ts.URL+"/v1/jobs/"+sub.ID, &jv)
		if jv.State == StateDone || jv.State == StateFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", jv.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if jv.State != StateDone {
		t.Fatalf("job failed: %s", jv.Error)
	}
	if jv.Tuned == nil || jv.Tuned.NB != 80 {
		t.Fatalf("job view tuned point = %+v, want nb=80", jv.Tuned)
	}
	if jv.Report == nil || jv.Report.NB != 80 {
		t.Fatalf("run report nb = %+v, want 80", jv.Report)
	}

	// The tuned nb participates in the cache key: an auto request digests
	// identically to an explicit nb=80 request and differently from nb=40.
	spec := MatrixSpec{N: 160, Gen: "random", Seed: 5}
	auto, err := parse(spec, ConfigSpec{Alg: "luqr"}, nil, Options{MaxN: 4096, Tuner: tuner})
	if err != nil {
		t.Fatal(err)
	}
	// The tuned ib is part of the digest too, so the explicit twin pins it.
	exp80, err := parse(spec, ConfigSpec{Alg: "luqr", NB: 80, IB: 16, Workers: 1}, nil, Options{MaxN: 4096})
	if err != nil {
		t.Fatal(err)
	}
	exp40, err := parse(spec, ConfigSpec{Alg: "luqr", NB: 40, Workers: 1}, nil, Options{MaxN: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if auto.key != exp80.key {
		t.Fatalf("auto key %s != explicit nb=80 key %s", auto.key[:12], exp80.key[:12])
	}
	if auto.key == exp40.key {
		t.Fatal("auto key collides with the nb=40 key")
	}

	// /metrics reports the tuner: the probe ran once, the class is recorded
	// with the winning point, and later lookups were table hits.
	var ms MetricsSnapshot
	if st := getJSON(t, client, ts.URL+"/metrics", &ms); st != http.StatusOK {
		t.Fatalf("/metrics: %d", st)
	}
	if !ms.Tune.Enabled {
		t.Fatal("/metrics tune block disabled")
	}
	if ms.Tune.Probes != 1 {
		t.Fatalf("probes = %d, want 1", ms.Tune.Probes)
	}
	if ms.Tune.Hits < 1 {
		t.Fatalf("hits = %d, want >= 1 (the parse above)", ms.Tune.Hits)
	}
	e, ok := ms.Tune.Classes["luqr/n160"]
	if !ok || e.NB != 80 {
		t.Fatalf("tuned classes = %+v, want luqr/n160 at nb=80", ms.Tune.Classes)
	}

	// A restarted service (fresh tuner, same table file) skips the probe.
	tuner2 := svcTuner(dir)
	if _, probed, err := tuner2.Tune(160, "luqr"); err != nil || probed {
		t.Fatalf("warm restart: probed=%v err=%v", probed, err)
	}
}

// TestServiceLearnedAlpha drives the α feedback loop end to end: a learned
// per-class α is applied to requests that leave alpha unset, shows up in the
// job report and /metrics, participates in the cache digest, and survives a
// restart through the persisted table.
func TestServiceLearnedAlpha(t *testing.T) {
	dir := t.TempDir()
	tuner := svcTuner(dir)
	// Seed the learner the way a finished job would: a stable run at α=100
	// with the criterion still vetoing some LU steps raises the class to 200.
	if st, ok := tuner.Observe(160, "luqr", tune.Observation{
		Criterion: "max", Alpha: 100, FracLU: 0.5, Growth: 2, HPL3: 0.001,
	}); !ok || st.Alpha != 200 {
		t.Fatalf("seed observation: %+v ok=%v", st, ok)
	}

	// The learned α lands in the digest: an alpha-unset request keys like an
	// explicit α=200 twin and unlike a default-α one. (Checked before the
	// job runs, which will fold in a fresh observation and may move α.)
	spec := MatrixSpec{N: 160, Gen: "random", Seed: 5}
	learnOpts := Options{MaxN: 4096, Tuner: tuner, LearnAlpha: true}
	auto, err := parse(spec, ConfigSpec{Alg: "luqr"}, nil, learnOpts)
	if err != nil {
		t.Fatal(err)
	}
	a200 := 200.0
	exp, err := parse(spec, ConfigSpec{Alg: "luqr", NB: 80, IB: 16, Workers: 1, Alpha: &a200}, nil, Options{MaxN: 4096})
	if err != nil {
		t.Fatal(err)
	}
	def, err := parse(spec, ConfigSpec{Alg: "luqr", NB: 80, IB: 16, Workers: 1}, nil, Options{MaxN: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if auto.key != exp.key {
		t.Fatalf("learned-α key %s != explicit α=200 key %s", auto.key[:12], exp.key[:12])
	}
	if auto.key == def.key {
		t.Fatal("learned-α key collides with the default-α key")
	}
	if auto.alphaSource != "learned" || auto.alpha != 200 {
		t.Fatalf("parse resolved α=%g from %q, want 200 from learned", auto.alpha, auto.alphaSource)
	}

	m := mustManager(t, Options{QueueSize: 8, Concurrency: 1, CacheEntries: 4, Tuner: tuner, LearnAlpha: true})
	defer m.Drain(context.Background())
	ts := httptest.NewServer(NewServer(m, 0))
	defer ts.Close()
	client := ts.Client()

	st, body := postJSON(t, client, ts.URL+"/v1/jobs", map[string]any{
		"matrix": map[string]any{"n": 160, "gen": "random", "seed": 5},
		"config": map[string]any{"alg": "luqr"},
	})
	if st != http.StatusAccepted {
		t.Fatalf("submit: got %d: %s", st, body)
	}
	var sub submitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatalf("submit response: %v", err)
	}
	var jv JobView
	deadline := time.Now().Add(60 * time.Second)
	for {
		getJSON(t, client, ts.URL+"/v1/jobs/"+sub.ID, &jv)
		if jv.State == StateDone || jv.State == StateFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", jv.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if jv.State != StateDone {
		t.Fatalf("job failed: %s", jv.Error)
	}
	if jv.Report == nil || jv.Report.Alpha != 200 || jv.Report.AlphaSource != "learned" {
		t.Fatalf("report α = %+v, want 200/learned", jv.Report)
	}
	// Learner-feeding jobs run with growth tracking on.
	if jv.Report.PeakGrowth <= 0 {
		t.Fatalf("peak growth = %g, want > 0 (TrackGrowth)", jv.Report.PeakGrowth)
	}

	var ms MetricsSnapshot
	if st := getJSON(t, client, ts.URL+"/metrics", &ms); st != http.StatusOK {
		t.Fatalf("/metrics: %d", st)
	}
	if !ms.Tune.AlphaLearning {
		t.Fatal("/metrics alpha_learning off")
	}
	if ms.Tune.AlphaClasses < 1 {
		t.Fatalf("alpha_classes = %d, want >= 1", ms.Tune.AlphaClasses)
	}
	// The seed observation plus the finished job's own feedback.
	if ms.Tune.AlphaUpdates < 2 {
		t.Fatalf("alpha_updates = %d, want >= 2", ms.Tune.AlphaUpdates)
	}

	// Restart: a fresh tuner over the same table applies the learned α
	// without re-learning.
	st2, ok := svcTuner(dir).Alpha(160, "luqr", "max")
	if !ok || st2.Samples < 2 {
		t.Fatalf("restart lost learned α: %+v ok=%v", st2, ok)
	}
}

// TestMetricsRespondDuringProbe pins the head-of-line fix at the service
// boundary: while a submission is parked inside a candidate sweep, /metrics
// (which reads Tuner.Stats) answers promptly instead of queueing behind it.
func TestMetricsRespondDuringProbe(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	tuner := tune.New(tune.Options{
		Candidates: []tune.Point{{NB: 40, IB: 16, Workers: 1}},
		Bench: func(p tune.Point, n int, alg string) (float64, error) {
			once.Do(func() { close(entered) })
			<-release
			return 5, nil
		},
		Machine: "svc-test",
	})
	m := mustManager(t, Options{QueueSize: 8, Concurrency: 1, CacheEntries: 4, Tuner: tuner})
	defer m.Drain(context.Background())
	ts := httptest.NewServer(NewServer(m, 0))
	defer ts.Close()
	client := ts.Client()

	submitDone := make(chan struct{})
	go func() {
		defer close(submitDone)
		st, body := postJSON(t, client, ts.URL+"/v1/jobs", map[string]any{
			"matrix": map[string]any{"n": 160, "gen": "random", "seed": 1},
			"config": map[string]any{"alg": "luqr"},
		})
		if st != http.StatusAccepted {
			t.Errorf("submit: got %d: %s", st, body)
		}
	}()
	<-entered

	start := time.Now()
	var ms MetricsSnapshot
	if st := getJSON(t, client, ts.URL+"/metrics", &ms); st != http.StatusOK {
		t.Fatalf("/metrics during probe: %d", st)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("/metrics took %s behind an in-flight probe", el)
	}
	if !ms.Tune.Enabled {
		t.Fatal("/metrics tune block disabled")
	}

	close(release)
	<-submitDone
}

// TestConcurrentJobsUseTheirOwnTunedIB pins the regression the global panel
// knob allowed: two classes tuned to different inner block sizes, factored
// concurrently, must each run and report their own ib.
func TestConcurrentJobsUseTheirOwnTunedIB(t *testing.T) {
	tuner := tune.New(tune.Options{
		Candidates: []tune.Point{
			{NB: 40, IB: 4, Workers: 1},
			{NB: 40, IB: 8, Workers: 1},
		},
		// n=160 tunes to ib=4, n=320 to ib=8.
		Bench: func(p tune.Point, n int, alg string) (float64, error) {
			if (n == 160) == (p.IB == 4) {
				return 9, nil
			}
			return 1, nil
		},
		Machine: "svc-test",
	})
	m := mustManager(t, Options{QueueSize: 8, Concurrency: 2, CacheEntries: 4, Tuner: tuner})
	defer m.Drain(context.Background())
	ts := httptest.NewServer(NewServer(m, 0))
	defer ts.Close()
	client := ts.Client()

	ids := map[int]string{}
	for _, n := range []int{160, 320} {
		st, body := postJSON(t, client, ts.URL+"/v1/jobs", map[string]any{
			"matrix": map[string]any{"n": n, "gen": "random", "seed": 3},
			"config": map[string]any{"alg": "hqr"},
		})
		if st != http.StatusAccepted {
			t.Fatalf("submit n=%d: got %d: %s", n, st, body)
		}
		var sub submitResponse
		if err := json.Unmarshal(body, &sub); err != nil {
			t.Fatalf("submit response: %v", err)
		}
		ids[n] = sub.ID
	}

	want := map[int]int{160: 4, 320: 8}
	deadline := time.Now().Add(60 * time.Second)
	for n, id := range ids {
		var jv JobView
		for {
			getJSON(t, client, ts.URL+"/v1/jobs/"+id, &jv)
			if jv.State == StateDone || jv.State == StateFailed {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job n=%d stuck in %s", n, jv.State)
			}
			time.Sleep(10 * time.Millisecond)
		}
		if jv.State != StateDone {
			t.Fatalf("job n=%d failed: %s", n, jv.Error)
		}
		if jv.Report == nil || jv.Report.IB != want[n] {
			t.Fatalf("job n=%d report = %+v, want ib=%d", n, jv.Report, want[n])
		}
	}
}
