// Package service turns the one-shot solver library into a long-running
// solver-as-a-service process: the job manager, factorization cache, and
// HTTP surface behind cmd/luqr-serve.
//
// The layer contract, top to bottom:
//
//   - Manager owns a bounded submission queue and a fixed pool of job
//     workers. Submit never blocks: a full queue is an immediate
//     ErrQueueFull (the HTTP layer maps it to 429 backpressure), and a
//     draining manager refuses new work with ErrDraining (503). Each
//     accepted job moves queued → running → done/failed; a queued job can
//     be canceled (its context is canceled and it never runs), and
//     Drain stops intake, finishes every queued and running job, and
//     returns — or cancels the root context when its deadline passes, at
//     which point still-queued jobs fail fast with "canceled".
//
//   - The factorization cache (cache.go) is keyed by a digest of the
//     operator and the numerically relevant config, so a repeated POST
//     /v1/solve against the same operator skips the O(N³) factorization
//     and pays only the O(N²) replay + back-substitution of
//     core.Result.SolveBatch. Right-hand sides that queue up against the
//     same factorization while a solve pass is in flight are batched into
//     one block back-substitution. Factorizations are never duplicated:
//     concurrent consumers of one key share a single in-flight entry.
//
//   - Server (server.go) is the ops surface: job submission and status,
//     synchronous cached solves, /healthz, /metrics (queue depth, cache
//     hit rate, jobs by state, accumulated per-kernel totals from
//     runtime.Stats), request-size limits (413) and queue backpressure
//     (429). It holds no state of its own beyond the Manager, so it is
//     safe to serve from any number of goroutines.
//
// Everything here runs on the existing stack — core.Run on the
// work-stealing runtime — and adds no new numerical code.
package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"luqr/internal/core"
	"luqr/internal/runtime"
	"luqr/internal/tune"
)

// Sentinel errors the HTTP layer maps to status codes.
var (
	// ErrQueueFull: the bounded submission queue is full (HTTP 429).
	ErrQueueFull = errors.New("service: submission queue full")
	// ErrDraining: the manager is shutting down and refuses new work (503).
	ErrDraining = errors.New("service: draining, not accepting work")
)

// Options configures a Manager.
type Options struct {
	// QueueSize bounds the submission queue; Submit returns ErrQueueFull
	// beyond it. Default 64.
	QueueSize int
	// Concurrency is the number of factorization jobs run in parallel.
	// Default 2.
	Concurrency int
	// CacheEntries caps the factorization cache (LRU beyond it). Default 16.
	CacheEntries int
	// Workers is the per-factorization runtime worker-pool size
	// (0 = GOMAXPROCS, the core default).
	Workers int
	// MaxN rejects matrices larger than this order at parse time.
	// Default 4096.
	MaxN int
	// MaxJobs bounds the finished-job history kept for GET /v1/jobs/{id};
	// the oldest finished jobs are forgotten beyond it. Default 1024.
	MaxJobs int
	// NoTrace disables per-job tracing. By default jobs run with tracing on
	// and the measured per-kernel totals accumulate into /metrics.
	NoTrace bool
	// StoreDir enables the disk-backed factor store: completed
	// factorizations spill to <StoreDir>/<digest>.fact and warm-load on a
	// cache miss after a restart. Empty disables persistence.
	StoreDir string
	// StoreMaxBytes caps the factor store's total on-disk size; the coldest
	// files are evicted beyond it. Default 1 GiB. Only meaningful with
	// StoreDir.
	StoreMaxBytes int64
	// Tuner, when set, resolves the tile size / inner block / worker count
	// for requests that leave nb unset: first use of a matrix class probes a
	// few operating points and persists the winner (see internal/tune), so
	// later requests and restarts skip the probe. Nil disables autotuning.
	Tuner *tune.Tuner
	// LearnAlpha enables online α learning (requires Tuner): LUQR jobs with
	// alpha unset resolve the class's learned threshold, and every finished
	// learnable job's decision ratio / growth / backward error feed the
	// learner. Learner-feeding jobs run with growth tracking on (an extra
	// O(N²) read per step).
	LearnAlpha bool
}

func (o Options) withDefaults() Options {
	if o.QueueSize <= 0 {
		o.QueueSize = 64
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 2
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 16
	}
	if o.MaxN <= 0 {
		o.MaxN = 4096
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 1024
	}
	if o.StoreMaxBytes <= 0 {
		o.StoreMaxBytes = 1 << 30
	}
	return o
}

// Manager owns the job queue, the worker pool, and the factorization cache.
type Manager struct {
	opts  Options
	queue chan *Job
	cache *cache
	met   Metrics
	start time.Time

	mu       sync.Mutex
	jobs     map[string]*Job
	finished []string // finished-job IDs, oldest first (history eviction)
	nextID   int64

	root     context.Context
	cancel   context.CancelFunc
	drainCh  chan struct{}
	draining atomic.Bool
	wg       sync.WaitGroup
}

// NewManager starts a manager with opts.Concurrency job workers. With
// Options.StoreDir set, it also opens the disk-backed factor store (creating
// the directory, adopting existing spills, cleaning up crashed writes) —
// failure there fails construction.
func NewManager(opts Options) (*Manager, error) {
	opts = opts.withDefaults()
	m := &Manager{
		opts:    opts,
		queue:   make(chan *Job, opts.QueueSize),
		jobs:    make(map[string]*Job),
		drainCh: make(chan struct{}),
		start:   time.Now(),
	}
	m.cache = newCache(opts.CacheEntries, &m.met)
	if opts.StoreDir != "" {
		st, err := newStore(opts.StoreDir, opts.StoreMaxBytes, &m.met)
		if err != nil {
			return nil, err
		}
		m.cache.store = st
	}
	m.root, m.cancel = context.WithCancel(context.Background())
	m.wg.Add(opts.Concurrency)
	for i := 0; i < opts.Concurrency; i++ {
		go m.worker()
	}
	return m, nil
}

// Options returns the effective (defaulted) options.
func (m *Manager) Options() Options { return m.opts }

// Uptime reports how long the manager has been running.
func (m *Manager) Uptime() time.Duration { return time.Since(m.start) }

// Submit enqueues a parsed factorization job. It never blocks: a full queue
// returns ErrQueueFull, a draining manager ErrDraining.
func (m *Manager) Submit(p *parsedRequest) (*Job, error) {
	if m.draining.Load() {
		m.met.Rejected.Add(1)
		return nil, ErrDraining
	}
	m.mu.Lock()
	m.nextID++
	j := newJob(m.nextID, p, m.root)
	m.mu.Unlock()
	select {
	case m.queue <- j:
	default:
		m.met.Rejected.Add(1)
		return nil, ErrQueueFull
	}
	m.mu.Lock()
	m.jobs[j.ID] = j
	m.mu.Unlock()
	m.met.Submitted.Add(1)
	return j, nil
}

// Job looks a job up by ID.
func (m *Manager) Job(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Cancel cancels a queued job. It reports false when the job has already
// started (a running factorization cannot be aborted mid-kernel) or
// finished.
func (m *Manager) Cancel(id string) (*Job, bool, error) {
	j, ok := m.Job(id)
	if !ok {
		return nil, false, errors.New("service: no such job")
	}
	canceled := j.tryCancel()
	if canceled {
		m.met.Canceled.Add(1)
		m.retire(j.ID)
	}
	return j, canceled, nil
}

// retire records a terminal job in the bounded history, forgetting the
// oldest terminal jobs beyond Options.MaxJobs.
func (m *Manager) retire(id string) {
	m.mu.Lock()
	m.finished = append(m.finished, id)
	for len(m.finished) > m.opts.MaxJobs {
		delete(m.jobs, m.finished[0])
		m.finished = m.finished[1:]
	}
	m.mu.Unlock()
}

// QueueDepth samples the number of jobs waiting in the submission queue.
func (m *Manager) QueueDepth() int { return len(m.queue) }

func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case j := <-m.queue:
			m.runJob(j)
		case <-m.drainCh:
			// Drain started: finish whatever is still queued, then exit.
			for {
				select {
				case j := <-m.queue:
					m.runJob(j)
				default:
					return
				}
			}
		}
	}
}

// runJob executes one factorization job: reuse the cached factorization for
// its digest when one exists (or is in flight), factor otherwise.
func (m *Manager) runJob(j *Job) {
	if !j.markRunning() {
		return // canceled while queued
	}
	if j.ctx.Err() != nil {
		m.finishJob(j, nil, errors.New("service: canceled: server shutting down"))
		return
	}
	e, created := m.cache.getOrCreate(j.req.key)
	if !created {
		// The factorization exists or is being computed by another worker;
		// share it. The creator always completes the entry, so this wait
		// terminates.
		<-e.ready
		if e.err != nil {
			m.finishJob(j, nil, e.err)
			return
		}
		m.met.CacheHits.Add(1)
		m.finishJob(j, e.res, nil)
		return
	}
	m.met.CacheMisses.Add(1)
	cfg := j.req.cfg
	if cfg.Workers == 0 {
		cfg.Workers = m.opts.Workers
	}
	cfg.Trace = !m.opts.NoTrace
	learning := m.opts.LearnAlpha && m.opts.Tuner != nil && j.req.alphaCrit != ""
	if learning {
		// The learner's excursion test wants the PEAK intermediate growth,
		// not just the final factor's — pay the tracking cost only for jobs
		// that actually feed it.
		cfg.TrackGrowth = true
	}
	res, err := core.Run(j.req.a, j.req.b, cfg)
	if err == nil && learning {
		// Observations happen only here, on actual factorizations — a cache
		// hit re-serves an old result and carries no new signal.
		r := res.Report
		m.opts.Tuner.Observe(r.N, r.Alg.String(), tune.Observation{
			Criterion:  j.req.alphaCrit,
			Alpha:      j.req.alpha,
			FracLU:     r.FracLU(),
			Growth:     r.Growth,
			PeakGrowth: r.PeakGrowth,
			HPL3:       r.HPL3,
			Breakdown:  r.Breakdown,
		})
	}
	if err == nil {
		if r := res.Report; r.Precision != core.PrecisionF64 {
			if r.F32Steps > 0 {
				m.met.F32Jobs.Add(1)
			}
			m.met.F32Steps.Add(int64(r.F32Steps))
			m.met.Demotions.Add(int64(r.Demotions))
			m.met.F32Epochs.Add(int64(r.F32Epochs))
			m.met.Conversions.Add(int64(r.Conversions))
			m.met.RefineIters.Add(int64(r.RefineIters))
		}
		if res.Report.Trace != nil {
			// Fold the measured per-kernel totals into /metrics, then drop
			// the trace: the cache retains the Result for replay solves, and
			// the raw trace is the only unbounded part of it.
			m.met.AddKernels(runtime.ComputeStats(res.Report.Trace).Snapshot())
			res.Report.Trace = nil
		}
		m.met.AddSched(res.Report.Sched)
		// Persist the fresh factorization (async; Drain flushes stragglers).
		m.cache.spill(j.req.key, res)
	}
	e.complete(res, err)
	if err != nil {
		// Remove the failed entry so a later submission may retry.
		m.cache.remove(j.req.key)
	}
	m.finishJob(j, res, err)
}

// finishJob moves a job to its terminal state and trims the job history.
func (m *Manager) finishJob(j *Job, res *core.Result, err error) {
	j.finish(res, err)
	if err != nil {
		m.met.Failed.Add(1)
	} else {
		m.met.Done.Add(1)
	}
	m.retire(j.ID)
}

// Solve answers one solve request against the factorization cache: a hit
// pays only the batched replay + back-substitution; a miss routes the
// factorization through the job queue (so concurrency limits and 429
// backpressure apply uniformly) and then solves. ctx bounds the wait for an
// in-flight factorization — typically the HTTP request context.
func (m *Manager) Solve(ctx context.Context, p *parsedRequest, rhs []float64) (x []float64, hit bool, batch int, jobID string, err error) {
	m.met.SolveRequests.Add(1)
	if e, ok := m.cache.lookup(p.key); ok {
		select {
		case <-e.ready:
		case <-ctx.Done():
			return nil, false, 0, "", ctx.Err()
		}
		if e.err == nil {
			m.met.CacheHits.Add(1)
			x, batch, err = e.solve(rhs, &m.met)
			return x, true, batch, "", err
		}
		// The failed entry has been removed from the cache by its creator;
		// fall through and re-factor.
	}
	j, err := m.Submit(p)
	if err != nil {
		return nil, false, 0, "", err
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return nil, false, 0, j.ID, ctx.Err()
	}
	if jerr := j.Err(); jerr != nil {
		return nil, false, 0, j.ID, jerr
	}
	e, ok := m.cache.lookup(p.key)
	if !ok {
		return nil, false, 0, j.ID, errors.New("service: factorization evicted before solve")
	}
	<-e.ready
	if e.err != nil {
		return nil, false, 0, j.ID, e.err
	}
	x, batch, err = e.solve(rhs, &m.met)
	return x, false, batch, j.ID, err
}

// Drain stops accepting work, runs every queued job to completion, and
// waits for the workers to finish. When ctx expires first, the root context
// is canceled — jobs not yet started fail fast with "canceled" — and
// Drain returns ctx's error; running kernels still finish in the
// background. Drain is idempotent; only the first call closes the intake.
func (m *Manager) Drain(ctx context.Context) error {
	if m.draining.CompareAndSwap(false, true) {
		close(m.drainCh)
	}
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		// Flush in-flight factor spills before declaring the drain complete:
		// a restart should find everything the old process factored. Each
		// spill starts before its worker exits, so the WaitGroup ordering
		// holds.
		m.cache.waitSpills()
		close(done)
	}()
	select {
	case <-done:
		m.failLeftovers()
		return nil
	case <-ctx.Done():
		m.cancel()
		return ctx.Err()
	}
}

// failLeftovers fails any job that slipped into the queue after the workers
// exited (the Submit/Drain race window), so no waiter hangs.
func (m *Manager) failLeftovers() {
	for {
		select {
		case j := <-m.queue:
			if j.markRunning() {
				m.finishJob(j, nil, errors.New("service: canceled: server shutting down"))
			}
		default:
			return
		}
	}
}
