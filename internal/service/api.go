package service

import (
	"fmt"
	"math"
	"math/rand"

	"luqr/internal/core"
	"luqr/internal/criteria"
	"luqr/internal/lapack"
	"luqr/internal/mat"
	"luqr/internal/matgen"
	"luqr/internal/tune"
)

// MatrixSpec names the operator of a request: either a generator from the
// experiment set ("random", "fiedler", ...) with a seed, or explicit
// row-major data. Generator-specified matrices cache by (gen, n, seed) and
// never ship N² floats over the wire.
type MatrixSpec struct {
	N    int       `json:"n"`
	Gen  string    `json:"gen,omitempty"`
	Seed int64     `json:"seed,omitempty"`
	Data []float64 `json:"data,omitempty"`
}

// ConfigSpec is the wire form of core.Config. Zero values take the library
// defaults (alg=luqr, nb=40, 1x1 grid, max criterion with alpha=100).
//
// Alpha is a pointer so an explicit `"alpha": 0` — the α = 0 degenerate
// case of §III, where every criterion refuses LU and the run is pure HQR —
// is distinguishable from the field being absent. A plain float64 silently
// remapped requested-0 to the default. An absent alpha resolves to the
// class's learned value when α learning is on (Options.LearnAlpha and a
// tuner with samples for the class), else to the paper's default 100.
type ConfigSpec struct {
	Alg       string   `json:"alg,omitempty"`
	NB        int      `json:"nb,omitempty"`
	IB        int      `json:"ib,omitempty"`
	P         int      `json:"p,omitempty"`
	Q         int      `json:"q,omitempty"`
	Criterion string   `json:"criterion,omitempty"`
	Alpha     *float64 `json:"alpha,omitempty"`
	Variant   string   `json:"variant,omitempty"`
	Workers   int      `json:"workers,omitempty"`
	Seed      int64    `json:"seed,omitempty"`
	// Precision selects the kernel precision: "f64" (default), "auto"
	// (criterion margin picks float32 per LU step, refined in the solve), or
	// "f32" (every kernel forced through the float32 path). Algorithms
	// without float32 coverage silently run f64; the cache digest reflects
	// the EFFECTIVE precision, so such requests share the f64 factorization.
	Precision string `json:"precision,omitempty"`
}

// SubmitRequest is the body of POST /v1/jobs. RHS is optional: jobs
// factor and solve against it (default: the all-ones vector), and the
// factorization lands in the cache either way.
type SubmitRequest struct {
	Matrix MatrixSpec `json:"matrix"`
	Config ConfigSpec `json:"config"`
	RHS    []float64  `json:"rhs,omitempty"`
}

// SolveRequest is the body of POST /v1/solve: solve A·x = rhs, reusing the
// cached factorization of A when one exists.
type SolveRequest struct {
	Matrix MatrixSpec `json:"matrix"`
	Config ConfigSpec `json:"config"`
	RHS    []float64  `json:"rhs,omitempty"`
}

// parsedRequest is a validated, materialized request: the operator, the
// right-hand side, the resolved core.Config, and the cache key its
// factorization stores under.
type parsedRequest struct {
	a         *mat.Matrix
	b         []float64
	cfg       core.Config
	key       string
	criterion string
	// tuned is set when the autotuner chose the tile size (request left nb
	// unset and a tuner is configured); it is echoed in the job view.
	tuned *tune.Entry
	// alpha is the effective robustness threshold of a LUQR run and
	// alphaSource how it was resolved: "explicit" (the request set it),
	// "learned" (the tuner's per-class α), or "default" (100).
	alpha       float64
	alphaSource string
	// alphaCrit is the base criterion family ("max", "sum", "mumps") when
	// this run's outcome should feed the α learner, "" otherwise.
	alphaCrit string
}

// parse validates a request against the service limits and materializes the
// operator. opts.MaxN guards against a single request exhausting memory.
// With a tuner configured, requests that leave nb unset resolve it through
// the tuning table (first use of a class probes and persists) — the tuned
// nb, ib, and (with learning on) α land in cfg before the cache key is
// derived, so differently-tuned classes never collide in the factorization
// cache or the disk store.
func parse(spec MatrixSpec, cs ConfigSpec, rhs []float64, opts Options) (*parsedRequest, error) {
	tuner := opts.Tuner
	n := spec.N
	if n <= 0 {
		return nil, fmt.Errorf("matrix.n must be positive, got %d", n)
	}
	if n > opts.MaxN {
		return nil, fmt.Errorf("matrix.n=%d exceeds the service limit %d", n, opts.MaxN)
	}

	var a *mat.Matrix
	switch {
	case spec.Gen != "" && spec.Data != nil:
		return nil, fmt.Errorf("matrix.gen and matrix.data are mutually exclusive")
	case spec.Gen != "":
		e, err := matgen.ByName(spec.Gen)
		if err != nil {
			return nil, err
		}
		a = e.Gen(n, rand.New(rand.NewSource(spec.Seed)))
	case spec.Data != nil:
		if len(spec.Data) != n*n {
			return nil, fmt.Errorf("matrix.data has %d entries, want n*n = %d", len(spec.Data), n*n)
		}
		a = mat.New(n, n)
		copy(a.Data, spec.Data)
	default:
		return nil, fmt.Errorf("matrix needs either gen or data")
	}

	var cfg core.Config
	if cs.Alg != "" {
		alg, err := core.ParseAlgorithm(cs.Alg)
		if err != nil {
			return nil, err
		}
		cfg.Alg = alg
	}
	cfg.NB = cs.NB
	if cs.IB < 0 {
		return nil, fmt.Errorf("config.ib must be non-negative, got %d", cs.IB)
	}
	cfg.IB = cs.IB
	var tuned *tune.Entry
	if cfg.NB <= 0 && tuner != nil {
		if e, _, err := tuner.Tune(n, cfg.Alg.String()); err == nil {
			cfg.NB = e.NB
			if cfg.IB == 0 && e.IB > 0 {
				cfg.IB = e.IB
			}
			tuned = &e
		}
	}
	if cfg.NB <= 0 {
		cfg.NB = 40
	}
	if cfg.IB == 0 {
		// Pin the effective inner block size now: it is part of the cache
		// digest, and a digest derived from "whatever the process default
		// happens to be at run time" would not name the factors it stores.
		cfg.IB = lapack.PanelIB()
	}
	if n%cfg.NB != 0 {
		return nil, fmt.Errorf("n=%d is not a multiple of nb=%d", n, cfg.NB)
	}
	if (cs.P == 0) != (cs.Q == 0) {
		return nil, fmt.Errorf("config.p and config.q must be set together")
	}
	if cs.P < 0 || cs.Q < 0 {
		return nil, fmt.Errorf("config.p and config.q must be non-negative")
	}
	cfg.Grid.P, cfg.Grid.Q = cs.P, cs.Q
	if cs.Alpha != nil && (*cs.Alpha < 0 || math.IsNaN(*cs.Alpha)) {
		return nil, fmt.Errorf("config.alpha must be non-negative, got %g", *cs.Alpha)
	}
	critName := cs.Criterion
	var alpha float64
	var alphaSource, alphaCrit string
	if cfg.Alg == core.LUQR {
		if critName == "" {
			critName = "max"
		}
		// Resolve the effective threshold: an explicit alpha is honored as
		// given (including 0 — pure HQR: no pivot ever clears α·reference);
		// an absent one takes the class's learned α when learning is on and
		// the tuner has samples for this (class, criterion family), else the
		// paper's default 100.
		alpha, alphaSource = 100.0, "default"
		if cs.Alpha != nil {
			alpha, alphaSource = *cs.Alpha, "explicit"
		} else if opts.LearnAlpha && tuner != nil && tune.LearnableCriterion(critName) {
			if st, ok := tuner.Alpha(n, cfg.Alg.String(), critName); ok {
				alpha, alphaSource = st.Alpha, "learned"
			}
		}
		crit, err := criteria.Parse(critName, alpha)
		if err != nil {
			return nil, err
		}
		cfg.Criterion = crit
		if opts.LearnAlpha && tuner != nil && tune.LearnableCriterion(critName) {
			alphaCrit = critName
		}
		critName = fmt.Sprintf("%s/%g", critName, alpha)
	} else {
		critName = ""
	}
	if cs.Variant != "" {
		v, err := core.ParseVariant(cs.Variant)
		if err != nil {
			return nil, err
		}
		cfg.Variant = v
	}
	prec, err := core.ParsePrecision(cs.Precision)
	if err != nil {
		return nil, err
	}
	cfg.Precision = prec
	if cs.Workers < 0 {
		return nil, fmt.Errorf("config.workers must be non-negative")
	}
	cfg.Workers = cs.Workers
	if cfg.Workers == 0 && tuned != nil && tuned.Workers > 0 {
		cfg.Workers = tuned.Workers
	}
	cfg.Seed = cs.Seed

	b := rhs
	if b == nil {
		b = make([]float64, n)
		for i := range b {
			b[i] = 1
		}
	} else if len(b) != n {
		return nil, fmt.Errorf("rhs has %d entries, want n = %d", len(b), n)
	}

	return &parsedRequest{
		a:           a,
		b:           b,
		cfg:         cfg,
		key:         digestKey(spec, cfg, critName),
		criterion:   critName,
		tuned:       tuned,
		alpha:       alpha,
		alphaSource: alphaSource,
		alphaCrit:   alphaCrit,
	}, nil
}
