package service

import (
	"sync"
	"sync/atomic"

	"luqr/internal/runtime"
	"luqr/internal/tune"
)

// Metrics is the service's running counter set. All counters are atomic;
// the kernel/scheduler aggregates are folded under a mutex by the job
// workers and read by /metrics.
type Metrics struct {
	Submitted atomic.Int64
	Rejected  atomic.Int64 // queue-full and draining refusals (429/503)
	Done      atomic.Int64
	Failed    atomic.Int64
	Canceled  atomic.Int64

	CacheHits      atomic.Int64
	CacheMisses    atomic.Int64
	CacheEvictions atomic.Int64

	SolveRequests   atomic.Int64
	SolveBatches    atomic.Int64
	SolveBatchedRHS atomic.Int64
	SolveMaxBatch   atomic.Int64

	// Mixed-precision accounting, folded per fresh factorization (cache hits
	// re-serve old factors and add nothing).
	F32Jobs     atomic.Int64 // runs that accepted at least one f32 step
	F32Steps    atomic.Int64 // accepted f32 steps across all runs
	Demotions   atomic.Int64 // f32 excursions demoted back to f64
	F32Epochs   atomic.Int64 // tile promotions into float32 residency
	Conversions atomic.Int64 // epoch-boundary conversion passes (round + widen)
	RefineIters atomic.Int64 // iterative-refinement rounds in solves

	// Factor-store counters (all zero when persistence is disabled).
	StoreWarmHits    atomic.Int64 // cache misses served by a disk load
	StoreLoadErrors  atomic.Int64 // damaged/unreadable files (quarantined)
	StoreLoadBytes   atomic.Int64
	StoreLoadNS      atomic.Int64
	StoreSpills      atomic.Int64
	StoreSpillErrors atomic.Int64
	StoreSpillBytes  atomic.Int64
	StoreSpillNS     atomic.Int64
	StoreEvictions   atomic.Int64 // files evicted by the byte cap

	mu      sync.Mutex
	kernels runtime.StatsSnapshot
	sched   runtime.SchedCounters
}

// AddKernels folds one run's measured per-kernel totals into the aggregate.
func (m *Metrics) AddKernels(s runtime.StatsSnapshot) {
	m.mu.Lock()
	m.kernels.Add(s)
	m.mu.Unlock()
}

// AddSched folds one run's scheduler dispatch counters into the aggregate.
func (m *Metrics) AddSched(c runtime.SchedCounters) {
	m.mu.Lock()
	m.sched.LaneHits += c.LaneHits
	m.sched.LocalHits += c.LocalHits
	m.sched.Steals += c.Steals
	m.sched.RemoteReleases += c.RemoteReleases
	m.sched.Parks += c.Parks
	m.mu.Unlock()
}

// foldMaxBatch records a batch size into the running maximum.
func (m *Metrics) foldMaxBatch(n int64) {
	for {
		cur := m.SolveMaxBatch.Load()
		if n <= cur || m.SolveMaxBatch.CompareAndSwap(cur, n) {
			return
		}
	}
}

// MetricsSnapshot is the JSON shape of GET /metrics.
type MetricsSnapshot struct {
	UptimeS float64 `json:"uptime_s"`

	Queue struct {
		Depth    int   `json:"depth"`
		Capacity int   `json:"capacity"`
		Rejected int64 `json:"rejected_total"`
	} `json:"queue"`

	Jobs struct {
		Submitted int64 `json:"submitted_total"`
		Queued    int   `json:"queued"`
		Running   int   `json:"running"`
		Done      int64 `json:"done_total"`
		Failed    int64 `json:"failed_total"`
		Canceled  int64 `json:"canceled_total"`
	} `json:"jobs"`

	Cache struct {
		Entries   int     `json:"entries"`
		Capacity  int     `json:"capacity"`
		Hits      int64   `json:"hits"`
		Misses    int64   `json:"misses"`
		HitRate   float64 `json:"hit_rate"`
		Evictions int64   `json:"evictions"`
	} `json:"cache"`

	Precision struct {
		F32Jobs     int64 `json:"f32_jobs"`
		F32Steps    int64 `json:"f32_steps"`
		Demotions   int64 `json:"demotions"`
		F32Epochs   int64 `json:"f32_epochs"`
		Conversions int64 `json:"conversions"`
		RefineIters int64 `json:"refine_iters"`
	} `json:"precision"`

	Solve struct {
		Requests   int64   `json:"requests"`
		Batches    int64   `json:"batches"`
		BatchedRHS int64   `json:"batched_rhs"`
		MeanBatch  float64 `json:"mean_batch"`
		MaxBatch   int64   `json:"max_batch"`
	} `json:"solve"`

	Store struct {
		Enabled     bool    `json:"enabled"`
		Files       int     `json:"files"`
		Bytes       int64   `json:"bytes"`
		MaxBytes    int64   `json:"max_bytes"`
		WarmHits    int64   `json:"warm_hits"`
		LoadErrors  int64   `json:"load_errors"`
		LoadBytes   int64   `json:"load_bytes"`
		MeanLoadMS  float64 `json:"mean_load_ms"`
		Spills      int64   `json:"spills"`
		SpillErrors int64   `json:"spill_errors"`
		SpillBytes  int64   `json:"spill_bytes"`
		MeanSpillMS float64 `json:"mean_spill_ms"`
		Evictions   int64   `json:"evictions"`
	} `json:"store"`

	Tune struct {
		Enabled    bool   `json:"enabled"`
		Path       string `json:"path,omitempty"`
		Machine    string `json:"machine,omitempty"`
		Probes     int64  `json:"probes"`
		Hits       int64  `json:"hits"`
		LoadErrors int64  `json:"load_errors"`
		// α-learning observability: whether learning is on, how many
		// classes hold a learned α, and the learner's update/backoff
		// counters (see tune.Stats).
		AlphaLearning bool                  `json:"alpha_learning"`
		AlphaClasses  int                   `json:"alpha_classes"`
		AlphaUpdates  int64                 `json:"alpha_updates"`
		AlphaBackoffs int64                 `json:"alpha_backoffs"`
		Classes       map[string]tune.Entry `json:"classes,omitempty"`
	} `json:"tune"`

	Kernels runtime.StatsSnapshot `json:"kernels"`

	Sched struct {
		LaneHits       int64   `json:"lane_hits"`
		LocalHits      int64   `json:"local_hits"`
		Steals         int64   `json:"steals"`
		RemoteReleases int64   `json:"remote_releases"`
		Parks          int64   `json:"parks"`
		LocalHitRate   float64 `json:"local_hit_rate"`
	} `json:"sched"`
}

// MetricsSnapshot assembles the ops view: counters, queue depth, jobs by
// state, cache occupancy and hit rate, solve batching, and the accumulated
// per-kernel measured totals of every factorization run so far.
func (m *Manager) MetricsSnapshot() MetricsSnapshot {
	var s MetricsSnapshot
	s.UptimeS = m.Uptime().Seconds()

	s.Queue.Depth = m.QueueDepth()
	s.Queue.Capacity = m.opts.QueueSize
	s.Queue.Rejected = m.met.Rejected.Load()

	s.Jobs.Submitted = m.met.Submitted.Load()
	s.Jobs.Done = m.met.Done.Load()
	s.Jobs.Failed = m.met.Failed.Load()
	s.Jobs.Canceled = m.met.Canceled.Load()
	m.mu.Lock()
	for _, j := range m.jobs {
		switch j.State() {
		case StateQueued:
			s.Jobs.Queued++
		case StateRunning:
			s.Jobs.Running++
		}
	}
	m.mu.Unlock()

	s.Cache.Entries = m.cache.len()
	s.Cache.Capacity = m.opts.CacheEntries
	s.Cache.Hits = m.met.CacheHits.Load()
	s.Cache.Misses = m.met.CacheMisses.Load()
	if tot := s.Cache.Hits + s.Cache.Misses; tot > 0 {
		s.Cache.HitRate = float64(s.Cache.Hits) / float64(tot)
	}
	s.Cache.Evictions = m.met.CacheEvictions.Load()

	s.Precision.F32Jobs = m.met.F32Jobs.Load()
	s.Precision.F32Steps = m.met.F32Steps.Load()
	s.Precision.Demotions = m.met.Demotions.Load()
	s.Precision.F32Epochs = m.met.F32Epochs.Load()
	s.Precision.Conversions = m.met.Conversions.Load()
	s.Precision.RefineIters = m.met.RefineIters.Load()

	s.Solve.Requests = m.met.SolveRequests.Load()
	s.Solve.Batches = m.met.SolveBatches.Load()
	s.Solve.BatchedRHS = m.met.SolveBatchedRHS.Load()
	if s.Solve.Batches > 0 {
		s.Solve.MeanBatch = float64(s.Solve.BatchedRHS) / float64(s.Solve.Batches)
	}
	s.Solve.MaxBatch = m.met.SolveMaxBatch.Load()

	if st := m.cache.store; st != nil {
		s.Store.Enabled = true
		s.Store.Files, s.Store.Bytes = st.stats()
		s.Store.MaxBytes = st.maxBytes
		s.Store.WarmHits = m.met.StoreWarmHits.Load()
		s.Store.LoadErrors = m.met.StoreLoadErrors.Load()
		s.Store.LoadBytes = m.met.StoreLoadBytes.Load()
		if s.Store.WarmHits > 0 {
			s.Store.MeanLoadMS = float64(m.met.StoreLoadNS.Load()) / float64(s.Store.WarmHits) / 1e6
		}
		s.Store.Spills = m.met.StoreSpills.Load()
		s.Store.SpillErrors = m.met.StoreSpillErrors.Load()
		s.Store.SpillBytes = m.met.StoreSpillBytes.Load()
		if s.Store.Spills > 0 {
			s.Store.MeanSpillMS = float64(m.met.StoreSpillNS.Load()) / float64(s.Store.Spills) / 1e6
		}
		s.Store.Evictions = m.met.StoreEvictions.Load()
	}

	if tn := m.opts.Tuner; tn != nil {
		st := tn.Stats()
		s.Tune.Enabled = true
		s.Tune.Path = st.Path
		s.Tune.Machine = st.Machine
		s.Tune.Probes = st.Probes
		s.Tune.Hits = st.Hits
		s.Tune.LoadErrors = st.LoadErrors
		s.Tune.AlphaLearning = m.opts.LearnAlpha
		s.Tune.AlphaClasses = st.AlphaClasses
		s.Tune.AlphaUpdates = st.AlphaUpdates
		s.Tune.AlphaBackoffs = st.AlphaBackoffs
		s.Tune.Classes = tn.Classes()
	}

	m.met.mu.Lock()
	s.Kernels = m.met.kernels
	if s.Kernels.Kernels != nil {
		// Copy the map so the snapshot is stable while workers keep folding.
		ks := make(map[string]runtime.KernelSnapshot, len(s.Kernels.Kernels))
		for k, v := range s.Kernels.Kernels {
			ks[k] = v
		}
		s.Kernels.Kernels = ks
	}
	c := m.met.sched
	m.met.mu.Unlock()
	s.Sched.LaneHits = c.LaneHits
	s.Sched.LocalHits = c.LocalHits
	s.Sched.Steals = c.Steals
	s.Sched.RemoteReleases = c.RemoteReleases
	s.Sched.Parks = c.Parks
	s.Sched.LocalHitRate = c.LocalHitRate()
	return s
}
