package tune

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// fakeBench returns a deterministic rate per point so probe outcomes are
// reproducible: nb=192 wins, everything else loses.
func fakeBench(calls *[]Point) BenchFunc {
	return func(p Point, n int, alg string) (float64, error) {
		if calls != nil {
			*calls = append(*calls, p)
		}
		if p.NB == 192 {
			return 10 + float64(p.Workers), nil
		}
		return 5, nil
	}
}

// fakeClock advances one second per reading, starting from a fixed epoch —
// the probe's timestamps are fully determined.
func fakeClock() func() time.Time {
	t := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	return func() time.Time {
		t = t.Add(time.Second)
		return t
	}
}

func testTuner(path string, calls *[]Point) *Tuner {
	return New(Options{
		Path: path,
		Candidates: []Point{
			{NB: 128, IB: 32, Workers: 1},
			{NB: 192, IB: 32, Workers: 1},
			{NB: 256, IB: 32, Workers: 1},
		},
		Bench:   fakeBench(calls),
		Now:     fakeClock(),
		Machine: "test-machine",
	})
}

func TestProbeDeterministic(t *testing.T) {
	var calls1, calls2 []Point
	e1, probed, err := testTuner("", &calls1).Tune(768, "luqr")
	if err != nil || !probed {
		t.Fatalf("first Tune: probed=%v err=%v", probed, err)
	}
	e2, _, err := testTuner("", &calls2).Tune(768, "luqr")
	if err != nil {
		t.Fatal(err)
	}
	if e1.Point != e2.Point || e1.GFlops != e2.GFlops || e1.ProbedAt != e2.ProbedAt {
		t.Fatalf("probe not deterministic: %+v vs %+v", e1, e2)
	}
	if e1.NB != 192 {
		t.Fatalf("wrong winner: %+v", e1)
	}
	if e1.ProbedAt != "2026-01-02T03:04:06Z" {
		t.Fatalf("fake clock not honored: %q", e1.ProbedAt)
	}
	if len(calls1) != 3 || len(calls2) != 3 {
		t.Fatalf("expected 3 probes per sweep, got %d and %d", len(calls1), len(calls2))
	}
}

func TestCandidateFilteringByDivisibility(t *testing.T) {
	var calls []Point
	e, _, err := testTuner("", &calls).Tune(512, "luqr") // 192 does not divide 512
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range calls {
		if 512%p.NB != 0 {
			t.Fatalf("probed non-divisor nb=%d", p.NB)
		}
	}
	if e.NB != 128 && e.NB != 256 {
		t.Fatalf("winner nb=%d does not divide 512", e.NB)
	}
	// No candidate fits a prime order: the tuner declines with an error.
	if _, _, err := testTuner("", nil).Tune(101, "luqr"); err == nil {
		t.Fatal("expected an error when no candidate divides n")
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "tuning.json")
	var calls []Point
	tun := testTuner(path, &calls)
	e1, probed, err := tun.Tune(768, "luqr")
	if err != nil || !probed {
		t.Fatalf("first Tune: probed=%v err=%v", probed, err)
	}
	if len(calls) != 3 {
		t.Fatalf("first Tune probed %d points, want 3", len(calls))
	}
	// Same process, same class: memory hit, no new probes.
	if _, probed, _ := tun.Tune(768, "luqr"); probed {
		t.Fatal("second Tune in-process re-probed")
	}
	// Fresh tuner (a restart): the persisted table answers, probe skipped.
	calls = calls[:0]
	tun2 := testTuner(path, &calls)
	e2, probed, err := tun2.Tune(768, "luqr")
	if err != nil {
		t.Fatal(err)
	}
	if probed || len(calls) != 0 {
		t.Fatalf("restart re-probed (probed=%v, %d bench calls)", probed, len(calls))
	}
	if e1.Point != e2.Point || e1.GFlops != e2.GFlops || e1.ProbedAt != e2.ProbedAt {
		t.Fatalf("persisted entry differs: %+v vs %+v", e1, e2)
	}
	st := tun2.Stats()
	if st.Hits != 1 || st.Probes != 0 || st.Classes != 1 {
		t.Fatalf("stats after warm restart: %+v", st)
	}
}

func TestMachineMismatchReprobes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tuning.json")
	if _, _, err := testTuner(path, nil).Tune(768, "luqr"); err != nil {
		t.Fatal(err)
	}
	other := New(Options{
		Path:       path,
		Candidates: []Point{{NB: 128, IB: 32, Workers: 1}},
		Bench:      fakeBench(nil),
		Now:        fakeClock(),
		Machine:    "other-machine",
	})
	e, probed, err := other.Tune(768, "luqr")
	if err != nil {
		t.Fatal(err)
	}
	if !probed {
		t.Fatal("entry probed on one machine was applied on another")
	}
	if e.NB != 128 {
		t.Fatalf("re-probe ignored the machine's own candidates: %+v", e)
	}
	// Both machines' entries coexist in the file.
	tab, q, err := loadTable(path)
	if err != nil || q {
		t.Fatalf("loadTable: q=%v err=%v", q, err)
	}
	if len(tab.Machines) != 2 {
		t.Fatalf("want 2 machines in table, got %d", len(tab.Machines))
	}
}

func TestCorruptTableQuarantinedAndReprobed(t *testing.T) {
	for name, damage := range map[string]func(path string) error{
		"truncated": func(path string) error {
			data, _ := os.ReadFile(path)
			return os.WriteFile(path, data[:len(data)/2], 0o644)
		},
		"bitflip": func(path string) error {
			data, _ := os.ReadFile(path)
			// Flip a byte inside the table payload, invalidating the checksum
			// while keeping the JSON well-formed where possible.
			for i := range data {
				if data[i] == '1' {
					data[i] = '7'
					break
				}
			}
			return os.WriteFile(path, data, 0o644)
		},
		"version-skew": func(path string) error {
			data, _ := os.ReadFile(path)
			var w fileWrapper
			if err := json.Unmarshal(data, &w); err != nil {
				return err
			}
			w.Version = TableVersion + 99
			out, err := json.Marshal(w)
			if err != nil {
				return err
			}
			return os.WriteFile(path, out, 0o644)
		},
		"garbage": func(path string) error {
			return os.WriteFile(path, []byte("not json at all"), 0o644)
		},
	} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "tuning.json")
			if _, _, err := testTuner(path, nil).Tune(768, "luqr"); err != nil {
				t.Fatal(err)
			}
			if err := damage(path); err != nil {
				t.Fatal(err)
			}
			var calls []Point
			tun := testTuner(path, &calls)
			_, probed, err := tun.Tune(768, "luqr")
			if err != nil {
				t.Fatal(err)
			}
			if !probed {
				t.Fatal("damaged table was trusted")
			}
			if st := tun.Stats(); st.LoadErrors != 1 {
				t.Fatalf("LoadErrors = %d, want 1", st.LoadErrors)
			}
			// The damaged file was moved aside, and a fresh valid table was
			// written by the re-probe.
			if _, err := os.Stat(path + ".corrupt"); err != nil {
				t.Fatalf("quarantine file missing: %v", err)
			}
			if tab, q, err := loadTable(path); err != nil || q || len(tab.Machines) != 1 {
				t.Fatalf("re-written table unreadable: q=%v err=%v", q, err)
			}
		})
	}
}

func TestBenchFailuresFallThrough(t *testing.T) {
	// One failing candidate does not sink the probe; all failing returns an
	// error and nothing is persisted.
	path := filepath.Join(t.TempDir(), "tuning.json")
	partial := New(Options{
		Path:       path,
		Candidates: []Point{{NB: 128, IB: 32, Workers: 1}, {NB: 256, IB: 32, Workers: 1}},
		Bench: func(p Point, n int, alg string) (float64, error) {
			if p.NB == 128 {
				return 0, fmt.Errorf("boom")
			}
			return 3, nil
		},
		Now:     fakeClock(),
		Machine: "m",
	})
	e, _, err := partial.Tune(768, "luqr")
	if err != nil || e.NB != 256 {
		t.Fatalf("partial failure: e=%+v err=%v", e, err)
	}

	allFail := New(Options{
		Candidates: []Point{{NB: 128, IB: 32, Workers: 1}},
		Bench: func(Point, int, string) (float64, error) {
			return 0, fmt.Errorf("boom")
		},
		Now:     fakeClock(),
		Machine: "m",
	})
	if _, _, err := allFail.Tune(768, "luqr"); err == nil {
		t.Fatal("expected error when every probe fails")
	}
}

func TestCoreBenchSmoke(t *testing.T) {
	// The real probe measurement on a tiny problem: just verify it runs and
	// returns a positive rate.
	gf, err := CoreBench(Point{NB: 16, IB: 8, Workers: 1}, 64, "luqr")
	if err != nil {
		t.Fatal(err)
	}
	if gf <= 0 {
		t.Fatalf("CoreBench rate = %g", gf)
	}
}
