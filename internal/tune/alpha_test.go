package tune

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func learnerTuner(path string) *Tuner {
	return New(Options{
		Path:    path,
		Bench:   fakeBench(nil),
		Now:     fakeClock(),
		Machine: "test-machine",
	})
}

func TestAlphaLearnRaiseAndAdopt(t *testing.T) {
	tun := learnerTuner("")
	// Stable run, criterion still vetoing some LU steps at the current
	// estimate: raise.
	st, ok := tun.Observe(768, "luqr", Observation{
		Criterion: "max", Alpha: 100, FracLU: 0.5, Growth: 2, HPL3: 0.001,
	})
	if !ok || st.Alpha != 200 || st.Samples != 1 {
		t.Fatalf("raise: %+v ok=%v", st, ok)
	}
	// Stable all-LU run at a higher explicit α: adopt it.
	st, _ = tun.Observe(768, "luqr", Observation{
		Criterion: "max", Alpha: 1000, FracLU: 1, Growth: 2, HPL3: 0.001,
	})
	if st.Alpha != 1000 {
		t.Fatalf("adopt: %+v", st)
	}
	// A lower-α all-LU run must NOT lower the estimate.
	st, _ = tun.Observe(768, "luqr", Observation{
		Criterion: "max", Alpha: 10, FracLU: 1, Growth: 2, HPL3: 0.001,
	})
	if st.Alpha != 1000 {
		t.Fatalf("lower clean run moved α: %+v", st)
	}
	if got, ok := tun.Alpha(768, "luqr", "max"); !ok || got.Alpha != 1000 {
		t.Fatalf("Alpha lookup: %+v ok=%v", got, ok)
	}
	// Criterion families learn independently.
	if _, ok := tun.Alpha(768, "luqr", "sum"); ok {
		t.Fatal("sum criterion has no samples yet")
	}
}

func TestAlphaBackoffOnExcursions(t *testing.T) {
	for name, o := range map[string]Observation{
		"breakdown":  {Criterion: "max", Alpha: 100, FracLU: 1, Growth: 2, HPL3: 0.001, Breakdown: true},
		"growth":     {Criterion: "max", Alpha: 100, FracLU: 1, Growth: 1e6, HPL3: 0.001},
		"peakgrowth": {Criterion: "max", Alpha: 100, FracLU: 1, Growth: 2, PeakGrowth: 1e7, HPL3: 0.001},
		"nan-hpl3":   {Criterion: "max", Alpha: 100, FracLU: 1, Growth: 2, HPL3: math.NaN()},
		"inf-hpl3":   {Criterion: "max", Alpha: 100, FracLU: 1, Growth: 2, HPL3: math.Inf(1)},
	} {
		t.Run(name, func(t *testing.T) {
			tun := learnerTuner("")
			st, ok := tun.Observe(768, "luqr", o)
			if !ok || st.Alpha != 25 || st.Backoffs != 1 {
				t.Fatalf("backoff: %+v ok=%v", st, ok)
			}
		})
	}

	// HPL3 excursion relative to the class's best observed error.
	tun := learnerTuner("")
	tun.Observe(768, "luqr", Observation{Criterion: "max", Alpha: 100, FracLU: 1, Growth: 2, HPL3: 0.5})
	st, _ := tun.Observe(768, "luqr", Observation{Criterion: "max", Alpha: 100, FracLU: 1, Growth: 2, HPL3: 10})
	if st.Backoffs != 1 || st.Alpha != 25 {
		t.Fatalf("hpl3-ratio excursion: %+v", st)
	}
	// Repeated excursions floor at alphaMin.
	for i := 0; i < 10; i++ {
		st, _ = tun.Observe(768, "luqr", Observation{Criterion: "max", Alpha: st.Alpha, FracLU: 1, Growth: 2, Breakdown: true})
	}
	if st.Alpha != alphaMin {
		t.Fatalf("α fell past the floor: %+v", st)
	}

	// Non-learnable criteria are rejected.
	if _, ok := tun.Observe(768, "luqr", Observation{Criterion: "random", Alpha: 100}); ok {
		t.Fatal("random criterion accepted")
	}
}

func TestAlphaPersistRestartApply(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tuning.json")
	tun := learnerTuner(path)
	// Probe the class, then learn: both live in the same entry.
	if _, _, err := tun.Tune(768, "luqr"); err != nil {
		t.Fatal(err)
	}
	tun.Observe(768, "luqr", Observation{Criterion: "max", Alpha: 100, FracLU: 0.5, Growth: 2, HPL3: 0.001})

	// Restart: the learned α applies without re-learning, and the probed
	// point without re-probing.
	tun2 := learnerTuner(path)
	st, ok := tun2.Alpha(768, "luqr", "max")
	if !ok || st.Alpha != 200 || st.Samples != 1 {
		t.Fatalf("restart lost the learned α: %+v ok=%v", st, ok)
	}
	if e, probed, err := tun2.Tune(768, "luqr"); err != nil || probed || e.NB != 192 {
		t.Fatalf("restart lost the probed point: %+v probed=%v err=%v", e, probed, err)
	}
	s := tun2.Stats()
	if s.Classes != 1 || s.AlphaClasses != 1 {
		t.Fatalf("stats after restart: %+v", s)
	}
}

func TestAlphaOnlyEntryDoesNotSatisfyTune(t *testing.T) {
	var calls []Point
	tun := New(Options{
		Candidates: []Point{{NB: 192, IB: 32, Workers: 1}},
		Bench:      fakeBench(&calls),
		Now:        fakeClock(),
		Machine:    "test-machine",
	})
	// Learning before any probe creates an entry with NB == 0; Tune must
	// still probe, and the probe must keep the learned α.
	tun.Observe(768, "luqr", Observation{Criterion: "max", Alpha: 100, FracLU: 0.5, Growth: 2, HPL3: 0.001})
	if _, ok := tun.Best(768, "luqr"); ok {
		t.Fatal("alpha-only entry satisfied Best")
	}
	e, probed, err := tun.Tune(768, "luqr")
	if err != nil || !probed || e.NB != 192 {
		t.Fatalf("Tune after alpha-only entry: %+v probed=%v err=%v", e, probed, err)
	}
	if e.Alphas["max"] == nil || e.Alphas["max"].Alpha != 200 {
		t.Fatalf("probe dropped the learned α: %+v", e.Alphas)
	}
}

func TestTableV1ForwardMigration(t *testing.T) {
	// Handcraft a version-1 table (pre-α format) and check it loads without
	// quarantine: the probed point survives, α starts empty, and learning
	// then upgrades the file in place to the current version.
	path := filepath.Join(t.TempDir(), "tuning.json")
	body, err := json.Marshal(&table{Machines: map[string]map[string]Entry{
		"test-machine": {"luqr/n768": {Point: Point{NB: 192, IB: 32, Workers: 1}, GFlops: 11, ProbedAt: "2026-01-02T03:04:05Z"}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(fileWrapper{Version: 1, Checksum: checksum(body), Table: body})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}

	tun := learnerTuner(path)
	e, probed, err := tun.Tune(768, "luqr")
	if err != nil || probed || e.NB != 192 {
		t.Fatalf("v1 entry not honored: %+v probed=%v err=%v", e, probed, err)
	}
	if len(e.Alphas) != 0 {
		t.Fatalf("v1 entry grew α from nowhere: %+v", e.Alphas)
	}
	if s := tun.Stats(); s.LoadErrors != 0 {
		t.Fatalf("v1 table quarantined: %+v", s)
	}
	if _, err := os.Stat(path + ".corrupt"); !os.IsNotExist(err) {
		t.Fatal("v1 table was moved aside")
	}

	// Learning persists the table at the current version with α attached.
	tun.Observe(768, "luqr", Observation{Criterion: "max", Alpha: 100, FracLU: 0.5, Growth: 2, HPL3: 0.001})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var w fileWrapper
	if err := json.Unmarshal(data, &w); err != nil {
		t.Fatal(err)
	}
	if w.Version != TableVersion {
		t.Fatalf("rewritten table at version %d, want %d", w.Version, TableVersion)
	}
	st, ok := learnerTuner(path).Alpha(768, "luqr", "max")
	if !ok || st.Alpha != 200 {
		t.Fatalf("upgraded table lost the learned α: %+v ok=%v", st, ok)
	}
}

// TestProbeDoesNotBlockOtherClasses pins the head-of-line fix: while one
// class's candidate sweep is mid-flight, Stats, Best, Alpha, Observe, and
// Tune of a different class all complete. Run under -race, the off-lock
// probe path is exercised for data races too.
func TestProbeDoesNotBlockOtherClasses(t *testing.T) {
	slowEntered := make(chan struct{})
	slowRelease := make(chan struct{})
	var once sync.Once
	tun := New(Options{
		Candidates: []Point{{NB: 64, IB: 32, Workers: 1}},
		Bench: func(p Point, n int, alg string) (float64, error) {
			if n == 768 {
				once.Do(func() { close(slowEntered) })
				<-slowRelease
			}
			return 5, nil
		},
		Now:     fakeClock(),
		Machine: "test-machine",
	})

	probeDone := make(chan struct{})
	go func() {
		defer close(probeDone)
		if _, _, err := tun.Tune(768, "luqr"); err != nil {
			t.Errorf("slow Tune: %v", err)
		}
	}()
	<-slowEntered

	// Everything below must finish while the 768 sweep is parked.
	fastDone := make(chan struct{})
	go func() {
		defer close(fastDone)
		tun.Stats()
		tun.Best(768, "luqr")
		tun.Alpha(768, "luqr", "max")
		tun.Observe(768, "luqr", Observation{Criterion: "max", Alpha: 100, FracLU: 0.5, Growth: 2, HPL3: 0.001})
		if _, _, err := tun.Tune(256, "luqr"); err != nil {
			t.Errorf("other-class Tune: %v", err)
		}
	}()
	select {
	case <-fastDone:
	case <-time.After(10 * time.Second):
		t.Fatal("lookups blocked behind an in-flight probe")
	}

	close(slowRelease)
	<-probeDone
	// The winner installed by the slow probe kept the α learned mid-sweep.
	e, ok := tun.Best(768, "luqr")
	if !ok || e.Alphas["max"] == nil {
		t.Fatalf("probe dropped mid-sweep α state: %+v ok=%v", e, ok)
	}
}

// TestTuneSingleFlightPerClass pins that concurrent misses of one class run
// one sweep: the waiters block until the prober installs the winner, then
// read it as a table hit.
func TestTuneSingleFlightPerClass(t *testing.T) {
	var mu sync.Mutex
	sweeps := 0
	entered := make(chan struct{})
	release := make(chan struct{})
	tun := New(Options{
		Candidates: []Point{{NB: 192, IB: 32, Workers: 1}},
		Bench: func(p Point, n int, alg string) (float64, error) {
			mu.Lock()
			sweeps++
			mu.Unlock()
			entered <- struct{}{}
			<-release
			return 5, nil
		},
		Now:     fakeClock(),
		Machine: "test-machine",
	})

	const waiters = 4
	var wg sync.WaitGroup
	results := make([]Entry, waiters)
	probes := make([]bool, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, probed, err := tun.Tune(768, "luqr")
			if err != nil {
				t.Errorf("Tune[%d]: %v", i, err)
			}
			results[i], probes[i] = e, probed
		}(i)
	}
	<-entered // exactly one goroutine reached the bench
	close(release)
	wg.Wait()

	if sweeps != 1 {
		t.Fatalf("%d sweeps for one class, want 1", sweeps)
	}
	probed := 0
	for i := range results {
		if results[i].NB != 192 {
			t.Fatalf("waiter %d got %+v", i, results[i])
		}
		if probes[i] {
			probed++
		}
	}
	if probed != 1 {
		t.Fatalf("%d goroutines report probing, want exactly 1", probed)
	}
	if s := tun.Stats(); s.Probes != 1 || s.Hits != waiters-1 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestStatsCountsPersistedClassesBeforeFirstLookup pins the Classes
// under-reporting fix: a fresh tuner over a populated table reports its
// classes on the very first Stats call.
func TestStatsCountsPersistedClassesBeforeFirstLookup(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tuning.json")
	warm := learnerTuner(path)
	if _, _, err := warm.Tune(768, "luqr"); err != nil {
		t.Fatal(err)
	}
	warm.Observe(768, "luqr", Observation{Criterion: "max", Alpha: 100, FracLU: 0.5, Growth: 2, HPL3: 0.001})

	s := learnerTuner(path).Stats() // no Tune/Best before this
	if s.Classes != 1 {
		t.Fatalf("fresh tuner reports %d classes before first lookup, want 1", s.Classes)
	}
	if s.AlphaClasses != 1 {
		t.Fatalf("fresh tuner reports %d α classes, want 1", s.AlphaClasses)
	}
}
