// Package tune is the (nb, ib, workers) autotuner: a first-use probe times a
// few candidate operating points for a matrix class on this machine, and the
// winner is persisted in a versioned JSON tuning table so later runs — and
// luqr-serve restarts — skip the probe entirely.
//
// The table mirrors the factor store's durability posture (internal/service):
// writes are temp-file + sync + rename in the destination directory, loads
// re-verify a version header and a content checksum, and any damaged or
// version-skewed file is quarantined (renamed aside) and treated as empty —
// the tuner re-probes; it never applies a corrupted operating point. Entries
// are keyed by machine fingerprint (arch, GOMAXPROCS, SIMD availability), so
// a table carried to different hardware re-probes instead of mis-tuning.
package tune

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"luqr/internal/blas"
	"luqr/internal/lapack"
)

// Point is one operating point of the solver: tile order NB, panel-kernel
// inner block size IB, and runtime worker-pool size.
type Point struct {
	NB      int `json:"nb"`
	IB      int `json:"ib"`
	Workers int `json:"workers"`
}

func (p Point) String() string {
	return fmt.Sprintf("nb=%d ib=%d workers=%d", p.NB, p.IB, p.Workers)
}

// Entry is a tuned operating point with its provenance: the measured rate
// that won the probe and when the probe ran.
type Entry struct {
	Point
	GFlops   float64 `json:"gflops"`
	ProbedAt string  `json:"probed_at"` // RFC 3339, from the tuner's clock
}

// BenchFunc times one candidate point for an n×n problem of the given
// algorithm and reports its rate in GFLOP/s. Injected in tests; the default
// is CoreBench.
type BenchFunc func(p Point, n int, alg string) (gflops float64, err error)

// Options configures a Tuner. The zero value is usable: no persistence
// (every process probes once per class), default candidates, CoreBench, the
// real clock, and the real machine fingerprint.
type Options struct {
	// Path is the tuning-table file. Empty disables persistence; probes
	// still run once per process per class (cached in memory).
	Path string
	// Candidates overrides the probed points. Points whose NB does not
	// divide the problem order are skipped per problem.
	Candidates []Point
	// Bench overrides the probe measurement (default CoreBench).
	Bench BenchFunc
	// Now overrides the clock stamped into entries (default time.Now).
	Now func() time.Time
	// Logf receives probe/quarantine diagnostics (default: discarded).
	Logf func(format string, args ...any)
	// Machine overrides the machine fingerprint (tests only).
	Machine string
}

// Tuner resolves operating points: memory/table lookup first, probe on miss,
// persist the winner. Safe for concurrent use; concurrent misses of the same
// class run one probe.
type Tuner struct {
	path    string
	cands   []Point
	bench   BenchFunc
	now     func() time.Time
	logf    func(string, ...any)
	machine string

	mu     sync.Mutex
	tab    *table
	loaded bool
	stats  Stats
}

// Stats is the tuner's observability snapshot, surfaced in /metrics.
type Stats struct {
	Path       string `json:"path,omitempty"`
	Machine    string `json:"machine"`
	Probes     int64  `json:"probes"`      // full candidate sweeps run
	Hits       int64  `json:"hits"`        // lookups served from the table
	LoadErrors int64  `json:"load_errors"` // quarantined table files
	Classes    int    `json:"classes"`     // tuned classes for this machine
}

// New builds a Tuner from opts.
func New(opts Options) *Tuner {
	t := &Tuner{
		path:    opts.Path,
		cands:   opts.Candidates,
		bench:   opts.Bench,
		now:     opts.Now,
		logf:    opts.Logf,
		machine: opts.Machine,
	}
	if t.bench == nil {
		t.bench = CoreBench
	}
	if t.now == nil {
		t.now = time.Now
	}
	if t.logf == nil {
		t.logf = func(string, ...any) {}
	}
	if t.machine == "" {
		t.machine = MachineID()
	}
	return t
}

// MachineID fingerprints the host for table keying: a table entry probed
// under one fingerprint is never applied under another.
func MachineID() string {
	return fmt.Sprintf("%s/%s/procs=%d/simd=%v",
		runtime.GOOS, runtime.GOARCH, runtime.GOMAXPROCS(0), blas.SimdAccelerated())
}

// classKey buckets problems for table lookup. Tile-size choice depends on
// the problem order and algorithm; entries are per-(alg, n).
func classKey(n int, alg string) string {
	if alg == "" {
		alg = "luqr"
	}
	return fmt.Sprintf("%s/n%d", alg, n)
}

// DefaultCandidates is the probed sweep for an order-n problem: the
// production tile sizes crossed with the worker counts this host can
// exercise, at the kernels' default inner block size. Only points whose NB
// divides n survive filtering.
func DefaultCandidates(n int) []Point {
	workers := []int{1}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		workers = append(workers, p)
	}
	var pts []Point
	for _, nb := range []int{128, 192, 256} {
		for _, w := range workers {
			pts = append(pts, Point{NB: nb, IB: lapack.PanelIB(), Workers: w})
		}
	}
	return pts
}

// candidates filters the sweep to points applicable to order n.
func (t *Tuner) candidates(n int) []Point {
	src := t.cands
	if src == nil {
		src = DefaultCandidates(n)
	}
	var out []Point
	for _, p := range src {
		if p.NB > 0 && p.NB <= n && n%p.NB == 0 {
			out = append(out, p)
		}
	}
	return out
}

// Best looks the class up in the table without probing.
func (t *Tuner) Best(n int, alg string) (Entry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.loadLocked()
	e, ok := t.tab.Machines[t.machine][classKey(n, alg)]
	return e, ok
}

// Tune resolves the operating point for an order-n problem: a table hit
// returns immediately (probed == false); a miss sweeps the candidates,
// persists the winner, and returns it (probed == true). An error means no
// candidate applies or every probe failed — the caller keeps its defaults.
func (t *Tuner) Tune(n int, alg string) (e Entry, probed bool, err error) {
	key := classKey(n, alg)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.loadLocked()
	if e, ok := t.tab.Machines[t.machine][key]; ok {
		t.stats.Hits++
		return e, false, nil
	}
	e, err = t.probeLocked(n, alg)
	if err != nil {
		return Entry{}, false, err
	}
	if t.tab.Machines[t.machine] == nil {
		t.tab.Machines[t.machine] = make(map[string]Entry)
	}
	t.tab.Machines[t.machine][key] = e
	if t.path != "" {
		if werr := saveTable(t.path, t.tab); werr != nil {
			t.logf("tune: persisting table: %v", werr)
		}
	}
	return e, true, nil
}

// probeLocked sweeps the applicable candidates and returns the fastest.
// Caller holds t.mu.
func (t *Tuner) probeLocked(n int, alg string) (Entry, error) {
	cands := t.candidates(n)
	if len(cands) == 0 {
		return Entry{}, fmt.Errorf("tune: no candidate tile size divides n=%d", n)
	}
	t.stats.Probes++
	best := Entry{GFlops: -1}
	for _, p := range cands {
		gf, err := t.bench(p, n, alg)
		if err != nil {
			t.logf("tune: probe %v failed: %v", p, err)
			continue
		}
		t.logf("tune: probe %s/n%d %v: %.2f GF/s", alg, n, p, gf)
		if gf > best.GFlops {
			best = Entry{Point: p, GFlops: gf}
		}
	}
	if best.GFlops < 0 {
		return Entry{}, fmt.Errorf("tune: every probe for n=%d failed", n)
	}
	best.ProbedAt = t.now().UTC().Format(time.RFC3339)
	return best, nil
}

// Apply installs a point's process-global knobs (the kernels' inner block
// size). NB and Workers travel through core.Config instead.
func Apply(p Point) {
	if p.IB > 0 {
		lapack.SetPanelIB(p.IB)
	}
}

// Stats snapshots the tuner's counters.
func (t *Tuner) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.stats
	s.Path = t.path
	s.Machine = t.machine
	if t.loaded {
		s.Classes = len(t.tab.Machines[t.machine])
	}
	return s
}

// Classes lists the tuned classes for this machine, sorted, for reporting.
func (t *Tuner) Classes() map[string]Entry {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.loadLocked()
	out := make(map[string]Entry, len(t.tab.Machines[t.machine]))
	for k, v := range t.tab.Machines[t.machine] {
		out[k] = v
	}
	return out
}

// loadLocked lazily reads the persisted table. Caller holds t.mu.
func (t *Tuner) loadLocked() {
	if t.loaded {
		return
	}
	t.loaded = true
	if t.path == "" {
		t.tab = newTable()
		return
	}
	tab, quarantined, err := loadTable(t.path)
	if err != nil {
		t.logf("tune: loading table %s: %v", t.path, err)
	}
	if quarantined {
		t.stats.LoadErrors++
	}
	t.tab = tab
}
