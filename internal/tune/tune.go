// Package tune is the service's adaptive-config subsystem. It started as the
// (nb, ib, workers) autotuner — a first-use probe times a few candidate
// operating points for a matrix class on this machine, and the winner is
// persisted in a versioned JSON tuning table so later runs — and luqr-serve
// restarts — skip the probe entirely. The same table now also learns the
// hybrid criterion's robustness threshold α online, per matrix class: every
// finished job's decision ratio, growth, and backward error feed Observe,
// and jobs submitted with α unset resolve the learned value through Alpha
// (see alpha.go).
//
// Probes are single-flight per class and run without holding the tuner
// lock, so Stats (every /metrics scrape), Best, Alpha, Observe, and Tune
// calls for other classes never stall behind a seconds-long candidate
// sweep; concurrent misses of the same class coalesce onto one probe.
//
// The table mirrors the factor store's durability posture (internal/service):
// writes are temp-file + sync + rename in the destination directory, loads
// re-verify a version header and a content checksum, and any damaged or
// version-skewed file is quarantined (renamed aside) and treated as empty —
// the tuner re-probes; it never applies a corrupted operating point. Entries
// are keyed by machine fingerprint (arch, GOMAXPROCS, SIMD availability), so
// a table carried to different hardware re-probes instead of mis-tuning.
package tune

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"luqr/internal/blas"
	"luqr/internal/lapack"
)

// Point is one operating point of the solver: tile order NB, panel-kernel
// inner block size IB, and runtime worker-pool size.
type Point struct {
	NB      int `json:"nb"`
	IB      int `json:"ib"`
	Workers int `json:"workers"`
}

func (p Point) String() string {
	return fmt.Sprintf("nb=%d ib=%d workers=%d", p.NB, p.IB, p.Workers)
}

// Entry is one class's tuned state: the operating point that won the probe
// with its provenance, plus the α states learned online for the class. An
// entry created by Observe before any probe has NB == 0 — it carries α only
// and does not satisfy a Tune lookup.
type Entry struct {
	Point
	GFlops   float64 `json:"gflops"`
	ProbedAt string  `json:"probed_at,omitempty"` // RFC 3339, from the tuner's clock
	// Alphas holds the learned robustness thresholds, keyed by criterion
	// family ("max", "sum", "mumps"). Absent in tables written before
	// TableVersion 2; the forward migration leaves it empty.
	Alphas map[string]*AlphaState `json:"alphas,omitempty"`
}

// clone deep-copies the entry so callers can hold it outside the tuner lock
// while Observe keeps mutating the table's α states.
func (e Entry) clone() Entry {
	if e.Alphas == nil {
		return e
	}
	cp := make(map[string]*AlphaState, len(e.Alphas))
	for k, v := range e.Alphas {
		vv := *v
		cp[k] = &vv
	}
	e.Alphas = cp
	return e
}

// BenchFunc times one candidate point for an n×n problem of the given
// algorithm and reports its rate in GFLOP/s. Injected in tests; the default
// is CoreBench.
type BenchFunc func(p Point, n int, alg string) (gflops float64, err error)

// Options configures a Tuner. The zero value is usable: no persistence
// (every process probes once per class), default candidates, CoreBench, the
// real clock, and the real machine fingerprint.
type Options struct {
	// Path is the tuning-table file. Empty disables persistence; probes
	// still run once per process per class (cached in memory).
	Path string
	// Candidates overrides the probed points. Points whose NB does not
	// divide the problem order are skipped per problem.
	Candidates []Point
	// Bench overrides the probe measurement (default CoreBench).
	Bench BenchFunc
	// Now overrides the clock stamped into entries (default time.Now).
	Now func() time.Time
	// Logf receives probe/quarantine diagnostics (default: discarded).
	Logf func(format string, args ...any)
	// Machine overrides the machine fingerprint (tests only).
	Machine string
	// AlphaHPL3Budget is the α learner's excursion threshold on the ratio
	// of a run's HPL3 to the class's best observed HPL3 (default 4.0).
	AlphaHPL3Budget float64
	// AlphaGrowthCap is the α learner's excursion threshold on element
	// growth (default 1024).
	AlphaGrowthCap float64
}

// Tuner resolves operating points: memory/table lookup first, probe on miss,
// persist the winner. Safe for concurrent use; concurrent misses of the same
// class run one probe.
type Tuner struct {
	path       string
	cands      []Point
	bench      BenchFunc
	now        func() time.Time
	logf       func(string, ...any)
	machine    string
	hpl3Budget float64
	growthCap  float64

	mu     sync.Mutex
	tab    *table
	loaded bool
	stats  Stats
	// probing holds one channel per class with a candidate sweep in flight;
	// it closes when the sweep finishes. Probes run WITHOUT t.mu held —
	// only the registration, the install of the winner, and persistence
	// take the lock — so lookups and other classes never queue behind a
	// sweep.
	probing map[string]chan struct{}
}

// Stats is the tuner's observability snapshot, surfaced in /metrics.
type Stats struct {
	Path       string `json:"path,omitempty"`
	Machine    string `json:"machine"`
	Probes     int64  `json:"probes"`      // full candidate sweeps run
	Hits       int64  `json:"hits"`        // lookups served from the table
	LoadErrors int64  `json:"load_errors"` // quarantined table files
	Classes    int    `json:"classes"`     // probed classes for this machine
	// α-learning counters: classes with at least one learned α state,
	// observations folded in, and excursion backoffs taken.
	AlphaClasses  int   `json:"alpha_classes"`
	AlphaUpdates  int64 `json:"alpha_updates"`
	AlphaBackoffs int64 `json:"alpha_backoffs"`
}

// New builds a Tuner from opts.
func New(opts Options) *Tuner {
	t := &Tuner{
		path:       opts.Path,
		cands:      opts.Candidates,
		bench:      opts.Bench,
		now:        opts.Now,
		logf:       opts.Logf,
		machine:    opts.Machine,
		hpl3Budget: opts.AlphaHPL3Budget,
		growthCap:  opts.AlphaGrowthCap,
		probing:    make(map[string]chan struct{}),
	}
	if t.hpl3Budget <= 0 {
		t.hpl3Budget = defaultAlphaHPL3Budget
	}
	if t.growthCap <= 0 {
		t.growthCap = defaultAlphaGrowthCap
	}
	if t.bench == nil {
		t.bench = CoreBench
	}
	if t.now == nil {
		t.now = time.Now
	}
	if t.logf == nil {
		t.logf = func(string, ...any) {}
	}
	if t.machine == "" {
		t.machine = MachineID()
	}
	return t
}

// MachineID fingerprints the host for table keying: a table entry probed
// under one fingerprint is never applied under another.
func MachineID() string {
	return fmt.Sprintf("%s/%s/procs=%d/simd=%v",
		runtime.GOOS, runtime.GOARCH, runtime.GOMAXPROCS(0), blas.SimdAccelerated())
}

// classKey buckets problems for table lookup. Tile-size choice depends on
// the problem order and algorithm; entries are per-(alg, n).
func classKey(n int, alg string) string {
	if alg == "" {
		alg = "luqr"
	}
	return fmt.Sprintf("%s/n%d", alg, n)
}

// DefaultCandidates is the probed sweep for an order-n problem: the
// production tile sizes crossed with the worker counts this host can
// exercise, at the kernels' default inner block size. Only points whose NB
// divides n survive filtering.
func DefaultCandidates(n int) []Point {
	workers := []int{1}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		workers = append(workers, p)
	}
	var pts []Point
	for _, nb := range []int{128, 192, 256} {
		for _, w := range workers {
			pts = append(pts, Point{NB: nb, IB: lapack.PanelIB(), Workers: w})
		}
	}
	return pts
}

// candidates filters the sweep to points applicable to order n.
func (t *Tuner) candidates(n int) []Point {
	src := t.cands
	if src == nil {
		src = DefaultCandidates(n)
	}
	var out []Point
	for _, p := range src {
		if p.NB > 0 && p.NB <= n && n%p.NB == 0 {
			out = append(out, p)
		}
	}
	return out
}

// Best looks the class up in the table without probing (and without
// blocking on an in-flight probe). Alpha-only entries (NB == 0) do not
// count as tuned.
func (t *Tuner) Best(n int, alg string) (Entry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.loadLocked()
	e, ok := t.tab.Machines[t.machine][classKey(n, alg)]
	if !ok || e.NB <= 0 {
		return Entry{}, false
	}
	return e.clone(), true
}

// Tune resolves the operating point for an order-n problem: a table hit
// returns immediately (probed == false); a miss sweeps the candidates,
// persists the winner, and returns it (probed == true). An error means no
// candidate applies or every probe failed — the caller keeps its defaults.
//
// Probes are single-flight per class: the first miss runs the sweep with
// t.mu released, and concurrent misses of the same class wait for it and
// then read the installed winner (probed == false for the waiters).
func (t *Tuner) Tune(n int, alg string) (e Entry, probed bool, err error) {
	key := classKey(n, alg)
	t.mu.Lock()
	for {
		t.loadLocked()
		if e, ok := t.tab.Machines[t.machine][key]; ok && e.NB > 0 {
			t.stats.Hits++
			ec := e.clone()
			t.mu.Unlock()
			return ec, false, nil
		}
		ch, inflight := t.probing[key]
		if !inflight {
			break
		}
		// Another goroutine is sweeping this class: wait off-lock, then
		// re-check — normally a hit; a retry as prober if its sweep failed.
		t.mu.Unlock()
		<-ch
		t.mu.Lock()
	}
	ch := make(chan struct{})
	t.probing[key] = ch
	t.stats.Probes++
	t.mu.Unlock()

	e, err = t.probe(n, alg) // seconds of real factorizations, off-lock

	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.probing, key)
	close(ch)
	if err != nil {
		return Entry{}, false, err
	}
	m := t.tab.Machines[t.machine]
	if m == nil {
		m = make(map[string]Entry)
		t.tab.Machines[t.machine] = m
	}
	// Keep any α states learned for the class while (or before) the sweep
	// ran — the probe decides the operating point, not the threshold.
	if prev, ok := m[key]; ok && prev.Alphas != nil {
		e.Alphas = prev.Alphas
	}
	m[key] = e
	t.persistLocked()
	return e.clone(), true, nil
}

// probe sweeps the applicable candidates and returns the fastest. Runs
// without t.mu held; everything it touches is immutable after New.
func (t *Tuner) probe(n int, alg string) (Entry, error) {
	cands := t.candidates(n)
	if len(cands) == 0 {
		return Entry{}, fmt.Errorf("tune: no candidate tile size divides n=%d", n)
	}
	best := Entry{GFlops: -1}
	for _, p := range cands {
		gf, err := t.bench(p, n, alg)
		if err != nil {
			t.logf("tune: probe %v failed: %v", p, err)
			continue
		}
		t.logf("tune: probe %s/n%d %v: %.2f GF/s", alg, n, p, gf)
		if gf > best.GFlops {
			best = Entry{Point: p, GFlops: gf}
		}
	}
	if best.GFlops < 0 {
		return Entry{}, fmt.Errorf("tune: every probe for n=%d failed", n)
	}
	best.ProbedAt = t.now().UTC().Format(time.RFC3339)
	return best, nil
}

// Stats snapshots the tuner's counters. It loads the persisted table on
// first use, so a fresh process with a populated table reports its classes
// before the first lookup; it never blocks on an in-flight probe.
func (t *Tuner) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.loadLocked()
	s := t.stats
	s.Path = t.path
	s.Machine = t.machine
	for _, e := range t.tab.Machines[t.machine] {
		if e.NB > 0 {
			s.Classes++
		}
		if len(e.Alphas) > 0 {
			s.AlphaClasses++
		}
	}
	return s
}

// Classes lists the tuned classes for this machine, for reporting. Entries
// are deep copies — safe to hold while the learner keeps updating.
func (t *Tuner) Classes() map[string]Entry {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.loadLocked()
	out := make(map[string]Entry, len(t.tab.Machines[t.machine]))
	for k, v := range t.tab.Machines[t.machine] {
		out[k] = v.clone()
	}
	return out
}

// persistLocked writes the table through saveTable, logging (not failing)
// on error. Caller holds t.mu; the write is milliseconds, not the seconds a
// probe costs, so holding the lock here is fine.
func (t *Tuner) persistLocked() {
	if t.path == "" {
		return
	}
	if err := saveTable(t.path, t.tab); err != nil {
		t.logf("tune: persisting table: %v", err)
	}
}

// loadLocked lazily reads the persisted table. Caller holds t.mu.
func (t *Tuner) loadLocked() {
	if t.loaded {
		return
	}
	t.loaded = true
	if t.path == "" {
		t.tab = newTable()
		return
	}
	tab, quarantined, err := loadTable(t.path)
	if err != nil {
		t.logf("tune: loading table %s: %v", t.path, err)
	}
	if quarantined {
		t.stats.LoadErrors++
	}
	t.tab = tab
}
