package tune

import (
	"fmt"
	"math/rand"
	"time"

	"luqr/internal/core"
	"luqr/internal/mat"
)

// probeReps is how many timed runs each candidate gets; the fastest wins,
// which discards one-off scheduling hiccups without a full benchmark.
const probeReps = 2

// CoreBench is the default probe measurement: it times a reduced-order
// factorization (a few tiles of the candidate's NB — enough to exercise the
// panel kernels, trailing updates, and worker pool without paying the full
// O(N³)) and reports the LU-equivalent rate 2n³/3 / time. Rates are only
// compared between candidates of the same class, so the constant cancels.
func CoreBench(p Point, n int, alg string) (float64, error) {
	probeN := 4 * p.NB
	if probeN > n {
		probeN = n - n%p.NB
	}
	if probeN < p.NB {
		return 0, fmt.Errorf("tune: nb=%d does not fit n=%d", p.NB, n)
	}
	a := mat.New(probeN, probeN)
	rng := rand.New(rand.NewSource(42))
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	b := make([]float64, probeN)
	for i := range b {
		b[i] = 1
	}
	// The candidate's inner block size rides inside the run's own config —
	// never through the process-global knob, which a concurrent job with a
	// different tuned point would race on.
	cfg := core.Config{NB: p.NB, IB: p.IB, Workers: p.Workers}
	if alg != "" {
		parsed, err := core.ParseAlgorithm(alg)
		if err == nil {
			cfg.Alg = parsed
		}
	}

	work := a.Clone()
	best := time.Duration(0)
	for rep := 0; rep < probeReps; rep++ {
		copy(work.Data, a.Data)
		start := time.Now()
		if _, err := core.Run(work, b, cfg); err != nil {
			return 0, err
		}
		if d := time.Since(start); rep == 0 || d < best {
			best = d
		}
	}
	nn := float64(probeN)
	return (2.0 / 3.0) * nn * nn * nn / best.Seconds() / 1e9, nil
}
