package tune

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// TableVersion is the on-disk format version. Versions 1..TableVersion load
// (older tables migrate forward — fields they predate start empty); anything
// newer or unrecognized is quarantined, forcing a clean re-probe rather than
// a misread.
//
//	1: (nb, ib, workers) entries only.
//	2: entries gain the per-criterion learned α states ("alphas"). A v1
//	   table loads with every α state absent — probed operating points are
//	   kept, nothing is quarantined, and learning starts fresh.
const TableVersion = 2

// table is the in-memory tuning table: machine fingerprint → class → entry.
type table struct {
	Machines map[string]map[string]Entry `json:"machines"`
}

func newTable() *table {
	return &table{Machines: make(map[string]map[string]Entry)}
}

// fileWrapper is the on-disk envelope: version header plus a SHA-256 over
// the exact table bytes, so torn writes and bit rot are detected before any
// entry is applied — the same posture as the factor store's stream header.
type fileWrapper struct {
	Version  int             `json:"version"`
	Checksum string          `json:"sha256"`
	Table    json.RawMessage `json:"table"`
}

// checksum hashes the compact form of a JSON payload, so re-indentation in
// transit (MarshalIndent rewrites embedded RawMessage whitespace) does not
// register as damage while any content change does.
func checksum(data []byte) string {
	var buf bytes.Buffer
	if err := json.Compact(&buf, data); err == nil {
		data = buf.Bytes()
	}
	h := sha256.Sum256(data)
	return hex.EncodeToString(h[:])
}

// loadTable reads the table at path. A missing file is an empty table; a
// damaged or version-skewed one is quarantined (renamed to <path>.corrupt)
// and reported (quarantined == true) alongside an empty table, so the caller
// re-probes instead of trusting bad data.
func loadTable(path string) (tab *table, quarantined bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return newTable(), false, nil
		}
		return newTable(), false, err
	}
	var w fileWrapper
	if jerr := json.Unmarshal(data, &w); jerr != nil {
		quarantine(path)
		return newTable(), true, fmt.Errorf("tune: unreadable table (quarantined): %w", jerr)
	}
	if w.Version < 1 || w.Version > TableVersion {
		quarantine(path)
		return newTable(), true, fmt.Errorf("tune: table version %d, want 1..%d (quarantined)", w.Version, TableVersion)
	}
	if checksum(w.Table) != w.Checksum {
		quarantine(path)
		return newTable(), true, fmt.Errorf("tune: table checksum mismatch (quarantined)")
	}
	var t table
	if jerr := json.Unmarshal(w.Table, &t); jerr != nil {
		quarantine(path)
		return newTable(), true, fmt.Errorf("tune: malformed table body (quarantined): %w", jerr)
	}
	if t.Machines == nil {
		t.Machines = make(map[string]map[string]Entry)
	}
	return &t, false, nil
}

// quarantine moves a damaged table aside (so it can be inspected) rather
// than deleting it; if even the rename fails, the file is removed so the
// next save is not blocked.
func quarantine(path string) {
	if err := os.Rename(path, path+".corrupt"); err != nil {
		_ = os.Remove(path)
	}
}

// saveTable lands the table at path crash-safely: temp file in the target
// directory, sync, then rename — a reader sees the old table or the new one,
// never a torn mix.
func saveTable(path string, tab *table) error {
	body, err := json.Marshal(tab)
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(fileWrapper{
		Version:  TableVersion,
		Checksum: checksum(body),
		Table:    body,
	}, "", "  ")
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".tune-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(out); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
