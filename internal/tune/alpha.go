package tune

import (
	"math"
	"time"
)

// The α learner turns the paper's offline threshold search (§V: pick the
// largest α whose mean HPL3 stays within 2× the LUPP reference) into an
// online per-class feedback loop over finished jobs. Each observation
// carries the signals the offline search used — the criterion's LU/QR
// decision ratio, the measured (peak) growth, and the HPL3 backward error —
// and the learner nudges the class's α multiplicatively: raise while the
// criterion still vetoes LU steps and stability holds, back off hard on a
// growth or backward-error excursion (MIMD, like congestion control). The
// offline LUPP reference is unavailable online, so the smallest HPL3 ever
// observed for the class stands in for it.
const (
	// alphaDefault seeds a class's state when the first observation carries
	// no usable α — the same static default the service applied before.
	alphaDefault = 100
	// alphaMin / alphaMax clamp the learned threshold. alphaMin keeps the
	// criterion meaningful (α→0 is pure HQR, which needs no learning);
	// alphaMax stops runaway doubling on classes where LU never misbehaves.
	alphaMin = 0.25
	alphaMax = 1e6
	// alphaRaise is the multiplicative increase applied while the criterion
	// still rejects some LU steps and the run stayed stable; alphaBackoff
	// the divisor applied on an excursion — deliberately asymmetric so one
	// bad run undoes several good ones.
	alphaRaise   = 2
	alphaBackoff = 4
	// refHPL3Floor keeps the online LUPP surrogate away from zero: an
	// exactly-solved tiny system would otherwise make every later
	// observation an "excursion".
	refHPL3Floor = 0.01
	// Default excursion thresholds (Options can override): a single run's
	// HPL3 more than 4× the best seen for the class, or element growth past
	// 1024, counts as an excursion. The paper's offline rule compares MEAN
	// HPL3 against 2× LUPP; single samples are noisier, hence the looser 4×.
	defaultAlphaHPL3Budget = 4.0
	defaultAlphaGrowthCap  = 1024
)

// AlphaState is the learned robustness threshold for one (class, criterion)
// pair, persisted inside the class's table Entry.
type AlphaState struct {
	// Alpha is the current estimate a job with α unset should use.
	Alpha float64 `json:"alpha"`
	// Samples counts the observations folded in; Backoffs the excursions.
	Samples  int64 `json:"samples"`
	Backoffs int64 `json:"backoffs,omitempty"`
	// RefHPL3 is the smallest HPL3 observed for the class — the online
	// stand-in for the offline LUPP reference error.
	RefHPL3   float64 `json:"ref_hpl3,omitempty"`
	UpdatedAt string  `json:"updated_at"` // RFC 3339, from the tuner's clock
}

// Observation is one finished run's learning signal.
type Observation struct {
	// Criterion is the base criterion name ("max", "sum", "mumps") — α
	// semantics differ between families, so each learns separately.
	Criterion string
	// Alpha is the threshold the run actually used.
	Alpha float64
	// FracLU is the fraction of LU steps the criterion chose.
	FracLU float64
	// Growth and PeakGrowth are the final and peak element-growth factors
	// (PeakGrowth is 0 unless the run tracked it; the larger one is used).
	Growth, PeakGrowth float64
	// HPL3 is the run's scaled backward error.
	HPL3 float64
	// Breakdown reports an exactly-zero pivot.
	Breakdown bool
}

// LearnableCriterion reports whether α learning applies to the named
// criterion family: the three §III robustness criteria whose α is a real
// threshold. Random/always/never have no threshold to learn.
func LearnableCriterion(name string) bool {
	switch name {
	case "max", "sum", "mumps":
		return true
	}
	return false
}

// Observe folds one finished run into the class's α state and persists the
// table. It returns the updated state, or ok == false when the observation
// is not learnable (unknown criterion family). Safe for concurrent use.
func (t *Tuner) Observe(n int, alg string, o Observation) (AlphaState, bool) {
	if !LearnableCriterion(o.Criterion) {
		return AlphaState{}, false
	}
	key := classKey(n, alg)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.loadLocked()
	m := t.tab.Machines[t.machine]
	if m == nil {
		m = make(map[string]Entry)
		t.tab.Machines[t.machine] = m
	}
	e := m[key]
	if e.Alphas == nil {
		e.Alphas = make(map[string]*AlphaState)
	}
	st := e.Alphas[o.Criterion]
	if st == nil {
		st = &AlphaState{Alpha: o.Alpha}
		if st.Alpha <= 0 {
			st.Alpha = alphaDefault
		}
		e.Alphas[o.Criterion] = st
	}
	growth := o.PeakGrowth
	if growth < o.Growth {
		growth = o.Growth
	}
	excursion := o.Breakdown || math.IsNaN(o.HPL3) || math.IsInf(o.HPL3, 0)
	if !excursion && st.RefHPL3 > 0 && o.HPL3 > t.hpl3Budget*st.RefHPL3 {
		excursion = true
	}
	if !excursion && (math.IsNaN(growth) || growth > t.growthCap) {
		excursion = true
	}
	if excursion {
		// Back off from the α that misbehaved (which may be lower than the
		// current estimate when the run pinned α explicitly).
		a := st.Alpha
		if o.Alpha > 0 && o.Alpha < a {
			a = o.Alpha
		}
		st.Alpha = math.Max(alphaMin, a/alphaBackoff)
		st.Backoffs++
		t.stats.AlphaBackoffs++
	} else {
		if ref := math.Max(o.HPL3, refHPL3Floor); st.RefHPL3 == 0 || ref < st.RefHPL3 {
			st.RefHPL3 = ref
		}
		switch {
		case o.FracLU < 1 && o.Alpha >= st.Alpha:
			// The criterion still vetoed LU on some steps at (at least) the
			// current estimate, and the run stayed stable — there is room
			// above.
			st.Alpha = math.Min(alphaMax, st.Alpha*alphaRaise)
		case o.FracLU >= 1 && o.Alpha > st.Alpha:
			// A stable all-LU run at a higher explicit α: adopt it outright.
			st.Alpha = math.Min(alphaMax, o.Alpha)
		}
	}
	st.Samples++
	st.UpdatedAt = t.now().UTC().Format(time.RFC3339)
	m[key] = e
	t.stats.AlphaUpdates++
	t.persistLocked()
	return *st, true
}

// Alpha returns the learned α state for a class and criterion family, or
// ok == false when nothing has been learned yet (the caller keeps its
// default). It never probes and never blocks on an in-flight probe.
func (t *Tuner) Alpha(n int, alg, criterion string) (AlphaState, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.loadLocked()
	e, ok := t.tab.Machines[t.machine][classKey(n, alg)]
	if !ok || e.Alphas == nil {
		return AlphaState{}, false
	}
	st := e.Alphas[criterion]
	if st == nil || st.Samples == 0 {
		return AlphaState{}, false
	}
	return *st, true
}
