package blas

import (
	"math/rand"
	"testing"

	"luqr/internal/mat"
)

// roundTo32 returns a Matrix32 holding float32(m) — the promotion a tile
// image receives when it enters a precision epoch.
func roundTo32(m *mat.Matrix) *mat.Matrix32 {
	r := mat.NewMatrix32(m.Rows, m.Cols)
	r.RoundFrom(m)
	return r
}

// matchWidened asserts that the resident float32 result is bit-identical to
// the widen-on-write float64 result: float64(got) must equal want exactly.
func matchWidened(t *testing.T, name string, got *mat.Matrix32, want *mat.Matrix) {
	t.Helper()
	for i := 0; i < want.Rows; i++ {
		for j := 0; j < want.Cols; j++ {
			if float64(got.At(i, j)) != want.At(i, j) {
				t.Fatalf("%s: (%d,%d) resident %v != converting %v", name, i, j, got.At(i, j), want.At(i, j))
			}
		}
	}
}

// TestGemm32RMatchesGemm32 checks that the resident Gemm32R on float32
// storage reproduces Gemm32 on float64 storage bit-for-bit: same packing
// order, same micro-kernel, same merge arithmetic, only the conversions
// removed.
func TestGemm32RMatchesGemm32(t *testing.T) {
	shapes := [][3]int{
		{1, 1, 1},
		{3, 5, 7},
		{6, 16, 6},
		{39, 41, 40},
		{13, 9, 259},
		{133, 9, 17},
		{9, 513, 5},
	}
	rng := rand.New(rand.NewSource(97))
	for _, d := range shapes {
		m, n, k := d[0], d[1], d[2]
		for _, ta := range []Transpose{NoTrans, Trans} {
			for _, tb := range []Transpose{NoTrans, Trans} {
				for _, alpha := range []float64{1, -0.5} {
					for _, beta := range []float64{0, 1, 2} {
						ar, ac := m, k
						if ta == Trans {
							ar, ac = k, m
						}
						br, bc := k, n
						if tb == Trans {
							br, bc = n, k
						}
						a := randMat(rng, ar, ac)
						b := randMat(rng, br, bc)
						c := randMat(rng, m, n)
						a32, b32, c32 := roundTo32(a), roundTo32(b), roundTo32(c)
						Gemm32(ta, tb, alpha, a, b, beta, c)
						Gemm32R(ta, tb, alpha, a32, b32, beta, c32)
						matchWidened(t, "Gemm32R", c32, c)
					}
				}
			}
		}
	}
}

// TestTrsm32RMatchesTrsm32 checks bit-identity of the resident triangular
// solve against the converting one over every side/uplo/trans/diag variant,
// both under and over the blocking threshold.
func TestTrsm32RMatchesTrsm32(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for _, n := range []int{1, 5, triBlock, triBlock + 13, 2*triBlock + 3} {
		for _, side := range []Side{Left, Right} {
			for _, uplo := range []Uplo{Lower, Upper} {
				for _, trans := range []Transpose{NoTrans, Trans} {
					for _, diag := range []Diag{NonUnit, Unit} {
						tm := randTri(rng, n, uplo, diag)
						br, bc := n, 7
						if side == Right {
							br, bc = 7, n
						}
						b := randMat(rng, br, bc)
						t32, b32 := roundTo32(tm), roundTo32(b)
						Trsm32(side, uplo, trans, diag, 1.5, tm, b)
						Trsm32R(side, uplo, trans, diag, 1.5, t32, b32)
						matchWidened(t, "Trsm32R", b32, b)
					}
				}
			}
		}
	}
}

// TestTrmm32RMatchesTrmm32 checks bit-identity of the resident triangular
// multiply against the converting one over every variant.
func TestTrmm32RMatchesTrmm32(t *testing.T) {
	rng := rand.New(rand.NewSource(173))
	for _, n := range []int{1, 5, triBlock, triBlock + 13, 2*triBlock + 3} {
		for _, side := range []Side{Left, Right} {
			for _, uplo := range []Uplo{Lower, Upper} {
				for _, trans := range []Transpose{NoTrans, Trans} {
					for _, diag := range []Diag{NonUnit, Unit} {
						tm := randTri(rng, n, uplo, diag)
						br, bc := n, 7
						if side == Right {
							br, bc = 7, n
						}
						b := randMat(rng, br, bc)
						t32, b32 := roundTo32(tm), roundTo32(b)
						Trmm32(side, uplo, trans, diag, 0.75, tm, b)
						Trmm32R(side, uplo, trans, diag, 0.75, t32, b32)
						matchWidened(t, "Trmm32R", b32, b)
					}
				}
			}
		}
	}
}
