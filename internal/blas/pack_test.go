package blas

import (
	"fmt"
	"math/rand"
	"testing"

	"luqr/internal/mat"
)

// withKernel runs f under a specific micro-kernel geometry, restoring the
// init-time selection afterwards. It lets the suite exercise the portable
// 4×4 kernel on hosts where init picked the assembly kernel (and vice
// versa there is nothing to do — the portable kernel is always available).
func withKernel(mr, nr int, kernel func(int, []float64, []float64, []float64, int), f func()) {
	mr0, nr0, k0 := gemmMR, gemmNR, gemmKernel
	gemmMR, gemmNR, gemmKernel = mr, nr, kernel
	defer func() { gemmMR, gemmNR, gemmKernel = mr0, nr0, k0 }()
	f()
}

// viewOf embeds a fresh random r×c matrix inside a larger parent so that
// Stride != Cols, returning the interior view.
func viewOf(rng *rand.Rand, r, c int) *mat.Matrix {
	parent := randMat(rng, r+3, c+5)
	return parent.View(1, 2, r, c)
}

// TestGemmPackedTable cross-checks the packed Gemm against the naive
// reference over all four transpose variants, odd and rectangular shapes
// (including micro-tile fringes and cache-block boundaries), the
// alpha/beta special cases, and strided submatrix views, under both the
// host-selected kernel and the forced portable kernel.
func TestGemmPackedTable(t *testing.T) {
	shapes := [][3]int{ // {m, n, k}
		{1, 1, 1},
		{3, 5, 7},
		{7, 3, 5},
		{5, 7, 3},
		{4, 4, 4},
		{6, 8, 6},     // exact micro-tiles for both kernel geometries
		{39, 41, 40},  // nb±1 around the default tile order
		{41, 39, 41},
		{13, 9, 259},  // k crosses the KC=256 blocking boundary
		{133, 9, 17},  // m crosses the MC=132 blocking boundary
		{9, 513, 5},   // n crosses the NC=512 blocking boundary
	}
	alphas := []float64{0, 1, -0.5}
	betas := []float64{0, 1, 2}

	check := func(t *testing.T, useViews bool) {
		rng := rand.New(rand.NewSource(11))
		for _, d := range shapes {
			m, n, k := d[0], d[1], d[2]
			for _, ta := range []Transpose{NoTrans, Trans} {
				for _, tb := range []Transpose{NoTrans, Trans} {
					for _, alpha := range alphas {
						for _, beta := range betas {
							ar, ac := m, k
							if ta == Trans {
								ar, ac = k, m
							}
							br, bc := k, n
							if tb == Trans {
								br, bc = n, k
							}
							var a, b, c0 *mat.Matrix
							if useViews {
								a, b, c0 = viewOf(rng, ar, ac), viewOf(rng, br, bc), viewOf(rng, m, n)
							} else {
								a, b, c0 = randMat(rng, ar, ac), randMat(rng, br, bc), randMat(rng, m, n)
							}
							got := c0.Clone()
							want := c0.Clone()
							Gemm(ta, tb, alpha, a, b, beta, got)
							naiveGemm(ta, tb, alpha, a, b, beta, want)
							if diff := mat.MaxDiff(got, want); diff > 1e-10*float64(k+1) {
								t.Fatalf("Gemm m=%d n=%d k=%d ta=%v tb=%v alpha=%g beta=%g views=%v: maxdiff %g",
									m, n, k, ta, tb, alpha, beta, useViews, diff)
							}
						}
					}
				}
			}
		}
	}

	t.Run("hostKernel", func(t *testing.T) {
		check(t, false)
		check(t, true)
	})
	t.Run("portableKernel", func(t *testing.T) {
		withKernel(4, 4, kernelGeneric4x4, func() {
			check(t, false)
			check(t, true)
		})
	})
}

// TestTrsmOddShapesAndViews covers Trsm on odd orders, rectangular B, alpha
// scaling, and strided views for every side/uplo/trans/diag combination.
func TestTrsmOddShapesAndViews(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{1, 3, 7, 13} {
		for _, w := range []int{1, 5} {
			for _, alpha := range []float64{1, -0.5, 2} {
				for _, side := range []Side{Left, Right} {
					for _, uplo := range []Uplo{Upper, Lower} {
						for _, trans := range []Transpose{NoTrans, Trans} {
							for _, diag := range []Diag{NonUnit, Unit} {
								tm := randTri(rng, n, uplo, diag)
								var b *mat.Matrix
								if side == Left {
									b = viewOf(rng, n, w)
								} else {
									b = viewOf(rng, w, n)
								}
								b0 := b.Clone()
								Trsm(side, uplo, trans, diag, alpha, tm, b)
								// op(T)·X (resp. X·op(T)) must equal alpha·B.
								back := applyTri(side, uplo, trans, diag, tm, b)
								for i := range b0.Data {
									b0.Data[i] *= alpha
								}
								if d := mat.MaxDiff(back, b0); d > 1e-8 {
									t.Fatalf("Trsm n=%d w=%d alpha=%g side=%v uplo=%v trans=%v diag=%v residual %g",
										n, w, alpha, side, uplo, trans, diag, d)
								}
							}
						}
					}
				}
			}
		}
	}
}

// TestGemmZeroAlloc asserts the steady-state zero-allocation contract of
// the packed path: after warm-up, repeated Gemm calls must not touch the
// heap (pack buffers come from the mat workspace arena).
func TestGemmZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; zero-alloc contract checked in non-race runs")
	}
	rng := rand.New(rand.NewSource(13))
	for _, nb := range []int{40, 128} {
		a, b, c := randMat(rng, nb, nb), randMat(rng, nb, nb), randMat(rng, nb, nb)
		Gemm(NoTrans, NoTrans, -1, a, b, 1, c) // warm the pools
		allocs := testing.AllocsPerRun(10, func() {
			Gemm(NoTrans, NoTrans, -1, a, b, 1, c)
		})
		if allocs != 0 {
			t.Errorf("Gemm nb=%d: %v allocs/op, want 0", nb, allocs)
		}
	}
}

// applyTri wrapping can mask shape errors silently; keep one explicit
// sanity anchor so the table test itself is tested.
func TestGemmPackedAnchor(t *testing.T) {
	a := mat.FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := mat.FromSlice(2, 2, []float64{5, 6, 7, 8})
	c := mat.New(2, 2)
	Gemm(NoTrans, NoTrans, 1, a, b, 0, c)
	want := []float64{19, 22, 43, 50}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("anchor: got %v want %v", c.Data, want)
		}
	}
}

func BenchmarkGemmPacked(b *testing.B) {
	for _, nb := range []int{40, 128, 256} {
		b.Run(fmt.Sprintf("nb=%d", nb), func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			x, y, c := randMat(rng, nb, nb), randMat(rng, nb, nb), randMat(rng, nb, nb)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Gemm(NoTrans, NoTrans, -1, x, y, 1, c)
			}
			b.StopTimer()
			gf := 2 * float64(nb) * float64(nb) * float64(nb) / 1e9
			b.ReportMetric(gf*float64(b.N)/b.Elapsed().Seconds(), "GFLOP/s")
		})
	}
}
