package blas

// The GEMM micro-kernel computes one MR×NR register tile of C:
//
//	C[0:MR, 0:NR] += Ap · Bp
//
// where Ap is an MR-tall packed micro-panel (kc columns, column-major:
// element (i, p) at a[p*MR+i]) and Bp an NR-wide packed micro-panel
// (kc rows, row-major: element (p, j) at b[p*NR+j]). C is addressed through
// its row stride ldc, so the kernel can write straight into a tile, a view,
// or a scratch buffer. Packing (pack.go) zero-pads fringe panels to full
// MR/NR, so kernels never see partial panels; the driver routes fringe
// tiles of C through a scratch tile instead.
//
// The portable kernel below keeps a 4×4 accumulator block in locals so the
// compiler can hold it in registers; amd64 hosts with AVX2+FMA replace it at
// init time with a 6×8 assembly kernel (microkernel_amd64.go) that holds the
// full accumulator block in twelve YMM registers.

// Micro-tile geometry and kernel, selected at init. gemmMR×gemmNR is 4×4
// for the portable kernel and 6×8 for the AVX2 kernel.
var (
	gemmMR     = 4
	gemmNR     = 4
	gemmKernel = kernelGeneric4x4
)

// kernelGeneric4x4 is the portable micro-kernel: C[0:4, 0:4] += Ap·Bp with
// a fully unrolled register accumulator block.
func kernelGeneric4x4(kc int, a, b, c []float64, ldc int) {
	var (
		c00, c01, c02, c03 float64
		c10, c11, c12, c13 float64
		c20, c21, c22, c23 float64
		c30, c31, c32, c33 float64
	)
	for p := 0; p < kc; p++ {
		ap := a[4*p : 4*p+4 : 4*p+4]
		bp := b[4*p : 4*p+4 : 4*p+4]
		a0, a1, a2, a3 := ap[0], ap[1], ap[2], ap[3]
		b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
	}
	r := c[0:4:4]
	r[0] += c00
	r[1] += c01
	r[2] += c02
	r[3] += c03
	r = c[ldc : ldc+4 : ldc+4]
	r[0] += c10
	r[1] += c11
	r[2] += c12
	r[3] += c13
	r = c[2*ldc : 2*ldc+4 : 2*ldc+4]
	r[0] += c20
	r[1] += c21
	r[2] += c22
	r[3] += c23
	r = c[3*ldc : 3*ldc+4 : 3*ldc+4]
	r[0] += c30
	r[1] += c31
	r[2] += c32
	r[3] += c33
}
