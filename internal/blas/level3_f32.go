package blas

import (
	"fmt"

	"luqr/internal/mat"
)

// Mixed-precision level-3 routines: float32 arithmetic on float64 storage.
//
// The solver stores every tile as float64 — the precision decision is about
// where the *flops* run, not where the bytes live. Gemm32/Trsm32/Trmm32
// share their signatures with the float64 routines; internally each operand
// element is rounded to float32, every intermediate is float32, and results
// are written back as exactly-representable float32 values widened to
// float64. The f64 → f32 conversion is fused into the GEMM packing
// (pack32.go), so the demotion costs no separate pass, and the micro-kernel
// (microkernel32.go) retires twice the lanes per FMA of the f64 one.

// trsmRecLeaf is the order below which the recursive f32 triangular solvers
// drop to the scalar substitution kernel; above it the solve halves and the
// off-diagonal coupling runs through the packed Gemm32/Gemm32R path.
const trsmRecLeaf = 8

// trmmPackMin is the order from which the f32 triangular multiplies
// materialize the triangle densely and run as one packed GEMM; below it the
// scalar kernel's lower constant wins over the ~2× padded flops.
const trmmPackMin = 16

// Gemm32 computes C = alpha·op(A)·op(B) + beta·C in float32 arithmetic.
//
// The accumulator is a zeroed float32 scratch block padded to whole
// micro-tiles, so the kernel never needs the fringe detour of the f64 path;
// the final merge folds beta in at float32 and widens back to float64.
func Gemm32(transA, transB Transpose, alpha float64, a, b *mat.Matrix, beta float64, c *mat.Matrix) {
	m, ka := opShape(a, transA)
	kb, n := opShape(b, transB)
	if ka != kb || c.Rows != m || c.Cols != n {
		panic(fmt.Sprintf("blas: Gemm32 shape mismatch op(A)=%dx%d op(B)=%dx%d C=%dx%d", m, ka, kb, n, c.Rows, c.Cols))
	}
	if m == 0 || n == 0 {
		return
	}
	if alpha == 0 || ka == 0 {
		scaleRows32(float32(beta), c)
		return
	}
	mr, nr := gemmMR32, gemmNR32
	mp, np := roundUp(m, mr), roundUp(n, nr)
	acc := mat.GetBuf32(mp * np)
	defer mat.PutBuf32(acc)
	gemmPacked32(transA, transB, float32(alpha), float32(beta), a, b, c, acc.Data, np, m, n, ka)
}

// gemmPacked32 is the five-loop blocked float32 driver. The kernel
// accumulates into acc, a float32 block padded to whole MR×NR micro-tiles
// (row stride ldc); each micro-tile is zeroed on its first k-block and
// merged into C — at float32, with beta folded in — right after its last
// k-block, while the tile is still cache-hot. That keeps the padded
// accumulator from costing separate zero and merge sweeps over cold memory.
// Blocking constants are shared with the f64 path — MC and NC are multiples
// of both micro-tile geometries — so every kernel call is a full micro-tile.
//
// Aliasing contract (the packed f32 triangular multiplies depend on it):
// C may alias the B operand unconditionally, and the A operand when
// n <= gemmNC. All of slab jc's packB reads complete before any merge writes
// to columns jc (packB runs per (jc, pc) and merges only fire on the last
// pc), merges touch only columns jc, and within the last k-slab packA of row
// block ic precedes the merges of row block ic while later row blocks are
// row-disjoint. With more than one jc slab, packA would re-read columns an
// earlier slab already merged — hence the gemmNC bound for A aliasing.
func gemmPacked32(transA, transB Transpose, alpha, beta float32, a, b, c *mat.Matrix, acc []float32, ldc, m, n, k int) {
	mr, nr := gemmMR32, gemmNR32
	kcMax := min(k, gemmKC)
	mcMax := min(roundUp(m, mr), gemmMC)
	ncMax := min(roundUp(n, nr), gemmNC)

	bufB := mat.GetBuf32(kcMax * ncMax)
	defer mat.PutBuf32(bufB)
	bufA := mat.GetBuf32(mcMax * kcMax)
	defer mat.PutBuf32(bufA)

	for jc := 0; jc < n; jc += gemmNC {
		nc := min(gemmNC, n-jc)
		for pc := 0; pc < k; pc += gemmKC {
			kc := min(gemmKC, k-pc)
			first, last := pc == 0, pc+gemmKC >= k
			packB32(bufB.Data, b, transB, jc, pc, kc, nc, nr)
			for ic := 0; ic < m; ic += gemmMC {
				mc := min(gemmMC, m-ic)
				packA32(bufA.Data, a, transA, alpha, ic, pc, mc, kc, mr)
				for jr := 0; jr < nc; jr += nr {
					bp := bufB.Data[jr*kc:]
					for ir := 0; ir < mc; ir += mr {
						off := (ic+ir)*ldc + jc + jr
						if first {
							for i := 0; i < mr; i++ {
								row := acc[off+i*ldc : off+i*ldc+nr]
								for z := range row {
									row[z] = 0
								}
							}
						}
						gemmKernel32(kc, bufA.Data[ir*kc:], bp, acc[off:], ldc)
						if last {
							merge32(acc[off:], ldc, c, ic+ir, jc+jr, beta)
						}
					}
				}
			}
		}
	}
}

// merge32 folds one finished MR×NR accumulator micro-tile into C at
// (i0, j0): C = beta·C + tile at float32, clipped to C's live extent.
func merge32(tile []float32, ldt int, c *mat.Matrix, i0, j0 int, beta float32) {
	mi := min(gemmMR32, c.Rows-i0)
	nj := min(gemmNR32, c.Cols-j0)
	for i := 0; i < mi; i++ {
		crow := c.Data[(i0+i)*c.Stride+j0:][:nj]
		trow := tile[i*ldt:]
		switch beta {
		case 0:
			for j := range crow {
				crow[j] = float64(trow[j])
			}
		case 1:
			for j := range crow {
				crow[j] = float64(float32(crow[j]) + trow[j])
			}
		default:
			for j := range crow {
				crow[j] = float64(beta*float32(crow[j]) + trow[j])
			}
		}
	}
}

// scaleRows32 applies C = beta·C at float32.
func scaleRows32(beta float32, c *mat.Matrix) {
	if beta == 1 {
		return
	}
	for i := 0; i < c.Rows; i++ {
		row := c.Row(i)
		if beta == 0 {
			for j := range row {
				row[j] = 0
			}
		} else {
			for j := range row {
				row[j] = float64(beta * float32(row[j]))
			}
		}
	}
}

// Float32 scalar helpers over float64 storage: every read rounds to float32,
// every operation is float32, every write is a widened float32.

func Axpy32(alpha float32, x, y []float64) {
	for j := range y {
		y[j] = float64(float32(y[j]) + alpha*float32(x[j]))
	}
}

func Dot32(x, y []float64) float32 {
	var s float32
	for j := range x {
		s += float32(x[j]) * float32(y[j])
	}
	return s
}

func Scal32(alpha float32, x []float64) {
	for j := range x {
		x[j] = float64(alpha * float32(x[j]))
	}
}

// Trsm32 solves op(T)·X = alpha·B (Side == Left) or X·op(T) = alpha·B
// (Side == Right) in place at float32. The solve recurses on halves of T —
// solve one half, fold the off-diagonal coupling into the other with a
// single order-n/2 packed Gemm32, solve the remainder — dropping to the
// scalar substitution kernel at order trsmRecLeaf. Halving keeps the
// couplings as a few large GEMMs instead of many thin triBlock strips, so
// nearly all flops run through the f32 micro-kernel.
func Trsm32(side Side, uplo Uplo, trans Transpose, diag Diag, alpha float64, t, b *mat.Matrix) {
	n := t.Rows
	if t.Cols != n {
		panic(fmt.Sprintf("blas: Trsm32 with non-square T %dx%d", t.Rows, t.Cols))
	}
	if side == Left && b.Rows != n {
		panic(fmt.Sprintf("blas: Trsm32 Left shape mismatch T=%d B=%dx%d", n, b.Rows, b.Cols))
	}
	if side == Right && b.Cols != n {
		panic(fmt.Sprintf("blas: Trsm32 Right shape mismatch T=%d B=%dx%d", n, b.Rows, b.Cols))
	}
	if alpha != 1 {
		a32 := float32(alpha)
		for i := 0; i < b.Rows; i++ {
			Scal32(a32, b.Row(i))
		}
	}
	trsmRec32(side, uplo, trans, diag, t, b)
}

// trsmRec32 is the recursive alpha-free body of Trsm32.
func trsmRec32(side Side, uplo Uplo, trans Transpose, diag Diag, t, b *mat.Matrix) {
	n := t.Rows
	if n <= trsmRecLeaf {
		trsmBasic32(side, uplo, trans, diag, t, b)
		return
	}
	n1 := n / 2
	n2 := n - n1
	t11 := t.View(0, 0, n1, n1)
	t22 := t.View(n1, n1, n2, n2)
	effLower := (uplo == Lower) != (trans == Trans)
	if side == Left {
		k := b.Cols
		b1 := b.View(0, 0, n1, k)
		b2 := b.View(n1, 0, n2, k)
		if effLower {
			trsmRec32(side, uplo, trans, diag, t11, b1)
			if trans == NoTrans {
				Gemm32(NoTrans, NoTrans, -1, t.View(n1, 0, n2, n1), b1, 1, b2)
			} else {
				Gemm32(Trans, NoTrans, -1, t.View(0, n1, n1, n2), b1, 1, b2)
			}
			trsmRec32(side, uplo, trans, diag, t22, b2)
		} else {
			trsmRec32(side, uplo, trans, diag, t22, b2)
			if trans == NoTrans {
				Gemm32(NoTrans, NoTrans, -1, t.View(0, n1, n1, n2), b2, 1, b1)
			} else {
				Gemm32(Trans, NoTrans, -1, t.View(n1, 0, n2, n1), b2, 1, b1)
			}
			trsmRec32(side, uplo, trans, diag, t11, b1)
		}
		return
	}
	m := b.Rows
	b1 := b.View(0, 0, m, n1)
	b2 := b.View(0, n1, m, n2)
	if effLower {
		trsmRec32(side, uplo, trans, diag, t22, b2)
		if trans == NoTrans {
			Gemm32(NoTrans, NoTrans, -1, b2, t.View(n1, 0, n2, n1), 1, b1)
		} else {
			Gemm32(NoTrans, Trans, -1, b2, t.View(0, n1, n1, n2), 1, b1)
		}
		trsmRec32(side, uplo, trans, diag, t11, b1)
	} else {
		trsmRec32(side, uplo, trans, diag, t11, b1)
		if trans == NoTrans {
			Gemm32(NoTrans, NoTrans, -1, b1, t.View(0, n1, n1, n2), 1, b2)
		} else {
			Gemm32(NoTrans, Trans, -1, b1, t.View(n1, 0, n2, n1), 1, b2)
		}
		trsmRec32(side, uplo, trans, diag, t22, b2)
	}
}

// trsmBasic32 is the unblocked float32 substitution kernel behind Trsm32.
func trsmBasic32(side Side, uplo Uplo, trans Transpose, diag Diag, t, b *mat.Matrix) {
	n := t.Rows
	lower := uplo == Lower
	if trans == Trans {
		lower = !lower
	}
	get := func(i, j int) float32 {
		if trans == Trans {
			return float32(t.At(j, i))
		}
		return float32(t.At(i, j))
	}

	if side == Left {
		if lower {
			for i := 0; i < n; i++ {
				bi := b.Row(i)
				for p := 0; p < i; p++ {
					Axpy32(-get(i, p), b.Row(p), bi)
				}
				if diag == NonUnit {
					Scal32(1/get(i, i), bi)
				}
			}
		} else {
			for i := n - 1; i >= 0; i-- {
				bi := b.Row(i)
				for p := i + 1; p < n; p++ {
					Axpy32(-get(i, p), b.Row(p), bi)
				}
				if diag == NonUnit {
					Scal32(1/get(i, i), bi)
				}
			}
		}
		return
	}

	if trans == NoTrans {
		for r := 0; r < b.Rows; r++ {
			row := b.Row(r)
			if lower {
				for p := n - 1; p >= 0; p-- {
					if diag == NonUnit {
						row[p] = float64(float32(row[p]) / float32(t.At(p, p)))
					}
					if v := float32(row[p]); v != 0 {
						Axpy32(-v, t.Row(p)[:p], row[:p])
					}
				}
			} else {
				for p := 0; p < n; p++ {
					if diag == NonUnit {
						row[p] = float64(float32(row[p]) / float32(t.At(p, p)))
					}
					if v := float32(row[p]); v != 0 {
						Axpy32(-v, t.Row(p)[p+1:n], row[p+1:n])
					}
				}
			}
		}
		return
	}
	for r := 0; r < b.Rows; r++ {
		row := b.Row(r)
		if lower {
			for j := n - 1; j >= 0; j-- {
				s := float32(row[j]) - Dot32(row[j+1:n], t.Row(j)[j+1:n])
				if diag == NonUnit {
					s /= float32(t.At(j, j))
				}
				row[j] = float64(s)
			}
		} else {
			for j := 0; j < n; j++ {
				s := float32(row[j]) - Dot32(row[:j], t.Row(j)[:j])
				if diag == NonUnit {
					s /= float32(t.At(j, j))
				}
				row[j] = float64(s)
			}
		}
	}
}

// Trmm32 computes B = alpha·op(T)·B (Side == Left) or B = alpha·B·op(T)
// (Side == Right) in place at float32.
//
// From order trmmPackMin the triangle is materialized densely — zeros off
// the triangle, exact ones on a Unit diagonal, op() resolved so only the
// stored triangle of T is ever read — and the whole multiply runs as a
// single in-place packed Gemm32 (see the aliasing contract on
// gemmPacked32). The padding costs ~2× the triangle's flops but they retire
// at micro-kernel rate, which wins well before nb-sized operands; the
// ib-strip T-factor multiplies of the QR update kernels are the main
// beneficiary. A Right-side multiply with n > gemmNC would need columns
// repacked after they were merged, so that case (and tiny orders) keeps the
// triBlock-blocked driver.
func Trmm32(side Side, uplo Uplo, trans Transpose, diag Diag, alpha float64, t, b *mat.Matrix) {
	n := t.Rows
	if t.Cols != n {
		panic(fmt.Sprintf("blas: Trmm32 with non-square T %dx%d", t.Rows, t.Cols))
	}
	if side == Left && b.Rows != n {
		panic(fmt.Sprintf("blas: Trmm32 Left shape mismatch T=%d B=%dx%d", n, b.Rows, b.Cols))
	}
	if side == Right && b.Cols != n {
		panic(fmt.Sprintf("blas: Trmm32 Right shape mismatch T=%d B=%dx%d", n, b.Rows, b.Cols))
	}
	if n >= trmmPackMin && (side == Left || n <= gemmNC) {
		tri, tribuf := mat.GetMatrix(n, n)
		defer mat.PutBuf(tribuf)
		materializeTri32(tri, t, uplo, trans, diag)
		if side == Left {
			Gemm32(NoTrans, NoTrans, alpha, tri, b, 0, b)
		} else {
			Gemm32(NoTrans, NoTrans, alpha, b, tri, 0, b)
		}
		return
	}
	if n <= triBlock {
		trmmBasic32(side, uplo, trans, diag, float32(alpha), t, b)
		return
	}
	alpha32 := float32(alpha)
	effLower := (uplo == Lower) != (trans == Trans)
	if side == Left {
		k := b.Cols
		if !effLower {
			for i0 := 0; i0 < n; i0 += triBlock {
				bs := min(triBlock, n-i0)
				bi := b.View(i0, 0, bs, k)
				rest := n - i0 - bs
				trmmBasic32(Left, uplo, trans, diag, alpha32, t.View(i0, i0, bs, bs), bi)
				if rest > 0 {
					if trans == NoTrans {
						Gemm32(NoTrans, NoTrans, alpha, t.View(i0, i0+bs, bs, rest), b.View(i0+bs, 0, rest, k), 1, bi)
					} else {
						Gemm32(Trans, NoTrans, alpha, t.View(i0+bs, i0, rest, bs), b.View(i0+bs, 0, rest, k), 1, bi)
					}
				}
			}
			return
		}
		for i0 := ((n - 1) / triBlock) * triBlock; i0 >= 0; i0 -= triBlock {
			bs := min(triBlock, n-i0)
			bi := b.View(i0, 0, bs, k)
			trmmBasic32(Left, uplo, trans, diag, alpha32, t.View(i0, i0, bs, bs), bi)
			if i0 > 0 {
				if trans == NoTrans {
					Gemm32(NoTrans, NoTrans, alpha, t.View(i0, 0, bs, i0), b.View(0, 0, i0, k), 1, bi)
				} else {
					Gemm32(Trans, NoTrans, alpha, t.View(0, i0, i0, bs), b.View(0, 0, i0, k), 1, bi)
				}
			}
		}
		return
	}
	m := b.Rows
	if !effLower {
		for j0 := ((n - 1) / triBlock) * triBlock; j0 >= 0; j0 -= triBlock {
			bs := min(triBlock, n-j0)
			bj := b.View(0, j0, m, bs)
			trmmBasic32(Right, uplo, trans, diag, alpha32, t.View(j0, j0, bs, bs), bj)
			if j0 > 0 {
				if trans == NoTrans {
					Gemm32(NoTrans, NoTrans, alpha, b.View(0, 0, m, j0), t.View(0, j0, j0, bs), 1, bj)
				} else {
					Gemm32(NoTrans, Trans, alpha, b.View(0, 0, m, j0), t.View(j0, 0, bs, j0), 1, bj)
				}
			}
		}
		return
	}
	for j0 := 0; j0 < n; j0 += triBlock {
		bs := min(triBlock, n-j0)
		bj := b.View(0, j0, m, bs)
		rest := n - j0 - bs
		trmmBasic32(Right, uplo, trans, diag, alpha32, t.View(j0, j0, bs, bs), bj)
		if rest > 0 {
			if trans == NoTrans {
				Gemm32(NoTrans, NoTrans, alpha, b.View(0, j0+bs, m, rest), t.View(j0+bs, j0, rest, bs), 1, bj)
			} else {
				Gemm32(NoTrans, Trans, alpha, b.View(0, j0+bs, m, rest), t.View(j0, j0+bs, bs, rest), 1, bj)
			}
		}
	}
}

// materializeTri32 writes op(T) densely into dst: triangle entries copied,
// zeros off the triangle, exact ones on a Unit diagonal. op() is resolved
// here so the packed multiply sees a plain NoTrans operand, and only the
// stored triangle of t is read — values outside it (say, the R factor above
// a Householder V) never leak into the product.
func materializeTri32(dst, t *mat.Matrix, uplo Uplo, trans Transpose, diag Diag) {
	n := t.Rows
	effLower := (uplo == Lower) != (trans == Trans)
	for i := 0; i < n; i++ {
		row := dst.Row(i)
		lo, hi := 0, i+1
		if !effLower {
			lo, hi = i, n
		}
		for j := 0; j < lo; j++ {
			row[j] = 0
		}
		for j := hi; j < n; j++ {
			row[j] = 0
		}
		if trans == Trans {
			for j := lo; j < hi; j++ {
				row[j] = t.At(j, i)
			}
		} else {
			copy(row[lo:hi], t.Row(i)[lo:hi])
		}
		if diag == Unit {
			row[i] = 1
		}
	}
}

// trmmBasic32 is the unblocked float32 triangular-multiply kernel behind
// Trmm32.
func trmmBasic32(side Side, uplo Uplo, trans Transpose, diag Diag, alpha float32, t, b *mat.Matrix) {
	n := t.Rows
	lower := uplo == Lower
	if trans == Trans {
		lower = !lower
	}
	get := func(i, j int) float32 {
		if trans == Trans {
			return float32(t.At(j, i))
		}
		return float32(t.At(i, j))
	}
	if side == Left {
		if !lower {
			for i := 0; i < n; i++ {
				bi := b.Row(i)
				if diag == NonUnit {
					Scal32(get(i, i), bi)
				}
				for p := i + 1; p < n; p++ {
					Axpy32(get(i, p), b.Row(p), bi)
				}
				Scal32(alpha, bi)
			}
		} else {
			for i := n - 1; i >= 0; i-- {
				bi := b.Row(i)
				if diag == NonUnit {
					Scal32(get(i, i), bi)
				}
				for p := 0; p < i; p++ {
					Axpy32(get(i, p), b.Row(p), bi)
				}
				Scal32(alpha, bi)
			}
		}
		return
	}
	if trans == Trans {
		for r := 0; r < b.Rows; r++ {
			row := b.Row(r)
			if lower {
				for j := 0; j < n; j++ {
					s := Dot32(row[j+1:n], t.Row(j)[j+1:n])
					if diag == NonUnit {
						s += float32(row[j]) * float32(t.At(j, j))
					} else {
						s += float32(row[j])
					}
					row[j] = float64(alpha * s)
				}
			} else {
				for j := n - 1; j >= 0; j-- {
					s := Dot32(row[:j], t.Row(j)[:j])
					if diag == NonUnit {
						s += float32(row[j]) * float32(t.At(j, j))
					} else {
						s += float32(row[j])
					}
					row[j] = float64(alpha * s)
				}
			}
		}
		return
	}
	buf := mat.GetBuf32(n)
	defer mat.PutBuf32(buf)
	tmp := buf.Data[:n]
	for r := 0; r < b.Rows; r++ {
		row := b.Row(r)
		for j := range tmp {
			tmp[j] = 0
		}
		for p := 0; p < n; p++ {
			v := float32(row[p])
			if v == 0 {
				continue
			}
			tr := t.Row(p)
			if !lower {
				if diag == NonUnit {
					for j := p; j < n; j++ {
						tmp[j] += v * float32(tr[j])
					}
				} else {
					tmp[p] += v
					for j := p + 1; j < n; j++ {
						tmp[j] += v * float32(tr[j])
					}
				}
			} else {
				if diag == NonUnit {
					for j := 0; j <= p; j++ {
						tmp[j] += v * float32(tr[j])
					}
				} else {
					for j := 0; j < p; j++ {
						tmp[j] += v * float32(tr[j])
					}
					tmp[p] += v
				}
			}
		}
		for j := range row {
			row[j] = float64(alpha * tmp[j])
		}
	}
}
