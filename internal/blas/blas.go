// Package blas implements the subset of dense Basic Linear Algebra
// Subprograms needed by the tiled LU-QR solver, on row-major matrices from
// the mat package.
//
// It is a pure-Go stand-in for the vendor BLAS (MKL in the paper's setup):
// the mathematics and the flop counts are identical, only absolute speed
// differs. Level-3 kernels use loop orders that stream along rows (the unit
// stride of the row-major layout), which is what makes GEMM — and therefore
// the LU update path of the hybrid algorithm — the fastest kernel here, just
// as it is on the paper's platform.
package blas

import (
	"fmt"
	"math"

	"luqr/internal/mat"
)

// Side selects whether a triangular factor is applied from the left or the
// right in Trsm/Trmm.
type Side int

// Uplo selects the triangle of a triangular matrix.
type Uplo int

// Diag declares whether a triangular matrix has an implicit unit diagonal.
type Diag int

// Transpose selects op(A) ∈ {A, Aᵀ}.
type Transpose int

// Enumerations follow the BLAS naming scheme.
const (
	Left Side = iota
	Right
)

const (
	Upper Uplo = iota
	Lower
)

const (
	NonUnit Diag = iota
	Unit
)

const (
	NoTrans Transpose = iota
	Trans
)

// axpyKernel and dotKernel are the SIMD level-1 kernels, nil on hosts
// without AVX2+FMA (selection in microkernel_amd64.go). Vector lengths
// below simdMin stay on the scalar loops: the call/setup overhead of the
// assembly outweighs 4-wide FMAs for very short vectors.
var (
	axpyKernel func(alpha float64, x, y []float64)
	dotKernel  func(x, y []float64) float64
)

const simdMin = 8

// SimdAccelerated reports whether the SIMD (AVX2+FMA) kernels are active on
// this host. Part of the autotuner's machine fingerprint: a tuning table
// probed with vector kernels must not be reused on a host running the
// generic paths.
func SimdAccelerated() bool { return axpyKernel != nil }

// Dot returns xᵀy.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("blas: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	if dotKernel != nil && len(x) >= simdMin {
		return dotKernel(x, y)
	}
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Axpy computes y += alpha·x.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("blas: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	if alpha == 0 {
		return
	}
	if axpyKernel != nil && len(x) >= simdMin {
		axpyKernel(alpha, x, y)
		return
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scal computes x *= alpha.
func Scal(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Iamax returns the index of the first element of maximum absolute value.
// It panics on an empty slice.
func Iamax(x []float64) int {
	if len(x) == 0 {
		panic("blas: Iamax of empty vector")
	}
	best, bv := 0, math.Abs(x[0])
	for i := 1; i < len(x); i++ {
		if a := math.Abs(x[i]); a > bv {
			best, bv = i, a
		}
	}
	return best
}

// Ger performs the rank-1 update A += alpha·x·yᵀ.
func Ger(alpha float64, x, y []float64, a *mat.Matrix) {
	if len(x) != a.Rows || len(y) != a.Cols {
		panic(fmt.Sprintf("blas: Ger shape mismatch %dx%d vs |x|=%d |y|=%d", a.Rows, a.Cols, len(x), len(y)))
	}
	for i := 0; i < a.Rows; i++ {
		axi := alpha * x[i]
		if axi == 0 {
			continue
		}
		row := a.Row(i)
		for j, yj := range y {
			row[j] += axi * yj
		}
	}
}

// Gemv computes y = alpha·op(A)·x + beta·y.
func Gemv(trans Transpose, alpha float64, a *mat.Matrix, x []float64, beta float64, y []float64) {
	rows, cols := a.Rows, a.Cols
	if trans == Trans {
		rows, cols = cols, rows
	}
	if len(x) != cols || len(y) != rows {
		panic(fmt.Sprintf("blas: Gemv shape mismatch op(A)=%dx%d |x|=%d |y|=%d", rows, cols, len(x), len(y)))
	}
	if beta != 1 {
		Scal(beta, y)
	}
	if trans == NoTrans {
		for i := 0; i < a.Rows; i++ {
			row := a.Row(i)
			s := 0.0
			for j, v := range row {
				s += v * x[j]
			}
			y[i] += alpha * s
		}
		return
	}
	// y += alpha·Aᵀx: accumulate row by row to keep unit stride.
	for i := 0; i < a.Rows; i++ {
		axi := alpha * x[i]
		if axi == 0 {
			continue
		}
		row := a.Row(i)
		for j, v := range row {
			y[j] += axi * v
		}
	}
}

// Trsv solves op(T)·x = b in place (x := solution), with T triangular.
func Trsv(uplo Uplo, trans Transpose, diag Diag, t *mat.Matrix, x []float64) {
	n := t.Rows
	if t.Cols != n || len(x) != n {
		panic(fmt.Sprintf("blas: Trsv shape mismatch %dx%d |x|=%d", t.Rows, t.Cols, len(x)))
	}
	lower := uplo == Lower
	if trans == Trans {
		lower = !lower
	}
	get := func(i, j int) float64 {
		if trans == Trans {
			return t.At(j, i)
		}
		return t.At(i, j)
	}
	if lower {
		for i := 0; i < n; i++ {
			s := x[i]
			for j := 0; j < i; j++ {
				s -= get(i, j) * x[j]
			}
			if diag == NonUnit {
				s /= get(i, i)
			}
			x[i] = s
		}
		return
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= get(i, j) * x[j]
		}
		if diag == NonUnit {
			s /= get(i, i)
		}
		x[i] = s
	}
}
