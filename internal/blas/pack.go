package blas

import "luqr/internal/mat"

// BLIS-style cache blocking for the packed GEMM (see Van Zee & van de Geijn,
// "BLIS: A Framework for Rapidly Instantiating BLAS Functionality"):
//
//	for jc over N by NC:    B panel  (KC×NC)   lives in L3
//	  for pc over K by KC:    pack B
//	    for ic over M by MC:  A block  (MC×KC)  lives in L2, pack A
//	      for jr over NC by NR:  B micro-panel (KC×NR) lives in L1
//	        for ir over MC by MR:  micro-kernel on an MR×NR tile of C
//
// Packing rewrites both operands into the exact streaming order the
// micro-kernel consumes — MR-tall column-major A panels, NR-wide row-major
// B panels — which also absorbs the transpose variants: op(A)/op(B) differ
// only in which loops of the pack run contiguously, and the kernel never
// sees a stride. alpha is folded into the packed A so the kernel is a pure
// C += Ap·Bp. Fringe panels are zero-padded to full MR/NR, so the kernel
// handles every shape; only fringe tiles of C take a scratch-tile detour
// (level3.go).
const (
	// gemmKC: packed A micro-panels are MR×KC and must stay L1-resident
	// while a B micro-panel streams against them.
	gemmKC = 256
	// gemmMC: the packed A block is MC×KC ≈ 270 KiB, sized for L2. A
	// multiple of both micro-tile heights (lcm(4, 6) = 12).
	gemmMC = 132
	// gemmNC: the packed B panel is KC×NC ≤ 1 MiB. A multiple of both
	// micro-tile widths (lcm(4, 8) = 8).
	gemmNC = 512
)

func roundUp(n, q int) int { return (n + q - 1) / q * q }

// packA packs op(A)[i0:i0+mc, p0:p0+kc], scaled by alpha, into MR-tall
// column-major micro-panels: element (ir+i, p) of the block lands at
// buf[ir*kc + p*mr + i]. Rows past mc are zero-filled so every micro-panel
// is a full MR tall.
func packA(buf []float64, a *mat.Matrix, transA Transpose, alpha float64, i0, p0, mc, kc, mr int) {
	for ir := 0; ir < mc; ir += mr {
		rows := min(mr, mc-ir)
		dst := buf[ir*kc:]
		if transA == NoTrans {
			// op(A) row i0+ir+i is a contiguous slice of A; scatter it into
			// the panel with stride mr.
			for i := 0; i < rows; i++ {
				src := a.Data[(i0+ir+i)*a.Stride+p0:][:kc]
				d := dst[i:]
				for p, v := range src {
					d[p*mr] = alpha * v
				}
			}
		} else {
			// op(A)[r, p] = A[p0+p, i0+r]: each A row provides one packed
			// column, contiguous on both sides.
			for p := 0; p < kc; p++ {
				src := a.Data[(p0+p)*a.Stride+i0+ir:][:rows]
				d := dst[p*mr : p*mr+rows : p*mr+rows]
				for i, v := range src {
					d[i] = alpha * v
				}
			}
		}
		if rows < mr {
			for p := 0; p < kc; p++ {
				d := dst[p*mr:]
				for i := rows; i < mr; i++ {
					d[i] = 0
				}
			}
		}
	}
}

// packB packs op(B)[p0:p0+kc, j0:j0+nc] into NR-wide row-major micro-panels:
// element (p, jr+j) of the block lands at buf[jr*kc + p*nr + j]. Columns
// past nc are zero-filled so every micro-panel is a full NR wide.
func packB(buf []float64, b *mat.Matrix, transB Transpose, j0, p0, kc, nc, nr int) {
	for jr := 0; jr < nc; jr += nr {
		cols := min(nr, nc-jr)
		dst := buf[jr*kc:]
		if transB == NoTrans {
			// op(B) row p is contiguous in B; copy nr-wide chunks.
			for p := 0; p < kc; p++ {
				src := b.Data[(p0+p)*b.Stride+j0+jr:][:cols]
				d := dst[p*nr : p*nr+nr : p*nr+nr]
				copy(d, src)
				for j := cols; j < nr; j++ {
					d[j] = 0
				}
			}
		} else {
			// op(B)[p, jr+j] = B[j0+jr+j, p0+p]: each B row provides one
			// packed column; scatter with stride nr.
			for j := 0; j < cols; j++ {
				src := b.Data[(j0+jr+j)*b.Stride+p0:][:kc]
				d := dst[j:]
				for p, v := range src {
					d[p*nr] = v
				}
			}
			if cols < nr {
				for p := 0; p < kc; p++ {
					d := dst[p*nr:]
					for j := cols; j < nr; j++ {
						d[j] = 0
					}
				}
			}
		}
	}
}
