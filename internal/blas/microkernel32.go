package blas

// Float32 GEMM micro-kernel. Same packed-panel contract as the float64
// kernel (microkernel.go) with float32 elements: Ap is MR-tall column-major
// (element (i, p) at a[p*MR+i]), Bp is NR-wide row-major (element (p, j) at
// b[p*NR+j]), and the kernel accumulates C[0:MR, 0:NR] += Ap·Bp through the
// row stride ldc. The mixed-precision driver always points C at a padded
// float32 scratch block (level3_f32.go), so — unlike the f64 path — f32
// kernels never need a fringe detour: every micro-tile write is full-size.
//
// The portable kernel is the 4×4 register block below; amd64 hosts with
// AVX2+FMA swap in a 6×16 assembly kernel at init (microkernel_amd64.go)
// that runs two 8-wide float32 FMAs per packed A element — twice the flops
// per instruction of the f64 6×8 kernel, which is where the mixed-precision
// speedup comes from.

// Micro-tile geometry and kernel for the f32 path, selected at init.
var (
	gemmMR32     = 4
	gemmNR32     = 4
	gemmKernel32 = kernelGeneric4x4f32
)

// kernelGeneric4x4f32 is the portable float32 micro-kernel: C[0:4, 0:4] +=
// Ap·Bp with a fully unrolled register accumulator block.
func kernelGeneric4x4f32(kc int, a, b, c []float32, ldc int) {
	var (
		c00, c01, c02, c03 float32
		c10, c11, c12, c13 float32
		c20, c21, c22, c23 float32
		c30, c31, c32, c33 float32
	)
	for p := 0; p < kc; p++ {
		ap := a[4*p : 4*p+4 : 4*p+4]
		bp := b[4*p : 4*p+4 : 4*p+4]
		a0, a1, a2, a3 := ap[0], ap[1], ap[2], ap[3]
		b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
	}
	r := c[0:4:4]
	r[0] += c00
	r[1] += c01
	r[2] += c02
	r[3] += c03
	r = c[ldc : ldc+4 : ldc+4]
	r[0] += c10
	r[1] += c11
	r[2] += c12
	r[3] += c13
	r = c[2*ldc : 2*ldc+4 : 2*ldc+4]
	r[0] += c20
	r[1] += c21
	r[2] += c22
	r[3] += c23
	r = c[3*ldc : 3*ldc+4 : 3*ldc+4]
	r[0] += c30
	r[1] += c31
	r[2] += c32
	r[3] += c33
}
