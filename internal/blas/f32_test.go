package blas

import (
	"math/rand"
	"testing"

	"luqr/internal/mat"
)

// withKernel32 runs f under a specific float32 micro-kernel geometry,
// restoring the init-time selection afterwards.
func withKernel32(mr, nr int, kernel func(int, []float32, []float32, []float32, int), f func()) {
	mr0, nr0, k0 := gemmMR32, gemmNR32, gemmKernel32
	gemmMR32, gemmNR32, gemmKernel32 = mr, nr, kernel
	defer func() { gemmMR32, gemmNR32, gemmKernel32 = mr0, nr0, k0 }()
	f()
}

// f32Representable reports whether every element of m is an exactly
// representable float32 widened to float64 — the storage invariant of the
// mixed-precision routines.
func f32Representable(m *mat.Matrix) bool {
	for i := 0; i < m.Rows; i++ {
		for _, v := range m.Row(i) {
			if float64(float32(v)) != v {
				return false
			}
		}
	}
	return true
}

// TestGemm32Table cross-checks the packed float32 Gemm against the float64
// naive reference over all transpose variants, fringe shapes, cache-block
// boundaries, alpha/beta special cases, and strided views, under both the
// host-selected kernel and the forced portable kernel. Accuracy is gated at
// float32 resolution, and every stored result must be f32-representable.
func TestGemm32Table(t *testing.T) {
	shapes := [][3]int{ // {m, n, k}
		{1, 1, 1},
		{3, 5, 7},
		{7, 3, 5},
		{5, 7, 3},
		{6, 16, 6},   // exact micro-tile for the AVX2 f32 geometry
		{39, 41, 40},
		{13, 9, 259}, // k crosses the KC=256 blocking boundary
		{133, 9, 17}, // m crosses the MC=132 blocking boundary
		{9, 513, 5},  // n crosses the NC=512 blocking boundary
	}
	alphas := []float64{0, 1, -0.5}
	betas := []float64{0, 1, 2}

	check := func(t *testing.T, useViews bool) {
		rng := rand.New(rand.NewSource(31))
		for _, d := range shapes {
			m, n, k := d[0], d[1], d[2]
			for _, ta := range []Transpose{NoTrans, Trans} {
				for _, tb := range []Transpose{NoTrans, Trans} {
					for _, alpha := range alphas {
						for _, beta := range betas {
							ar, ac := m, k
							if ta == Trans {
								ar, ac = k, m
							}
							br, bc := k, n
							if tb == Trans {
								br, bc = n, k
							}
							var a, b, c0 *mat.Matrix
							if useViews {
								a, b, c0 = viewOf(rng, ar, ac), viewOf(rng, br, bc), viewOf(rng, m, n)
							} else {
								a, b, c0 = randMat(rng, ar, ac), randMat(rng, br, bc), randMat(rng, m, n)
							}
							got := c0.Clone()
							want := c0.Clone()
							Gemm32(ta, tb, alpha, a, b, beta, got)
							naiveGemm(ta, tb, alpha, a, b, beta, want)
							// float32 unit roundoff is ~6e-8; allow a k-term
							// accumulation with NormFloat64-scale data.
							tol := 2e-5 * float64(k+2)
							if diff := mat.MaxDiff(got, want); diff > tol {
								t.Fatalf("Gemm32 m=%d n=%d k=%d ta=%v tb=%v alpha=%g beta=%g views=%v: maxdiff %g > %g",
									m, n, k, ta, tb, alpha, beta, useViews, diff, tol)
							}
							// alpha=0, beta=1 is a no-op: C legitimately
							// keeps its f64 input values.
							if !(alpha == 0 && beta == 1) && !f32Representable(got) {
								t.Fatalf("Gemm32 m=%d n=%d k=%d: result not f32-representable", m, n, k)
							}
						}
					}
				}
			}
		}
	}

	t.Run("hostKernel", func(t *testing.T) {
		check(t, false)
		check(t, true)
	})
	t.Run("portableKernel", func(t *testing.T) {
		withKernel32(4, 4, kernelGeneric4x4f32, func() {
			check(t, false)
			check(t, true)
		})
	})
}

// TestTrsm32AllVariants solves with the float32 blocked Trsm and verifies
// op(T)·X ≈ alpha·B at float32 resolution for every variant, on orders both
// below and above the triBlock boundary.
func TestTrsm32AllVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for _, n := range []int{1, 3, 13, 40} {
		for _, w := range []int{1, 5} {
			for _, alpha := range []float64{1, -0.5} {
				for _, side := range []Side{Left, Right} {
					for _, uplo := range []Uplo{Upper, Lower} {
						for _, trans := range []Transpose{NoTrans, Trans} {
							for _, diag := range []Diag{NonUnit, Unit} {
								tm := randTri(rng, n, uplo, diag)
								var b *mat.Matrix
								if side == Left {
									b = viewOf(rng, n, w)
								} else {
									b = viewOf(rng, w, n)
								}
								b0 := b.Clone()
								Trsm32(side, uplo, trans, diag, alpha, tm, b)
								back := applyTri(side, uplo, trans, diag, tm, b)
								for i := range b0.Data {
									b0.Data[i] *= alpha
								}
								// Substitution at f32 on an order-n triangle:
								// scale the gate with n and with the solution
								// norm (unit-triangular solves amplify x).
								xnorm := 1.0
								for i := 0; i < b.Rows; i++ {
									for _, v := range b.Row(i) {
										if v > xnorm {
											xnorm = v
										} else if -v > xnorm {
											xnorm = -v
										}
									}
								}
								tol := 1e-4 * float64(n) * xnorm
								if d := mat.MaxDiff(back, b0); d > tol {
									t.Fatalf("Trsm32 n=%d w=%d alpha=%g side=%v uplo=%v trans=%v diag=%v residual %g > %g",
										n, w, alpha, side, uplo, trans, diag, d, tol)
								}
							}
						}
					}
				}
			}
		}
	}
}

// TestTrmm32AllVariants cross-checks the float32 blocked Trmm against the
// float64 Trmm at float32 resolution for every variant.
func TestTrmm32AllVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for _, n := range []int{1, 3, 13, 40} {
		for _, w := range []int{1, 5} {
			for _, alpha := range []float64{1, -0.5} {
				for _, side := range []Side{Left, Right} {
					for _, uplo := range []Uplo{Upper, Lower} {
						for _, trans := range []Transpose{NoTrans, Trans} {
							for _, diag := range []Diag{NonUnit, Unit} {
								tm := randTri(rng, n, uplo, diag)
								var b *mat.Matrix
								if side == Left {
									b = viewOf(rng, n, w)
								} else {
									b = viewOf(rng, w, n)
								}
								got := b.Clone()
								want := b.Clone()
								Trmm32(side, uplo, trans, diag, alpha, tm, got)
								Trmm(side, uplo, trans, diag, alpha, tm, want)
								tol := 1e-4 * float64(n)
								if d := mat.MaxDiff(got, want); d > tol {
									t.Fatalf("Trmm32 n=%d w=%d alpha=%g side=%v uplo=%v trans=%v diag=%v maxdiff %g > %g",
										n, w, alpha, side, uplo, trans, diag, d, tol)
								}
							}
						}
					}
				}
			}
		}
	}
}

// TestGemm32ZeroAlloc asserts the steady-state zero-allocation contract of
// the float32 packed path (pack panels and the accumulator come from the
// float32 workspace arena).
func TestGemm32ZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; zero-alloc contract checked in non-race runs")
	}
	rng := rand.New(rand.NewSource(34))
	a := randMat(rng, 96, 96)
	b := randMat(rng, 96, 96)
	c := randMat(rng, 96, 96)
	run := func() { Gemm32(NoTrans, NoTrans, -1, a, b, 1, c) }
	run() // warm the pools
	allocs := testing.AllocsPerRun(20, run)
	if allocs > 2 {
		t.Fatalf("Gemm32 steady state allocates %.1f objects/op, want <= 2", allocs)
	}
}
