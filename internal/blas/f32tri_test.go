package blas

import (
	"math"
	"math/rand"
	"testing"

	"luqr/internal/mat"
)

// Pinning tests for the packed f32 triangular paths: Trmm32 materializes the
// triangle densely and runs one in-place Gemm32; Trsm32 recurses with packed
// GEMM couplings. Both must agree with the scalar basic kernels at float32
// resolution (accumulation order differs, so agreement is tolerance-gated),
// and the resident siblings must stay bit-identical through the new paths.

// TestTrmm32PackedMatchesBasic drives every Trmm32 variant at orders that
// take the packed dense-triangle path and compares against trmmBasic32 on
// the same data; the resident Trmm32R must match Trmm32 bit-for-bit.
func TestTrmm32PackedMatchesBasic(t *testing.T) {
	check := func(t *testing.T, orders []int) {
		rng := rand.New(rand.NewSource(211))
		for _, n := range orders {
			for _, w := range []int{1, 7, 33} {
				for _, side := range []Side{Left, Right} {
					for _, uplo := range []Uplo{Lower, Upper} {
						for _, trans := range []Transpose{NoTrans, Trans} {
							for _, diag := range []Diag{NonUnit, Unit} {
								tm := randTri(rng, n, uplo, diag)
								br, bc := n, w
								if side == Right {
									br, bc = w, n
								}
								b := randMat(rng, br, bc)
								want := b.Clone()
								trmmBasic32(side, uplo, trans, diag, -0.5, tm, want)
								got := b.Clone()
								Trmm32(side, uplo, trans, diag, -0.5, tm, got)
								tol := 1e-4 * float64(n)
								if d := mat.MaxDiff(got, want); d > tol {
									t.Fatalf("Trmm32 packed n=%d w=%d side=%v uplo=%v trans=%v diag=%v maxdiff %g > %g",
										n, w, side, uplo, trans, diag, d, tol)
								}
								t32, b32 := roundTo32(tm), roundTo32(b)
								Trmm32R(side, uplo, trans, diag, -0.5, t32, b32)
								matchWidened(t, "Trmm32R packed", b32, got)
							}
						}
					}
				}
			}
		}
	}
	t.Run("hostKernel", func(t *testing.T) { check(t, []int{trmmPackMin, 40, 96}) })
	t.Run("portableKernel", func(t *testing.T) {
		withKernel32(4, 4, kernelGeneric4x4f32, func() { check(t, []int{trmmPackMin, 40}) })
	})
}

// TestTrmm32PackedIgnoresOffTriangle poisons the unused half of T (and, for
// Unit, the diagonal) with NaN and requires the packed path to reproduce the
// basic kernel exactly as if the poison were absent — the materialization
// must never read outside the stored triangle. This is the contract the QR
// update kernels rely on: the V factor's super-diagonal holds R values.
func TestTrmm32PackedIgnoresOffTriangle(t *testing.T) {
	rng := rand.New(rand.NewSource(223))
	n, w := 40, 7
	for _, side := range []Side{Left, Right} {
		for _, uplo := range []Uplo{Lower, Upper} {
			for _, trans := range []Transpose{NoTrans, Trans} {
				for _, diag := range []Diag{NonUnit, Unit} {
					tm := randTri(rng, n, uplo, diag)
					for i := 0; i < n; i++ {
						for j := 0; j < n; j++ {
							off := (uplo == Lower && j > i) || (uplo == Upper && j < i)
							if off || (diag == Unit && i == j) {
								tm.Set(i, j, math.NaN())
							}
						}
					}
					br, bc := n, w
					if side == Right {
						br, bc = w, n
					}
					b := randMat(rng, br, bc)
					want := b.Clone()
					trmmBasic32(side, uplo, trans, diag, 1, tm, want)
					got := b.Clone()
					Trmm32(side, uplo, trans, diag, 1, tm, got)
					tol := 1e-4 * float64(n)
					if d := mat.MaxDiff(got, want); d > tol || got.NormMax() != got.NormMax() {
						t.Fatalf("Trmm32 poisoned n=%d side=%v uplo=%v trans=%v diag=%v maxdiff %g (NaN leak?)",
							n, side, uplo, trans, diag, d)
					}
				}
			}
		}
	}
}

// TestTrsm32RecursiveMatchesBasic drives every Trsm32 variant at orders
// above the recursion leaf and compares against a pure trsmBasic32 solve;
// the resident Trsm32R must match Trsm32 bit-for-bit.
func TestTrsm32RecursiveMatchesBasic(t *testing.T) {
	check := func(t *testing.T, orders []int) {
		rng := rand.New(rand.NewSource(227))
		for _, n := range orders {
			for _, w := range []int{1, 7} {
				for _, side := range []Side{Left, Right} {
					for _, uplo := range []Uplo{Lower, Upper} {
						for _, trans := range []Transpose{NoTrans, Trans} {
							for _, diag := range []Diag{NonUnit, Unit} {
								tm := randTri(rng, n, uplo, diag)
								br, bc := n, w
								if side == Right {
									br, bc = w, n
								}
								b := randMat(rng, br, bc)
								want := b.Clone()
								trsmBasic32(side, uplo, trans, diag, tm, want)
								got := b.Clone()
								Trsm32(side, uplo, trans, diag, 1, tm, got)
								xnorm := 1.0
								for i := 0; i < want.Rows; i++ {
									for _, v := range want.Row(i) {
										if a := math.Abs(v); a > xnorm {
											xnorm = a
										}
									}
								}
								tol := 1e-4 * float64(n) * xnorm
								if d := mat.MaxDiff(got, want); d > tol {
									t.Fatalf("Trsm32 recursive n=%d w=%d side=%v uplo=%v trans=%v diag=%v maxdiff %g > %g",
										n, w, side, uplo, trans, diag, d, tol)
								}
								t32, b32 := roundTo32(tm), roundTo32(b)
								Trsm32R(side, uplo, trans, diag, 1, t32, b32)
								// With alpha=1 an element the solve never
								// touches stays raw f64 in got but was
								// pre-rounded in b32, so bit-compare after
								// rounding: the resident result must equal
								// float32(converting result) everywhere.
								for i := 0; i < got.Rows; i++ {
									for j := 0; j < got.Cols; j++ {
										if b32.At(i, j) != float32(got.At(i, j)) {
											t.Fatalf("Trsm32R recursive n=%d: (%d,%d) resident %v != converting %v",
												n, i, j, b32.At(i, j), got.At(i, j))
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	t.Run("hostKernel", func(t *testing.T) { check(t, []int{trsmRecLeaf + 1, 40, 96}) })
	t.Run("portableKernel", func(t *testing.T) {
		withKernel32(4, 4, kernelGeneric4x4f32, func() { check(t, []int{trsmRecLeaf + 1, 40}) })
	})
}
