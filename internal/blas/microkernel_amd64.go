package blas

// AVX2+FMA micro-kernel selection. Go's default amd64 codegen targets the
// GOAMD64=v1 baseline (scalar SSE2), whose ~2 FP ops/cycle ceiling caps a
// pure-Go GEMM near 3 GFLOP/s on the paper-class hosts. The 6×8 assembly
// kernel (microkernel_amd64.s) issues two 4-wide FMAs per packed A element
// and keeps the whole 6×8 accumulator block in YMM registers, so hosts with
// AVX2+FMA run the same packed path several times faster. Feature detection
// happens once at init via CPUID/XGETBV; unsupported hosts keep the portable
// 4×4 kernel.

// cpuidLeaf executes CPUID with the given EAX/ECX inputs.
func cpuidLeaf(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads extended control register 0 (requires OSXSAVE).
func xgetbv0() (eax, edx uint32)

// kernel6x8FMA computes C[0:6, 0:8] += Ap·Bp on packed micro-panels
// (layout as described in microkernel.go), with C rows ldc apart.
//
//go:noescape
func kernel6x8FMA(kc int, a, b, c *float64, ldc int)

// kernel6x16FMA32 computes C[0:6, 0:16] += Ap·Bp on packed float32
// micro-panels (layout as described in microkernel32.go), with C rows ldc
// float32s apart.
//
//go:noescape
func kernel6x16FMA32(kc int, a, b, c *float32, ldc int)

// cvtRowAVX converts dst[0:n] = float32(src[0:n]).
//
//go:noescape
func cvtRowAVX(dst *float32, src *float64, n int)

// cvtScaleStrideAVX writes dst[i*stride] = alpha·float32(src[i]).
//
//go:noescape
func cvtScaleStrideAVX(dst *float32, stride int, src *float64, alpha float32, n int)

// axpyFMA computes y[0:n] += alpha·x[0:n] with AVX2 FMAs.
//
//go:noescape
func axpyFMA(alpha float64, x, y *float64, n int)

// dotFMA returns x[0:n]ᵀ·y[0:n] with AVX2 FMAs.
//
//go:noescape
func dotFMA(x, y *float64, n int) float64

func init() {
	if hasAVX2FMA() {
		gemmMR, gemmNR = 6, 8
		gemmKernel = kernelAVX6x8
		gemmMR32, gemmNR32 = 6, 16
		gemmKernel32 = kernelAVX6x16f32
		cvtRow32 = func(dst []float32, src []float64) {
			if len(src) == 0 {
				return
			}
			cvtRowAVX(&dst[0], &src[0], len(src))
		}
		cvtScaleStride32 = func(dst []float32, stride int, src []float64, alpha float32) {
			if len(src) == 0 {
				return
			}
			cvtScaleStrideAVX(&dst[0], stride, &src[0], alpha, len(src))
		}
		axpyKernel = func(alpha float64, x, y []float64) {
			axpyFMA(alpha, &x[0], &y[0], len(x))
		}
		dotKernel = func(x, y []float64) float64 {
			return dotFMA(&x[0], &y[0], len(x))
		}
	}
}

func kernelAVX6x8(kc int, a, b, c []float64, ldc int) {
	if kc == 0 {
		return
	}
	kernel6x8FMA(kc, &a[0], &b[0], &c[0], ldc)
}

func kernelAVX6x16f32(kc int, a, b, c []float32, ldc int) {
	if kc == 0 {
		return
	}
	kernel6x16FMA32(kc, &a[0], &b[0], &c[0], ldc)
}

// hasAVX2FMA reports whether the CPU and OS support the AVX2+FMA kernel.
func hasAVX2FMA() bool {
	maxLeaf, _, _, _ := cpuidLeaf(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidLeaf(1, 0)
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if ecx1&fmaBit == 0 || ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return false
	}
	// The OS must save/restore XMM and YMM state across context switches.
	xlo, _ := xgetbv0()
	if xlo&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuidLeaf(7, 0)
	const avx2Bit = 1 << 5
	return ebx7&avx2Bit != 0
}
