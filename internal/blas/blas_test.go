package blas

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"luqr/internal/mat"
)

func randMat(rng *rand.Rand, r, c int) *mat.Matrix {
	m := mat.New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// randTri returns a well-conditioned triangular matrix (diagonal bumped away
// from zero so triangular solves stay accurate).
func randTri(rng *rand.Rand, n int, uplo Uplo, diag Diag) *mat.Matrix {
	t := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			inTri := (uplo == Lower && j <= i) || (uplo == Upper && j >= i)
			if !inTri {
				continue
			}
			if i == j {
				if diag == Unit {
					// Storage outside the implicit unit diagonal may hold
					// garbage; put junk there to verify it is ignored.
					t.Set(i, j, rng.NormFloat64())
				} else {
					t.Set(i, j, 2+rng.Float64())
					if rng.Intn(2) == 0 {
						t.Set(i, j, -t.At(i, j))
					}
				}
			} else {
				t.Set(i, j, rng.NormFloat64())
			}
		}
	}
	return t
}

// naiveGemm is the O(mnk) reference used to validate the blocked kernel.
func naiveGemm(transA, transB Transpose, alpha float64, a, b *mat.Matrix, beta float64, c *mat.Matrix) {
	m, k := opShape(a, transA)
	_, n := opShape(b, transB)
	av := func(i, p int) float64 {
		if transA == Trans {
			return a.At(p, i)
		}
		return a.At(i, p)
	}
	bv := func(p, j int) float64 {
		if transB == Trans {
			return b.At(j, p)
		}
		return b.At(p, j)
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := 0; p < k; p++ {
				s += av(i, p) * bv(p, j)
			}
			c.Set(i, j, alpha*s+beta*c.At(i, j))
		}
	}
}

func TestDotAxpyScalIamax(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, -5, 6}
	if Dot(x, y) != 4-10+18 {
		t.Fatalf("Dot = %g", Dot(x, y))
	}
	Axpy(2, x, y) // y = {6,-1,12}
	if y[0] != 6 || y[1] != -1 || y[2] != 12 {
		t.Fatalf("Axpy got %v", y)
	}
	Scal(0.5, y)
	if y[0] != 3 || y[1] != -0.5 || y[2] != 6 {
		t.Fatalf("Scal got %v", y)
	}
	if Iamax([]float64{1, -7, 7, 2}) != 1 {
		t.Fatal("Iamax must return the first index of max abs")
	}
}

func TestAxpyZeroAlphaNoop(t *testing.T) {
	y := []float64{1, 2}
	Axpy(0, []float64{math.NaN(), math.NaN()}, y)
	if y[0] != 1 || y[1] != 2 {
		t.Fatal("Axpy with alpha=0 must not touch y")
	}
}

func TestGerMatchesDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randMat(rng, 4, 3)
	want := a.Clone()
	x := []float64{1, -2, 0, 3}
	y := []float64{2, 5, -1}
	Ger(1.5, x, y, a)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			exp := want.At(i, j) + 1.5*x[i]*y[j]
			if math.Abs(a.At(i, j)-exp) > 1e-14 {
				t.Fatalf("Ger (%d,%d) = %g, want %g", i, j, a.At(i, j), exp)
			}
		}
	}
}

func TestGemvBothTransposes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randMat(rng, 5, 3)
	x3 := []float64{1, 2, 3}
	x5 := []float64{1, -1, 2, -2, 0.5}
	y := make([]float64, 5)
	Gemv(NoTrans, 1, a, x3, 0, y)
	want := mat.MulVec(a, x3)
	for i := range y {
		if math.Abs(y[i]-want[i]) > 1e-14 {
			t.Fatalf("Gemv NoTrans mismatch at %d", i)
		}
	}
	y2 := make([]float64, 3)
	Gemv(Trans, 2, a, x5, 0, y2)
	wantT := mat.MulVec(a.T(), x5)
	for i := range y2 {
		if math.Abs(y2[i]-2*wantT[i]) > 1e-13 {
			t.Fatalf("Gemv Trans mismatch at %d: %g vs %g", i, y2[i], 2*wantT[i])
		}
	}
	// beta path: y = 1·A·x + 3·y0
	y3 := []float64{1, 1, 1, 1, 1}
	Gemv(NoTrans, 1, a, x3, 3, y3)
	for i := range y3 {
		if math.Abs(y3[i]-(want[i]+3)) > 1e-13 {
			t.Fatalf("Gemv beta mismatch at %d", i)
		}
	}
}

func TestGemmAgainstNaiveAllVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dims := [][3]int{{1, 1, 1}, {2, 3, 4}, {7, 5, 6}, {64, 64, 64}, {65, 70, 67}, {130, 40, 90}}
	for _, ta := range []Transpose{NoTrans, Trans} {
		for _, tb := range []Transpose{NoTrans, Trans} {
			for _, d := range dims {
				m, n, k := d[0], d[1], d[2]
				var a, b *mat.Matrix
				if ta == NoTrans {
					a = randMat(rng, m, k)
				} else {
					a = randMat(rng, k, m)
				}
				if tb == NoTrans {
					b = randMat(rng, k, n)
				} else {
					b = randMat(rng, n, k)
				}
				c0 := randMat(rng, m, n)
				got := c0.Clone()
				want := c0.Clone()
				alpha, beta := 1.3, -0.7
				Gemm(ta, tb, alpha, a, b, beta, got)
				naiveGemm(ta, tb, alpha, a, b, beta, want)
				if d := mat.MaxDiff(got, want); d > 1e-10*float64(k) {
					t.Fatalf("Gemm ta=%v tb=%v %v: maxdiff %g", ta, tb, d, d)
				}
			}
		}
	}
}

func TestGemmBetaZeroIgnoresNaNInC(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randMat(rng, 3, 3)
	b := randMat(rng, 3, 3)
	c := mat.New(3, 3)
	c.Fill(math.NaN())
	Gemm(NoTrans, NoTrans, 1, a, b, 0, c)
	if !c.IsFinite() {
		t.Fatal("Gemm with beta=0 must overwrite NaNs in C")
	}
}

func TestGemmAlphaZeroScalesOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randMat(rng, 3, 3)
	b := randMat(rng, 3, 3)
	c := randMat(rng, 3, 3)
	want := c.Clone()
	Gemm(NoTrans, NoTrans, 0, a, b, 2, c)
	for i := range want.Data {
		want.Data[i] *= 2
	}
	if mat.MaxDiff(c, want) > 1e-15 {
		t.Fatal("Gemm alpha=0 should only scale C by beta")
	}
}

func TestGemmOnViews(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	big := randMat(rng, 10, 10)
	a := big.View(0, 0, 4, 4)
	b := big.View(4, 4, 4, 4)
	c := mat.New(4, 4)
	want := mat.New(4, 4)
	Gemm(NoTrans, NoTrans, 1, a, b, 0, c)
	naiveGemm(NoTrans, NoTrans, 1, a, b, 0, want)
	if mat.MaxDiff(c, want) > 1e-12 {
		t.Fatal("Gemm on strided views is wrong")
	}
}

func TestGemmAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		a, b, c := randMat(rng, n, n), randMat(rng, n, n), randMat(rng, n, n)
		ab := mat.New(n, n)
		Gemm(NoTrans, NoTrans, 1, a, b, 0, ab)
		abc1 := mat.New(n, n)
		Gemm(NoTrans, NoTrans, 1, ab, c, 0, abc1)
		bc := mat.New(n, n)
		Gemm(NoTrans, NoTrans, 1, b, c, 0, bc)
		abc2 := mat.New(n, n)
		Gemm(NoTrans, NoTrans, 1, a, bc, 0, abc2)
		return mat.MaxDiff(abc1, abc2) < 1e-10*float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTrsvAllVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, uplo := range []Uplo{Upper, Lower} {
		for _, trans := range []Transpose{NoTrans, Trans} {
			for _, diag := range []Diag{NonUnit, Unit} {
				n := 8
				tm := randTri(rng, n, uplo, diag)
				x := make([]float64, n)
				for i := range x {
					x[i] = rng.NormFloat64()
				}
				b := make([]float64, n)
				copy(b, x)
				Trsv(uplo, trans, diag, tm, b)
				// Verify op(T)·b == x using an explicit multiply honoring diag.
				y := make([]float64, n)
				for i := 0; i < n; i++ {
					s := 0.0
					for j := 0; j < n; j++ {
						ii, jj := i, j
						if trans == Trans {
							ii, jj = j, i
						}
						inTri := (uplo == Lower && jj <= ii) || (uplo == Upper && jj >= ii)
						v := 0.0
						if inTri {
							v = tm.At(ii, jj)
						}
						if ii == jj && diag == Unit {
							v = 1
						}
						s += v * b[j]
					}
					y[i] = s
				}
				for i := range y {
					if math.Abs(y[i]-x[i]) > 1e-9 {
						t.Fatalf("Trsv uplo=%v trans=%v diag=%v residual %g at %d", uplo, trans, diag, y[i]-x[i], i)
					}
				}
			}
		}
	}
}

// applyTri computes op(T)·B or B·op(T) honoring the implicit unit diagonal,
// as a reference for Trsm/Trmm tests.
func applyTri(side Side, uplo Uplo, trans Transpose, diag Diag, tm, b *mat.Matrix) *mat.Matrix {
	n := tm.Rows
	full := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			inTri := (uplo == Lower && j <= i) || (uplo == Upper && j >= i)
			v := 0.0
			if inTri {
				v = tm.At(i, j)
			}
			if i == j && diag == Unit {
				v = 1
			}
			full.Set(i, j, v)
		}
	}
	out := mat.New(b.Rows, b.Cols)
	if side == Left {
		naiveGemm(trans, NoTrans, 1, full, b, 0, out)
	} else {
		naiveGemm(NoTrans, trans, 1, b, full, 0, out)
	}
	return out
}

func TestTrsmAllVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, side := range []Side{Left, Right} {
		for _, uplo := range []Uplo{Upper, Lower} {
			for _, trans := range []Transpose{NoTrans, Trans} {
				for _, diag := range []Diag{NonUnit, Unit} {
					n := 6
					var b *mat.Matrix
					if side == Left {
						b = randMat(rng, n, 9)
					} else {
						b = randMat(rng, 9, n)
					}
					tm := randTri(rng, n, uplo, diag)
					x := b.Clone()
					Trsm(side, uplo, trans, diag, 1, tm, x)
					// op(T)·X (or X·op(T)) must reproduce B.
					back := applyTri(side, uplo, trans, diag, tm, x)
					if d := mat.MaxDiff(back, b); d > 1e-9 {
						t.Fatalf("Trsm side=%v uplo=%v trans=%v diag=%v residual %g", side, uplo, trans, diag, d)
					}
				}
			}
		}
	}
}

func TestTrsmAlphaScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 5
	tm := randTri(rng, n, Upper, NonUnit)
	b := randMat(rng, n, 3)
	x1 := b.Clone()
	Trsm(Left, Upper, NoTrans, NonUnit, 2, tm, x1)
	x2 := b.Clone()
	Trsm(Left, Upper, NoTrans, NonUnit, 1, tm, x2)
	for i := range x2.Data {
		x2.Data[i] *= 2
	}
	if mat.MaxDiff(x1, x2) > 1e-10 {
		t.Fatal("Trsm alpha scaling incorrect")
	}
}

func TestTrmmAllVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, side := range []Side{Left, Right} {
		for _, uplo := range []Uplo{Upper, Lower} {
			for _, trans := range []Transpose{NoTrans, Trans} {
				for _, diag := range []Diag{NonUnit, Unit} {
					n := 6
					var b *mat.Matrix
					if side == Left {
						b = randMat(rng, n, 7)
					} else {
						b = randMat(rng, 7, n)
					}
					tm := randTri(rng, n, uplo, diag)
					got := b.Clone()
					Trmm(side, uplo, trans, diag, 1.5, tm, got)
					want := applyTri(side, uplo, trans, diag, tm, b)
					for i := range want.Data {
						want.Data[i] *= 1.5
					}
					if d := mat.MaxDiff(got, want); d > 1e-10 {
						t.Fatalf("Trmm side=%v uplo=%v trans=%v diag=%v diff %g", side, uplo, trans, diag, d)
					}
				}
			}
		}
	}
}

func TestTrsmTrmmRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		uplo := Uplo(rng.Intn(2))
		diag := Diag(rng.Intn(2))
		side := Side(rng.Intn(2))
		trans := Transpose(rng.Intn(2))
		tm := randTri(rng, n, uplo, diag)
		var b *mat.Matrix
		if side == Left {
			b = randMat(rng, n, 1+rng.Intn(6))
		} else {
			b = randMat(rng, 1+rng.Intn(6), n)
		}
		x := b.Clone()
		Trsm(side, uplo, trans, diag, 1, tm, x)
		Trmm(side, uplo, trans, diag, 1, tm, x)
		return mat.MaxDiff(x, b) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
