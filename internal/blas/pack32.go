package blas

import "luqr/internal/mat"

// Float32 packing for the mixed-precision GEMM path. Layout and blocking are
// identical to the float64 pack (pack.go); the only difference is that the
// float64 → float32 conversion is fused into the pack, so the demotion to
// single precision costs no extra pass over memory and the micro-kernel
// consumes pure float32 panels.

// The conversion inner loops are behind function variables so amd64 hosts
// with AVX can swap in vectorized versions (VCVTPD2PS retires four
// conversions per instruction) at init; the generic bodies are the portable
// fallback.
var (
	// cvtRow32 converts a contiguous float64 row: dst[i] = float32(src[i]).
	cvtRow32 = cvtRow32Generic
	// cvtScaleStride32 converts with a scale and a strided destination:
	// dst[i*stride] = alpha·float32(src[i]).
	cvtScaleStride32 = cvtScaleStride32Generic
)

func cvtRow32Generic(dst []float32, src []float64) {
	for i, v := range src {
		dst[i] = float32(v)
	}
}

func cvtScaleStride32Generic(dst []float32, stride int, src []float64, alpha float32) {
	for i, v := range src {
		dst[i*stride] = alpha * float32(v)
	}
}

// packA32 packs op(A)[i0:i0+mc, p0:p0+kc], scaled by alpha, into MR-tall
// column-major float32 micro-panels (element (ir+i, p) at buf[ir*kc+p*mr+i]),
// zero-padding rows past mc to a full MR.
func packA32(buf []float32, a *mat.Matrix, transA Transpose, alpha float32, i0, p0, mc, kc, mr int) {
	for ir := 0; ir < mc; ir += mr {
		rows := min(mr, mc-ir)
		dst := buf[ir*kc:]
		if transA == NoTrans {
			for i := 0; i < rows; i++ {
				src := a.Data[(i0+ir+i)*a.Stride+p0:][:kc]
				cvtScaleStride32(dst[i:], mr, src, alpha)
			}
		} else {
			for p := 0; p < kc; p++ {
				src := a.Data[(p0+p)*a.Stride+i0+ir:][:rows]
				d := dst[p*mr : p*mr+rows : p*mr+rows]
				for i, v := range src {
					d[i] = alpha * float32(v)
				}
			}
		}
		if rows < mr {
			for p := 0; p < kc; p++ {
				d := dst[p*mr:]
				for i := rows; i < mr; i++ {
					d[i] = 0
				}
			}
		}
	}
}

// packB32 packs op(B)[p0:p0+kc, j0:j0+nc] into NR-wide row-major float32
// micro-panels (element (p, jr+j) at buf[jr*kc+p*nr+j]), zero-padding columns
// past nc to a full NR.
func packB32(buf []float32, b *mat.Matrix, transB Transpose, j0, p0, kc, nc, nr int) {
	if transB == NoTrans {
		// Convert each contiguous B row once with the vectorized helper,
		// then split the float32 row into NR-wide panel chunks with cheap
		// f32→f32 copies.
		tmp := mat.GetBuf32(nc)
		defer mat.PutBuf32(tmp)
		row := tmp.Data[:nc]
		for p := 0; p < kc; p++ {
			cvtRow32(row, b.Data[(p0+p)*b.Stride+j0:][:nc])
			for jr := 0; jr < nc; jr += nr {
				cols := min(nr, nc-jr)
				d := buf[jr*kc+p*nr : jr*kc+p*nr+nr : jr*kc+p*nr+nr]
				copy(d[:cols], row[jr:jr+cols])
				for j := cols; j < nr; j++ {
					d[j] = 0
				}
			}
		}
		return
	}
	for jr := 0; jr < nc; jr += nr {
		cols := min(nr, nc-jr)
		dst := buf[jr*kc:]
		for j := 0; j < cols; j++ {
			src := b.Data[(j0+jr+j)*b.Stride+p0:][:kc]
			cvtScaleStride32(dst[j:], nr, src, 1)
		}
		if cols < nr {
			for p := 0; p < kc; p++ {
				d := dst[p*nr:]
				for j := cols; j < nr; j++ {
					d[j] = 0
				}
			}
		}
	}
}
