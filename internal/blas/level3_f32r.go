package blas

import (
	"fmt"

	"luqr/internal/mat"
)

// Resident mixed-precision level-3 routines: float32 arithmetic on float32
// storage.
//
// Gemm32R/Trsm32R/Trmm32R are the conversion-free siblings of
// Gemm32/Trsm32/Trmm32: same blocking, same micro-kernel, same operation
// order — the only difference is that operands are mat.Matrix32 tile images,
// so packing is a pure copy instead of a fused f64→f32 conversion and the
// merge writes float32 directly instead of widening. Because float32 widens
// to float64 exactly, a resident kernel chain produces bit-identical values
// to the round-on-read/widen-on-write chain on float64 storage; the
// residency layer (package tile) relies on that identity to convert tiles
// once per precision epoch instead of once per call.

// opShape32 returns (rows, cols) of op(A).
func opShape32(a *mat.Matrix32, trans Transpose) (int, int) {
	if trans == NoTrans {
		return a.Rows, a.Cols
	}
	return a.Cols, a.Rows
}

// packA32R packs op(A)[i0:i0+mc, p0:p0+kc], scaled by alpha, into MR-tall
// column-major float32 micro-panels — the same layout as packA32, minus the
// conversion.
func packA32R(buf []float32, a *mat.Matrix32, transA Transpose, alpha float32, i0, p0, mc, kc, mr int) {
	for ir := 0; ir < mc; ir += mr {
		rows := min(mr, mc-ir)
		dst := buf[ir*kc:]
		if transA == NoTrans {
			for i := 0; i < rows; i++ {
				src := a.Data[(i0+ir+i)*a.Stride+p0:][:kc]
				for p, v := range src {
					dst[p*mr+i] = alpha * v
				}
			}
		} else {
			for p := 0; p < kc; p++ {
				src := a.Data[(p0+p)*a.Stride+i0+ir:][:rows]
				d := dst[p*mr : p*mr+rows : p*mr+rows]
				for i, v := range src {
					d[i] = alpha * v
				}
			}
		}
		if rows < mr {
			for p := 0; p < kc; p++ {
				d := dst[p*mr:]
				for i := rows; i < mr; i++ {
					d[i] = 0
				}
			}
		}
	}
}

// packB32R packs op(B)[p0:p0+kc, j0:j0+nc] into NR-wide row-major float32
// micro-panels — the same layout as packB32, minus the conversion.
func packB32R(buf []float32, b *mat.Matrix32, transB Transpose, j0, p0, kc, nc, nr int) {
	if transB == NoTrans {
		for p := 0; p < kc; p++ {
			row := b.Data[(p0+p)*b.Stride+j0:][:nc]
			for jr := 0; jr < nc; jr += nr {
				cols := min(nr, nc-jr)
				d := buf[jr*kc+p*nr : jr*kc+p*nr+nr : jr*kc+p*nr+nr]
				copy(d[:cols], row[jr:jr+cols])
				for j := cols; j < nr; j++ {
					d[j] = 0
				}
			}
		}
		return
	}
	for jr := 0; jr < nc; jr += nr {
		cols := min(nr, nc-jr)
		dst := buf[jr*kc:]
		for j := 0; j < cols; j++ {
			src := b.Data[(j0+jr+j)*b.Stride+p0:][:kc]
			for p, v := range src {
				dst[p*nr+j] = v
			}
		}
		if cols < nr {
			for p := 0; p < kc; p++ {
				d := dst[p*nr:]
				for j := cols; j < nr; j++ {
					d[j] = 0
				}
			}
		}
	}
}

// Gemm32R computes C = alpha·op(A)·op(B) + beta·C on float32 storage. Same
// padded-accumulator driver as Gemm32; results are bit-identical to Gemm32
// over float64 storage holding the same (widened) values.
func Gemm32R(transA, transB Transpose, alpha float64, a, b *mat.Matrix32, beta float64, c *mat.Matrix32) {
	m, ka := opShape32(a, transA)
	kb, n := opShape32(b, transB)
	if ka != kb || c.Rows != m || c.Cols != n {
		panic(fmt.Sprintf("blas: Gemm32R shape mismatch op(A)=%dx%d op(B)=%dx%d C=%dx%d", m, ka, kb, n, c.Rows, c.Cols))
	}
	if m == 0 || n == 0 {
		return
	}
	if alpha == 0 || ka == 0 {
		scaleRows32R(float32(beta), c)
		return
	}
	mr, nr := gemmMR32, gemmNR32
	mp, np := roundUp(m, mr), roundUp(n, nr)
	acc := mat.GetBuf32(mp * np)
	defer mat.PutBuf32(acc)
	gemmPacked32R(transA, transB, float32(alpha), float32(beta), a, b, c, acc.Data, np, m, n, ka)
}

// gemmPacked32R is gemmPacked32 over float32 storage: identical five-loop
// blocking, zero-on-first / merge-on-last accumulator discipline, and
// micro-kernel. It inherits gemmPacked32's aliasing contract: C may alias
// the B operand unconditionally, and the A operand when n <= gemmNC.
func gemmPacked32R(transA, transB Transpose, alpha, beta float32, a, b, c *mat.Matrix32, acc []float32, ldc, m, n, k int) {
	mr, nr := gemmMR32, gemmNR32
	kcMax := min(k, gemmKC)
	mcMax := min(roundUp(m, mr), gemmMC)
	ncMax := min(roundUp(n, nr), gemmNC)

	bufB := mat.GetBuf32(kcMax * ncMax)
	defer mat.PutBuf32(bufB)
	bufA := mat.GetBuf32(mcMax * kcMax)
	defer mat.PutBuf32(bufA)

	for jc := 0; jc < n; jc += gemmNC {
		nc := min(gemmNC, n-jc)
		for pc := 0; pc < k; pc += gemmKC {
			kc := min(gemmKC, k-pc)
			first, last := pc == 0, pc+gemmKC >= k
			packB32R(bufB.Data, b, transB, jc, pc, kc, nc, nr)
			for ic := 0; ic < m; ic += gemmMC {
				mc := min(gemmMC, m-ic)
				packA32R(bufA.Data, a, transA, alpha, ic, pc, mc, kc, mr)
				for jr := 0; jr < nc; jr += nr {
					bp := bufB.Data[jr*kc:]
					for ir := 0; ir < mc; ir += mr {
						off := (ic+ir)*ldc + jc + jr
						if first {
							for i := 0; i < mr; i++ {
								row := acc[off+i*ldc : off+i*ldc+nr]
								for z := range row {
									row[z] = 0
								}
							}
						}
						gemmKernel32(kc, bufA.Data[ir*kc:], bp, acc[off:], ldc)
						if last {
							merge32R(acc[off:], ldc, c, ic+ir, jc+jr, beta)
						}
					}
				}
			}
		}
	}
}

// merge32R folds one finished MR×NR accumulator micro-tile into C at
// (i0, j0): C = beta·C + tile at float32, clipped to C's live extent.
func merge32R(tile []float32, ldt int, c *mat.Matrix32, i0, j0 int, beta float32) {
	mi := min(gemmMR32, c.Rows-i0)
	nj := min(gemmNR32, c.Cols-j0)
	for i := 0; i < mi; i++ {
		crow := c.Data[(i0+i)*c.Stride+j0:][:nj]
		trow := tile[i*ldt:]
		switch beta {
		case 0:
			for j := range crow {
				crow[j] = trow[j]
			}
		case 1:
			for j := range crow {
				crow[j] += trow[j]
			}
		default:
			for j := range crow {
				crow[j] = beta*crow[j] + trow[j]
			}
		}
	}
}

// scaleRows32R applies C = beta·C.
func scaleRows32R(beta float32, c *mat.Matrix32) {
	if beta == 1 {
		return
	}
	for i := 0; i < c.Rows; i++ {
		row := c.Row(i)
		if beta == 0 {
			for j := range row {
				row[j] = 0
			}
		} else {
			for j := range row {
				row[j] = beta * row[j]
			}
		}
	}
}

// Float32 scalar helpers on float32 storage — the resident counterparts of
// Axpy32/Dot32/Scal32, same operation order.

func Axpy32R(alpha float32, x, y []float32) {
	for j := range y {
		y[j] += alpha * x[j]
	}
}

func Dot32R(x, y []float32) float32 {
	var s float32
	for j := range x {
		s += x[j] * y[j]
	}
	return s
}

func Scal32R(alpha float32, x []float32) {
	for j := range x {
		x[j] = alpha * x[j]
	}
}

// Trsm32R solves op(T)·X = alpha·B (Side == Left) or X·op(T) = alpha·B
// (Side == Right) in place on float32 storage: same recursive halving as
// Trsm32 — identical split points, coupling GEMMs, and leaf order — so the
// two siblings stay bit-identical.
func Trsm32R(side Side, uplo Uplo, trans Transpose, diag Diag, alpha float64, t, b *mat.Matrix32) {
	n := t.Rows
	if t.Cols != n {
		panic(fmt.Sprintf("blas: Trsm32R with non-square T %dx%d", t.Rows, t.Cols))
	}
	if side == Left && b.Rows != n {
		panic(fmt.Sprintf("blas: Trsm32R Left shape mismatch T=%d B=%dx%d", n, b.Rows, b.Cols))
	}
	if side == Right && b.Cols != n {
		panic(fmt.Sprintf("blas: Trsm32R Right shape mismatch T=%d B=%dx%d", n, b.Rows, b.Cols))
	}
	if alpha != 1 {
		a32 := float32(alpha)
		for i := 0; i < b.Rows; i++ {
			Scal32R(a32, b.Row(i))
		}
	}
	trsmRec32R(side, uplo, trans, diag, t, b)
}

// trsmRec32R is the recursive alpha-free body of Trsm32R — the exact mirror
// of trsmRec32.
func trsmRec32R(side Side, uplo Uplo, trans Transpose, diag Diag, t, b *mat.Matrix32) {
	n := t.Rows
	if n <= trsmRecLeaf {
		trsmBasic32R(side, uplo, trans, diag, t, b)
		return
	}
	n1 := n / 2
	n2 := n - n1
	t11 := t.View(0, 0, n1, n1)
	t22 := t.View(n1, n1, n2, n2)
	effLower := (uplo == Lower) != (trans == Trans)
	if side == Left {
		k := b.Cols
		b1 := b.View(0, 0, n1, k)
		b2 := b.View(n1, 0, n2, k)
		if effLower {
			trsmRec32R(side, uplo, trans, diag, t11, b1)
			if trans == NoTrans {
				Gemm32R(NoTrans, NoTrans, -1, t.View(n1, 0, n2, n1), b1, 1, b2)
			} else {
				Gemm32R(Trans, NoTrans, -1, t.View(0, n1, n1, n2), b1, 1, b2)
			}
			trsmRec32R(side, uplo, trans, diag, t22, b2)
		} else {
			trsmRec32R(side, uplo, trans, diag, t22, b2)
			if trans == NoTrans {
				Gemm32R(NoTrans, NoTrans, -1, t.View(0, n1, n1, n2), b2, 1, b1)
			} else {
				Gemm32R(Trans, NoTrans, -1, t.View(n1, 0, n2, n1), b2, 1, b1)
			}
			trsmRec32R(side, uplo, trans, diag, t11, b1)
		}
		return
	}
	m := b.Rows
	b1 := b.View(0, 0, m, n1)
	b2 := b.View(0, n1, m, n2)
	if effLower {
		trsmRec32R(side, uplo, trans, diag, t22, b2)
		if trans == NoTrans {
			Gemm32R(NoTrans, NoTrans, -1, b2, t.View(n1, 0, n2, n1), 1, b1)
		} else {
			Gemm32R(NoTrans, Trans, -1, b2, t.View(0, n1, n1, n2), 1, b1)
		}
		trsmRec32R(side, uplo, trans, diag, t11, b1)
	} else {
		trsmRec32R(side, uplo, trans, diag, t11, b1)
		if trans == NoTrans {
			Gemm32R(NoTrans, NoTrans, -1, b1, t.View(0, n1, n1, n2), 1, b2)
		} else {
			Gemm32R(NoTrans, Trans, -1, b1, t.View(n1, 0, n2, n1), 1, b2)
		}
		trsmRec32R(side, uplo, trans, diag, t22, b2)
	}
}

// trsmBasic32R is the unblocked float32 substitution kernel behind Trsm32R.
func trsmBasic32R(side Side, uplo Uplo, trans Transpose, diag Diag, t, b *mat.Matrix32) {
	n := t.Rows
	lower := uplo == Lower
	if trans == Trans {
		lower = !lower
	}
	get := func(i, j int) float32 {
		if trans == Trans {
			return t.At(j, i)
		}
		return t.At(i, j)
	}

	if side == Left {
		if lower {
			for i := 0; i < n; i++ {
				bi := b.Row(i)
				for p := 0; p < i; p++ {
					Axpy32R(-get(i, p), b.Row(p), bi)
				}
				if diag == NonUnit {
					Scal32R(1/get(i, i), bi)
				}
			}
		} else {
			for i := n - 1; i >= 0; i-- {
				bi := b.Row(i)
				for p := i + 1; p < n; p++ {
					Axpy32R(-get(i, p), b.Row(p), bi)
				}
				if diag == NonUnit {
					Scal32R(1/get(i, i), bi)
				}
			}
		}
		return
	}

	if trans == NoTrans {
		for r := 0; r < b.Rows; r++ {
			row := b.Row(r)
			if lower {
				for p := n - 1; p >= 0; p-- {
					if diag == NonUnit {
						row[p] = row[p] / t.At(p, p)
					}
					if v := row[p]; v != 0 {
						Axpy32R(-v, t.Row(p)[:p], row[:p])
					}
				}
			} else {
				for p := 0; p < n; p++ {
					if diag == NonUnit {
						row[p] = row[p] / t.At(p, p)
					}
					if v := row[p]; v != 0 {
						Axpy32R(-v, t.Row(p)[p+1:n], row[p+1:n])
					}
				}
			}
		}
		return
	}
	for r := 0; r < b.Rows; r++ {
		row := b.Row(r)
		if lower {
			for j := n - 1; j >= 0; j-- {
				s := row[j] - Dot32R(row[j+1:n], t.Row(j)[j+1:n])
				if diag == NonUnit {
					s /= t.At(j, j)
				}
				row[j] = s
			}
		} else {
			for j := 0; j < n; j++ {
				s := row[j] - Dot32R(row[:j], t.Row(j)[:j])
				if diag == NonUnit {
					s /= t.At(j, j)
				}
				row[j] = s
			}
		}
	}
}

// Trmm32R computes B = alpha·op(T)·B (Side == Left) or B = alpha·B·op(T)
// (Side == Right) in place on float32 storage: same dense-triangle packed
// path as Trmm32 — identical gate, materialization, and in-place Gemm32R
// call (see the aliasing contract on gemmPacked32) — so the two siblings
// stay bit-identical.
func Trmm32R(side Side, uplo Uplo, trans Transpose, diag Diag, alpha float64, t, b *mat.Matrix32) {
	n := t.Rows
	if t.Cols != n {
		panic(fmt.Sprintf("blas: Trmm32R with non-square T %dx%d", t.Rows, t.Cols))
	}
	if side == Left && b.Rows != n {
		panic(fmt.Sprintf("blas: Trmm32R Left shape mismatch T=%d B=%dx%d", n, b.Rows, b.Cols))
	}
	if side == Right && b.Cols != n {
		panic(fmt.Sprintf("blas: Trmm32R Right shape mismatch T=%d B=%dx%d", n, b.Rows, b.Cols))
	}
	if n >= trmmPackMin && (side == Left || n <= gemmNC) {
		tri, tribuf := mat.GetMatrix32(n, n)
		defer mat.PutBuf32(tribuf)
		materializeTri32R(tri, t, uplo, trans, diag)
		if side == Left {
			Gemm32R(NoTrans, NoTrans, alpha, tri, b, 0, b)
		} else {
			Gemm32R(NoTrans, NoTrans, alpha, b, tri, 0, b)
		}
		return
	}
	if n <= triBlock {
		trmmBasic32R(side, uplo, trans, diag, float32(alpha), t, b)
		return
	}
	alpha32 := float32(alpha)
	effLower := (uplo == Lower) != (trans == Trans)
	if side == Left {
		k := b.Cols
		if !effLower {
			for i0 := 0; i0 < n; i0 += triBlock {
				bs := min(triBlock, n-i0)
				bi := b.View(i0, 0, bs, k)
				rest := n - i0 - bs
				trmmBasic32R(Left, uplo, trans, diag, alpha32, t.View(i0, i0, bs, bs), bi)
				if rest > 0 {
					if trans == NoTrans {
						Gemm32R(NoTrans, NoTrans, alpha, t.View(i0, i0+bs, bs, rest), b.View(i0+bs, 0, rest, k), 1, bi)
					} else {
						Gemm32R(Trans, NoTrans, alpha, t.View(i0+bs, i0, rest, bs), b.View(i0+bs, 0, rest, k), 1, bi)
					}
				}
			}
			return
		}
		for i0 := ((n - 1) / triBlock) * triBlock; i0 >= 0; i0 -= triBlock {
			bs := min(triBlock, n-i0)
			bi := b.View(i0, 0, bs, k)
			trmmBasic32R(Left, uplo, trans, diag, alpha32, t.View(i0, i0, bs, bs), bi)
			if i0 > 0 {
				if trans == NoTrans {
					Gemm32R(NoTrans, NoTrans, alpha, t.View(i0, 0, bs, i0), b.View(0, 0, i0, k), 1, bi)
				} else {
					Gemm32R(Trans, NoTrans, alpha, t.View(0, i0, i0, bs), b.View(0, 0, i0, k), 1, bi)
				}
			}
		}
		return
	}
	m := b.Rows
	if !effLower {
		for j0 := ((n - 1) / triBlock) * triBlock; j0 >= 0; j0 -= triBlock {
			bs := min(triBlock, n-j0)
			bj := b.View(0, j0, m, bs)
			trmmBasic32R(Right, uplo, trans, diag, alpha32, t.View(j0, j0, bs, bs), bj)
			if j0 > 0 {
				if trans == NoTrans {
					Gemm32R(NoTrans, NoTrans, alpha, b.View(0, 0, m, j0), t.View(0, j0, j0, bs), 1, bj)
				} else {
					Gemm32R(NoTrans, Trans, alpha, b.View(0, 0, m, j0), t.View(j0, 0, bs, j0), 1, bj)
				}
			}
		}
		return
	}
	for j0 := 0; j0 < n; j0 += triBlock {
		bs := min(triBlock, n-j0)
		bj := b.View(0, j0, m, bs)
		rest := n - j0 - bs
		trmmBasic32R(Right, uplo, trans, diag, alpha32, t.View(j0, j0, bs, bs), bj)
		if rest > 0 {
			if trans == NoTrans {
				Gemm32R(NoTrans, NoTrans, alpha, b.View(0, j0+bs, m, rest), t.View(j0+bs, j0, rest, bs), 1, bj)
			} else {
				Gemm32R(NoTrans, Trans, alpha, b.View(0, j0+bs, m, rest), t.View(j0, j0+bs, bs, rest), 1, bj)
			}
		}
	}
}

// materializeTri32R writes op(T) densely into dst — the exact mirror of
// materializeTri32: triangle entries copied, zeros off the triangle, exact
// ones on a Unit diagonal, only the stored triangle of t read.
func materializeTri32R(dst, t *mat.Matrix32, uplo Uplo, trans Transpose, diag Diag) {
	n := t.Rows
	effLower := (uplo == Lower) != (trans == Trans)
	for i := 0; i < n; i++ {
		row := dst.Row(i)
		lo, hi := 0, i+1
		if !effLower {
			lo, hi = i, n
		}
		for j := 0; j < lo; j++ {
			row[j] = 0
		}
		for j := hi; j < n; j++ {
			row[j] = 0
		}
		if trans == Trans {
			for j := lo; j < hi; j++ {
				row[j] = t.At(j, i)
			}
		} else {
			copy(row[lo:hi], t.Row(i)[lo:hi])
		}
		if diag == Unit {
			row[i] = 1
		}
	}
}

// trmmBasic32R is the unblocked float32 triangular-multiply kernel behind
// Trmm32R.
func trmmBasic32R(side Side, uplo Uplo, trans Transpose, diag Diag, alpha float32, t, b *mat.Matrix32) {
	n := t.Rows
	lower := uplo == Lower
	if trans == Trans {
		lower = !lower
	}
	get := func(i, j int) float32 {
		if trans == Trans {
			return t.At(j, i)
		}
		return t.At(i, j)
	}
	if side == Left {
		if !lower {
			for i := 0; i < n; i++ {
				bi := b.Row(i)
				if diag == NonUnit {
					Scal32R(get(i, i), bi)
				}
				for p := i + 1; p < n; p++ {
					Axpy32R(get(i, p), b.Row(p), bi)
				}
				Scal32R(alpha, bi)
			}
		} else {
			for i := n - 1; i >= 0; i-- {
				bi := b.Row(i)
				if diag == NonUnit {
					Scal32R(get(i, i), bi)
				}
				for p := 0; p < i; p++ {
					Axpy32R(get(i, p), b.Row(p), bi)
				}
				Scal32R(alpha, bi)
			}
		}
		return
	}
	if trans == Trans {
		for r := 0; r < b.Rows; r++ {
			row := b.Row(r)
			if lower {
				for j := 0; j < n; j++ {
					s := Dot32R(row[j+1:n], t.Row(j)[j+1:n])
					if diag == NonUnit {
						s += row[j] * t.At(j, j)
					} else {
						s += row[j]
					}
					row[j] = alpha * s
				}
			} else {
				for j := n - 1; j >= 0; j-- {
					s := Dot32R(row[:j], t.Row(j)[:j])
					if diag == NonUnit {
						s += row[j] * t.At(j, j)
					} else {
						s += row[j]
					}
					row[j] = alpha * s
				}
			}
		}
		return
	}
	buf := mat.GetBuf32(n)
	defer mat.PutBuf32(buf)
	tmp := buf.Data[:n]
	for r := 0; r < b.Rows; r++ {
		row := b.Row(r)
		for j := range tmp {
			tmp[j] = 0
		}
		for p := 0; p < n; p++ {
			v := row[p]
			if v == 0 {
				continue
			}
			tr := t.Row(p)
			if !lower {
				if diag == NonUnit {
					for j := p; j < n; j++ {
						tmp[j] += v * tr[j]
					}
				} else {
					tmp[p] += v
					for j := p + 1; j < n; j++ {
						tmp[j] += v * tr[j]
					}
				}
			} else {
				if diag == NonUnit {
					for j := 0; j <= p; j++ {
						tmp[j] += v * tr[j]
					}
				} else {
					for j := 0; j < p; j++ {
						tmp[j] += v * tr[j]
					}
					tmp[p] += v
				}
			}
		}
		for j := range row {
			row[j] = alpha * tmp[j]
		}
	}
}
