package blas

import (
	"fmt"

	"luqr/internal/mat"
)

// gemmBlock is the cache tile edge used by Gemm. 64×64 float64 panels
// (32 KiB per operand pair) fit comfortably in L1/L2 on current hardware.
const gemmBlock = 64

// Gemm computes C = alpha·op(A)·op(B) + beta·C.
//
// The inner kernel uses i-k-j loop order so that both the B row and the C row
// are walked with unit stride, which is the cache-friendly order for the
// row-major layout. Operands are additionally blocked so large tiles do not
// thrash the cache.
func Gemm(transA, transB Transpose, alpha float64, a, b *mat.Matrix, beta float64, c *mat.Matrix) {
	m, ka := opShape(a, transA)
	kb, n := opShape(b, transB)
	if ka != kb || c.Rows != m || c.Cols != n {
		panic(fmt.Sprintf("blas: Gemm shape mismatch op(A)=%dx%d op(B)=%dx%d C=%dx%d", m, ka, kb, n, c.Rows, c.Cols))
	}
	if beta != 1 {
		for i := 0; i < m; i++ {
			row := c.Row(i)
			if beta == 0 {
				for j := range row {
					row[j] = 0
				}
			} else {
				for j := range row {
					row[j] *= beta
				}
			}
		}
	}
	if alpha == 0 || ka == 0 {
		return
	}
	k := ka
	if transA == NoTrans && transB == NoTrans {
		gemmNN(alpha, a, b, c, m, n, k)
		return
	}
	// The transposed variants appear only on small operands (Householder
	// applications with nb ≤ a few hundred), so a straightforward blocked
	// triple loop is sufficient.
	at := func(i, p int) float64 {
		if transA == Trans {
			return a.At(p, i)
		}
		return a.At(i, p)
	}
	if transB == NoTrans {
		// C += alpha · op(A) · B: still stream B and C rows.
		for i := 0; i < m; i++ {
			crow := c.Row(i)
			for p := 0; p < k; p++ {
				aip := alpha * at(i, p)
				if aip == 0 {
					continue
				}
				brow := b.Row(p)
				for j := 0; j < n; j++ {
					crow[j] += aip * brow[j]
				}
			}
		}
		return
	}
	// op(B) = Bᵀ: the dot-product form walks B rows with unit stride.
	for i := 0; i < m; i++ {
		crow := c.Row(i)
		for j := 0; j < n; j++ {
			brow := b.Row(j)
			s := 0.0
			if transA == NoTrans {
				arow := a.Row(i)
				for p := 0; p < k; p++ {
					s += arow[p] * brow[p]
				}
			} else {
				for p := 0; p < k; p++ {
					s += a.At(p, i) * brow[p]
				}
			}
			crow[j] += alpha * s
		}
	}
}

// gemmNN is the hot path: C += alpha·A·B with no transposes, blocked.
func gemmNN(alpha float64, a, b, c *mat.Matrix, m, n, k int) {
	for i0 := 0; i0 < m; i0 += gemmBlock {
		iMax := min(i0+gemmBlock, m)
		for p0 := 0; p0 < k; p0 += gemmBlock {
			pMax := min(p0+gemmBlock, k)
			for j0 := 0; j0 < n; j0 += gemmBlock {
				jMax := min(j0+gemmBlock, n)
				for i := i0; i < iMax; i++ {
					arow := a.Row(i)
					crow := c.Row(i)[j0:jMax]
					for p := p0; p < pMax; p++ {
						aip := alpha * arow[p]
						if aip == 0 {
							continue
						}
						brow := b.Row(p)[j0:jMax]
						for j, bv := range brow {
							crow[j] += aip * bv
						}
					}
				}
			}
		}
	}
}

func opShape(m *mat.Matrix, t Transpose) (rows, cols int) {
	if t == Trans {
		return m.Cols, m.Rows
	}
	return m.Rows, m.Cols
}

// Trsm solves op(T)·X = alpha·B (Side == Left) or X·op(T) = alpha·B
// (Side == Right) in place: B is overwritten with X. T is triangular as
// described by uplo/diag.
func Trsm(side Side, uplo Uplo, trans Transpose, diag Diag, alpha float64, t, b *mat.Matrix) {
	n := t.Rows
	if t.Cols != n {
		panic(fmt.Sprintf("blas: Trsm with non-square T %dx%d", t.Rows, t.Cols))
	}
	if side == Left && b.Rows != n {
		panic(fmt.Sprintf("blas: Trsm Left shape mismatch T=%d B=%dx%d", n, b.Rows, b.Cols))
	}
	if side == Right && b.Cols != n {
		panic(fmt.Sprintf("blas: Trsm Right shape mismatch T=%d B=%dx%d", n, b.Rows, b.Cols))
	}
	if alpha != 1 {
		for i := 0; i < b.Rows; i++ {
			Scal(alpha, b.Row(i))
		}
	}
	// Reduce the transposed cases to the non-transposed triangle on the
	// opposite side of the diagonal; element access goes through get().
	lower := uplo == Lower
	if trans == Trans {
		lower = !lower
	}
	get := func(i, j int) float64 {
		if trans == Trans {
			return t.At(j, i)
		}
		return t.At(i, j)
	}

	if side == Left {
		// Row-oriented forward/back substitution over the rows of B: each
		// step updates a whole row with unit stride.
		if lower {
			for i := 0; i < n; i++ {
				bi := b.Row(i)
				for p := 0; p < i; p++ {
					Axpy(-get(i, p), b.Row(p), bi)
				}
				if diag == NonUnit {
					Scal(1/get(i, i), bi)
				}
			}
		} else {
			for i := n - 1; i >= 0; i-- {
				bi := b.Row(i)
				for p := i + 1; p < n; p++ {
					Axpy(-get(i, p), b.Row(p), bi)
				}
				if diag == NonUnit {
					Scal(1/get(i, i), bi)
				}
			}
		}
		return
	}

	// Right side: X·op(T) = B, solved one row of B at a time. For the
	// untransposed cases the substitution is expressed with T's rows so the
	// inner loops run over contiguous memory (this is the hot "Eliminate"
	// path of the LU step: A_ik ← A_ik·U⁻¹).
	if trans == NoTrans {
		for r := 0; r < b.Rows; r++ {
			row := b.Row(r)
			if lower {
				for p := n - 1; p >= 0; p-- {
					if diag == NonUnit {
						row[p] /= t.At(p, p)
					}
					v := row[p]
					if v == 0 {
						continue
					}
					trow := t.Row(p)[:p]
					head := row[:p]
					for j, tv := range trow {
						head[j] -= v * tv
					}
				}
			} else {
				for p := 0; p < n; p++ {
					if diag == NonUnit {
						row[p] /= t.At(p, p)
					}
					v := row[p]
					if v == 0 {
						continue
					}
					trow := t.Row(p)[p+1 : n]
					tail := row[p+1 : n]
					for j, tv := range trow {
						tail[j] -= v * tv
					}
				}
			}
		}
		return
	}
	for r := 0; r < b.Rows; r++ {
		row := b.Row(r)
		if lower {
			// op(T) lower: x_j computed from last to first.
			for j := n - 1; j >= 0; j-- {
				s := row[j]
				for p := j + 1; p < n; p++ {
					s -= row[p] * get(p, j)
				}
				if diag == NonUnit {
					s /= get(j, j)
				}
				row[j] = s
			}
		} else {
			for j := 0; j < n; j++ {
				s := row[j]
				for p := 0; p < j; p++ {
					s -= row[p] * get(p, j)
				}
				if diag == NonUnit {
					s /= get(j, j)
				}
				row[j] = s
			}
		}
	}
}

// Trmm computes B = alpha·op(T)·B (Side == Left) or B = alpha·B·op(T)
// (Side == Right) in place, with T triangular.
func Trmm(side Side, uplo Uplo, trans Transpose, diag Diag, alpha float64, t, b *mat.Matrix) {
	n := t.Rows
	if t.Cols != n {
		panic(fmt.Sprintf("blas: Trmm with non-square T %dx%d", t.Rows, t.Cols))
	}
	if side == Left && b.Rows != n {
		panic(fmt.Sprintf("blas: Trmm Left shape mismatch T=%d B=%dx%d", n, b.Rows, b.Cols))
	}
	if side == Right && b.Cols != n {
		panic(fmt.Sprintf("blas: Trmm Right shape mismatch T=%d B=%dx%d", n, b.Rows, b.Cols))
	}
	lower := uplo == Lower
	if trans == Trans {
		lower = !lower
	}
	get := func(i, j int) float64 {
		if trans == Trans {
			return t.At(j, i)
		}
		return t.At(i, j)
	}
	if side == Left {
		if !lower {
			// Row i of result depends on rows i..n−1: compute top-down.
			for i := 0; i < n; i++ {
				bi := b.Row(i)
				if diag == NonUnit {
					Scal(get(i, i), bi)
				}
				for p := i + 1; p < n; p++ {
					Axpy(get(i, p), b.Row(p), bi)
				}
				Scal(alpha, bi)
			}
		} else {
			// Row i depends on rows 0..i: compute bottom-up.
			for i := n - 1; i >= 0; i-- {
				bi := b.Row(i)
				if diag == NonUnit {
					Scal(get(i, i), bi)
				}
				for p := 0; p < i; p++ {
					Axpy(get(i, p), b.Row(p), bi)
				}
				Scal(alpha, bi)
			}
		}
		return
	}
	// Right side: operate on each row independently.
	for r := 0; r < b.Rows; r++ {
		row := b.Row(r)
		if !lower {
			// Column j of the result depends on columns 0..j: right-to-left.
			for j := n - 1; j >= 0; j-- {
				s := 0.0
				if diag == NonUnit {
					s = row[j] * get(j, j)
				} else {
					s = row[j]
				}
				for p := 0; p < j; p++ {
					s += row[p] * get(p, j)
				}
				row[j] = alpha * s
			}
		} else {
			for j := 0; j < n; j++ {
				s := 0.0
				if diag == NonUnit {
					s = row[j] * get(j, j)
				} else {
					s = row[j]
				}
				for p := j + 1; p < n; p++ {
					s += row[p] * get(p, j)
				}
				row[j] = alpha * s
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
