package blas

import (
	"fmt"

	"luqr/internal/mat"
)

// Gemm computes C = alpha·op(A)·op(B) + beta·C.
//
// All four transpose variants run through the same BLIS-style packed path:
// operands are repacked into micro-panels in the exact order the register-
// blocked micro-kernel consumes (pack.go, microkernel.go), with the
// transposes absorbed by the packing. Workspace comes from the mat arena,
// so steady-state calls perform no heap allocation.
func Gemm(transA, transB Transpose, alpha float64, a, b *mat.Matrix, beta float64, c *mat.Matrix) {
	m, ka := opShape(a, transA)
	kb, n := opShape(b, transB)
	if ka != kb || c.Rows != m || c.Cols != n {
		panic(fmt.Sprintf("blas: Gemm shape mismatch op(A)=%dx%d op(B)=%dx%d C=%dx%d", m, ka, kb, n, c.Rows, c.Cols))
	}
	if beta != 1 {
		for i := 0; i < m; i++ {
			row := c.Row(i)
			if beta == 0 {
				for j := range row {
					row[j] = 0
				}
			} else {
				for j := range row {
					row[j] *= beta
				}
			}
		}
	}
	if alpha == 0 || ka == 0 || m == 0 || n == 0 {
		return
	}
	gemmPacked(transA, transB, alpha, a, b, c, m, n, ka)
}

// gemmPacked is the five-loop blocked driver around the micro-kernel. See
// pack.go for the blocking scheme.
func gemmPacked(transA, transB Transpose, alpha float64, a, b, c *mat.Matrix, m, n, k int) {
	mr, nr := gemmMR, gemmNR
	kcMax := min(k, gemmKC)
	mcMax := min(roundUp(m, mr), gemmMC)
	ncMax := min(roundUp(n, nr), gemmNC)

	bufB := mat.GetBuf(kcMax * ncMax)
	defer mat.PutBuf(bufB)
	// One buffer carries the packed A block plus the MR×NR scratch tile the
	// fringe path accumulates into.
	bufA := mat.GetBuf(mcMax*kcMax + mr*nr)
	defer mat.PutBuf(bufA)
	apack := bufA.Data[:mcMax*kcMax]
	tmp := bufA.Data[mcMax*kcMax:]

	for jc := 0; jc < n; jc += gemmNC {
		nc := min(gemmNC, n-jc)
		for pc := 0; pc < k; pc += gemmKC {
			kc := min(gemmKC, k-pc)
			packB(bufB.Data, b, transB, jc, pc, kc, nc, nr)
			for ic := 0; ic < m; ic += gemmMC {
				mc := min(gemmMC, m-ic)
				packA(apack, a, transA, alpha, ic, pc, mc, kc, mr)
				for jr := 0; jr < nc; jr += nr {
					nj := min(nr, nc-jr)
					bp := bufB.Data[jr*kc:]
					for ir := 0; ir < mc; ir += mr {
						mi := min(mr, mc-ir)
						ap := apack[ir*kc:]
						if mi == mr && nj == nr {
							off := (ic+ir)*c.Stride + jc + jr
							gemmKernel(kc, ap, bp, c.Data[off:], c.Stride)
							continue
						}
						// Fringe tile of C: compute the full padded MR×NR
						// micro-tile into scratch, add back the live part.
						for z := range tmp {
							tmp[z] = 0
						}
						gemmKernel(kc, ap, bp, tmp, nr)
						for i := 0; i < mi; i++ {
							crow := c.Data[(ic+ir+i)*c.Stride+jc+jr:][:nj]
							trow := tmp[i*nr:]
							for j := range crow {
								crow[j] += trow[j]
							}
						}
					}
				}
			}
		}
	}
}

func opShape(m *mat.Matrix, t Transpose) (rows, cols int) {
	if t == Trans {
		return m.Cols, m.Rows
	}
	return m.Rows, m.Cols
}

// triBlock is the diagonal-block order of the blocked triangular drivers
// (Trsm/Trmm). Only a triBlock-wide band of the work runs through the
// unblocked substitution loops; everything off the diagonal is a rank-
// triBlock GEMM update through the packed micro-kernel path, so a large
// triangular solve runs at a large fraction of GEMM speed.
const triBlock = 32

// Trsm solves op(T)·X = alpha·B (Side == Left) or X·op(T) = alpha·B
// (Side == Right) in place: B is overwritten with X. T is triangular as
// described by uplo/diag.
//
// The solve is blocked: the triangle is partitioned into triBlock-order
// diagonal blocks solved by forward/back substitution, and the coupling
// between blocks is applied as GEMM updates, so most flops run through the
// packed micro-kernel path.
func Trsm(side Side, uplo Uplo, trans Transpose, diag Diag, alpha float64, t, b *mat.Matrix) {
	n := t.Rows
	if t.Cols != n {
		panic(fmt.Sprintf("blas: Trsm with non-square T %dx%d", t.Rows, t.Cols))
	}
	if side == Left && b.Rows != n {
		panic(fmt.Sprintf("blas: Trsm Left shape mismatch T=%d B=%dx%d", n, b.Rows, b.Cols))
	}
	if side == Right && b.Cols != n {
		panic(fmt.Sprintf("blas: Trsm Right shape mismatch T=%d B=%dx%d", n, b.Rows, b.Cols))
	}
	if alpha != 1 {
		for i := 0; i < b.Rows; i++ {
			Scal(alpha, b.Row(i))
		}
	}
	if n <= triBlock {
		trsmBasic(side, uplo, trans, diag, t, b)
		return
	}
	// Effective orientation of op(T): a transposed triangle lives on the
	// opposite side of the diagonal.
	effLower := (uplo == Lower) != (trans == Trans)
	if side == Left {
		// Block rows of X in dependency order: forward when op(T) is lower,
		// backward when upper. Each block first subtracts the coupling with
		// the already-solved blocks (one GEMM), then solves its diagonal
		// block by substitution.
		k := b.Cols
		if effLower {
			for i0 := 0; i0 < n; i0 += triBlock {
				bs := min(triBlock, n-i0)
				bi := b.View(i0, 0, bs, k)
				if i0 > 0 {
					if trans == NoTrans {
						Gemm(NoTrans, NoTrans, -1, t.View(i0, 0, bs, i0), b.View(0, 0, i0, k), 1, bi)
					} else {
						Gemm(Trans, NoTrans, -1, t.View(0, i0, i0, bs), b.View(0, 0, i0, k), 1, bi)
					}
				}
				trsmBasic(Left, uplo, trans, diag, t.View(i0, i0, bs, bs), bi)
			}
			return
		}
		for i0 := ((n - 1) / triBlock) * triBlock; i0 >= 0; i0 -= triBlock {
			bs := min(triBlock, n-i0)
			bi := b.View(i0, 0, bs, k)
			if rest := n - i0 - bs; rest > 0 {
				if trans == NoTrans {
					Gemm(NoTrans, NoTrans, -1, t.View(i0, i0+bs, bs, rest), b.View(i0+bs, 0, rest, k), 1, bi)
				} else {
					Gemm(Trans, NoTrans, -1, t.View(i0+bs, i0, rest, bs), b.View(i0+bs, 0, rest, k), 1, bi)
				}
			}
			trsmBasic(Left, uplo, trans, diag, t.View(i0, i0, bs, bs), bi)
		}
		return
	}
	// Right side: column blocks of X in dependency order — forward when
	// op(T) is upper, backward when lower.
	m := b.Rows
	if !effLower {
		for j0 := 0; j0 < n; j0 += triBlock {
			bs := min(triBlock, n-j0)
			bj := b.View(0, j0, m, bs)
			if j0 > 0 {
				if trans == NoTrans {
					Gemm(NoTrans, NoTrans, -1, b.View(0, 0, m, j0), t.View(0, j0, j0, bs), 1, bj)
				} else {
					Gemm(NoTrans, Trans, -1, b.View(0, 0, m, j0), t.View(j0, 0, bs, j0), 1, bj)
				}
			}
			trsmBasic(Right, uplo, trans, diag, t.View(j0, j0, bs, bs), bj)
		}
		return
	}
	for j0 := ((n - 1) / triBlock) * triBlock; j0 >= 0; j0 -= triBlock {
		bs := min(triBlock, n-j0)
		bj := b.View(0, j0, m, bs)
		if rest := n - j0 - bs; rest > 0 {
			if trans == NoTrans {
				Gemm(NoTrans, NoTrans, -1, b.View(0, j0+bs, m, rest), t.View(j0+bs, j0, rest, bs), 1, bj)
			} else {
				Gemm(NoTrans, Trans, -1, b.View(0, j0+bs, m, rest), t.View(j0, j0+bs, bs, rest), 1, bj)
			}
		}
		trsmBasic(Right, uplo, trans, diag, t.View(j0, j0, bs, bs), bj)
	}
}

// trsmBasic is the unblocked substitution kernel behind Trsm: it solves one
// diagonal block (alpha already applied by the caller).
func trsmBasic(side Side, uplo Uplo, trans Transpose, diag Diag, t, b *mat.Matrix) {
	n := t.Rows
	// Reduce the transposed cases to the non-transposed triangle on the
	// opposite side of the diagonal; element access goes through get().
	lower := uplo == Lower
	if trans == Trans {
		lower = !lower
	}
	get := func(i, j int) float64 {
		if trans == Trans {
			return t.At(j, i)
		}
		return t.At(i, j)
	}

	if side == Left {
		// Row-oriented forward/back substitution over the rows of B: each
		// step updates a whole row with unit stride.
		if lower {
			for i := 0; i < n; i++ {
				bi := b.Row(i)
				for p := 0; p < i; p++ {
					Axpy(-get(i, p), b.Row(p), bi)
				}
				if diag == NonUnit {
					Scal(1/get(i, i), bi)
				}
			}
		} else {
			for i := n - 1; i >= 0; i-- {
				bi := b.Row(i)
				for p := i + 1; p < n; p++ {
					Axpy(-get(i, p), b.Row(p), bi)
				}
				if diag == NonUnit {
					Scal(1/get(i, i), bi)
				}
			}
		}
		return
	}

	// Right side: X·op(T) = B, solved one row of B at a time. For the
	// untransposed cases the substitution is expressed with T's rows so the
	// inner loops run over contiguous memory (this is the hot "Eliminate"
	// path of the LU step: A_ik ← A_ik·U⁻¹).
	if trans == NoTrans {
		for r := 0; r < b.Rows; r++ {
			row := b.Row(r)
			if lower {
				for p := n - 1; p >= 0; p-- {
					if diag == NonUnit {
						row[p] /= t.At(p, p)
					}
					if v := row[p]; v != 0 {
						Axpy(-v, t.Row(p)[:p], row[:p])
					}
				}
			} else {
				for p := 0; p < n; p++ {
					if diag == NonUnit {
						row[p] /= t.At(p, p)
					}
					if v := row[p]; v != 0 {
						Axpy(-v, t.Row(p)[p+1:n], row[p+1:n])
					}
				}
			}
		}
		return
	}
	// Transposed right side: op(T)[p, j] = t[j, p], so each x_j is a dot
	// product against the contiguous row j of t.
	for r := 0; r < b.Rows; r++ {
		row := b.Row(r)
		if lower {
			// op(T) lower ⇒ t upper: x_j from last to first.
			for j := n - 1; j >= 0; j-- {
				s := row[j] - Dot(row[j+1:n], t.Row(j)[j+1:n])
				if diag == NonUnit {
					s /= t.At(j, j)
				}
				row[j] = s
			}
		} else {
			for j := 0; j < n; j++ {
				s := row[j] - Dot(row[:j], t.Row(j)[:j])
				if diag == NonUnit {
					s /= t.At(j, j)
				}
				row[j] = s
			}
		}
	}
}

// Trmm computes B = alpha·op(T)·B (Side == Left) or B = alpha·B·op(T)
// (Side == Right) in place, with T triangular.
//
// Like Trsm, the multiply is blocked: diagonal blocks of order triBlock go
// through the unblocked kernel and the off-diagonal coupling is GEMM.
func Trmm(side Side, uplo Uplo, trans Transpose, diag Diag, alpha float64, t, b *mat.Matrix) {
	n := t.Rows
	if t.Cols != n {
		panic(fmt.Sprintf("blas: Trmm with non-square T %dx%d", t.Rows, t.Cols))
	}
	if side == Left && b.Rows != n {
		panic(fmt.Sprintf("blas: Trmm Left shape mismatch T=%d B=%dx%d", n, b.Rows, b.Cols))
	}
	if side == Right && b.Cols != n {
		panic(fmt.Sprintf("blas: Trmm Right shape mismatch T=%d B=%dx%d", n, b.Rows, b.Cols))
	}
	if n <= triBlock {
		trmmBasic(side, uplo, trans, diag, alpha, t, b)
		return
	}
	effLower := (uplo == Lower) != (trans == Trans)
	if side == Left {
		// Row block i of the result couples with the original rows on op(T)'s
		// nonzero side. Processing order keeps those rows unmodified when the
		// GEMM reads them: top-down for an upper op(T), bottom-up for lower.
		k := b.Cols
		if !effLower {
			for i0 := 0; i0 < n; i0 += triBlock {
				bs := min(triBlock, n-i0)
				bi := b.View(i0, 0, bs, k)
				rest := n - i0 - bs
				trmmBasic(Left, uplo, trans, diag, alpha, t.View(i0, i0, bs, bs), bi)
				if rest > 0 {
					if trans == NoTrans {
						Gemm(NoTrans, NoTrans, alpha, t.View(i0, i0+bs, bs, rest), b.View(i0+bs, 0, rest, k), 1, bi)
					} else {
						Gemm(Trans, NoTrans, alpha, t.View(i0+bs, i0, rest, bs), b.View(i0+bs, 0, rest, k), 1, bi)
					}
				}
			}
			return
		}
		for i0 := ((n - 1) / triBlock) * triBlock; i0 >= 0; i0 -= triBlock {
			bs := min(triBlock, n-i0)
			bi := b.View(i0, 0, bs, k)
			trmmBasic(Left, uplo, trans, diag, alpha, t.View(i0, i0, bs, bs), bi)
			if i0 > 0 {
				if trans == NoTrans {
					Gemm(NoTrans, NoTrans, alpha, t.View(i0, 0, bs, i0), b.View(0, 0, i0, k), 1, bi)
				} else {
					Gemm(Trans, NoTrans, alpha, t.View(0, i0, i0, bs), b.View(0, 0, i0, k), 1, bi)
				}
			}
		}
		return
	}
	// Right side: column block j of B·op(T) couples with the original
	// columns on op(T)'s nonzero side — right-to-left for upper, left-to-
	// right for lower.
	m := b.Rows
	if !effLower {
		for j0 := ((n - 1) / triBlock) * triBlock; j0 >= 0; j0 -= triBlock {
			bs := min(triBlock, n-j0)
			bj := b.View(0, j0, m, bs)
			trmmBasic(Right, uplo, trans, diag, alpha, t.View(j0, j0, bs, bs), bj)
			if j0 > 0 {
				if trans == NoTrans {
					Gemm(NoTrans, NoTrans, alpha, b.View(0, 0, m, j0), t.View(0, j0, j0, bs), 1, bj)
				} else {
					Gemm(NoTrans, Trans, alpha, b.View(0, 0, m, j0), t.View(j0, 0, bs, j0), 1, bj)
				}
			}
		}
		return
	}
	for j0 := 0; j0 < n; j0 += triBlock {
		bs := min(triBlock, n-j0)
		bj := b.View(0, j0, m, bs)
		rest := n - j0 - bs
		trmmBasic(Right, uplo, trans, diag, alpha, t.View(j0, j0, bs, bs), bj)
		if rest > 0 {
			if trans == NoTrans {
				Gemm(NoTrans, NoTrans, alpha, b.View(0, j0+bs, m, rest), t.View(j0+bs, j0, rest, bs), 1, bj)
			} else {
				Gemm(NoTrans, Trans, alpha, b.View(0, j0+bs, m, rest), t.View(j0, j0+bs, bs, rest), 1, bj)
			}
		}
	}
}

// trmmBasic is the unblocked triangular-multiply kernel behind Trmm.
func trmmBasic(side Side, uplo Uplo, trans Transpose, diag Diag, alpha float64, t, b *mat.Matrix) {
	n := t.Rows
	lower := uplo == Lower
	if trans == Trans {
		lower = !lower
	}
	get := func(i, j int) float64 {
		if trans == Trans {
			return t.At(j, i)
		}
		return t.At(i, j)
	}
	if side == Left {
		if !lower {
			// Row i of result depends on rows i..n−1: compute top-down.
			for i := 0; i < n; i++ {
				bi := b.Row(i)
				if diag == NonUnit {
					Scal(get(i, i), bi)
				}
				for p := i + 1; p < n; p++ {
					Axpy(get(i, p), b.Row(p), bi)
				}
				Scal(alpha, bi)
			}
		} else {
			// Row i depends on rows 0..i: compute bottom-up.
			for i := n - 1; i >= 0; i-- {
				bi := b.Row(i)
				if diag == NonUnit {
					Scal(get(i, i), bi)
				}
				for p := 0; p < i; p++ {
					Axpy(get(i, p), b.Row(p), bi)
				}
				Scal(alpha, bi)
			}
		}
		return
	}
	// Right side: operate on each row independently.
	if trans == Trans {
		// op(T)[p, j] = t[j, p]: each result entry is a dot product against
		// the contiguous row j of t. The in-place order follows the
		// dependency direction (ascending reads x[j:], descending x[:j]).
		for r := 0; r < b.Rows; r++ {
			row := b.Row(r)
			if lower {
				for j := 0; j < n; j++ {
					s := Dot(row[j+1:n], t.Row(j)[j+1:n])
					if diag == NonUnit {
						s += row[j] * t.At(j, j)
					} else {
						s += row[j]
					}
					row[j] = alpha * s
				}
			} else {
				for j := n - 1; j >= 0; j-- {
					s := Dot(row[:j], t.Row(j)[:j])
					if diag == NonUnit {
						s += row[j] * t.At(j, j)
					} else {
						s += row[j]
					}
					row[j] = alpha * s
				}
			}
		}
		return
	}
	// Untransposed: accumulate x·T into a scratch row with Axpy over t's
	// contiguous rows, then write back.
	buf := mat.GetBuf(n)
	defer mat.PutBuf(buf)
	tmp := buf.Data[:n]
	for r := 0; r < b.Rows; r++ {
		row := b.Row(r)
		for j := range tmp {
			tmp[j] = 0
		}
		for p := 0; p < n; p++ {
			v := row[p]
			if v == 0 {
				continue
			}
			if !lower {
				if diag == NonUnit {
					Axpy(v, t.Row(p)[p:n], tmp[p:n])
				} else {
					tmp[p] += v
					Axpy(v, t.Row(p)[p+1:n], tmp[p+1:n])
				}
			} else {
				if diag == NonUnit {
					Axpy(v, t.Row(p)[:p+1], tmp[:p+1])
				} else {
					Axpy(v, t.Row(p)[:p], tmp[:p])
					tmp[p] += v
				}
			}
		}
		if alpha == 1 {
			copy(row, tmp)
		} else {
			for j := range row {
				row[j] = alpha * tmp[j]
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
