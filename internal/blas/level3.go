package blas

import (
	"fmt"

	"luqr/internal/mat"
)

// Gemm computes C = alpha·op(A)·op(B) + beta·C.
//
// All four transpose variants run through the same BLIS-style packed path:
// operands are repacked into micro-panels in the exact order the register-
// blocked micro-kernel consumes (pack.go, microkernel.go), with the
// transposes absorbed by the packing. Workspace comes from the mat arena,
// so steady-state calls perform no heap allocation.
func Gemm(transA, transB Transpose, alpha float64, a, b *mat.Matrix, beta float64, c *mat.Matrix) {
	m, ka := opShape(a, transA)
	kb, n := opShape(b, transB)
	if ka != kb || c.Rows != m || c.Cols != n {
		panic(fmt.Sprintf("blas: Gemm shape mismatch op(A)=%dx%d op(B)=%dx%d C=%dx%d", m, ka, kb, n, c.Rows, c.Cols))
	}
	if beta != 1 {
		for i := 0; i < m; i++ {
			row := c.Row(i)
			if beta == 0 {
				for j := range row {
					row[j] = 0
				}
			} else {
				for j := range row {
					row[j] *= beta
				}
			}
		}
	}
	if alpha == 0 || ka == 0 || m == 0 || n == 0 {
		return
	}
	gemmPacked(transA, transB, alpha, a, b, c, m, n, ka)
}

// gemmPacked is the five-loop blocked driver around the micro-kernel. See
// pack.go for the blocking scheme.
func gemmPacked(transA, transB Transpose, alpha float64, a, b, c *mat.Matrix, m, n, k int) {
	mr, nr := gemmMR, gemmNR
	kcMax := min(k, gemmKC)
	mcMax := min(roundUp(m, mr), gemmMC)
	ncMax := min(roundUp(n, nr), gemmNC)

	bufB := mat.GetBuf(kcMax * ncMax)
	defer mat.PutBuf(bufB)
	// One buffer carries the packed A block plus the MR×NR scratch tile the
	// fringe path accumulates into.
	bufA := mat.GetBuf(mcMax*kcMax + mr*nr)
	defer mat.PutBuf(bufA)
	apack := bufA.Data[:mcMax*kcMax]
	tmp := bufA.Data[mcMax*kcMax:]

	for jc := 0; jc < n; jc += gemmNC {
		nc := min(gemmNC, n-jc)
		for pc := 0; pc < k; pc += gemmKC {
			kc := min(gemmKC, k-pc)
			packB(bufB.Data, b, transB, jc, pc, kc, nc, nr)
			for ic := 0; ic < m; ic += gemmMC {
				mc := min(gemmMC, m-ic)
				packA(apack, a, transA, alpha, ic, pc, mc, kc, mr)
				for jr := 0; jr < nc; jr += nr {
					nj := min(nr, nc-jr)
					bp := bufB.Data[jr*kc:]
					for ir := 0; ir < mc; ir += mr {
						mi := min(mr, mc-ir)
						ap := apack[ir*kc:]
						if mi == mr && nj == nr {
							off := (ic+ir)*c.Stride + jc + jr
							gemmKernel(kc, ap, bp, c.Data[off:], c.Stride)
							continue
						}
						// Fringe tile of C: compute the full padded MR×NR
						// micro-tile into scratch, add back the live part.
						for z := range tmp {
							tmp[z] = 0
						}
						gemmKernel(kc, ap, bp, tmp, nr)
						for i := 0; i < mi; i++ {
							crow := c.Data[(ic+ir+i)*c.Stride+jc+jr:][:nj]
							trow := tmp[i*nr:]
							for j := range crow {
								crow[j] += trow[j]
							}
						}
					}
				}
			}
		}
	}
}

func opShape(m *mat.Matrix, t Transpose) (rows, cols int) {
	if t == Trans {
		return m.Cols, m.Rows
	}
	return m.Rows, m.Cols
}

// Trsm solves op(T)·X = alpha·B (Side == Left) or X·op(T) = alpha·B
// (Side == Right) in place: B is overwritten with X. T is triangular as
// described by uplo/diag.
func Trsm(side Side, uplo Uplo, trans Transpose, diag Diag, alpha float64, t, b *mat.Matrix) {
	n := t.Rows
	if t.Cols != n {
		panic(fmt.Sprintf("blas: Trsm with non-square T %dx%d", t.Rows, t.Cols))
	}
	if side == Left && b.Rows != n {
		panic(fmt.Sprintf("blas: Trsm Left shape mismatch T=%d B=%dx%d", n, b.Rows, b.Cols))
	}
	if side == Right && b.Cols != n {
		panic(fmt.Sprintf("blas: Trsm Right shape mismatch T=%d B=%dx%d", n, b.Rows, b.Cols))
	}
	if alpha != 1 {
		for i := 0; i < b.Rows; i++ {
			Scal(alpha, b.Row(i))
		}
	}
	// Reduce the transposed cases to the non-transposed triangle on the
	// opposite side of the diagonal; element access goes through get().
	lower := uplo == Lower
	if trans == Trans {
		lower = !lower
	}
	get := func(i, j int) float64 {
		if trans == Trans {
			return t.At(j, i)
		}
		return t.At(i, j)
	}

	if side == Left {
		// Row-oriented forward/back substitution over the rows of B: each
		// step updates a whole row with unit stride.
		if lower {
			for i := 0; i < n; i++ {
				bi := b.Row(i)
				for p := 0; p < i; p++ {
					Axpy(-get(i, p), b.Row(p), bi)
				}
				if diag == NonUnit {
					Scal(1/get(i, i), bi)
				}
			}
		} else {
			for i := n - 1; i >= 0; i-- {
				bi := b.Row(i)
				for p := i + 1; p < n; p++ {
					Axpy(-get(i, p), b.Row(p), bi)
				}
				if diag == NonUnit {
					Scal(1/get(i, i), bi)
				}
			}
		}
		return
	}

	// Right side: X·op(T) = B, solved one row of B at a time. For the
	// untransposed cases the substitution is expressed with T's rows so the
	// inner loops run over contiguous memory (this is the hot "Eliminate"
	// path of the LU step: A_ik ← A_ik·U⁻¹).
	if trans == NoTrans {
		for r := 0; r < b.Rows; r++ {
			row := b.Row(r)
			if lower {
				for p := n - 1; p >= 0; p-- {
					if diag == NonUnit {
						row[p] /= t.At(p, p)
					}
					v := row[p]
					if v == 0 {
						continue
					}
					trow := t.Row(p)[:p]
					head := row[:p]
					for j, tv := range trow {
						head[j] -= v * tv
					}
				}
			} else {
				for p := 0; p < n; p++ {
					if diag == NonUnit {
						row[p] /= t.At(p, p)
					}
					v := row[p]
					if v == 0 {
						continue
					}
					trow := t.Row(p)[p+1 : n]
					tail := row[p+1 : n]
					for j, tv := range trow {
						tail[j] -= v * tv
					}
				}
			}
		}
		return
	}
	for r := 0; r < b.Rows; r++ {
		row := b.Row(r)
		if lower {
			// op(T) lower: x_j computed from last to first.
			for j := n - 1; j >= 0; j-- {
				s := row[j]
				for p := j + 1; p < n; p++ {
					s -= row[p] * get(p, j)
				}
				if diag == NonUnit {
					s /= get(j, j)
				}
				row[j] = s
			}
		} else {
			for j := 0; j < n; j++ {
				s := row[j]
				for p := 0; p < j; p++ {
					s -= row[p] * get(p, j)
				}
				if diag == NonUnit {
					s /= get(j, j)
				}
				row[j] = s
			}
		}
	}
}

// Trmm computes B = alpha·op(T)·B (Side == Left) or B = alpha·B·op(T)
// (Side == Right) in place, with T triangular.
func Trmm(side Side, uplo Uplo, trans Transpose, diag Diag, alpha float64, t, b *mat.Matrix) {
	n := t.Rows
	if t.Cols != n {
		panic(fmt.Sprintf("blas: Trmm with non-square T %dx%d", t.Rows, t.Cols))
	}
	if side == Left && b.Rows != n {
		panic(fmt.Sprintf("blas: Trmm Left shape mismatch T=%d B=%dx%d", n, b.Rows, b.Cols))
	}
	if side == Right && b.Cols != n {
		panic(fmt.Sprintf("blas: Trmm Right shape mismatch T=%d B=%dx%d", n, b.Rows, b.Cols))
	}
	lower := uplo == Lower
	if trans == Trans {
		lower = !lower
	}
	get := func(i, j int) float64 {
		if trans == Trans {
			return t.At(j, i)
		}
		return t.At(i, j)
	}
	if side == Left {
		if !lower {
			// Row i of result depends on rows i..n−1: compute top-down.
			for i := 0; i < n; i++ {
				bi := b.Row(i)
				if diag == NonUnit {
					Scal(get(i, i), bi)
				}
				for p := i + 1; p < n; p++ {
					Axpy(get(i, p), b.Row(p), bi)
				}
				Scal(alpha, bi)
			}
		} else {
			// Row i depends on rows 0..i: compute bottom-up.
			for i := n - 1; i >= 0; i-- {
				bi := b.Row(i)
				if diag == NonUnit {
					Scal(get(i, i), bi)
				}
				for p := 0; p < i; p++ {
					Axpy(get(i, p), b.Row(p), bi)
				}
				Scal(alpha, bi)
			}
		}
		return
	}
	// Right side: operate on each row independently.
	for r := 0; r < b.Rows; r++ {
		row := b.Row(r)
		if !lower {
			// Column j of the result depends on columns 0..j: right-to-left.
			for j := n - 1; j >= 0; j-- {
				s := 0.0
				if diag == NonUnit {
					s = row[j] * get(j, j)
				} else {
					s = row[j]
				}
				for p := 0; p < j; p++ {
					s += row[p] * get(p, j)
				}
				row[j] = alpha * s
			}
		} else {
			for j := 0; j < n; j++ {
				s := 0.0
				if diag == NonUnit {
					s = row[j] * get(j, j)
				} else {
					s = row[j]
				}
				for p := j + 1; p < n; p++ {
					s += row[p] * get(p, j)
				}
				row[j] = alpha * s
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
