//go:build race

package blas

// raceEnabled gates allocation-count assertions: the race detector's
// instrumentation allocates, so zero-alloc contracts are only checked in
// non-race runs.
const raceEnabled = true
