// AVX2+FMA GEMM micro-kernel and CPU feature probes. See microkernel.go for
// the packed-panel layout contract and microkernel_amd64.go for selection.

#include "textflag.h"

// func cpuidLeaf(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidLeaf(SB), NOSPLIT, $0-24
	MOVL eaxArg+0(FP), AX
	MOVL ecxArg+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func kernel6x8FMA(kc int, a, b, c *float64, ldc int)
//
// C[0:6, 0:8] += Ap·Bp over kc rank-1 updates. Ap is the packed MR=6 panel
// (element (i,p) at a[p*6+i]), Bp the packed NR=8 panel (element (p,j) at
// b[p*8+j]), and C has rows ldc float64s apart.
//
// Register plan: Y0..Y11 hold the 6×8 accumulator block (two YMM per row of
// the micro-tile), Y12/Y13 the current 8-wide B row, Y14 the broadcast A
// element. Each iteration of the kc loop performs 2 loads, 6 broadcasts and
// 12 FMAs (96 flops).
TEXT ·kernel6x8FMA(SB), NOSPLIT, $0-40
	MOVQ kc+0(FP), DX
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), BX
	MOVQ c+24(FP), DI
	MOVQ ldc+32(FP), R8
	SHLQ $3, R8            // C row stride in bytes

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
	VXORPD Y8, Y8, Y8
	VXORPD Y9, Y9, Y9
	VXORPD Y10, Y10, Y10
	VXORPD Y11, Y11, Y11

	TESTQ DX, DX
	JZ    done

loop:
	VMOVUPD (BX), Y12
	VMOVUPD 32(BX), Y13

	VBROADCASTSD (SI), Y14
	VFMADD231PD Y14, Y12, Y0
	VFMADD231PD Y14, Y13, Y1

	VBROADCASTSD 8(SI), Y14
	VFMADD231PD Y14, Y12, Y2
	VFMADD231PD Y14, Y13, Y3

	VBROADCASTSD 16(SI), Y14
	VFMADD231PD Y14, Y12, Y4
	VFMADD231PD Y14, Y13, Y5

	VBROADCASTSD 24(SI), Y14
	VFMADD231PD Y14, Y12, Y6
	VFMADD231PD Y14, Y13, Y7

	VBROADCASTSD 32(SI), Y14
	VFMADD231PD Y14, Y12, Y8
	VFMADD231PD Y14, Y13, Y9

	VBROADCASTSD 40(SI), Y14
	VFMADD231PD Y14, Y12, Y10
	VFMADD231PD Y14, Y13, Y11

	ADDQ $48, SI
	ADDQ $64, BX
	DECQ DX
	JNZ  loop

done:
	// C += accumulators, row by row.
	VMOVUPD (DI), Y12
	VMOVUPD 32(DI), Y13
	VADDPD  Y0, Y12, Y12
	VADDPD  Y1, Y13, Y13
	VMOVUPD Y12, (DI)
	VMOVUPD Y13, 32(DI)
	ADDQ    R8, DI

	VMOVUPD (DI), Y12
	VMOVUPD 32(DI), Y13
	VADDPD  Y2, Y12, Y12
	VADDPD  Y3, Y13, Y13
	VMOVUPD Y12, (DI)
	VMOVUPD Y13, 32(DI)
	ADDQ    R8, DI

	VMOVUPD (DI), Y12
	VMOVUPD 32(DI), Y13
	VADDPD  Y4, Y12, Y12
	VADDPD  Y5, Y13, Y13
	VMOVUPD Y12, (DI)
	VMOVUPD Y13, 32(DI)
	ADDQ    R8, DI

	VMOVUPD (DI), Y12
	VMOVUPD 32(DI), Y13
	VADDPD  Y6, Y12, Y12
	VADDPD  Y7, Y13, Y13
	VMOVUPD Y12, (DI)
	VMOVUPD Y13, 32(DI)
	ADDQ    R8, DI

	VMOVUPD (DI), Y12
	VMOVUPD 32(DI), Y13
	VADDPD  Y8, Y12, Y12
	VADDPD  Y9, Y13, Y13
	VMOVUPD Y12, (DI)
	VMOVUPD Y13, 32(DI)
	ADDQ    R8, DI

	VMOVUPD (DI), Y12
	VMOVUPD 32(DI), Y13
	VADDPD  Y10, Y12, Y12
	VADDPD  Y11, Y13, Y13
	VMOVUPD Y12, (DI)
	VMOVUPD Y13, 32(DI)

	VZEROUPPER
	RET

// func kernel6x16FMA32(kc int, a, b, c *float32, ldc int)
//
// Float32 companion of kernel6x8FMA: C[0:6, 0:16] += Ap·Bp over kc rank-1
// updates. Ap is the packed MR=6 float32 panel (element (i,p) at a[p*6+i]),
// Bp the packed NR=16 panel (element (p,j) at b[p*16+j]), and C has rows ldc
// float32s apart.
//
// Register plan mirrors the f64 kernel — Y0..Y11 the 6×16 accumulator block
// (two YMM per micro-tile row, now 8 floats each), Y12/Y13 the current
// 16-wide B row, Y14 the broadcast A element — but every FMA retires 8
// float32 lanes instead of 4 float64 lanes: 2 loads, 6 broadcasts, 12 FMAs
// and 192 flops per kc iteration.
TEXT ·kernel6x16FMA32(SB), NOSPLIT, $0-40
	MOVQ kc+0(FP), DX
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), BX
	MOVQ c+24(FP), DI
	MOVQ ldc+32(FP), R8
	SHLQ $2, R8            // C row stride in bytes

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
	VXORPS Y8, Y8, Y8
	VXORPS Y9, Y9, Y9
	VXORPS Y10, Y10, Y10
	VXORPS Y11, Y11, Y11

	TESTQ DX, DX
	JZ    done32

loop32:
	VMOVUPS (BX), Y12
	VMOVUPS 32(BX), Y13

	VBROADCASTSS (SI), Y14
	VFMADD231PS Y14, Y12, Y0
	VFMADD231PS Y14, Y13, Y1

	VBROADCASTSS 4(SI), Y14
	VFMADD231PS Y14, Y12, Y2
	VFMADD231PS Y14, Y13, Y3

	VBROADCASTSS 8(SI), Y14
	VFMADD231PS Y14, Y12, Y4
	VFMADD231PS Y14, Y13, Y5

	VBROADCASTSS 12(SI), Y14
	VFMADD231PS Y14, Y12, Y6
	VFMADD231PS Y14, Y13, Y7

	VBROADCASTSS 16(SI), Y14
	VFMADD231PS Y14, Y12, Y8
	VFMADD231PS Y14, Y13, Y9

	VBROADCASTSS 20(SI), Y14
	VFMADD231PS Y14, Y12, Y10
	VFMADD231PS Y14, Y13, Y11

	ADDQ $24, SI
	ADDQ $64, BX
	DECQ DX
	JNZ  loop32

done32:
	// C += accumulators, row by row.
	VMOVUPS (DI), Y12
	VMOVUPS 32(DI), Y13
	VADDPS  Y0, Y12, Y12
	VADDPS  Y1, Y13, Y13
	VMOVUPS Y12, (DI)
	VMOVUPS Y13, 32(DI)
	ADDQ    R8, DI

	VMOVUPS (DI), Y12
	VMOVUPS 32(DI), Y13
	VADDPS  Y2, Y12, Y12
	VADDPS  Y3, Y13, Y13
	VMOVUPS Y12, (DI)
	VMOVUPS Y13, 32(DI)
	ADDQ    R8, DI

	VMOVUPS (DI), Y12
	VMOVUPS 32(DI), Y13
	VADDPS  Y4, Y12, Y12
	VADDPS  Y5, Y13, Y13
	VMOVUPS Y12, (DI)
	VMOVUPS Y13, 32(DI)
	ADDQ    R8, DI

	VMOVUPS (DI), Y12
	VMOVUPS 32(DI), Y13
	VADDPS  Y6, Y12, Y12
	VADDPS  Y7, Y13, Y13
	VMOVUPS Y12, (DI)
	VMOVUPS Y13, 32(DI)
	ADDQ    R8, DI

	VMOVUPS (DI), Y12
	VMOVUPS 32(DI), Y13
	VADDPS  Y8, Y12, Y12
	VADDPS  Y9, Y13, Y13
	VMOVUPS Y12, (DI)
	VMOVUPS Y13, 32(DI)
	ADDQ    R8, DI

	VMOVUPS (DI), Y12
	VMOVUPS 32(DI), Y13
	VADDPS  Y10, Y12, Y12
	VADDPS  Y11, Y13, Y13
	VMOVUPS Y12, (DI)
	VMOVUPS Y13, 32(DI)

	VZEROUPPER
	RET

// func cvtRowAVX(dst *float32, src *float64, n int)
//
// dst[0:n] = float32(src[0:n]): eight conversions per iteration through two
// VCVTPD2PS (4 float64 → 4 float32 each), scalar tail.
TEXT ·cvtRowAVX(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	MOVQ CX, DX
	SHRQ $3, DX
	JZ   cvttail

cvtloop8:
	VMOVUPD    (SI), Y1
	VMOVUPD    32(SI), Y2
	VCVTPD2PSY Y1, X1
	VCVTPD2PSY Y2, X2
	VMOVUPS    X1, (DI)
	VMOVUPS    X2, 16(DI)
	ADDQ       $64, SI
	ADDQ       $32, DI
	DECQ       DX
	JNZ        cvtloop8

cvttail:
	ANDQ $7, CX
	JZ   cvtdone

cvtscalar:
	VCVTSD2SS (SI), X1, X1
	VMOVSS    X1, (DI)
	ADDQ      $8, SI
	ADDQ      $4, DI
	DECQ      CX
	JNZ       cvtscalar

cvtdone:
	VZEROUPPER
	RET

// func cvtScaleStrideAVX(dst *float32, stride int, src *float64, alpha float32, n int)
//
// dst[i*stride] = alpha·float32(src[i]) for i in [0, n): four conversions
// per VCVTPD2PS with the strided scatter done by VEXTRACTPS stores. This is
// the packA32 inner loop — src is a contiguous A row, dst a column of an
// MR-tall micro-panel.
TEXT ·cvtScaleStrideAVX(SB), NOSPLIT, $0-40
	MOVQ         dst+0(FP), DI
	MOVQ         stride+8(FP), R9
	MOVQ         src+16(FP), SI
	VBROADCASTSS alpha+24(FP), X0
	MOVQ         n+32(FP), CX
	SHLQ         $2, R9            // dst stride in bytes
	MOVQ         CX, DX
	SHRQ         $2, DX
	JZ           csstail

cssloop4:
	VMOVUPD    (SI), Y1
	VCVTPD2PSY Y1, X1
	VMULPS     X0, X1, X1
	VMOVSS     X1, (DI)
	ADDQ       R9, DI
	VEXTRACTPS $1, X1, (DI)
	ADDQ       R9, DI
	VEXTRACTPS $2, X1, (DI)
	ADDQ       R9, DI
	VEXTRACTPS $3, X1, (DI)
	ADDQ       R9, DI
	ADDQ       $32, SI
	DECQ       DX
	JNZ        cssloop4

csstail:
	ANDQ $3, CX
	JZ   cssdone

cssscalar:
	VCVTSD2SS (SI), X1, X1
	VMULSS    X0, X1, X1
	VMOVSS    X1, (DI)
	ADDQ      R9, DI
	ADDQ      $8, SI
	DECQ      CX
	JNZ       cssscalar

cssdone:
	VZEROUPPER
	RET

// func axpyFMA(alpha float64, x, y *float64, n int)
//
// y[0:n] += alpha·x[0:n], 16 elements per iteration (4 YMM FMAs with the x
// operand taken straight from memory), scalar tail.
TEXT ·axpyFMA(SB), NOSPLIT, $0-32
	VBROADCASTSD alpha+0(FP), Y0
	MOVQ x+8(FP), SI
	MOVQ y+16(FP), DI
	MOVQ n+24(FP), CX
	MOVQ CX, DX
	SHRQ $4, DX
	JZ   tail

loop16:
	VMOVUPD (DI), Y1
	VMOVUPD 32(DI), Y2
	VMOVUPD 64(DI), Y3
	VMOVUPD 96(DI), Y4
	VFMADD231PD (SI), Y0, Y1
	VFMADD231PD 32(SI), Y0, Y2
	VFMADD231PD 64(SI), Y0, Y3
	VFMADD231PD 96(SI), Y0, Y4
	VMOVUPD Y1, (DI)
	VMOVUPD Y2, 32(DI)
	VMOVUPD Y3, 64(DI)
	VMOVUPD Y4, 96(DI)
	ADDQ $128, SI
	ADDQ $128, DI
	DECQ DX
	JNZ  loop16

tail:
	ANDQ $15, CX
	JZ   axpydone

scalar:
	VMOVSD (DI), X1
	VFMADD231SD (SI), X0, X1
	VMOVSD X1, (DI)
	ADDQ $8, SI
	ADDQ $8, DI
	DECQ CX
	JNZ  scalar

axpydone:
	VZEROUPPER
	RET

// func dotFMA(x, y *float64, n int) float64
//
// Returns xᵀy with 4 independent YMM accumulators (16 elements/iteration).
TEXT ·dotFMA(SB), NOSPLIT, $0-32
	MOVQ x+0(FP), SI
	MOVQ y+8(FP), DI
	MOVQ n+16(FP), CX
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	MOVQ CX, DX
	SHRQ $4, DX
	JZ   dottail

dotloop:
	VMOVUPD (SI), Y5
	VMOVUPD 32(SI), Y6
	VMOVUPD 64(SI), Y7
	VMOVUPD 96(SI), Y8
	VFMADD231PD (DI), Y5, Y1
	VFMADD231PD 32(DI), Y6, Y2
	VFMADD231PD 64(DI), Y7, Y3
	VFMADD231PD 96(DI), Y8, Y4
	ADDQ $128, SI
	ADDQ $128, DI
	DECQ DX
	JNZ  dotloop

dottail:
	VADDPD Y2, Y1, Y1
	VADDPD Y4, Y3, Y3
	VADDPD Y3, Y1, Y1
	VEXTRACTF128 $1, Y1, X2
	VADDPD X2, X1, X1
	VHADDPD X1, X1, X1
	ANDQ $15, CX
	JZ   dotdone

dotscalar:
	VMOVSD (SI), X5
	VFMADD231SD (DI), X5, X1
	ADDQ $8, SI
	ADDQ $8, DI
	DECQ CX
	JNZ  dotscalar

dotdone:
	VMOVSD X1, ret+24(FP)
	VZEROUPPER
	RET
