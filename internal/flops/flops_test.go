package flops

import (
	"math"
	"testing"
)

// TestTableIUnits checks that the per-kernel costs in units of nb³ match
// Table I of the paper.
func TestTableIUnits(t *testing.T) {
	const nb = 240 // the paper's tile size
	unit := float64(nb) * float64(nb) * float64(nb)
	cases := []struct {
		name  string
		flops float64
		units float64
	}{
		{"GETRF", Getrf(nb, nb), 2.0 / 3},
		{"TRSM", Trsm(nb, nb), 1},
		{"GEMM", Gemm(nb, nb, nb), 2},
		{"GEQRT", Geqrt(nb, nb), 4.0 / 3},
		{"TSQRT", Tsqrt(nb), 2},
		{"TSMQR", Tsmqr(nb, nb), 4},
		{"UNMQR", Unmqr(nb, nb), 2},
		{"TTQRT", Ttqrt(nb), 2.0 / 3},
		{"TTMQR", Ttmqr(nb, nb), 2},
	}
	for _, c := range cases {
		if got := c.flops / unit; math.Abs(got-c.units) > 1e-12 {
			t.Errorf("%s: %.4f units of nb³, want %.4f", c.name, got, c.units)
		}
	}
}

func TestQRIsTwiceLU(t *testing.T) {
	for _, n := range []int{100, 1000, 20000} {
		if math.Abs(QRTotal(n)/LUTotal(n)-2) > 1e-12 {
			t.Fatal("QR total must be twice LU total")
		}
	}
}

func TestTrueTotalEndpoints(t *testing.T) {
	n := 20000
	if TrueTotal(n, 1) != LUTotal(n) {
		t.Fatal("fLU=1 must give the LU count")
	}
	if TrueTotal(n, 0) != QRTotal(n) {
		t.Fatal("fLU=0 must give the QR count")
	}
	mid := TrueTotal(n, 0.5)
	if mid <= LUTotal(n) || mid >= QRTotal(n) {
		t.Fatal("fLU=0.5 must be between the two totals")
	}
}

func TestTallPanelCounts(t *testing.T) {
	// A 4nb×nb LU panel: mn² − n³/3 with m = 4n.
	nb := 100
	want := float64(4*nb)*float64(nb)*float64(nb) - math.Pow(float64(nb), 3)/3
	if got := Getrf(4*nb, nb); got != want {
		t.Fatalf("Getrf tall = %g, want %g", got, want)
	}
	// GEQRT of the same panel: 2n²(m − n/3).
	wantQ := 2 * float64(nb) * float64(nb) * (4*float64(nb) - float64(nb)/3)
	if got := Geqrt(4*nb, nb); got != wantQ {
		t.Fatalf("Geqrt tall = %g, want %g", got, wantQ)
	}
}

func TestGFlops(t *testing.T) {
	if GFlops(2e9, 1) != 2 {
		t.Fatal("GFlops arithmetic wrong")
	}
	if GFlops(1, 0) != 0 {
		t.Fatal("GFlops must guard zero duration")
	}
}
