// Package flops is the floating-point operation model of Table I of the
// paper. It assigns every tile kernel its classical LAPACK/PLASMA operation
// count (in the ib→0 inner-blocking limit, the convention Table I uses), and
// provides the whole-factorization totals used to normalize GFLOP/s:
//
//	kernel      units of nb³          kernel      units of nb³
//	GETRF       2/3                   GEQRT       4/3
//	TRSM        1                     TSQRT       2
//	GEMM        2                     TSMQR       4
//	SWPTRSM     1                     UNMQR       2
//	                                  TTQRT       2/3
//	                                  TTMQR       2
//
// The paper's "fake" GFLOP/s always charges the LU operation count
// (2/3·N³); "true" GFLOP/s charges (2/3·f + 4/3·(1−f))·N³ for a run whose
// fraction of LU steps is f (Table II).
package flops

// Getrf returns the flop count of an LU factorization with partial pivoting
// of an m×n panel (m ≥ n): m·n² − n³/3 (+ O(mn) ignored).
func Getrf(m, n int) float64 {
	fm, fn := float64(m), float64(n)
	return fm*fn*fn - fn*fn*fn/3
}

// Trsm returns the flop count of a triangular solve of order n applied to k
// right-hand sides: n²·k.
func Trsm(n, k int) float64 {
	return float64(n) * float64(n) * float64(k)
}

// Gemm returns the flop count of an m×k by k×n multiply-accumulate: 2mnk.
func Gemm(m, n, k int) float64 {
	return 2 * float64(m) * float64(n) * float64(k)
}

// Geqrt returns the flop count of a QR factorization of an m×n tile
// (m ≥ n): 2n²(m − n/3).
func Geqrt(m, n int) float64 {
	fm, fn := float64(m), float64(n)
	return 2 * fn * fn * (fm - fn/3)
}

// Tsqrt returns the flop count of the triangle-on-square QR of two nb×nb
// tiles: 2nb³.
func Tsqrt(nb int) float64 {
	f := float64(nb)
	return 2 * f * f * f
}

// Ttqrt returns the flop count of the triangle-on-triangle QR of two nb×nb
// tiles: (2/3)nb³.
func Ttqrt(nb int) float64 {
	f := float64(nb)
	return 2 * f * f * f / 3
}

// Unmqr returns the flop count of applying a GEQRT reflector block to one
// nb×k tile: 2nb²·k per side (≈ 2nb³ for k = nb).
func Unmqr(nb, k int) float64 {
	f := float64(nb)
	return 2 * f * f * float64(k)
}

// Tsmqr returns the flop count of applying a TSQRT reflector block to a
// stacked pair of nb×k tiles: 4nb²·k (≈ 4nb³ for k = nb).
func Tsmqr(nb, k int) float64 {
	f := float64(nb)
	return 4 * f * f * float64(k)
}

// Ttmqr returns the flop count of applying a TTQRT reflector block to a
// stacked pair of nb×k tiles: 2nb²·k.
func Ttmqr(nb, k int) float64 {
	f := float64(nb)
	return 2 * f * f * float64(k)
}

// LUTotal returns 2/3·N³, the operation count of LU with partial pivoting on
// an N×N matrix — the normalization used by the paper's "fake" GFLOP/s.
func LUTotal(n int) float64 {
	f := float64(n)
	return 2 * f * f * f / 3
}

// QRTotal returns 4/3·N³, the operation count of a QR factorization.
func QRTotal(n int) float64 {
	f := float64(n)
	return 4 * f * f * f / 3
}

// TrueTotal returns the paper's Table II "true" operation count for a hybrid
// run on an N×N matrix whose fraction of LU steps is fLU:
// (2/3·fLU + 4/3·(1−fLU))·N³.
func TrueTotal(n int, fLU float64) float64 {
	f := float64(n)
	return (2.0/3.0*fLU + 4.0/3.0*(1-fLU)) * f * f * f
}

// GFlops converts a flop count and a duration in seconds to GFLOP/s.
func GFlops(flops, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return flops / seconds / 1e9
}
