package experiments

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"

	"luqr/internal/tile"
)

// smallOpts keeps the experiment tests fast while exercising a real 2-D
// grid and several panel steps.
func smallOpts() Options {
	return Options{N: 128, NB: 16, Grid: tile.NewGrid(2, 2), Reps: 1, Quiet: true}
}

func findRow(rows []Row, label string, alpha float64) *Row {
	for i := range rows {
		if rows[i].Label != label {
			continue
		}
		if math.IsNaN(alpha) && math.IsNaN(rows[i].Alpha) {
			return &rows[i]
		}
		if rows[i].Alpha == alpha {
			return &rows[i]
		}
	}
	return nil
}

func TestFig2Structure(t *testing.T) {
	var buf bytes.Buffer
	o := smallOpts()
	o.Quiet = false
	rows, err := Fig2(o, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 2") || !strings.Contains(buf.String(), "relHPL3") {
		t.Fatal("Fig2 table output missing")
	}
	// 4 baselines + 9 (max) + 9 (sum) + 8 (mumps) + 7 (random).
	if len(rows) != 4+9+9+8+7 {
		t.Fatalf("fig2 produced %d rows", len(rows))
	}
	for _, r := range rows {
		if r.SimGF <= 0 || r.SimTime <= 0 {
			t.Fatalf("row %s alpha=%g has no performance data", r.Label, r.Alpha)
		}
		if r.PctLU < 0 || r.PctLU > 100 {
			t.Fatalf("row %s: %%LU = %g", r.Label, r.PctLU)
		}
	}
	// α endpoints.
	if r := findRow(rows, "max", math.Inf(1)); r.PctLU != 100 {
		t.Fatalf("max α=∞ took %.1f%% LU steps", r.PctLU)
	}
	if r := findRow(rows, "max", 0); r.PctLU != 0 {
		t.Fatalf("max α=0 took %.1f%% LU steps", r.PctLU)
	}
	// %LU must be monotone non-decreasing in α for the norm criteria.
	for _, crit := range []string{"max", "sum", "random"} {
		prev := -1.0
		for _, alpha := range sweepAlphas(crit) {
			r := findRow(rows, crit, alpha)
			if r.PctLU < prev-1e-9 {
				t.Fatalf("%s: %%LU not monotone in α (%.1f after %.1f at α=%g)", crit, r.PctLU, prev, alpha)
			}
			prev = r.PctLU
		}
	}
	// Stability: the all-QR hybrid must match HQR's error level and be
	// comparable to LUPP on random matrices.
	hqr := findRow(rows, "hqr", math.NaN())
	alpha0 := findRow(rows, "max", 0)
	if math.Abs(alpha0.HPL3-hqr.HPL3) > 0.5*hqr.HPL3+1e-12 {
		t.Fatalf("α=0 HPL3 %g far from HQR %g", alpha0.HPL3, hqr.HPL3)
	}
	if hqr.RelHPL3 > 10 {
		t.Fatalf("HQR relative stability %g on random matrices", hqr.RelHPL3)
	}
}

func TestFig2PerformanceShape(t *testing.T) {
	rows, err := Fig2(smallOpts(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline shape: the all-LU hybrid outperforms the all-QR
	// hybrid (fake GFLOP/s), and LUPP does not beat the all-LU hybrid.
	luAll := findRow(rows, "max", math.Inf(1))
	qrAll := findRow(rows, "max", 0)
	lupp := findRow(rows, "lupp", math.NaN())
	if !(luAll.SimGF > qrAll.SimGF) {
		t.Fatalf("α=∞ (%.2f GF) not faster than α=0 (%.2f GF)", luAll.SimGF, qrAll.SimGF)
	}
	if !(luAll.SimGF > lupp.SimGF) {
		t.Fatalf("α=∞ (%.2f GF) not faster than LUPP (%.2f GF)", luAll.SimGF, lupp.SimGF)
	}
}

func TestTable2Structure(t *testing.T) {
	var buf bytes.Buffer
	o := smallOpts()
	o.Quiet = false
	rows, err := Table2(o, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 { // NoPiv, IncPiv, 8 alphas, HQR, LUPP
		t.Fatalf("table2 has %d rows", len(rows))
	}
	if !strings.Contains(buf.String(), "Table II") {
		t.Fatal("missing header")
	}
	// The α ladder must interpolate between the two endpoints in %LU.
	var pct []float64
	for _, r := range rows {
		if r.Label == "LUQR (MAX)" {
			pct = append(pct, r.PctLU)
		}
	}
	if pct[0] != 100 || pct[len(pct)-1] != 0 {
		t.Fatalf("α ladder endpoints: %v", pct)
	}
	for i := 1; i < len(pct); i++ {
		if pct[i] > pct[i-1]+1e-9 {
			t.Fatalf("%%LU must decrease along the α ladder: %v", pct)
		}
	}
	// True GFLOP/s never below fake GFLOP/s (equality when all LU).
	for _, r := range rows {
		if r.TrueGF < r.SimGF-1e-9 {
			t.Fatalf("%s: true GF %.2f below fake %.2f", r.Label, r.TrueGF, r.SimGF)
		}
	}
}

func TestFig3Structure(t *testing.T) {
	var buf bytes.Buffer
	o := smallOpts()
	o.Grid = tile.NewGrid(4, 1) // a 16×1-style tall grid, scaled down
	o.Quiet = false
	rows, err := Fig3(o, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 3") {
		t.Fatal("Fig3 table output missing")
	}
	if len(rows) != 23 { // random + 21 Table III matrices + fiedler
		t.Fatalf("fig3 has %d rows", len(rows))
	}
	byName := map[string]Fig3Row{}
	for _, r := range rows {
		byName[r.Matrix] = r
		for _, a := range Fig3Algs {
			if _, ok := r.Rel[a]; !ok {
				t.Fatalf("%s missing algorithm %s", r.Matrix, a)
			}
		}
	}
	// HQR must be stable (relative HPL3 within a couple orders of LUPP)
	// on every matrix where LUPP itself produced a finite error.
	for _, r := range rows {
		if r.Failed["hqr"] {
			t.Fatalf("HQR failed on %s", r.Matrix)
		}
	}
	// The §V-C contrast: on the GEPP-growth matrices, LU NoPiv is orders of
	// magnitude less stable than HQR (or fails outright).
	for _, m := range []string{"foster", "wilkinson"} {
		r := byName[m]
		if !r.Failed["lunopiv"] && r.Rel["lunopiv"] < 1e3*r.Rel["hqr"] {
			t.Fatalf("%s: LU NoPiv rel %g vs HQR %g — expected instability", m, r.Rel["lunopiv"], r.Rel["hqr"])
		}
		if r.Failed["max"] {
			t.Fatalf("%s: Max criterion failed", m)
		}
	}
	// The Max criterion must contain the damage: within a few orders of
	// LUPP on every special matrix (the paper reports ratios from 0.03 to
	// 58).
	for _, r := range rows {
		if r.Failed["max"] {
			t.Fatalf("Max criterion failed on %s", r.Matrix)
		}
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	var buf bytes.Buffer
	costs := Table1(48, 2, &buf)
	want := map[string]float64{
		"GETRF": 2.0 / 3, "TRSM": 1, "GEMM": 2, "GEQRT": 4.0 / 3,
		"TSQRT": 2, "TSMQR": 4, "UNMQR": 2, "TTQRT": 2.0 / 3, "TTMQR": 2,
	}
	if len(costs) != len(want) {
		t.Fatalf("table1 has %d kernels", len(costs))
	}
	for _, c := range costs {
		if math.Abs(c.ModelUnits-want[c.Kernel]) > 1e-12 {
			t.Errorf("%s: model units %.4f, want %.4f", c.Kernel, c.ModelUnits, want[c.Kernel])
		}
		if c.MeasuredMs <= 0 {
			t.Errorf("%s: no measurement", c.Kernel)
		}
	}
	if !strings.Contains(buf.String(), "Table I") {
		t.Fatal("missing header")
	}
}

func TestOverheadPositive(t *testing.T) {
	var buf bytes.Buffer
	o := smallOpts()
	o.Quiet = false
	res, err := Overhead(o, &buf)
	if err != nil {
		t.Fatal(err)
	}
	// The decision path (backup, trial LU, criterion, restore) can only add
	// time to the all-QR execution.
	if res.QROverheadPct < 0 {
		t.Fatalf("decision-path overhead %.1f%% is negative", res.QROverheadPct)
	}
	if res.Alpha0Time <= res.HQRTime {
		t.Fatalf("α=0 (%.6fs) not slower than HQR (%.6fs)", res.Alpha0Time, res.HQRTime)
	}
	if res.NoPivTime <= 0 || res.AlwaysLUTime <= 0 {
		t.Fatal("missing LU timings")
	}
	if !strings.Contains(buf.String(), "overhead") {
		t.Fatal("overhead output missing")
	}
}

func TestAblationStructure(t *testing.T) {
	var buf bytes.Buffer
	o := smallOpts()
	o.Quiet = false
	rows, err := Ablation(o, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Ablations") {
		t.Fatal("ablation table output missing")
	}
	if len(rows) != 4+2+4+3 {
		t.Fatalf("ablation produced %d rows", len(rows))
	}
	groups := map[string]int{}
	for _, r := range rows {
		groups[r.Group]++
		if r.SimTime <= 0 || r.SimGF <= 0 {
			t.Fatalf("row %s/%s missing performance data", r.Group, r.Label)
		}
	}
	if groups["tree"] != 4 || groups["scope"] != 2 || groups["variant"] != 4 || groups["panel"] != 3 {
		t.Fatalf("group counts: %v", groups)
	}
	// Scope ablation: both all-LU; tree ablation: all all-QR.
	for _, r := range rows {
		switch r.Group {
		case "scope":
			if r.PctLU != 100 {
				t.Fatalf("scope row %s: %%LU = %g", r.Label, r.PctLU)
			}
		case "tree":
			if r.PctLU != 0 {
				t.Fatalf("tree row %s: %%LU = %g", r.Label, r.PctLU)
			}
		}
	}
}

func TestTuneAlphaFindsOperatingPoint(t *testing.T) {
	var buf bytes.Buffer
	o := smallOpts()
	o.Quiet = false
	alpha, pctLU, rel, err := TuneAlpha(o, "max", 2.0, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if alpha <= 0 {
		t.Fatalf("tuned alpha = %g", alpha)
	}
	if rel > 2.0 {
		t.Fatalf("tuned point violates the budget: rel = %g", rel)
	}
	if pctLU < 0 || pctLU > 100 {
		t.Fatalf("pctLU = %g", pctLU)
	}
}

func TestCALUCompareStructure(t *testing.T) {
	var buf bytes.Buffer
	o := smallOpts()
	o.Quiet = false
	rows, err := CALUCompare(o, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "CALU") {
		t.Fatal("calu output missing")
	}
	if len(rows) != 5 {
		t.Fatalf("calu compare produced %d rows", len(rows))
	}
	byLabel := map[string]Row{}
	for _, r := range rows {
		byLabel[r.Label] = r
		if r.SimGF <= 0 {
			t.Fatalf("%s missing performance data", r.Label)
		}
	}
	// CALU must be much more stable than LU NoPiv and faster than LUPP.
	if byLabel["CALU"].RelHPL3 > byLabel["LU NoPiv"].RelHPL3/2 {
		t.Fatalf("CALU rel %g vs NoPiv %g", byLabel["CALU"].RelHPL3, byLabel["LU NoPiv"].RelHPL3)
	}
	if byLabel["CALU"].SimGF <= byLabel["LUPP"].SimGF {
		t.Fatalf("CALU %g GF not faster than LUPP %g GF", byLabel["CALU"].SimGF, byLabel["LUPP"].SimGF)
	}
}

func TestKappaSweepShape(t *testing.T) {
	var buf bytes.Buffer
	o := smallOpts()
	o.Quiet = false
	rows, err := Kappa(o, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Conditioning sweep") {
		t.Fatal("kappa output missing")
	}
	if len(rows) != 5 {
		t.Fatalf("kappa sweep produced %d rows", len(rows))
	}
	for _, r := range rows {
		// Backward stability is κ-independent for the stable algorithms.
		for _, alg := range []string{"lupp", "hqr", "luqr"} {
			if r.HPL3[alg] > 100 || math.IsNaN(r.HPL3[alg]) {
				t.Errorf("κ=%g %s: HPL3 = %g", r.Kappa, alg, r.HPL3[alg])
			}
		}
	}
	// Forward error must grow with κ (compare the endpoints, stable algs).
	first, last := rows[0], rows[len(rows)-1]
	if !(last.ForwErr["hqr"] > 100*first.ForwErr["hqr"]) {
		t.Errorf("forward error did not grow with κ: %g → %g", first.ForwErr["hqr"], last.ForwErr["hqr"])
	}
}

func TestMachineSweepShape(t *testing.T) {
	var buf bytes.Buffer
	o := smallOpts()
	o.Quiet = false
	rows, err := MachineSweep(o, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Platform sensitivity") {
		t.Fatal("machine sweep output missing")
	}
	if len(rows) != 5*4 {
		t.Fatalf("machine sweep produced %d rows", len(rows))
	}
	perf := map[string]map[string]float64{}
	for _, r := range rows {
		if perf[r.Alg] == nil {
			perf[r.Alg] = map[string]float64{}
		}
		perf[r.Alg][r.Machine] = r.SimGF
		if r.SimGF <= 0 {
			t.Fatalf("%s/%s: no performance", r.Machine, r.Alg)
		}
	}
	// A faster network can only help; a slower one can only hurt.
	for alg, m := range perf {
		if m["fast-net"] < m["dancer"]*0.99 {
			t.Errorf("%s: fast-net %.2f below dancer %.2f", alg, m["fast-net"], m["dancer"])
		}
		if m["slow-net"] > m["dancer"]*1.01 {
			t.Errorf("%s: slow-net %.2f above dancer %.2f", alg, m["slow-net"], m["dancer"])
		}
		if m["dancer-nic"] > m["dancer"]*1.01 {
			t.Errorf("%s: NIC contention sped things up (%.2f vs %.2f)", alg, m["dancer-nic"], m["dancer"])
		}
	}
	// LUPP is the most latency-sensitive algorithm (per-column exchanges).
	luppDrop := perf["lupp"]["dancer"] / perf["lupp"]["high-lat"]
	luqrDrop := perf["luqr"]["dancer"] / perf["luqr"]["high-lat"]
	if luppDrop < luqrDrop {
		t.Errorf("LUPP should suffer more from latency: drop %.2fx vs hybrid %.2fx", luppDrop, luqrDrop)
	}
}
