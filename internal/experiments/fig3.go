package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"text/tabwriter"

	"luqr/internal/core"
	"luqr/internal/matgen"
	"luqr/internal/tile"
)

// Fig3Row holds the relative stability of every algorithm on one matrix of
// the special set.
type Fig3Row struct {
	Matrix string
	LUPP   float64            // absolute HPL3 of the reference
	Rel    map[string]float64 // algorithm → HPL3 / HPL3(LUPP)
	Abs    map[string]float64 // algorithm → absolute HPL3
	PctLU  map[string]float64 // algorithm → % LU steps
	Failed map[string]bool    // breakdown / non-finite result
}

// Fig3Algs lists the algorithm columns of Figure 3, in the paper's order:
// LU NoPiv, LUQR with random choices, LUQR with the Max criterion, LUQR
// with the MUMPS criterion, and HQR.
var Fig3Algs = []string{"lunopiv", "random", "max", "mumps", "hqr"}

// Fig3 reproduces Figure 3: relative HPL3 (vs LUPP) of the five algorithm
// configurations on random matrices plus the full special-matrix set
// (Table III and the Fiedler matrix of §V-C). The paper runs N=40000 on a
// 16×1 grid with α = 50 (random), 6000 (Max) and 2.1 (MUMPS); the default
// thresholds here are rescaled for the smaller default N (Max and Sum
// thresholds track the tile-norm magnitudes, which grow with nb).
func Fig3(o Options, out io.Writer) ([]Fig3Row, error) {
	o = o.withDefaults()
	if o.Grid.P*o.Grid.Q == 16 && o.Grid.P == 4 {
		o.Grid = tile.NewGrid(16, 1) // the paper's Figure 3 grid shape
	}
	alphaMax, alphaMumps, alphaRandom := 30.0, 2.1, 50.0

	entries := append([]matgen.Entry{{Name: "random", Desc: "N(0,1)", Gen: matgen.Random}}, matgen.SpecialSet()...)
	var rows []Fig3Row
	for _, ent := range entries {
		rng := rand.New(rand.NewSource(o.Seed + 42))
		a := ent.Gen(o.N, rng)
		b := matgen.RandomVector(o.N, rng)
		s := &system{a: a, b: b}

		row := Fig3Row{Matrix: ent.Name, Rel: map[string]float64{}, Abs: map[string]float64{}, PctLU: map[string]float64{}, Failed: map[string]bool{}}
		ref, _, err := run(s, core.Config{Alg: core.LUPP, NB: o.NB, Grid: o.Grid, Workers: o.Workers}, o.Machine)
		if err != nil {
			return nil, err
		}
		row.LUPP = ref.HPL3

		for _, name := range Fig3Algs {
			cfg := core.Config{NB: o.NB, Grid: o.Grid, Workers: o.Workers, Seed: o.Seed}
			switch name {
			case "lunopiv":
				cfg.Alg = core.LUNoPiv
			case "hqr":
				cfg.Alg = core.HQR
			case "random":
				cfg.Alg = core.LUQR
				cfg.Criterion = makeCriterion("random", alphaRandom)
			case "max":
				cfg.Alg = core.LUQR
				cfg.Criterion = makeCriterion("max", alphaMax)
			case "mumps":
				cfg.Alg = core.LUQR
				cfg.Criterion = makeCriterion("mumps", alphaMumps)
			}
			rep, _, err := run(s, cfg, o.Machine)
			if err != nil {
				return nil, err
			}
			row.PctLU[name] = 100 * rep.FracLU()
			failed := rep.Breakdown || math.IsNaN(rep.HPL3) || math.IsInf(rep.HPL3, 0)
			row.Failed[name] = failed
			row.Abs[name] = rep.HPL3
			if ref.HPL3 > 0 && !failed && !math.IsInf(ref.HPL3, 0) && !math.IsNaN(ref.HPL3) {
				row.Rel[name] = rep.HPL3 / ref.HPL3
			} else {
				row.Rel[name] = math.NaN()
			}
		}
		rows = append(rows, row)
	}
	if !o.Quiet {
		printFig3(out, o, rows)
	}
	return rows, nil
}

func printFig3(out io.Writer, o Options, rows []Fig3Row) {
	fmt.Fprintf(out, "# Figure 3 — stability on special matrices, N=%d nb=%d grid=%dx%d\n", o.N, o.NB, o.Grid.P, o.Grid.Q)
	fmt.Fprintf(out, "# entries: HPL3 / HPL3(LUPP); FAIL = breakdown or non-finite result\n")
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "matrix\tLUPP(abs)")
	for _, a := range Fig3Algs {
		fmt.Fprintf(w, "\t%s", a)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.2e", r.Matrix, r.LUPP)
		for _, a := range Fig3Algs {
			switch {
			case r.Failed[a]:
				fmt.Fprint(w, "\tFAIL")
			case math.IsNaN(r.Rel[a]):
				// The LUPP reference itself failed: report the absolute
				// error of the surviving algorithm.
				fmt.Fprintf(w, "\tok(%.2g)", r.Abs[a])
			default:
				fmt.Fprintf(w, "\t%.3g", r.Rel[a])
			}
		}
		fmt.Fprintln(w)
	}
	w.Flush()
}
