package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	goruntime "runtime"
	"time"

	"luqr/internal/core"
	"luqr/internal/criteria"
	"luqr/internal/flops"
	"luqr/internal/mat"
	"luqr/internal/matgen"
	"luqr/internal/runtime"
	"luqr/internal/sim"
	"luqr/internal/tile"
	"luqr/internal/tree"

	"math/rand"
)

// SolverBenchEntry is one end-to-end factorization measurement at one worker
// count: best-of-reps wall time and the paper's fake GFLOP/s ((2/3)N³ over
// wall), plus the scheduler's dispatch accounting for that best run.
type SolverBenchEntry struct {
	Workers      int     `json:"workers"`
	WallSeconds  float64 `json:"wall_seconds"`
	GFlops       float64 `json:"gflops"`
	LaneHits     int64   `json:"lane_hits,omitempty"`
	LocalHits    int64   `json:"local_hits,omitempty"`
	Steals       int64   `json:"steals,omitempty"`
	LocalHitRate float64 `json:"local_hit_rate,omitempty"`
}

// NBSweepEntry is one end-to-end measurement at one tile order (single
// worker): the production-tile-size sweep that picks the nb default.
type NBSweepEntry struct {
	NB          int     `json:"nb"`
	Tiles       int     `json:"tiles"` // tiles per side, ⌈N/nb⌉ after padding
	WallSeconds float64 `json:"wall_seconds"`
	GFlops      float64 `json:"gflops"`
}

// SimScalingEntry is one point of the simulated worker-scaling curve: the
// measured single-worker trace replayed on a w-core machine model (per-core
// rate calibrated from the trace itself). It answers "what does this DAG do
// with w cores" on a host that cannot run w cores for real.
type SimScalingEntry struct {
	Workers         int     `json:"workers"`
	MakespanSeconds float64 `json:"makespan_seconds"`
	GFlops          float64 `json:"gflops"`
	Speedup         float64 `json:"speedup_vs_1"`
}

// MixedBenchEntry is one precision point of the mixed-precision section: one
// operator factored under one Config.Precision setting with the MAX
// criterion (auto mode needs its margins; RANDOM reports none), 1 worker,
// best of reps. Two operators are swept: the canonical random matrix (mostly
// QR steps under MAX — auto barely engages) and a diagonally dominant one
// (all-LU, GEMM-dominated — the class auto is for). HPL3 is the refined
// backward error — the accuracy side of the accuracy-vs-speed trade.
type MixedBenchEntry struct {
	Matrix      string  `json:"matrix,omitempty"`
	Precision   string  `json:"precision"`
	WallSeconds float64 `json:"wall_seconds"`
	GFlops      float64 `json:"gflops"`
	F32Steps    int     `json:"f32_steps"`
	// QRSteps counts elimination steps taken as QR. On the QR-heavy random
	// operator it is most of the steps, so the forced-f32 row's wall delta
	// against f64 is dominated by the f32 QR update kernels — the quantity
	// the packed Trmm32/Trsm32 routing and step-resident stacks target.
	QRSteps   int `json:"qr_steps,omitempty"`
	Demotions int `json:"demotions"`
	// F32Epochs counts tile promotions into float32 residency and Conversions
	// the epoch-boundary conversion passes they cost (ConvMS their wall time);
	// zero for the f64 row, where the residency store is never built.
	F32Epochs   int     `json:"f32_epochs,omitempty"`
	Conversions int     `json:"conversions,omitempty"`
	ConvMS      float64 `json:"conv_ms,omitempty"`
	RefineIters int     `json:"refine_iters"`
	HPL3        float64 `json:"hpl3"`
}

// DispatchBenchEntry is one scheduler-overhead measurement: mean nanoseconds
// per task for a flood of no-op tasks (the engine's bookkeeping cost with
// zero kernel work to hide it).
type DispatchBenchEntry struct {
	Workers   int     `json:"workers"`
	NsPerTask float64 `json:"ns_per_task"`
}

// SolverBenchReport is the schema of BENCH_solver.json. Schema 2 (the
// blocked-panel rework) measures at production sizes — N=4096, nb∈{128,192,
// 256} — instead of the schema-1 scheduler-bound N=768/nb=16 point, and adds
// a simulated DAG-scaling curve next to the measured worker sweep: when the
// host exposes fewer cores than the sweep asks for, the measured curve is
// necessarily flat, and the dependency-limited speedup comes from replaying
// one measured trace on a w-core machine model (clearly labeled as
// simulated). The schema-1 seed baseline is kept verbatim, with its own
// configuration recorded, so the before/after is visible from the file
// alone. Regenerate with
//
//	go run ./cmd/luqr-bench -sweep-workers BENCH_solver.json
type SolverBenchReport struct {
	Schema   int    `json:"schema"`
	Go       string `json:"go"`
	GoArch   string `json:"goarch"`
	MaxProcs int    `json:"maxprocs"` // the host's real parallelism
	N        int    `json:"n"`
	NB       int    `json:"nb"`
	Grid     string `json:"grid"`
	Reps     int    `json:"reps"`

	Warnings []string `json:"warnings,omitempty"`

	NBSweep []NBSweepEntry     `json:"nb_sweep"`
	Solver  []SolverBenchEntry `json:"solver"`
	Mixed   []MixedBenchEntry  `json:"mixed"`

	SimNote         string            `json:"sim_note"`
	SimCriticalPath float64           `json:"sim_critical_path_s"`
	SimParallelism  float64           `json:"sim_parallelism"` // Σbusy / critical path
	SimSolver       []SimScalingEntry `json:"solver_simulated"`

	SeedN        int                  `json:"seed_n"`
	SeedNB       int                  `json:"seed_nb"`
	SeedSolver   []SolverBenchEntry   `json:"seed_solver_baseline"`
	SeedDispatch []DispatchBenchEntry `json:"seed_dispatch_baseline"`
	Dispatch     []DispatchBenchEntry `json:"dispatch"`
}

// SolverBenchWorkers is the worker sweep of the scaling experiment, both
// measured and simulated.
var SolverBenchWorkers = []int{1, 2, 4, 8, 16}

// SolverBenchNBs is the production tile-order sweep of schema 2.
var SolverBenchNBs = []int{128, 192, 256}

// Canonical schema-2 solver-bench configuration: large enough that kernels,
// not scheduling, decide the rate (21×21 tiles at nb=192), with nb picked by
// the nb sweep itself. The schema-1 configuration (N=768, nb=16 — 48×48
// tiles, ~3.5k tasks, deliberately scheduler-bound) survives as the seed
// baseline's recorded shape.
const (
	SolverBenchDefaultN  = 4096
	SolverBenchDefaultNB = 192

	seedSolverN  = 768
	seedSolverNB = 16
)

// seedSolverBaseline records the worker sweep of the single-heap engine
// (global mutex + cond.Broadcast on every completion) measured on the
// reference host — a single-core Intel Xeon @ 2.10GHz, go1.24 — immediately
// before the work-stealing rewrite, best of 5 reps at the schema-1
// configuration (N=768, nb=16, 2×2 grid, LUQR, RANDOM α=50,
// FlatTS/Fibonacci, seed 1, tracing off). The single-heap engine had no
// dispatch counters, so only wall/GFLOP/s are recorded.
var seedSolverBaseline = []SolverBenchEntry{
	{Workers: 1, WallSeconds: 0.1926, GFlops: 1.568},
	{Workers: 2, WallSeconds: 0.1857, GFlops: 1.626},
	{Workers: 4, WallSeconds: 0.1944, GFlops: 1.554},
	{Workers: 8, WallSeconds: 0.1784, GFlops: 1.693},
	{Workers: 16, WallSeconds: 0.2049, GFlops: 1.474},
}

// seedDispatchBaseline is the same host's single-heap per-task overhead:
// 200000 no-op tasks, writes round-robin over 64 handles, best of 5.
var seedDispatchBaseline = []DispatchBenchEntry{
	{Workers: 1, NsPerTask: 432.1},
	{Workers: 2, NsPerTask: 473.7},
	{Workers: 4, NsPerTask: 466.7},
	{Workers: 8, NsPerTask: 548.2},
	{Workers: 16, NsPerTask: 474.3},
}

// dispatchTasks and dispatchHandles replicate the seed baseline's dispatch
// harness exactly; changing either invalidates the before/after comparison.
const (
	dispatchTasks   = 200000
	dispatchHandles = 64
)

// measureDispatch floods one engine with no-op writer tasks spread
// round-robin over a pool of handles (64 independent WAW chains) and returns
// the mean wall nanoseconds per task, best of reps.
func measureDispatch(workers, reps int) float64 {
	best := 0.0
	for r := 0; r < reps; r++ {
		e := runtime.NewEngine(runtime.Config{Workers: workers})
		hs := make([]*runtime.Handle, dispatchHandles)
		for i := range hs {
			hs[i] = e.NewHandle("x", 8, 0)
		}
		start := time.Now()
		for i := 0; i < dispatchTasks; i++ {
			e.Submit(runtime.TaskSpec{Name: "t", Accesses: []runtime.Access{runtime.W(hs[i%dispatchHandles])}})
		}
		e.Wait()
		ns := float64(time.Since(start).Nanoseconds()) / dispatchTasks
		e.Close()
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// SolverBenchOptions parameterizes the sweep; zero values take the schema-2
// defaults (N=4096, nb=192, best of 3, the standard worker and nb sweeps).
type SolverBenchOptions struct {
	N, NB, Reps int
	Workers     []int // measured + simulated worker sweep
	NBs         []int // tile-order sweep (run at 1 worker)
}

func (o SolverBenchOptions) withDefaults() SolverBenchOptions {
	if o.N <= 0 {
		o.N = SolverBenchDefaultN
	}
	if o.NB <= 0 {
		o.NB = SolverBenchDefaultNB
	}
	if o.Reps <= 0 {
		o.Reps = 3
	}
	if len(o.Workers) == 0 {
		o.Workers = SolverBenchWorkers
	}
	if len(o.NBs) == 0 {
		o.NBs = SolverBenchNBs
	}
	return o
}

// solverBenchConfig is the canonical hybrid run of the sweep: LUQR with the
// reproducible RANDOM criterion (α=50) on a 2×2 grid, FlatTS/Fibonacci.
func solverBenchConfig(nb, workers int, traceOn bool) core.Config {
	return core.Config{
		Alg: core.LUQR, NB: nb, Grid: tile.NewGrid(2, 2),
		Criterion: criteria.Random{Alpha: 50}, Seed: 1, Workers: workers,
		IntraTree: tree.FlatTS, InterTree: tree.Fibonacci, Trace: traceOn,
	}
}

// WriteSolverBench runs the schema-2 solver benchmark — the measured worker
// sweep and tile-order sweep at production sizes, the simulated DAG-scaling
// curve, and the dispatch microbenchmark — writes the JSON report to out,
// and prints a human-readable table to table (which may be nil).
func WriteSolverBench(o SolverBenchOptions, out, table io.Writer) error {
	o = o.withDefaults()
	if table == nil {
		table = io.Discard
	}
	rep := SolverBenchReport{
		Schema:       2,
		Go:           goruntime.Version(),
		GoArch:       goruntime.GOARCH,
		MaxProcs:     goruntime.GOMAXPROCS(0),
		N:            o.N,
		NB:           o.NB,
		Grid:         "2x2",
		Reps:         o.Reps,
		SeedN:        seedSolverN,
		SeedNB:       seedSolverNB,
		SeedSolver:   seedSolverBaseline,
		SeedDispatch: seedDispatchBaseline,
	}
	warn := func(format string, args ...any) {
		w := fmt.Sprintf(format, args...)
		rep.Warnings = append(rep.Warnings, w)
		fmt.Fprintf(table, "warning: %s\n", w)
	}
	// core.Run pads N to the next tile boundary (§II-D.2), so any nb ≤ N is
	// legal; tile counts below are the padded (ceiling) counts.
	nt := (o.N + o.NB - 1) / o.NB
	for _, w := range o.Workers {
		if nt < w {
			warn("nb=%d yields a %d×%d tile grid — fewer tile columns (%d) than workers (%d); scheduling will dominate at w=%d",
				o.NB, nt, nt, nt, w, w)
		}
	}

	rng := rand.New(rand.NewSource(1))
	a := matgen.Random(o.N, rng)
	b := matgen.RandomVector(o.N, rng)
	total := flops.LUTotal(o.N)

	// Measured worker sweep at the canonical (N, nb). On a host with fewer
	// real cores than the sweep asks for, extra workers only add contention;
	// the curve stays honest (and flat) — the simulated section below is the
	// dependency-limited view.
	fmt.Fprintf(table, "# Worker scaling (measured) — N=%d nb=%d grid=%s, LUQR RANDOM(α=50), best of %d, GOMAXPROCS=%d\n",
		o.N, o.NB, rep.Grid, o.Reps, rep.MaxProcs)
	fmt.Fprintf(table, "%-8s  %-10s  %-8s  %-10s  %-10s  %-8s  %-9s  %s\n",
		"workers", "wall(s)", "GF/s", "lane", "local", "steals", "local%", "GF/s vs seed")
	var oneWorker SolverBenchEntry
	for _, w := range o.Workers {
		var best SolverBenchEntry
		for r := 0; r < o.Reps; r++ {
			res, err := core.Run(a, b, solverBenchConfig(o.NB, w, false))
			if err != nil {
				return err
			}
			wall := res.Report.WallTime.Seconds()
			if best.WallSeconds == 0 || wall < best.WallSeconds {
				c := res.Report.Sched
				best = SolverBenchEntry{
					Workers: w, WallSeconds: wall,
					GFlops:   flops.GFlops(total, wall),
					LaneHits: c.LaneHits, LocalHits: c.LocalHits, Steals: c.Steals,
					LocalHitRate: c.LocalHitRate(),
				}
			}
		}
		rep.Solver = append(rep.Solver, best)
		if w == 1 {
			oneWorker = best
		}
		vs := "-"
		for _, s := range seedSolverBaseline {
			if s.Workers == w && s.GFlops > 0 {
				// The seed ran a different (N, nb); wall times are not
				// comparable across sizes, sustained rates are.
				vs = fmt.Sprintf("%.1f×", best.GFlops/s.GFlops)
			}
		}
		fmt.Fprintf(table, "%-8d  %-10.4f  %-8.3f  %-10d  %-10d  %-8d  %-9.1f  %s\n",
			w, best.WallSeconds, best.GFlops, best.LaneHits, best.LocalHits, best.Steals,
			100*best.LocalHitRate, vs)
	}

	// Tile-order sweep at 1 worker: which production nb wins end-to-end.
	fmt.Fprintf(table, "\n# Tile-order sweep (measured) — N=%d, 1 worker, best of %d\n", o.N, o.Reps)
	fmt.Fprintf(table, "%-6s  %-7s  %-10s  %s\n", "nb", "tiles", "wall(s)", "GF/s")
	for _, nb := range o.NBs {
		if nb > o.N {
			warn("nb sweep skips nb=%d: larger than N=%d", nb, o.N)
			continue
		}
		e := NBSweepEntry{NB: nb, Tiles: (o.N + nb - 1) / nb}
		if nb == o.NB && oneWorker.WallSeconds > 0 {
			e.WallSeconds, e.GFlops = oneWorker.WallSeconds, oneWorker.GFlops
		} else {
			bestWall := 0.0
			for r := 0; r < o.Reps; r++ {
				res, err := core.Run(a, b, solverBenchConfig(nb, 1, false))
				if err != nil {
					return err
				}
				if wall := res.Report.WallTime.Seconds(); bestWall == 0 || wall < bestWall {
					bestWall = wall
				}
			}
			e.WallSeconds, e.GFlops = bestWall, flops.GFlops(total, bestWall)
		}
		rep.NBSweep = append(rep.NBSweep, e)
		fmt.Fprintf(table, "%-6d  %-7d  %-10.4f  %.3f\n", e.NB, e.Tiles, e.WallSeconds, e.GFlops)
	}

	// Mixed-precision sweep at 1 worker: two operators under each
	// Config.Precision setting, with the MAX criterion so auto mode has the
	// margins it decides on. The random operator takes mostly QR steps at
	// α=100 (auto barely engages — honest null result); the diagonally
	// dominant one is all-LU with deep margins, so every step licenses
	// float32 and the GEMM-dominated trailing updates run resident — the
	// configuration where auto must beat f64 wall. Wall time is the speed
	// side; the refined HPL3, the f32-step/demotion/epoch counts, and the
	// refinement rounds are the accuracy side. The validator gates HPL3 on
	// the §V-A acceptance band — the "mixed run refines to tolerance" smoke
	// assertion — and rejects f32-stepping rows with unwired epoch counters.
	fmt.Fprintf(table, "\n# Mixed precision (measured) — N=%d nb=%d, MAX(α=100), 1 worker, best of %d\n", o.N, o.NB, o.Reps)
	fmt.Fprintf(table, "%-8s  %-10s  %-10s  %-8s  %-10s  %-9s  %-10s  %-7s  %-6s  %-9s  %-7s  %s\n",
		"matrix", "precision", "wall(s)", "GF/s", "f32 steps", "qr steps", "demotions", "epochs", "conv", "conv(ms)", "refine", "hpl3")
	diagRng := rand.New(rand.NewSource(1))
	for _, op := range []struct {
		name string
		a    *mat.Matrix
		b    []float64
	}{
		{"random", a, b},
		{"diagdom", matgen.DiagDominant(o.N, diagRng), matgen.RandomVector(o.N, diagRng)},
	} {
		for _, prec := range []core.Precision{core.PrecisionF64, core.PrecisionAuto, core.PrecisionF32} {
			var best *core.Report
			for r := 0; r < o.Reps; r++ {
				cfg := solverBenchConfig(o.NB, 1, false)
				cfg.Criterion = criteria.Max{Alpha: 100}
				cfg.Precision = prec
				res, err := core.Run(op.a, op.b, cfg)
				if err != nil {
					return err
				}
				if best == nil || res.Report.WallTime < best.WallTime {
					best = res.Report
				}
			}
			wall := best.WallTime.Seconds()
			e := MixedBenchEntry{
				Matrix:    op.name,
				Precision: prec.String(), WallSeconds: wall, GFlops: flops.GFlops(total, wall),
				F32Steps: best.F32Steps, QRSteps: best.QRSteps, Demotions: best.Demotions,
				F32Epochs: best.F32Epochs, Conversions: best.Conversions,
				ConvMS:      float64(best.ConvTime.Microseconds()) / 1000,
				RefineIters: best.RefineIters, HPL3: best.HPL3,
			}
			if math.IsNaN(e.HPL3) {
				// NaN is not representable in JSON; -1 is the explicit "broken"
				// marker the validator rejects.
				warn("mixed %s/%s run produced a NaN backward error", e.Matrix, e.Precision)
				e.HPL3 = -1
			}
			rep.Mixed = append(rep.Mixed, e)
			fmt.Fprintf(table, "%-8s  %-10s  %-10.4f  %-8.3f  %-10d  %-9d  %-10d  %-7d  %-6d  %-9.1f  %-7d  %.3g\n",
				e.Matrix, e.Precision, e.WallSeconds, e.GFlops, e.F32Steps, e.QRSteps, e.Demotions,
				e.F32Epochs, e.Conversions, e.ConvMS, e.RefineIters, e.HPL3)
		}
	}

	// Simulated DAG scaling: trace one single-worker run, calibrate the
	// model's per-core rate from that trace's own busy time, and replay the
	// DAG on 1..w cores of one node with communication neutralized. This is
	// the dependency-limited speedup of the real task graph, not a
	// measurement of w real cores.
	res, err := core.Run(a, b, solverBenchConfig(o.NB, 1, true))
	if err != nil {
		return err
	}
	trace := res.Report.Trace
	stats := runtime.ComputeStats(trace)
	busy := stats.TotalBusy().Seconds()
	totalFlops := 0.0
	for _, t := range trace {
		totalFlops += t.Flops
	}
	coreRate := 1.0
	if busy > 0 && totalFlops > 0 {
		coreRate = totalFlops / busy / 1e9 // calibrated GFLOP/s per core
	}
	model := sim.Machine{
		Name: "host-model", Nodes: 1, CoresPerNode: 1, CoreGFlops: coreRate,
		LatencySec: 0, BandwidthBps: 1e18, OverheadSec: 0,
	}
	cp := sim.CriticalPath(trace, coreRate)
	rep.SimCriticalPath = cp
	if cp > 0 {
		rep.SimParallelism = busy / cp
	}
	rep.SimNote = fmt.Sprintf(
		"SIMULATED: one measured %d-task single-worker trace (N=%d nb=%d) replayed on a w-core machine model at the trace's own %.2f GFLOP/s/core; shows dependency-limited scaling, not w real cores (host GOMAXPROCS=%d)",
		len(trace), o.N, o.NB, coreRate, rep.MaxProcs)
	fmt.Fprintf(table, "\n# Worker scaling (SIMULATED DAG replay) — %s\n", rep.SimNote)
	fmt.Fprintf(table, "%-8s  %-12s  %-8s  %s\n", "workers", "makespan(s)", "GF/s", "speedup")
	base := 0.0
	for _, w := range o.Workers {
		model.CoresPerNode = w
		sr := sim.Simulate(trace, model, nil)
		e := SimScalingEntry{Workers: w, MakespanSeconds: sr.Makespan}
		if sr.Makespan > 0 {
			e.GFlops = flops.GFlops(total, sr.Makespan)
		}
		if w == 1 {
			base = sr.Makespan
		}
		if base > 0 && sr.Makespan > 0 {
			e.Speedup = base / sr.Makespan
		}
		rep.SimSolver = append(rep.SimSolver, e)
		fmt.Fprintf(table, "%-8d  %-12.4f  %-8.3f  %.2f×\n", w, e.MakespanSeconds, e.GFlops, e.Speedup)
	}
	fmt.Fprintf(table, "critical path %.4fs, average parallelism %.1f (Σbusy/critical-path: the DAG's speedup ceiling)\n",
		cp, rep.SimParallelism)

	fmt.Fprintf(table, "\n# Dispatch overhead — %d no-op tasks over %d WAW chains, best of %d\n",
		dispatchTasks, dispatchHandles, o.Reps)
	fmt.Fprintf(table, "%-8s  %-12s  %s\n", "workers", "ns/task", "vs seed")
	for _, w := range o.Workers {
		ns := measureDispatch(w, o.Reps)
		rep.Dispatch = append(rep.Dispatch, DispatchBenchEntry{Workers: w, NsPerTask: ns})
		vs := "-"
		for _, s := range seedDispatchBaseline {
			if s.Workers == w && ns > 0 {
				vs = fmt.Sprintf("%+.1f%%", 100*(s.NsPerTask-ns)/s.NsPerTask)
			}
		}
		fmt.Fprintf(table, "%-8d  %-12.1f  %s\n", w, ns, vs)
	}

	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
