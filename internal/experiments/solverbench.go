package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	goruntime "runtime"
	"time"

	"luqr/internal/core"
	"luqr/internal/criteria"
	"luqr/internal/flops"
	"luqr/internal/matgen"
	"luqr/internal/runtime"
	"luqr/internal/tile"
	"luqr/internal/tree"

	"math/rand"
)

// SolverBenchEntry is one end-to-end factorization measurement at one worker
// count: best-of-reps wall time and the paper's fake GFLOP/s ((2/3)N³ over
// wall), plus the scheduler's dispatch accounting for that best run.
type SolverBenchEntry struct {
	Workers      int     `json:"workers"`
	WallSeconds  float64 `json:"wall_seconds"`
	GFlops       float64 `json:"gflops"`
	LaneHits     int64   `json:"lane_hits,omitempty"`
	LocalHits    int64   `json:"local_hits,omitempty"`
	Steals       int64   `json:"steals,omitempty"`
	LocalHitRate float64 `json:"local_hit_rate,omitempty"`
}

// DispatchBenchEntry is one scheduler-overhead measurement: mean nanoseconds
// per task for a flood of no-op tasks (the engine's bookkeeping cost with
// zero kernel work to hide it).
type DispatchBenchEntry struct {
	Workers   int     `json:"workers"`
	NsPerTask float64 `json:"ns_per_task"`
}

// SolverBenchReport is the schema of BENCH_solver.json: the committed
// single-heap seed baseline next to freshly measured work-stealing numbers,
// so the scheduler change's effect is visible from the file alone.
// Regenerate with
//
//	go run ./cmd/luqr-bench -sweep-workers BENCH_solver.json
type SolverBenchReport struct {
	Schema       int                  `json:"schema"`
	Go           string               `json:"go"`
	GoArch       string               `json:"goarch"`
	N            int                  `json:"n"`
	NB           int                  `json:"nb"`
	Grid         string               `json:"grid"`
	Reps         int                  `json:"reps"`
	SeedSolver   []SolverBenchEntry   `json:"seed_solver_baseline"`
	Solver       []SolverBenchEntry   `json:"solver"`
	SeedDispatch []DispatchBenchEntry `json:"seed_dispatch_baseline"`
	Dispatch     []DispatchBenchEntry `json:"dispatch"`
}

// SolverBenchWorkers is the worker sweep of the scaling experiment.
var SolverBenchWorkers = []int{1, 2, 4, 8, 16}

// Canonical solver-bench configuration. NB=16 on N=768 (48×48 tiles, ~3.5k
// tasks per run) is deliberately scheduler-bound: at the auto-tuned tile
// orders the kernels dominate and the engine's dispatch cost is invisible.
const (
	solverBenchN  = 768
	solverBenchNB = 16
)

// seedSolverBaseline records the worker sweep of the single-heap engine
// (global mutex + cond.Broadcast on every completion) measured on the
// reference host — a single-core Intel Xeon @ 2.10GHz, go1.24 — immediately
// before the work-stealing rewrite, best of 5 reps at the canonical
// configuration (N=768, nb=16, 2×2 grid, LUQR, RANDOM α=50, FlatTS/Fibonacci,
// seed 1, tracing off). The single-heap engine had no dispatch counters, so
// only wall/GFLOP/s are recorded.
var seedSolverBaseline = []SolverBenchEntry{
	{Workers: 1, WallSeconds: 0.1926, GFlops: 1.568},
	{Workers: 2, WallSeconds: 0.1857, GFlops: 1.626},
	{Workers: 4, WallSeconds: 0.1944, GFlops: 1.554},
	{Workers: 8, WallSeconds: 0.1784, GFlops: 1.693},
	{Workers: 16, WallSeconds: 0.2049, GFlops: 1.474},
}

// seedDispatchBaseline is the same host's single-heap per-task overhead:
// 200000 no-op tasks, writes round-robin over 64 handles, best of 5.
var seedDispatchBaseline = []DispatchBenchEntry{
	{Workers: 1, NsPerTask: 432.1},
	{Workers: 2, NsPerTask: 473.7},
	{Workers: 4, NsPerTask: 466.7},
	{Workers: 8, NsPerTask: 548.2},
	{Workers: 16, NsPerTask: 474.3},
}

// dispatchTasks and dispatchHandles replicate the seed baseline's dispatch
// harness exactly; changing either invalidates the before/after comparison.
const (
	dispatchTasks   = 200000
	dispatchHandles = 64
)

// measureDispatch floods one engine with no-op writer tasks spread
// round-robin over a pool of handles (64 independent WAW chains) and returns
// the mean wall nanoseconds per task, best of reps.
func measureDispatch(workers, reps int) float64 {
	best := 0.0
	for r := 0; r < reps; r++ {
		e := runtime.NewEngine(runtime.Config{Workers: workers})
		hs := make([]*runtime.Handle, dispatchHandles)
		for i := range hs {
			hs[i] = e.NewHandle("x", 8, 0)
		}
		start := time.Now()
		for i := 0; i < dispatchTasks; i++ {
			e.Submit(runtime.TaskSpec{Name: "t", Accesses: []runtime.Access{runtime.W(hs[i%dispatchHandles])}})
		}
		e.Wait()
		ns := float64(time.Since(start).Nanoseconds()) / dispatchTasks
		e.Close()
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// WriteSolverBench runs the worker-scaling sweep (end-to-end hybrid
// factorizations plus the dispatch microbenchmark) at the canonical
// scheduler-bound configuration, writes the JSON report (seed baseline +
// current) to out, and prints a human-readable table to table (which may be
// nil). reps is the best-of repetition count per point.
func WriteSolverBench(reps int, out, table io.Writer) error {
	rep := SolverBenchReport{
		Schema:       1,
		Go:           goruntime.Version(),
		GoArch:       goruntime.GOARCH,
		N:            solverBenchN,
		NB:           solverBenchNB,
		Grid:         "2x2",
		Reps:         reps,
		SeedSolver:   seedSolverBaseline,
		SeedDispatch: seedDispatchBaseline,
	}

	rng := rand.New(rand.NewSource(1))
	a := matgen.Random(solverBenchN, rng)
	b := matgen.RandomVector(solverBenchN, rng)

	if table != nil {
		fmt.Fprintf(table, "# Worker scaling — N=%d nb=%d grid=%s, LUQR RANDOM(α=50), best of %d\n",
			solverBenchN, solverBenchNB, rep.Grid, reps)
		fmt.Fprintf(table, "%-8s  %-10s  %-8s  %-10s  %-10s  %-8s  %-9s  %s\n",
			"workers", "wall(s)", "GF/s", "lane", "local", "steals", "local%", "vs seed")
	}
	for _, w := range SolverBenchWorkers {
		var best SolverBenchEntry
		for r := 0; r < reps; r++ {
			res, err := core.Run(a, b, core.Config{
				Alg: core.LUQR, NB: solverBenchNB, Grid: tile.NewGrid(2, 2),
				Criterion: criteria.Random{Alpha: 50}, Seed: 1, Workers: w,
				IntraTree: tree.FlatTS, InterTree: tree.Fibonacci,
			})
			if err != nil {
				return err
			}
			wall := res.Report.WallTime.Seconds()
			if best.WallSeconds == 0 || wall < best.WallSeconds {
				c := res.Report.Sched
				best = SolverBenchEntry{
					Workers: w, WallSeconds: wall,
					GFlops:   flops.GFlops(flops.LUTotal(solverBenchN), wall),
					LaneHits: c.LaneHits, LocalHits: c.LocalHits, Steals: c.Steals,
					LocalHitRate: c.LocalHitRate(),
				}
			}
		}
		rep.Solver = append(rep.Solver, best)
		if table != nil {
			vs := "-"
			for _, s := range seedSolverBaseline {
				if s.Workers == w && best.WallSeconds > 0 {
					vs = fmt.Sprintf("%+.1f%%", 100*(s.WallSeconds-best.WallSeconds)/s.WallSeconds)
				}
			}
			fmt.Fprintf(table, "%-8d  %-10.4f  %-8.3f  %-10d  %-10d  %-8d  %-9.1f  %s\n",
				w, best.WallSeconds, best.GFlops, best.LaneHits, best.LocalHits, best.Steals,
				100*best.LocalHitRate, vs)
		}
	}

	if table != nil {
		fmt.Fprintf(table, "\n# Dispatch overhead — %d no-op tasks over %d WAW chains, best of %d\n",
			dispatchTasks, dispatchHandles, reps)
		fmt.Fprintf(table, "%-8s  %-12s  %s\n", "workers", "ns/task", "vs seed")
	}
	for _, w := range SolverBenchWorkers {
		ns := measureDispatch(w, reps)
		rep.Dispatch = append(rep.Dispatch, DispatchBenchEntry{Workers: w, NsPerTask: ns})
		if table != nil {
			vs := "-"
			for _, s := range seedDispatchBaseline {
				if s.Workers == w && ns > 0 {
					vs = fmt.Sprintf("%+.1f%%", 100*(s.NsPerTask-ns)/s.NsPerTask)
				}
			}
			fmt.Fprintf(table, "%-8d  %-12.1f  %s\n", w, ns, vs)
		}
	}

	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
