package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"luqr/internal/tile"
)

// TestTimelineKernelCoverage pins the acceptance contract of the -timeline
// mode: the canonical configuration must produce measured times for all five
// Table I kernel families, and the exported JSON must be a loadable Chrome
// trace with one named track per worker.
func TestTimelineKernelCoverage(t *testing.T) {
	var traceJSON, table bytes.Buffer
	s, err := Timeline(Options{N: 320, NB: 40, Grid: tile.NewGrid(2, 2), Seed: 1, Workers: 2}, &traceJSON, &table)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"GEMM", "TRSM", "GEQRT", "TSQRT", "TTQRT"} {
		if s.Kernels[k].Count == 0 {
			t.Errorf("kernel %s missing from measured stats (got %v)", k, s.KernelNames())
		}
		if !strings.Contains(table.String(), k) {
			t.Errorf("kernel %s missing from stats table:\n%s", k, table.String())
		}
	}

	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(traceJSON.Bytes(), &doc); err != nil {
		t.Fatalf("timeline is not valid trace-event JSON: %v", err)
	}
	tracks := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Name == "thread_name" && ev.Ph == "M" {
			tracks[ev.Tid] = true
		}
	}
	for w := 0; w < s.Workers; w++ {
		if !tracks[w] {
			t.Errorf("no thread_name track for worker %d", w)
		}
	}
}

// TestBreakdownReport checks the measured-vs-simulated report runs end to
// end and covers every recorded task on both sides of the table.
func TestBreakdownReport(t *testing.T) {
	var buf bytes.Buffer
	s, err := Breakdown(Options{N: 320, NB: 40, Grid: tile.NewGrid(2, 2), Seed: 1, Workers: 2}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if s.Tasks == 0 {
		t.Fatal("no tasks measured")
	}
	out := buf.String()
	for _, want := range []string{"kernel", "measured", "simulated", "critical path", "makespan"} {
		if !strings.Contains(out, want) {
			t.Errorf("breakdown output missing %q:\n%s", want, out)
		}
	}
}
