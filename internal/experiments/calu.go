package experiments

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"

	"luqr/internal/core"
	"luqr/internal/criteria"
)

// CALUCompare runs the comparison the paper could not (§VI-D: "there is no
// publicly available implementation of parallel distributed CALU, and it
// was not possible to compare stability or performance"): CALU with
// tournament pivoting against the hybrid at both extremes, LUPP, and LU
// NoPiv, on the usual seeded random matrices.
//
// Expected shape, from the paper's qualitative discussion: CALU shares the
// LU step's flop count and embarrassingly parallel update while avoiding
// LUPP's per-column pivot latency, so it should land near LUQR(α=∞) in
// performance with LUPP-like stability; the hybrid's advantage is that it
// can also *guarantee* stability by switching to QR steps.
func CALUCompare(o Options, out io.Writer) ([]Row, error) {
	o = o.withDefaults()
	mats := randomSystems(o)

	type entry struct {
		label string
		cfg   core.Config
	}
	entries := []entry{
		{"LUPP", core.Config{Alg: core.LUPP}},
		{"CALU", core.Config{Alg: core.CALU}},
		{"LUQR (max, inf)", core.Config{Alg: core.LUQR, Criterion: criteria.Always{}}},
		{"LUQR (max, mid)", core.Config{Alg: core.LUQR, Criterion: makeCriterion("max", 500)}},
		{"LU NoPiv", core.Config{Alg: core.LUNoPiv}},
	}
	var rows []Row
	var luppHPL3 float64
	for _, e := range entries {
		row := Row{Label: e.label, Alpha: math.NaN(), N: o.N}
		for i, m := range mats {
			cfg := e.cfg
			cfg.NB, cfg.Grid, cfg.Workers, cfg.Seed = o.NB, o.Grid, o.Workers, o.Seed+int64(i)
			rep, simT, err := run(m, cfg, o.Machine)
			if err != nil {
				return nil, err
			}
			accumulate(&row, rep, simT)
		}
		if e.label == "LUPP" {
			luppHPL3 = row.HPL3 / float64(len(mats))
		}
		finish(&row, len(mats), luppHPL3, o.Machine)
		rows = append(rows, row)
	}
	if !o.Quiet {
		fmt.Fprintf(out, "# CALU vs hybrid (§VI-D; comparison the paper could not run) — N=%d nb=%d grid=%dx%d\n",
			o.N, o.NB, o.Grid.P, o.Grid.Q)
		w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "algorithm\trelHPL3\tgrowth\tGFLOP/s\t%LU\tsim time\twall(s)")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%.3g\t%.3g\t%.1f\t%.1f\t%.4f\t%.3f\n",
				r.Label, r.RelHPL3, r.Growth, r.SimGF, r.PctLU, r.SimTime, r.WallSec)
		}
		w.Flush()
	}
	return rows, nil
}
