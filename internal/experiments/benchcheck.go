package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"

	"luqr/internal/core"
)

// ValidateSolverBench parses a BENCH_solver.json and checks it against the
// schema-2 contract: the CI smoke runs this on a freshly generated file so a
// generator regression (empty section, zero rate, missing sim curve) is
// caught without gating on the absolute numbers, which are host-dependent.
func ValidateSolverBench(r io.Reader) (*SolverBenchReport, error) {
	var rep SolverBenchReport
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rep); err != nil {
		return nil, fmt.Errorf("solver bench: %w", err)
	}
	if rep.Schema != 2 {
		return nil, fmt.Errorf("solver bench: schema %d, want 2", rep.Schema)
	}
	if rep.N < rep.NB || rep.NB <= 0 {
		return nil, fmt.Errorf("solver bench: bad configuration n=%d nb=%d", rep.N, rep.NB)
	}
	if len(rep.Solver) == 0 || len(rep.NBSweep) == 0 || len(rep.SimSolver) == 0 || len(rep.Dispatch) == 0 {
		return nil, fmt.Errorf("solver bench: empty section (solver=%d nb_sweep=%d solver_simulated=%d dispatch=%d)",
			len(rep.Solver), len(rep.NBSweep), len(rep.SimSolver), len(rep.Dispatch))
	}
	for _, e := range rep.Solver {
		if e.Workers <= 0 || e.WallSeconds <= 0 || e.GFlops <= 0 {
			return nil, fmt.Errorf("solver bench: degenerate solver entry %+v", e)
		}
	}
	for _, e := range rep.NBSweep {
		if e.NB <= 0 || e.Tiles != (rep.N+e.NB-1)/e.NB || e.GFlops <= 0 {
			return nil, fmt.Errorf("solver bench: degenerate nb_sweep entry %+v", e)
		}
	}
	if rep.SimNote == "" || rep.SimCriticalPath <= 0 || rep.SimParallelism <= 0 {
		return nil, fmt.Errorf("solver bench: simulated section missing its provenance (note=%q cp=%g par=%g)",
			rep.SimNote, rep.SimCriticalPath, rep.SimParallelism)
	}
	prev := 0.0
	for i, e := range rep.SimSolver {
		if e.Workers <= 0 || e.MakespanSeconds <= 0 || e.Speedup <= 0 {
			return nil, fmt.Errorf("solver bench: degenerate simulated entry %+v", e)
		}
		// More model cores can never slow the simulated DAG down.
		if i > 0 && e.Speedup < prev-1e-9 {
			return nil, fmt.Errorf("solver bench: simulated speedup not monotone at w=%d (%.3f after %.3f)",
				e.Workers, e.Speedup, prev)
		}
		prev = e.Speedup
	}
	for _, e := range rep.Dispatch {
		if e.Workers <= 0 || e.NsPerTask <= 0 {
			return nil, fmt.Errorf("solver bench: degenerate dispatch entry %+v", e)
		}
	}
	// The mixed-precision section is the smoke's refine-to-tolerance gate:
	// every entry must carry a valid precision name and a refined backward
	// error inside the §V-A acceptance band, and the forced-f32 point must
	// show the float32 path actually engaged (steps taken or demoted — a run
	// that silently stayed f64 would pass the accuracy gate vacuously).
	if len(rep.Mixed) == 0 {
		return nil, fmt.Errorf("solver bench: missing mixed-precision section")
	}
	const mixedHPL3Tol = 16.0
	for _, e := range rep.Mixed {
		if _, err := core.ParsePrecision(e.Precision); err != nil {
			return nil, fmt.Errorf("solver bench: mixed entry %+v: %w", e, err)
		}
		if e.WallSeconds <= 0 || e.GFlops <= 0 {
			return nil, fmt.Errorf("solver bench: degenerate mixed entry %+v", e)
		}
		if e.HPL3 < 0 || e.HPL3 > mixedHPL3Tol {
			return nil, fmt.Errorf("solver bench: mixed %s run did not refine to tolerance (hpl3=%g, band %g)",
				e.Precision, e.HPL3, mixedHPL3Tol)
		}
		if e.Precision == "f32" && e.F32Steps+e.Demotions == 0 {
			return nil, fmt.Errorf("solver bench: forced-f32 entry shows no f32 activity: %+v", e)
		}
		// Residency accounting: any run that accepted float32 steps did so on
		// resident tile images, so it must have opened epochs and paid their
		// boundary conversions — a zero here means the counters came unwired.
		// The f64 row (and an auto row that never licensed f32) legitimately
		// reports zeros: the store is never built for f64-effective runs.
		if e.F32Steps > 0 && (e.F32Epochs == 0 || e.Conversions == 0) {
			return nil, fmt.Errorf("solver bench: mixed %s entry took %d f32 steps but recorded no residency epochs/conversions: %+v",
				e.Precision, e.F32Steps, e)
		}
		if e.F32Steps == 0 && e.Demotions > 0 && e.Precision == "auto" {
			return nil, fmt.Errorf("solver bench: auto entry demoted %d tasks with no accepted f32 step: %+v", e.Demotions, e)
		}
		// QR residency: a row that ran f32 QR steps did its UNMQR/TSMQR/
		// TTMQR updates on resident images through the step stacks, so it
		// must have opened epochs, and the step-resident stacking bounds the
		// conversion passes to O(tiles) — at most the rounding into plus the
		// widening out of each epoch, with headroom for trial-step
		// re-roundings. A ratio blowout means per-column restacking is back.
		if e.F32Steps > 0 && e.QRSteps > 0 {
			if e.F32Epochs == 0 {
				return nil, fmt.Errorf("solver bench: mixed %s entry took %d f32 QR steps with no resident epochs: %+v",
					e.Precision, e.QRSteps, e)
			}
			if e.Conversions > 4*e.F32Epochs {
				return nil, fmt.Errorf("solver bench: mixed %s entry converts %d times for %d epochs (> 4x) — QR stacking is re-converting per column: %+v",
					e.Precision, e.Conversions, e.F32Epochs, e)
			}
		}
	}
	return &rep, nil
}

// KernelBenchDiff prints a benchstat-style before/after comparison of two
// kernel benchmark files, aligned on (kernel, nb). When old is nil, the
// comparison is new's committed seed baseline vs. its current section — the
// in-file before/after of BENCH_kernels.json.
func KernelBenchDiff(oldR, newR io.Reader, out io.Writer) error {
	var newRep KernelBenchReport
	if err := json.NewDecoder(newR).Decode(&newRep); err != nil {
		return fmt.Errorf("kernel diff: new: %w", err)
	}
	oldEntries := newRep.Seed
	oldLabel := "seed baseline"
	if oldR != nil {
		var oldRep KernelBenchReport
		if err := json.NewDecoder(oldR).Decode(&oldRep); err != nil {
			return fmt.Errorf("kernel diff: old: %w", err)
		}
		oldEntries = oldRep.Current
		oldLabel = "old"
	}

	type key struct {
		Kernel string
		NB     int
	}
	olds := make(map[key]KernelBenchEntry, len(oldEntries))
	for _, e := range oldEntries {
		olds[key{e.Kernel, e.NB}] = e
	}
	// Keep the current file's order, kernels grouped per nb.
	entries := append([]KernelBenchEntry(nil), newRep.Current...)
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].Kernel != entries[j].Kernel {
			return entries[i].Kernel < entries[j].Kernel
		}
		return entries[i].NB < entries[j].NB
	})

	tw := tabwriter.NewWriter(out, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(tw, "kernel\tnb\t%s GF/s\tnew GF/s\tdelta\t\n", oldLabel)
	matched := 0
	for _, e := range entries {
		o, ok := olds[key{e.Kernel, e.NB}]
		if !ok {
			fmt.Fprintf(tw, "%s\t%d\t-\t%.3f\t(new)\t\n", e.Kernel, e.NB, e.GFlops)
			continue
		}
		matched++
		delta := "~"
		if o.GFlops > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(e.GFlops-o.GFlops)/o.GFlops)
		}
		fmt.Fprintf(tw, "%s\t%d\t%.3f\t%.3f\t%s\t\n", e.Kernel, e.NB, o.GFlops, e.GFlops, delta)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if matched == 0 {
		return fmt.Errorf("kernel diff: no (kernel, nb) pair appears in both files")
	}
	// Precision ratio: where the current file carries both the f64 and f32
	// rates of a kernel at the same tile order, print the f32 speedup — the
	// within-file number the mixed-precision acceptance gate reads.
	cur := make(map[key]float64, len(newRep.Current))
	for _, e := range newRep.Current {
		cur[key{e.Kernel, e.NB}] = e.GFlops
	}
	for _, e := range entries {
		base, isF32 := strings.CutSuffix(e.Kernel, ".f32")
		if !isF32 {
			continue
		}
		if f64GF, ok := cur[key{base, e.NB}]; ok && f64GF > 0 && e.GFlops > 0 {
			fmt.Fprintf(out, "%s nb=%d: %.2f× the f64 rate (%.3f vs %.3f GF/s)\n",
				e.Kernel, e.NB, e.GFlops/f64GF, e.GFlops, f64GF)
		}
	}
	return nil
}
