package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"
	"time"

	"luqr/internal/blas"
	"luqr/internal/flops"
	"luqr/internal/lapack"
	"luqr/internal/mat"
)

// KernelCost is one row of Table I: a kernel, its model cost in units of
// nb³ flops, and the measured execution time of this library's
// implementation.
type KernelCost struct {
	Kernel     string
	ModelUnits float64 // Table I: flops / nb³
	MeasuredMs float64
	// MeasuredUnits normalizes the measured time by the GEMM rate
	// (GEMM ≡ 2 units), showing how close the pure-Go kernels come to the
	// model's relative costs.
	MeasuredUnits float64
}

// Table1 reproduces Table I: the per-kernel operation counts (in units of
// nb³) together with measured kernel timings at the given tile size.
func Table1(nb int, reps int, out io.Writer) []KernelCost {
	if nb <= 0 {
		nb = 120
	}
	if reps <= 0 {
		reps = 5
	}
	rng := rand.New(rand.NewSource(99))
	randTile := func() *mat.Matrix {
		m := mat.New(nb, nb)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		return m
	}
	upperTile := func() *mat.Matrix {
		m := randTile()
		for i := 0; i < nb; i++ {
			for j := 0; j < i; j++ {
				m.Set(i, j, 0)
			}
			m.Set(i, i, m.At(i, i)+float64(nb)) // keep solves well posed
		}
		return m
	}

	unit := float64(nb) * float64(nb) * float64(nb)
	measure := func(setup func() func()) float64 {
		best := 0.0
		for r := 0; r < reps; r++ {
			f := setup()
			t0 := time.Now()
			f()
			d := time.Since(t0).Seconds()
			if best == 0 || d < best {
				best = d
			}
		}
		return best
	}

	costs := []KernelCost{
		{Kernel: "GETRF", ModelUnits: flops.Getrf(nb, nb) / unit, MeasuredMs: 1e3 * measure(func() func() {
			a := randTile()
			return func() { _, _ = lapack.Getrf(a) }
		})},
		{Kernel: "TRSM", ModelUnits: flops.Trsm(nb, nb) / unit, MeasuredMs: 1e3 * measure(func() func() {
			tt, b := upperTile(), randTile()
			return func() { blas.Trsm(blas.Right, blas.Upper, blas.NoTrans, blas.NonUnit, 1, tt, b) }
		})},
		{Kernel: "GEMM", ModelUnits: flops.Gemm(nb, nb, nb) / unit, MeasuredMs: 1e3 * measure(func() func() {
			a, b, c := randTile(), randTile(), randTile()
			return func() { blas.Gemm(blas.NoTrans, blas.NoTrans, -1, a, b, 1, c) }
		})},
		{Kernel: "GEQRT", ModelUnits: flops.Geqrt(nb, nb) / unit, MeasuredMs: 1e3 * measure(func() func() {
			a, t := randTile(), mat.New(nb, nb)
			return func() { lapack.Geqrt(a, t) }
		})},
		{Kernel: "TSQRT", ModelUnits: flops.Tsqrt(nb) / unit, MeasuredMs: 1e3 * measure(func() func() {
			r, a, t := upperTile(), randTile(), mat.New(nb, nb)
			return func() { lapack.Tsqrt(r, a, t) }
		})},
		{Kernel: "TSMQR", ModelUnits: flops.Tsmqr(nb, nb) / unit, MeasuredMs: 1e3 * measure(func() func() {
			r, a, t := upperTile(), randTile(), mat.New(nb, nb)
			lapack.Tsqrt(r, a, t)
			c1, c2 := randTile(), randTile()
			return func() { lapack.Tsmqr(blas.Trans, a, t, c1, c2) }
		})},
		{Kernel: "UNMQR", ModelUnits: flops.Unmqr(nb, nb) / unit, MeasuredMs: 1e3 * measure(func() func() {
			a, t := randTile(), mat.New(nb, nb)
			lapack.Geqrt(a, t)
			c := randTile()
			return func() { lapack.Unmqr(blas.Trans, a, t, c) }
		})},
		{Kernel: "TTQRT", ModelUnits: flops.Ttqrt(nb) / unit, MeasuredMs: 1e3 * measure(func() func() {
			r1, r2, t := upperTile(), upperTile(), mat.New(nb, nb)
			return func() { lapack.Ttqrt(r1, r2, t) }
		})},
		{Kernel: "TTMQR", ModelUnits: flops.Ttmqr(nb, nb) / unit, MeasuredMs: 1e3 * measure(func() func() {
			r1, r2, t := upperTile(), upperTile(), mat.New(nb, nb)
			lapack.Ttqrt(r1, r2, t)
			c1, c2 := randTile(), randTile()
			return func() { lapack.Ttmqr(blas.Trans, r2, t, c1, c2) }
		})},
	}

	// Normalize measured times so GEMM ≡ its model 2 units.
	var gemmMs float64
	for _, c := range costs {
		if c.Kernel == "GEMM" {
			gemmMs = c.MeasuredMs
		}
	}
	for i := range costs {
		if gemmMs > 0 {
			costs[i].MeasuredUnits = costs[i].MeasuredMs / gemmMs * 2
		}
	}

	if out != nil {
		fmt.Fprintf(out, "# Table I — kernel costs at nb=%d (units of nb³ flops; measured on this host, GEMM ≡ 2)\n", nb)
		w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "kernel\tmodel units\tmeasured ms\tmeasured units")
		for _, c := range costs {
			fmt.Fprintf(w, "%s\t%.3f\t%.2f\t%.2f\n", c.Kernel, c.ModelUnits, c.MeasuredMs, c.MeasuredUnits)
		}
		w.Flush()
	}
	return costs
}
