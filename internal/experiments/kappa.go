package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"text/tabwriter"

	"luqr/internal/core"
	"luqr/internal/matgen"
)

// KappaRow records the behaviour of the algorithms at one condition number.
type KappaRow struct {
	Kappa   float64
	HPL3    map[string]float64 // algorithm → mean HPL3
	ForwErr map[string]float64 // algorithm → mean max|x−x_true|/|x_true|
	PctLU   float64            // hybrid's LU-step share at this κ
}

// kappaAlgs are the columns of the conditioning sweep.
var kappaAlgs = []string{"lupp", "hqr", "luqr"}

// Kappa sweeps the 2-norm condition number of randsvd test matrices
// (geometric singular-value decay) and reports backward (HPL3) and forward
// error per algorithm — a conditioning study beyond the paper's random/
// special split. The backward error should stay O(1) in κ for the stable
// algorithms while the forward error grows like κ·ε, and the hybrid's
// criterion should keep accepting LU steps (conditioning of the whole
// matrix is not what the per-panel test measures).
func Kappa(o Options, out io.Writer) ([]KappaRow, error) {
	o = o.withDefaults()
	kappas := []float64{1e2, 1e5, 1e8, 1e11, 1e14}
	var rows []KappaRow
	for _, kappa := range kappas {
		row := KappaRow{Kappa: kappa, HPL3: map[string]float64{}, ForwErr: map[string]float64{}}
		for rep := 0; rep < o.Reps; rep++ {
			rng := rand.New(rand.NewSource(o.Seed + int64(rep)))
			a := matgen.RandSVD(o.N, kappa, matgen.SigmaGeometric, rng)
			xTrue := matgen.RandomVector(o.N, rng)
			// b = A·x_true so the forward error is measurable.
			b := make([]float64, o.N)
			for i := 0; i < o.N; i++ {
				s := 0.0
				row := a.Row(i)
				for j, v := range row {
					s += v * xTrue[j]
				}
				b[i] = s
			}
			for _, name := range kappaAlgs {
				cfg := core.Config{NB: o.NB, Grid: o.Grid, Workers: o.Workers, Seed: o.Seed}
				switch name {
				case "lupp":
					cfg.Alg = core.LUPP
				case "hqr":
					cfg.Alg = core.HQR
				case "luqr":
					cfg.Alg = core.LUQR
					cfg.Criterion = makeCriterion("max", 500)
				}
				res, err := core.Run(a, b, cfg)
				if err != nil {
					return nil, err
				}
				row.HPL3[name] += res.Report.HPL3 / float64(o.Reps)
				fe := 0.0
				for i := range xTrue {
					if d := math.Abs(res.X[i]-xTrue[i]) / (1 + math.Abs(xTrue[i])); d > fe {
						fe = d
					}
				}
				row.ForwErr[name] += fe / float64(o.Reps)
				if name == "luqr" {
					row.PctLU += 100 * res.Report.FracLU() / float64(o.Reps)
				}
			}
		}
		rows = append(rows, row)
	}
	if !o.Quiet {
		fmt.Fprintf(out, "# Conditioning sweep — randsvd (geometric σ), N=%d nb=%d grid=%dx%d, %d rep(s)\n",
			o.N, o.NB, o.Grid.P, o.Grid.Q, o.Reps)
		w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "kappa\tLUPP HPL3\tHQR HPL3\tLUQR HPL3\tLUPP fwd\tHQR fwd\tLUQR fwd\tLUQR %LU")
		for _, r := range rows {
			fmt.Fprintf(w, "%.0e\t%.3g\t%.3g\t%.3g\t%.2e\t%.2e\t%.2e\t%.1f\n",
				r.Kappa, r.HPL3["lupp"], r.HPL3["hqr"], r.HPL3["luqr"],
				r.ForwErr["lupp"], r.ForwErr["hqr"], r.ForwErr["luqr"], r.PctLU)
		}
		w.Flush()
	}
	return rows, nil
}
