package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"luqr/internal/core"
	"luqr/internal/criteria"
)

// OverheadResult quantifies the §V-B decision-path overhead: the simulated
// time of the hybrid algorithm with α = 0 (all QR steps, but still paying
// backup / trial LU / criterion / restore on the critical path) relative to
// plain HQR, plus the same comparison at α = ∞ against LU NoPiv with
// domain pivoting.
type OverheadResult struct {
	HQRTime, Alpha0Time     float64 // simulated seconds
	QROverheadPct           float64 // (α0 − HQR)/HQR · 100, paper: ≈10–12.7%
	AlwaysLUTime, NoPivTime float64
	KernelTimeAlpha0        map[string]float64
}

// Overhead reproduces the §V-B overhead decomposition.
func Overhead(o Options, out io.Writer) (*OverheadResult, error) {
	o = o.withDefaults()
	mats := randomSystems(o)
	res := &OverheadResult{}
	for i, m := range mats {
		base := core.Config{NB: o.NB, Grid: o.Grid, Workers: o.Workers, Seed: o.Seed + int64(i)}

		cfg := base
		cfg.Alg = core.HQR
		_, tHQR, err := run(m, cfg, o.Machine)
		if err != nil {
			return nil, err
		}

		cfg = base
		cfg.Alg = core.LUQR
		cfg.Criterion = criteria.Never{}
		rep0, t0, err := run(m, cfg, o.Machine)
		if err != nil {
			return nil, err
		}
		_ = rep0

		cfg = base
		cfg.Alg = core.LUQR
		cfg.Criterion = criteria.Always{}
		_, tLU, err := run(m, cfg, o.Machine)
		if err != nil {
			return nil, err
		}

		cfg = base
		cfg.Alg = core.LUNoPiv
		_, tNP, err := run(m, cfg, o.Machine)
		if err != nil {
			return nil, err
		}

		res.HQRTime += tHQR
		res.Alpha0Time += t0
		res.AlwaysLUTime += tLU
		res.NoPivTime += tNP
	}
	f := 1 / float64(len(mats))
	res.HQRTime *= f
	res.Alpha0Time *= f
	res.AlwaysLUTime *= f
	res.NoPivTime *= f
	if res.HQRTime > 0 {
		res.QROverheadPct = 100 * (res.Alpha0Time - res.HQRTime) / res.HQRTime
	}
	if out != nil && !o.Quiet {
		fmt.Fprintf(out, "# Decision-path overhead (§V-B) — N=%d nb=%d grid=%dx%d, simulated on %s\n", o.N, o.NB, o.Grid.P, o.Grid.Q, o.Machine.Name)
		w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "configuration\tsim time (s)")
		fmt.Fprintf(w, "HQR\t%.4f\n", res.HQRTime)
		fmt.Fprintf(w, "LUQR alpha=0 (all QR + decision path)\t%.4f\n", res.Alpha0Time)
		fmt.Fprintf(w, "LUQR alpha=inf (all LU + decision path)\t%.4f\n", res.AlwaysLUTime)
		fmt.Fprintf(w, "LU NoPiv\t%.4f\n", res.NoPivTime)
		w.Flush()
		fmt.Fprintf(out, "decision-path overhead vs HQR: %.1f%% (paper: ≈10–12.7%%)\n", res.QROverheadPct)
	}
	return res, nil
}
