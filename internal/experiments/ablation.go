package experiments

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"

	"luqr/internal/core"
	"luqr/internal/criteria"
	"luqr/internal/tree"
)

// AblationRow is one configuration of the design-choice study.
type AblationRow struct {
	Group   string // which knob is being varied
	Label   string
	HPL3    float64
	Growth  float64
	PctLU   float64
	SimTime float64
	SimGF   float64
	WallSec float64
}

// Ablation measures the design choices DESIGN.md calls out, on seeded
// random matrices:
//
//   - QR reduction-tree family (intra/inter), on pure HQR — trades kernel
//     count (TS trees) against critical path (TT trees), §II-B;
//   - LU pivot scope (diagonal tile vs diagonal domain) at α = ∞ — the
//     §V-B stability discussion;
//   - LU-step variant (A1/A2/B1/B2) under the Max criterion — §II-C.
func Ablation(o Options, out io.Writer) ([]AblationRow, error) {
	o = o.withDefaults()
	mats := randomSystems(o)
	var rows []AblationRow

	measure := func(group, label string, cfg core.Config) error {
		row := AblationRow{Group: group, Label: label}
		for i, m := range mats {
			cfg.NB, cfg.Grid, cfg.Workers = o.NB, o.Grid, o.Workers
			cfg.Seed = o.Seed + int64(i)
			rep, simT, err := run(m, cfg, o.Machine)
			if err != nil {
				return err
			}
			row.HPL3 += rep.HPL3
			row.Growth += rep.Growth
			row.PctLU += 100 * rep.FracLU()
			row.SimTime += simT
			row.SimGF += rep.FakeGFlops(simT)
			row.WallSec += rep.WallTime.Seconds()
		}
		f := 1 / float64(len(mats))
		row.HPL3 *= f
		row.Growth *= f
		row.PctLU *= f
		row.SimTime *= f
		row.SimGF *= f
		row.WallSec *= f
		rows = append(rows, row)
		return nil
	}

	// 1. Reduction trees.
	for _, tr := range []struct {
		label        string
		intra, inter tree.Tree
	}{
		{"flatts/flattt", tree.FlatTS, tree.FlatTT},
		{"binary/binary", tree.Binary, tree.Binary},
		{"greedy/fibonacci", tree.Greedy, tree.Fibonacci},
		{"fibonacci/fibonacci", tree.Fibonacci, tree.Fibonacci},
	} {
		if err := measure("tree", tr.label, core.Config{Alg: core.HQR, IntraTree: tr.intra, InterTree: tr.inter}); err != nil {
			return nil, err
		}
	}

	// 2. Pivot scope at α = ∞ (the §V-B diagonal-tile vs domain comparison).
	for _, sc := range []struct {
		label string
		scope core.Scope
	}{{"tile", core.ScopeTile}, {"domain", core.ScopeDomain}} {
		if err := measure("scope", sc.label, core.Config{Alg: core.LUQR, Scope: sc.scope, Criterion: criteria.Always{}}); err != nil {
			return nil, err
		}
	}

	// 3. LU-step variants under the same criterion.
	for _, v := range []core.LUVariant{core.VarA1, core.VarA2, core.VarB1, core.VarB2} {
		if err := measure("variant", v.String(), core.Config{
			Alg: core.LUQR, Variant: v, Criterion: criteria.Max{Alpha: 500},
		}); err != nil {
			return nil, err
		}
	}

	// 4. Panel-elimination family: flat pairwise (IncPiv), tree pairwise
	// (HLU, the §VII prototype), tournament (CALU).
	for _, pe := range []struct {
		label string
		cfg   core.Config
	}{
		{"incpiv-flat", core.Config{Alg: core.LUIncPiv}},
		{"hlu-greedy", core.Config{Alg: core.HLU, IntraTree: tree.Greedy, InterTree: tree.Fibonacci}},
		{"calu-tournament", core.Config{Alg: core.CALU}},
	} {
		if err := measure("panel", pe.label, pe.cfg); err != nil {
			return nil, err
		}
	}

	if !o.Quiet {
		fmt.Fprintf(out, "# Ablations — N=%d nb=%d grid=%dx%d, %d rep(s), simulated on %s\n",
			o.N, o.NB, o.Grid.P, o.Grid.Q, o.Reps, o.Machine.Name)
		w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "group\tconfig\tHPL3\tgrowth\t%LU\tsim time\tGFLOP/s\twall(s)")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%s\t%.3g\t%.3g\t%.1f\t%.4f\t%.1f\t%.3f\n",
				r.Group, r.Label, r.HPL3, r.Growth, r.PctLU, r.SimTime, r.SimGF, r.WallSec)
		}
		w.Flush()
	}
	return rows, nil
}

// TuneAlpha implements the auto-tuning the paper leaves as future work
// (§VII): find, by bisection on log α, the largest threshold whose mean
// HPL3 over sample random matrices stays within budget × the LUPP
// reference. Returns the tuned α and its measured %LU and relative HPL3.
func TuneAlpha(o Options, criterion string, budget float64, out io.Writer) (alpha, pctLU, relHPL3 float64, err error) {
	o = o.withDefaults()
	if budget <= 0 {
		budget = 2
	}
	mats := randomSystems(o)

	ref := 0.0
	for i, m := range mats {
		rep, _, e := run(m, core.Config{Alg: core.LUPP, NB: o.NB, Grid: o.Grid, Workers: o.Workers, Seed: o.Seed + int64(i)}, o.Machine)
		if e != nil {
			return 0, 0, 0, e
		}
		ref += rep.HPL3
	}
	ref /= float64(len(mats))

	eval := func(a float64) (rel, pct float64, err error) {
		var hpl, lu float64
		for i, m := range mats {
			rep, _, e := run(m, core.Config{
				Alg: core.LUQR, NB: o.NB, Grid: o.Grid, Workers: o.Workers,
				Criterion: makeCriterion(criterion, a), Seed: o.Seed + int64(i),
			}, o.Machine)
			if e != nil {
				return 0, 0, e
			}
			hpl += rep.HPL3
			lu += 100 * rep.FracLU()
		}
		n := float64(len(mats))
		return hpl / n / ref, lu / n, nil
	}

	// Bracket: grow α by decades until the budget is violated (or α is
	// effectively ∞).
	lo, hi := 0.0, math.NaN()
	a := 1e-2
	for ; a <= 1e9; a *= 10 {
		rel, pct, e := eval(a)
		if e != nil {
			return 0, 0, 0, e
		}
		if rel <= budget {
			lo, pctLU, relHPL3 = a, pct, rel
			if pct >= 100 {
				break // already all-LU within budget: done
			}
		} else {
			hi = a
			break
		}
	}
	if math.IsNaN(hi) {
		// Never violated: α = the last probed value (all LU within budget).
		if out != nil && !o.Quiet {
			fmt.Fprintf(out, "tuned %s: alpha=%g (budget never violated), %%LU=%.1f, relHPL3=%.3g\n", criterion, lo, pctLU, relHPL3)
		}
		return lo, pctLU, relHPL3, nil
	}
	if lo == 0 {
		return 0, 0, 0, fmt.Errorf("experiments: no α within stability budget %g for %s", budget, criterion)
	}
	// Bisect on log α.
	for iter := 0; iter < 8; iter++ {
		mid := math.Sqrt(lo * hi)
		rel, pct, e := eval(mid)
		if e != nil {
			return 0, 0, 0, e
		}
		if rel <= budget {
			lo, pctLU, relHPL3 = mid, pct, rel
		} else {
			hi = mid
		}
	}
	if out != nil && !o.Quiet {
		fmt.Fprintf(out, "tuned %s: alpha=%.4g, %%LU=%.1f, relHPL3=%.3g (budget %g× LUPP)\n", criterion, lo, pctLU, relHPL3, budget)
	}
	return lo, pctLU, relHPL3, nil
}
