package experiments

import (
	"encoding/json"
	"io"
	"math/rand"
	"runtime"
	"time"

	"luqr/internal/blas"
	"luqr/internal/flops"
	"luqr/internal/lapack"
	"luqr/internal/mat"
)

// KernelBenchEntry is one machine-readable kernel measurement: the serial
// execution rate of one tile kernel at one tile order.
type KernelBenchEntry struct {
	Kernel  string  `json:"kernel"`
	NB      int     `json:"nb"`
	NsPerOp float64 `json:"ns_per_op"`
	GFlops  float64 `json:"gflops"`
}

// KernelBenchReport is the schema of BENCH_kernels.json: the committed seed
// baseline next to freshly measured numbers, so a regression (or a speedup)
// is visible from the file alone. Regenerate with
//
//	go run ./cmd/luqr-bench -json BENCH_kernels.json
type KernelBenchReport struct {
	Schema  int                `json:"schema"`
	Go      string             `json:"go"`
	GoArch  string             `json:"goarch"`
	Reps    int                `json:"reps"`
	Seed    []KernelBenchEntry `json:"seed_baseline"`
	Current []KernelBenchEntry `json:"current"`
}

// seedKernelBaseline records the kernel rates of the pre-packed-GEMM code
// (naive three-loop blocked Gemm) measured on the reference host — a
// single-core Intel Xeon @ 2.10GHz, go1.24, default GOAMD64=v1 — immediately
// before the BLIS-style rewrite. It is the fixed "before" of the
// before/after comparison; the "current" section is remeasured on every
// regeneration.
var seedKernelBaseline = []KernelBenchEntry{
	{Kernel: "GEMM", NB: 128, NsPerOp: 1458535, GFlops: 2.876},
	{Kernel: "GEMM", NB: 256, NsPerOp: 11028176, GFlops: 3.043},
}

// KernelBenchNBs are the tile orders measured by WriteKernelBench: the two
// seed-baseline sizes, the historical default experiment tile order (40),
// and the solver sweep's production default (192).
var KernelBenchNBs = []int{40, 128, 192, 256}

// WriteKernelBench measures every Table I kernel at each tile order in nbs
// and writes the JSON report (seed baseline + current) to out. GFLOP/s uses
// the Table I model flop counts, so rates are comparable across kernels.
func WriteKernelBench(nbs []int, reps int, out io.Writer) error {
	rep := KernelBenchReport{
		Schema: 1,
		Go:     runtime.Version(),
		GoArch: runtime.GOARCH,
		Reps:   reps,
		Seed:   seedKernelBaseline,
	}
	for _, nb := range nbs {
		unit := float64(nb) * float64(nb) * float64(nb)
		for _, c := range Table1(nb, reps, nil) {
			ns := c.MeasuredMs * 1e6
			gf := 0.0
			if ns > 0 {
				gf = c.ModelUnits * unit / ns // flops / ns == GFLOP/s
			}
			rep.Current = append(rep.Current, KernelBenchEntry{
				Kernel: c.Kernel, NB: nb, NsPerOp: ns, GFlops: gf,
			})
		}
		rep.Current = append(rep.Current, measureGemm32(nb, reps))
		rep.Current = append(rep.Current, measureQRUpdates32(nb, reps)...)
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// measureGemm32 times the float32 packed GEMM at one tile order, reported
// under the "GEMM.f32" kernel name with the same flop model as GEMM — so the
// GFLOP/s ratio against the GEMM row at the same nb is the mixed-precision
// path's kernel speedup (the quantity the acceptance criterion gates).
func measureGemm32(nb, reps int) KernelBenchEntry {
	rng := rand.New(rand.NewSource(99))
	randTile := func() *mat.Matrix {
		m := mat.New(nb, nb)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		return m
	}
	a, b, c := randTile(), randTile(), randTile()
	// Warm the f32 packing pools and the dispatch path before timing, then
	// amortize the measurement over enough calls to outlast timer noise — a
	// single nb=192 call is a few hundred microseconds.
	blas.Gemm32(blas.NoTrans, blas.NoTrans, -1, a, b, 1, c)
	best := 0.0
	for r := 0; r < reps; r++ {
		const minWall = 10 * time.Millisecond
		iters := 0
		t0 := time.Now()
		for time.Since(t0) < minWall {
			blas.Gemm32(blas.NoTrans, blas.NoTrans, -1, a, b, 1, c)
			iters++
		}
		d := time.Since(t0).Seconds() / float64(iters)
		if best == 0 || d < best {
			best = d
		}
	}
	ns := best * 1e9
	gf := 0.0
	if ns > 0 {
		gf = flops.Gemm(nb, nb, nb) / ns
	}
	return KernelBenchEntry{Kernel: "GEMM.f32", NB: nb, NsPerOp: ns, GFlops: gf}
}

// measureQRUpdates32 times the float32 QR update kernels — UNMQR, TSMQR,
// TTMQR in their converting f32 forms — at one tile order, reported under
// ".f32"-suffixed kernel names with the Table I flop models. Against the f64
// base rows from Table1 these give `-diff-kernels` its f32/f64 ratios for
// the QR side of the mixed path, the rates the packed Trmm32/Trsm32 routing
// is meant to lift.
func measureQRUpdates32(nb, reps int) []KernelBenchEntry {
	rng := rand.New(rand.NewSource(101))
	randTile := func() *mat.Matrix {
		m := mat.New(nb, nb)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		return m
	}
	upperTile := func() *mat.Matrix {
		m := randTile()
		for i := 0; i < nb; i++ {
			for j := 0; j < i; j++ {
				m.Set(i, j, 0)
			}
			m.Set(i, i, m.At(i, i)+float64(nb)) // keep solves well posed
		}
		return m
	}
	timeOne := func(kernel string, model float64, setup func() func()) KernelBenchEntry {
		op := setup()
		op() // warm pools and dispatch before timing
		best := 0.0
		for r := 0; r < reps; r++ {
			const minWall = 10 * time.Millisecond
			iters := 0
			t0 := time.Now()
			for time.Since(t0) < minWall {
				op()
				iters++
			}
			d := time.Since(t0).Seconds() / float64(iters)
			if best == 0 || d < best {
				best = d
			}
		}
		ns := best * 1e9
		gf := 0.0
		if ns > 0 {
			gf = model / ns
		}
		return KernelBenchEntry{Kernel: kernel, NB: nb, NsPerOp: ns, GFlops: gf}
	}
	return []KernelBenchEntry{
		timeOne("UNMQR.f32", flops.Unmqr(nb, nb), func() func() {
			a, t := randTile(), mat.New(nb, nb)
			lapack.Geqrt(a, t)
			c := randTile()
			return func() { lapack.Unmqr32(blas.Trans, a, t, c) }
		}),
		timeOne("TSMQR.f32", flops.Tsmqr(nb, nb), func() func() {
			r, a, t := upperTile(), randTile(), mat.New(nb, nb)
			lapack.Tsqrt(r, a, t)
			c1, c2 := randTile(), randTile()
			return func() { lapack.Tsmqr32(blas.Trans, a, t, c1, c2) }
		}),
		timeOne("TTMQR.f32", flops.Ttmqr(nb, nb), func() func() {
			r1, r2, t := upperTile(), upperTile(), mat.New(nb, nb)
			lapack.Ttqrt(r1, r2, t)
			c1, c2 := randTile(), randTile()
			return func() { lapack.Ttmqr32(blas.Trans, r2, t, c1, c2) }
		}),
	}
}
