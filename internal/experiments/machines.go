package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"luqr/internal/core"
	"luqr/internal/criteria"
	"luqr/internal/runtime"
	"luqr/internal/sim"
)

// MachineRow records one algorithm's simulated performance on one platform
// variant.
type MachineRow struct {
	Machine string
	Alg     string
	SimGF   float64
	Msgs    int
	MB      float64
}

// MachineSweep replays the same recorded task graphs on platform variants —
// slower/faster interconnects, higher latency, serialized NICs — to expose
// which algorithm is latency-bound (LUPP's per-column pivot exchanges),
// bandwidth-bound (the full-panel swaps of LUPP/CALU), or compute-bound
// (the hybrid and HQR). The factorizations run once; only the simulation is
// repeated, so the sweep is cheap.
func MachineSweep(o Options, out io.Writer) ([]MachineRow, error) {
	o = o.withDefaults()
	mats := randomSystems(o)

	base := sim.Dancer()
	variants := []sim.Machine{
		base,
		func() sim.Machine { m := base; m.Name = "dancer-nic"; m.NICSerial = true; return m }(),
		func() sim.Machine { m := base; m.Name = "slow-net"; m.BandwidthBps /= 10; return m }(),
		func() sim.Machine { m := base; m.Name = "high-lat"; m.LatencySec *= 20; return m }(),
		func() sim.Machine { m := base; m.Name = "fast-net"; m.BandwidthBps *= 10; m.LatencySec /= 10; return m }(),
	}
	algs := []struct {
		label string
		cfg   core.Config
	}{
		{"luqr", core.Config{Alg: core.LUQR, Criterion: criteria.Max{Alpha: 500}}},
		{"hqr", core.Config{Alg: core.HQR}},
		{"lupp", core.Config{Alg: core.LUPP}},
		{"calu", core.Config{Alg: core.CALU}},
	}

	// Record each algorithm's traces once.
	traces := map[string][][]*runtime.TraceTask{}
	reports := map[string][]*core.Report{}
	for _, a := range algs {
		for i, m := range mats {
			cfg := a.cfg
			cfg.NB, cfg.Grid, cfg.Workers, cfg.Seed, cfg.Trace = o.NB, o.Grid, o.Workers, o.Seed+int64(i), true
			res, err := core.Run(m.a, m.b, cfg)
			if err != nil {
				return nil, err
			}
			traces[a.label] = append(traces[a.label], res.Report.Trace)
			res.Report.Trace = nil
			reports[a.label] = append(reports[a.label], res.Report)
		}
	}

	var rows []MachineRow
	for _, machine := range variants {
		for _, a := range algs {
			row := MachineRow{Machine: machine.Name, Alg: a.label}
			for i, tr := range traces[a.label] {
				s := sim.Simulate(tr, machine, nil)
				row.SimGF += reports[a.label][i].FakeGFlops(s.Makespan) / float64(len(mats))
				row.Msgs += s.Messages / len(mats)
				row.MB += float64(s.CommBytes) / 1e6 / float64(len(mats))
			}
			rows = append(rows, row)
		}
	}
	if !o.Quiet {
		fmt.Fprintf(out, "# Platform sensitivity — N=%d nb=%d grid=%dx%d (fake GFLOP/s per machine variant)\n", o.N, o.NB, o.Grid.P, o.Grid.Q)
		w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		fmt.Fprint(w, "machine")
		for _, a := range algs {
			fmt.Fprintf(w, "\t%s", a.label)
		}
		fmt.Fprintln(w, "\tmsgs(luqr)\tMB(luqr)")
		for i := 0; i < len(variants); i++ {
			fmt.Fprint(w, variants[i].Name)
			var luqrRow MachineRow
			for _, r := range rows[i*len(algs) : (i+1)*len(algs)] {
				fmt.Fprintf(w, "\t%.1f", r.SimGF)
				if r.Alg == "luqr" {
					luqrRow = r
				}
			}
			fmt.Fprintf(w, "\t%d\t%.1f\n", luqrRow.Msgs, luqrRow.MB)
		}
		w.Flush()
	}
	return rows, nil
}
