package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestSolverBenchRoundTrip generates a tiny schema-2 sweep and validates the
// emitted JSON against the contract: the same path the CI smoke exercises at
// a larger size.
func TestSolverBenchRoundTrip(t *testing.T) {
	var out, table bytes.Buffer
	o := SolverBenchOptions{
		N: 128, NB: 32, Reps: 1,
		Workers: []int{1, 2, 16}, // 16 > 4 tiles per side: must warn
		NBs:     []int{32, 48, 256},
	}
	if err := WriteSolverBench(o, &out, &table); err != nil {
		t.Fatal(err)
	}
	rep, err := ValidateSolverBench(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatalf("generated report fails validation: %v", err)
	}
	if rep.N != 128 || rep.NB != 32 {
		t.Fatalf("report config = n%d nb%d, want n128 nb32", rep.N, rep.NB)
	}
	if len(rep.Solver) != 3 || len(rep.SimSolver) != 3 {
		t.Fatalf("sweep lengths = %d/%d, want 3/3", len(rep.Solver), len(rep.SimSolver))
	}
	// nb=48 pads (128 → 3 ragged tiles) and runs; nb=256 > N is skipped
	// with a warning, not silently.
	if len(rep.NBSweep) != 2 || rep.NBSweep[1].NB != 48 || rep.NBSweep[1].Tiles != 3 {
		t.Fatalf("nb sweep = %+v, want nb∈{32,48} with padded tile counts", rep.NBSweep)
	}
	var sawTiles, sawSkip bool
	for _, w := range rep.Warnings {
		if strings.Contains(w, "fewer tile columns") {
			sawTiles = true
		}
		if strings.Contains(w, "larger than N") {
			sawSkip = true
		}
	}
	if !sawTiles || !sawSkip {
		t.Fatalf("warnings = %q, want tile-count and oversized-nb warnings", rep.Warnings)
	}
	if !strings.Contains(table.String(), "warning:") {
		t.Fatal("warnings missing from the human-readable table")
	}
	if !strings.Contains(rep.SimNote, "SIMULATED") {
		t.Fatalf("sim note %q does not label the curve as simulated", rep.SimNote)
	}
	// The DAG has real parallelism, so the simulated curve must slope upward.
	if last := rep.SimSolver[len(rep.SimSolver)-1]; last.Speedup <= 1 {
		t.Fatalf("simulated speedup at w=%d is %.2f, want > 1", last.Workers, last.Speedup)
	}
	// The mixed section covers two operators × three precision settings, and
	// each forced-f32 point both engaged the float32 path and refined into
	// the band (ValidateSolverBench already gated the HPL3 values).
	if len(rep.Mixed) != 6 {
		t.Fatalf("mixed section has %d entries, want 6 (2 operators × 3 precisions)", len(rep.Mixed))
	}
	if rep.Mixed[0].Matrix != "random" || rep.Mixed[3].Matrix != "diagdom" {
		t.Fatalf("mixed operators = %q/%q, want random then diagdom",
			rep.Mixed[0].Matrix, rep.Mixed[3].Matrix)
	}
	for _, i := range []int{2, 5} {
		f32 := rep.Mixed[i]
		if f32.Precision != "f32" || f32.F32Steps+f32.Demotions == 0 {
			t.Fatalf("forced-f32 mixed entry = %+v, want f32 activity", f32)
		}
		if f32.F32Steps > 0 && f32.RefineIters == 0 {
			t.Fatalf("f32 factorization refined 0 rounds: %+v", f32)
		}
	}
}

// TestSolverBenchDefaults pins the production default configuration the
// satellite fix introduced: N=4096, nb=192, production nb sweep.
func TestSolverBenchDefaults(t *testing.T) {
	o := SolverBenchOptions{}.withDefaults()
	if o.N != 4096 || o.NB != 192 {
		t.Fatalf("defaults = N=%d nb=%d, want 4096/192", o.N, o.NB)
	}
	if len(o.NBs) != 3 || o.NBs[0] != 128 || o.NBs[2] != 256 {
		t.Fatalf("default nb sweep = %v, want {128,192,256}", o.NBs)
	}
	// nb=192 stays the default for any N: core.Run pads to the next tile
	// boundary, so divisibility is not required.
	o = SolverBenchOptions{N: 512}.withDefaults()
	if o.NB != 192 {
		t.Fatalf("nb default = %d for n=512, want 192 (padding handles the rest)", o.NB)
	}
}

func TestValidateSolverBenchRejects(t *testing.T) {
	base := func() *SolverBenchReport {
		return &SolverBenchReport{
			Schema: 2, N: 128, NB: 32, Grid: "2x2", Reps: 1,
			NBSweep: []NBSweepEntry{{NB: 32, Tiles: 4, WallSeconds: 0.1, GFlops: 1}},
			Solver:  []SolverBenchEntry{{Workers: 1, WallSeconds: 0.1, GFlops: 1}},
			SimNote: "SIMULATED", SimCriticalPath: 0.05, SimParallelism: 2,
			SimSolver: []SimScalingEntry{
				{Workers: 1, MakespanSeconds: 0.1, GFlops: 1, Speedup: 1},
				{Workers: 2, MakespanSeconds: 0.06, GFlops: 1.6, Speedup: 1.7},
			},
			Mixed: []MixedBenchEntry{
				{Matrix: "random", Precision: "f64", WallSeconds: 0.1, GFlops: 1, HPL3: 0.01},
				{Matrix: "random", Precision: "f32", WallSeconds: 0.07, GFlops: 1.4, F32Steps: 4,
					F32Epochs: 6, Conversions: 9, ConvMS: 0.2, RefineIters: 2, HPL3: 1.5},
			},
			Dispatch: []DispatchBenchEntry{{Workers: 1, NsPerTask: 300}},
		}
	}
	cases := []struct {
		name   string
		mutate func(*SolverBenchReport)
		want   string
	}{
		{"schema skew", func(r *SolverBenchReport) { r.Schema = 1 }, "schema 1"},
		{"empty solver", func(r *SolverBenchReport) { r.Solver = nil }, "empty section"},
		{"zero rate", func(r *SolverBenchReport) { r.Solver[0].GFlops = 0 }, "degenerate solver"},
		{"missing sim note", func(r *SolverBenchReport) { r.SimNote = "" }, "provenance"},
		{"non-monotone sim", func(r *SolverBenchReport) { r.SimSolver[1].Speedup = 0.5 }, "not monotone"},
		{"bad tile count", func(r *SolverBenchReport) { r.NBSweep[0].Tiles = 7 }, "nb_sweep"},
		{"missing mixed", func(r *SolverBenchReport) { r.Mixed = nil }, "mixed-precision section"},
		{"bad mixed precision", func(r *SolverBenchReport) { r.Mixed[1].Precision = "half" }, "unknown precision"},
		{"mixed out of band", func(r *SolverBenchReport) { r.Mixed[1].HPL3 = 1e6 }, "refine to tolerance"},
		{"mixed nan marker", func(r *SolverBenchReport) { r.Mixed[1].HPL3 = -1 }, "refine to tolerance"},
		{"f32 never engaged", func(r *SolverBenchReport) { r.Mixed[1].F32Steps = 0 }, "no f32 activity"},
		{"epochs unwired", func(r *SolverBenchReport) { r.Mixed[1].F32Epochs = 0 }, "no residency epochs"},
		{"conversions unwired", func(r *SolverBenchReport) { r.Mixed[1].Conversions = 0 }, "no residency epochs"},
		{"auto demotes without steps", func(r *SolverBenchReport) {
			r.Mixed[1].Precision = "auto"
			r.Mixed[1].F32Steps = 0
			r.Mixed[1].F32Epochs = 0
			r.Mixed[1].Conversions = 0
			r.Mixed[1].Demotions = 3
		}, "no accepted f32 step"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := base()
			tc.mutate(r)
			data, err := json.Marshal(r)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := ValidateSolverBench(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
	// The intact report passes.
	data, _ := json.Marshal(base())
	if _, err := ValidateSolverBench(bytes.NewReader(data)); err != nil {
		t.Fatalf("intact report rejected: %v", err)
	}
}

func TestKernelBenchDiff(t *testing.T) {
	oldRep := KernelBenchReport{
		Schema: 1,
		Current: []KernelBenchEntry{
			{Kernel: "GETRF", NB: 128, GFlops: 1.355},
			{Kernel: "GEMM", NB: 128, GFlops: 20},
		},
	}
	newRep := KernelBenchReport{
		Schema: 1,
		Seed:   []KernelBenchEntry{{Kernel: "GETRF", NB: 128, GFlops: 1.0}},
		Current: []KernelBenchEntry{
			{Kernel: "GETRF", NB: 128, GFlops: 6.78},
			{Kernel: "GEMM", NB: 128, GFlops: 25},
			{Kernel: "GEQRT", NB: 192, GFlops: 4},
		},
	}
	enc := func(r KernelBenchReport) *bytes.Reader {
		data, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return bytes.NewReader(data)
	}

	var out bytes.Buffer
	if err := KernelBenchDiff(enc(oldRep), enc(newRep), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"GETRF", "+400.4%", "(new)", "old GF/s"} {
		if !strings.Contains(got, want) {
			t.Fatalf("diff output missing %q:\n%s", want, got)
		}
	}

	// Single-file mode: seed baseline vs. current.
	out.Reset()
	if err := KernelBenchDiff(nil, enc(newRep), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "seed baseline GF/s") {
		t.Fatalf("single-file diff header wrong:\n%s", out.String())
	}

	// No overlap at all is an error, not an empty table.
	disjoint := KernelBenchReport{Current: []KernelBenchEntry{{Kernel: "TRSM", NB: 64, GFlops: 1}}}
	if err := KernelBenchDiff(enc(oldRep), enc(disjoint), &out); err == nil {
		t.Fatal("disjoint diff succeeded, want error")
	}
}
