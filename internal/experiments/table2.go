package experiments

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"

	"luqr/internal/core"
)

// Table2 reproduces Table II: the detailed performance ladder at one fixed
// N for the Max criterion — LU NoPiv, LU IncPiv, LUQR(Max) from α = ∞ down
// to α = 0, HQR, and LUPP — reporting simulated time, %LU steps, fake and
// true GFLOP/s and the corresponding fractions of the machine peak.
func Table2(o Options, out io.Writer) ([]Row, error) {
	o = o.withDefaults()
	mats := randomSystems(o)

	type entry struct {
		label string
		alg   core.Algorithm
		alpha float64
	}
	entries := []entry{
		{"LU NoPiv", core.LUNoPiv, math.NaN()},
		{"LU IncPiv", core.LUIncPiv, math.NaN()},
	}
	for _, alpha := range []float64{math.Inf(1), 2000, 1000, 500, 300, 100, 10, 0} {
		entries = append(entries, entry{"LUQR (MAX)", core.LUQR, alpha})
	}
	entries = append(entries, entry{"HQR", core.HQR, math.NaN()}, entry{"LUPP", core.LUPP, math.NaN()})

	var rows []Row
	for _, e := range entries {
		row := Row{Label: e.label, Alpha: e.alpha, N: o.N}
		for i, m := range mats {
			cfg := core.Config{Alg: e.alg, NB: o.NB, Grid: o.Grid, Workers: o.Workers, Seed: o.Seed + int64(i)}
			if e.alg == core.LUQR {
				cfg.Criterion = makeCriterion("max", e.alpha)
			}
			rep, simT, err := run(m, cfg, o.Machine)
			if err != nil {
				return nil, err
			}
			accumulate(&row, rep, simT)
		}
		finish(&row, len(mats), 0, o.Machine)
		rows = append(rows, row)
	}
	if !o.Quiet {
		printTable2(out, o, rows)
	}
	return rows, nil
}

func printTable2(out io.Writer, o Options, rows []Row) {
	fmt.Fprintf(out, "# Table II — N=%d nb=%d grid=%dx%d, Max criterion, machine=%s (peak %.0f GFLOP/s)\n",
		o.N, o.NB, o.Grid.P, o.Grid.Q, o.Machine.Name, o.Machine.PeakGFlops())
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Algorithm\talpha\tTime(sim s)\t%LU steps\tFake GF/s\tTrue GF/s\tFake %Peak\tTrue %Peak")
	for _, r := range rows {
		alpha := ""
		if !math.IsNaN(r.Alpha) {
			alpha = trimFloat(r.Alpha)
		}
		fmt.Fprintf(w, "%s\t%s\t%.4f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\n",
			r.Label, alpha, r.SimTime, r.PctLU, r.SimGF, r.TrueGF, r.PctPeak, r.TruePeak)
	}
	w.Flush()
}
