package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"
	"time"

	"luqr/internal/core"
	"luqr/internal/criteria"
	"luqr/internal/matgen"
	"luqr/internal/runtime"
	"luqr/internal/sim"
	"luqr/internal/tree"
)

// timelineConfig is the canonical observability configuration: a hybrid run
// that exercises every kernel family of the paper's Table I. The Random
// criterion (reproducible per step from the seed) mixes LU steps (SWPTRSM /
// TRSM / GEMM) with QR steps; the FlatTS intra-domain tree emits TSQRT /
// TSMQR and the Fibonacci inter-domain tree adds the TTQRT / TTMQR merges.
func timelineConfig(o Options) core.Config {
	return core.Config{
		Alg: core.LUQR, NB: o.NB, Grid: o.Grid,
		Criterion: criteria.Random{Alpha: 50},
		IntraTree: tree.FlatTS, InterTree: tree.Fibonacci,
		Workers: o.Workers, Seed: o.Seed, Trace: true,
	}
}

// Timeline runs the canonical observability configuration, writes the
// recorded task timeline as Chrome trace-event JSON (chrome://tracing or
// Perfetto: one track per worker, flow arrows for cross-node messages) to
// traceOut, and prints the measured per-kernel stats table to out. It
// returns the measured stats so callers can assert on the aggregation.
func Timeline(o Options, traceOut io.Writer, out io.Writer) (*runtime.Stats, error) {
	o = o.withDefaults()
	rng := rand.New(rand.NewSource(o.Seed))
	a := matgen.Random(o.N, rng)
	b := matgen.RandomVector(o.N, rng)

	res, err := core.Run(a, b, timelineConfig(o))
	if err != nil {
		return nil, err
	}
	r := res.Report
	if traceOut != nil {
		if err := runtime.WriteChromeTrace(traceOut, r.Trace); err != nil {
			return nil, err
		}
	}
	s := runtime.ComputeStats(r.Trace)
	if out != nil {
		lu := 0
		for _, d := range r.Decisions {
			if d {
				lu++
			}
		}
		fmt.Fprintf(out, "# Measured timeline — N=%d nb=%d grid %dx%d, random criterion (%d LU / %d QR steps)\n",
			o.N, o.NB, o.Grid.P, o.Grid.Q, lu, len(r.Decisions)-lu)
		s.WriteTable(out)
	}
	return s, nil
}

// Breakdown replays one measured trace through the machine-model simulator
// and prints the two per-kernel time breakdowns side by side: the wall-clock
// core-seconds measured on this host next to the core-seconds the simulator
// charges on the machine model. The absolute scales differ (local cores vs.
// the modeled cluster); the shares are the comparable columns — they show
// whether the simulated cost ratios that the §V performance numbers rest on
// match the measured ones.
func Breakdown(o Options, out io.Writer) (*runtime.Stats, error) {
	o = o.withDefaults()
	rng := rand.New(rand.NewSource(o.Seed))
	a := matgen.Random(o.N, rng)
	b := matgen.RandomVector(o.N, rng)

	res, err := core.Run(a, b, timelineConfig(o))
	if err != nil {
		return nil, err
	}
	trace := res.Report.Trace
	meas := runtime.ComputeStats(trace)
	sr := sim.Simulate(trace, o.Machine, nil)

	measTotal := meas.TotalBusy().Seconds()
	fmt.Fprintf(out, "# Measured vs. simulated breakdown — one trace, two clocks (N=%d nb=%d grid %dx%d)\n",
		o.N, o.NB, o.Grid.P, o.Grid.Q)
	tw := tabwriter.NewWriter(out, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "kernel\tcount\tmeasured\tshare\tsimulated\tshare\t")
	for _, name := range meas.KernelNames() {
		ks := meas.Kernels[name]
		simT := sr.KernelTime[name]
		fmt.Fprintf(tw, "%s\t%d\t%v\t%.1f%%\t%.4fs\t%.1f%%\t\n",
			name, ks.Count, ks.Total.Round(time.Microsecond),
			pct(ks.Total.Seconds(), measTotal), simT, pct(simT, sr.ComputeTime))
	}
	fmt.Fprintf(tw, "total\t%d\t%v\t\t%.4fs\t\t\n",
		meas.Tasks, meas.TotalBusy().Round(time.Microsecond), sr.ComputeTime)
	tw.Flush()
	fmt.Fprintf(out, "measured: span %v on %d workers, utilization %.1f%%, critical path %v\n",
		meas.Span.Round(time.Microsecond), meas.Workers, 100*meas.Utilization(),
		meas.CriticalPath.Round(time.Microsecond))
	// Gap attribution: how much of the remaining wall time is structural.
	// Critical-path occupancy says how much of the span the serial panel
	// chain covers; Σbusy / critical-path is the DAG's speedup ceiling no
	// scheduler can beat.
	if span, cp := meas.Span.Seconds(), meas.CriticalPath.Seconds(); span > 0 && cp > 0 {
		fmt.Fprintf(out, "gap attribution: critical-path occupancy %.1f%% of span; average parallelism %.1f (Σbusy/critical-path = speedup ceiling)\n",
			100*cp/span, meas.TotalBusy().Seconds()/cp)
	}
	fmt.Fprintf(out, "simulated on %s: makespan %.4fs, critical path %.4fs, %d messages, %.2f MB\n",
		o.Machine.Name, sr.Makespan, sim.CriticalPath(trace, o.Machine.CoreGFlops),
		sr.Messages, float64(sr.CommBytes)/1e6)

	// Conversion attribution: rerun the same operator in auto precision with
	// the Max criterion (Random reports no margins, so auto would never
	// license float32) and charge the epoch-boundary conversions against the
	// tasks that paid them. Conversions-per-epoch is the number to watch: the
	// resident store converts once per tile epoch, not once per task, so it
	// stays O(1) while the tasks touching the tile within the epoch grow.
	mcfg := timelineConfig(o)
	mcfg.Criterion = criteria.Max{Alpha: 100}
	mcfg.Precision = core.PrecisionAuto
	mres, err := core.Run(a, b, mcfg)
	if err != nil {
		return nil, err
	}
	mr := mres.Report
	mstats := runtime.ComputeStats(mr.Trace)
	fmt.Fprintf(out, "\n# Conversion attribution — same operator, auto precision, MAX(α=100)\n")
	if mr.F32Epochs > 0 {
		fmt.Fprintf(out, "auto run: %d f32 steps, %d demotions; %d tile epochs, %d conversions (%.2f per epoch) costing %v (%.2f%% of %v busy)\n",
			mr.F32Steps, mr.Demotions, mr.F32Epochs, mr.Conversions,
			float64(mr.Conversions)/float64(mr.F32Epochs), mr.ConvTime,
			pct(mr.ConvTime.Seconds(), mstats.TotalBusy().Seconds()), mstats.TotalBusy().Round(time.Microsecond))
		fmt.Fprintf(out, "trace-charged conversion time: %v (per-kernel split in the stats table's conv column)\n",
			mstats.ConvTotal.Round(time.Microsecond))
	} else {
		fmt.Fprintf(out, "auto run licensed no float32 steps at this size (margins above the comfort bound); no epochs to attribute\n")
	}
	return meas, nil
}

func pct(part, whole float64) float64 {
	if whole <= 0 {
		return 0
	}
	return 100 * part / whole
}
