// Package experiments regenerates the tables and figures of the paper's
// evaluation (§V): Figure 2 (stability / performance / %LU-steps sweeps over
// α for each criterion on random matrices), Table II (the detailed
// performance ladder at fixed N), Figure 3 (stability on the special-matrix
// set), Table I (kernel costs), and the §V-B overhead decomposition.
//
// Each experiment runs the real factorizations (so stability numbers are
// genuine double-precision results) and replays the recorded task trace on
// the Dancer machine model to obtain simulated distributed performance —
// the documented substitution for the paper's 16-node cluster. Real local
// wall-clock numbers are reported alongside.
package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"text/tabwriter"

	"luqr/internal/core"
	"luqr/internal/criteria"
	"luqr/internal/mat"
	"luqr/internal/matgen"
	"luqr/internal/sim"
	"luqr/internal/tile"
)

// Options scales an experiment. The defaults target seconds-to-minutes on a
// laptop; pass the paper's N=20000/nb=240 for a full-scale run.
type Options struct {
	N       int
	NB      int
	Grid    tile.Grid
	Reps    int // random matrices per configuration
	Seed    int64
	Workers int
	Machine sim.Machine
	Quiet   bool // suppress table output
}

func (o Options) withDefaults() Options {
	if o.N == 0 {
		o.N = 480
	}
	if o.NB == 0 {
		o.NB = 40
	}
	if o.Grid.P == 0 {
		o.Grid = tile.NewGrid(4, 4)
	}
	if o.Reps == 0 {
		o.Reps = 3
	}
	if o.Machine.Nodes == 0 {
		o.Machine = sim.Dancer()
	}
	return o
}

// Row is one measured configuration of a sweep experiment.
type Row struct {
	Label     string  // algorithm / criterion name
	Alpha     float64 // threshold (NaN when not applicable)
	N         int
	HPL3      float64 // mean over reps
	RelHPL3   float64 // HPL3 / HPL3(LUPP), the paper's stability ratio
	PctLU     float64 // percentage of LU steps
	SimTime   float64 // simulated seconds on the machine model
	SimGF     float64 // "fake" GFLOP/s (2/3·N³ / simulated time)
	TrueGF    float64 // "true" GFLOP/s (step-adjusted flops)
	PctPeak   float64 // SimGF / machine peak
	TruePeak  float64 // TrueGF / machine peak
	WallSec   float64 // measured local wall time (mean)
	Breakdown bool
	Growth    float64
}

// system is one (matrix, right-hand side) test problem.
type system struct {
	a *mat.Matrix
	b []float64
}

// run executes one configuration on a fixed system and returns the report
// plus the simulated execution time on the machine model.
func run(s *system, cfg core.Config, m sim.Machine) (*core.Report, float64, error) {
	cfg.Trace = true
	res, err := core.Run(s.a, s.b, cfg)
	if err != nil {
		return nil, 0, err
	}
	sr := sim.Simulate(res.Report.Trace, m, nil)
	res.Report.Trace = nil // free the graph
	return res.Report, sr.Makespan, nil
}

// sweepAlphas returns the default threshold ladder per criterion, chosen to
// span the all-QR → all-LU range at the experiment scale (the paper's
// absolute values are tied to its N=20000/nb=240 scale; §V-B notes the
// useful range depends on matrix size).
func sweepAlphas(criterion string) []float64 {
	switch criterion {
	case "max":
		return []float64{0, 1, 30, 100, 300, 500, 1000, 2000, math.Inf(1)}
	case "sum":
		return []float64{0, 10, 100, 300, 1000, 3000, 10000, 30000, math.Inf(1)}
	case "mumps":
		return []float64{0, 0.5, 1, 1.3, 1.6, 2.1, 5, math.Inf(1)}
	case "random":
		return []float64{0, 10, 25, 50, 75, 90, 100}
	}
	return nil
}

func makeCriterion(name string, alpha float64) criteria.Criterion {
	c, err := criteria.Parse(name, alpha)
	if err != nil {
		panic(err)
	}
	return c
}

// Fig2 reproduces Figure 2: for each criterion (max, sum, mumps, random)
// and each α of its ladder, run the hybrid on Reps seeded random matrices
// and report relative stability (vs LUPP), simulated GFLOP/s, and the
// percentage of LU steps. The baselines (LU NoPiv, LU IncPiv, HQR, LUPP)
// are measured on the same matrices.
func Fig2(o Options, out io.Writer) ([]Row, error) {
	o = o.withDefaults()
	mats := randomSystems(o)

	var rows []Row
	// Baselines first.
	luppHPL3 := make([]float64, len(mats))
	for _, base := range []struct {
		label string
		alg   core.Algorithm
	}{{"lupp", core.LUPP}, {"lunopiv", core.LUNoPiv}, {"luincpiv", core.LUIncPiv}, {"hqr", core.HQR}} {
		row := Row{Label: base.label, Alpha: math.NaN(), N: o.N}
		for i, m := range mats {
			rep, simT, err := run(m, core.Config{Alg: base.alg, NB: o.NB, Grid: o.Grid, Workers: o.Workers}, o.Machine)
			if err != nil {
				return nil, err
			}
			if base.alg == core.LUPP {
				luppHPL3[i] = rep.HPL3
			}
			accumulate(&row, rep, simT)
		}
		finish(&row, len(mats), luppMean(luppHPL3), o.Machine)
		rows = append(rows, row)
	}

	for _, crit := range []string{"max", "sum", "mumps", "random"} {
		for _, alpha := range sweepAlphas(crit) {
			row := Row{Label: crit, Alpha: alpha, N: o.N}
			for i, m := range mats {
				cfg := core.Config{
					Alg: core.LUQR, NB: o.NB, Grid: o.Grid, Workers: o.Workers,
					Criterion: makeCriterion(crit, alpha), Seed: o.Seed + int64(i),
				}
				rep, simT, err := run(m, cfg, o.Machine)
				if err != nil {
					return nil, err
				}
				accumulate(&row, rep, simT)
			}
			finish(&row, len(mats), luppMean(luppHPL3), o.Machine)
			rows = append(rows, row)
		}
	}
	if !o.Quiet {
		printFig2(out, o, rows)
	}
	return rows, nil
}

func luppMean(xs []float64) float64 {
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

func accumulate(row *Row, rep *core.Report, simT float64) {
	row.HPL3 += rep.HPL3
	row.PctLU += 100 * rep.FracLU()
	row.SimTime += simT
	row.SimGF += rep.FakeGFlops(simT)
	row.TrueGF += rep.TrueGFlops(simT)
	row.WallSec += rep.WallTime.Seconds()
	row.Growth += rep.Growth
	row.Breakdown = row.Breakdown || rep.Breakdown
}

func finish(row *Row, reps int, luppHPL3 float64, m sim.Machine) {
	f := 1 / float64(reps)
	row.HPL3 *= f
	row.PctLU *= f
	row.SimTime *= f
	row.SimGF *= f
	row.TrueGF *= f
	row.WallSec *= f
	row.Growth *= f
	if luppHPL3 > 0 {
		row.RelHPL3 = row.HPL3 / luppHPL3
	}
	if peak := m.PeakGFlops(); peak > 0 {
		row.PctPeak = 100 * row.SimGF / peak
		row.TruePeak = 100 * row.TrueGF / peak
	}
}

func randomSystems(o Options) []*system {
	mats := make([]*system, o.Reps)
	for i := range mats {
		rng := rand.New(rand.NewSource(o.Seed + int64(1000+i)))
		mats[i] = &system{a: matgen.Random(o.N, rng), b: matgen.RandomVector(o.N, rng)}
	}
	return mats
}

func printFig2(out io.Writer, o Options, rows []Row) {
	fmt.Fprintf(out, "# Figure 2 — random matrices, N=%d nb=%d grid=%dx%d, %d rep(s), machine=%s\n",
		o.N, o.NB, o.Grid.P, o.Grid.Q, o.Reps, o.Machine.Name)
	fmt.Fprintf(out, "# columns: relative HPL3 (vs LUPP) | simulated GFLOP/s (fake) | %% LU steps\n")
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "criterion\talpha\trelHPL3\tGFLOP/s\ttrueGF\t%LU\twall(s)")
	for _, r := range rows {
		alpha := "-"
		if !math.IsNaN(r.Alpha) {
			alpha = trimFloat(r.Alpha)
		}
		fmt.Fprintf(w, "%s\t%s\t%.3g\t%.1f\t%.1f\t%.1f\t%.3f\n",
			r.Label, alpha, r.RelHPL3, r.SimGF, r.TrueGF, r.PctLU, r.WallSec)
	}
	w.Flush()
}

func trimFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return fmt.Sprintf("%g", v)
}
