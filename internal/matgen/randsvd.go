package matgen

import (
	"fmt"
	"math"
	"math/rand"

	"luqr/internal/blas"
	"luqr/internal/lapack"
	"luqr/internal/mat"
)

// SigmaMode selects the singular-value distribution of RandSVD, following
// LAPACK's DLATMS conventions.
type SigmaMode int

const (
	// SigmaOneLarge: σ₁ = 1, σ₂ = … = σ_n = 1/κ.
	SigmaOneLarge SigmaMode = iota + 1
	// SigmaOneSmall: σ₁ = … = σ_{n−1} = 1, σ_n = 1/κ.
	SigmaOneSmall
	// SigmaGeometric: σ_i = κ^{−(i−1)/(n−1)}.
	SigmaGeometric
	// SigmaArithmetic: σ_i = 1 − (i−1)/(n−1)·(1 − 1/κ).
	SigmaArithmetic
)

// HaarOrthogonal returns an n×n orthogonal matrix drawn from the Haar
// distribution: the Q of a QR factorization of a Gaussian matrix, with the
// sign convention R_ii > 0 (Stewart's method).
func HaarOrthogonal(n int, rng *rand.Rand) *mat.Matrix {
	g := Random(n, rng)
	t := mat.New(n, n)
	lapack.Geqrt(g, t)
	q := mat.Identity(n)
	lapack.Unmqr(blas.NoTrans, g, t, q)
	// Fix the distribution: multiply column i by sign(R_ii).
	for i := 0; i < n; i++ {
		if g.At(i, i) < 0 {
			for r := 0; r < n; r++ {
				q.Set(r, i, -q.At(r, i))
			}
		}
	}
	return q
}

// RandSVD returns an n×n matrix A = U·Σ·Vᵀ with Haar-random orthogonal U
// and V and a prescribed 2-norm condition number κ via the chosen
// singular-value mode — the standard generator for conditioning sweeps
// (LAPACK DLATMS / MATLAB gallery('randsvd')).
func RandSVD(n int, kappa float64, mode SigmaMode, rng *rand.Rand) *mat.Matrix {
	if kappa < 1 {
		panic(fmt.Sprintf("matgen: RandSVD needs kappa >= 1, got %g", kappa))
	}
	sigma := make([]float64, n)
	for i := 0; i < n; i++ {
		switch mode {
		case SigmaOneLarge:
			if i == 0 {
				sigma[i] = 1
			} else {
				sigma[i] = 1 / kappa
			}
		case SigmaOneSmall:
			if i == n-1 {
				sigma[i] = 1 / kappa
			} else {
				sigma[i] = 1
			}
		case SigmaGeometric:
			if n == 1 {
				sigma[i] = 1
			} else {
				sigma[i] = math.Pow(kappa, -float64(i)/float64(n-1))
			}
		case SigmaArithmetic:
			if n == 1 {
				sigma[i] = 1
			} else {
				sigma[i] = 1 - float64(i)/float64(n-1)*(1-1/kappa)
			}
		default:
			panic(fmt.Sprintf("matgen: unknown sigma mode %d", mode))
		}
	}
	u := HaarOrthogonal(n, rng)
	v := HaarOrthogonal(n, rng)
	// A = U·diag(σ)·Vᵀ: scale U's columns, then multiply by Vᵀ.
	for i := 0; i < n; i++ {
		row := u.Row(i)
		for j := 0; j < n; j++ {
			row[j] *= sigma[j]
		}
	}
	a := mat.New(n, n)
	blas.Gemm(blas.NoTrans, blas.Trans, 1, u, v, 0, a)
	return a
}
