// Package matgen generates the test matrices of the paper's evaluation:
// seeded random matrices (§V-B) and the set of special/pathological matrices
// of Table III and §V-C, most of which come from Higham's Matrix Computation
// Toolbox and the MATLAB gallery.
//
// Each generator documents its construction; where the paper's source is a
// private code (foster, wright) the construction is reproduced from the
// original papers and the doc comment states the parameter choices.
package matgen

import (
	"fmt"
	"math"
	"math/rand"

	"luqr/internal/mat"
)

// Random returns an n×n matrix with i.i.d. standard normal entries — the
// random matrices of §V-B.
func Random(n int, rng *rand.Rand) *mat.Matrix {
	m := mat.New(n, n)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// RandomUniform returns entries uniform on [0,1).
func RandomUniform(n int, rng *rand.Rand) *mat.Matrix {
	m := mat.New(n, n)
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	return m
}

// DiagDominant returns a strictly (block) diagonally dominant random matrix:
// normal off-diagonal entries with the diagonal lifted to twice the row sum.
// On such matrices the Sum criterion (α ≥ 1) accepts every step (§III-B).
func DiagDominant(n int, rng *rand.Rand) *mat.Matrix {
	m := Random(n, rng)
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			if j != i {
				s += math.Abs(m.At(i, j))
			}
		}
		m.Set(i, i, 2*s+1)
	}
	return m
}

// RandomVector returns a length-n vector of standard normals.
func RandomVector(n int, rng *rand.Rand) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

// House returns the Householder matrix A = I − β·v·vᵀ, β = 2/vᵀv, for a
// random v (Table III #1). A is orthogonal and symmetric.
func House(n int, rng *rand.Rand) *mat.Matrix {
	v := RandomVector(n, rng)
	vtv := 0.0
	for _, x := range v {
		vtv += x * x
	}
	beta := 2 / vtv
	m := mat.Identity(n)
	for i := 0; i < n; i++ {
		row := m.Row(i)
		for j := 0; j < n; j++ {
			row[j] -= beta * v[i] * v[j]
		}
	}
	return m
}

// Parter returns the Parter matrix A(i,j) = 1/(i−j+0.5) (Table III #2), a
// Toeplitz matrix with most singular values near π.
func Parter(n int) *mat.Matrix {
	m := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, 1/(float64(i-j)+0.5))
		}
	}
	return m
}

// Ris returns the Ris matrix A(i,j) = 0.5/(n−i−j+1.5) with 1-based indices
// (Table III #3); eigenvalues cluster around ±π/2.
func Ris(n int) *mat.Matrix {
	m := mat.New(n, n)
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			m.Set(i-1, j-1, 0.5/(float64(n-i-j)+1.5))
		}
	}
	return m
}

// Condex returns a counter-example matrix to condition estimators
// (Table III #4): the Cline–Conn–Van Loan 4×4 counter-example with
// θ = 100 embedded in the identity, following MATLAB's
// gallery('condex', n, 1).
func Condex(n int) *mat.Matrix {
	if n < 4 {
		panic(fmt.Sprintf("matgen: Condex needs n >= 4, got %d", n))
	}
	const theta = 100.0
	m := mat.Identity(n)
	block := [][]float64{
		{1, -1, -2 * theta, 0},
		{0, 1, theta, -theta},
		{0, 1, 1 + theta, -(theta + 1)},
		{0, 0, 0, theta},
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			m.Set(i, j, block[i][j])
		}
	}
	return m
}

// Circul returns a circulant matrix whose first row is random (Table III
// #5): row i is the first row cyclically right-shifted i places.
func Circul(n int, rng *rand.Rand) *mat.Matrix {
	v := RandomVector(n, rng)
	m := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, v[((j-i)%n+n)%n])
		}
	}
	return m
}

// Hankel returns A = hankel(c, r) with random c, r and c(n) = r(1)
// (Table III #6): A(i,j) = c(i+j−1) when i+j−1 ≤ n, else r(i+j−n)
// (1-based), constant along anti-diagonals.
func Hankel(n int, rng *rand.Rand) *mat.Matrix {
	c := RandomVector(n, rng)
	r := RandomVector(n, rng)
	r[0] = c[n-1]
	m := mat.New(n, n)
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			k := i + j - 1
			if k <= n {
				m.Set(i-1, j-1, c[k-1])
			} else {
				m.Set(i-1, j-1, r[k-n])
			}
		}
	}
	return m
}

// Compan returns the companion matrix (sparse) of a random degree-n
// polynomial (Table III #7): first row −c₂/c₁ … −c_{n+1}/c₁, ones on the
// subdiagonal.
func Compan(n int, rng *rand.Rand) *mat.Matrix {
	c := RandomVector(n+1, rng)
	for c[0] == 0 {
		c[0] = rng.NormFloat64()
	}
	m := mat.New(n, n)
	for j := 0; j < n; j++ {
		m.Set(0, j, -c[j+1]/c[0])
	}
	for i := 1; i < n; i++ {
		m.Set(i, i-1, 1)
	}
	return m
}

// Lehmer returns the symmetric positive definite Lehmer matrix
// A(i,j) = i/j for j ≥ i (1-based; Table III #8). Its inverse is
// tridiagonal.
func Lehmer(n int) *mat.Matrix {
	m := mat.New(n, n)
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			if j >= i {
				m.Set(i-1, j-1, float64(i)/float64(j))
			} else {
				m.Set(i-1, j-1, float64(j)/float64(i))
			}
		}
	}
	return m
}

// Dorr returns the Dorr matrix (Table III #9): a row diagonally dominant,
// ill-conditioned, tridiagonal matrix from a singularly perturbed boundary
// value problem, with parameter θ = 0.01 as in the MATLAB gallery.
func Dorr(n int) *mat.Matrix {
	const theta = 0.01
	h := 1 / float64(n+1)
	m := mat.New(n, n)
	for i := 1; i <= n; i++ {
		var sub, sup float64 // A(i, i−1), A(i, i+1)
		term := (0.5 - float64(i)*h) / h
		if float64(i) <= (float64(n)+1)/2 {
			sub = -theta / (h * h)
			sup = -theta/(h*h) - term
		} else {
			sub = -theta/(h*h) + term
			sup = -theta / (h * h)
		}
		diag := -(sub + sup)
		if i > 1 {
			m.Set(i-1, i-2, sub)
		}
		m.Set(i-1, i-1, diag)
		if i < n {
			m.Set(i-1, i, sup)
		}
	}
	return m
}

// Demmel returns A = D·(I + 1e−7·rand(n)) with D = diag(10^{14·(i−1)/n})
// (Table III #10): graded, very ill-conditioned.
func Demmel(n int, rng *rand.Rand) *mat.Matrix {
	m := mat.New(n, n)
	for i := 0; i < n; i++ {
		d := math.Pow(10, 14*float64(i)/float64(n))
		for j := 0; j < n; j++ {
			v := 1e-7 * rng.Float64()
			if i == j {
				v += 1
			}
			m.Set(i, j, d*v)
		}
	}
	return m
}

// Chebvand returns the Chebyshev Vandermonde matrix on n equally spaced
// points of [0, 1] (Table III #11): A(i,j) = T_{i−1}(x_j).
func Chebvand(n int) *mat.Matrix {
	m := mat.New(n, n)
	for j := 0; j < n; j++ {
		x := 0.0
		if n > 1 {
			x = float64(j) / float64(n-1)
		}
		tm2, tm1 := 1.0, x
		for i := 0; i < n; i++ {
			var t float64
			switch i {
			case 0:
				t = 1
			case 1:
				t = x
			default:
				t = 2*x*tm1 - tm2
				tm2, tm1 = tm1, t
			}
			m.Set(i, j, t)
		}
	}
	return m
}

// Invhess returns the matrix whose inverse is upper Hessenberg (Table III
// #12), following gallery('invhess', 1:n): A(i,j) = j+1 for i ≥ j and
// A(i,j) = −(i+1) for i < j (0-based).
func Invhess(n int) *mat.Matrix {
	m := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i >= j {
				m.Set(i, j, float64(j+1))
			} else {
				m.Set(i, j, -float64(i+1))
			}
		}
	}
	return m
}

// Prolate returns the ill-conditioned symmetric Toeplitz prolate matrix with
// bandwidth parameter w = 0.25 (Table III #13): a₀ = 2w,
// a_k = sin(2πwk)/(πk).
func Prolate(n int) *mat.Matrix {
	const w = 0.25
	a := make([]float64, n)
	a[0] = 2 * w
	for k := 1; k < n; k++ {
		a[k] = math.Sin(2*math.Pi*w*float64(k)) / (math.Pi * float64(k))
	}
	m := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d := i - j
			if d < 0 {
				d = -d
			}
			m.Set(i, j, a[d])
		}
	}
	return m
}

// Cauchy returns the Cauchy matrix A(i,j) = 1/(x_i + y_j) with x = y = 1..n
// (Table III #14).
func Cauchy(n int) *mat.Matrix {
	m := mat.New(n, n)
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			m.Set(i-1, j-1, 1/float64(i+j))
		}
	}
	return m
}

// Hilb returns the Hilbert matrix A(i,j) = 1/(i+j−1) (Table III #15).
func Hilb(n int) *mat.Matrix {
	m := mat.New(n, n)
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			m.Set(i-1, j-1, 1/float64(i+j-1))
		}
	}
	return m
}

// Lotkin returns the Hilbert matrix with its first row set to ones
// (Table III #16): unsymmetric, ill-conditioned.
func Lotkin(n int) *mat.Matrix {
	m := Hilb(n)
	for j := 0; j < n; j++ {
		m.Set(0, j, 1)
	}
	return m
}

// Kahan returns Kahan's upper triangular matrix with θ = 1.2 (Table III
// #17): A(i,i) = s^i, A(i,j) = −c·s^i for j > i (0-based), s = sin θ,
// c = cos θ.
func Kahan(n int) *mat.Matrix {
	const theta = 1.2
	s, c := math.Sin(theta), math.Cos(theta)
	m := mat.New(n, n)
	for i := 0; i < n; i++ {
		si := math.Pow(s, float64(i))
		m.Set(i, i, si)
		for j := i + 1; j < n; j++ {
			m.Set(i, j, -c*si)
		}
	}
	return m
}

// Orthogo returns the symmetric orthogonal eigenvector matrix
// A(i,j) = sqrt(2/(n+1))·sin(i·j·π/(n+1)) (Table III #18).
func Orthogo(n int) *mat.Matrix {
	m := mat.New(n, n)
	f := math.Sqrt(2 / float64(n+1))
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			m.Set(i-1, j-1, f*math.Sin(float64(i)*float64(j)*math.Pi/float64(n+1)))
		}
	}
	return m
}

// Wilkinson returns the classical matrix attaining the 2^{n−1} growth bound
// of Gaussian elimination with partial pivoting (Table III #19):
// ones on the diagonal and in the last column, −1 below the diagonal.
func Wilkinson(n int) *mat.Matrix {
	m := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			switch {
			case i == j || j == n-1:
				m.Set(i, j, 1)
			case i > j:
				m.Set(i, j, -1)
			}
		}
	}
	return m
}

// Foster returns a matrix of the family in Foster (1994), "Gaussian
// elimination with partial pivoting can fail in practice" (Table III #20):
// the trapezoid-rule quadrature discretization of a Volterra integral
// equation (Foster's application is an annuity/loan equation) whose
// right-hand side couples the unknown terminal value into every equation:
//
//	A(i,j) = δ_ij − c·h·w_j  (j ≤ i < n−1; w = ½ at the interval ends, 1
//	                          inside — the composite trapezoid weights)
//	A(i,n−1) = 1             (the terminal-value coupling column)
//
// With c·h = 0.5 the diagonal (1 − c·h/2) dominates its column, so partial
// pivoting performs no row interchanges, while the negative multipliers
// −c·h/(1 − c·h/2) make the final column grow geometrically by a factor
// (1 + c·h/(1 − c·h/2)) = 5/3 per step — the GEPP failure mechanism Foster
// identified. Growth ≈ (5/3)^{n−2}.
func Foster(n int) *mat.Matrix {
	const ch = 0.5
	m := mat.Identity(n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i && j < n-1; j++ {
			w := 1.0
			if j == 0 || j == i {
				w = 0.5
			}
			m.Set(i, j, m.At(i, j)-ch*w)
		}
	}
	for i := 0; i < n; i++ {
		m.Set(i, n-1, 1)
	}
	return m
}

// Wright returns the multiple-shooting two-point boundary value matrix of
// Wright (1993) (Table III #21): block bidiagonal with identity diagonal
// blocks, subdiagonal blocks −E = −e^{Mh}, and the boundary-condition block
// row [B₀ 0 … 0 B₁] on top, with
//
//	M = [−1/6 1; 1 −1/6],  h = 0.3,
//	B₀ = I (initial values),  B₁ = ½[1 1; 1 1] (the growing-mode projector,
//	anchoring the unstable direction at t = T).
//
// These boundary blocks keep the matrix well conditioned at every size (a
// QR solve reaches forward errors ~1e−14 at n = 640 while the GEPP-based
// condition estimate overflows — the point of the example). With h < 1/3
// every entry of E is below 1, so partial pivoting performs no row
// interchanges (every pivot is the unit diagonal), while the last block
// column of U accumulates the products E·B₁, E²·B₁, …, whose norm grows
// like e^{5mh/6} — Wright's exponential-growth mechanism. n must be even
// (one extra unit row and column are appended when it is odd).
func Wright(n int) *mat.Matrix {
	m := mat.New(n, n)
	nb2 := n / 2 // number of 2×2 block rows that fit
	if nb2 < 2 {
		return mat.Identity(n)
	}
	// E = e^{Mh} for symmetric M with eigenpairs (λ = −1/6+1, v = [1,1]/√2)
	// and (λ = −1/6−1, v = [1,−1]/√2): E = e^{−h/6}·[cosh h, sinh h; …].
	const h = 0.3
	ea := math.Exp(-h/6) * math.Cosh(h) // diagonal of E (< 1 for h < 1/3)
	eb := math.Exp(-h/6) * math.Sinh(h) // off-diagonal of E
	set2 := func(bi, bj int, a, b, c, d float64) {
		m.Set(2*bi, 2*bj, a)
		m.Set(2*bi, 2*bj+1, b)
		m.Set(2*bi+1, 2*bj, c)
		m.Set(2*bi+1, 2*bj+1, d)
	}
	// Boundary block row: B₀·x₀ + B₁·x_m = c.
	set2(0, 0, 1, 0, 0, 1)
	set2(0, nb2-1, 0.5, 0.5, 0.5, 0.5)
	// Shooting rows: −E·x_i + x_{i+1} = d_i for i = 0..nb2−2.
	for i := 0; i < nb2-1; i++ {
		set2(i+1, i, -ea, -eb, -eb, -ea)
		set2(i+1, i+1, 1, 0, 0, 1)
	}
	if n%2 == 1 { // pad the odd trailing dimension
		m.Set(n-1, n-1, 1)
	}
	return m
}

// Fiedler returns the Fiedler matrix A(i,j) = |i − j| (§V-C): symmetric,
// nonsingular for n ≥ 2, with a zero diagonal — LU without pivoting breaks
// down on it immediately, which is the paper's §V-C observation.
func Fiedler(n int) *mat.Matrix {
	m := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d := i - j
			if d < 0 {
				d = -d
			}
			m.Set(i, j, float64(d))
		}
	}
	return m
}
