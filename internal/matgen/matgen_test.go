package matgen

import (
	"math"
	"math/rand"
	"testing"

	"luqr/internal/blas"
	"luqr/internal/lapack"
	"luqr/internal/mat"
)

func orthoError(q *mat.Matrix) float64 {
	n := q.Rows
	qtq := mat.New(n, n)
	blas.Gemm(blas.Trans, blas.NoTrans, 1, q, q, 0, qtq)
	return mat.MaxDiff(qtq, mat.Identity(n))
}

func isSymmetric(a *mat.Matrix, tol float64) bool {
	for i := 0; i < a.Rows; i++ {
		for j := i + 1; j < a.Cols; j++ {
			if math.Abs(a.At(i, j)-a.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// geppGrowth returns max|U| / max|A| for LU with partial pivoting.
func geppGrowth(a *mat.Matrix) float64 {
	lu := a.Clone()
	if _, err := lapack.Getrf(lu); err != nil {
		return math.Inf(1)
	}
	maxU := 0.0
	for i := 0; i < lu.Rows; i++ {
		for j := i; j < lu.Cols; j++ {
			if v := math.Abs(lu.At(i, j)); v > maxU {
				maxU = v
			}
		}
	}
	return maxU / a.NormMax()
}

func TestHouseOrthogonalSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := House(20, rng)
	if e := orthoError(a); e > 1e-12 {
		t.Fatalf("house not orthogonal: %g", e)
	}
	if !isSymmetric(a, 1e-14) {
		t.Fatal("house not symmetric")
	}
}

func TestParterValues(t *testing.T) {
	a := Parter(5)
	if a.At(0, 0) != 2 { // 1/0.5
		t.Fatalf("parter(0,0) = %g", a.At(0, 0))
	}
	if a.At(2, 0) != 1/2.5 {
		t.Fatalf("parter(2,0) = %g", a.At(2, 0))
	}
	// Toeplitz: constant diagonals.
	for i := 1; i < 5; i++ {
		if a.At(i, i) != a.At(0, 0) {
			t.Fatal("parter not Toeplitz")
		}
	}
}

func TestRisSymmetryStructure(t *testing.T) {
	a := Ris(6)
	// Ris is persymmetric Hankel-like: constant along anti-diagonals.
	for i := 0; i < 5; i++ {
		if a.At(i, 3) != a.At(i+1, 2) {
			t.Fatal("ris not constant on anti-diagonals")
		}
	}
}

func TestCondexEmbedsBlock(t *testing.T) {
	a := Condex(8)
	if a.At(0, 2) != -200 || a.At(3, 3) != 100 {
		t.Fatal("condex block wrong")
	}
	for i := 4; i < 8; i++ {
		if a.At(i, i) != 1 {
			t.Fatal("condex identity tail wrong")
		}
	}
}

func TestCirculStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := Circul(7, rng)
	for i := 1; i < 7; i++ {
		for j := 0; j < 7; j++ {
			if a.At(i, j) != a.At(i-1, ((j-1)%7+7)%7) {
				t.Fatal("circul rows are not cyclic shifts")
			}
		}
	}
}

func TestHankelAntiDiagonals(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := Hankel(6, rng)
	for i := 0; i < 5; i++ {
		for j := 1; j < 6; j++ {
			if a.At(i, j) != a.At(i+1, j-1) {
				t.Fatal("hankel not constant on anti-diagonals")
			}
		}
	}
}

func TestCompanStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := Compan(6, rng)
	for i := 1; i < 6; i++ {
		for j := 0; j < 6; j++ {
			want := 0.0
			if j == i-1 {
				want = 1
			}
			if a.At(i, j) != want {
				t.Fatal("compan sub-identity structure wrong")
			}
		}
	}
}

func TestLehmerSPDAndInverseTridiagonal(t *testing.T) {
	a := Lehmer(10)
	if !isSymmetric(a, 0) {
		t.Fatal("lehmer not symmetric")
	}
	if a.At(2, 6) != 3.0/7.0 {
		t.Fatalf("lehmer value wrong: %g", a.At(2, 6))
	}
	inv, err := lapack.Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			if j > i+1 || j < i-1 {
				if math.Abs(inv.At(i, j)) > 1e-10 {
					t.Fatalf("lehmer inverse not tridiagonal at (%d,%d): %g", i, j, inv.At(i, j))
				}
			}
		}
	}
}

func TestDorrTridiagonalDominant(t *testing.T) {
	a := Dorr(20)
	for i := 0; i < 20; i++ {
		off := 0.0
		for j := 0; j < 20; j++ {
			if j > i+1 || j < i-1 {
				if a.At(i, j) != 0 {
					t.Fatal("dorr not tridiagonal")
				}
			} else if j != i {
				off += math.Abs(a.At(i, j))
			}
		}
		if math.Abs(a.At(i, i)) < off-1e-9 {
			t.Fatalf("dorr row %d not diagonally dominant", i)
		}
	}
}

func TestDemmelGraded(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := Demmel(10, rng)
	if math.Abs(a.At(0, 0)-1) > 1e-5 {
		t.Fatalf("demmel(0,0) = %g", a.At(0, 0))
	}
	if a.At(9, 9) < 1e12 {
		t.Fatalf("demmel last diagonal too small: %g", a.At(9, 9))
	}
}

func TestChebvandRecurrence(t *testing.T) {
	a := Chebvand(8)
	for j := 0; j < 8; j++ {
		x := float64(j) / 7
		if a.At(0, j) != 1 {
			t.Fatal("chebvand row 0 must be ones")
		}
		if math.Abs(a.At(1, j)-x) > 1e-15 {
			t.Fatal("chebvand row 1 must be x")
		}
		for i := 2; i < 8; i++ {
			if math.Abs(a.At(i, j)-(2*x*a.At(i-1, j)-a.At(i-2, j))) > 1e-12 {
				t.Fatal("chebvand recurrence violated")
			}
		}
	}
}

func TestInvhessInverseIsHessenberg(t *testing.T) {
	a := Invhess(9)
	inv, err := lapack.Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	scale := inv.NormMax()
	for i := 0; i < 9; i++ {
		for j := 0; j < i-1; j++ {
			if math.Abs(inv.At(i, j)) > 1e-12*scale {
				t.Fatalf("inverse not upper Hessenberg at (%d,%d): %g", i, j, inv.At(i, j))
			}
		}
	}
}

func TestProlateSymmetricToeplitz(t *testing.T) {
	a := Prolate(12)
	if !isSymmetric(a, 0) {
		t.Fatal("prolate not symmetric")
	}
	if a.At(0, 0) != 0.5 {
		t.Fatalf("prolate diagonal = %g, want 2w = 0.5", a.At(0, 0))
	}
	for i := 1; i < 12; i++ {
		if a.At(i, i) != a.At(0, 0) || a.At(i, i-1) != a.At(1, 0) {
			t.Fatal("prolate not Toeplitz")
		}
	}
}

func TestCauchyHilbLotkinValues(t *testing.T) {
	c := Cauchy(4)
	if c.At(0, 0) != 0.5 || c.At(3, 3) != 1.0/8 {
		t.Fatal("cauchy values wrong")
	}
	h := Hilb(4)
	if h.At(0, 0) != 1 || h.At(3, 3) != 1.0/7 || h.At(1, 2) != 0.25 {
		t.Fatal("hilb values wrong")
	}
	l := Lotkin(4)
	for j := 0; j < 4; j++ {
		if l.At(0, j) != 1 {
			t.Fatal("lotkin first row must be ones")
		}
	}
	if l.At(1, 1) != h.At(1, 1) {
		t.Fatal("lotkin body must match hilb")
	}
}

func TestKahanUpperTriangular(t *testing.T) {
	a := Kahan(10)
	s := math.Sin(1.2)
	for i := 0; i < 10; i++ {
		if math.Abs(a.At(i, i)-math.Pow(s, float64(i))) > 1e-14 {
			t.Fatal("kahan diagonal wrong")
		}
		for j := 0; j < i; j++ {
			if a.At(i, j) != 0 {
				t.Fatal("kahan not upper triangular")
			}
		}
	}
}

func TestOrthogoOrthogonal(t *testing.T) {
	a := Orthogo(16)
	if e := orthoError(a); e > 1e-12 {
		t.Fatalf("orthogo not orthogonal: %g", e)
	}
	if !isSymmetric(a, 1e-14) {
		t.Fatal("orthogo not symmetric")
	}
}

func TestWilkinsonAttainsGrowthBound(t *testing.T) {
	n := 24
	a := Wilkinson(n)
	g := geppGrowth(a)
	want := math.Pow(2, float64(n-1))
	if math.Abs(g-want)/want > 1e-9 {
		t.Fatalf("wilkinson growth = %g, want 2^%d = %g", g, n-1, want)
	}
}

func TestFosterTriggersLargeGrowth(t *testing.T) {
	a := Foster(40)
	// Lower triangular apart from the terminal coupling column.
	for i := 0; i < 40; i++ {
		for j := i + 1; j < 39; j++ {
			if a.At(i, j) != 0 {
				t.Fatal("foster interior not lower triangular")
			}
		}
		if a.At(i, 39) != 1 {
			t.Fatal("foster terminal column must be ones")
		}
	}
	if g := geppGrowth(a); g < 1e6 {
		t.Fatalf("foster GEPP growth only %g; want exponential", g)
	}
	// The growth mechanism requires that GEPP performs no interchanges.
	lu := a.Clone()
	piv, err := lapack.Getrf(lu)
	if err != nil {
		t.Fatal(err)
	}
	for k, p := range piv {
		if p != k {
			t.Fatalf("foster: GEPP swapped rows at step %d", k)
		}
	}
}

func TestWrightGrowthAndStructure(t *testing.T) {
	a := Wright(80)
	// Subdiagonal blocks are −e^{Mh} with h = 0.3: check one entry.
	ea := math.Exp(-0.05) * math.Cosh(0.3)
	if math.Abs(a.At(2, 0)-(-ea)) > 1e-12 {
		t.Fatalf("wright subdiagonal block wrong: %g", a.At(2, 0))
	}
	if g := geppGrowth(a); g < 1e3 {
		t.Fatalf("wright GEPP growth only %g; want exponential", g)
	}
	// Growth must be exponential in n: n=80 much larger than n=40.
	if g40, g80 := geppGrowth(Wright(40)), geppGrowth(Wright(80)); g80 < 10*g40 {
		t.Fatalf("wright growth not exponential: g(40)=%g g(80)=%g", g40, g80)
	}
}

func TestFiedlerZeroDiagonalNonsingular(t *testing.T) {
	a := Fiedler(12)
	for i := 0; i < 12; i++ {
		if a.At(i, i) != 0 {
			t.Fatal("fiedler diagonal must be zero")
		}
	}
	if !isSymmetric(a, 0) {
		t.Fatal("fiedler not symmetric")
	}
	if _, err := lapack.Inverse(a); err != nil {
		t.Fatalf("fiedler should be nonsingular: %v", err)
	}
	// LU without pivoting must break down instantly (§V-C).
	lu := a.Clone()
	if err := lapack.GetrfNoPiv(lu); err == nil {
		t.Fatal("GetrfNoPiv on fiedler should report a zero pivot")
	}
}

func TestDiagDominantProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := DiagDominant(30, rng)
	for i := 0; i < 30; i++ {
		s := 0.0
		for j := 0; j < 30; j++ {
			if j != i {
				s += math.Abs(a.At(i, j))
			}
		}
		if a.At(i, i) <= s {
			t.Fatalf("row %d not strictly dominant", i)
		}
	}
}

func TestRandomSeeded(t *testing.T) {
	a := Random(10, rand.New(rand.NewSource(42)))
	b := Random(10, rand.New(rand.NewSource(42)))
	if !mat.Equal(a, b) {
		t.Fatal("Random not reproducible for equal seeds")
	}
	c := Random(10, rand.New(rand.NewSource(43)))
	if mat.Equal(a, c) {
		t.Fatal("Random identical across different seeds")
	}
}

func TestSpecialSetComplete(t *testing.T) {
	set := SpecialSet()
	if len(set) != 22 { // Table III's 21 + fiedler
		t.Fatalf("special set has %d entries, want 22", len(set))
	}
	rng := rand.New(rand.NewSource(7))
	for _, e := range set {
		a := e.Gen(16, rng)
		if a.Rows != 16 || a.Cols != 16 {
			t.Fatalf("%s: wrong shape %dx%d", e.Name, a.Rows, a.Cols)
		}
		if !a.IsFinite() {
			t.Fatalf("%s: non-finite entries", e.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("hilb"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("random"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("diagdom"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown name")
	}
}
