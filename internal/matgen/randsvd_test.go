package matgen

import (
	"math"
	"math/rand"
	"testing"

	"luqr/internal/blas"
	"luqr/internal/lapack"
	"luqr/internal/mat"
)

func TestHaarOrthogonal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := HaarOrthogonal(24, rng)
	qtq := mat.New(24, 24)
	blas.Gemm(blas.Trans, blas.NoTrans, 1, q, q, 0, qtq)
	if d := mat.MaxDiff(qtq, mat.Identity(24)); d > 1e-12 {
		t.Fatalf("QᵀQ deviates from I by %g", d)
	}
	// Haar invariance sanity: two draws differ.
	q2 := HaarOrthogonal(24, rng)
	if mat.Equal(q, q2) {
		t.Fatal("two Haar draws identical")
	}
}

// spectralNorms estimates σ_max and σ_min by power iteration on A·Aᵀ and on
// (A·Aᵀ)⁻¹ through LU solves.
func spectralNorms(t *testing.T, a *mat.Matrix) (smax, smin float64) {
	t.Helper()
	n := a.Rows
	rng := rand.New(rand.NewSource(99))
	mul := func(x []float64) []float64 {
		return mat.MulVec(a, x)
	}
	mulT := func(x []float64) []float64 {
		return mat.MulVec(a.T(), x)
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for it := 0; it < 200; it++ {
		x = mulT(mul(x))
		s := 1 / mat.VecNorm2(x)
		blas.Scal(s, x)
	}
	smax = mat.VecNorm2(mul(x))

	lu := a.Clone()
	piv, err := lapack.Getrf(lu)
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, n)
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	for it := 0; it < 200; it++ {
		lapack.GetrsVec(blas.NoTrans, lu, piv, y)
		lapack.GetrsVec(blas.Trans, lu, piv, y)
		s := 1 / mat.VecNorm2(y)
		blas.Scal(s, y)
	}
	z := append([]float64(nil), y...)
	lapack.GetrsVec(blas.NoTrans, lu, piv, z)
	smin = 1 / mat.VecNorm2(z)
	return smax, smin
}

func TestRandSVDConditionNumber(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, mode := range []SigmaMode{SigmaOneLarge, SigmaOneSmall, SigmaGeometric, SigmaArithmetic} {
		for _, kappa := range []float64{1, 100, 1e6} {
			a := RandSVD(32, kappa, mode, rng)
			smax, smin := spectralNorms(t, a)
			got := smax / smin
			if math.Abs(math.Log10(got)-math.Log10(kappa)) > 0.3 {
				t.Errorf("mode %d kappa %g: measured κ₂ = %g", mode, kappa, got)
			}
			if math.Abs(smax-1) > 0.05 {
				t.Errorf("mode %d kappa %g: σ_max = %g, want 1", mode, kappa, smax)
			}
		}
	}
}

func TestRandSVDPanicsOnBadKappa(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RandSVD(8, 0.5, SigmaGeometric, rand.New(rand.NewSource(1)))
}
