package matgen

import (
	"fmt"
	"math/rand"

	"luqr/internal/mat"
)

// Generator produces an n×n matrix. Deterministic generators ignore rng.
type Generator func(n int, rng *rand.Rand) *mat.Matrix

// Entry describes one matrix of the experiment set.
type Entry struct {
	Name string
	Desc string
	Gen  Generator
}

// SpecialSet returns the special matrices of Table III in the paper's order,
// followed by the Fiedler matrix of §V-C.
func SpecialSet() []Entry {
	wrap := func(f func(int) *mat.Matrix) Generator {
		return func(n int, _ *rand.Rand) *mat.Matrix { return f(n) }
	}
	return []Entry{
		{"house", "Householder matrix, A = I − β·v·vᵀ", House},
		{"parter", "Parter Toeplitz matrix, A(i,j) = 1/(i−j+0.5)", wrap(Parter)},
		{"ris", "Ris matrix, A(i,j) = 0.5/(n−i−j+1.5)", wrap(Ris)},
		{"condex", "counter-example to condition estimators", wrap(Condex)},
		{"circul", "circulant matrix", Circul},
		{"hankel", "random Hankel matrix", Hankel},
		{"compan", "companion matrix of a random polynomial (sparse)", Compan},
		{"lehmer", "Lehmer SPD matrix, A(i,j) = i/j for j ≥ i", wrap(Lehmer)},
		{"dorr", "Dorr diagonally dominant ill-conditioned tridiagonal (sparse)", wrap(Dorr)},
		{"demmel", "D·(I + 1e−7·rand), D = diag(10^{14(i−1)/n})", Demmel},
		{"chebvand", "Chebyshev Vandermonde on equispaced points of [0,1]", wrap(Chebvand)},
		{"invhess", "inverse is upper Hessenberg", wrap(Invhess)},
		{"prolate", "ill-conditioned Toeplitz prolate matrix", wrap(Prolate)},
		{"cauchy", "Cauchy matrix", wrap(Cauchy)},
		{"hilb", "Hilbert matrix, A(i,j) = 1/(i+j−1)", wrap(Hilb)},
		{"lotkin", "Hilbert matrix with first row set to ones", wrap(Lotkin)},
		{"kahan", "Kahan upper trapezoidal matrix", wrap(Kahan)},
		{"orthogo", "symmetric orthogonal eigenvector matrix", wrap(Orthogo)},
		{"wilkinson", "attains the 2^{n−1} GEPP growth bound", wrap(Wilkinson)},
		{"foster", "Volterra quadrature matrix of Foster (1994)", wrap(Foster)},
		{"wright", "multiple-shooting BVP matrix of Wright (1993)", wrap(Wright)},
		{"fiedler", "Fiedler matrix |i−j| (zero diagonal; §V-C)", wrap(Fiedler)},
	}
}

// ByName returns the special-set generator with the given name.
func ByName(name string) (Entry, error) {
	for _, e := range SpecialSet() {
		if e.Name == name {
			return e, nil
		}
	}
	if name == "random" {
		return Entry{"random", "i.i.d. N(0,1) entries", Random}, nil
	}
	if name == "diagdom" {
		return Entry{"diagdom", "strictly diagonally dominant random", DiagDominant}, nil
	}
	return Entry{}, fmt.Errorf("matgen: unknown matrix %q", name)
}
