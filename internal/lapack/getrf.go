// Package lapack implements the LAPACK-style computational kernels the tiled
// LU-QR solver is built from: LU with partial pivoting (GETRF/LASWP/GETRS),
// the blocked-Householder QR tile kernels of the tiled-QR literature
// (GEQRT, UNMQR, TSQRT, TSMQR, TTQRT, TTMQR), triangular solves, and the
// Hager–Higham 1-norm inverse estimator used by the robustness criteria.
//
// All kernels operate on row-major mat.Matrix values and are pure Go; they
// mirror the reference LAPACK/PLASMA semantics (including in-place factor
// storage) so that the algorithm layer reads like the paper's pseudo-code.
package lapack

import (
	"errors"
	"fmt"
	"math"

	"luqr/internal/blas"
	"luqr/internal/mat"
)

// ErrSingular is returned when an exactly zero pivot makes an LU
// factorization break down. Mirrors LAPACK's info > 0 convention.
var ErrSingular = errors.New("lapack: exactly singular matrix (zero pivot)")

// getrfLeaf is the recursion leaf width of Getrf: below this the classical
// unblocked elimination runs. Small enough that the O(m·leaf²) scalar work
// is a sliver of the total; the rest of the flops land in TRSM/GEMM.
const getrfLeaf = 8

// Getrf computes an LU factorization with partial (row) pivoting of an m×n
// matrix (m ≥ n): P·A = L·U. On return, the strictly lower trapezoid of a
// holds the multipliers of L (unit diagonal implicit) and the upper triangle
// holds U. piv[k] = r records that rows k and r were swapped at step k
// (LAPACK ipiv convention, 0-based). The returned error is ErrSingular when
// a zero pivot was hit; the factorization still completes with the zero
// pivot left in place, as in LAPACK.
//
// The factorization is recursive right-looking (Toledo's scheme): the
// column block is split in half, the left half factored recursively, the
// right half updated with one TRSM and one GEMM, then factored recursively
// in turn. All but O(n·m·leaf) of the work runs through the packed GEMM
// path, at every level of the recursion — unlike a fixed-width panel
// scheme, whose rank-leaf updates cap the panel itself at scalar speed.
func Getrf(a *mat.Matrix) (piv []int, err error) {
	m, n := a.Rows, a.Cols
	if m < n {
		panic(fmt.Sprintf("lapack: Getrf requires m >= n, got %dx%d", m, n))
	}
	piv = make([]int, n)
	return piv, getrfRecursive(a, piv)
}

// getrfRecursive factors a in place, writing local (0-based within a) pivot
// indices into piv. The pivot sequence is identical to the classical
// right-looking elimination's: the same column maxima are compared at the
// same steps, only the order of the floating-point updates differs.
func getrfRecursive(a *mat.Matrix, piv []int) (err error) {
	m, n := a.Rows, a.Cols
	if n <= getrfLeaf {
		return getrfUnblocked(a, piv)
	}
	n1 := n / 2
	if e := getrfRecursive(a.View(0, 0, m, n1), piv[:n1]); e != nil {
		err = e
	}
	// Pull the left half's interchanges across the right half, solve for
	// U12, and apply the Schur update — then the bottom-right is an
	// independent LU problem.
	Laswp(a.View(0, n1, m, n-n1), piv[:n1], false)
	u12 := a.View(0, n1, n1, n-n1)
	blas.Trsm(blas.Left, blas.Lower, blas.NoTrans, blas.Unit, 1, a.View(0, 0, n1, n1), u12)
	blas.Gemm(blas.NoTrans, blas.NoTrans, -1, a.View(n1, 0, m-n1, n1), u12, 1, a.View(n1, n1, m-n1, n-n1))
	if e := getrfRecursive(a.View(n1, n1, m-n1, n-n1), piv[n1:]); e != nil {
		err = e
	}
	// Translate the right half's pivots to rows of a and pull its
	// interchanges back across the left columns.
	for j := n1; j < n; j++ {
		piv[j] += n1
		if piv[j] != j {
			r1, r2 := a.Row(j), a.Row(piv[j])
			for c := 0; c < n1; c++ {
				r1[c], r2[c] = r2[c], r1[c]
			}
		}
	}
	return err
}

// getrfUnblocked is the classical right-looking elimination with partial
// pivoting, writing local (0-based within a) pivot indices into piv. It is
// the recursion leaf, called once per narrow column strip but walking every
// row — so it indexes the backing array directly instead of going through
// the accessor methods.
func getrfUnblocked(a *mat.Matrix, piv []int) (err error) {
	m, n := a.Rows, a.Cols
	d, ld := a.Data, a.Stride
	// The pivot of column k+1 is found during column k's update loop (which
	// visits exactly the rows the search needs, with the final values), so
	// each column pays one pass over its rows instead of two. Only column 0
	// needs a dedicated strided search.
	p, pv := 0, math.Abs(d[0])
	for i := 1; i < m; i++ {
		if v := math.Abs(d[i*ld]); v > pv {
			p, pv = i, v
		}
	}
	for k := 0; k < n; k++ {
		piv[k] = p
		if p != k {
			rk := d[k*ld : k*ld+n]
			rp := d[p*ld : p*ld+n]
			for c, v := range rk {
				rk[c], rp[c] = rp[c], v
			}
		}
		akk := d[k*ld+k]
		last := k+1 == n
		if akk == 0 {
			err = ErrSingular
			if !last {
				// No update ran; search column k+1 the slow way.
				p, pv = k+1, math.Abs(d[(k+1)*ld+k+1])
				for i := k + 2; i < m; i++ {
					if v := math.Abs(d[i*ld+k+1]); v > pv {
						p, pv = i, v
					}
				}
			}
			continue
		}
		inv := 1 / akk
		// Scale multipliers and update the trailing submatrix row-wise,
		// tracking the max of the just-updated column k+1 as we go.
		rowk := d[k*ld+k+1 : k*ld+n]
		pv = -1
		for i := k + 1; i < m; i++ {
			off := i * ld
			lik := d[off+k] * inv
			d[off+k] = lik
			rowi := d[off+k+1 : off+n]
			if lik != 0 {
				for j, v := range rowk {
					rowi[j] -= lik * v
				}
			}
			if !last {
				if v := math.Abs(rowi[0]); v > pv {
					p, pv = i, v
				}
			}
		}
	}
	return err
}

// GetrfNoPiv computes A = L·U without any pivoting (the LU NoPiv baseline's
// elimination). It breaks down (ErrSingular) on a zero diagonal element;
// the factorization continues past the breakdown exactly as Getrf does.
// Like Getrf it is recursive, so the bulk of the flops are TRSM/GEMM.
func GetrfNoPiv(a *mat.Matrix) error {
	m, n := a.Rows, a.Cols
	if m < n {
		panic(fmt.Sprintf("lapack: GetrfNoPiv requires m >= n, got %dx%d", m, n))
	}
	if n <= getrfLeaf {
		return getrfNoPivUnblocked(a)
	}
	var err error
	n1 := n / 2
	if e := GetrfNoPiv(a.View(0, 0, m, n1)); e != nil {
		err = e
	}
	u12 := a.View(0, n1, n1, n-n1)
	blas.Trsm(blas.Left, blas.Lower, blas.NoTrans, blas.Unit, 1, a.View(0, 0, n1, n1), u12)
	blas.Gemm(blas.NoTrans, blas.NoTrans, -1, a.View(n1, 0, m-n1, n1), u12, 1, a.View(n1, n1, m-n1, n-n1))
	if e := GetrfNoPiv(a.View(n1, n1, m-n1, n-n1)); e != nil {
		err = e
	}
	return err
}

// getrfNoPivUnblocked is the classical no-pivoting elimination leaf,
// indexing the backing array directly like getrfUnblocked.
func getrfNoPivUnblocked(a *mat.Matrix) error {
	m, n := a.Rows, a.Cols
	d, ld := a.Data, a.Stride
	var err error
	for k := 0; k < n; k++ {
		akk := d[k*ld+k]
		if akk == 0 {
			err = ErrSingular
			continue
		}
		inv := 1 / akk
		rowk := d[k*ld+k+1 : k*ld+n]
		for i := k + 1; i < m; i++ {
			off := i * ld
			lik := d[off+k] * inv
			d[off+k] = lik
			if lik == 0 {
				continue
			}
			rowi := d[off+k+1 : off+n]
			for j, v := range rowk {
				rowi[j] -= lik * v
			}
		}
	}
	return err
}

// Laswp applies the row interchanges recorded by Getrf to a, forward
// (inverse == false: b := P·b, the order Getrf performed them) or backward
// (inverse == true: b := Pᵀ·b).
func Laswp(a *mat.Matrix, piv []int, inverse bool) {
	if !inverse {
		for k := 0; k < len(piv); k++ {
			if piv[k] != k {
				a.SwapRows(k, piv[k])
			}
		}
		return
	}
	for k := len(piv) - 1; k >= 0; k-- {
		if piv[k] != k {
			a.SwapRows(k, piv[k])
		}
	}
}

// LaswpCols applies the row interchanges recorded by Getrf to the columns
// of a: forward computes a := a·Pᵀ and inverse computes a := a·P, where P is
// the permutation with P·x = Laswp-forward(x). Used by the block-LU variant
// (B1), whose Eliminate step is A_ik ← A_ik·A_kk⁻¹ = A_ik·U⁻¹·L⁻¹·P.
func LaswpCols(a *mat.Matrix, piv []int, inverse bool) {
	swapCols := func(c1, c2 int) {
		if c1 == c2 {
			return
		}
		for i := 0; i < a.Rows; i++ {
			row := a.Row(i)
			row[c1], row[c2] = row[c2], row[c1]
		}
	}
	// P = T_{n−1}···T_0 (Laswp applies T_0 first). Then a·P applies the
	// column transpositions from T_{n−1} down to T_0, and a·Pᵀ = a·T_0···
	// from T_0 up.
	if inverse {
		for k := len(piv) - 1; k >= 0; k-- {
			swapCols(k, piv[k])
		}
		return
	}
	for k := 0; k < len(piv); k++ {
		swapCols(k, piv[k])
	}
}

// LaswpVec applies the interchanges to a vector.
func LaswpVec(x []float64, piv []int, inverse bool) {
	swap := func(i, j int) { x[i], x[j] = x[j], x[i] }
	if !inverse {
		for k := 0; k < len(piv); k++ {
			if piv[k] != k {
				swap(k, piv[k])
			}
		}
		return
	}
	for k := len(piv) - 1; k >= 0; k-- {
		if piv[k] != k {
			swap(k, piv[k])
		}
	}
}

// Getrs solves op(A)·X = B for a square A previously factored by Getrf,
// overwriting b with the solution. For trans == NoTrans it performs
// B ← U⁻¹·L⁻¹·P·B; for Trans, B ← Pᵀ·L⁻ᵀ·U⁻ᵀ·B.
func Getrs(trans blas.Transpose, lu *mat.Matrix, piv []int, b *mat.Matrix) {
	if lu.Rows != lu.Cols {
		panic(fmt.Sprintf("lapack: Getrs needs square LU, got %dx%d", lu.Rows, lu.Cols))
	}
	if b.Rows != lu.Rows {
		panic(fmt.Sprintf("lapack: Getrs shape mismatch LU=%d B=%dx%d", lu.Rows, b.Rows, b.Cols))
	}
	if trans == blas.NoTrans {
		Laswp(b, piv, false)
		blas.Trsm(blas.Left, blas.Lower, blas.NoTrans, blas.Unit, 1, lu, b)
		blas.Trsm(blas.Left, blas.Upper, blas.NoTrans, blas.NonUnit, 1, lu, b)
		return
	}
	blas.Trsm(blas.Left, blas.Upper, blas.Trans, blas.NonUnit, 1, lu, b)
	blas.Trsm(blas.Left, blas.Lower, blas.Trans, blas.Unit, 1, lu, b)
	Laswp(b, piv, true)
}

// GetrsVec is Getrs for a single right-hand side held in a slice.
func GetrsVec(trans blas.Transpose, lu *mat.Matrix, piv []int, x []float64) {
	b := &mat.Matrix{Rows: len(x), Cols: 1, Stride: 1, Data: x}
	Getrs(trans, lu, piv, b)
}

// LUPivotGrowth returns, for a factorization produced by Getrf on a panel
// whose column maxima before factorization were colMax0, the per-column
// pivot magnitudes |U_jj|. It is the raw material of the MUMPS criterion.
func LUPivotGrowth(lu *mat.Matrix) []float64 {
	n := lu.Cols
	p := make([]float64, n)
	for j := 0; j < n; j++ {
		p[j] = math.Abs(lu.At(j, j))
	}
	return p
}
