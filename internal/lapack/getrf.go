// Package lapack implements the LAPACK-style computational kernels the tiled
// LU-QR solver is built from: LU with partial pivoting (GETRF/LASWP/GETRS),
// the blocked-Householder QR tile kernels of the tiled-QR literature
// (GEQRT, UNMQR, TSQRT, TSMQR, TTQRT, TTMQR), triangular solves, and the
// Hager–Higham 1-norm inverse estimator used by the robustness criteria.
//
// All kernels operate on row-major mat.Matrix values and are pure Go; they
// mirror the reference LAPACK/PLASMA semantics (including in-place factor
// storage) so that the algorithm layer reads like the paper's pseudo-code.
package lapack

import (
	"errors"
	"fmt"
	"math"

	"luqr/internal/blas"
	"luqr/internal/mat"
)

// ErrSingular is returned when an exactly zero pivot makes an LU
// factorization break down. Mirrors LAPACK's info > 0 convention.
var ErrSingular = errors.New("lapack: exactly singular matrix (zero pivot)")

// getrfBlock is the panel width of the blocked Getrf: narrow enough to keep
// the rank-1 panel updates in cache, wide enough that the trailing GEMM
// dominates.
const getrfBlock = 32

// Getrf computes an LU factorization with partial (row) pivoting of an m×n
// matrix (m ≥ n): P·A = L·U. On return, the strictly lower trapezoid of a
// holds the multipliers of L (unit diagonal implicit) and the upper triangle
// holds U. piv[k] = r records that rows k and r were swapped at step k
// (LAPACK ipiv convention, 0-based). The returned error is ErrSingular when
// a zero pivot was hit; the factorization still completes with the zero
// pivot left in place, as in LAPACK.
//
// The factorization is blocked (LAPACK dgetrf style): unblocked panels of
// width getrfBlock, row interchanges applied across the matrix, then a TRSM
// + GEMM trailing update, so most of the work runs at GEMM speed.
func Getrf(a *mat.Matrix) (piv []int, err error) {
	m, n := a.Rows, a.Cols
	if m < n {
		panic(fmt.Sprintf("lapack: Getrf requires m >= n, got %dx%d", m, n))
	}
	piv = make([]int, n)
	if n <= getrfBlock {
		return piv, getrfUnblocked(a, piv)
	}
	for k := 0; k < n; k += getrfBlock {
		jb := getrfBlock
		if k+jb > n {
			jb = n - k
		}
		panel := a.View(k, k, m-k, jb)
		ppiv := make([]int, jb)
		if perr := getrfUnblocked(panel, ppiv); perr != nil {
			err = perr
		}
		// Translate the panel's local pivots to global row indices and
		// apply the interchanges to the columns outside the panel.
		for j := 0; j < jb; j++ {
			piv[k+j] = ppiv[j] + k
			if ppiv[j] == j {
				continue
			}
			r1 := a.Row(k + j)
			r2 := a.Row(k + ppiv[j])
			for c := 0; c < k; c++ {
				r1[c], r2[c] = r2[c], r1[c]
			}
			for c := k + jb; c < n; c++ {
				r1[c], r2[c] = r2[c], r1[c]
			}
		}
		if k+jb < n {
			l11 := a.View(k, k, jb, jb)
			u12 := a.View(k, k+jb, jb, n-k-jb)
			blas.Trsm(blas.Left, blas.Lower, blas.NoTrans, blas.Unit, 1, l11, u12)
			if k+jb < m {
				l21 := a.View(k+jb, k, m-k-jb, jb)
				a22 := a.View(k+jb, k+jb, m-k-jb, n-k-jb)
				blas.Gemm(blas.NoTrans, blas.NoTrans, -1, l21, u12, 1, a22)
			}
		}
	}
	return piv, err
}

// getrfUnblocked is the classical right-looking elimination with partial
// pivoting, writing local (0-based within a) pivot indices into piv.
func getrfUnblocked(a *mat.Matrix, piv []int) (err error) {
	m, n := a.Rows, a.Cols
	for k := 0; k < n; k++ {
		// Pivot search in column k, rows k..m−1.
		p, pv := k, math.Abs(a.At(k, k))
		for i := k + 1; i < m; i++ {
			if v := math.Abs(a.At(i, k)); v > pv {
				p, pv = i, v
			}
		}
		piv[k] = p
		if p != k {
			a.SwapRows(k, p)
		}
		akk := a.At(k, k)
		if akk == 0 {
			err = ErrSingular
			continue
		}
		inv := 1 / akk
		// Scale multipliers and update the trailing submatrix row-wise.
		for i := k + 1; i < m; i++ {
			lik := a.At(i, k) * inv
			a.Set(i, k, lik)
			if lik == 0 {
				continue
			}
			rowi := a.Row(i)
			rowk := a.Row(k)
			for j := k + 1; j < n; j++ {
				rowi[j] -= lik * rowk[j]
			}
		}
	}
	return err
}

// GetrfNoPiv computes A = L·U without any pivoting (the LU NoPiv baseline's
// elimination). It breaks down (ErrSingular) on a zero diagonal element;
// the factorization continues past the breakdown exactly as Getrf does.
func GetrfNoPiv(a *mat.Matrix) error {
	m, n := a.Rows, a.Cols
	if m < n {
		panic(fmt.Sprintf("lapack: GetrfNoPiv requires m >= n, got %dx%d", m, n))
	}
	var err error
	for k := 0; k < n; k++ {
		akk := a.At(k, k)
		if akk == 0 {
			err = ErrSingular
			continue
		}
		inv := 1 / akk
		for i := k + 1; i < m; i++ {
			lik := a.At(i, k) * inv
			a.Set(i, k, lik)
			if lik == 0 {
				continue
			}
			rowi := a.Row(i)
			rowk := a.Row(k)
			for j := k + 1; j < n; j++ {
				rowi[j] -= lik * rowk[j]
			}
		}
	}
	return err
}

// Laswp applies the row interchanges recorded by Getrf to a, forward
// (inverse == false: b := P·b, the order Getrf performed them) or backward
// (inverse == true: b := Pᵀ·b).
func Laswp(a *mat.Matrix, piv []int, inverse bool) {
	if !inverse {
		for k := 0; k < len(piv); k++ {
			if piv[k] != k {
				a.SwapRows(k, piv[k])
			}
		}
		return
	}
	for k := len(piv) - 1; k >= 0; k-- {
		if piv[k] != k {
			a.SwapRows(k, piv[k])
		}
	}
}

// LaswpCols applies the row interchanges recorded by Getrf to the columns
// of a: forward computes a := a·Pᵀ and inverse computes a := a·P, where P is
// the permutation with P·x = Laswp-forward(x). Used by the block-LU variant
// (B1), whose Eliminate step is A_ik ← A_ik·A_kk⁻¹ = A_ik·U⁻¹·L⁻¹·P.
func LaswpCols(a *mat.Matrix, piv []int, inverse bool) {
	swapCols := func(c1, c2 int) {
		if c1 == c2 {
			return
		}
		for i := 0; i < a.Rows; i++ {
			row := a.Row(i)
			row[c1], row[c2] = row[c2], row[c1]
		}
	}
	// P = T_{n−1}···T_0 (Laswp applies T_0 first). Then a·P applies the
	// column transpositions from T_{n−1} down to T_0, and a·Pᵀ = a·T_0···
	// from T_0 up.
	if inverse {
		for k := len(piv) - 1; k >= 0; k-- {
			swapCols(k, piv[k])
		}
		return
	}
	for k := 0; k < len(piv); k++ {
		swapCols(k, piv[k])
	}
}

// LaswpVec applies the interchanges to a vector.
func LaswpVec(x []float64, piv []int, inverse bool) {
	swap := func(i, j int) { x[i], x[j] = x[j], x[i] }
	if !inverse {
		for k := 0; k < len(piv); k++ {
			if piv[k] != k {
				swap(k, piv[k])
			}
		}
		return
	}
	for k := len(piv) - 1; k >= 0; k-- {
		if piv[k] != k {
			swap(k, piv[k])
		}
	}
}

// Getrs solves op(A)·X = B for a square A previously factored by Getrf,
// overwriting b with the solution. For trans == NoTrans it performs
// B ← U⁻¹·L⁻¹·P·B; for Trans, B ← Pᵀ·L⁻ᵀ·U⁻ᵀ·B.
func Getrs(trans blas.Transpose, lu *mat.Matrix, piv []int, b *mat.Matrix) {
	if lu.Rows != lu.Cols {
		panic(fmt.Sprintf("lapack: Getrs needs square LU, got %dx%d", lu.Rows, lu.Cols))
	}
	if b.Rows != lu.Rows {
		panic(fmt.Sprintf("lapack: Getrs shape mismatch LU=%d B=%dx%d", lu.Rows, b.Rows, b.Cols))
	}
	if trans == blas.NoTrans {
		Laswp(b, piv, false)
		blas.Trsm(blas.Left, blas.Lower, blas.NoTrans, blas.Unit, 1, lu, b)
		blas.Trsm(blas.Left, blas.Upper, blas.NoTrans, blas.NonUnit, 1, lu, b)
		return
	}
	blas.Trsm(blas.Left, blas.Upper, blas.Trans, blas.NonUnit, 1, lu, b)
	blas.Trsm(blas.Left, blas.Lower, blas.Trans, blas.Unit, 1, lu, b)
	Laswp(b, piv, true)
}

// GetrsVec is Getrs for a single right-hand side held in a slice.
func GetrsVec(trans blas.Transpose, lu *mat.Matrix, piv []int, x []float64) {
	b := &mat.Matrix{Rows: len(x), Cols: 1, Stride: 1, Data: x}
	Getrs(trans, lu, piv, b)
}

// LUPivotGrowth returns, for a factorization produced by Getrf on a panel
// whose column maxima before factorization were colMax0, the per-column
// pivot magnitudes |U_jj|. It is the raw material of the MUMPS criterion.
func LUPivotGrowth(lu *mat.Matrix) []float64 {
	n := lu.Cols
	p := make([]float64, n)
	for j := 0; j < n; j++ {
		p[j] = math.Abs(lu.At(j, j))
	}
	return p
}
