package lapack

import (
	"math/rand"
	"testing"
	"testing/quick"

	"luqr/internal/blas"
	"luqr/internal/mat"
)

func TestUnmqrRightMatchesTransposedLeft(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][3]int{{4, 4, 3}, {8, 8, 8}, {10, 6, 5}, {1, 1, 2}} {
		m, n, k := dims[0], dims[1], dims[2]
		v := randMat(rng, m, n)
		tt := mat.New(n, n)
		Geqrt(v, tt)
		c := randMat(rng, k, m)
		// c·Q must equal (Qᵀ·cᵀ)ᵀ.
		want := c.T()
		Unmqr(blas.Trans, v, tt, want)
		want = want.T()
		got := c.Clone()
		UnmqrRight(blas.NoTrans, v, tt, got)
		if d := mat.MaxDiff(got, want); d > 1e-11*float64(m) {
			t.Fatalf("dims %v: c·Q differs from (Qᵀcᵀ)ᵀ by %g", dims, d)
		}
		// And the transposed application.
		want2 := c.T()
		Unmqr(blas.NoTrans, v, tt, want2)
		want2 = want2.T()
		got2 := c.Clone()
		UnmqrRight(blas.Trans, v, tt, got2)
		if d := mat.MaxDiff(got2, want2); d > 1e-11*float64(m) {
			t.Fatalf("dims %v: c·Qᵀ differs from (Q·cᵀ)ᵀ by %g", dims, d)
		}
	}
}

func TestUnmqrRightRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(10)
		n := 1 + rng.Intn(m)
		v := randMat(rng, m, n)
		tt := mat.New(n, n)
		Geqrt(v, tt)
		c0 := randMat(rng, 1+rng.Intn(6), m)
		c := c0.Clone()
		UnmqrRight(blas.Trans, v, tt, c)
		UnmqrRight(blas.NoTrans, v, tt, c)
		return mat.MaxDiff(c, c0) < 1e-10*float64(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestUnmqrRightInverse verifies the (B2) Eliminate identity:
// (A·R⁻¹)·Qᵀ == A·(QR)⁻¹.
func TestUnmqrRightInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 8
	akk := randMat(rng, n, n)
	qr := akk.Clone()
	tt := mat.New(n, n)
	Geqrt(qr, tt)
	a := randMat(rng, 5, n)
	// Route 1: X = A·R⁻¹·Qᵀ.
	x1 := a.Clone()
	blas.Trsm(blas.Right, blas.Upper, blas.NoTrans, blas.NonUnit, 1, qr, x1)
	UnmqrRight(blas.Trans, qr, tt, x1)
	// Route 2: X·Akk = A via dense inverse.
	inv, err := Inverse(akk)
	if err != nil {
		t.Fatal(err)
	}
	x2 := mat.New(5, n)
	blas.Gemm(blas.NoTrans, blas.NoTrans, 1, a, inv, 0, x2)
	if d := mat.MaxDiff(x1, x2); d > 1e-9*(1+inv.NormMax()) {
		t.Fatalf("B2 eliminate identity violated: %g", d)
	}
}
