package lapack

import (
	"sync/atomic"

	"luqr/internal/blas"
	"luqr/internal/mat"
)

// panelIBv is the inner block size of the blocked panel kernels (GEQRT,
// TSQRT, TTQRT): reflectors are generated ib columns at a time by the
// unblocked leaf, and everything to the right of the ib-wide strip is
// updated through the block-reflector (GEMM/TRMM) path. Atomic so the
// autotuner can adjust it while worker goroutines are running kernels.
var panelIBv atomic.Int32

const defaultPanelIB = 32

// PanelIB returns the current inner block size used by the blocked panel
// kernels.
func PanelIB() int {
	if v := panelIBv.Load(); v > 0 {
		return int(v)
	}
	return defaultPanelIB
}

// SetPanelIB sets the inner block size of the blocked panel kernels.
// Values < 1 reset to the default. Safe to call concurrently with running
// kernels; each kernel invocation reads the knob once at entry.
func SetPanelIB(ib int) {
	if ib < 1 {
		panelIBv.Store(0)
		return
	}
	panelIBv.Store(int32(ib))
}

// larftMerge extends the compact-WY T factor across an inner-block
// boundary. Given that t's leading j0×j0 block T1 covers reflectors
// 0..j0−1, its [j0,j0+bs) diagonal block T2 covers the freshly factored
// block, and y holds V1ᵀ·V2 (j0×bs, the cross-Gram of the two reflector
// sets), it writes the coupling block of the merged factor:
//
//	T(0:j0, j0:j0+bs) = −T1 · (V1ᵀ·V2) · T2
//
// which is the dlarft recurrence, so the assembled T equals the one the
// unblocked column-by-column construction would produce.
func larftMerge(t *mat.Matrix, j0, bs int, y *mat.Matrix) {
	blas.Trmm(blas.Left, blas.Upper, blas.NoTrans, blas.NonUnit, 1, t.View(0, 0, j0, j0), y)
	blas.Trmm(blas.Right, blas.Upper, blas.NoTrans, blas.NonUnit, 1, t.View(j0, j0, bs, bs), y)
	for i := 0; i < j0; i++ {
		dst := t.Row(i)[j0 : j0+bs]
		src := y.Row(i)
		for c := range dst {
			dst[c] = -src[c]
		}
	}
}

// subRows computes dst −= src row-wise for equally shaped matrices.
func subRows(dst, src *mat.Matrix) {
	for i := 0; i < dst.Rows; i++ {
		d, s := dst.Row(i), src.Row(i)
		for c := range d {
			d[c] -= s[c]
		}
	}
}

// addRows computes dst += src row-wise for equally shaped matrices.
func addRows(dst, src *mat.Matrix) {
	for i := 0; i < dst.Rows; i++ {
		d, s := dst.Row(i), src.Row(i)
		for c := range d {
			d[c] += s[c]
		}
	}
}
