package lapack

import (
	"fmt"

	"luqr/internal/blas"
	"luqr/internal/mat"
)

// Tsqrt (Triangle on top of Square QR) factors the stacked matrix
//
//	[ R ]        R: n×n upper triangular (only its upper triangle is read
//	[ A ]           and written — the strictly lower part may hold V data
//	                from an earlier Geqrt and is preserved)
//	             A: m×n full tile, overwritten with the square block V2 of
//	                the Householder vectors
//
// producing an updated upper triangular R and the block reflector
// Q = I − V·T·Vᵀ with V = [I; V2]. t (n×n) receives T. This is the PLASMA
// TSQRT kernel with ib = n. Updates run row-wise over A for the row-major
// layout.
func Tsqrt(r, a, t *mat.Matrix) {
	n := r.Cols
	m := a.Rows
	if r.Rows != n {
		panic(fmt.Sprintf("lapack: Tsqrt needs square R, got %dx%d", r.Rows, r.Cols))
	}
	if a.Cols != n {
		panic(fmt.Sprintf("lapack: Tsqrt A cols %d != R order %d", a.Cols, n))
	}
	if t.Rows < n || t.Cols < n {
		panic(fmt.Sprintf("lapack: Tsqrt T too small: %dx%d", t.Rows, t.Cols))
	}
	t.Zero()
	buf := mat.GetBuf(m + n)
	defer mat.PutBuf(buf)
	x := buf.Data[:m]
	w := buf.Data[m:]
	for j := 0; j < n; j++ {
		// Reflector from (R[j,j]; A[:, j]): the rows of R below j are
		// structurally zero in the stacked panel, so the vector part lives
		// entirely in A's column j.
		for i := 0; i < m; i++ {
			x[i] = a.At(i, j)
		}
		beta, tau := Larfg(r.At(j, j), x)
		r.Set(j, j, beta)
		for i := 0; i < m; i++ {
			a.Set(i, j, x[i])
		}
		// Apply H to the trailing stacked columns (row j of R, all of A):
		//   w = R[j, j+1:] + V2ᵀ·A[:, j+1:], then subtract tau·v·w.
		if tau != 0 && j+1 < n {
			rrow := r.Row(j)[j+1 : n]
			wj := w[:n-j-1]
			copy(wj, rrow)
			for i := 0; i < m; i++ {
				arow := a.Row(i)
				vij := arow[j]
				if vij == 0 {
					continue
				}
				tail := arow[j+1 : n]
				for c, av := range tail {
					wj[c] += vij * av
				}
			}
			for c := range wj {
				rrow[c] -= tau * wj[c]
			}
			for i := 0; i < m; i++ {
				arow := a.Row(i)
				vij := tau * arow[j]
				if vij == 0 {
					continue
				}
				tail := arow[j+1 : n]
				for c := range tail {
					tail[c] -= vij * wj[c]
				}
			}
		}
		// T column: the identity blocks of V contribute nothing across
		// distinct columns, so w[i] = V2[:, i]ᵀ · v2_j, accumulated row-wise.
		wt := w[:j]
		for i := range wt {
			wt[i] = 0
		}
		for q := 0; q < m; q++ {
			arow := a.Row(q)
			vqj := arow[j]
			if vqj == 0 {
				continue
			}
			head := arow[:j]
			for i, av := range head {
				wt[i] += av * vqj
			}
		}
		larftColumn(t, j, tau, wt)
	}
}

// Tsmqr applies the block reflector produced by Tsqrt to the stacked pair
//
//	[ C1 ]   C1: n×k (a row-k tile; fully read/written)
//	[ C2 ]   C2: m×k
//
// computing [C1; C2] ← op(Q)·[C1; C2] with Q = I − V·T·Vᵀ, V = [I; V2].
// v2 is the A output of Tsqrt, t its T factor.
func Tsmqr(trans blas.Transpose, v2, t, c1, c2 *mat.Matrix) {
	m, n := v2.Rows, v2.Cols
	if c1.Rows != n || c2.Rows != m || c1.Cols != c2.Cols {
		panic(fmt.Sprintf("lapack: Tsmqr shape mismatch V2=%dx%d C1=%dx%d C2=%dx%d",
			m, n, c1.Rows, c1.Cols, c2.Rows, c2.Cols))
	}
	k := c1.Cols
	// W = C1 + V2ᵀ·C2. CopyFrom overwrites every row, so the pooled buffer
	// needs no zeroing.
	w, wbuf := mat.GetMatrix(n, k)
	defer mat.PutBuf(wbuf)
	w.CopyFrom(c1)
	blas.Gemm(blas.Trans, blas.NoTrans, 1, v2, c2, 1, w)
	// W ← op(T)·W.
	tview := t.View(0, 0, n, n)
	if trans == blas.Trans {
		blas.Trmm(blas.Left, blas.Upper, blas.Trans, blas.NonUnit, 1, tview, w)
	} else {
		blas.Trmm(blas.Left, blas.Upper, blas.NoTrans, blas.NonUnit, 1, tview, w)
	}
	// C1 −= W;  C2 −= V2·W.
	for i := 0; i < n; i++ {
		c1r, wr := c1.Row(i), w.Row(i)
		for q := 0; q < k; q++ {
			c1r[q] -= wr[q]
		}
	}
	blas.Gemm(blas.NoTrans, blas.NoTrans, -1, v2, w, 1, c2)
}
