package lapack

import (
	"fmt"

	"luqr/internal/blas"
	"luqr/internal/mat"
)

// Tsqrt (Triangle on top of Square QR) factors the stacked matrix
//
//	[ R ]        R: n×n upper triangular (only its upper triangle is read
//	[ A ]           and written — the strictly lower part may hold V data
//	                from an earlier Geqrt and is preserved)
//	             A: m×n full tile, overwritten with the square block V2 of
//	                the Householder vectors
//
// producing an updated upper triangular R and the block reflector
// Q = I − V·T·Vᵀ with V = [I; V2]. t (n×n) receives T. This is the PLASMA
// TSQRT kernel, blocked with inner block size ib = PanelIB(): each ib-wide
// strip is factored by the unblocked leaf, the trailing columns receive the
// strip's block reflector through Tsmqr's GEMM path, and the strip's T is
// merged into the full factor by the dlarft recurrence. The identity blocks
// of successive strips occupy disjoint rows, so the cross-Gram V1ᵀ·V2
// reduces to a single GEMM over A's columns.
func Tsqrt(r, a, t *mat.Matrix) { TsqrtIB(r, a, t, PanelIB()) }

// TsqrtIB is Tsqrt with an explicit inner block size, so concurrent
// factorizations with different tuned operating points never share (or
// race on) the process-global knob; ib <= 0 falls back to PanelIB().
func TsqrtIB(r, a, t *mat.Matrix, ib int) {
	n := r.Cols
	m := a.Rows
	if r.Rows != n {
		panic(fmt.Sprintf("lapack: Tsqrt needs square R, got %dx%d", r.Rows, r.Cols))
	}
	if a.Cols != n {
		panic(fmt.Sprintf("lapack: Tsqrt A cols %d != R order %d", a.Cols, n))
	}
	if t.Rows < n || t.Cols < n {
		panic(fmt.Sprintf("lapack: Tsqrt T too small: %dx%d", t.Rows, t.Cols))
	}
	t.Zero()
	if ib <= 0 {
		ib = PanelIB()
	}
	if n <= ib {
		tsqrtUnblocked(r, a, t)
		return
	}
	for j0 := 0; j0 < n; j0 += ib {
		bs := min(ib, n-j0)
		v2 := a.View(0, j0, m, bs)
		tb := t.View(j0, j0, bs, bs)
		tsqrtUnblocked(r.View(j0, j0, bs, bs), v2, tb)
		// Trailing update with the strip's reflector, first-to-last order
		// ⇒ apply Qᵀ: rows j0..j0+bs of R are the C1 block, all of A's
		// trailing columns the C2 block.
		if j0+bs < n {
			Tsmqr(blas.Trans, v2, tb, r.View(j0, j0+bs, bs, n-j0-bs), a.View(0, j0+bs, m, n-j0-bs))
		}
		if j0 > 0 {
			// V1ᵀ·V2: the stacked identity parts live in disjoint row
			// ranges of the R block, so only A's columns overlap.
			y, ybuf := mat.GetMatrix(j0, bs)
			blas.Gemm(blas.Trans, blas.NoTrans, 1, a.View(0, 0, m, j0), v2, 0, y)
			larftMerge(t, j0, bs, y)
			mat.PutBuf(ybuf)
		}
	}
}

// tsqrtUnblocked is the classical column-by-column TS leaf on an
// (bs + m)-row stacked panel: r is bs×bs upper triangular, a is m×bs.
func tsqrtUnblocked(r, a, t *mat.Matrix) {
	n := r.Cols
	m := a.Rows
	buf := mat.GetBuf(m + n)
	defer mat.PutBuf(buf)
	x := buf.Data[:m]
	w := buf.Data[m:]
	for j := 0; j < n; j++ {
		// Reflector from (R[j,j]; A[:, j]): the rows of R below j are
		// structurally zero in the stacked panel, so the vector part lives
		// entirely in A's column j.
		for i := 0; i < m; i++ {
			x[i] = a.At(i, j)
		}
		beta, tau := Larfg(r.At(j, j), x)
		r.Set(j, j, beta)
		for i := 0; i < m; i++ {
			a.Set(i, j, x[i])
		}
		// Apply H to the trailing stacked columns (row j of R, all of A):
		//   w = R[j, j+1:] + V2ᵀ·A[:, j+1:], then subtract tau·v·w.
		if tau != 0 && j+1 < n {
			rrow := r.Row(j)[j+1 : n]
			wj := w[:n-j-1]
			copy(wj, rrow)
			for i := 0; i < m; i++ {
				arow := a.Row(i)
				blas.Axpy(arow[j], arow[j+1:n], wj)
			}
			blas.Axpy(-tau, wj, rrow)
			for i := 0; i < m; i++ {
				arow := a.Row(i)
				blas.Axpy(-tau*arow[j], wj, arow[j+1:n])
			}
		}
		// T column: the identity blocks of V contribute nothing across
		// distinct columns, so w[i] = V2[:, i]ᵀ · v2_j, accumulated row-wise.
		wt := w[:j]
		for i := range wt {
			wt[i] = 0
		}
		for q := 0; q < m; q++ {
			arow := a.Row(q)
			blas.Axpy(arow[j], arow[:j], wt)
		}
		larftColumn(t, j, tau, wt)
	}
}

// Tsmqr applies the block reflector produced by Tsqrt to the stacked pair
//
//	[ C1 ]   C1: n×k (a row-k tile; fully read/written)
//	[ C2 ]   C2: m×k
//
// computing [C1; C2] ← op(Q)·[C1; C2] with Q = I − V·T·Vᵀ, V = [I; V2].
// v2 is the A output of Tsqrt, t its T factor.
func Tsmqr(trans blas.Transpose, v2, t, c1, c2 *mat.Matrix) {
	m, n := v2.Rows, v2.Cols
	if c1.Rows != n || c2.Rows != m || c1.Cols != c2.Cols {
		panic(fmt.Sprintf("lapack: Tsmqr shape mismatch V2=%dx%d C1=%dx%d C2=%dx%d",
			m, n, c1.Rows, c1.Cols, c2.Rows, c2.Cols))
	}
	k := c1.Cols
	// W = C1 + V2ᵀ·C2. CopyFrom overwrites every row, so the pooled buffer
	// needs no zeroing.
	w, wbuf := mat.GetMatrix(n, k)
	defer mat.PutBuf(wbuf)
	w.CopyFrom(c1)
	blas.Gemm(blas.Trans, blas.NoTrans, 1, v2, c2, 1, w)
	// W ← op(T)·W.
	tview := t.View(0, 0, n, n)
	if trans == blas.Trans {
		blas.Trmm(blas.Left, blas.Upper, blas.Trans, blas.NonUnit, 1, tview, w)
	} else {
		blas.Trmm(blas.Left, blas.Upper, blas.NoTrans, blas.NonUnit, 1, tview, w)
	}
	// C1 −= W;  C2 −= V2·W.
	subRows(c1, w)
	blas.Gemm(blas.NoTrans, blas.NoTrans, -1, v2, w, 1, c2)
}
