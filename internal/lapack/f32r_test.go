package lapack

import (
	"math/rand"
	"testing"

	"luqr/internal/blas"
	"luqr/internal/mat"
)

// round32 returns a float32 image of m and overwrites m with the widened
// image, establishing the residency invariant (f64 storage == widened f32)
// that makes the converting and resident kernels bit-comparable.
func round32(m *mat.Matrix) *mat.Matrix32 {
	img := mat.NewMatrix32(m.Rows, m.Cols)
	img.RoundFrom(m)
	img.WidenInto(m)
	return img
}

func rand64(rng *rand.Rand, r, c int) *mat.Matrix {
	m := mat.New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// expectBitEqual asserts float64(img) == m elementwise (NaN == NaN).
func expectBitEqual(t *testing.T, name string, img *mat.Matrix32, m *mat.Matrix) {
	t.Helper()
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			a, b := float64(img.At(i, j)), m.At(i, j)
			if a != b && !(a != a && b != b) {
				t.Fatalf("%s: (%d,%d) resident %v != converting %v", name, i, j, a, b)
			}
		}
	}
}

// TestGetrf32RMatchesGetrf32 cross-checks the resident recursive LU against
// the converting one: same pivots, bit-identical factors, both above and
// below the recursion leaf.
func TestGetrf32RMatchesGetrf32(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, d := range [][2]int{{1, 1}, {7, 5}, {16, 16}, {40, 33}, {96, 96}} {
		m, n := d[0], d[1]
		a := rand64(rng, m, n)
		img := round32(a)
		piv, err := Getrf32(a)
		pivR, errR := Getrf32R(img)
		if (err == nil) != (errR == nil) {
			t.Fatalf("Getrf32R %dx%d error mismatch: %v vs %v", m, n, err, errR)
		}
		for k := range piv {
			if piv[k] != pivR[k] {
				t.Fatalf("Getrf32R %dx%d pivot %d: %d vs %d", m, n, k, pivR[k], piv[k])
			}
		}
		expectBitEqual(t, "Getrf32R", img, a)
	}
}

// TestGeqrt32RMatchesGeqrt32 cross-checks the resident ib-blocked panel QR:
// V/R in the tile and the T factor must both match bit for bit.
func TestGeqrt32RMatchesGeqrt32(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, d := range [][3]int{{8, 8, 4}, {24, 16, 8}, {40, 40, 8}, {33, 20, 6}} {
		m, n, ib := d[0], d[1], d[2]
		a := rand64(rng, m, n)
		tf := mat.New(n, n)
		aImg := round32(a)
		tImg := mat.NewMatrix32(n, n)
		Geqrt32IB(a, tf, ib)
		Geqrt32RIB(aImg, tImg, ib)
		expectBitEqual(t, "Geqrt32R A", aImg, a)
		expectBitEqual(t, "Geqrt32R T", tImg, tf)

		c := rand64(rng, m, 9)
		cImg := round32(c)
		Unmqr32(blas.Trans, a, tf, c)
		tImg2 := mat.NewMatrix32(n, n)
		tImg2.RoundFrom(tf)
		Unmqr32R(blas.Trans, aImg, tImg2, cImg)
		expectBitEqual(t, "Unmqr32R", cImg, c)
	}
}

// TestTsqrt32RMatchesTsqrt32 cross-checks the resident TS factor and its
// update kernel.
func TestTsqrt32RMatchesTsqrt32(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, d := range [][3]int{{8, 8, 4}, {24, 16, 8}, {32, 32, 8}} {
		m, n, ib := d[0], d[1], d[2]
		r := rand64(rng, n, n)
		a := rand64(rng, m, n)
		tf := mat.New(n, n)
		rImg, aImg := round32(r), round32(a)
		tImg := mat.NewMatrix32(n, n)
		Tsqrt32IB(r, a, tf, ib)
		Tsqrt32RIB(rImg, aImg, tImg, ib)
		expectBitEqual(t, "Tsqrt32R R", rImg, r)
		expectBitEqual(t, "Tsqrt32R V", aImg, a)
		expectBitEqual(t, "Tsqrt32R T", tImg, tf)

		c1 := rand64(rng, n, 9)
		c2 := rand64(rng, m, 9)
		c1Img, c2Img := round32(c1), round32(c2)
		Tsmqr32(blas.Trans, a, tf, c1, c2)
		tImg2 := mat.NewMatrix32(n, n)
		tImg2.RoundFrom(tf)
		Tsmqr32R(blas.Trans, aImg, tImg2, c1Img, c2Img)
		expectBitEqual(t, "Tsmqr32R C1", c1Img, c1)
		expectBitEqual(t, "Tsmqr32R C2", c2Img, c2)
	}
}

// TestTtqrt32RMatchesTtqrt32 cross-checks the resident TT factor and its
// update kernel.
func TestTtqrt32RMatchesTtqrt32(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, d := range [][2]int{{8, 4}, {16, 8}, {32, 8}, {20, 6}} {
		n, ib := d[0], d[1]
		r1 := rand64(rng, n, n)
		r2 := rand64(rng, n, n)
		tf := mat.New(n, n)
		r1Img, r2Img := round32(r1), round32(r2)
		tImg := mat.NewMatrix32(n, n)
		Ttqrt32IB(r1, r2, tf, ib)
		Ttqrt32RIB(r1Img, r2Img, tImg, ib)
		expectBitEqual(t, "Ttqrt32R R1", r1Img, r1)
		expectBitEqual(t, "Ttqrt32R R2", r2Img, r2)
		expectBitEqual(t, "Ttqrt32R T", tImg, tf)

		c1 := rand64(rng, n, 9)
		c2 := rand64(rng, n, 9)
		c1Img, c2Img := round32(c1), round32(c2)
		Ttmqr32(blas.Trans, r2, tf, c1, c2)
		tImg2 := mat.NewMatrix32(n, n)
		tImg2.RoundFrom(tf)
		Ttmqr32R(blas.Trans, r2Img, tImg2, c1Img, c2Img)
		expectBitEqual(t, "Ttmqr32R C1", c1Img, c1)
		expectBitEqual(t, "Ttmqr32R C2", c2Img, c2)
	}
}
