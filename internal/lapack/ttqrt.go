package lapack

import (
	"fmt"

	"luqr/internal/blas"
	"luqr/internal/mat"
)

// Ttqrt (Triangle on top of Triangle QR) factors the stacked matrix
//
//	[ R1 ]    R1: n×n upper triangular, updated in place (upper part only)
//	[ R2 ]    R2: n×n upper triangular, overwritten (upper part only) with
//	              the upper triangular block V2 of the Householder vectors
//
// producing Q = I − V·T·Vᵀ with V = [I; V2]. Strictly lower parts of both
// tiles are never touched: they may carry V data from earlier kernels, as in
// PLASMA. t (n×n) receives T. Used by the reduction trees of the HQR step to
// merge two domain-local R factors.
func Ttqrt(r1, r2, t *mat.Matrix) {
	n := r1.Cols
	if r1.Rows != n || r2.Rows != n || r2.Cols != n {
		panic(fmt.Sprintf("lapack: Ttqrt needs square tiles, got %dx%d and %dx%d",
			r1.Rows, r1.Cols, r2.Rows, r2.Cols))
	}
	if t.Rows < n || t.Cols < n {
		panic(fmt.Sprintf("lapack: Ttqrt T too small: %dx%d", t.Rows, t.Cols))
	}
	t.Zero()
	buf := mat.GetBuf(2 * n)
	defer mat.PutBuf(buf)
	x := buf.Data[:n]
	w := buf.Data[n:]
	for j := 0; j < n; j++ {
		// Column j of the stacked panel has nonzeros at R1[j,j] and
		// R2[0..j, j] only (R2 upper triangular).
		for i := 0; i <= j; i++ {
			x[i] = r2.At(i, j)
		}
		beta, tau := Larfg(r1.At(j, j), x[:j+1])
		r1.Set(j, j, beta)
		for i := 0; i <= j; i++ {
			r2.Set(i, j, x[i])
		}
		// Apply H to trailing columns (row j of R1, rows 0..j of R2),
		// row-wise: w = R1[j, j+1:] + V2[0..j, j]ᵀ·R2[0..j, j+1:].
		if tau != 0 && j+1 < n {
			r1row := r1.Row(j)[j+1 : n]
			wj := w[:n-j-1]
			copy(wj, r1row)
			for i := 0; i <= j; i++ {
				r2row := r2.Row(i)
				vij := r2row[j]
				if vij == 0 {
					continue
				}
				tail := r2row[j+1 : n]
				for c, rv := range tail {
					wj[c] += vij * rv
				}
			}
			for c := range wj {
				r1row[c] -= tau * wj[c]
			}
			for i := 0; i <= j; i++ {
				r2row := r2.Row(i)
				vij := tau * r2row[j]
				if vij == 0 {
					continue
				}
				tail := r2row[j+1 : n]
				for c := range tail {
					tail[c] -= vij * wj[c]
				}
			}
		}
		// T column: w[i] = V2[:, i]ᵀ · v2_j over the overlap rows 0..i,
		// accumulated row-wise over R2's upper triangle.
		wt := w[:j]
		for i := range wt {
			wt[i] = 0
		}
		for q := 0; q <= j; q++ {
			r2row := r2.Row(q)
			vqj := r2row[j]
			if vqj == 0 {
				continue
			}
			// Row q contributes to columns i ≥ q (upper triangle), i < j.
			for i := q; i < j; i++ {
				wt[i] += r2row[i] * vqj
			}
		}
		larftColumn(t, j, tau, wt)
	}
}

// Ttmqr applies the block reflector produced by Ttqrt to the stacked pair
// [C1; C2] (both n-row tiles of width k, fully read/written):
//
//	[C1; C2] ← op(Q)·[C1; C2],  Q = I − [I; V2]·T·[I; V2]ᵀ
//
// v2 holds V2 in its upper triangle (lower part ignored), t the T factor.
func Ttmqr(trans blas.Transpose, v2, t, c1, c2 *mat.Matrix) {
	n := v2.Rows
	if v2.Cols != n || c1.Rows != n || c2.Rows != n || c1.Cols != c2.Cols {
		panic(fmt.Sprintf("lapack: Ttmqr shape mismatch V2=%dx%d C1=%dx%d C2=%dx%d",
			v2.Rows, v2.Cols, c1.Rows, c1.Cols, c2.Rows, c2.Cols))
	}
	k := c1.Cols
	// W = C1 + V2ᵀ·C2, reading only V2's upper triangle. CopyFrom overwrites
	// every row, so the pooled buffer needs no zeroing.
	w, wbuf := mat.GetMatrix(n, k)
	defer mat.PutBuf(wbuf)
	w.CopyFrom(c1)
	for q := 0; q < n; q++ {
		// Row q of V2 contributes v2(q, j) for j ≥ q.
		c2row := c2.Row(q)
		v2row := v2.Row(q)
		for j := q; j < n; j++ {
			vqj := v2row[j]
			if vqj == 0 {
				continue
			}
			wrow := w.Row(j)
			for c := 0; c < k; c++ {
				wrow[c] += vqj * c2row[c]
			}
		}
	}
	// W ← op(T)·W.
	tview := t.View(0, 0, n, n)
	if trans == blas.Trans {
		blas.Trmm(blas.Left, blas.Upper, blas.Trans, blas.NonUnit, 1, tview, w)
	} else {
		blas.Trmm(blas.Left, blas.Upper, blas.NoTrans, blas.NonUnit, 1, tview, w)
	}
	// C1 −= W;  C2 −= V2·W (upper triangle of V2 only).
	for i := 0; i < n; i++ {
		c1r, wr := c1.Row(i), w.Row(i)
		for q := 0; q < k; q++ {
			c1r[q] -= wr[q]
		}
	}
	for i := 0; i < n; i++ {
		c2row := c2.Row(i)
		v2row := v2.Row(i)
		for j := i; j < n; j++ {
			vij := v2row[j]
			if vij == 0 {
				continue
			}
			wrow := w.Row(j)
			for c := 0; c < k; c++ {
				c2row[c] -= vij * wrow[c]
			}
		}
	}
}
