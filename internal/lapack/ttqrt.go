package lapack

import (
	"fmt"

	"luqr/internal/blas"
	"luqr/internal/mat"
)

// Ttqrt (Triangle on top of Triangle QR) factors the stacked matrix
//
//	[ R1 ]    R1: n×n upper triangular, updated in place (upper part only)
//	[ R2 ]    R2: n×n upper triangular, overwritten (upper part only) with
//	              the upper triangular block V2 of the Householder vectors
//
// producing Q = I − V·T·Vᵀ with V = [I; V2]. Strictly lower parts of both
// tiles are never touched: they may carry V data from earlier kernels, as in
// PLASMA. t (n×n) receives T. Used by the reduction trees of the HQR step to
// merge two domain-local R factors.
//
// Blocked with inner block size ib = PanelIB(): each ib-wide strip of
// columns (whose V2 part is a trapezoid — dense above row j0, triangular
// on the diagonal block) is factored by the unblocked leaf, the trailing
// columns receive the strip's block reflector through TRMM/GEMM, and the
// strip's T is merged by the dlarft recurrence.
func Ttqrt(r1, r2, t *mat.Matrix) { TtqrtIB(r1, r2, t, PanelIB()) }

// TtqrtIB is Ttqrt with an explicit inner block size, so concurrent
// factorizations with different tuned operating points never share (or
// race on) the process-global knob; ib <= 0 falls back to PanelIB().
func TtqrtIB(r1, r2, t *mat.Matrix, ib int) {
	n := r1.Cols
	if r1.Rows != n || r2.Rows != n || r2.Cols != n {
		panic(fmt.Sprintf("lapack: Ttqrt needs square tiles, got %dx%d and %dx%d",
			r1.Rows, r1.Cols, r2.Rows, r2.Cols))
	}
	if t.Rows < n || t.Cols < n {
		panic(fmt.Sprintf("lapack: Ttqrt T too small: %dx%d", t.Rows, t.Cols))
	}
	t.Zero()
	if ib <= 0 {
		ib = PanelIB()
	}
	if n <= ib {
		ttqrtUnblocked(r1, r2.View(0, 0, n, n), t, 0)
		return
	}
	for j0 := 0; j0 < n; j0 += ib {
		bs := min(ib, n-j0)
		rest := n - j0 - bs
		tb := t.View(j0, j0, bs, bs)
		// The strip's V2 is r2[0:j0+bs, j0:j0+bs): a dense j0×bs block D on
		// top of a bs×bs upper triangle.
		ttqrtUnblocked(r1.View(j0, j0, bs, bs), r2.View(0, j0, j0+bs, bs), tb, j0)
		if rest > 0 {
			ttqrtApply(r1, r2, tb, j0, bs, rest)
		}
		if j0 > 0 {
			// Cross-Gram V1ᵀ·V2: V1 (the previous columns of V2-space) is
			// zero below row j0, so only D overlaps — and V1's nonzero part
			// is the upper triangle r2[0:j0, 0:j0).
			y, ybuf := mat.GetMatrix(j0, bs)
			y.CopyFrom(r2.View(0, j0, j0, bs))
			blas.Trmm(blas.Left, blas.Upper, blas.Trans, blas.NonUnit, 1, r2.View(0, 0, j0, j0), y)
			larftMerge(t, j0, bs, y)
			mat.PutBuf(ybuf)
		}
	}
}

// ttqrtApply pushes the [j0,j0+bs) strip's block reflector (Qᵀ, matching
// the first-to-last generation order) across the trailing columns: C1 is
// rows j0..j0+bs of R1, C2 is rows 0..j0+bs of R2. The V2 trapezoid splits
// into its dense top D (GEMM) and triangular diagonal block (TRMM on a
// copy), keeping R2's strictly-lower storage untouched.
func ttqrtApply(r1, r2, tb *mat.Matrix, j0, bs, rest int) {
	c1 := r1.View(j0, j0+bs, bs, rest)
	tri := r2.View(j0, j0, bs, bs)
	c2bot := r2.View(j0, j0+bs, bs, rest)
	// W = C1 + Dᵀ·C2top + Triᵀ·C2bot.
	w, wbuf := mat.GetMatrix(bs, rest)
	defer mat.PutBuf(wbuf)
	w.CopyFrom(c1)
	if j0 > 0 {
		blas.Gemm(blas.Trans, blas.NoTrans, 1, r2.View(0, j0, j0, bs), r2.View(0, j0+bs, j0, rest), 1, w)
	}
	wt, wtbuf := mat.GetMatrix(bs, rest)
	defer mat.PutBuf(wtbuf)
	wt.CopyFrom(c2bot)
	blas.Trmm(blas.Left, blas.Upper, blas.Trans, blas.NonUnit, 1, tri, wt)
	addRows(w, wt)
	// W ← Tᵀ·W.
	blas.Trmm(blas.Left, blas.Upper, blas.Trans, blas.NonUnit, 1, tb, w)
	// C1 −= W;  C2top −= D·W;  C2bot −= Tri·W.
	subRows(c1, w)
	if j0 > 0 {
		blas.Gemm(blas.NoTrans, blas.NoTrans, -1, r2.View(0, j0, j0, bs), w, 1, r2.View(0, j0+bs, j0, rest))
	}
	wt.CopyFrom(w)
	blas.Trmm(blas.Left, blas.Upper, blas.NoTrans, blas.NonUnit, 1, tri, wt)
	subRows(c2bot, wt)
}

// ttqrtUnblocked is the column-by-column TT leaf. r1 is bs×bs upper
// triangular; r2 holds the strip's V2 part as an (off+bs)×bs trapezoid:
// local column j's vector part occupies rows 0..off+j (dense above row
// off, triangular within the diagonal block). off == 0 recovers the
// classical square case.
func ttqrtUnblocked(r1, r2, t *mat.Matrix, off int) {
	n := r1.Cols
	buf := mat.GetBuf(2*n + off)
	defer mat.PutBuf(buf)
	x := buf.Data[: n+off : n+off]
	w := buf.Data[n+off:]
	for j := 0; j < n; j++ {
		// Column j of the stacked panel has nonzeros at R1[j,j] and
		// R2[0..off+j, j] only.
		h := off + j
		for i := 0; i <= h; i++ {
			x[i] = r2.At(i, j)
		}
		beta, tau := Larfg(r1.At(j, j), x[:h+1])
		r1.Set(j, j, beta)
		for i := 0; i <= h; i++ {
			r2.Set(i, j, x[i])
		}
		// Apply H to trailing columns (row j of R1, rows 0..off+j of R2),
		// row-wise: w = R1[j, j+1:] + V2[0..off+j, j]ᵀ·R2[0..off+j, j+1:].
		if tau != 0 && j+1 < n {
			r1row := r1.Row(j)[j+1 : n]
			wj := w[:n-j-1]
			copy(wj, r1row)
			for i := 0; i <= h; i++ {
				r2row := r2.Row(i)
				blas.Axpy(r2row[j], r2row[j+1:n], wj)
			}
			blas.Axpy(-tau, wj, r1row)
			for i := 0; i <= h; i++ {
				r2row := r2.Row(i)
				blas.Axpy(-tau*r2row[j], wj, r2row[j+1:n])
			}
		}
		// T column: w[i] = V2[:, i]ᵀ · v2_j over the overlap rows
		// 0..off+i, accumulated row-wise over the trapezoid.
		wt := w[:j]
		for i := range wt {
			wt[i] = 0
		}
		for q := 0; q <= h; q++ {
			r2row := r2.Row(q)
			// Row q contributes to columns i with off+i ≥ q, i < j.
			i0 := q - off
			if i0 < 0 {
				i0 = 0
			}
			if i0 < j {
				blas.Axpy(r2row[j], r2row[i0:j], wt[i0:j])
			}
		}
		larftColumn(t, j, tau, wt)
	}
}

// Ttmqr applies the block reflector produced by Ttqrt to the stacked pair
// [C1; C2] (both n-row tiles of width k, fully read/written):
//
//	[C1; C2] ← op(Q)·[C1; C2],  Q = I − [I; V2]·T·[I; V2]ᵀ
//
// v2 holds V2 in its upper triangle (lower part ignored), t the T factor.
// The three multiplications by the triangular V2 and T run through the
// blocked TRMM path (on copies, since TRMM works in place).
func Ttmqr(trans blas.Transpose, v2, t, c1, c2 *mat.Matrix) {
	n := v2.Rows
	if v2.Cols != n || c1.Rows != n || c2.Rows != n || c1.Cols != c2.Cols {
		panic(fmt.Sprintf("lapack: Ttmqr shape mismatch V2=%dx%d C1=%dx%d C2=%dx%d",
			v2.Rows, v2.Cols, c1.Rows, c1.Cols, c2.Rows, c2.Cols))
	}
	k := c1.Cols
	// W = C1 + V2ᵀ·C2, reading only V2's upper triangle.
	w, wbuf := mat.GetMatrix(n, k)
	defer mat.PutBuf(wbuf)
	w.CopyFrom(c2)
	blas.Trmm(blas.Left, blas.Upper, blas.Trans, blas.NonUnit, 1, v2, w)
	addRows(w, c1)
	// W ← op(T)·W.
	tview := t.View(0, 0, n, n)
	if trans == blas.Trans {
		blas.Trmm(blas.Left, blas.Upper, blas.Trans, blas.NonUnit, 1, tview, w)
	} else {
		blas.Trmm(blas.Left, blas.Upper, blas.NoTrans, blas.NonUnit, 1, tview, w)
	}
	// C1 −= W;  C2 −= V2·W (upper triangle of V2 only).
	subRows(c1, w)
	blas.Trmm(blas.Left, blas.Upper, blas.NoTrans, blas.NonUnit, 1, v2, w)
	subRows(c2, w)
}
