package lapack

import (
	"math/rand"
	"testing"

	"luqr/internal/blas"
	"luqr/internal/mat"
)

// upperOf returns a dense copy of the upper triangle of the leading
// min(r,c) rows of m, zeros elsewhere — the R factor a QR kernel leaves in
// a tile that also stores V below the diagonal.
func upperOf(m *mat.Matrix) *mat.Matrix {
	u := mat.New(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for j := i; j < m.Cols; j++ {
			u.Set(i, j, m.At(i, j))
		}
	}
	return u
}

// strictLowerOf snapshots the strictly lower triangle (the storage QR tile
// kernels must never touch).
func strictLowerOf(m *mat.Matrix) *mat.Matrix {
	l := mat.New(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < i && j < m.Cols; j++ {
			l.Set(i, j, m.At(i, j))
		}
	}
	return l
}

// TestGetrf32Reconstructs factors random matrices at float32 and checks
// P⁻¹·L·U recovers A at float32 resolution — same pivot bookkeeping as the
// f64 kernel (reconstructLU and Laswp are shared).
func TestGetrf32Reconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, d := range [][2]int{{1, 1}, {5, 3}, {8, 8}, {13, 7}, {40, 40}, {64, 48}} {
		m, n := d[0], d[1]
		a := randMat(rng, m, n)
		a0 := a.Clone()
		piv, err := Getrf32(a)
		if err != nil {
			t.Fatalf("Getrf32 %dx%d: %v", m, n, err)
		}
		back := reconstructLU(a, piv)
		tol := 1e-4 * float64(n+1)
		if diff := mat.MaxDiff(back, a0); diff > tol {
			t.Fatalf("Getrf32 %dx%d: reconstruction off by %g > %g", m, n, diff, tol)
		}
		// Pivot rows must be in range and the factorization in-place.
		for k, p := range piv {
			if p < k || p >= m {
				t.Fatalf("Getrf32 %dx%d: pivot %d at step %d out of range", m, n, p, k)
			}
		}
	}
}

// TestGetrf32MatchesGetrsReplay checks a Getrf32 factor solves through the
// unchanged f64 Getrs path — the contract the mixed-precision solve relies
// on (f32 factors, f64 replay).
func TestGetrf32MatchesGetrsReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 40
	a := randMat(rng, n, n)
	a0 := a.Clone()
	x0 := randMat(rng, n, 2)
	b := mat.New(n, 2)
	blas.Gemm(blas.NoTrans, blas.NoTrans, 1, a0, x0, 0, b)
	piv, err := Getrf32(a)
	if err != nil {
		t.Fatal(err)
	}
	Getrs(blas.NoTrans, a, piv, b)
	if diff := mat.MaxDiff(b, x0); diff > 1e-3*float64(n) {
		t.Fatalf("Getrs replay of Getrf32 factor: solution off by %g", diff)
	}
}

// TestGeqrt32Reconstructs factors tiles at float32 (unblocked and blocked
// inner paths) and replays the factor through the float64 Unmqr: Q·R must
// recover A, proving the V/T contract is bit-compatible across precisions.
func TestGeqrt32Reconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, d := range [][2]int{{4, 4}, {13, 7}, {40, 40}, {48, 33}} {
		m, n := d[0], d[1]
		for _, ib := range []int{0, 4} {
			a := randMat(rng, m, n)
			a0 := a.Clone()
			tf := mat.New(n, n)
			Geqrt32IB(a, tf, ib)
			c := upperOf(a)
			Unmqr(blas.NoTrans, a, tf, c)
			tol := 1e-4 * float64(n+1)
			if diff := mat.MaxDiff(c, a0); diff > tol {
				t.Fatalf("Geqrt32 %dx%d ib=%d: Q·R off by %g > %g", m, n, ib, diff, tol)
			}
		}
	}
}

// TestTsqrt32Reconstructs factors a triangle-on-square stack at float32,
// replays through the float64 Tsmqr, and checks R's strictly-lower storage
// (V data from an earlier factorization) is preserved.
func TestTsqrt32Reconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, d := range [][2]int{{5, 5}, {13, 13}, {33, 20}, {40, 40}} {
		n, m := d[0], d[1]
		for _, ib := range []int{0, 4} {
			r := randMat(rng, n, n)
			a := randMat(rng, m, n)
			r0u := upperOf(r)
			rlow := strictLowerOf(r)
			a0 := a.Clone()
			tf := mat.New(n, n)
			Tsqrt32IB(r, a, tf, ib)
			if diff := mat.MaxDiff(strictLowerOf(r), rlow); diff != 0 {
				t.Fatalf("Tsqrt32 n=%d m=%d ib=%d: touched R's strictly lower storage", n, m, ib)
			}
			c1 := upperOf(r)
			c2 := mat.New(m, n)
			Tsmqr(blas.NoTrans, a, tf, c1, c2)
			tol := 1e-4 * float64(n+m)
			if diff := mat.MaxDiff(c1, r0u); diff > tol {
				t.Fatalf("Tsqrt32 n=%d m=%d ib=%d: R block off by %g > %g", n, m, ib, diff, tol)
			}
			if diff := mat.MaxDiff(c2, a0); diff > tol {
				t.Fatalf("Tsqrt32 n=%d m=%d ib=%d: A block off by %g > %g", n, m, ib, diff, tol)
			}
		}
	}
}

// TestTtqrt32Reconstructs factors a triangle-on-triangle stack at float32,
// replays through the float64 Ttmqr, and checks both tiles' strictly-lower
// storage is preserved.
func TestTtqrt32Reconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for _, n := range []int{1, 5, 13, 40} {
		for _, ib := range []int{0, 4} {
			r1 := randMat(rng, n, n)
			r2 := randMat(rng, n, n)
			r1u0, r2u0 := upperOf(r1), upperOf(r2)
			r1low, r2low := strictLowerOf(r1), strictLowerOf(r2)
			tf := mat.New(n, n)
			Ttqrt32IB(r1, r2, tf, ib)
			if mat.MaxDiff(strictLowerOf(r1), r1low) != 0 || mat.MaxDiff(strictLowerOf(r2), r2low) != 0 {
				t.Fatalf("Ttqrt32 n=%d ib=%d: touched strictly lower storage", n, ib)
			}
			c1 := upperOf(r1)
			c2 := mat.New(n, n)
			Ttmqr(blas.NoTrans, r2, tf, c1, c2)
			tol := 1e-4 * float64(2*n)
			if diff := mat.MaxDiff(c1, r1u0); diff > tol {
				t.Fatalf("Ttqrt32 n=%d ib=%d: R1 off by %g > %g", n, ib, diff, tol)
			}
			if diff := mat.MaxDiff(c2, r2u0); diff > tol {
				t.Fatalf("Ttqrt32 n=%d ib=%d: R2 off by %g > %g", n, ib, diff, tol)
			}
		}
	}
}

// TestApply32MatchesF64 cross-checks the float32 apply kernels (Unmqr32,
// Tsmqr32, Ttmqr32) against their float64 references on identical factors
// and right-hand sides, in both orientations.
func TestApply32MatchesF64(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	n, m, k := 24, 33, 9
	for _, trans := range []blas.Transpose{blas.NoTrans, blas.Trans} {
		// Unmqr32 on a Geqrt factor.
		a := randMat(rng, m, n)
		tf := mat.New(n, n)
		Geqrt(a, tf)
		c := randMat(rng, m, k)
		got, want := c.Clone(), c.Clone()
		Unmqr32(trans, a, tf, got)
		Unmqr(trans, a, tf, want)
		if diff := mat.MaxDiff(got, want); diff > 1e-4*float64(m) {
			t.Fatalf("Unmqr32 trans=%v: diverges from f64 by %g", trans, diff)
		}

		// Tsmqr32 on a Tsqrt factor.
		r := randMat(rng, n, n)
		a2 := randMat(rng, m, n)
		tf2 := mat.New(n, n)
		Tsqrt(r, a2, tf2)
		c1, c2 := randMat(rng, n, k), randMat(rng, m, k)
		g1, g2 := c1.Clone(), c2.Clone()
		w1, w2 := c1.Clone(), c2.Clone()
		Tsmqr32(trans, a2, tf2, g1, g2)
		Tsmqr(trans, a2, tf2, w1, w2)
		if d := mat.MaxDiff(g1, w1) + mat.MaxDiff(g2, w2); d > 1e-4*float64(n+m) {
			t.Fatalf("Tsmqr32 trans=%v: diverges from f64 by %g", trans, d)
		}

		// Ttmqr32 on a Ttqrt factor.
		t1, t2 := randMat(rng, n, n), randMat(rng, n, n)
		tf3 := mat.New(n, n)
		Ttqrt(t1, t2, tf3)
		d1, d2 := randMat(rng, n, k), randMat(rng, n, k)
		h1, h2 := d1.Clone(), d2.Clone()
		u1, u2 := d1.Clone(), d2.Clone()
		Ttmqr32(trans, t2, tf3, h1, h2)
		Ttmqr(trans, t2, tf3, u1, u2)
		if d := mat.MaxDiff(h1, u1) + mat.MaxDiff(h2, u2); d > 1e-4*float64(2*n) {
			t.Fatalf("Ttmqr32 trans=%v: diverges from f64 by %g", trans, d)
		}
	}
}

// TestLarfg32Annihilates checks the float32 reflector annihilates at
// float32 resolution and produces f32-representable outputs.
func TestLarfg32Annihilates(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(10)
		alpha := rng.NormFloat64()
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		orig := append([]float64{alpha}, x...)
		beta, tau := Larfg32(alpha, x)
		if float64(float32(beta)) != beta || float64(float32(tau)) != tau {
			t.Fatalf("Larfg32 outputs not f32-representable: beta=%g tau=%g", beta, tau)
		}
		v := append([]float64{1}, x...)
		s := 0.0
		for i := range v {
			s += v[i] * orig[i]
		}
		for i := 1; i < len(orig); i++ {
			if got := orig[i] - tau*s*v[i]; got > 1e-5 || got < -1e-5 {
				t.Fatalf("Larfg32 tail not annihilated: %g at %d", got, i)
			}
		}
	}
}
