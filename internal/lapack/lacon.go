package lapack

import (
	"math"

	"luqr/internal/blas"
	"luqr/internal/mat"
)

// OneNormEst estimates ‖M‖₁ for an n×n linear operator M available only
// through matrix-vector products, using the Hager–Higham algorithm (the same
// scheme as LAPACK's DLACN2). apply must overwrite x with M·x and applyT
// with Mᵀ·x. Each call costs O(1) products; at most five iterations are
// performed, so the total cost is O(n²) when M·x is a triangular solve —
// exactly the O(nb²) criterion cost budget of §III-D of the paper.
//
// The estimate is a lower bound on ‖M‖₁ that is almost always within a
// factor ~3 and usually exact for the matrices met here.
func OneNormEst(n int, apply, applyT func(x []float64)) float64 {
	if n == 0 {
		return 0
	}
	buf := mat.GetBuf(4 * n)
	defer mat.PutBuf(buf)
	x := buf.Data[0*n : 1*n]
	y := buf.Data[1*n : 2*n]
	z := buf.Data[2*n : 3*n]
	for i := range x {
		x[i] = 1 / float64(n)
	}
	copy(y, x)
	apply(y)
	est := mat.VecNorm1(y)
	if n == 1 {
		return est
	}
	prevJ := -1
	for iter := 0; iter < 5; iter++ {
		// z = Mᵀ·sign(y).
		for i, v := range y {
			if v >= 0 {
				z[i] = 1
			} else {
				z[i] = -1
			}
		}
		applyT(z)
		j := blas.Iamax(z)
		// Hager's optimality test: stop when ‖z‖∞ ≤ zᵀx, or when the same
		// unit vector would be probed again.
		if j == prevJ || math.Abs(z[j]) <= dotAbs(z, x) {
			break
		}
		prevJ = j
		for i := range x {
			x[i] = 0
		}
		x[j] = 1
		copy(y, x)
		apply(y)
		newEst := mat.VecNorm1(y)
		if newEst <= est {
			break
		}
		est = newEst
	}
	// Alternating extra vector guards against the rare underestimate.
	b := buf.Data[3*n : 4*n]
	for i := range b {
		s := 1.0
		if i%2 == 1 {
			s = -1
		}
		b[i] = s * (1 + float64(i)/float64(n-1))
	}
	apply(b)
	if alt := 2 * mat.VecNorm1(b) / (3 * float64(n)); alt > est {
		est = alt
	}
	return est
}

func dotAbs(z, x []float64) float64 {
	s := 0.0
	for i := range z {
		s += z[i] * x[i]
	}
	return math.Abs(s)
}

// InvNorm1EstLU estimates ‖A⁻¹‖₁ from an LU factorization (lu, piv) produced
// by Getrf on a square tile. This powers the Max and Sum criteria's
// ‖(A_kk)⁻¹‖₁⁻¹ term without ever forming the inverse.
func InvNorm1EstLU(lu *mat.Matrix, piv []int) float64 {
	n := lu.Rows
	return OneNormEst(n,
		func(x []float64) { GetrsVec(blas.NoTrans, lu, piv, x) },
		func(x []float64) { GetrsVec(blas.Trans, lu, piv, x) },
	)
}

// Inverse computes A⁻¹ densely (for tests and small diagnostics only).
func Inverse(a *mat.Matrix) (*mat.Matrix, error) {
	if a.Rows != a.Cols {
		panic("lapack: Inverse of non-square matrix")
	}
	lu := a.Clone()
	piv, err := Getrf(lu)
	if err != nil {
		return nil, err
	}
	inv := mat.Identity(a.Rows)
	Getrs(blas.NoTrans, lu, piv, inv)
	return inv, nil
}

// GeconEst estimates the reciprocal condition number in the 1-norm,
// rcond = 1/(‖A‖₁·‖A⁻¹‖₁), from an LU factorization produced by Getrf and
// the 1-norm of the original matrix — LAPACK's DGECON. A tiny rcond flags a
// solve whose forward error κ·ε will be large even when the algorithm is
// backward stable.
func GeconEst(lu *mat.Matrix, piv []int, anorm1 float64) float64 {
	if anorm1 <= 0 {
		return 0
	}
	inv := InvNorm1EstLU(lu, piv)
	if inv <= 0 {
		return 0
	}
	return 1 / (anorm1 * inv)
}
