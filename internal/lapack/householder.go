package lapack

import (
	"math"

	"luqr/internal/blas"
	"luqr/internal/mat"
)

// Larfg generates an elementary Householder reflector H such that
//
//	H · [alpha]   [beta]
//	    [  x  ] = [ 0  ],   H = I − tau·[1]·[1 vᵀ]
//	                                    [v]
//
// x is overwritten with v and (beta, tau) are returned. H is orthogonal and
// symmetric. When x is zero and alpha needs no change, tau = 0 and H = I.
func Larfg(alpha float64, x []float64) (beta, tau float64) {
	sigma := blas.Dot(x, x)
	if sigma == 0 {
		// H = I. (We do not flip the sign of a negative alpha; LAPACK keeps
		// tau = 0 here as well.)
		return alpha, 0
	}
	mu := math.Sqrt(alpha*alpha + sigma)
	if alpha <= 0 {
		beta = mu
	} else {
		beta = -mu
	}
	tau = (beta - alpha) / beta
	blas.Scal(1/(alpha-beta), x)
	return beta, tau
}

// larftColumn extends the compact-WY T factor by one column: given that the
// leading j×j block of t is the T factor of reflectors 0..j−1 and w already
// holds V[:,0:j]ᵀ·v_j, it writes column j of T:
//
//	T(0:j, j) = −tau · T(0:j, 0:j) · w,   T(j, j) = tau.
func larftColumn(t *mat.Matrix, j int, tau float64, w []float64) {
	// y = T(0:j,0:j) · w (T upper triangular).
	for r := 0; r < j; r++ {
		s := 0.0
		row := t.Row(r)
		for c := r; c < j; c++ {
			s += row[c] * w[c]
		}
		t.Set(r, j, -tau*s)
	}
	t.Set(j, j, tau)
}
