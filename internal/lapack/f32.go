package lapack

import (
	"fmt"
	"math"

	"luqr/internal/blas"
	"luqr/internal/mat"
)

// Mixed-precision kernels: float32 arithmetic on float64 storage.
//
// Each routine here mirrors its float64 sibling line for line — same pivot
// semantics, same compact-WY V/T contracts, same in-place storage layout —
// with every floating-point operation performed at float32 and results
// widened back to float64. Factors produced by these kernels are therefore
// interchangeable with the f64 ones: Unmqr can replay a Geqrt32 factor, a
// Getrf32 panel feeds the same Laswp/Trsm elimination, and the serialized
// factor format does not change shape. The level-3 flops run through the
// blas float32 packed path (Gemm32/Trsm32/Trmm32), whose micro-kernel
// retires twice the lanes per FMA of the f64 one.

// abs32 is |v| at float32 resolution.
func abs32(v float64) float32 {
	f := float32(v)
	if f < 0 {
		return -f
	}
	return f
}

// Getrf32 is Getrf — LU with partial pivoting, recursive right-looking —
// at float32. The pivot search compares float32 magnitudes (the values the
// elimination will actually divide by), and a pivot that rounds to float32
// zero is a breakdown even if the stored float64 is a tiny nonzero.
func Getrf32(a *mat.Matrix) (piv []int, err error) {
	m, n := a.Rows, a.Cols
	if m < n {
		panic(fmt.Sprintf("lapack: Getrf32 requires m >= n, got %dx%d", m, n))
	}
	piv = make([]int, n)
	return piv, getrfRecursive32(a, piv)
}

func getrfRecursive32(a *mat.Matrix, piv []int) (err error) {
	m, n := a.Rows, a.Cols
	if n <= getrfLeaf {
		return getrfUnblocked32(a, piv)
	}
	n1 := n / 2
	if e := getrfRecursive32(a.View(0, 0, m, n1), piv[:n1]); e != nil {
		err = e
	}
	Laswp(a.View(0, n1, m, n-n1), piv[:n1], false)
	u12 := a.View(0, n1, n1, n-n1)
	blas.Trsm32(blas.Left, blas.Lower, blas.NoTrans, blas.Unit, 1, a.View(0, 0, n1, n1), u12)
	blas.Gemm32(blas.NoTrans, blas.NoTrans, -1, a.View(n1, 0, m-n1, n1), u12, 1, a.View(n1, n1, m-n1, n-n1))
	if e := getrfRecursive32(a.View(n1, n1, m-n1, n-n1), piv[n1:]); e != nil {
		err = e
	}
	for j := n1; j < n; j++ {
		piv[j] += n1
		if piv[j] != j {
			r1, r2 := a.Row(j), a.Row(piv[j])
			for c := 0; c < n1; c++ {
				r1[c], r2[c] = r2[c], r1[c]
			}
		}
	}
	return err
}

// getrfUnblocked32 is getrfUnblocked at float32, with the same fused
// next-pivot search.
func getrfUnblocked32(a *mat.Matrix, piv []int) (err error) {
	m, n := a.Rows, a.Cols
	d, ld := a.Data, a.Stride
	p, pv := 0, abs32(d[0])
	for i := 1; i < m; i++ {
		if v := abs32(d[i*ld]); v > pv {
			p, pv = i, v
		}
	}
	for k := 0; k < n; k++ {
		piv[k] = p
		if p != k {
			rk := d[k*ld : k*ld+n]
			rp := d[p*ld : p*ld+n]
			for c, v := range rk {
				rk[c], rp[c] = rp[c], v
			}
		}
		akk := float32(d[k*ld+k])
		last := k+1 == n
		if akk == 0 {
			err = ErrSingular
			if !last {
				p, pv = k+1, abs32(d[(k+1)*ld+k+1])
				for i := k + 2; i < m; i++ {
					if v := abs32(d[i*ld+k+1]); v > pv {
						p, pv = i, v
					}
				}
			}
			continue
		}
		inv := 1 / akk
		rowk := d[k*ld+k+1 : k*ld+n]
		pv = -1
		for i := k + 1; i < m; i++ {
			off := i * ld
			lik := float32(d[off+k]) * inv
			d[off+k] = float64(lik)
			rowi := d[off+k+1 : off+n]
			if lik != 0 {
				for j, v := range rowk {
					rowi[j] = float64(float32(rowi[j]) - lik*float32(v))
				}
			}
			if !last {
				if v := abs32(rowi[0]); v > pv {
					p, pv = i, v
				}
			}
		}
	}
	return err
}

// Larfg32 is Larfg at float32: the norm, the sign choice, tau, and the
// vector scaling all round to float32, so the reflector is exactly the one
// a native float32 LAPACK would produce. An overflowing norm yields
// non-finite outputs, which the caller's excursion scan turns into an f64
// demotion.
func Larfg32(alpha float64, x []float64) (beta, tau float64) {
	sigma := blas.Dot32(x, x)
	if sigma == 0 {
		return alpha, 0
	}
	a32 := float32(alpha)
	mu := float32(math.Sqrt(float64(a32*a32 + sigma)))
	var b32 float32
	if a32 <= 0 {
		b32 = mu
	} else {
		b32 = -mu
	}
	t32 := (b32 - a32) / b32
	blas.Scal32(1/(a32-b32), x)
	return float64(b32), float64(t32)
}

// larftColumn32 is larftColumn at float32.
func larftColumn32(t *mat.Matrix, j int, tau float64, w []float64) {
	t32 := float32(tau)
	for r := 0; r < j; r++ {
		var s float32
		row := t.Row(r)
		for c := r; c < j; c++ {
			s += float32(row[c]) * float32(w[c])
		}
		t.Set(r, j, float64(-t32*s))
	}
	t.Set(j, j, float64(t32))
}

// larftMerge32 is larftMerge with the two triangular products at float32.
// The final negation is exact at any precision.
func larftMerge32(t *mat.Matrix, j0, bs int, y *mat.Matrix) {
	blas.Trmm32(blas.Left, blas.Upper, blas.NoTrans, blas.NonUnit, 1, t.View(0, 0, j0, j0), y)
	blas.Trmm32(blas.Right, blas.Upper, blas.NoTrans, blas.NonUnit, 1, t.View(j0, j0, bs, bs), y)
	for i := 0; i < j0; i++ {
		dst := t.Row(i)[j0 : j0+bs]
		src := y.Row(i)
		for c := range dst {
			dst[c] = -src[c]
		}
	}
}

// subRows32 computes dst −= src row-wise at float32.
func subRows32(dst, src *mat.Matrix) {
	for i := 0; i < dst.Rows; i++ {
		d, s := dst.Row(i), src.Row(i)
		for c := range d {
			d[c] = float64(float32(d[c]) - float32(s[c]))
		}
	}
}

// addRows32 computes dst += src row-wise at float32.
func addRows32(dst, src *mat.Matrix) {
	for i := 0; i < dst.Rows; i++ {
		d, s := dst.Row(i), src.Row(i)
		for c := range d {
			d[c] = float64(float32(d[c]) + float32(s[c]))
		}
	}
}

// Geqrt32 is Geqrt at float32: same compact-WY output contract (R and V in
// a, full T in t), so the resulting factor replays through either the f32
// or the f64 Unmqr.
func Geqrt32(a, t *mat.Matrix) { Geqrt32IB(a, t, PanelIB()) }

// Geqrt32IB is Geqrt32 with an explicit inner block size.
func Geqrt32IB(a, t *mat.Matrix, ib int) {
	m, n := a.Rows, a.Cols
	if m < n {
		panic(fmt.Sprintf("lapack: Geqrt32 requires m >= n, got %dx%d", m, n))
	}
	if t.Rows < n || t.Cols < n {
		panic(fmt.Sprintf("lapack: Geqrt32 T too small: %dx%d for n=%d", t.Rows, t.Cols, n))
	}
	t.Zero()
	if ib <= 0 {
		ib = PanelIB()
	}
	if n <= ib {
		geqrtUnblocked32(a, t)
		return
	}
	for j0 := 0; j0 < n; j0 += ib {
		bs := min(ib, n-j0)
		v := a.View(j0, j0, m-j0, bs)
		tb := t.View(j0, j0, bs, bs)
		geqrtUnblocked32(v, tb)
		if j0+bs < n {
			Unmqr32(blas.Trans, v, tb, a.View(j0, j0+bs, m-j0, n-j0-bs))
		}
		if j0 > 0 {
			mergeGeqrtT32(a, t, j0, bs)
		}
	}
}

// mergeGeqrtT32 is mergeGeqrtT with the cross-Gram GEMM and the dlarft
// recurrence at float32. The V2 materialization copies stored values (and
// writes exact 0/1), so it introduces no rounding of its own.
func mergeGeqrtT32(a, t *mat.Matrix, j0, bs int) {
	m := a.Rows
	v2, v2buf := mat.GetMatrix(m-j0, bs)
	defer mat.PutBuf(v2buf)
	for i := 0; i < m-j0; i++ {
		dst := v2.Row(i)
		src := a.Row(j0 + i)[j0 : j0+bs]
		for c := range dst {
			switch {
			case i < c:
				dst[c] = 0
			case i == c:
				dst[c] = 1
			default:
				dst[c] = src[c]
			}
		}
	}
	y, ybuf := mat.GetMatrix(j0, bs)
	defer mat.PutBuf(ybuf)
	blas.Gemm32(blas.Trans, blas.NoTrans, 1, a.View(j0, 0, m-j0, j0), v2, 0, y)
	larftMerge32(t, j0, bs, y)
}

// geqrtUnblocked32 is geqrtUnblocked at float32.
func geqrtUnblocked32(a, t *mat.Matrix) {
	m, n := a.Rows, a.Cols
	buf := mat.GetBuf(m + n)
	defer mat.PutBuf(buf)
	x := buf.Data[:m]
	w := buf.Data[m:]
	for j := 0; j < n; j++ {
		for i := j + 1; i < m; i++ {
			x[i-j-1] = a.At(i, j)
		}
		beta, tau := Larfg32(a.At(j, j), x[:m-j-1])
		a.Set(j, j, beta)
		for i := j + 1; i < m; i++ {
			a.Set(i, j, x[i-j-1])
		}
		if tau != 0 && j+1 < n {
			wj := w[:n-j-1]
			copy(wj, a.Row(j)[j+1:n])
			for i := j + 1; i < m; i++ {
				blas.Axpy32(float32(a.At(i, j)), a.Row(i)[j+1:n], wj)
			}
			t32 := float32(tau)
			blas.Axpy32(-t32, wj, a.Row(j)[j+1:n])
			for i := j + 1; i < m; i++ {
				blas.Axpy32(-t32*float32(a.At(i, j)), wj, a.Row(i)[j+1:n])
			}
		}
		wt := w[:j]
		copy(wt, a.Row(j)[:j])
		for r := j + 1; r < m; r++ {
			blas.Axpy32(float32(a.At(r, j)), a.Row(r)[:j], wt)
		}
		larftColumn32(t, j, tau, wt)
	}
}

// Unmqr32 is Unmqr at float32: W = VᵀC through the f32 TRMM/GEMM pair, T
// applied by f32 TRMM, and the subtraction back into C at float32.
func Unmqr32(trans blas.Transpose, v, t, c *mat.Matrix) {
	m, n := v.Rows, v.Cols
	if c.Rows != m {
		panic(fmt.Sprintf("lapack: Unmqr32 shape mismatch V=%dx%d C=%dx%d", m, n, c.Rows, c.Cols))
	}
	k := c.Cols
	v1 := v.View(0, 0, n, n)
	c1 := c.View(0, 0, n, k)
	w, wbuf := mat.GetMatrix(n, k)
	defer mat.PutBuf(wbuf)
	w.CopyFrom(c1)
	blas.Trmm32(blas.Left, blas.Lower, blas.Trans, blas.Unit, 1, v1, w)
	if m > n {
		blas.Gemm32(blas.Trans, blas.NoTrans, 1, v.View(n, 0, m-n, n), c.View(n, 0, m-n, k), 1, w)
	}
	tview := t.View(0, 0, n, n)
	if trans == blas.Trans {
		blas.Trmm32(blas.Left, blas.Upper, blas.Trans, blas.NonUnit, 1, tview, w)
	} else {
		blas.Trmm32(blas.Left, blas.Upper, blas.NoTrans, blas.NonUnit, 1, tview, w)
	}
	if m > n {
		w2, w2buf := mat.GetMatrix(n, k)
		defer mat.PutBuf(w2buf)
		w2.CopyFrom(w)
		blas.Trmm32(blas.Left, blas.Lower, blas.NoTrans, blas.Unit, 1, v1, w2)
		subRows32(c1, w2)
		blas.Gemm32(blas.NoTrans, blas.NoTrans, -1, v.View(n, 0, m-n, n), w, 1, c.View(n, 0, m-n, k))
		return
	}
	// m == n: the trailing GEMM is gone and W is dead after the
	// subtraction, so V1·W runs in place without the scratch copy.
	blas.Trmm32(blas.Left, blas.Lower, blas.NoTrans, blas.Unit, 1, v1, w)
	subRows32(c1, w)
}

// Tsqrt32 is Tsqrt at float32; same V = [I; V2] contract, R's strictly
// lower storage untouched.
func Tsqrt32(r, a, t *mat.Matrix) { Tsqrt32IB(r, a, t, PanelIB()) }

// Tsqrt32IB is Tsqrt32 with an explicit inner block size.
func Tsqrt32IB(r, a, t *mat.Matrix, ib int) {
	n := r.Cols
	m := a.Rows
	if r.Rows != n {
		panic(fmt.Sprintf("lapack: Tsqrt32 needs square R, got %dx%d", r.Rows, r.Cols))
	}
	if a.Cols != n {
		panic(fmt.Sprintf("lapack: Tsqrt32 A cols %d != R order %d", a.Cols, n))
	}
	if t.Rows < n || t.Cols < n {
		panic(fmt.Sprintf("lapack: Tsqrt32 T too small: %dx%d", t.Rows, t.Cols))
	}
	t.Zero()
	if ib <= 0 {
		ib = PanelIB()
	}
	if n <= ib {
		tsqrtUnblocked32(r, a, t)
		return
	}
	for j0 := 0; j0 < n; j0 += ib {
		bs := min(ib, n-j0)
		v2 := a.View(0, j0, m, bs)
		tb := t.View(j0, j0, bs, bs)
		tsqrtUnblocked32(r.View(j0, j0, bs, bs), v2, tb)
		if j0+bs < n {
			Tsmqr32(blas.Trans, v2, tb, r.View(j0, j0+bs, bs, n-j0-bs), a.View(0, j0+bs, m, n-j0-bs))
		}
		if j0 > 0 {
			y, ybuf := mat.GetMatrix(j0, bs)
			blas.Gemm32(blas.Trans, blas.NoTrans, 1, a.View(0, 0, m, j0), v2, 0, y)
			larftMerge32(t, j0, bs, y)
			mat.PutBuf(ybuf)
		}
	}
}

// tsqrtUnblocked32 is tsqrtUnblocked at float32.
func tsqrtUnblocked32(r, a, t *mat.Matrix) {
	n := r.Cols
	m := a.Rows
	buf := mat.GetBuf(m + n)
	defer mat.PutBuf(buf)
	x := buf.Data[:m]
	w := buf.Data[m:]
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			x[i] = a.At(i, j)
		}
		beta, tau := Larfg32(r.At(j, j), x)
		r.Set(j, j, beta)
		for i := 0; i < m; i++ {
			a.Set(i, j, x[i])
		}
		if tau != 0 && j+1 < n {
			rrow := r.Row(j)[j+1 : n]
			wj := w[:n-j-1]
			copy(wj, rrow)
			for i := 0; i < m; i++ {
				arow := a.Row(i)
				blas.Axpy32(float32(arow[j]), arow[j+1:n], wj)
			}
			t32 := float32(tau)
			blas.Axpy32(-t32, wj, rrow)
			for i := 0; i < m; i++ {
				arow := a.Row(i)
				blas.Axpy32(-t32*float32(arow[j]), wj, arow[j+1:n])
			}
		}
		wt := w[:j]
		for i := range wt {
			wt[i] = 0
		}
		for q := 0; q < m; q++ {
			arow := a.Row(q)
			blas.Axpy32(float32(arow[j]), arow[:j], wt)
		}
		larftColumn32(t, j, tau, wt)
	}
}

// Tsmqr32 is Tsmqr at float32.
func Tsmqr32(trans blas.Transpose, v2, t, c1, c2 *mat.Matrix) {
	m, n := v2.Rows, v2.Cols
	if c1.Rows != n || c2.Rows != m || c1.Cols != c2.Cols {
		panic(fmt.Sprintf("lapack: Tsmqr32 shape mismatch V2=%dx%d C1=%dx%d C2=%dx%d",
			m, n, c1.Rows, c1.Cols, c2.Rows, c2.Cols))
	}
	k := c1.Cols
	w, wbuf := mat.GetMatrix(n, k)
	defer mat.PutBuf(wbuf)
	w.CopyFrom(c1)
	blas.Gemm32(blas.Trans, blas.NoTrans, 1, v2, c2, 1, w)
	tview := t.View(0, 0, n, n)
	if trans == blas.Trans {
		blas.Trmm32(blas.Left, blas.Upper, blas.Trans, blas.NonUnit, 1, tview, w)
	} else {
		blas.Trmm32(blas.Left, blas.Upper, blas.NoTrans, blas.NonUnit, 1, tview, w)
	}
	subRows32(c1, w)
	blas.Gemm32(blas.NoTrans, blas.NoTrans, -1, v2, w, 1, c2)
}

// Ttqrt32 is Ttqrt at float32; strictly lower parts of both tiles stay
// untouched exactly as in the f64 kernel.
func Ttqrt32(r1, r2, t *mat.Matrix) { Ttqrt32IB(r1, r2, t, PanelIB()) }

// Ttqrt32IB is Ttqrt32 with an explicit inner block size.
func Ttqrt32IB(r1, r2, t *mat.Matrix, ib int) {
	n := r1.Cols
	if r1.Rows != n || r2.Rows != n || r2.Cols != n {
		panic(fmt.Sprintf("lapack: Ttqrt32 needs square tiles, got %dx%d and %dx%d",
			r1.Rows, r1.Cols, r2.Rows, r2.Cols))
	}
	if t.Rows < n || t.Cols < n {
		panic(fmt.Sprintf("lapack: Ttqrt32 T too small: %dx%d", t.Rows, t.Cols))
	}
	t.Zero()
	if ib <= 0 {
		ib = PanelIB()
	}
	if n <= ib {
		ttqrtUnblocked32(r1, r2.View(0, 0, n, n), t, 0)
		return
	}
	for j0 := 0; j0 < n; j0 += ib {
		bs := min(ib, n-j0)
		rest := n - j0 - bs
		tb := t.View(j0, j0, bs, bs)
		ttqrtUnblocked32(r1.View(j0, j0, bs, bs), r2.View(0, j0, j0+bs, bs), tb, j0)
		if rest > 0 {
			ttqrtApply32(r1, r2, tb, j0, bs, rest)
		}
		if j0 > 0 {
			y, ybuf := mat.GetMatrix(j0, bs)
			y.CopyFrom(r2.View(0, j0, j0, bs))
			blas.Trmm32(blas.Left, blas.Upper, blas.Trans, blas.NonUnit, 1, r2.View(0, 0, j0, j0), y)
			larftMerge32(t, j0, bs, y)
			mat.PutBuf(ybuf)
		}
	}
}

// ttqrtApply32 is ttqrtApply at float32.
func ttqrtApply32(r1, r2, tb *mat.Matrix, j0, bs, rest int) {
	c1 := r1.View(j0, j0+bs, bs, rest)
	tri := r2.View(j0, j0, bs, bs)
	c2bot := r2.View(j0, j0+bs, bs, rest)
	w, wbuf := mat.GetMatrix(bs, rest)
	defer mat.PutBuf(wbuf)
	w.CopyFrom(c1)
	if j0 > 0 {
		blas.Gemm32(blas.Trans, blas.NoTrans, 1, r2.View(0, j0, j0, bs), r2.View(0, j0+bs, j0, rest), 1, w)
	}
	wt, wtbuf := mat.GetMatrix(bs, rest)
	defer mat.PutBuf(wtbuf)
	wt.CopyFrom(c2bot)
	blas.Trmm32(blas.Left, blas.Upper, blas.Trans, blas.NonUnit, 1, tri, wt)
	addRows32(w, wt)
	blas.Trmm32(blas.Left, blas.Upper, blas.Trans, blas.NonUnit, 1, tb, w)
	subRows32(c1, w)
	if j0 > 0 {
		blas.Gemm32(blas.NoTrans, blas.NoTrans, -1, r2.View(0, j0, j0, bs), w, 1, r2.View(0, j0+bs, j0, rest))
	}
	wt.CopyFrom(w)
	blas.Trmm32(blas.Left, blas.Upper, blas.NoTrans, blas.NonUnit, 1, tri, wt)
	subRows32(c2bot, wt)
}

// ttqrtUnblocked32 is ttqrtUnblocked at float32.
func ttqrtUnblocked32(r1, r2, t *mat.Matrix, off int) {
	n := r1.Cols
	buf := mat.GetBuf(2*n + off)
	defer mat.PutBuf(buf)
	x := buf.Data[: n+off : n+off]
	w := buf.Data[n+off:]
	for j := 0; j < n; j++ {
		h := off + j
		for i := 0; i <= h; i++ {
			x[i] = r2.At(i, j)
		}
		beta, tau := Larfg32(r1.At(j, j), x[:h+1])
		r1.Set(j, j, beta)
		for i := 0; i <= h; i++ {
			r2.Set(i, j, x[i])
		}
		if tau != 0 && j+1 < n {
			r1row := r1.Row(j)[j+1 : n]
			wj := w[:n-j-1]
			copy(wj, r1row)
			for i := 0; i <= h; i++ {
				r2row := r2.Row(i)
				blas.Axpy32(float32(r2row[j]), r2row[j+1:n], wj)
			}
			t32 := float32(tau)
			blas.Axpy32(-t32, wj, r1row)
			for i := 0; i <= h; i++ {
				r2row := r2.Row(i)
				blas.Axpy32(-t32*float32(r2row[j]), wj, r2row[j+1:n])
			}
		}
		wt := w[:j]
		for i := range wt {
			wt[i] = 0
		}
		for q := 0; q <= h; q++ {
			r2row := r2.Row(q)
			i0 := q - off
			if i0 < 0 {
				i0 = 0
			}
			if i0 < j {
				blas.Axpy32(float32(r2row[j]), r2row[i0:j], wt[i0:j])
			}
		}
		larftColumn32(t, j, tau, wt)
	}
}

// Ttmqr32 is Ttmqr at float32.
func Ttmqr32(trans blas.Transpose, v2, t, c1, c2 *mat.Matrix) {
	n := v2.Rows
	if v2.Cols != n || c1.Rows != n || c2.Rows != n || c1.Cols != c2.Cols {
		panic(fmt.Sprintf("lapack: Ttmqr32 shape mismatch V2=%dx%d C1=%dx%d C2=%dx%d",
			v2.Rows, v2.Cols, c1.Rows, c1.Cols, c2.Rows, c2.Cols))
	}
	k := c1.Cols
	w, wbuf := mat.GetMatrix(n, k)
	defer mat.PutBuf(wbuf)
	w.CopyFrom(c2)
	blas.Trmm32(blas.Left, blas.Upper, blas.Trans, blas.NonUnit, 1, v2, w)
	addRows32(w, c1)
	tview := t.View(0, 0, n, n)
	if trans == blas.Trans {
		blas.Trmm32(blas.Left, blas.Upper, blas.Trans, blas.NonUnit, 1, tview, w)
	} else {
		blas.Trmm32(blas.Left, blas.Upper, blas.NoTrans, blas.NonUnit, 1, tview, w)
	}
	subRows32(c1, w)
	blas.Trmm32(blas.Left, blas.Upper, blas.NoTrans, blas.NonUnit, 1, v2, w)
	subRows32(c2, w)
}
