package lapack

import (
	"fmt"

	"luqr/internal/blas"
	"luqr/internal/mat"
)

// Geqrt computes the QR factorization of an m×n tile (m ≥ n) in compact WY
// form: A = Q·R with Q = I − V·T·Vᵀ. On return the upper triangle of a holds
// R, the strictly lower trapezoid holds the Householder vectors V (unit
// diagonal implicit), and t (n×n) holds the upper triangular block reflector
// factor T. This is the PLASMA GEQRT kernel with inner block size ib = n.
//
// The trailing updates and the T-factor construction are organized row-wise
// (rank-1 updates over contiguous rows) to match the row-major layout.
func Geqrt(a, t *mat.Matrix) {
	m, n := a.Rows, a.Cols
	if m < n {
		panic(fmt.Sprintf("lapack: Geqrt requires m >= n, got %dx%d", m, n))
	}
	if t.Rows < n || t.Cols < n {
		panic(fmt.Sprintf("lapack: Geqrt T too small: %dx%d for n=%d", t.Rows, t.Cols, n))
	}
	t.Zero()
	buf := mat.GetBuf(m + n)
	defer mat.PutBuf(buf)
	x := buf.Data[:m]
	w := buf.Data[m:]
	for j := 0; j < n; j++ {
		// Generate the reflector annihilating A[j+1:m, j].
		for i := j + 1; i < m; i++ {
			x[i-j-1] = a.At(i, j)
		}
		beta, tau := Larfg(a.At(j, j), x[:m-j-1])
		a.Set(j, j, beta)
		for i := j + 1; i < m; i++ {
			a.Set(i, j, x[i-j-1])
		}
		// Apply H = I − tau·v·vᵀ to A[j:m, j+1:n], row-wise:
		//   w = vᵀ·A (row j plus v-weighted rows below), then
		//   row_i −= tau·v_i·w.
		if tau != 0 && j+1 < n {
			wj := w[:n-j-1]
			copy(wj, a.Row(j)[j+1:n])
			for i := j + 1; i < m; i++ {
				vi := a.At(i, j)
				if vi == 0 {
					continue
				}
				row := a.Row(i)[j+1 : n]
				for c, rv := range row {
					wj[c] += vi * rv
				}
			}
			rowj := a.Row(j)[j+1 : n]
			for c := range wj {
				rowj[c] -= tau * wj[c]
			}
			for i := j + 1; i < m; i++ {
				vi := tau * a.At(i, j)
				if vi == 0 {
					continue
				}
				row := a.Row(i)[j+1 : n]
				for c := range row {
					row[c] -= vi * wj[c]
				}
			}
		}
		// Extend T: w[i] = V[:, i]ᵀ · v_j for i < j, with V unit lower
		// trapezoidal and v_j's implicit 1 in row j. Accumulated row-wise.
		wt := w[:j]
		copy(wt, a.Row(j)[:j])
		for r := j + 1; r < m; r++ {
			vr := a.At(r, j)
			if vr == 0 {
				continue
			}
			row := a.Row(r)[:j]
			for i, rv := range row {
				wt[i] += rv * vr
			}
		}
		larftColumn(t, j, tau, wt)
	}
}

// Unmqr applies Q or Qᵀ (from a Geqrt factorization held in v's lower
// trapezoid and t) to the m×k matrix c from the left:
//
//	c ← Q·c   (trans == NoTrans)   c ← Qᵀ·c   (trans == Trans)
//
// with Q = I − V·T·Vᵀ. c must have v.Rows rows.
func Unmqr(trans blas.Transpose, v, t, c *mat.Matrix) {
	m, n := v.Rows, v.Cols
	if c.Rows != m {
		panic(fmt.Sprintf("lapack: Unmqr shape mismatch V=%dx%d C=%dx%d", m, n, c.Rows, c.Cols))
	}
	k := c.Cols
	// W = Vᵀ·C, exploiting V's unit lower trapezoidal structure. Every row
	// of W is fully written below, so a pooled (unzeroed) buffer is safe.
	w, wbuf := mat.GetMatrix(n, k)
	defer mat.PutBuf(wbuf)
	for i := 0; i < n; i++ {
		wrow := w.Row(i)
		copy(wrow, c.Row(i)) // the implicit 1 at row i of column i
		for r := i + 1; r < m; r++ {
			vri := v.At(r, i)
			if vri == 0 {
				continue
			}
			crow := c.Row(r)
			for q := 0; q < k; q++ {
				wrow[q] += vri * crow[q]
			}
		}
	}
	// W ← op(T)·W with T upper triangular.
	tview := t.View(0, 0, n, n)
	if trans == blas.Trans {
		blas.Trmm(blas.Left, blas.Upper, blas.Trans, blas.NonUnit, 1, tview, w)
	} else {
		blas.Trmm(blas.Left, blas.Upper, blas.NoTrans, blas.NonUnit, 1, tview, w)
	}
	// C ← C − V·W.
	for i := 0; i < n; i++ {
		// Row i of V has entries v(i, 0..i−1) plus the implicit 1 at col i.
		crow := c.Row(i)
		vrow := v.Row(i)
		for j := 0; j < i; j++ {
			vij := vrow[j]
			if vij == 0 {
				continue
			}
			wrow := w.Row(j)
			for q := 0; q < k; q++ {
				crow[q] -= vij * wrow[q]
			}
		}
		wrow := w.Row(i)
		for q := 0; q < k; q++ {
			crow[q] -= wrow[q]
		}
	}
	for i := n; i < m; i++ {
		crow := c.Row(i)
		vrow := v.Row(i)
		for j := 0; j < n; j++ {
			vij := vrow[j]
			if vij == 0 {
				continue
			}
			wrow := w.Row(j)
			for q := 0; q < k; q++ {
				crow[q] -= vij * wrow[q]
			}
		}
	}
}
