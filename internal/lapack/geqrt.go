package lapack

import (
	"fmt"

	"luqr/internal/blas"
	"luqr/internal/mat"
)

// Geqrt computes the QR factorization of an m×n tile (m ≥ n) in compact WY
// form: A = Q·R with Q = I − V·T·Vᵀ. On return the upper triangle of a holds
// R, the strictly lower trapezoid holds the Householder vectors V (unit
// diagonal implicit), and t (n×n) holds the upper triangular block reflector
// factor T. This is the PLASMA GEQRT kernel.
//
// The factorization is blocked with inner block size ib = PanelIB():
// reflectors are generated an ib-wide strip at a time by the unblocked
// leaf, each strip's block reflector is applied to the trailing columns
// through the TRMM/GEMM path (Unmqr), and the strip's T block is merged
// into the full n×n T by the dlarft recurrence — so the output contract
// (full T, usable by Unmqr and the serialized-factor replay) is unchanged
// from the unblocked kernel.
func Geqrt(a, t *mat.Matrix) { GeqrtIB(a, t, PanelIB()) }

// GeqrtIB is Geqrt with an explicit inner block size, so concurrent
// factorizations with different tuned operating points never share (or
// race on) the process-global knob; ib <= 0 falls back to PanelIB().
func GeqrtIB(a, t *mat.Matrix, ib int) {
	m, n := a.Rows, a.Cols
	if m < n {
		panic(fmt.Sprintf("lapack: Geqrt requires m >= n, got %dx%d", m, n))
	}
	if t.Rows < n || t.Cols < n {
		panic(fmt.Sprintf("lapack: Geqrt T too small: %dx%d for n=%d", t.Rows, t.Cols, n))
	}
	t.Zero()
	if ib <= 0 {
		ib = PanelIB()
	}
	if n <= ib {
		geqrtUnblocked(a, t)
		return
	}
	for j0 := 0; j0 < n; j0 += ib {
		bs := min(ib, n-j0)
		v := a.View(j0, j0, m-j0, bs)
		tb := t.View(j0, j0, bs, bs)
		geqrtUnblocked(v, tb)
		// Trailing update: the strip's reflectors were generated first-to-
		// last, so the trailing columns receive Qᵀ = I − V·Tᵀ·Vᵀ — exactly
		// Unmqr with trans, through the blocked TRMM/GEMM path.
		if j0+bs < n {
			Unmqr(blas.Trans, v, tb, a.View(j0, j0+bs, m-j0, n-j0-bs))
		}
		if j0 > 0 {
			mergeGeqrtT(a, t, j0, bs)
		}
	}
}

// mergeGeqrtT joins the [j0,j0+bs) strip's T block into the full factor:
// it forms the cross-Gram Y = V1ᵀ·V2 of the previous reflectors against the
// strip's (V2 materialized with its implicit unit diagonal) and hands it to
// the dlarft recurrence.
func mergeGeqrtT(a, t *mat.Matrix, j0, bs int) {
	m := a.Rows
	// V2 lives in a[j0:m, j0:j0+bs): unit lower trapezoidal, stored mixed
	// with R's rows. Materialize it so one GEMM forms the Gram block.
	v2, v2buf := mat.GetMatrix(m-j0, bs)
	defer mat.PutBuf(v2buf)
	for i := 0; i < m-j0; i++ {
		dst := v2.Row(i)
		src := a.Row(j0 + i)[j0 : j0+bs]
		for c := range dst {
			switch {
			case i < c:
				dst[c] = 0
			case i == c:
				dst[c] = 1
			default:
				dst[c] = src[c]
			}
		}
	}
	// V1's columns are zero above row j0, so the Gram needs only its dense
	// lower part.
	y, ybuf := mat.GetMatrix(j0, bs)
	defer mat.PutBuf(ybuf)
	blas.Gemm(blas.Trans, blas.NoTrans, 1, a.View(j0, 0, m-j0, j0), v2, 0, y)
	larftMerge(t, j0, bs, y)
}

// geqrtUnblocked is the classical column-by-column Householder QR leaf:
// per-column Larfg, row-wise rank-1 trailing updates, and the incremental
// T construction. a is m×bs, t at least bs×bs (leading block written).
func geqrtUnblocked(a, t *mat.Matrix) {
	m, n := a.Rows, a.Cols
	buf := mat.GetBuf(m + n)
	defer mat.PutBuf(buf)
	x := buf.Data[:m]
	w := buf.Data[m:]
	for j := 0; j < n; j++ {
		// Generate the reflector annihilating A[j+1:m, j].
		for i := j + 1; i < m; i++ {
			x[i-j-1] = a.At(i, j)
		}
		beta, tau := Larfg(a.At(j, j), x[:m-j-1])
		a.Set(j, j, beta)
		for i := j + 1; i < m; i++ {
			a.Set(i, j, x[i-j-1])
		}
		// Apply H = I − tau·v·vᵀ to A[j:m, j+1:n], row-wise:
		//   w = vᵀ·A (row j plus v-weighted rows below), then
		//   row_i −= tau·v_i·w.
		if tau != 0 && j+1 < n {
			wj := w[:n-j-1]
			copy(wj, a.Row(j)[j+1:n])
			for i := j + 1; i < m; i++ {
				blas.Axpy(a.At(i, j), a.Row(i)[j+1:n], wj)
			}
			blas.Axpy(-tau, wj, a.Row(j)[j+1:n])
			for i := j + 1; i < m; i++ {
				blas.Axpy(-tau*a.At(i, j), wj, a.Row(i)[j+1:n])
			}
		}
		// Extend T: w[i] = V[:, i]ᵀ · v_j for i < j, with V unit lower
		// trapezoidal and v_j's implicit 1 in row j. Accumulated row-wise.
		wt := w[:j]
		copy(wt, a.Row(j)[:j])
		for r := j + 1; r < m; r++ {
			blas.Axpy(a.At(r, j), a.Row(r)[:j], wt)
		}
		larftColumn(t, j, tau, wt)
	}
}

// Unmqr applies Q or Qᵀ (from a Geqrt factorization held in v's lower
// trapezoid and t) to the m×k matrix c from the left:
//
//	c ← Q·c   (trans == NoTrans)   c ← Qᵀ·c   (trans == Trans)
//
// with Q = I − V·T·Vᵀ. c must have v.Rows rows.
//
// All three stages run through blocked BLAS: W = VᵀC splits into a unit-
// lower TRMM on the top square of V plus a GEMM on the trapezoid below,
// T is applied by TRMM, and C −= V·W is the mirror TRMM + GEMM pair. The
// unit-diagonal TRMMs never read V's diagonal or upper triangle, so the R
// values sharing the tile are ignored exactly as in the scalar kernel.
func Unmqr(trans blas.Transpose, v, t, c *mat.Matrix) {
	m, n := v.Rows, v.Cols
	if c.Rows != m {
		panic(fmt.Sprintf("lapack: Unmqr shape mismatch V=%dx%d C=%dx%d", m, n, c.Rows, c.Cols))
	}
	k := c.Cols
	v1 := v.View(0, 0, n, n)
	c1 := c.View(0, 0, n, k)
	// W = V1ᵀ·C1 + V2ᵀ·C2. CopyFrom overwrites every row, so a pooled
	// (unzeroed) buffer is safe.
	w, wbuf := mat.GetMatrix(n, k)
	defer mat.PutBuf(wbuf)
	w.CopyFrom(c1)
	blas.Trmm(blas.Left, blas.Lower, blas.Trans, blas.Unit, 1, v1, w)
	if m > n {
		blas.Gemm(blas.Trans, blas.NoTrans, 1, v.View(n, 0, m-n, n), c.View(n, 0, m-n, k), 1, w)
	}
	// W ← op(T)·W with T upper triangular.
	tview := t.View(0, 0, n, n)
	if trans == blas.Trans {
		blas.Trmm(blas.Left, blas.Upper, blas.Trans, blas.NonUnit, 1, tview, w)
	} else {
		blas.Trmm(blas.Left, blas.Upper, blas.NoTrans, blas.NonUnit, 1, tview, w)
	}
	// C1 −= V1·W (via a TRMM on a copy);  C2 −= V2·W.
	w2, w2buf := mat.GetMatrix(n, k)
	defer mat.PutBuf(w2buf)
	w2.CopyFrom(w)
	blas.Trmm(blas.Left, blas.Lower, blas.NoTrans, blas.Unit, 1, v1, w2)
	subRows(c1, w2)
	if m > n {
		blas.Gemm(blas.NoTrans, blas.NoTrans, -1, v.View(n, 0, m-n, n), w, 1, c.View(n, 0, m-n, k))
	}
}
