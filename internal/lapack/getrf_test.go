package lapack

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"luqr/internal/blas"
	"luqr/internal/mat"
)

func randMat(rng *rand.Rand, r, c int) *mat.Matrix {
	m := mat.New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// reconstructLU forms P⁻¹·L·U from a Getrf output to compare against A.
func reconstructLU(lu *mat.Matrix, piv []int) *mat.Matrix {
	m, n := lu.Rows, lu.Cols
	l := mat.New(m, n)
	u := mat.New(n, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			switch {
			case i > j:
				l.Set(i, j, lu.At(i, j))
			case i == j:
				l.Set(i, j, 1)
				u.Set(i, j, lu.At(i, j))
			default:
				if i < n {
					u.Set(i, j, lu.At(i, j))
				}
			}
		}
	}
	prod := mat.New(m, n)
	blas.Gemm(blas.NoTrans, blas.NoTrans, 1, l, u, 0, prod)
	Laswp(prod, piv, true) // undo the pivoting: P⁻¹·L·U
	return prod
}

func TestGetrfReconstructsSquare(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 8, 17, 40} {
		a := randMat(rng, n, n)
		lu := a.Clone()
		piv, err := Getrf(lu)
		if err != nil {
			t.Fatalf("n=%d: unexpected error %v", n, err)
		}
		back := reconstructLU(lu, piv)
		if d := mat.MaxDiff(back, a); d > 1e-12*float64(n)*a.NormMax() {
			t.Fatalf("n=%d: P⁻¹LU differs from A by %g", n, d)
		}
	}
}

func TestGetrfReconstructsTall(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, dims := range [][2]int{{5, 3}, {12, 4}, {40, 10}, {7, 7}} {
		a := randMat(rng, dims[0], dims[1])
		lu := a.Clone()
		piv, err := Getrf(lu)
		if err != nil {
			t.Fatalf("%v: unexpected error %v", dims, err)
		}
		back := reconstructLU(lu, piv)
		if d := mat.MaxDiff(back, a); d > 1e-12*float64(dims[0]) {
			t.Fatalf("%v: reconstruction error %g", dims, d)
		}
	}
}

func TestGetrfMultipliersBounded(t *testing.T) {
	// Partial pivoting guarantees |L_ij| ≤ 1.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		lu := randMat(rng, n+rng.Intn(5), n)
		if _, err := Getrf(lu); err != nil {
			return true // singular random matrix: vanishingly unlikely, skip
		}
		for i := 0; i < lu.Rows; i++ {
			for j := 0; j < n && j < i; j++ {
				if math.Abs(lu.At(i, j)) > 1+1e-14 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGetrfSingular(t *testing.T) {
	a := mat.New(3, 3) // all zeros
	_, err := Getrf(a)
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
}

func TestGetrfNoPivOnDiagonallyDominant(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 20
	a := randMat(rng, n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 2*float64(n)) // strong diagonal dominance
	}
	want := a.Clone()
	if err := GetrfNoPiv(a); err != nil {
		t.Fatalf("GetrfNoPiv failed on diagonally dominant matrix: %v", err)
	}
	back := reconstructLU(a, nil)
	if d := mat.MaxDiff(back, want); d > 1e-10*float64(n)*want.NormMax() {
		t.Fatalf("LU reconstruction error %g", d)
	}
}

func TestGetrfNoPivBreaksDownOnZeroPivot(t *testing.T) {
	a := mat.FromSlice(2, 2, []float64{0, 1, 1, 0})
	if err := GetrfNoPiv(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("expected breakdown, got %v", err)
	}
}

func TestLaswpRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		a := randMat(rng, n, 3)
		orig := a.Clone()
		piv := make([]int, n)
		for k := range piv {
			piv[k] = k + rng.Intn(n-k)
		}
		Laswp(a, piv, false)
		Laswp(a, piv, true)
		return mat.Equal(a, orig)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLaswpVecMatchesMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 9
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	m := &mat.Matrix{Rows: n, Cols: 1, Stride: 1, Data: append([]float64(nil), x...)}
	piv := []int{3, 1, 5, 3, 8, 5, 6, 7, 8}
	LaswpVec(x, piv, false)
	Laswp(m, piv, false)
	for i := range x {
		if x[i] != m.Data[i] {
			t.Fatal("LaswpVec disagrees with Laswp")
		}
	}
}

func TestGetrsSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 4, 16, 33} {
		a := randMat(rng, n, n)
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := mat.MulVec(a, xTrue)
		lu := a.Clone()
		piv, err := Getrf(lu)
		if err != nil {
			t.Fatal(err)
		}
		x := append([]float64(nil), b...)
		GetrsVec(blas.NoTrans, lu, piv, x)
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-9*(1+mat.VecNormInf(xTrue)) {
				t.Fatalf("n=%d: solve error at %d: %g vs %g", n, i, x[i], xTrue[i])
			}
		}
		// Transposed solve.
		bt := mat.MulVec(a.T(), xTrue)
		xt := append([]float64(nil), bt...)
		GetrsVec(blas.Trans, lu, piv, xt)
		for i := range xt {
			if math.Abs(xt[i]-xTrue[i]) > 1e-8*(1+mat.VecNormInf(xTrue)) {
				t.Fatalf("n=%d: transposed solve error at %d", n, i)
			}
		}
	}
}

func TestLUPivotGrowthReturnsDiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randMat(rng, 6, 6)
	lu := a.Clone()
	if _, err := Getrf(lu); err != nil {
		t.Fatal(err)
	}
	p := LUPivotGrowth(lu)
	for j := range p {
		if p[j] != math.Abs(lu.At(j, j)) {
			t.Fatal("LUPivotGrowth must return |U_jj|")
		}
	}
}

func TestInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randMat(rng, 12, 12)
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	prod := mat.New(12, 12)
	blas.Gemm(blas.NoTrans, blas.NoTrans, 1, a, inv, 0, prod)
	if d := mat.MaxDiff(prod, mat.Identity(12)); d > 1e-10 {
		t.Fatalf("A·A⁻¹ deviates from I by %g", d)
	}
}

// TestLaswpColsB1Identity verifies the (B1) Eliminate route:
// A·U⁻¹·L⁻¹·P == A·Akk⁻¹, exercised as Akk·Akk⁻¹ == I.
func TestLaswpColsB1Identity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := 9
	akk := randMat(rng, n, n)
	lu := akk.Clone()
	piv, err := Getrf(lu)
	if err != nil {
		t.Fatal(err)
	}
	x := akk.Clone()
	blas.Trsm(blas.Right, blas.Upper, blas.NoTrans, blas.NonUnit, 1, lu, x)
	blas.Trsm(blas.Right, blas.Lower, blas.NoTrans, blas.Unit, 1, lu, x)
	LaswpCols(x, piv, true) // x := x·P
	if d := mat.MaxDiff(x, mat.Identity(n)); d > 1e-10 {
		t.Fatalf("Akk·Akk⁻¹ deviates from I by %g", d)
	}
}

func TestLaswpColsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := randMat(rng, 4, 7)
	orig := a.Clone()
	piv := []int{2, 5, 2, 3, 6, 5, 6}
	LaswpCols(a, piv, false)
	LaswpCols(a, piv, true)
	if !mat.Equal(a, orig) {
		t.Fatal("LaswpCols forward+inverse is not the identity")
	}
}
