package lapack

import (
	"fmt"

	"luqr/internal/blas"
	"luqr/internal/mat"
)

// UnmqrRight applies Q or Qᵀ (from a Geqrt factorization held in v's lower
// trapezoid and t) to the k×m matrix c from the right:
//
//	c ← c·Q   (trans == NoTrans)   c ← c·Qᵀ   (trans == Trans)
//
// with Q = I − V·T·Vᵀ. c must have v.Rows columns. Used by the block-LU
// variant (B2), whose Eliminate step is A_ik ← A_ik·A_kk⁻¹ = (A_ik·R⁻¹)·Qᵀ.
func UnmqrRight(trans blas.Transpose, v, t, c *mat.Matrix) {
	m, n := v.Rows, v.Cols
	if c.Cols != m {
		panic(fmt.Sprintf("lapack: UnmqrRight shape mismatch V=%dx%d C=%dx%d", m, n, c.Rows, c.Cols))
	}
	k := c.Rows
	// W = C·V (k×n), exploiting V's unit lower trapezoidal structure:
	// W[:, j] = C[:, j] + Σ_{r>j} C[:, r]·v(r, j). Every row is fully
	// written (copy then accumulate), so the pooled buffer is safe unzeroed.
	w, wbuf := mat.GetMatrix(k, n)
	defer mat.PutBuf(wbuf)
	for r := 0; r < k; r++ {
		crow := c.Row(r)
		wrow := w.Row(r)
		copy(wrow, crow[:n]) // the implicit identity block of V
		for q := 0; q < m; q++ {
			vrow := v.Row(q)
			cq := crow[q]
			if cq == 0 {
				continue
			}
			hi := q
			if hi > n {
				hi = n
			}
			// Row q of V holds v(q, j) for j < min(q, n); the diagonal 1 was
			// already added by the copy above.
			for j := 0; j < hi; j++ {
				wrow[j] += cq * vrow[j]
			}
		}
	}
	// W ← W·op(T): c·Q = c − (C·V)·T·Vᵀ, c·Qᵀ = c − (C·V)·Tᵀ·Vᵀ.
	tview := t.View(0, 0, n, n)
	if trans == blas.Trans {
		blas.Trmm(blas.Right, blas.Upper, blas.Trans, blas.NonUnit, 1, tview, w)
	} else {
		blas.Trmm(blas.Right, blas.Upper, blas.NoTrans, blas.NonUnit, 1, tview, w)
	}
	// C ← C − W·Vᵀ: C[:, q] −= Σ_j W[:, j]·v(q, j) (+ the identity part).
	for r := 0; r < k; r++ {
		crow := c.Row(r)
		wrow := w.Row(r)
		for q := 0; q < m; q++ {
			vrow := v.Row(q)
			hi := q
			if hi > n {
				hi = n
			}
			s := 0.0
			for j := 0; j < hi; j++ {
				s += wrow[j] * vrow[j]
			}
			if q < n {
				s += wrow[q] // implicit unit diagonal
			}
			crow[q] -= s
		}
	}
}
