package lapack

import (
	"fmt"
	"math"

	"luqr/internal/blas"
	"luqr/internal/mat"
)

// Resident mixed-precision kernels: float32 arithmetic on float32 storage.
//
// Each routine here mirrors its f32-on-f64 sibling in f32.go operation for
// operation — same pivot semantics, same compact-WY contracts, same scratch
// shapes — with operands held in mat.Matrix32 tile images, so the per-call
// round-on-read/widen-on-write conversions disappear. Because widening a
// float32 to float64 is exact and rounding it back returns the same bits,
// a resident kernel produces bit-identical values to its converting sibling
// whenever the float64 storage holds widened float32 values, which is the
// residency layer's invariant. T factors stay in the caller's float32
// scratch and are widened once per factor task, not per update.

// Laswp32R applies Getrf row interchanges to a float32 tile image, forward
// (inverse == false) or backward (inverse == true), exactly like Laswp.
func Laswp32R(a *mat.Matrix32, piv []int, inverse bool) {
	if !inverse {
		for k := 0; k < len(piv); k++ {
			if piv[k] != k {
				a.SwapRows(k, piv[k])
			}
		}
		return
	}
	for k := len(piv) - 1; k >= 0; k-- {
		if piv[k] != k {
			a.SwapRows(k, piv[k])
		}
	}
}

func absf32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}

// Getrf32R is Getrf32 on float32 storage: LU with partial pivoting,
// recursive right-looking, float32 pivot comparison, float32-zero pivot is
// a breakdown.
func Getrf32R(a *mat.Matrix32) (piv []int, err error) {
	m, n := a.Rows, a.Cols
	if m < n {
		panic(fmt.Sprintf("lapack: Getrf32R requires m >= n, got %dx%d", m, n))
	}
	piv = make([]int, n)
	return piv, getrfRecursive32R(a, piv)
}

func getrfRecursive32R(a *mat.Matrix32, piv []int) (err error) {
	m, n := a.Rows, a.Cols
	if n <= getrfLeaf {
		return getrfUnblocked32R(a, piv)
	}
	n1 := n / 2
	if e := getrfRecursive32R(a.View(0, 0, m, n1), piv[:n1]); e != nil {
		err = e
	}
	Laswp32R(a.View(0, n1, m, n-n1), piv[:n1], false)
	u12 := a.View(0, n1, n1, n-n1)
	blas.Trsm32R(blas.Left, blas.Lower, blas.NoTrans, blas.Unit, 1, a.View(0, 0, n1, n1), u12)
	blas.Gemm32R(blas.NoTrans, blas.NoTrans, -1, a.View(n1, 0, m-n1, n1), u12, 1, a.View(n1, n1, m-n1, n-n1))
	if e := getrfRecursive32R(a.View(n1, n1, m-n1, n-n1), piv[n1:]); e != nil {
		err = e
	}
	for j := n1; j < n; j++ {
		piv[j] += n1
		if piv[j] != j {
			r1, r2 := a.Row(j), a.Row(piv[j])
			for c := 0; c < n1; c++ {
				r1[c], r2[c] = r2[c], r1[c]
			}
		}
	}
	return err
}

// getrfUnblocked32R is getrfUnblocked32 on float32 storage, with the same
// fused next-pivot search.
func getrfUnblocked32R(a *mat.Matrix32, piv []int) (err error) {
	m, n := a.Rows, a.Cols
	d, ld := a.Data, a.Stride
	p, pv := 0, absf32(d[0])
	for i := 1; i < m; i++ {
		if v := absf32(d[i*ld]); v > pv {
			p, pv = i, v
		}
	}
	for k := 0; k < n; k++ {
		piv[k] = p
		if p != k {
			rk := d[k*ld : k*ld+n]
			rp := d[p*ld : p*ld+n]
			for c, v := range rk {
				rk[c], rp[c] = rp[c], v
			}
		}
		akk := d[k*ld+k]
		last := k+1 == n
		if akk == 0 {
			err = ErrSingular
			if !last {
				p, pv = k+1, absf32(d[(k+1)*ld+k+1])
				for i := k + 2; i < m; i++ {
					if v := absf32(d[i*ld+k+1]); v > pv {
						p, pv = i, v
					}
				}
			}
			continue
		}
		inv := 1 / akk
		rowk := d[k*ld+k+1 : k*ld+n]
		pv = -1
		for i := k + 1; i < m; i++ {
			off := i * ld
			lik := d[off+k] * inv
			d[off+k] = lik
			rowi := d[off+k+1 : off+n]
			if lik != 0 {
				for j, v := range rowk {
					rowi[j] = rowi[j] - lik*v
				}
			}
			if !last {
				if v := absf32(rowi[0]); v > pv {
					p, pv = i, v
				}
			}
		}
	}
	return err
}

// Larfg32R is Larfg32 on float32 storage: same norm, sign choice, tau, and
// scaling, all at float32.
func Larfg32R(alpha float32, x []float32) (beta, tau float32) {
	sigma := blas.Dot32R(x, x)
	if sigma == 0 {
		return alpha, 0
	}
	mu := float32(math.Sqrt(float64(alpha*alpha + sigma)))
	var b32 float32
	if alpha <= 0 {
		b32 = mu
	} else {
		b32 = -mu
	}
	t32 := (b32 - alpha) / b32
	blas.Scal32R(1/(alpha-b32), x)
	return b32, t32
}

// larftColumn32R is larftColumn32 on float32 storage.
func larftColumn32R(t *mat.Matrix32, j int, tau float32, w []float32) {
	for r := 0; r < j; r++ {
		var s float32
		row := t.Row(r)
		for c := r; c < j; c++ {
			s += row[c] * w[c]
		}
		t.Set(r, j, -tau*s)
	}
	t.Set(j, j, tau)
}

// larftMerge32R is larftMerge32 on float32 storage.
func larftMerge32R(t *mat.Matrix32, j0, bs int, y *mat.Matrix32) {
	blas.Trmm32R(blas.Left, blas.Upper, blas.NoTrans, blas.NonUnit, 1, t.View(0, 0, j0, j0), y)
	blas.Trmm32R(blas.Right, blas.Upper, blas.NoTrans, blas.NonUnit, 1, t.View(j0, j0, bs, bs), y)
	for i := 0; i < j0; i++ {
		dst := t.Row(i)[j0 : j0+bs]
		src := y.Row(i)
		for c := range dst {
			dst[c] = -src[c]
		}
	}
}

// subRows32R computes dst −= src row-wise.
func subRows32R(dst, src *mat.Matrix32) {
	for i := 0; i < dst.Rows; i++ {
		d, s := dst.Row(i), src.Row(i)
		for c := range d {
			d[c] = d[c] - s[c]
		}
	}
}

// addRows32R computes dst += src row-wise.
func addRows32R(dst, src *mat.Matrix32) {
	for i := 0; i < dst.Rows; i++ {
		d, s := dst.Row(i), src.Row(i)
		for c := range d {
			d[c] = d[c] + s[c]
		}
	}
}

// Geqrt32R is Geqrt32 on float32 storage: R and V in a, full T in t.
func Geqrt32R(a, t *mat.Matrix32) { Geqrt32RIB(a, t, PanelIB()) }

// Geqrt32RIB is Geqrt32R with an explicit inner block size.
func Geqrt32RIB(a, t *mat.Matrix32, ib int) {
	m, n := a.Rows, a.Cols
	if m < n {
		panic(fmt.Sprintf("lapack: Geqrt32R requires m >= n, got %dx%d", m, n))
	}
	if t.Rows < n || t.Cols < n {
		panic(fmt.Sprintf("lapack: Geqrt32R T too small: %dx%d for n=%d", t.Rows, t.Cols, n))
	}
	t.Zero()
	if ib <= 0 {
		ib = PanelIB()
	}
	if n <= ib {
		geqrtUnblocked32R(a, t)
		return
	}
	for j0 := 0; j0 < n; j0 += ib {
		bs := min(ib, n-j0)
		v := a.View(j0, j0, m-j0, bs)
		tb := t.View(j0, j0, bs, bs)
		geqrtUnblocked32R(v, tb)
		if j0+bs < n {
			Unmqr32R(blas.Trans, v, tb, a.View(j0, j0+bs, m-j0, n-j0-bs))
		}
		if j0 > 0 {
			mergeGeqrtT32R(a, t, j0, bs)
		}
	}
}

// mergeGeqrtT32R is mergeGeqrtT32 on float32 storage. The V2
// materialization copies stored values (and writes exact 0/1), so it
// introduces no rounding of its own.
func mergeGeqrtT32R(a, t *mat.Matrix32, j0, bs int) {
	m := a.Rows
	v2, v2buf := mat.GetMatrix32(m-j0, bs)
	defer mat.PutBuf32(v2buf)
	for i := 0; i < m-j0; i++ {
		dst := v2.Row(i)
		src := a.Row(j0 + i)[j0 : j0+bs]
		for c := range dst {
			switch {
			case i < c:
				dst[c] = 0
			case i == c:
				dst[c] = 1
			default:
				dst[c] = src[c]
			}
		}
	}
	y, ybuf := mat.GetMatrix32(j0, bs)
	defer mat.PutBuf32(ybuf)
	blas.Gemm32R(blas.Trans, blas.NoTrans, 1, a.View(j0, 0, m-j0, j0), v2, 0, y)
	larftMerge32R(t, j0, bs, y)
}

// geqrtUnblocked32R is geqrtUnblocked32 on float32 storage.
func geqrtUnblocked32R(a, t *mat.Matrix32) {
	m, n := a.Rows, a.Cols
	buf := mat.GetBuf32(m + n)
	defer mat.PutBuf32(buf)
	x := buf.Data[:m]
	w := buf.Data[m:]
	for j := 0; j < n; j++ {
		for i := j + 1; i < m; i++ {
			x[i-j-1] = a.At(i, j)
		}
		beta, tau := Larfg32R(a.At(j, j), x[:m-j-1])
		a.Set(j, j, beta)
		for i := j + 1; i < m; i++ {
			a.Set(i, j, x[i-j-1])
		}
		if tau != 0 && j+1 < n {
			wj := w[:n-j-1]
			copy(wj, a.Row(j)[j+1:n])
			for i := j + 1; i < m; i++ {
				blas.Axpy32R(a.At(i, j), a.Row(i)[j+1:n], wj)
			}
			blas.Axpy32R(-tau, wj, a.Row(j)[j+1:n])
			for i := j + 1; i < m; i++ {
				blas.Axpy32R(-tau*a.At(i, j), wj, a.Row(i)[j+1:n])
			}
		}
		wt := w[:j]
		copy(wt, a.Row(j)[:j])
		for r := j + 1; r < m; r++ {
			blas.Axpy32R(a.At(r, j), a.Row(r)[:j], wt)
		}
		larftColumn32R(t, j, tau, wt)
	}
}

// Unmqr32R is Unmqr32 on float32 storage.
func Unmqr32R(trans blas.Transpose, v, t, c *mat.Matrix32) {
	m, n := v.Rows, v.Cols
	if c.Rows != m {
		panic(fmt.Sprintf("lapack: Unmqr32R shape mismatch V=%dx%d C=%dx%d", m, n, c.Rows, c.Cols))
	}
	k := c.Cols
	v1 := v.View(0, 0, n, n)
	c1 := c.View(0, 0, n, k)
	w, wbuf := mat.GetMatrix32(n, k)
	defer mat.PutBuf32(wbuf)
	w.CopyFrom(c1)
	blas.Trmm32R(blas.Left, blas.Lower, blas.Trans, blas.Unit, 1, v1, w)
	if m > n {
		blas.Gemm32R(blas.Trans, blas.NoTrans, 1, v.View(n, 0, m-n, n), c.View(n, 0, m-n, k), 1, w)
	}
	tview := t.View(0, 0, n, n)
	if trans == blas.Trans {
		blas.Trmm32R(blas.Left, blas.Upper, blas.Trans, blas.NonUnit, 1, tview, w)
	} else {
		blas.Trmm32R(blas.Left, blas.Upper, blas.NoTrans, blas.NonUnit, 1, tview, w)
	}
	if m > n {
		w2, w2buf := mat.GetMatrix32(n, k)
		defer mat.PutBuf32(w2buf)
		w2.CopyFrom(w)
		blas.Trmm32R(blas.Left, blas.Lower, blas.NoTrans, blas.Unit, 1, v1, w2)
		subRows32R(c1, w2)
		blas.Gemm32R(blas.NoTrans, blas.NoTrans, -1, v.View(n, 0, m-n, n), w, 1, c.View(n, 0, m-n, k))
		return
	}
	// m == n: the trailing GEMM is gone and W is dead after the
	// subtraction, so V1·W runs in place without the scratch copy.
	blas.Trmm32R(blas.Left, blas.Lower, blas.NoTrans, blas.Unit, 1, v1, w)
	subRows32R(c1, w)
}

// Tsqrt32R is Tsqrt32 on float32 storage.
func Tsqrt32R(r, a, t *mat.Matrix32) { Tsqrt32RIB(r, a, t, PanelIB()) }

// Tsqrt32RIB is Tsqrt32R with an explicit inner block size.
func Tsqrt32RIB(r, a, t *mat.Matrix32, ib int) {
	n := r.Cols
	m := a.Rows
	if r.Rows != n {
		panic(fmt.Sprintf("lapack: Tsqrt32R needs square R, got %dx%d", r.Rows, r.Cols))
	}
	if a.Cols != n {
		panic(fmt.Sprintf("lapack: Tsqrt32R A cols %d != R order %d", a.Cols, n))
	}
	if t.Rows < n || t.Cols < n {
		panic(fmt.Sprintf("lapack: Tsqrt32R T too small: %dx%d", t.Rows, t.Cols))
	}
	t.Zero()
	if ib <= 0 {
		ib = PanelIB()
	}
	if n <= ib {
		tsqrtUnblocked32R(r, a, t)
		return
	}
	for j0 := 0; j0 < n; j0 += ib {
		bs := min(ib, n-j0)
		v2 := a.View(0, j0, m, bs)
		tb := t.View(j0, j0, bs, bs)
		tsqrtUnblocked32R(r.View(j0, j0, bs, bs), v2, tb)
		if j0+bs < n {
			Tsmqr32R(blas.Trans, v2, tb, r.View(j0, j0+bs, bs, n-j0-bs), a.View(0, j0+bs, m, n-j0-bs))
		}
		if j0 > 0 {
			y, ybuf := mat.GetMatrix32(j0, bs)
			blas.Gemm32R(blas.Trans, blas.NoTrans, 1, a.View(0, 0, m, j0), v2, 0, y)
			larftMerge32R(t, j0, bs, y)
			mat.PutBuf32(ybuf)
		}
	}
}

// tsqrtUnblocked32R is tsqrtUnblocked32 on float32 storage.
func tsqrtUnblocked32R(r, a, t *mat.Matrix32) {
	n := r.Cols
	m := a.Rows
	buf := mat.GetBuf32(m + n)
	defer mat.PutBuf32(buf)
	x := buf.Data[:m]
	w := buf.Data[m:]
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			x[i] = a.At(i, j)
		}
		beta, tau := Larfg32R(r.At(j, j), x)
		r.Set(j, j, beta)
		for i := 0; i < m; i++ {
			a.Set(i, j, x[i])
		}
		if tau != 0 && j+1 < n {
			rrow := r.Row(j)[j+1 : n]
			wj := w[:n-j-1]
			copy(wj, rrow)
			for i := 0; i < m; i++ {
				arow := a.Row(i)
				blas.Axpy32R(arow[j], arow[j+1:n], wj)
			}
			blas.Axpy32R(-tau, wj, rrow)
			for i := 0; i < m; i++ {
				arow := a.Row(i)
				blas.Axpy32R(-tau*arow[j], wj, arow[j+1:n])
			}
		}
		wt := w[:j]
		for i := range wt {
			wt[i] = 0
		}
		for q := 0; q < m; q++ {
			arow := a.Row(q)
			blas.Axpy32R(arow[j], arow[:j], wt)
		}
		larftColumn32R(t, j, tau, wt)
	}
}

// Tsmqr32R is Tsmqr32 on float32 storage.
func Tsmqr32R(trans blas.Transpose, v2, t, c1, c2 *mat.Matrix32) {
	m, n := v2.Rows, v2.Cols
	if c1.Rows != n || c2.Rows != m || c1.Cols != c2.Cols {
		panic(fmt.Sprintf("lapack: Tsmqr32R shape mismatch V2=%dx%d C1=%dx%d C2=%dx%d",
			m, n, c1.Rows, c1.Cols, c2.Rows, c2.Cols))
	}
	k := c1.Cols
	w, wbuf := mat.GetMatrix32(n, k)
	defer mat.PutBuf32(wbuf)
	w.CopyFrom(c1)
	blas.Gemm32R(blas.Trans, blas.NoTrans, 1, v2, c2, 1, w)
	tview := t.View(0, 0, n, n)
	if trans == blas.Trans {
		blas.Trmm32R(blas.Left, blas.Upper, blas.Trans, blas.NonUnit, 1, tview, w)
	} else {
		blas.Trmm32R(blas.Left, blas.Upper, blas.NoTrans, blas.NonUnit, 1, tview, w)
	}
	subRows32R(c1, w)
	blas.Gemm32R(blas.NoTrans, blas.NoTrans, -1, v2, w, 1, c2)
}

// Ttqrt32R is Ttqrt32 on float32 storage.
func Ttqrt32R(r1, r2, t *mat.Matrix32) { Ttqrt32RIB(r1, r2, t, PanelIB()) }

// Ttqrt32RIB is Ttqrt32R with an explicit inner block size.
func Ttqrt32RIB(r1, r2, t *mat.Matrix32, ib int) {
	n := r1.Cols
	if r1.Rows != n || r2.Rows != n || r2.Cols != n {
		panic(fmt.Sprintf("lapack: Ttqrt32R needs square tiles, got %dx%d and %dx%d",
			r1.Rows, r1.Cols, r2.Rows, r2.Cols))
	}
	if t.Rows < n || t.Cols < n {
		panic(fmt.Sprintf("lapack: Ttqrt32R T too small: %dx%d", t.Rows, t.Cols))
	}
	t.Zero()
	if ib <= 0 {
		ib = PanelIB()
	}
	if n <= ib {
		ttqrtUnblocked32R(r1, r2.View(0, 0, n, n), t, 0)
		return
	}
	for j0 := 0; j0 < n; j0 += ib {
		bs := min(ib, n-j0)
		rest := n - j0 - bs
		tb := t.View(j0, j0, bs, bs)
		ttqrtUnblocked32R(r1.View(j0, j0, bs, bs), r2.View(0, j0, j0+bs, bs), tb, j0)
		if rest > 0 {
			ttqrtApply32R(r1, r2, tb, j0, bs, rest)
		}
		if j0 > 0 {
			y, ybuf := mat.GetMatrix32(j0, bs)
			y.CopyFrom(r2.View(0, j0, j0, bs))
			blas.Trmm32R(blas.Left, blas.Upper, blas.Trans, blas.NonUnit, 1, r2.View(0, 0, j0, j0), y)
			larftMerge32R(t, j0, bs, y)
			mat.PutBuf32(ybuf)
		}
	}
}

// ttqrtApply32R is ttqrtApply32 on float32 storage.
func ttqrtApply32R(r1, r2, tb *mat.Matrix32, j0, bs, rest int) {
	c1 := r1.View(j0, j0+bs, bs, rest)
	tri := r2.View(j0, j0, bs, bs)
	c2bot := r2.View(j0, j0+bs, bs, rest)
	w, wbuf := mat.GetMatrix32(bs, rest)
	defer mat.PutBuf32(wbuf)
	w.CopyFrom(c1)
	if j0 > 0 {
		blas.Gemm32R(blas.Trans, blas.NoTrans, 1, r2.View(0, j0, j0, bs), r2.View(0, j0+bs, j0, rest), 1, w)
	}
	wt, wtbuf := mat.GetMatrix32(bs, rest)
	defer mat.PutBuf32(wtbuf)
	wt.CopyFrom(c2bot)
	blas.Trmm32R(blas.Left, blas.Upper, blas.Trans, blas.NonUnit, 1, tri, wt)
	addRows32R(w, wt)
	blas.Trmm32R(blas.Left, blas.Upper, blas.Trans, blas.NonUnit, 1, tb, w)
	subRows32R(c1, w)
	if j0 > 0 {
		blas.Gemm32R(blas.NoTrans, blas.NoTrans, -1, r2.View(0, j0, j0, bs), w, 1, r2.View(0, j0+bs, j0, rest))
	}
	wt.CopyFrom(w)
	blas.Trmm32R(blas.Left, blas.Upper, blas.NoTrans, blas.NonUnit, 1, tri, wt)
	subRows32R(c2bot, wt)
}

// ttqrtUnblocked32R is ttqrtUnblocked32 on float32 storage.
func ttqrtUnblocked32R(r1, r2, t *mat.Matrix32, off int) {
	n := r1.Cols
	buf := mat.GetBuf32(2*n + off)
	defer mat.PutBuf32(buf)
	x := buf.Data[: n+off : n+off]
	w := buf.Data[n+off:]
	for j := 0; j < n; j++ {
		h := off + j
		for i := 0; i <= h; i++ {
			x[i] = r2.At(i, j)
		}
		beta, tau := Larfg32R(r1.At(j, j), x[:h+1])
		r1.Set(j, j, beta)
		for i := 0; i <= h; i++ {
			r2.Set(i, j, x[i])
		}
		if tau != 0 && j+1 < n {
			r1row := r1.Row(j)[j+1 : n]
			wj := w[:n-j-1]
			copy(wj, r1row)
			for i := 0; i <= h; i++ {
				r2row := r2.Row(i)
				blas.Axpy32R(r2row[j], r2row[j+1:n], wj)
			}
			blas.Axpy32R(-tau, wj, r1row)
			for i := 0; i <= h; i++ {
				r2row := r2.Row(i)
				blas.Axpy32R(-tau*r2row[j], wj, r2row[j+1:n])
			}
		}
		wt := w[:j]
		for i := range wt {
			wt[i] = 0
		}
		for q := 0; q <= h; q++ {
			r2row := r2.Row(q)
			i0 := q - off
			if i0 < 0 {
				i0 = 0
			}
			if i0 < j {
				blas.Axpy32R(r2row[j], r2row[i0:j], wt[i0:j])
			}
		}
		larftColumn32R(t, j, tau, wt)
	}
}

// Ttmqr32R is Ttmqr32 on float32 storage.
func Ttmqr32R(trans blas.Transpose, v2, t, c1, c2 *mat.Matrix32) {
	n := v2.Rows
	if v2.Cols != n || c1.Rows != n || c2.Rows != n || c1.Cols != c2.Cols {
		panic(fmt.Sprintf("lapack: Ttmqr32R shape mismatch V2=%dx%d C1=%dx%d C2=%dx%d",
			v2.Rows, v2.Cols, c1.Rows, c1.Cols, c2.Rows, c2.Cols))
	}
	k := c1.Cols
	w, wbuf := mat.GetMatrix32(n, k)
	defer mat.PutBuf32(wbuf)
	w.CopyFrom(c2)
	blas.Trmm32R(blas.Left, blas.Upper, blas.Trans, blas.NonUnit, 1, v2, w)
	addRows32R(w, c1)
	tview := t.View(0, 0, n, n)
	if trans == blas.Trans {
		blas.Trmm32R(blas.Left, blas.Upper, blas.Trans, blas.NonUnit, 1, tview, w)
	} else {
		blas.Trmm32R(blas.Left, blas.Upper, blas.NoTrans, blas.NonUnit, 1, tview, w)
	}
	subRows32R(c1, w)
	blas.Trmm32R(blas.Left, blas.Upper, blas.NoTrans, blas.NonUnit, 1, v2, w)
	subRows32R(c2, w)
}
