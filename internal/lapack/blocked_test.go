package lapack

import (
	"math"
	"math/rand"
	"testing"

	"luqr/internal/mat"
)

// refGetrf is the classical textbook right-looking elimination, kept as an
// independent reference for the recursive Getrf: same pivot rule (first
// strict column max), scalar updates in the canonical order.
func refGetrf(a *mat.Matrix) ([]int, error) {
	m, n := a.Rows, a.Cols
	piv := make([]int, n)
	var err error
	for k := 0; k < n; k++ {
		p, pv := k, math.Abs(a.At(k, k))
		for i := k + 1; i < m; i++ {
			if v := math.Abs(a.At(i, k)); v > pv {
				p, pv = i, v
			}
		}
		piv[k] = p
		if p != k {
			a.SwapRows(k, p)
		}
		akk := a.At(k, k)
		if akk == 0 {
			err = ErrSingular
			continue
		}
		for i := k + 1; i < m; i++ {
			lik := a.At(i, k) / akk
			a.Set(i, k, lik)
			for j := k + 1; j < n; j++ {
				a.Set(i, j, a.At(i, j)-lik*a.At(k, j))
			}
		}
	}
	return piv, err
}

// withPanelIB runs f with the inner block size pinned to ib, restoring the
// previous value afterwards.
func withPanelIB(ib int, f func()) {
	old := PanelIB()
	SetPanelIB(ib)
	defer SetPanelIB(old)
	f()
}

var blockedShapes = []struct {
	name string
	m, n int
}{
	{"nb8", 8, 8},
	{"nb40", 40, 40}, // not a multiple of the default ib=32
	{"nb128", 128, 128},
	{"nb250", 250, 250}, // non-power-of-two production tile
	{"odd", 133, 97},    // neither dim a multiple of any ib below
	{"tall", 260, 250},  // padded-N trapezoid (m > n)
}

// TestGetrfMatchesReference checks the recursive Getrf against the classical
// elimination: identical pivot sequences and factors equal to rounding.
func TestGetrfMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, s := range blockedShapes {
		t.Run(s.name, func(t *testing.T) {
			a0 := randMat(rng, s.m, s.n)
			ref := a0.Clone()
			refPiv, refErr := refGetrf(ref)

			got := a0.Clone()
			piv, err := Getrf(got)
			if (err != nil) != (refErr != nil) {
				t.Fatalf("error mismatch: recursive %v, reference %v", err, refErr)
			}
			for k := range refPiv {
				if piv[k] != refPiv[k] {
					t.Fatalf("pivot sequence diverges at step %d: got %d, want %d", k, piv[k], refPiv[k])
				}
			}
			tol := 1e-9 * float64(s.n) * (1 + ref.NormMax())
			if d := mat.MaxDiff(got, ref); d > tol {
				t.Fatalf("factors differ by %g (tol %g)", d, tol)
			}
		})
	}
}

// TestGeqrtBlockedMatchesUnblocked factors the same tile with the blocked
// strips (several inner block sizes, including non-divisors of n) and with
// the unblocked leaf (ib ≥ n), and requires identical V, R, and T factors
// up to rounding — the contract that lets the blocked kernel slot in under
// the serialized-factor replay unchanged.
func TestGeqrtBlockedMatchesUnblocked(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, s := range blockedShapes {
		a0 := randMat(rng, s.m, s.n)
		var aRef, tRef *mat.Matrix
		withPanelIB(s.n+1, func() {
			aRef = a0.Clone()
			tRef = mat.New(s.n, s.n)
			Geqrt(aRef, tRef)
		})
		for _, ib := range []int{7, 32} {
			if ib >= s.n {
				continue
			}
			var aB, tB *mat.Matrix
			withPanelIB(ib, func() {
				aB = a0.Clone()
				tB = mat.New(s.n, s.n)
				Geqrt(aB, tB)
			})
			tol := 1e-8 * float64(s.m) * (1 + aRef.NormMax())
			if d := mat.MaxDiff(aB, aRef); d > tol {
				t.Fatalf("%s ib=%d: V/R differ from unblocked by %g (tol %g)", s.name, ib, d, tol)
			}
			if d := mat.MaxDiff(tB, tRef); d > tol {
				t.Fatalf("%s ib=%d: T differs from unblocked by %g (tol %g)", s.name, ib, d, tol)
			}
		}
	}
}

// TestTsqrtBlockedMatchesUnblocked does the same for the TS kernel: an
// upper-triangular top tile stacked on a full tile, with the lower junk of
// the R tile required to survive both paths.
func TestTsqrtBlockedMatchesUnblocked(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, nb := range []int{8, 40, 128, 250} {
		r0 := mat.New(nb, nb)
		for i := 0; i < nb; i++ {
			for j := 0; j < nb; j++ {
				if j >= i {
					r0.Set(i, j, rng.NormFloat64())
				} else {
					r0.Set(i, j, 777)
				}
			}
		}
		a0 := randMat(rng, nb, nb)
		var rRef, aRef, tRef *mat.Matrix
		withPanelIB(nb+1, func() {
			rRef, aRef, tRef = r0.Clone(), a0.Clone(), mat.New(nb, nb)
			Tsqrt(rRef, aRef, tRef)
		})
		for _, ib := range []int{7, 32} {
			if ib >= nb {
				continue
			}
			var rB, aB, tB *mat.Matrix
			withPanelIB(ib, func() {
				rB, aB, tB = r0.Clone(), a0.Clone(), mat.New(nb, nb)
				Tsqrt(rB, aB, tB)
			})
			for i := 1; i < nb; i++ {
				for j := 0; j < i; j++ {
					if rB.At(i, j) != 777 {
						t.Fatalf("nb=%d ib=%d: blocked Tsqrt touched lower part of R at (%d,%d)", nb, ib, i, j)
					}
				}
			}
			tol := 1e-8 * float64(nb) * (1 + rRef.NormMax() + aRef.NormMax())
			if d := maxDiffUpper(rB, rRef); d > tol {
				t.Fatalf("nb=%d ib=%d: R differs by %g (tol %g)", nb, ib, d, tol)
			}
			if d := mat.MaxDiff(aB, aRef); d > tol {
				t.Fatalf("nb=%d ib=%d: V2 differs by %g (tol %g)", nb, ib, d, tol)
			}
			if d := mat.MaxDiff(tB, tRef); d > tol {
				t.Fatalf("nb=%d ib=%d: T differs by %g (tol %g)", nb, ib, d, tol)
			}
		}
	}
}

// TestTtqrtBlockedMatchesUnblocked: triangle-on-triangle, both tiles' lower
// junk preserved, trapezoidal V2 strips exercised at several inner blocks.
func TestTtqrtBlockedMatchesUnblocked(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, nb := range []int{8, 40, 128, 250} {
		mkTri := func() *mat.Matrix {
			m := mat.New(nb, nb)
			for i := 0; i < nb; i++ {
				for j := 0; j < nb; j++ {
					if j >= i {
						m.Set(i, j, rng.NormFloat64())
					} else {
						m.Set(i, j, 555)
					}
				}
			}
			return m
		}
		r1o, r2o := mkTri(), mkTri()
		var r1Ref, r2Ref, tRef *mat.Matrix
		withPanelIB(nb+1, func() {
			r1Ref, r2Ref, tRef = r1o.Clone(), r2o.Clone(), mat.New(nb, nb)
			Ttqrt(r1Ref, r2Ref, tRef)
		})
		for _, ib := range []int{7, 32} {
			if ib >= nb {
				continue
			}
			var r1B, r2B, tB *mat.Matrix
			withPanelIB(ib, func() {
				r1B, r2B, tB = r1o.Clone(), r2o.Clone(), mat.New(nb, nb)
				Ttqrt(r1B, r2B, tB)
			})
			for i := 1; i < nb; i++ {
				for j := 0; j < i; j++ {
					if r1B.At(i, j) != 555 || r2B.At(i, j) != 555 {
						t.Fatalf("nb=%d ib=%d: blocked Ttqrt touched a lower triangle at (%d,%d)", nb, ib, i, j)
					}
				}
			}
			tol := 1e-8 * float64(nb) * (1 + r1Ref.NormMax() + r2Ref.NormMax())
			if d := maxDiffUpper(r1B, r1Ref); d > tol {
				t.Fatalf("nb=%d ib=%d: merged R differs by %g (tol %g)", nb, ib, d, tol)
			}
			if d := maxDiffUpper(r2B, r2Ref); d > tol {
				t.Fatalf("nb=%d ib=%d: V2 differs by %g (tol %g)", nb, ib, d, tol)
			}
			if d := mat.MaxDiff(tB, tRef); d > tol {
				t.Fatalf("nb=%d ib=%d: T differs by %g (tol %g)", nb, ib, d, tol)
			}
		}
	}
}

// maxDiffUpper compares only the upper triangles (the defined region of the
// R-tile outputs; the strictly-lower parts hold sentinels or V data).
func maxDiffUpper(a, b *mat.Matrix) float64 {
	d := 0.0
	for i := 0; i < a.Rows; i++ {
		for j := i; j < a.Cols; j++ {
			if v := math.Abs(a.At(i, j) - b.At(i, j)); v > d {
				d = v
			}
		}
	}
	return d
}

// TestSetPanelIBClamps: out-of-range values reset to the default.
func TestSetPanelIB(t *testing.T) {
	old := PanelIB()
	defer SetPanelIB(old)
	SetPanelIB(48)
	if got := PanelIB(); got != 48 {
		t.Fatalf("PanelIB = %d after SetPanelIB(48)", got)
	}
	SetPanelIB(0)
	if got := PanelIB(); got != defaultPanelIB {
		t.Fatalf("PanelIB = %d after SetPanelIB(0), want default %d", got, defaultPanelIB)
	}
}
