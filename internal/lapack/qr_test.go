package lapack

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"luqr/internal/blas"
	"luqr/internal/mat"
)

func TestLarfgAnnihilates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(10)
		alpha := rng.NormFloat64()
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		orig := append([]float64{alpha}, x...)
		beta, tau := Larfg(alpha, x)
		// Apply H = I − tau·v·vᵀ to the original vector: must give (beta, 0).
		v := append([]float64{1}, x...)
		s := 0.0
		for i := range v {
			s += v[i] * orig[i]
		}
		got := make([]float64, len(orig))
		for i := range orig {
			got[i] = orig[i] - tau*s*v[i]
		}
		if math.Abs(got[0]-beta) > 1e-12*(1+math.Abs(beta)) {
			t.Fatalf("H·x head = %g, want beta = %g", got[0], beta)
		}
		for i := 1; i < len(got); i++ {
			if math.Abs(got[i]) > 1e-12*(1+math.Abs(beta)) {
				t.Fatalf("H·x tail not annihilated: %g at %d", got[i], i)
			}
		}
		// Norm preservation: |beta| = ‖(alpha, x)‖₂.
		if tau != 0 {
			if d := math.Abs(math.Abs(beta) - mat.VecNorm2(orig)); d > 1e-12*(1+math.Abs(beta)) {
				t.Fatalf("beta magnitude off by %g", d)
			}
		}
	}
}

func TestLarfgZeroTail(t *testing.T) {
	beta, tau := Larfg(3.5, []float64{0, 0, 0})
	if tau != 0 || beta != 3.5 {
		t.Fatalf("Larfg with zero tail: beta=%g tau=%g", beta, tau)
	}
}

// explicitQ builds the dense Q = I − V·T·Vᵀ of a Geqrt factorization by
// applying Unmqr(NoTrans) to the identity.
func explicitQ(v, t *mat.Matrix) *mat.Matrix {
	q := mat.Identity(v.Rows)
	Unmqr(blas.NoTrans, v, t, q)
	return q
}

func orthoError(q *mat.Matrix) float64 {
	n := q.Rows
	qtq := mat.New(n, n)
	blas.Gemm(blas.Trans, blas.NoTrans, 1, q, q, 0, qtq)
	return mat.MaxDiff(qtq, mat.Identity(n))
}

func TestGeqrtFactorization(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, dims := range [][2]int{{1, 1}, {3, 3}, {8, 8}, {16, 16}, {20, 12}, {40, 40}} {
		m, n := dims[0], dims[1]
		a0 := randMat(rng, m, n)
		a := a0.Clone()
		tt := mat.New(n, n)
		Geqrt(a, tt)
		// R upper triangular is in the upper triangle of a.
		r := mat.New(m, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				r.Set(i, j, a.At(i, j))
			}
		}
		q := explicitQ(a, tt)
		if e := orthoError(q); e > 1e-12*float64(m) {
			t.Fatalf("%v: Q not orthogonal: %g", dims, e)
		}
		qr := mat.New(m, n)
		blas.Gemm(blas.NoTrans, blas.NoTrans, 1, q, r, 0, qr)
		if d := mat.MaxDiff(qr, a0); d > 1e-11*float64(m) {
			t.Fatalf("%v: Q·R differs from A by %g", dims, d)
		}
	}
}

func TestUnmqrTransUndoesNoTrans(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(12)
		n := 1 + rng.Intn(m)
		a := randMat(rng, m, n)
		tt := mat.New(n, n)
		Geqrt(a, tt)
		c0 := randMat(rng, m, 1+rng.Intn(6))
		c := c0.Clone()
		Unmqr(blas.Trans, a, tt, c)
		Unmqr(blas.NoTrans, a, tt, c)
		return mat.MaxDiff(c, c0) < 1e-10*float64(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestUnmqrTransTriangularizesA(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, n := 14, 9
	a0 := randMat(rng, m, n)
	a := a0.Clone()
	tt := mat.New(n, n)
	Geqrt(a, tt)
	c := a0.Clone()
	Unmqr(blas.Trans, a, tt, c) // Qᵀ·A must equal [R; 0]
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if i <= j && i < n {
				if math.Abs(c.At(i, j)-a.At(i, j)) > 1e-11*float64(m) {
					t.Fatalf("R mismatch at (%d,%d)", i, j)
				}
			} else if math.Abs(c.At(i, j)) > 1e-11*float64(m) {
				t.Fatalf("Qᵀ·A not zero below diagonal at (%d,%d): %g", i, j, c.At(i, j))
			}
		}
	}
}

func TestTsqrtFactorization(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, nb := range []int{1, 2, 5, 8, 16} {
		m := nb // square lower tile, as in the tiled algorithm
		// Top tile: R from a previous Geqrt — only upper triangle valid;
		// fill the strictly lower part with junk that must be preserved.
		rTile := mat.New(nb, nb)
		for i := 0; i < nb; i++ {
			for j := 0; j < nb; j++ {
				if j >= i {
					rTile.Set(i, j, rng.NormFloat64())
				} else {
					rTile.Set(i, j, 777) // sentinel junk
				}
			}
		}
		aTile := randMat(rng, m, nb)
		r0 := rTile.Clone()
		a0 := aTile.Clone()
		tt := mat.New(nb, nb)
		Tsqrt(rTile, aTile, tt)
		// Junk below R's diagonal must be untouched.
		for i := 0; i < nb; i++ {
			for j := 0; j < i; j++ {
				if rTile.At(i, j) != 777 {
					t.Fatalf("nb=%d: Tsqrt touched lower part of R at (%d,%d)", nb, i, j)
				}
			}
		}
		// Qᵀ·[R0; A0] must equal [R1; 0]. Apply via Tsmqr column block.
		c1 := mat.New(nb, nb)
		for i := 0; i < nb; i++ {
			for j := i; j < nb; j++ {
				c1.Set(i, j, r0.At(i, j))
			}
		}
		c2 := a0.Clone()
		Tsmqr(blas.Trans, aTile, tt, c1, c2)
		for i := 0; i < nb; i++ {
			for j := i; j < nb; j++ {
				if math.Abs(c1.At(i, j)-rTile.At(i, j)) > 1e-11*float64(nb) {
					t.Fatalf("nb=%d: R1 mismatch at (%d,%d)", nb, i, j)
				}
			}
		}
		if c2.NormMax() > 1e-11*float64(nb)*(1+a0.NormMax()) {
			t.Fatalf("nb=%d: lower tile not annihilated: %g", nb, c2.NormMax())
		}
	}
}

func TestTsmqrOrthogonality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nb := 1 + rng.Intn(10)
		m := 1 + rng.Intn(10)
		rTile := mat.New(nb, nb)
		for i := 0; i < nb; i++ {
			for j := i; j < nb; j++ {
				rTile.Set(i, j, rng.NormFloat64())
			}
		}
		aTile := randMat(rng, m, nb)
		tt := mat.New(nb, nb)
		Tsqrt(rTile, aTile, tt)
		k := 1 + rng.Intn(5)
		c1 := randMat(rng, nb, k)
		c2 := randMat(rng, m, k)
		c1o, c2o := c1.Clone(), c2.Clone()
		// Norm preservation of the stacked vector under Q, and round trip.
		before := math.Hypot(c1.NormFro(), c2.NormFro())
		Tsmqr(blas.Trans, aTile, tt, c1, c2)
		after := math.Hypot(c1.NormFro(), c2.NormFro())
		if math.Abs(before-after) > 1e-10*(1+before) {
			return false
		}
		Tsmqr(blas.NoTrans, aTile, tt, c1, c2)
		return mat.MaxDiff(c1, c1o) < 1e-10*(1+before) && mat.MaxDiff(c2, c2o) < 1e-10*(1+before)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTtqrtFactorization(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, nb := range []int{1, 2, 4, 9, 16} {
		mkTri := func() *mat.Matrix {
			m := mat.New(nb, nb)
			for i := 0; i < nb; i++ {
				for j := 0; j < nb; j++ {
					if j >= i {
						m.Set(i, j, rng.NormFloat64())
					} else {
						m.Set(i, j, 555) // junk that must survive
					}
				}
			}
			return m
		}
		r1, r2 := mkTri(), mkTri()
		r1o, r2o := r1.Clone(), r2.Clone()
		tt := mat.New(nb, nb)
		Ttqrt(r1, r2, tt)
		for i := 0; i < nb; i++ {
			for j := 0; j < i; j++ {
				if r1.At(i, j) != 555 || r2.At(i, j) != 555 {
					t.Fatalf("nb=%d: Ttqrt touched a lower triangle", nb)
				}
			}
		}
		// Qᵀ·[R1o; R2o] = [R1new; 0] (upper triangles only).
		c1, c2 := mat.New(nb, nb), mat.New(nb, nb)
		for i := 0; i < nb; i++ {
			for j := i; j < nb; j++ {
				c1.Set(i, j, r1o.At(i, j))
				c2.Set(i, j, r2o.At(i, j))
			}
		}
		Ttmqr(blas.Trans, r2, tt, c1, c2)
		for i := 0; i < nb; i++ {
			for j := i; j < nb; j++ {
				if math.Abs(c1.At(i, j)-r1.At(i, j)) > 1e-11*float64(nb) {
					t.Fatalf("nb=%d: merged R mismatch at (%d,%d)", nb, i, j)
				}
			}
		}
		if c2.NormMax() > 1e-11*float64(nb)*(1+r2o.NormMax()) {
			t.Fatalf("nb=%d: second triangle not annihilated: %g", nb, c2.NormMax())
		}
	}
}

func TestTtmqrRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nb := 1 + rng.Intn(10)
		mkTri := func() *mat.Matrix {
			m := mat.New(nb, nb)
			for i := 0; i < nb; i++ {
				for j := i; j < nb; j++ {
					m.Set(i, j, rng.NormFloat64())
				}
			}
			return m
		}
		r1, r2 := mkTri(), mkTri()
		tt := mat.New(nb, nb)
		Ttqrt(r1, r2, tt)
		k := 1 + rng.Intn(5)
		c1, c2 := randMat(rng, nb, k), randMat(rng, nb, k)
		c1o, c2o := c1.Clone(), c2.Clone()
		Ttmqr(blas.Trans, r2, tt, c1, c2)
		Ttmqr(blas.NoTrans, r2, tt, c1, c2)
		scale := 1 + c1o.NormMax() + c2o.NormMax()
		return mat.MaxDiff(c1, c1o) < 1e-10*scale && mat.MaxDiff(c2, c2o) < 1e-10*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTtmqrIgnoresLowerJunkInV(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	nb := 6
	mkTri := func() *mat.Matrix {
		m := mat.New(nb, nb)
		for i := 0; i < nb; i++ {
			for j := i; j < nb; j++ {
				m.Set(i, j, rng.NormFloat64())
			}
		}
		return m
	}
	r1, r2 := mkTri(), mkTri()
	tt := mat.New(nb, nb)
	Ttqrt(r1, r2, tt)
	c1, c2 := randMat(rng, nb, 3), randMat(rng, nb, 3)
	c1a, c2a := c1.Clone(), c2.Clone()
	Ttmqr(blas.Trans, r2, tt, c1a, c2a)
	// Poison the lower triangle of the V tile; results must not change.
	v2junk := r2.Clone()
	for i := 0; i < nb; i++ {
		for j := 0; j < i; j++ {
			v2junk.Set(i, j, 1e30)
		}
	}
	c1b, c2b := c1.Clone(), c2.Clone()
	Ttmqr(blas.Trans, v2junk, tt, c1b, c2b)
	if !mat.Equal(c1a, c1b) || !mat.Equal(c2a, c2b) {
		t.Fatal("Ttmqr read the lower triangle of its V operand")
	}
}

func TestOneNormEstOnRandomInverses(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	good := 0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		n := 2 + rng.Intn(30)
		a := randMat(rng, n, n)
		inv, err := Inverse(a)
		if err != nil {
			continue
		}
		exact := inv.Norm1()
		lu := a.Clone()
		piv, err := Getrf(lu)
		if err != nil {
			continue
		}
		est := InvNorm1EstLU(lu, piv)
		if est > exact*(1+1e-10) {
			t.Fatalf("estimate %g exceeds exact norm %g", est, exact)
		}
		if est >= exact/3 {
			good++
		}
	}
	if good < trials*8/10 {
		t.Fatalf("estimator within 3x of exact in only %d/%d trials", good, trials)
	}
}

func TestOneNormEstExactOperator(t *testing.T) {
	// For the identity, the estimate must be exactly 1.
	id := func(x []float64) {}
	if got := OneNormEst(7, id, id); math.Abs(got-1) > 1e-14 {
		t.Fatalf("‖I‖₁ estimate = %g", got)
	}
	// For a diagonal operator the 1-norm is the largest |d_i|.
	d := []float64{1, -9, 2.5, 4}
	apply := func(x []float64) {
		for i := range x {
			x[i] *= d[i]
		}
	}
	if got := OneNormEst(4, apply, apply); math.Abs(got-9) > 1e-12 {
		t.Fatalf("diag norm estimate = %g, want 9", got)
	}
}

func TestGeconEst(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	// Well-conditioned: rcond within a factor ~3 of the exact value.
	a := randMat(rng, 20, 20)
	anorm := a.Norm1()
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	exact := 1 / (anorm * inv.Norm1())
	lu := a.Clone()
	piv, _ := Getrf(lu)
	got := GeconEst(lu, piv, anorm)
	if got < exact/1.01 || got > 3.5*exact {
		t.Fatalf("rcond estimate %g, exact %g", got, exact)
	}
	// Degenerate inputs.
	if GeconEst(lu, piv, 0) != 0 {
		t.Fatal("zero norm must give rcond 0")
	}
	// An ill-conditioned matrix must report a tiny rcond.
	h := mat.New(12, 12)
	for i := 1; i <= 12; i++ {
		for j := 1; j <= 12; j++ {
			h.Set(i-1, j-1, 1/float64(i+j-1))
		}
	}
	lh := h.Clone()
	ph, _ := Getrf(lh)
	if rc := GeconEst(lh, ph, h.Norm1()); rc > 1e-10 {
		t.Fatalf("hilbert rcond = %g, expected ≪ 1e-10", rc)
	}
}
