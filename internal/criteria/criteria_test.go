package criteria

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaxCriterionThreshold(t *testing.T) {
	// ‖(A_kk)⁻¹‖₁ = 0.5 → ‖A_kk⁻¹‖⁻¹ = 2. With α = 1 the LU step is allowed
	// iff the largest off-diagonal tile norm is ≤ 2.
	in := &Input{InvDiagNorm1: 0.5, OffDiagTileNorms: []float64{1.5, 1.9}}
	if !(Max{1}).Decide(in) {
		t.Fatal("Max should accept: 1·2 ≥ 1.9")
	}
	in.OffDiagTileNorms = []float64{2.5}
	if (Max{1}).Decide(in) {
		t.Fatal("Max should reject: 1·2 < 2.5")
	}
	if !(Max{2}).Decide(in) {
		t.Fatal("Max with α=2 should accept: 2·2 ≥ 2.5")
	}
}

func TestSumStricterThanMax(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		norms := make([]float64, n)
		for i := range norms {
			norms[i] = rng.Float64() * 10
		}
		in := &Input{
			InvDiagNorm1:     rng.Float64() + 0.1,
			OffDiagTileNorms: norms,
			Alpha:            rng.Float64() * 5,
		}
		alpha := in.Alpha
		// Whenever Sum accepts, Max must accept too (Σ ≥ max).
		if (Sum{alpha}).Decide(in) && !(Max{alpha}).Decide(in) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMonotoneInAlpha(t *testing.T) {
	// A larger α can only turn QR decisions into LU decisions.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		norms := []float64{rng.Float64() * 10, rng.Float64() * 10}
		in := &Input{InvDiagNorm1: rng.Float64() + 0.05, OffDiagTileNorms: norms}
		a1 := rng.Float64() * 3
		a2 := a1 + rng.Float64()*3
		for _, pair := range [][2]Criterion{{Max{a1}, Max{a2}}, {Sum{a1}, Sum{a2}}} {
			if pair[0].Decide(in) && !pair[1].Decide(in) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDiagonallyDominantAlwaysLUForSum(t *testing.T) {
	// Block diagonal dominance: ‖A_kk⁻¹‖⁻¹ ≥ Σ ‖A_ik‖ ⇒ Sum with α = 1
	// accepts (§III-B).
	in := &Input{InvDiagNorm1: 1.0 / 10.0, OffDiagTileNorms: []float64{3, 3, 3.5}}
	if !(Sum{1}).Decide(in) {
		t.Fatal("Sum α=1 must accept a block diagonally dominant panel")
	}
}

func TestSingularDiagonalForcesQR(t *testing.T) {
	in := &Input{InvDiagNorm1: math.Inf(1), OffDiagTileNorms: []float64{0.1}}
	if (Max{1e9}).Decide(in) || (Sum{1e9}).Decide(in) {
		t.Fatal("singular diagonal tile must force a QR step")
	}
}

func TestAlphaInfinityAlwaysLU(t *testing.T) {
	in := &Input{InvDiagNorm1: math.Inf(1), OffDiagTileNorms: []float64{1e30}}
	if !(Max{math.Inf(1)}).Decide(in) || !(Sum{math.Inf(1)}).Decide(in) {
		t.Fatal("α = ∞ must deactivate the criterion")
	}
	if !(MUMPS{math.Inf(1)}).Decide(&Input{Pivots: []float64{0}, AwayMax: []float64{1}, LocalMax: []float64{1}}) {
		t.Fatal("MUMPS with α = ∞ must accept")
	}
}

func TestAlphaZeroAlwaysQRWithEmptyPanel(t *testing.T) {
	in := &Input{InvDiagNorm1: 0.1, OffDiagTileNorms: nil}
	if (Max{0}).Decide(in) || (Sum{0}).Decide(in) {
		t.Fatal("α = 0 must force QR even on the last panel")
	}
	if !(Max{1}).Decide(in) {
		t.Fatal("a panel with no sub-diagonal tiles is safe for LU when α > 0")
	}
}

func TestMUMPSAcceptsBenignPanel(t *testing.T) {
	// No growth locally (pivot == local max) and away max below pivots.
	in := &Input{
		Pivots:   []float64{2, 2, 2},
		LocalMax: []float64{2, 2, 2},
		AwayMax:  []float64{1, 1, 1},
	}
	if !(MUMPS{1}).Decide(in) {
		t.Fatal("MUMPS should accept a benign panel")
	}
}

func TestMUMPSRejectsLargeAway(t *testing.T) {
	in := &Input{
		Pivots:   []float64{2, 2, 2},
		LocalMax: []float64{2, 2, 2},
		AwayMax:  []float64{1, 5, 1},
	}
	if (MUMPS{1}).Decide(in) {
		t.Fatal("MUMPS must reject when an away column dominates its pivot")
	}
	if !(MUMPS{3}).Decide(in) {
		t.Fatal("MUMPS with a looser α should accept")
	}
}

func TestMUMPSGrowthScalesEstimate(t *testing.T) {
	// Column 0 grew by 4 locally (pivot 4 vs initial local max 1): the away
	// entry is extrapolated to away·growth = 2·4 = 8 > α·pivot = 4 → reject.
	in := &Input{
		Pivots:   []float64{4},
		LocalMax: []float64{1},
		AwayMax:  []float64{2},
	}
	if (MUMPS{1}).Decide(in) {
		t.Fatal("MUMPS must scale the away estimate by the observed growth")
	}
	// With a smaller away entry (α·local_max ≥ away_max) it accepts.
	in.AwayMax = []float64{1}
	if !(MUMPS{1}).Decide(in) {
		t.Fatal("MUMPS should accept when α·local_max ≥ away_max")
	}
	// Without any away mass it always accepts.
	in.AwayMax = []float64{0}
	if !(MUMPS{1}).Decide(in) {
		t.Fatal("MUMPS with empty away columns must accept")
	}
}

func TestMUMPSReducesToColumnMaxComparison(t *testing.T) {
	// For positive pivots the test is equivalent to α·local_max(j) ≥
	// away_max(j), independent of the pivot value.
	for _, pivot := range []float64{0.01, 1, 100} {
		in := &Input{
			Pivots:   []float64{pivot},
			LocalMax: []float64{2},
			AwayMax:  []float64{3},
		}
		if (MUMPS{1}).Decide(in) {
			t.Fatal("α·local < away must reject regardless of pivot")
		}
		if !(MUMPS{2}).Decide(in) {
			t.Fatal("α·local ≥ away must accept regardless of pivot")
		}
	}
}

func TestMUMPSZeroLocalMaxGuard(t *testing.T) {
	in := &Input{
		Pivots:   []float64{1, 1},
		LocalMax: []float64{0, 1}, // empty local column: growth undefined
		AwayMax:  []float64{0.5, 0.5},
	}
	if !(MUMPS{1}).Decide(in) {
		t.Fatal("zero local max must not poison the growth product")
	}
}

// TestNonFiniteInputsForceQR is the regression table for the maxOf NaN bug:
// a NaN (or ±Inf, or negative garbage) in any criterion input must force the
// QR step for Max, Sum and MUMPS — at every α, including α = ∞ — because a
// panel containing NaN that passes the criterion would take an unstable LU
// step that Sum (where NaN propagates into the sum) already refused.
func TestNonFiniteInputsForceQR(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	// A benign baseline every criterion accepts with α = 2.
	benign := func() *Input {
		return &Input{
			InvDiagNorm1:     0.5, // ‖A_kk⁻¹‖⁻¹ = 2
			OffDiagTileNorms: []float64{1.0, 1.5},
			Pivots:           []float64{2, 2},
			LocalMax:         []float64{2, 2},
			AwayMax:          []float64{1, 1},
		}
	}
	for _, c := range []Criterion{Max{2}, Sum{2}, MUMPS{2}} {
		if !c.Decide(benign()) {
			t.Fatalf("%s must accept the benign baseline", c.Name())
		}
	}

	cases := []struct {
		name   string
		mutate func(*Input)
	}{
		{"NaN tile norm", func(in *Input) { in.OffDiagTileNorms[1] = nan }},
		{"+Inf tile norm", func(in *Input) { in.OffDiagTileNorms[0] = inf }},
		{"-Inf tile norm", func(in *Input) { in.OffDiagTileNorms[0] = -inf }},
		{"negative tile norm", func(in *Input) { in.OffDiagTileNorms[0] = -3 }},
		{"NaN inv-norm", func(in *Input) { in.InvDiagNorm1 = nan }},
		{"negative inv-norm", func(in *Input) { in.InvDiagNorm1 = -1 }},
	}
	// invNorm = +Inf is not garbage: it is the documented "exactly singular
	// diagonal tile" signal. It forces QR at every finite α but is overridden
	// by α = ∞ (TestAlphaInfinityAlwaysLU pins that semantic), so it gets its
	// own finite-α-only case below.
	finiteAlphaCases := []struct {
		name   string
		mutate func(*Input)
	}{
		{"+Inf inv-norm (singular diagonal)", func(in *Input) { in.InvDiagNorm1 = inf }},
	}
	mumpsCases := []struct {
		name   string
		mutate func(*Input)
	}{
		{"NaN pivot", func(in *Input) { in.Pivots[0] = nan }},
		{"+Inf pivot", func(in *Input) { in.Pivots[1] = inf }},
		{"negative pivot", func(in *Input) { in.Pivots[0] = -1 }},
		{"NaN local max", func(in *Input) { in.LocalMax[1] = nan }},
		{"+Inf local max", func(in *Input) { in.LocalMax[0] = inf }},
		{"-Inf local max", func(in *Input) { in.LocalMax[0] = -inf }},
		{"NaN away max", func(in *Input) { in.AwayMax[0] = nan }},
		{"+Inf away max", func(in *Input) { in.AwayMax[1] = inf }},
		{"-Inf away max", func(in *Input) { in.AwayMax[1] = -inf }},
	}

	alphas := []float64{0.5, 2, 1e9, inf}
	for _, tc := range cases {
		for _, alpha := range alphas {
			for _, c := range []Criterion{Max{alpha}, Sum{alpha}} {
				in := benign()
				tc.mutate(in)
				if c.Decide(in) {
					t.Errorf("%s(α=%g) accepted an LU step with %s", c.Name(), alpha, tc.name)
				}
			}
		}
	}
	for _, tc := range finiteAlphaCases {
		for _, alpha := range []float64{0.5, 2, 1e9} {
			for _, c := range []Criterion{Max{alpha}, Sum{alpha}} {
				in := benign()
				tc.mutate(in)
				if c.Decide(in) {
					t.Errorf("%s(α=%g) accepted an LU step with %s", c.Name(), alpha, tc.name)
				}
			}
		}
	}
	for _, tc := range mumpsCases {
		for _, alpha := range alphas {
			in := benign()
			tc.mutate(in)
			if (MUMPS{alpha}).Decide(in) {
				t.Errorf("mumps(α=%g) accepted an LU step with %s", alpha, tc.name)
			}
		}
	}
	// NaN pivots also reach Max/Sum indirectly through the inv-norm estimate
	// of a poisoned diagonal tile; the estimate paths are covered above. But
	// the MUMPS-only inputs must not confuse Max/Sum: a NaN pivot with
	// finite norms leaves Max/Sum decisions unchanged.
	in := benign()
	in.Pivots[0] = nan
	if !(Max{2}).Decide(in) || !(Sum{2}).Decide(in) {
		t.Error("Max/Sum must ignore the MUMPS-only pivot inputs")
	}
}

// TestMaxOfPropagatesPoison pins the maxOf fix directly: NaN anywhere in the
// list must not be dropped by the comparison loop.
func TestMaxOfPropagatesPoison(t *testing.T) {
	for _, xs := range [][]float64{
		{math.NaN()},
		{1, math.NaN(), 3},
		{5, 6, math.NaN()},
		{math.Inf(1), 1},
		{1, math.Inf(-1)},
		{-2, 1},
	} {
		if !math.IsNaN(maxOf(xs)) {
			t.Errorf("maxOf(%v) = %g, want NaN", xs, maxOf(xs))
		}
	}
	if got := maxOf([]float64{1, 4, 2}); got != 4 {
		t.Errorf("maxOf finite = %g, want 4", got)
	}
	if got := maxOf(nil); got != 0 {
		t.Errorf("maxOf(nil) = %g, want 0", got)
	}
}

func TestRandomCriterionRate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := &Input{Rng: rng}
	for _, alpha := range []float64{0, 25, 50, 100} {
		c := Random{alpha}
		hits := 0
		const trials = 10000
		for i := 0; i < trials; i++ {
			if c.Decide(in) {
				hits++
			}
		}
		rate := float64(hits) / trials * 100
		if math.Abs(rate-alpha) > 2.5 {
			t.Fatalf("Random α=%g produced %g%% LU steps", alpha, rate)
		}
	}
}

func TestAlwaysNever(t *testing.T) {
	if !(Always{}).Decide(nil) || (Never{}).Decide(nil) {
		t.Fatal("Always/Never broken")
	}
}

func TestGrowthBounds(t *testing.T) {
	if MaxGrowthBound(1, 10) != 512 { // 2^9
		t.Fatalf("MaxGrowthBound(1,10) = %g", MaxGrowthBound(1, 10))
	}
	if SumGrowthBound(7) != 7 {
		t.Fatal("SumGrowthBound wrong")
	}
}

func TestParse(t *testing.T) {
	for _, name := range []string{"max", "sum", "mumps", "random", "alwayslu", "lu", "alwaysqr", "qr", "hqr"} {
		c, err := Parse(name, 1)
		if err != nil || c == nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
	}
	if _, err := Parse("bogus", 1); err == nil {
		t.Fatal("expected error")
	}
}

func TestNames(t *testing.T) {
	for _, c := range []Criterion{Max{1}, Sum{1}, MUMPS{1}, Random{1}, Always{}, Never{}} {
		if c.Name() == "" {
			t.Fatal("empty criterion name")
		}
	}
}

// TestMargins checks the Margin output field agrees with the decision
// (margin ≤ 1 ⇔ LU) and encodes the documented edge cases.
func TestMargins(t *testing.T) {
	in := func() *Input {
		return &Input{
			InvDiagNorm1:     0.5, // ‖A_kk⁻¹‖₁ = 0.5 → threshold α·2
			OffDiagTileNorms: []float64{1, 4},
			LocalMax:         []float64{2, 2},
			AwayMax:          []float64{1, 1},
			Pivots:           []float64{2, 2},
		}
	}
	cases := []struct {
		c      Criterion
		margin float64
		lu     bool
	}{
		{Max{Alpha: 100}, 4 * 0.5 / 100, true},
		{Max{Alpha: 1}, 2.0, false},
		{Max{Alpha: math.Inf(1)}, 0, true},
		{Max{Alpha: 0}, math.Inf(1), false},
		{Sum{Alpha: 100}, 5 * 0.5 / 100, true},
		{MUMPS{Alpha: 10}, 0.05, true}, // worst column: est=1·1 vs α·2
		{MUMPS{Alpha: 0.01}, math.Inf(1), false},
		{Always{}, 0, true},
		{Never{}, math.Inf(1), false},
	}
	for _, tc := range cases {
		i := in()
		got := tc.c.Decide(i)
		if got != tc.lu {
			t.Errorf("%s: decision %v, want %v", tc.c.Name(), got, tc.lu)
		}
		if tc.lu != (i.Margin <= 1) {
			t.Errorf("%s: margin %g disagrees with decision %v", tc.c.Name(), i.Margin, got)
		}
		if !math.IsInf(tc.margin, 1) && math.Abs(i.Margin-tc.margin) > 1e-12 {
			t.Errorf("%s: margin %g, want %g", tc.c.Name(), i.Margin, tc.margin)
		}
		if math.IsInf(tc.margin, 1) && !math.IsInf(i.Margin, 1) {
			t.Errorf("%s: margin %g, want +Inf", tc.c.Name(), i.Margin)
		}
	}
	// Random reports NaN: no numeric margin.
	ri := in()
	ri.Rng = rand.New(rand.NewSource(1))
	Random{Alpha: 50}.Decide(ri)
	if !math.IsNaN(ri.Margin) {
		t.Errorf("random margin %g, want NaN", ri.Margin)
	}
	// Poisoned data forces +Inf margins.
	pi := in()
	pi.OffDiagTileNorms = []float64{math.NaN()}
	Max{Alpha: 100}.Decide(pi)
	if !math.IsInf(pi.Margin, 1) {
		t.Errorf("poisoned max margin %g, want +Inf", pi.Margin)
	}
}
