// Package criteria implements the robustness criteria of §III of the paper:
// the per-step predicates that decide whether the hybrid algorithm may take
// a cheap LU step or must fall back to a stable QR step.
//
// Each criterion is a pure predicate over the panel data collected at step k
// (tile norms, column maxima, the factored diagonal tile) and a threshold α.
// The data collection and the Bruck all-reduce that shares it across nodes
// live in the core and dist packages; keeping the predicates pure makes the
// growth-bound properties directly testable.
package criteria

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
)

// Input carries everything a criterion may inspect at step k. All fields are
// identical on every node after the all-reduce, so every node reaches the
// same decision without further communication.
type Input struct {
	Alpha float64
	Step  int
	// InvDiagNorm1 is the estimate of ‖(A_kk^(k))⁻¹‖₁ computed from the LU
	// factors of the diagonal tile after pivoting inside the diagonal domain
	// (§III-A). math.Inf(1) signals an exactly singular diagonal tile.
	InvDiagNorm1 float64
	// OffDiagTileNorms holds ‖A_ik‖₁ for every panel tile below the diagonal
	// (i > k), measured before the trial factorization.
	OffDiagTileNorms []float64
	// LocalMax / AwayMax hold, per panel column j, the largest |a_ij| over
	// the diagonal-domain tiles resp. the off-domain tiles, measured before
	// the trial factorization (MUMPS criterion, §III-C).
	LocalMax, AwayMax []float64
	// Pivots holds |U_jj| from the LU factorization with partial pivoting of
	// the diagonal domain.
	Pivots []float64
	// Rng drives the Random criterion; the caller seeds it per run so that
	// decisions are reproducible.
	Rng *rand.Rand

	// Margin is an output field: Decide writes the ratio of its decision
	// quantity to the α-scaled threshold, so margin ≤ 1 means "LU step" and
	// the distance below 1 measures how comfortably the criterion passed.
	// 0 is maximal comfort, +Inf a forced QR step, and NaN "no numeric
	// margin" (the Random criterion). The mixed-precision layer reads it to
	// decide when an LU step is comfortable enough for float32 arithmetic.
	Margin float64
}

// Criterion decides, at each panel step, between an LU step (true) and a QR
// step (false).
type Criterion interface {
	Name() string
	Decide(in *Input) bool
}

// Max is the criterion of §III-A:
//
//	α · ‖(A_kk)⁻¹‖₁⁻¹ ≥ max_{i>k} ‖A_ik‖₁
//
// with tile-norm growth bounded by (1+α)^{n−1}.
type Max struct{ Alpha float64 }

// Name implements Criterion.
func (c Max) Name() string { return "max" }

// Decide implements Criterion.
func (c Max) Decide(in *Input) bool {
	rhs := maxOf(in.OffDiagTileNorms)
	in.Margin = normMargin(c.Alpha, in.InvDiagNorm1, rhs)
	return decideNorm(c.Alpha, in.InvDiagNorm1, rhs)
}

// Sum is the stricter criterion of §III-B:
//
//	α · ‖(A_kk)⁻¹‖₁⁻¹ ≥ Σ_{i>k} ‖A_ik‖₁
//
// with linear growth (bound n) for α = 1; always satisfied on block
// diagonally dominant matrices for α ≥ 1.
type Sum struct{ Alpha float64 }

// Name implements Criterion.
func (c Sum) Name() string { return "sum" }

// Decide implements Criterion.
func (c Sum) Decide(in *Input) bool {
	s := 0.0
	for _, v := range in.OffDiagTileNorms {
		s += v
	}
	in.Margin = normMargin(c.Alpha, in.InvDiagNorm1, s)
	return decideNorm(c.Alpha, in.InvDiagNorm1, s)
}

// maxOf returns the largest entry, poisoning the result on unusable inputs:
// a comparison-based max with `v > m` silently skips NaN (every comparison
// with NaN is false) and negative garbage (m starts at 0), letting a panel
// whose tile norm is NaN satisfy the Max criterion and take an unstable LU
// step. Any value a 1-norm cannot produce — NaN, ±Inf, negative — turns the
// result into NaN so decideNorm forces a QR step, the same behaviour Sum
// gets for free from addition.
func maxOf(xs []float64) float64 {
	m := 0.0
	for _, v := range xs {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return math.NaN()
		}
		if v > m {
			m = v
		}
	}
	return m
}

func decideNorm(alpha, invNorm, rhs float64) bool {
	// Non-finite panel data — a NaN or infinite tile norm, or a norm the
	// kernels could never produce (negative) — means the trial measurements
	// are unusable: force the unconditionally stable QR step, even when
	// α = ∞ disables the threshold test. Always{} remains the only way to
	// take an LU step blindly.
	if math.IsNaN(rhs) || math.IsInf(rhs, 0) || rhs < 0 {
		return false
	}
	// A NaN (or negative) inverse-norm estimate means the trial
	// factorization itself was poisoned — unusable at every α, unlike
	// invNorm = +Inf, which is the documented "exactly singular diagonal"
	// signal that α = ∞ deliberately overrides below.
	if math.IsNaN(invNorm) || invNorm < 0 {
		return false
	}
	if rhs == 0 {
		// Nothing below the diagonal (last step, or a zero panel): an LU
		// step cannot cause growth, but honor α = 0 as "always QR".
		return alpha > 0
	}
	if math.IsInf(alpha, 1) {
		return true
	}
	if invNorm == 0 || math.IsInf(invNorm, 1) {
		return false // singular diagonal tile
	}
	return alpha*(1/invNorm) >= rhs
}

// normMargin is the Margin companion of decideNorm: rhs·‖A_kk⁻¹‖₁ / α, the
// ratio of the observed norm quantity to the α-scaled bound. The edge cases
// mirror decideNorm exactly: every forced-QR input maps to +Inf and every
// unconditional-LU input to 0, so margin ≤ 1 agrees with the decision (up
// to rounding in the strict-inequality regime, where the decision itself
// stays authoritative).
func normMargin(alpha, invNorm, rhs float64) float64 {
	if math.IsNaN(rhs) || math.IsInf(rhs, 0) || rhs < 0 {
		return math.Inf(1)
	}
	if math.IsNaN(invNorm) || invNorm < 0 {
		return math.Inf(1)
	}
	if rhs == 0 {
		if alpha > 0 {
			return 0
		}
		return math.Inf(1)
	}
	if math.IsInf(alpha, 1) {
		return 0
	}
	if alpha <= 0 || invNorm == 0 || math.IsInf(invNorm, 1) {
		return math.Inf(1)
	}
	return rhs * invNorm / alpha
}

// MUMPS is the scalar criterion of §III-C, adapted from the pivot-quality
// heuristic of the MUMPS solver: the growth observed on the local columns of
// the diagonal domain is used to extrapolate the off-domain column maxima,
//
//	estimate_max(j) = away_max(j) · growth(j),
//	growth(j) = pivot(j) / local_max(j),
//
// and the LU step is accepted iff α·pivot(j) ≥ estimate_max(j) for every j:
// the largest off-domain entry of column j, had it grown the way the local
// part of column j grew by step j, must not dominate the pivot by more than
// the threshold.
//
// Interpretation note (documented in DESIGN.md): the paper phrases the
// estimate as a step-by-step multiplicative update of estimate_max by
// growth_factor(i). Since growth_factor(i) = pivot(i)/local_max(i) is the
// *cumulative* growth of column i (current pivot vs initial column
// maximum), re-multiplying the estimate by it at every step compounds
// cumulative ratios and diverges like Π_i g_i for any matrix whose columns
// grow at all — no α works at any scale. The implementation therefore
// applies each column's observed growth once. A corollary (α·local_max(j) ≥
// away_max(j) after cancellation, for positive pivots) is that the criterion
// cannot see growth created during the elimination, which reproduces the
// paper's own finding that MUMPS misses the bad steps of the Wilkinson and
// Foster matrices (§V-C).
type MUMPS struct{ Alpha float64 }

// Name implements Criterion.
func (c MUMPS) Name() string { return "mumps" }

// Decide implements Criterion.
func (c MUMPS) Decide(in *Input) bool {
	// Unusable pivot or column-max data (NaN from a poisoned panel, ±Inf
	// from overflowed growth, negative garbage) forces QR before the α
	// shortcuts: `α·pivot < est` is false when pivot is NaN, so without
	// this scan a NaN pivot would silently pass the per-column test.
	in.Margin = math.Inf(1)
	if !allFiniteNonNeg(in.Pivots) || !allFiniteNonNeg(in.LocalMax) || !allFiniteNonNeg(in.AwayMax) {
		return false
	}
	if math.IsInf(c.Alpha, 1) {
		in.Margin = 0
		return true
	}
	if c.Alpha <= 0 {
		return false
	}
	// Margin: the worst column's est / (α·pivot) ratio; ≤ 1 iff every
	// per-column test passes.
	margin := 0.0
	for j := range in.Pivots {
		away := 0.0
		if j < len(in.AwayMax) {
			away = in.AwayMax[j]
		}
		growth := 1.0
		if j < len(in.LocalMax) && in.LocalMax[j] > 0 {
			growth = in.Pivots[j] / in.LocalMax[j]
		}
		est := away * growth
		if math.IsNaN(est) {
			return false
		}
		switch {
		case est == 0:
			// No off-domain mass in this column: maximal comfort.
		case in.Pivots[j] == 0:
			margin = math.Inf(1)
		default:
			if m := est / (c.Alpha * in.Pivots[j]); m > margin {
				margin = m
			}
		}
		if c.Alpha*in.Pivots[j] < est {
			return false
		}
	}
	in.Margin = margin
	return true
}

// allFiniteNonNeg reports whether every entry is a usable magnitude: finite
// and ≥ 0 (a NaN fails the comparison and is rejected too).
func allFiniteNonNeg(xs []float64) bool {
	for _, v := range xs {
		if !(v >= 0) || math.IsInf(v, 1) {
			return false
		}
	}
	return true
}

// Random chooses an LU step with probability α% — the control experiment of
// Figure 2's fourth row, used to isolate the effect of the LU:QR ratio from
// the criterion's selectivity.
type Random struct{ Alpha float64 }

// Name implements Criterion.
func (c Random) Name() string { return "random" }

// Decide implements Criterion.
func (c Random) Decide(in *Input) bool {
	if in.Rng == nil {
		panic("criteria: Random criterion needs Input.Rng")
	}
	in.Margin = math.NaN() // a coin flip has no numeric comfort margin
	return in.Rng.Float64()*100 < c.Alpha
}

// Always takes an LU step at every panel (the α = ∞ configuration: LU with
// pivoting restricted to the diagonal domain).
type Always struct{}

// Name implements Criterion.
func (Always) Name() string { return "alwayslu" }

// Decide implements Criterion.
func (Always) Decide(in *Input) bool {
	if in != nil {
		in.Margin = 0
	}
	return true
}

// Never takes a QR step at every panel (the α = 0 configuration, whose
// stability matches HQR and whose cost exposes the decision-path overhead).
type Never struct{}

// Name implements Criterion.
func (Never) Name() string { return "alwaysqr" }

// Decide implements Criterion.
func (Never) Decide(in *Input) bool {
	if in != nil {
		in.Margin = math.Inf(1)
	}
	return false
}

// MaxGrowthBound returns the tile-norm growth bound (1+α)^{n−1} of the Max
// criterion (§III-A) for an n×n tiled matrix.
func MaxGrowthBound(alpha float64, n int) float64 {
	return math.Pow(1+alpha, float64(n-1))
}

// SumGrowthBound returns the growth bound of the Sum criterion with α = 1:
// linear in the number of tiles (§III-B).
func SumGrowthBound(n int) float64 { return float64(n) }

// Parse builds a criterion from a name and a threshold, for CLI use. Names:
// max, sum, mumps, random, alwayslu (or "lu"), alwaysqr (or "qr", "hqr").
func Parse(name string, alpha float64) (Criterion, error) {
	switch name {
	case "max":
		return Max{alpha}, nil
	case "sum":
		return Sum{alpha}, nil
	case "mumps":
		return MUMPS{alpha}, nil
	case "random":
		return Random{alpha}, nil
	case "alwayslu", "lu":
		return Always{}, nil
	case "alwaysqr", "qr", "hqr":
		return Never{}, nil
	}
	return nil, fmt.Errorf("criteria: unknown criterion %q (alpha=%s)", name, strconv.FormatFloat(alpha, 'g', -1, 64))
}
