package core

import (
	"fmt"

	"luqr/internal/blas"
	"luqr/internal/flops"
	"luqr/internal/lapack"
	"luqr/internal/mat"
	"luqr/internal/runtime"
)

// incState carries the per-panel data of an incremental-pivoting step: the
// running U factor of the diagonal position and, per killed tile row, the
// stacked L factors and pivots of the pairwise elimination.
// incState carries the per-panel data of an incremental-pivoting step.
// Per-row factors live in slices indexed by tile row (not maps): factor
// tasks for different rows write their own slot concurrently while update
// tasks read others'.
type incState struct {
	u   *mat.Matrix // current U of the diagonal tile (upper)
	l0  *mat.Matrix // the diagonal tile's own LU factors (kept for replay)
	hU  *runtime.Handle
	l   []*mat.Matrix // stacked 2nb×nb LU factors of pair (k, i), by row
	piv [][]int       // pivots, by row (index k: the diagonal GETRF's)
	hL  []*runtime.Handle
}

// scheduleIncPiv builds the task graph of LU with incremental (pairwise)
// pivoting across the panel tiles [2], [3] — PLASMA's communication-avoiding
// tiled LU. At panel k:
//
//	GETRF(A_kk)               factor the diagonal tile (pivoting inside it)
//	GESSM(A_kj)               apply its L/P to the k-th row tiles
//	TSTRF(U, A_ik)            pairwise-factor [U; A_ik] with partial
//	                          pivoting, updating U — serial in i
//	SSSSM(A_kj, A_ij)         apply the pair transformation to the trailing
//	                          columns — serial in i per column, parallel in j
//
// Stability degrades as the number of tiles grows because each pairwise
// elimination compounds its own growth (§VI-C), which is what Figure 2
// shows for LU IncPiv.
func (f *fact) scheduleIncPiv() {
	for k := 0; k < f.nt; k++ {
		f.steps[k] = &stepState{k: k, rows: []int{k}}
		f.report.Decisions[k] = true
		f.scheduleIncPivStep(k)
		f.submitGrowthProbe(k)
	}
}

func (f *fact) scheduleIncPivStep(k int) {
	nb := f.nb
	is := &incState{
		u:   mat.New(nb, nb),
		hU:  f.e.NewHandle(fmt.Sprintf("U(%d)", k), nb*nb*8, f.owner(k, k)),
		l:   make([]*mat.Matrix, f.nt),
		piv: make([][]int, f.nt),
		hL:  make([]*runtime.Handle, f.nt),
	}
	f.steps[k].inc = is
	cols := f.trailingCols(k)

	// GETRF on the diagonal tile; snapshot its U part as the running U.
	f.e.Submit(runtime.TaskSpec{
		Name:     fmt.Sprintf("GETRF(%d)", k),
		Kernel:   "GETRF",
		Node:     f.owner(k, k),
		Flops:    flops.Getrf(nb, nb),
		Priority: prioPanel(k),
		Accesses: []runtime.Access{runtime.W(f.h[k][k]), runtime.W(is.hU)},
		Run: func() {
			piv, err := lapack.Getrf(f.A.Tile(k, k))
			is.piv[k] = piv
			f.noteBreakdown(err)
			// Keep the diagonal tile's own factors: FlushU later overwrites
			// the tile with the running U, but the RHS replay (Result.Solve)
			// still needs this L0.
			is.l0 = f.A.Tile(k, k).Clone()
			copyUpper(is.u, f.A.Tile(k, k))
		},
	})
	// GESSM: apply P/L of the diagonal factorization to row k.
	for _, j := range cols {
		j := j
		f.e.Submit(runtime.TaskSpec{
			Name:     fmt.Sprintf("GESSM(%d,%d)", k, j),
			Kernel:   "GESSM",
			Node:     f.owner(k, j),
			Flops:    flops.Trsm(nb, nb),
			Priority: prioElim(k),
			Accesses: []runtime.Access{runtime.R(f.h[k][k]), runtime.W(f.h[k][j])},
			Run: func() {
				c := f.A.Tile(k, j)
				lapack.Laswp(c, is.piv[k], false)
				blas.Trsm(blas.Left, blas.Lower, blas.NoTrans, blas.Unit, 1, f.A.Tile(k, k), c)
			},
		})
	}
	f.e.Submit(runtime.TaskSpec{
		Name:     fmt.Sprintf("GESSM(%d,rhs)", k),
		Kernel:   "GESSM",
		Node:     f.owner(k, k),
		Flops:    flops.Trsm(nb, f.rhs.W),
		Priority: prioElim(k),
		Accesses: []runtime.Access{runtime.R(f.h[k][k]), runtime.W(f.hb[k])},
		Run: func() {
			c := f.rhs.Tile(k)
			lapack.Laswp(c, is.piv[k], false)
			blas.Trsm(blas.Left, blas.Lower, blas.NoTrans, blas.Unit, 1, f.A.Tile(k, k), c)
		},
	})

	// Pairwise eliminations, serial in i (each updates the running U).
	for i := k + 1; i < f.nt; i++ {
		i := i
		hL := f.e.NewHandle(fmt.Sprintf("L(%d,%d)", i, k), 2*nb*nb*8, f.owner(i, k))
		is.hL[i] = hL
		f.e.Submit(runtime.TaskSpec{
			Name:     fmt.Sprintf("TSTRF(%d,%d)", i, k),
			Kernel:   "TSTRF",
			Node:     f.owner(i, k),
			Flops:    flops.Trsm(nb, nb), // structure-exploiting count ≈ nb³
			Priority: prioElim(k),
			Accesses: []runtime.Access{runtime.W(is.hU), runtime.W(f.h[i][k]), runtime.W(hL)},
			Run: func() {
				s := mat.New(2*nb, nb)
				s.View(0, 0, nb, nb).CopyFrom(is.u)
				s.View(nb, 0, nb, nb).CopyFrom(f.A.Tile(i, k))
				piv, err := lapack.Getrf(s)
				f.noteBreakdown(err)
				is.l[i] = s
				is.piv[i] = piv
				copyUpper(is.u, s.View(0, 0, nb, nb))
				// The panel tile now holds the L₂₁ block (the tile is dead
				// for the factorization; kept for inspection).
				f.A.Tile(i, k).CopyFrom(s.View(nb, 0, nb, nb))
			},
		})
		for _, j := range cols {
			j := j
			f.e.Submit(runtime.TaskSpec{
				Name:     fmt.Sprintf("SSSSM(%d,%d,%d)", i, k, j),
				Kernel:   "SSSSM",
				Node:     f.owner(i, j),
				Flops:    flops.Trsm(nb, nb) + flops.Gemm(nb, nb, nb),
				Priority: prioUpdate(k, j),
				Accesses: []runtime.Access{runtime.R(hL), runtime.W(f.h[k][j]), runtime.W(f.h[i][j])},
				Run:      func() { f.ssssm(is, i, f.A.Tile(k, j), f.A.Tile(i, j)) },
			})
		}
		f.e.Submit(runtime.TaskSpec{
			Name:     fmt.Sprintf("SSSSM(%d,%d,rhs)", i, k),
			Kernel:   "SSSSM",
			Node:     f.owner(i, k),
			Flops:    flops.Trsm(nb, f.rhs.W) + flops.Gemm(nb, f.rhs.W, nb),
			Priority: prioUpdate(k, k+1),
			Accesses: []runtime.Access{runtime.R(hL), runtime.W(f.hb[k]), runtime.W(f.hb[i])},
			Run:      func() { f.ssssm(is, i, f.rhs.Tile(k), f.rhs.Tile(i)) },
		})
	}

	// Publish the final U of the panel into the diagonal tile for the
	// back-substitution.
	f.e.Submit(runtime.TaskSpec{
		Name:     fmt.Sprintf("FlushU(%d)", k),
		Kernel:   "PROPAGATE",
		Node:     f.owner(k, k),
		Priority: prioElim(k),
		Accesses: []runtime.Access{runtime.R(is.hU), runtime.W(f.h[k][k])},
		Run:      func() { copyUpper(f.A.Tile(k, k), is.u) },
	})
}

// ssssm applies the pairwise transformation of TSTRF(i) to the stacked pair
// [c1; c2]: row swaps, unit-lower solve on the top block, Schur update of
// the bottom block.
func (f *fact) ssssm(is *incState, i int, c1, c2 *mat.Matrix) {
	nb := f.nb
	w := c1.Cols
	s := mat.New(2*nb, w)
	s.View(0, 0, nb, w).CopyFrom(c1)
	s.View(nb, 0, nb, w).CopyFrom(c2)
	lapack.Laswp(s, is.piv[i], false)
	l := is.l[i]
	blas.Trsm(blas.Left, blas.Lower, blas.NoTrans, blas.Unit, 1, l.View(0, 0, nb, nb), s.View(0, 0, nb, w))
	blas.Gemm(blas.NoTrans, blas.NoTrans, -1, l.View(nb, 0, nb, nb), s.View(0, 0, nb, w), 1, s.View(nb, 0, nb, w))
	c1.CopyFrom(s.View(0, 0, nb, w))
	c2.CopyFrom(s.View(nb, 0, nb, w))
}

// copyUpper copies the upper triangle of src into dst, zeroing dst's
// strictly lower triangle.
func copyUpper(dst, src *mat.Matrix) {
	n := dst.Rows
	for i := 0; i < n; i++ {
		drow := dst.Row(i)
		srow := src.Row(i)
		for j := 0; j < i; j++ {
			drow[j] = 0
		}
		for j := i; j < n; j++ {
			drow[j] = srow[j]
		}
	}
}
