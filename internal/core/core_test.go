package core

import (
	"math"
	"math/rand"
	"testing"

	"luqr/internal/criteria"
	"luqr/internal/mat"
	"luqr/internal/matgen"
	"luqr/internal/tile"
	"luqr/internal/tree"
)

var allAlgs = []Algorithm{LUNoPiv, LUIncPiv, LUPP, HQR, LUQR}

func runOn(t *testing.T, a *mat.Matrix, b []float64, cfg Config) *Result {
	t.Helper()
	res, err := Run(a, b, cfg)
	if err != nil {
		t.Fatalf("Run(%v): %v", cfg.Alg, err)
	}
	return res
}

// TestAllAlgorithmsSolveAccurately checks the end-to-end HPL3 backward error
// on well-conditioned random systems across algorithms, grids, and tile
// shapes.
func TestAllAlgorithmsSolveAccurately(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	grids := []tile.Grid{tile.NewGrid(1, 1), tile.NewGrid(4, 1), tile.NewGrid(1, 4), tile.NewGrid(2, 3)}
	shapes := [][2]int{{1, 12}, {2, 8}, {5, 8}, {8, 12}}
	for _, alg := range allAlgs {
		for gi, g := range grids {
			sh := shapes[gi]
			nt, nb := sh[0], sh[1]
			n := nt * nb
			a := matgen.Random(n, rng)
			b := matgen.RandomVector(n, rng)
			res := runOn(t, a, b, Config{Alg: alg, NB: nb, Grid: g, Criterion: criteria.Max{Alpha: 1000}})
			if math.IsNaN(res.Report.HPL3) || res.Report.HPL3 > 50 {
				t.Errorf("%v grid=%dx%d nt=%d nb=%d: HPL3 = %g", alg, g.P, g.Q, nt, nb, res.Report.HPL3)
			}
		}
	}
}

// TestResidualAgainstExactSolution feeds b = A·x_true and compares x.
func TestResidualAgainstExactSolution(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 80
	a := matgen.DiagDominant(n, rng)
	xTrue := matgen.RandomVector(n, rng)
	b := mat.MulVec(a, xTrue)
	for _, alg := range allAlgs {
		res := runOn(t, a, b, Config{Alg: alg, NB: 16, Grid: tile.NewGrid(2, 2)})
		for i := range xTrue {
			if math.Abs(res.X[i]-xTrue[i]) > 1e-8*(1+math.Abs(xTrue[i])) {
				t.Fatalf("%v: x[%d] = %g, want %g", alg, i, res.X[i], xTrue[i])
			}
		}
	}
}

func TestSingleTileMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := matgen.Random(12, rng)
	b := matgen.RandomVector(12, rng)
	for _, alg := range allAlgs {
		res := runOn(t, a, b, Config{Alg: alg, NB: 12})
		if res.Report.HPL3 > 10 {
			t.Errorf("%v single tile: HPL3 = %g", alg, res.Report.HPL3)
		}
		if len(res.Report.Decisions) != 1 {
			t.Errorf("%v: expected a single step", alg)
		}
	}
}

// TestDeterministicAcrossWorkers: the dataflow semantics make the result a
// pure function of the submission program — any worker count must produce
// bitwise identical solutions and identical decisions.
func TestDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := 96
	a := matgen.Random(n, rng)
	b := matgen.RandomVector(n, rng)
	for _, alg := range allAlgs {
		var refX []float64
		var refDec []bool
		for _, w := range []int{1, 2, 8} {
			res := runOn(t, a, b, Config{
				Alg: alg, NB: 16, Grid: tile.NewGrid(2, 2), Workers: w,
				Criterion: criteria.Max{Alpha: 50}, Seed: 3,
			})
			if refX == nil {
				refX, refDec = res.X, res.Report.Decisions
				continue
			}
			for i := range refX {
				if res.X[i] != refX[i] {
					t.Fatalf("%v: workers=%d changed x[%d]: %g vs %g", alg, w, i, res.X[i], refX[i])
				}
			}
			for k := range refDec {
				if res.Report.Decisions[k] != refDec[k] {
					t.Fatalf("%v: workers=%d changed decision %d", alg, w, k)
				}
			}
		}
	}
}

// TestAlphaZeroMatchesHQRBitwise: LUQR with the Never criterion restores
// every trial panel and runs exactly the HQR elimination, so the solution
// must be bitwise identical to HQR's — the paper's α = 0 configuration
// differs only by the decision-path overhead (§V-B).
func TestAlphaZeroMatchesHQRBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 96
	a := matgen.Random(n, rng)
	b := matgen.RandomVector(n, rng)
	cfgQR := Config{Alg: HQR, NB: 16, Grid: tile.NewGrid(2, 2)}
	cfgHybrid := Config{Alg: LUQR, NB: 16, Grid: tile.NewGrid(2, 2), Criterion: criteria.Never{}}
	r1 := runOn(t, a, b, cfgQR)
	r2 := runOn(t, a, b, cfgHybrid)
	if r2.Report.LUSteps != 0 {
		t.Fatalf("Never criterion took %d LU steps", r2.Report.LUSteps)
	}
	for i := range r1.X {
		if r1.X[i] != r2.X[i] {
			t.Fatalf("x[%d] differs: %g vs %g", i, r1.X[i], r2.X[i])
		}
	}
}

// TestAlphaInfinityAllLU: the Always criterion must keep every trial panel.
func TestAlphaInfinityAllLU(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := 96
	a := matgen.Random(n, rng)
	b := matgen.RandomVector(n, rng)
	res := runOn(t, a, b, Config{Alg: LUQR, NB: 16, Grid: tile.NewGrid(2, 2), Criterion: criteria.Always{}})
	if res.Report.QRSteps != 0 {
		t.Fatalf("Always criterion took %d QR steps", res.Report.QRSteps)
	}
	if res.Report.HPL3 > 100 {
		t.Fatalf("domain-pivoted all-LU run unstable on random matrix: HPL3 = %g", res.Report.HPL3)
	}
}

// TestSumCriterionDiagonallyDominantAllLU: §III-B — on a block diagonally
// dominant matrix the Sum criterion with α = 1 accepts every step.
func TestSumCriterionDiagonallyDominantAllLU(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 96
	a := matgen.DiagDominant(n, rng)
	b := matgen.RandomVector(n, rng)
	res := runOn(t, a, b, Config{Alg: LUQR, NB: 16, Grid: tile.NewGrid(2, 2), Criterion: criteria.Sum{Alpha: 1}})
	if res.Report.QRSteps != 0 {
		t.Fatalf("Sum α=1 took %d QR steps on a diagonally dominant matrix", res.Report.QRSteps)
	}
	if res.Report.HPL3 > 10 {
		t.Fatalf("HPL3 = %g", res.Report.HPL3)
	}
}

// TestCriteriaVariantsSolve exercises Sum, MUMPS and Random criteria plus
// the diagonal-tile pivot scope end to end.
func TestCriteriaVariantsSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	n := 96
	a := matgen.Random(n, rng)
	b := matgen.RandomVector(n, rng)
	cfgs := []Config{
		{Alg: LUQR, Criterion: criteria.Sum{Alpha: 100}},
		{Alg: LUQR, Criterion: criteria.MUMPS{Alpha: 2.1}},
		{Alg: LUQR, Criterion: criteria.Random{Alpha: 50}, Seed: 5},
		{Alg: LUQR, Criterion: criteria.Max{Alpha: 100}, Scope: ScopeTile},
	}
	for _, cfg := range cfgs {
		cfg.NB = 16
		cfg.Grid = tile.NewGrid(2, 2)
		res := runOn(t, a, b, cfg)
		if res.Report.HPL3 > 50 {
			t.Errorf("criterion %s: HPL3 = %g", cfg.Criterion.Name(), res.Report.HPL3)
		}
	}
}

// TestRandomCriterionSeedReproducible: same seed → same decisions; different
// seed → (almost surely) different decisions.
func TestRandomCriterionSeedReproducible(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	n := 160
	a := matgen.Random(n, rng)
	b := matgen.RandomVector(n, rng)
	mk := func(seed int64) []bool {
		res := runOn(t, a, b, Config{Alg: LUQR, NB: 16, Criterion: criteria.Random{Alpha: 50}, Seed: seed})
		return res.Report.Decisions
	}
	d1, d2, d3 := mk(1), mk(1), mk(2)
	same12, same13 := true, true
	for k := range d1 {
		if d1[k] != d2[k] {
			same12 = false
		}
		if d1[k] != d3[k] {
			same13 = false
		}
	}
	if !same12 {
		t.Fatal("same seed gave different decisions")
	}
	if same13 {
		t.Fatal("different seeds gave identical decisions (10 coin flips)")
	}
}

// TestHQRTreeVariants: every reduction-tree combination must factor
// correctly.
func TestHQRTreeVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	n := 96
	a := matgen.Random(n, rng)
	b := matgen.RandomVector(n, rng)
	trees := []tree.Tree{tree.FlatTS, tree.FlatTT, tree.Binary, tree.Greedy, tree.Fibonacci}
	for _, intra := range trees {
		for _, inter := range []tree.Tree{tree.FlatTT, tree.Fibonacci, tree.Greedy} {
			res := runOn(t, a, b, Config{Alg: HQR, NB: 12, Grid: tile.NewGrid(3, 1), IntraTree: intra, InterTree: inter})
			if res.Report.HPL3 > 10 {
				t.Errorf("trees %v/%v: HPL3 = %g", intra, inter, res.Report.HPL3)
			}
		}
	}
}

// TestLUNoPivBreakdown: a nonsingular matrix whose leading tile is singular
// defeats tile-local pivoting (the §V-C failure mode).
func TestLUNoPivBreakdown(t *testing.T) {
	nb := 8
	n := 4 * nb
	a := mat.New(n, n)
	// Anti-diagonal block identity: nonsingular, every leading tile zero.
	for i := 0; i < n; i++ {
		a.Set(i, n-1-i, 1)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	res := runOn(t, a, b, Config{Alg: LUNoPiv, NB: nb})
	if !res.Report.Breakdown {
		t.Fatal("LU NoPiv must report breakdown on a singular leading tile")
	}
	// LUPP and HQR handle it.
	for _, alg := range []Algorithm{LUPP, HQR} {
		res := runOn(t, a, b, Config{Alg: alg, NB: nb})
		if res.Report.Breakdown || res.Report.HPL3 > 10 {
			t.Fatalf("%v should solve the anti-diagonal system: breakdown=%v HPL3=%g", alg, res.Report.Breakdown, res.Report.HPL3)
		}
	}
	// The hybrid with a sane criterion must switch to QR steps and survive.
	// (On a 4×1 grid the diagonal domain of step 0 is just the singular
	// leading tile, so only the criterion can save the step; on a 1×1 grid
	// the domain would span the whole panel and pivot around it.)
	hy := runOn(t, a, b, Config{Alg: LUQR, NB: nb, Grid: tile.NewGrid(4, 1), Criterion: criteria.Max{Alpha: 100}})
	if hy.Report.Breakdown || hy.Report.HPL3 > 10 {
		t.Fatalf("LUQR should survive the singular leading tile: breakdown=%v HPL3=%g", hy.Report.Breakdown, hy.Report.HPL3)
	}
	if hy.Report.QRSteps == 0 {
		t.Fatal("LUQR should have taken QR steps on the singular panel")
	}
}

// TestStabilityOrderingOnPathological reproduces the §V-C contrast in
// miniature: on a GEPP-growth matrix, the hybrid with a tight Max criterion
// must be far more stable than LU NoPiv.
func TestStabilityOrderingOnPathological(t *testing.T) {
	n := 128
	a := matgen.Foster(n)
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	nopiv := runOn(t, a, b, Config{Alg: LUNoPiv, NB: 16})
	hqr := runOn(t, a, b, Config{Alg: HQR, NB: 16})
	hybrid := runOn(t, a, b, Config{Alg: LUQR, NB: 16, Criterion: criteria.Max{Alpha: 1}})
	if hqr.Report.HPL3 > 10 {
		t.Fatalf("HQR unstable on foster: %g", hqr.Report.HPL3)
	}
	if hybrid.Report.HPL3 > 100*hqr.Report.HPL3+10 {
		t.Fatalf("hybrid(Max α=1) HPL3 = %g vs HQR %g", hybrid.Report.HPL3, hqr.Report.HPL3)
	}
	if !(nopiv.Report.Growth > 1e6) {
		t.Fatalf("LU NoPiv growth on foster = %g, expected exponential", nopiv.Report.Growth)
	}
	if hybrid.Report.Growth > 1e3 {
		t.Fatalf("hybrid growth = %g, criterion failed to contain it", hybrid.Report.Growth)
	}
}

func TestTraceRecording(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 64
	a := matgen.Random(n, rng)
	b := matgen.RandomVector(n, rng)
	res := runOn(t, a, b, Config{Alg: LUQR, NB: 16, Grid: tile.NewGrid(2, 2), Trace: true, Criterion: criteria.Max{Alpha: 100}})
	tr := res.Report.Trace
	if len(tr) == 0 {
		t.Fatal("no trace recorded")
	}
	// Submission order must be a valid topological order.
	seen := map[int]bool{}
	msgs := 0
	for _, task := range tr {
		for _, d := range task.Deps {
			if !seen[d] {
				t.Fatalf("task %d depends on unseen task %d", task.ID, d)
			}
		}
		seen[task.ID] = true
		msgs += len(task.Recv)
	}
	if msgs == 0 {
		t.Fatal("multi-node run recorded no inter-node messages")
	}
	// A 1×1 grid must record no messages at all.
	res1 := runOn(t, a, b, Config{Alg: LUQR, NB: 16, Grid: tile.NewGrid(1, 1), Trace: true, Criterion: criteria.Max{Alpha: 100}})
	for _, task := range res1.Report.Trace {
		if len(task.Recv) != 0 {
			t.Fatalf("single-node run shipped data: %v", task.Recv)
		}
	}
}

func TestRunInputValidation(t *testing.T) {
	a := mat.New(4, 5)
	if _, err := Run(a, make([]float64, 4), Config{}); err == nil {
		t.Fatal("non-square matrix accepted")
	}
	sq := mat.Identity(4)
	if _, err := Run(sq, make([]float64, 3), Config{}); err == nil {
		t.Fatal("wrong RHS length accepted")
	}
}

// TestRunPadsNonMultipleN: §II-D.2 — N need not divide into tiles; the
// clean-up pads with an identity block and the solution is unaffected.
func TestRunPadsNonMultipleN(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for _, n := range []int{10, 37, 90} {
		a := matgen.Random(n, rng)
		xTrue := matgen.RandomVector(n, rng)
		b := mat.MulVec(a, xTrue)
		for _, alg := range []Algorithm{LUQR, HQR, LUPP} {
			res := runOn(t, a, b, Config{Alg: alg, NB: 16, Grid: tile.NewGrid(2, 2), Criterion: criteria.Max{Alpha: 1000}})
			if len(res.X) != n {
				t.Fatalf("%v n=%d: solution length %d", alg, n, len(res.X))
			}
			if res.Report.N != n {
				t.Fatalf("%v n=%d: report N = %d", alg, n, res.Report.N)
			}
			for i := range xTrue {
				if math.Abs(res.X[i]-xTrue[i]) > 1e-7*(1+math.Abs(xTrue[i])) {
					t.Fatalf("%v n=%d: x[%d] = %g, want %g", alg, n, i, res.X[i], xTrue[i])
				}
			}
		}
	}
	// NB unset and tiny N: defaults must adapt.
	small := matgen.Random(7, rng)
	bs := matgen.RandomVector(7, rng)
	res := runOn(t, small, bs, Config{Alg: HQR})
	if res.Report.HPL3 > 10 {
		t.Fatalf("tiny system HPL3 = %g", res.Report.HPL3)
	}
}

func TestRunDoesNotMutateInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	a := matgen.Random(32, rng)
	b := matgen.RandomVector(32, rng)
	ac := a.Clone()
	bc := append([]float64(nil), b...)
	runOn(t, a, b, Config{Alg: LUQR, NB: 16})
	if !mat.Equal(a, ac) {
		t.Fatal("Run mutated A")
	}
	for i := range b {
		if b[i] != bc[i] {
			t.Fatal("Run mutated b")
		}
	}
}

func TestReportDerivedQuantities(t *testing.T) {
	r := &Report{N: 100, Decisions: []bool{true, true, false, false}, LUSteps: 2, QRSteps: 2}
	if r.FracLU() != 0.5 {
		t.Fatal("FracLU wrong")
	}
	fake, true_ := r.FakeGFlops(1), r.TrueGFlops(1)
	if !(true_ > fake) {
		t.Fatalf("true GFLOP/s (%g) must exceed fake (%g) when QR steps ran", true_, fake)
	}
	if r.String() == "" {
		t.Fatal("empty report string")
	}
}

func TestParseAlgorithm(t *testing.T) {
	for _, a := range allAlgs {
		got, err := ParseAlgorithm(a.String())
		if err != nil || got != a {
			t.Fatalf("ParseAlgorithm(%q) = %v, %v", a.String(), got, err)
		}
	}
	if _, err := ParseAlgorithm("bogus"); err == nil {
		t.Fatal("expected error")
	}
}

// TestGridShapesProperty: random grid/tile combinations all solve.
func TestGridShapesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 12; trial++ {
		p := 1 + rng.Intn(4)
		q := 1 + rng.Intn(4)
		nt := 1 + rng.Intn(6)
		nb := 4 + 4*rng.Intn(3)
		n := nt * nb
		a := matgen.Random(n, rng)
		b := matgen.RandomVector(n, rng)
		alg := allAlgs[rng.Intn(len(allAlgs))]
		res := runOn(t, a, b, Config{Alg: alg, NB: nb, Grid: tile.NewGrid(p, q), Criterion: criteria.Max{Alpha: 1000}, Seed: int64(trial)})
		if math.IsNaN(res.Report.HPL3) || res.Report.HPL3 > 100 {
			t.Errorf("trial %d: %v %dx%d grid nt=%d nb=%d HPL3=%g", trial, alg, p, q, nt, nb, res.Report.HPL3)
		}
	}
}

// TestGrowthTracking: the peak intermediate growth must be recorded, be at
// least the final growth for LU-type eliminations, and respect the Max
// criterion's (1+α)^{n−1} bound on norms (§III-A implies a comparable
// element bound scaled by nb).
func TestGrowthTracking(t *testing.T) {
	n := 96
	a := matgen.Wilkinson(n)
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	res := runOn(t, a, b, Config{Alg: LUNoPiv, NB: 16, TrackGrowth: true})
	if res.Report.PeakGrowth <= 1 {
		t.Fatalf("PeakGrowth = %g on wilkinson", res.Report.PeakGrowth)
	}
	// The Wilkinson matrix doubles its last column at every scalar step:
	// the peak must be within a factor of the final growth and both huge.
	if res.Report.PeakGrowth < res.Report.Growth/2 {
		t.Fatalf("peak %g below final %g", res.Report.PeakGrowth, res.Report.Growth)
	}
	// With tracking off, the field stays zero.
	res2 := runOn(t, a, b, Config{Alg: LUNoPiv, NB: 16})
	if res2.Report.PeakGrowth != 0 {
		t.Fatalf("PeakGrowth recorded without TrackGrowth: %g", res2.Report.PeakGrowth)
	}
	// The hybrid with a tight criterion contains the peak growth too.
	hy := runOn(t, a, b, Config{Alg: LUQR, NB: 16, Grid: tile.NewGrid(2, 1), Criterion: criteria.Max{Alpha: 1}, TrackGrowth: true})
	if hy.Report.PeakGrowth > 100 {
		t.Fatalf("hybrid peak growth %g not contained on wilkinson", hy.Report.PeakGrowth)
	}
}

// TestGrowthTrackingDeterministic: probes are observational — results with
// and without tracking must match bitwise.
func TestGrowthTrackingDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	n := 96
	a := matgen.Random(n, rng)
	b := matgen.RandomVector(n, rng)
	cfg := Config{Alg: LUQR, NB: 16, Grid: tile.NewGrid(2, 2), Criterion: criteria.Max{Alpha: 200}}
	r1 := runOn(t, a, b, cfg)
	cfg.TrackGrowth = true
	r2 := runOn(t, a, b, cfg)
	for i := range r1.X {
		if r1.X[i] != r2.X[i] {
			t.Fatal("growth probes changed the numerical result")
		}
	}
}
