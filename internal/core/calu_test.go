package core

import (
	"math"
	"math/rand"
	"testing"

	"luqr/internal/mat"
	"luqr/internal/matgen"
	"luqr/internal/tile"
)

func TestCALUSolvesAccurately(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for _, cfg := range []struct {
		nt, nb, p, q int
	}{{1, 12, 1, 1}, {4, 12, 2, 2}, {8, 8, 4, 1}, {5, 16, 1, 4}} {
		n := cfg.nt * cfg.nb
		a := matgen.Random(n, rng)
		xTrue := matgen.RandomVector(n, rng)
		b := mat.MulVec(a, xTrue)
		res := runOn(t, a, b, Config{Alg: CALU, NB: cfg.nb, Grid: tile.NewGrid(cfg.p, cfg.q)})
		for i := range xTrue {
			if math.Abs(res.X[i]-xTrue[i]) > 1e-7*(1+math.Abs(xTrue[i])) {
				t.Fatalf("%+v: x[%d] = %g, want %g", cfg, i, res.X[i], xTrue[i])
			}
		}
	}
}

// TestCALUStableOnSpecialMatrices: tournament pivoting must handle the
// matrices that defeat tile-local pivoting.
func TestCALUStableOnSpecialMatrices(t *testing.T) {
	n := 96
	for _, name := range []string{"fiedler", "orthogo", "ris", "circul"} {
		ent, err := matgen.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(51))
		a := ent.Gen(n, rng)
		b := matgen.RandomVector(n, rng)
		res := runOn(t, a, b, Config{Alg: CALU, NB: 16, Grid: tile.NewGrid(3, 1)})
		if res.Report.Breakdown || res.Report.HPL3 > 100 {
			t.Errorf("%s: breakdown=%v HPL3=%g", name, res.Report.Breakdown, res.Report.HPL3)
		}
	}
}

// TestCALUSingularLeadingTile: the anti-diagonal system that breaks LU
// NoPiv is routine for tournament pivoting.
func TestCALUSingularLeadingTile(t *testing.T) {
	nb := 8
	n := 4 * nb
	a := mat.New(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, n-1-i, 1)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i)
	}
	res := runOn(t, a, b, Config{Alg: CALU, NB: nb, Grid: tile.NewGrid(4, 1)})
	if res.Report.Breakdown || res.Report.HPL3 > 10 {
		t.Fatalf("CALU failed the anti-diagonal system: breakdown=%v HPL3=%g", res.Report.Breakdown, res.Report.HPL3)
	}
}

// TestCALUFewerPanelMessagesThanLUPP: the communication-avoiding property —
// LUPP's panel factorization pays a sequential pivot exchange per column
// (nb·⌈log₂ p⌉ messages per panel, modeled as ExtraComm), while CALU's
// tournament moves only O(#tiles) candidate blocks per panel.
func TestCALUFewerPanelMessagesThanLUPP(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	n := 128
	a := matgen.Random(n, rng)
	b := matgen.RandomVector(n, rng)
	count := func(alg Algorithm) int {
		res := runOn(t, a, b, Config{Alg: alg, NB: 16, Grid: tile.NewGrid(4, 1), Trace: true})
		msgs := 0
		for _, task := range res.Report.Trace {
			msgs += len(task.Recv) + len(task.ExtraComm)
		}
		return msgs
	}
	calu, lupp := count(CALU), count(LUPP)
	if calu >= lupp {
		t.Fatalf("CALU moved %d messages, LUPP %d — expected fewer", calu, lupp)
	}
	// And the panel-phase latency: LUPP's per-column exchanges must put
	// more ExtraComm rounds on the critical path than CALU (which has
	// none).
	extra := func(alg Algorithm) int {
		res := runOn(t, a, b, Config{Alg: alg, NB: 16, Grid: tile.NewGrid(4, 1), Trace: true})
		n := 0
		for _, task := range res.Report.Trace {
			n += len(task.ExtraComm)
		}
		return n
	}
	if ec, el := extra(CALU), extra(LUPP); ec != 0 || el == 0 {
		t.Fatalf("ExtraComm: CALU %d (want 0), LUPP %d (want > 0)", ec, el)
	}
}

// TestCALUDeterministic: worker-count independence.
func TestCALUDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	n := 96
	a := matgen.Random(n, rng)
	b := matgen.RandomVector(n, rng)
	var ref []float64
	for _, w := range []int{1, 4} {
		res := runOn(t, a, b, Config{Alg: CALU, NB: 16, Grid: tile.NewGrid(2, 2), Workers: w})
		if ref == nil {
			ref = res.X
			continue
		}
		for i := range ref {
			if res.X[i] != ref[i] {
				t.Fatalf("workers=%d changed the CALU result", w)
			}
		}
	}
}

// TestCALUGrowthComparableToLUPP: "tournament pivoting has been proven to
// be stable in practice" — growth within a modest factor of partial
// pivoting on random matrices.
func TestCALUGrowthComparableToLUPP(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	n := 128
	a := matgen.Random(n, rng)
	b := matgen.RandomVector(n, rng)
	calu := runOn(t, a, b, Config{Alg: CALU, NB: 16, Grid: tile.NewGrid(4, 1)})
	lupp := runOn(t, a, b, Config{Alg: LUPP, NB: 16, Grid: tile.NewGrid(4, 1)})
	if calu.Report.Growth > 50*lupp.Report.Growth {
		t.Fatalf("CALU growth %g vs LUPP %g", calu.Report.Growth, lupp.Report.Growth)
	}
	if calu.Report.HPL3 > 100*lupp.Report.HPL3 {
		t.Fatalf("CALU HPL3 %g vs LUPP %g", calu.Report.HPL3, lupp.Report.HPL3)
	}
}
