package core

import (
	"fmt"

	"luqr/internal/blas"
	"luqr/internal/flops"
	"luqr/internal/lapack"
	"luqr/internal/mat"
	"luqr/internal/runtime"
	"luqr/internal/tree"
)

// submitQRStep emits the tasks of a QR elimination step at panel k: the
// hierarchical reduction of §II-B (HQR [8]) with the configured intra- and
// inter-domain trees. Every tree.Op maps to a factor kernel on the panel
// plus one update kernel per trailing column and for the RHS.
func (f *fact) submitQRStep(st *stepState) {
	k := st.k
	if st.tGeqrt == nil {
		st.tGeqrt = map[int]*mat.Matrix{}
		st.tKill = map[int]*mat.Matrix{}
		st.tGeqrt32 = map[int]*mat.Matrix32{}
		st.tKill32 = map[int]*mat.Matrix32{}
		st.hTGeqrt = map[int]*runtime.Handle{}
		st.hTKill = map[int]*runtime.Handle{}
	}
	domains := f.cfg.Grid.PanelDomains(k, f.nt)
	ops := tree.Hierarchical(domains, f.cfg.IntraTree, f.cfg.InterTree)
	for _, op := range ops {
		switch op.Kind {
		case tree.OpGeqrt:
			// A trial (A2)/(B2) factorization already triangularized the
			// diagonal tile; reuse it and only submit the updates.
			if op.I == k && st.preFactored {
				f.submitGeqrtUpdates(st, op.I)
				continue
			}
			f.submitGeqrt(st, op.I)
		case tree.OpTS:
			f.submitTSKill(st, op.I, op.Piv)
		case tree.OpTT:
			f.submitTTKill(st, op.I, op.Piv)
		}
	}
}

// submitGeqrt triangularizes tile row i of panel k and applies Qᵀ to the
// row's trailing tiles and RHS tile.
func (f *fact) submitGeqrt(st *stepState, i int) {
	k := st.k
	nb := f.nb
	t := mat.New(nb, nb)
	st.tGeqrt[i] = t
	// The float32 T image is allocated at submit time (the map write is
	// single-threaded here) and kept in sync with t by the factor task.
	var t32 *mat.Matrix32
	if st.f32 && f.res != nil {
		t32 = mat.NewMatrix32(nb, nb)
		st.tGeqrt32[i] = t32
	}
	hT := f.e.NewHandle(fmt.Sprintf("Tg(%d,%d)", i, k), nb*nb*8, f.owner(i, k))
	st.hTGeqrt[i] = hT

	f.e.Submit(runtime.TaskSpec{
		Name:     fmt.Sprintf("GEQRT(%d,%d)", i, k),
		Kernel:   "GEQRT",
		Node:     f.owner(i, k),
		Flops:    flops.Geqrt(nb, nb),
		Priority: prioElim(k),
		Accesses: []runtime.Access{runtime.W(f.h[i][k]), runtime.W(hT)},
		RunTraced: func(tr *runtime.TraceTask) {
			f.runTileTaskT(tr, st, nil, []tileRef{mref(i, k)}, t, t32,
				func(in, out []*mat.Matrix32) { lapack.Geqrt32RIB(out[0], t32, f.ib) },
				func() { lapack.Geqrt32IB(f.A.Tile(i, k), t, f.ib) },
				func() { lapack.GeqrtIB(f.A.Tile(i, k), t, f.ib) })
		},
	})
	f.submitGeqrtUpdates(st, i)
}

// submitGeqrtUpdates applies the Qᵀ of a completed GEQRT on row i to the
// row's trailing tiles and RHS tile. The T factor must already be present
// in st.tGeqrt[i] / st.hTGeqrt[i].
func (f *fact) submitGeqrtUpdates(st *stepState, i int) {
	k := st.k
	nb := f.nb
	t := st.tGeqrt[i]
	t32 := st.tGeqrt32[i]
	hT := st.hTGeqrt[i]
	for _, j := range f.trailingCols(k) {
		j := j
		f.e.Submit(runtime.TaskSpec{
			Name:     fmt.Sprintf("UNMQR(%d,%d,%d)", i, k, j),
			Kernel:   "UNMQR",
			Node:     f.owner(i, j),
			Flops:    flops.Unmqr(nb, nb),
			Priority: prioUpdate(k, j),
			Accesses: []runtime.Access{runtime.R(f.h[i][k]), runtime.R(hT), runtime.W(f.h[i][j])},
			RunTraced: func(tr *runtime.TraceTask) {
				f.runTileTask(tr, st, []tileRef{mref(i, k)}, []tileRef{mref(i, j)},
					func(in, out []*mat.Matrix32) { lapack.Unmqr32R(blas.Trans, in[0], t32, out[0]) },
					func() { lapack.Unmqr32(blas.Trans, f.A.Tile(i, k), t, f.A.Tile(i, j)) },
					func() { lapack.Unmqr(blas.Trans, f.A.Tile(i, k), t, f.A.Tile(i, j)) })
			},
		})
	}
	f.e.Submit(runtime.TaskSpec{
		Name:     fmt.Sprintf("UNMQR(%d,%d,rhs)", i, k),
		Kernel:   "UNMQR",
		Node:     f.owner(i, k),
		Flops:    flops.Unmqr(nb, f.rhs.W),
		Priority: prioUpdate(k, k+1),
		Accesses: []runtime.Access{runtime.R(f.h[i][k]), runtime.R(hT), runtime.W(f.hb[i])},
		RunTraced: func(tr *runtime.TraceTask) {
			f.runTileTask(tr, st, []tileRef{mref(i, k)}, []tileRef{vref(i)},
				func(in, out []*mat.Matrix32) { lapack.Unmqr32R(blas.Trans, in[0], t32, out[0]) },
				func() { lapack.Unmqr32(blas.Trans, f.A.Tile(i, k), t, f.rhs.Tile(i)) },
				func() { lapack.Unmqr(blas.Trans, f.A.Tile(i, k), t, f.rhs.Tile(i)) })
		},
	})
}

// submitTSKill zeroes square tile row i against triangular pivot row piv
// with TS kernels and updates both rows' trailing tiles.
func (f *fact) submitTSKill(st *stepState, i, piv int) {
	f.submitKill(st, i, piv, true)
}

// submitTTKill zeroes triangular tile row i against triangular pivot row
// piv with TT kernels.
func (f *fact) submitTTKill(st *stepState, i, piv int) {
	f.submitKill(st, i, piv, false)
}

func (f *fact) submitKill(st *stepState, i, piv int, ts bool) {
	k := st.k
	nb := f.nb
	t := mat.New(nb, nb)
	st.tKill[i] = t
	var t32 *mat.Matrix32
	if st.f32 && f.res != nil {
		t32 = mat.NewMatrix32(nb, nb)
		st.tKill32[i] = t32
	}
	hT := f.e.NewHandle(fmt.Sprintf("Tk(%d,%d)", i, k), nb*nb*8, f.owner(i, k))
	st.hTKill[i] = hT

	kernel, factFlops, updFlops := "TSQRT", flops.Tsqrt(nb), flops.Tsmqr(nb, nb)
	updKernel, rhsFlops := "TSMQR", flops.Tsmqr(nb, f.rhs.W)
	if !ts {
		kernel, factFlops, updFlops = "TTQRT", flops.Ttqrt(nb), flops.Ttmqr(nb, nb)
		updKernel, rhsFlops = "TTMQR", flops.Ttmqr(nb, f.rhs.W)
	}

	f.e.Submit(runtime.TaskSpec{
		Name:     fmt.Sprintf("%s(%d,%d,%d)", kernel, i, piv, k),
		Kernel:   kernel,
		Node:     f.owner(i, k),
		Flops:    factFlops,
		Priority: prioElim(k),
		Accesses: []runtime.Access{runtime.W(f.h[piv][k]), runtime.W(f.h[i][k]), runtime.W(hT)},
		RunTraced: func(tr *runtime.TraceTask) {
			f.runTileTaskT(tr, st, nil, []tileRef{mref(piv, k), mref(i, k)}, t, t32,
				func(in, out []*mat.Matrix32) {
					if ts {
						lapack.Tsqrt32RIB(out[0], out[1], t32, f.ib)
					} else {
						lapack.Ttqrt32RIB(out[0], out[1], t32, f.ib)
					}
				},
				func() {
					if ts {
						lapack.Tsqrt32IB(f.A.Tile(piv, k), f.A.Tile(i, k), t, f.ib)
					} else {
						lapack.Ttqrt32IB(f.A.Tile(piv, k), f.A.Tile(i, k), t, f.ib)
					}
				},
				func() {
					if ts {
						lapack.TsqrtIB(f.A.Tile(piv, k), f.A.Tile(i, k), t, f.ib)
					} else {
						lapack.TtqrtIB(f.A.Tile(piv, k), f.A.Tile(i, k), t, f.ib)
					}
				})
		},
	})
	for _, j := range f.trailingCols(k) {
		j := j
		f.e.Submit(runtime.TaskSpec{
			Name:     fmt.Sprintf("%s(%d,%d,%d)", updKernel, i, piv, j),
			Kernel:   updKernel,
			Node:     f.owner(i, j),
			Flops:    updFlops,
			Priority: prioUpdate(k, j),
			Accesses: []runtime.Access{
				runtime.R(f.h[i][k]), runtime.R(hT),
				runtime.W(f.h[piv][j]), runtime.W(f.h[i][j]),
			},
			RunTraced: func(tr *runtime.TraceTask) {
				f.runTileTask(tr, st, []tileRef{mref(i, k)}, []tileRef{mref(piv, j), mref(i, j)},
					func(in, out []*mat.Matrix32) {
						if ts {
							lapack.Tsmqr32R(blas.Trans, in[0], t32, out[0], out[1])
						} else {
							lapack.Ttmqr32R(blas.Trans, in[0], t32, out[0], out[1])
						}
					},
					func() {
						if ts {
							lapack.Tsmqr32(blas.Trans, f.A.Tile(i, k), t, f.A.Tile(piv, j), f.A.Tile(i, j))
						} else {
							lapack.Ttmqr32(blas.Trans, f.A.Tile(i, k), t, f.A.Tile(piv, j), f.A.Tile(i, j))
						}
					},
					func() {
						if ts {
							lapack.Tsmqr(blas.Trans, f.A.Tile(i, k), t, f.A.Tile(piv, j), f.A.Tile(i, j))
						} else {
							lapack.Ttmqr(blas.Trans, f.A.Tile(i, k), t, f.A.Tile(piv, j), f.A.Tile(i, j))
						}
					})
			},
		})
	}
	f.e.Submit(runtime.TaskSpec{
		Name:     fmt.Sprintf("%s(%d,%d,rhs)", updKernel, i, piv),
		Kernel:   updKernel,
		Node:     f.owner(i, k),
		Flops:    rhsFlops,
		Priority: prioUpdate(k, k+1),
		Accesses: []runtime.Access{
			runtime.R(f.h[i][k]), runtime.R(hT),
			runtime.W(f.hb[piv]), runtime.W(f.hb[i]),
		},
		RunTraced: func(tr *runtime.TraceTask) {
			f.runTileTask(tr, st, []tileRef{mref(i, k)}, []tileRef{vref(piv), vref(i)},
				func(in, out []*mat.Matrix32) {
					if ts {
						lapack.Tsmqr32R(blas.Trans, in[0], t32, out[0], out[1])
					} else {
						lapack.Ttmqr32R(blas.Trans, in[0], t32, out[0], out[1])
					}
				},
				func() {
					if ts {
						lapack.Tsmqr32(blas.Trans, f.A.Tile(i, k), t, f.rhs.Tile(piv), f.rhs.Tile(i))
					} else {
						lapack.Ttmqr32(blas.Trans, f.A.Tile(i, k), t, f.rhs.Tile(piv), f.rhs.Tile(i))
					}
				},
				func() {
					if ts {
						lapack.Tsmqr(blas.Trans, f.A.Tile(i, k), t, f.rhs.Tile(piv), f.rhs.Tile(i))
					} else {
						lapack.Ttmqr(blas.Trans, f.A.Tile(i, k), t, f.rhs.Tile(piv), f.rhs.Tile(i))
					}
				})
		},
	})
}
