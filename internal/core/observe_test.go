package core

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"luqr/internal/criteria"
	"luqr/internal/matgen"
	"luqr/internal/runtime"
	"luqr/internal/tile"
	"luqr/internal/tree"
)

// TestRandomCriterionRace runs the RANDOM criterion with a wide worker pool.
// Decide callbacks execute on worker goroutines; before the per-step rng
// derivation the shared *rand.Rand raced under the race detector (the
// Makefile tier1 gate runs this package with -race). The run must also stay
// reproducible: same seed, same decisions, at any worker count.
func TestRandomCriterionRace(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := 160
	a := matgen.Random(n, rng)
	b := matgen.RandomVector(n, rng)
	decisions := func(workers int) []bool {
		res, err := Run(a, b, Config{
			Alg: LUQR, NB: 16, Criterion: criteria.Random{Alpha: 50},
			Seed: 7, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Report.Decisions
	}
	base := decisions(4)
	for _, w := range []int{4, 8} {
		got := decisions(w)
		for k := range base {
			if got[k] != base[k] {
				t.Fatalf("workers=%d: decision at step %d differs (%v vs %v)", w, k, got, base)
			}
		}
	}
}

// structuralTrace serializes the scheduling-independent part of a trace —
// task IDs, names, kernels, nodes, dependency edges, and the recorded
// messages — omitting the measured timestamps, which legitimately vary.
func structuralTrace(trace []*runtime.TraceTask) []byte {
	var buf bytes.Buffer
	for _, tt := range trace {
		fmt.Fprintf(&buf, "%d|%s|%s|%d|%v|%v|%v\n", tt.ID, tt.Name, tt.Kernel, tt.Node, tt.Deps, tt.Recv, tt.ExtraComm)
	}
	return buf.Bytes()
}

// TestTraceDeterministicAcrossWorkerCounts asserts the engine-level claim
// the sim package relies on: the recorded trace of a hybrid factorization
// (task IDs, deps, Recv messages) is byte-identical for 1, 2, 8 and 16
// workers — only the measured timestamps and dispatch routes may differ.
func TestTraceDeterministicAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 128
	a := matgen.Random(n, rng)
	b := matgen.RandomVector(n, rng)
	mk := func(workers int) []byte {
		res, err := Run(a, b, Config{
			Alg: LUQR, NB: 16, Grid: tile.NewGrid(2, 2),
			Criterion: criteria.Max{Alpha: 100}, Trace: true, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Report.Trace) == 0 {
			t.Fatal("no trace recorded")
		}
		return structuralTrace(res.Report.Trace)
	}
	want := mk(1)
	for _, w := range []int{2, 8, 16} {
		if got := mk(w); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d produced a structurally different trace", w)
		}
	}
}

// TestSolutionBitIdenticalAcrossWorkerCounts pins the numerical half of the
// determinism contract: under the work-stealing scheduler the factorization
// result must be bit-for-bit identical at 1, 2, 8 and 16 workers — the task
// graph and the per-task arithmetic are worker-count-independent, so any
// drift means tasks raced on tile data.
func TestSolutionBitIdenticalAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	n := 128
	a := matgen.Random(n, rng)
	b := matgen.RandomVector(n, rng)
	mk := func(workers int) []uint64 {
		res, err := Run(a, b, Config{
			Alg: LUQR, NB: 16, Grid: tile.NewGrid(2, 2),
			Criterion: criteria.Random{Alpha: 50}, Seed: 9, Workers: workers,
			IntraTree: tree.FlatTS, InterTree: tree.Fibonacci,
		})
		if err != nil {
			t.Fatal(err)
		}
		bits := make([]uint64, len(res.X))
		for i, v := range res.X {
			bits[i] = math.Float64bits(v)
		}
		return bits
	}
	want := mk(1)
	for _, w := range []int{2, 8, 16} {
		got := mk(w)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: x[%d] differs bitwise (%x vs %x)", w, i, got[i], want[i])
			}
		}
	}
}

// TestPanelPriorityBands pins the mapping of the solver's priorities onto
// the scheduler's dispatch tiers: panel, eliminator and lookahead-update
// tasks must ride the shared priority lane (≥ runtime.LanePriority) in that
// band order, general trailing updates must stay below the lane on the
// deques, and every band must decrease with k without crossing the next.
func TestPanelPriorityBands(t *testing.T) {
	const lastK = 1 << 10 // far beyond any realistic tile count
	if prioPanel(lastK) <= prioElim(0) {
		t.Fatalf("panel band bottom %d crosses eliminator band top %d", prioPanel(lastK), prioElim(0))
	}
	if prioElim(lastK) <= prioLookahead(0) {
		t.Fatalf("eliminator band bottom %d crosses lookahead band top %d", prioElim(lastK), prioLookahead(0))
	}
	if prioLookahead(lastK) < runtime.LanePriority {
		t.Fatalf("prioLookahead(%d)=%d fell below the lane threshold %d", lastK, prioLookahead(lastK), runtime.LanePriority)
	}
	if prioPanel(1) >= prioPanel(0) || prioElim(1) >= prioElim(0) || prioLookahead(1) >= prioLookahead(0) {
		t.Fatal("priorities must decrease with k so earlier panels outrank later ones")
	}
	for _, k := range []int{0, 1, lastK} {
		// j = k+1 is the lookahead column (gates the next panel): lane.
		if p := prioUpdate(k, k+1); p != prioLookahead(k) {
			t.Fatalf("prioUpdate(%d,%d)=%d, want the lookahead band value %d", k, k+1, p, prioLookahead(k))
		}
		// j ≥ k+2 are general trailing updates: deques, below the lane.
		if p := prioUpdate(k, k+2); p >= runtime.LanePriority {
			t.Fatalf("prioUpdate(%d,%d)=%d reached the lane threshold %d; trailing updates must ride the deques", k, k+2, p, runtime.LanePriority)
		}
	}
}

// TestNaNPanelForcesQR is the end-to-end regression for the maxOf NaN bug:
// a NaN injected below the diagonal must push Max, Sum and MUMPS to a QR
// step at the poisoned panel, the factorization must complete, and the NaN
// must not leak into the tiles finalized before the poisoned column was
// touched (row 0 and column 0 of the tile grid).
func TestNaNPanelForcesQR(t *testing.T) {
	const n, nb = 64, 16 // 4×4 tiles
	for _, tc := range []struct {
		name string
		crit criteria.Criterion
	}{
		{"max", criteria.Max{Alpha: 100}},
		{"max-alpha-inf", criteria.Max{Alpha: math.Inf(1)}},
		{"sum", criteria.Sum{Alpha: 1000}},
		{"mumps", criteria.MUMPS{Alpha: 2.1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			a := matgen.DiagDominant(n, rng)
			b := matgen.RandomVector(n, rng)
			// Tile (2,1): strictly below the diagonal, untouched by the
			// step-0 panel, poisoning the step-1 criterion data.
			a.Set(2*nb+3, nb+5, math.NaN())

			res, err := Run(a, b, Config{
				Alg: LUQR, NB: nb, Grid: tile.NewGrid(2, 2),
				Criterion: tc.crit, Workers: 4,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Report.Decisions[1] {
				t.Fatalf("%s took an LU step on the NaN panel", tc.crit.Name())
			}
			// Step 0 finalizes tile row 0 and tile column 0 before any task
			// reads the poisoned tile; they must stay NaN-free.
			ta := res.Factored
			for i := 0; i < ta.MT; i++ {
				for j := 0; j < ta.NT; j++ {
					if i != 0 && j != 0 {
						continue
					}
					tl := ta.Tile(i, j)
					for r := 0; r < tl.Rows; r++ {
						for c := 0; c < tl.Cols; c++ {
							if math.IsNaN(tl.At(r, c)) {
								t.Fatalf("NaN propagated into finalized tile (%d,%d) at (%d,%d)", i, j, r, c)
							}
						}
					}
				}
			}
		})
	}
}

// TestMeasuredStatsOnFactorization sanity-checks the observability layer on
// a real hybrid run: the measured per-kernel aggregation covers every
// recorded task and the Chrome export round-trips.
func TestMeasuredStatsOnFactorization(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	n := 128
	a := matgen.Random(n, rng)
	b := matgen.RandomVector(n, rng)
	res, err := Run(a, b, Config{
		Alg: LUQR, NB: 16, Grid: tile.NewGrid(2, 2),
		Criterion: criteria.Never{}, Trace: true, Workers: 2,
		IntraTree: tree.FlatTS, InterTree: tree.Fibonacci,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := runtime.ComputeStats(res.Report.Trace)
	if s.Tasks != len(res.Report.Trace) {
		t.Fatalf("stats cover %d of %d tasks", s.Tasks, len(res.Report.Trace))
	}
	// An all-QR hybrid run must show the QR kernel families.
	for _, k := range []string{"GEQRT", "TSQRT", "UNMQR"} {
		if s.Kernels[k].Count == 0 {
			t.Fatalf("kernel %s missing from measured stats: %v", k, s.KernelNames())
		}
	}
	if s.CriticalPath <= 0 || s.CriticalPath > s.Span {
		t.Fatalf("critical path %v vs span %v", s.CriticalPath, s.Span)
	}
	var buf bytes.Buffer
	if err := runtime.WriteChromeTrace(&buf, res.Report.Trace); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty chrome trace")
	}
}
