// Package core implements the paper's solvers on top of the dataflow
// runtime: the hybrid LU-QR algorithm (Algorithm 1, variant (A1) with
// diagonal-domain pivoting) and the comparison algorithms of §V-B — LU
// NoPiv, LU IncPiv (incremental/pairwise pivoting), LUPP (partial pivoting
// across the whole panel, the ScaLAPACK reference), and HQR (hierarchical
// tiled QR).
//
// Every algorithm is expressed as a dynamically unfolding task graph: panel
// steps submit their elimination and update tasks as decisions resolve,
// trailing-matrix tasks of different steps overlap freely, and the recorded
// trace drives the discrete-event performance simulation.
//
// A factorization is reusable: Run returns a Result that retains the
// factored tiles and per-step decisions, and Result.Solve /
// Result.SolveBatch replay the stored transformations on new right-hand
// sides in O(N²) — the "second pass" of §II-D.1 — without re-factoring.
// SolveBatch packs many right-hand sides as the columns of one tile.Vector
// and pays a single replay plus one block back-substitution for the whole
// batch; the service layer (internal/service) builds its factorization
// cache on exactly this property.
package core

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"luqr/internal/criteria"
	"luqr/internal/tile"
	"luqr/internal/tree"
)

// Algorithm selects a factorization.
type Algorithm int

// The five algorithms compared in §V.
const (
	// LUQR is the hybrid LU-QR algorithm: at each step a robustness
	// criterion chooses between an LU step (pivoting confined to the
	// diagonal domain) and a QR step (hierarchical reduction trees).
	LUQR Algorithm = iota
	// LUNoPiv performs LU with pivoting only inside the diagonal tile —
	// fast, communication-free on the panel, and unstable in general.
	LUNoPiv
	// LUIncPiv performs incremental (pairwise) pivoting across the panel
	// tiles, as in the tiled LU of PLASMA — efficient but with compounding
	// growth.
	LUIncPiv
	// LUPP performs LU with partial pivoting across the whole panel — the
	// stable reference, paying a global pivot search and cross-node row
	// swaps at every step (the ScaLAPACK PDGETRF baseline).
	LUPP
	// HQR is the hierarchical tiled QR factorization of [8] — always
	// stable, twice the flops.
	HQR
	// CALU is communication-avoiding LU with tournament pivoting [14]
	// (§VI-D) — implemented here as an extension; the paper had no CALU
	// implementation to compare against.
	CALU
	// HLU is hierarchical LU with multiple eliminators per panel — a
	// prototype of the §VII future-work algorithm, reusing the QR step's
	// reduction trees with pairwise LU kernels. Pairwise-pivoting
	// stability; short critical path.
	HLU
)

func (a Algorithm) String() string {
	switch a {
	case LUQR:
		return "luqr"
	case LUNoPiv:
		return "lunopiv"
	case LUIncPiv:
		return "luincpiv"
	case LUPP:
		return "lupp"
	case HQR:
		return "hqr"
	case CALU:
		return "calu"
	case HLU:
		return "hlu"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// ParseAlgorithm converts a CLI name into an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	for _, a := range []Algorithm{LUQR, LUNoPiv, LUIncPiv, LUPP, HQR, CALU, HLU} {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("core: unknown algorithm %q", s)
}

// LUVariant selects the formulation of the LU step (§II-A / §II-C). The
// paper evaluates (A1) only; the other variants are described in §II-C and
// implemented here as extensions.
type LUVariant int

const (
	// VarA1 factors the panel with LU and partial pivoting (restricted to
	// the configured Scope), applies L⁻¹P to row k, eliminates with U, and
	// updates with GEMM — the paper's evaluated variant.
	VarA1 LUVariant = iota
	// VarA2 factors the diagonal tile with QR instead: same dependencies
	// and update as (A1), Factor/Apply twice as expensive, but a rejected
	// trial is not discarded — the QR step reuses the factorization
	// (§II-C.1). Implies diagonal-tile pivot scope.
	VarA2
	// VarB1 is block LU (§II-C.2): Factor = LU of the diagonal tile,
	// Eliminate = A_ik·A_kk⁻¹, no Apply (row k untouched), Schur update
	// with the original row k. The result is block upper triangular, so the
	// solve performs a block back-substitution through the stored diagonal
	// factors. Implies diagonal-tile pivot scope.
	VarB1
	// VarB2 is block LU with a QR diagonal factorization: like (B1) with
	// Eliminate = (A_ik·R⁻¹)·Qᵀ, and the QR step reusing the trial
	// factorization as in (A2). Implies diagonal-tile pivot scope.
	VarB2
)

func (v LUVariant) String() string {
	switch v {
	case VarA1:
		return "a1"
	case VarA2:
		return "a2"
	case VarB1:
		return "b1"
	case VarB2:
		return "b2"
	}
	return fmt.Sprintf("LUVariant(%d)", int(v))
}

// ParseVariant converts a CLI name into an LUVariant.
func ParseVariant(s string) (LUVariant, error) {
	for _, v := range []LUVariant{VarA1, VarA2, VarB1, VarB2} {
		if v.String() == s {
			return v, nil
		}
	}
	return 0, fmt.Errorf("core: unknown LU-step variant %q", s)
}

// Precision selects where the factorization's flops run. Storage is always
// float64 — the mixed-precision kernels round operands to float32 internally
// and widen results back — so the factor layout, the serialization shape,
// and the replay path are identical at every setting.
type Precision int

const (
	// PrecisionF64 (the zero value) runs every kernel in float64.
	PrecisionF64 Precision = iota
	// PrecisionAuto makes precision a per-step decision: an LU step whose
	// criterion margin is at most Config.F32Margin — the decision quantity
	// sits that far below the α threshold — runs its Eliminate and Update
	// kernels in float32; panels (the free float64 trial factors) and QR
	// steps stay float64. Any f32 excursion demotes the task back to f64 by
	// re-running it, so a bad panel is never accepted.
	PrecisionAuto
	// PrecisionF32 forces every kernel — panels and QR steps included —
	// through the float32 path, with the same per-task excursion demotion.
	PrecisionF32
)

func (p Precision) String() string {
	switch p {
	case PrecisionF64:
		return "f64"
	case PrecisionAuto:
		return "auto"
	case PrecisionF32:
		return "f32"
	}
	return fmt.Sprintf("Precision(%d)", int(p))
}

// ParsePrecision converts a CLI/API name into a Precision. The empty string
// is the float64 default.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "", "f64", "fp64", "double":
		return PrecisionF64, nil
	case "auto", "mixed":
		return PrecisionAuto, nil
	case "f32", "fp32", "single":
		return PrecisionF32, nil
	}
	return 0, fmt.Errorf("core: unknown precision %q", s)
}

// DefaultF32Margin is the criterion-margin ceiling below which PrecisionAuto
// runs an LU step's flops in float32: the decision quantity must sit at
// least two orders of magnitude under the α threshold.
const DefaultF32Margin = 0.01

// Scope selects where the LU step searches for pivots (§II-A).
type Scope int

const (
	// ScopeDomain pivots across all panel tiles local to the diagonal
	// node — the variant used in the paper's experiments. No inter-node
	// communication is needed.
	ScopeDomain Scope = iota
	// ScopeTile pivots only inside the diagonal tile, as LU NoPiv does.
	ScopeTile
)

// Config configures a factorization run.
type Config struct {
	Alg Algorithm
	// NB is the tile order. N must be a multiple of NB.
	NB int
	// Grid is the virtual process grid for the 2-D block-cyclic
	// distribution; it determines domains and communication accounting.
	Grid tile.Grid
	// Criterion drives the LU/QR choice for Alg == LUQR.
	Criterion criteria.Criterion
	// Scope selects diagonal-domain (default) or diagonal-tile pivoting for
	// the LU steps of LUQR.
	Scope Scope
	// Variant selects the LU-step formulation for Alg == LUQR: (A1) by
	// default, or the §II-C variants (A2), (B1), (B2), which force
	// diagonal-tile scope.
	Variant LUVariant
	// IntraTree and InterTree configure the QR-step reduction
	// (defaults: GREEDY inside nodes, FIBONACCI between nodes — §IV).
	IntraTree, InterTree tree.Tree
	// IB is the inner block size of the blocked panel kernels (GEQRT,
	// TSQRT, TTQRT). Zero means "use the process default" (lapack.PanelIB),
	// resolved once per run — the kernels receive the value explicitly, so
	// concurrent runs with different tuned ib never race on the global knob.
	IB int
	// Workers is the size of the runtime worker pool (default: GOMAXPROCS).
	Workers int
	// Trace records the task graph for simulation / DOT output.
	Trace bool
	// Precision selects the kernel precision: f64 (default), auto (criterion
	// margin picks f32 per LU step), or f32 (every kernel forced through the
	// float32 path). Only LUQR variant (A1), LUNoPiv, LUPP, and HQR support
	// a non-f64 setting; withDefaults silently resets the knob to f64 for
	// the other algorithms and variants.
	Precision Precision
	// F32Margin is the criterion-margin ceiling for PrecisionAuto (default
	// DefaultF32Margin). Smaller is more conservative; 0 keeps auto mode
	// effectively at f64.
	F32Margin float64
	// TrackGrowth samples the trailing submatrix after every elimination
	// step and records the peak intermediate element growth in
	// Report.PeakGrowth — the quantity the §III growth bounds govern.
	// Costs an extra O(N²) read per step and a mild serialization.
	TrackGrowth bool
	// Seed seeds the Random criterion's generator.
	Seed int64
}

// EffectivePrecision resolves the precision a run with this config will
// actually use. The precision layer covers the task shapes of the A1 hybrid,
// the LU-step algorithms that share its kernels (LUNoPiv, LUPP), and HQR; the
// pairwise/tournament panels (LUIncPiv, CALU, HLU) and the §II-C variants
// keep their own f64 paths, so a non-f64 request on them falls back to f64.
// The service derives cache digests from this, so a request asking for f32 on
// an unsupported algorithm shares the pure-f64 factorization instead of
// splitting the cache.
func (c Config) EffectivePrecision() Precision {
	if c.Precision == PrecisionF64 {
		return PrecisionF64
	}
	switch {
	case c.Alg == CALU || c.Alg == HLU || c.Alg == LUIncPiv:
		return PrecisionF64
	case c.Alg == LUQR && c.Variant != VarA1:
		return PrecisionF64
	}
	return c.Precision
}

// NBAuto as Config.NB asks withDefaults to resolve the tile size through the
// registered autotuner (SetAutoTuner) instead of the static default. Without
// a tuner — or when the tuner declines — the largest production-size divisor
// of N is used, falling back to the historical default of 40.
const NBAuto = -1

// AutoTuner resolves tuned parameters for an n×n factorization: the tile
// order nb (which must divide n), the kernels' inner block size ib, and the
// worker-pool size. ok == false declines, leaving the defaults in force.
// internal/tune provides the implementation; the indirection keeps core free
// of the tuner's persistence machinery.
type AutoTuner func(n int, alg string) (nb, ib, workers int, ok bool)

var autoTuner atomic.Value // AutoTuner

// SetAutoTuner installs the process-wide autotuner consulted for runs with
// NB == NBAuto. Passing nil removes it.
func SetAutoTuner(f AutoTuner) { autoTuner.Store(f) }

// autoNB picks the static fallback tile size for NBAuto without a tuner:
// the largest production candidate dividing n, else the historical 40 (whose
// divisibility error path reports the mismatch).
func autoNB(n int) int {
	for _, nb := range []int{256, 192, 128, 64, 40, 32, 16, 8, 4, 2, 1} {
		if nb <= n && n%nb == 0 {
			return nb
		}
	}
	return 40
}

func (c *Config) withDefaults(n int) (Config, error) {
	cfg := *c
	if cfg.NB == NBAuto {
		if f, _ := autoTuner.Load().(AutoTuner); f != nil {
			if nb, ib, workers, ok := f(n, cfg.Alg.String()); ok && nb > 0 && n%nb == 0 {
				cfg.NB = nb
				if cfg.IB == 0 && ib > 0 {
					cfg.IB = ib
				}
				if cfg.Workers <= 0 && workers > 0 {
					cfg.Workers = workers
				}
			}
		}
		if cfg.NB == NBAuto {
			cfg.NB = autoNB(n)
		}
	}
	if cfg.NB <= 0 {
		cfg.NB = 40
	}
	if cfg.Grid.P == 0 && cfg.Grid.Q == 0 {
		cfg.Grid = tile.NewGrid(1, 1)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.IntraTree == 0 && cfg.InterTree == 0 {
		cfg.IntraTree, cfg.InterTree = tree.Greedy, tree.Fibonacci
	}
	if cfg.Alg == LUQR && cfg.Criterion == nil {
		cfg.Criterion = criteria.Max{Alpha: 100}
	}
	if cfg.F32Margin == 0 {
		cfg.F32Margin = DefaultF32Margin
	}
	cfg.Precision = cfg.EffectivePrecision()
	if n%cfg.NB != 0 {
		return cfg, fmt.Errorf("core: N=%d is not a multiple of NB=%d", n, cfg.NB)
	}
	return cfg, nil
}
