package core

import (
	"math/rand"
	"strings"
	"testing"

	"luqr/internal/criteria"
	"luqr/internal/flops"
	"luqr/internal/matgen"
	"luqr/internal/tile"
	"luqr/internal/tree"
)

// TestForcedF32ConversionsPerTileBounded is the step-resident stack's
// accounting regression: on an all-LU forced-float32 run every tile pays at
// most one rounding pass (its first touch — panel or SWPTRSM acquire) and
// one widening pass (the final flush), so total conversions are O(tiles),
// not O(tiles × trailing columns). Before the shared step stack, every
// SWPTRSM(k,j) re-rounded its column's stateF64 tiles into fresh scratch —
// uncounted work proportional to the whole trailing submatrix per step.
func TestForcedF32ConversionsPerTileBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	n, nb := 96, 16
	a := matgen.DiagDominant(n, rng)
	b := matgen.RandomVector(n, rng)
	res := runOn(t, a, b, Config{
		Alg: LUQR, NB: nb, Grid: tile.NewGrid(2, 2),
		Criterion: criteria.Always{}, Precision: PrecisionF32,
	})
	if res.Report.F32Steps != res.Report.NT {
		t.Fatalf("forced-f32 run took %d f32 steps of %d", res.Report.F32Steps, res.Report.NT)
	}
	if res.Report.Demotions != 0 {
		t.Fatalf("diagdom forced-f32 run demoted %d tasks", res.Report.Demotions)
	}
	nt := res.Report.NT
	tiles := nt*nt + nt // matrix tiles + RHS tiles
	if res.Report.F32Epochs == 0 || res.Report.F32Epochs > tiles {
		t.Fatalf("epochs = %d, want in (0, %d]", res.Report.F32Epochs, tiles)
	}
	// One rounding in + one widening out per tile, nothing per column.
	if res.Report.Conversions == 0 || res.Report.Conversions > 2*tiles {
		t.Fatalf("conversions = %d for %d tiles — stacking is re-converting per column", res.Report.Conversions, tiles)
	}
}

// TestKillUpdateRHSFlopsLabel pins the satellite fix in submitKill: the RHS
// update of a TT kill must be labelled with TTMQR flops (2·nb²·w), not the
// TSMQR count (4·nb²·w) — the mislabel skewed per-kernel GFLOP/s
// attribution in traces and the breakdown experiment.
func TestKillUpdateRHSFlopsLabel(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	n, nb := 96, 16
	a := matgen.Random(n, rng)
	b := matgen.RandomVector(n, rng)
	// All-QR hybrid on a 2-row grid with a flat-TS intra tree: TS kills
	// inside each domain, TT kills merging the domain roots — both kinds
	// must appear.
	res := runOn(t, a, b, Config{
		Alg: LUQR, NB: nb, Grid: tile.NewGrid(2, 2),
		IntraTree: tree.FlatTS, InterTree: tree.Fibonacci,
		Criterion: criteria.Never{}, Trace: true,
	})
	w := 1 // single right-hand side
	var ts, tt int
	for _, tr := range res.Report.Trace {
		if !strings.Contains(tr.Name, "rhs") {
			continue
		}
		switch tr.Kernel {
		case "TSMQR":
			ts++
			if tr.Flops != flops.Tsmqr(nb, w) {
				t.Fatalf("%s flops = %g, want Tsmqr = %g", tr.Name, tr.Flops, flops.Tsmqr(nb, w))
			}
		case "TTMQR":
			tt++
			if tr.Flops != flops.Ttmqr(nb, w) {
				t.Fatalf("%s flops = %g, want Ttmqr = %g", tr.Name, tr.Flops, flops.Ttmqr(nb, w))
			}
		}
	}
	if ts == 0 || tt == 0 {
		t.Fatalf("trace carried %d TSMQR-rhs and %d TTMQR-rhs kills; need both to pin the labels", ts, tt)
	}
}
