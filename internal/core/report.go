package core

import (
	"fmt"
	"strings"
	"time"

	"luqr/internal/flops"
	"luqr/internal/runtime"
)

// Report summarizes one factorization+solve run.
type Report struct {
	Alg Algorithm `json:"alg"`
	N   int       `json:"n"`
	NB  int       `json:"nb"`
	NT  int       `json:"nt"`
	// IB is the panel kernels' inner block size the run actually used
	// (resolved from Config.IB, or the process default when unset).
	IB    int `json:"ib"`
	GridP int `json:"grid_p"`
	GridQ int `json:"grid_q"`

	// Decisions[k] is true when step k was an LU step (for LUQR; for the
	// pure algorithms it reflects the algorithm's fixed nature).
	Decisions []bool `json:"decisions,omitempty"`
	LUSteps   int    `json:"lu_steps"`
	QRSteps   int    `json:"qr_steps"`

	// Breakdown reports an exactly zero pivot during an LU elimination (LU
	// NoPiv on the Fiedler matrix, §V-C).
	Breakdown bool `json:"breakdown,omitempty"`

	// Precision is the configured kernel-precision mode of the run.
	Precision Precision `json:"precision"`
	// StepF32[k] is true when step k's kernels ran (and were accepted) in
	// float32; F32Steps counts them. Individual tasks demoted to float64
	// after an excursion are counted in Demotions without clearing the
	// step's flag.
	StepF32   []bool `json:"step_f32,omitempty"`
	F32Steps  int    `json:"f32_steps,omitempty"`
	Demotions int    `json:"demotions,omitempty"`
	// F32Epochs counts tile promotions into float32 residency (each is one
	// tile's entry into a run of consecutive float32 steps); Conversions
	// counts the actual conversion passes executed (roundings at promotion
	// plus widenings at demotion), and ConvTime their total wall time. All
	// zero for f64-effective runs and for the per-task conversion path.
	F32Epochs   int           `json:"f32_epochs,omitempty"`
	Conversions int           `json:"conversions,omitempty"`
	ConvTime    time.Duration `json:"conv_time_ns,omitempty"`
	// Margins[k] is the criterion's decision margin at step k — the ratio of
	// the decision quantity to its α-scaled threshold (≤ 1 means LU; NaN when
	// no margin was computed, e.g. static schedules or the Random criterion).
	// MarginMin/MarginMax summarize the finite entries (NaN when none).
	Margins   []float64 `json:"-"`
	MarginMin float64   `json:"-"`
	MarginMax float64   `json:"-"`
	// RefineIters is the number of iterative-refinement rounds the solve
	// path performed on this run's solution (0 for pure-f64 runs).
	RefineIters int `json:"refine_iters,omitempty"`

	// WallTime is the measured multicore execution time of this process.
	WallTime time.Duration `json:"wall_ns"`

	// HPL3 is the backward-error metric of §V-A; Growth the max-entry
	// growth factor max|final| / max|A|.
	HPL3   float64 `json:"hpl3"`
	Growth float64 `json:"growth"`
	// PeakGrowth is max over steps k of max|A^(k)| / max|A|, sampled when
	// Config.TrackGrowth is set (0 otherwise) — the growth factor the §III
	// criteria bound.
	PeakGrowth float64 `json:"peak_growth,omitempty"`

	// Trace is the recorded task graph (nil unless Config.Trace).
	Trace []*runtime.TraceTask `json:"-"`

	// Sched aggregates the scheduler's dispatch counters for this run
	// (lane hits, local deque hits, steals, remote releases, parks);
	// always populated, tracing or not.
	Sched runtime.SchedCounters `json:"-"`
}

// FracLU returns the fraction of LU steps (the f_LU of Table II).
func (r *Report) FracLU() float64 {
	if len(r.Decisions) == 0 {
		return 0
	}
	return float64(r.LUSteps) / float64(len(r.Decisions))
}

// FakeGFlops returns the paper's "fake" GFLOP/s for a given execution time:
// 2/3·N³ operations regardless of the steps actually taken.
func (r *Report) FakeGFlops(seconds float64) float64 {
	return flops.GFlops(flops.LUTotal(r.N), seconds)
}

// TrueGFlops returns the paper's "true" GFLOP/s: the operation count
// adjusted for the measured fraction of LU steps.
func (r *Report) TrueGFlops(seconds float64) float64 {
	return flops.GFlops(flops.TrueTotal(r.N, r.FracLU()), seconds)
}

// String renders a compact single-run summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s N=%d nb=%d grid=%dx%d: %d LU / %d QR steps (%.1f%% LU), HPL3=%.3g, growth=%.3g, wall=%v",
		r.Alg, r.N, r.NB, r.GridP, r.GridQ, r.LUSteps, r.QRSteps, 100*r.FracLU(), r.HPL3, r.Growth, r.WallTime)
	if r.Precision != PrecisionF64 {
		fmt.Fprintf(&b, ", prec=%s (%d f32 steps, %d demotions, %d refine iters)",
			r.Precision, r.F32Steps, r.Demotions, r.RefineIters)
		if r.F32Epochs > 0 {
			fmt.Fprintf(&b, " [%d f32 epochs, %d conversions in %v]",
				r.F32Epochs, r.Conversions, r.ConvTime)
		}
	}
	if r.Breakdown {
		b.WriteString(" [BREAKDOWN: zero pivot]")
	}
	return b.String()
}
