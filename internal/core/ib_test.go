package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"luqr/internal/matgen"
)

// TestConcurrentRunsKeepTheirOwnIB pins the fix for the process-global
// panel-IB race: the inner block size now rides in Config and the fact, so
// two factorizations tuned to different ib can run concurrently without one
// adopting the other's knob. Each concurrent run must reproduce its own
// sequential reference bit for bit and report the ib it was given.
func TestConcurrentRunsKeepTheirOwnIB(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 96
	a := matgen.Random(n, rng)
	b := matgen.RandomVector(n, rng)

	ibs := []int{4, 8}
	ref := map[int][]float64{}
	for _, ib := range ibs {
		res := runOn(t, a, b, Config{Alg: HQR, NB: 24, IB: ib})
		if res.Report.IB != ib {
			t.Fatalf("report ib = %d, want %d", res.Report.IB, ib)
		}
		ref[ib] = res.X
	}
	// If the two block sizes produced identical bits, cross-talk would be
	// invisible below; the Householder accumulation order makes them differ.
	same := true
	for i := range ref[4] {
		if ref[4][i] != ref[8][i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("ib=4 and ib=8 solutions are bitwise identical; test cannot detect ib cross-talk")
	}

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for round := 0; round < 8; round++ {
		for _, ib := range ibs {
			wg.Add(1)
			go func(ib int) {
				defer wg.Done()
				res, err := Run(a, b, Config{Alg: HQR, NB: 24, IB: ib})
				if err != nil {
					errs <- err.Error()
					return
				}
				if res.Report.IB != ib {
					errs <- fmt.Sprintf("concurrent run reported ib=%d, want %d", res.Report.IB, ib)
					return
				}
				for i := range res.X {
					if res.X[i] != ref[ib][i] {
						errs <- fmt.Sprintf("ib=%d: x[%d] diverged from the sequential run", ib, i)
						return
					}
				}
			}(ib)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
