package core

import (
	"math"
	"math/rand"
	"testing"

	"luqr/internal/criteria"
	"luqr/internal/mat"
	"luqr/internal/matgen"
	"luqr/internal/tile"
)

var allVariants = []LUVariant{VarA2, VarB1, VarB2}

// TestVariantsSolveAccurately: every §II-C variant must produce accurate
// solutions across criteria outcomes (all-LU, all-QR, mixed).
func TestVariantsSolveAccurately(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	n := 96
	a := matgen.Random(n, rng)
	xTrue := matgen.RandomVector(n, rng)
	b := mat.MulVec(a, xTrue)
	for _, v := range allVariants {
		for _, crit := range []criteria.Criterion{criteria.Always{}, criteria.Never{}, criteria.Max{Alpha: 200}} {
			res := runOn(t, a, b, Config{
				Alg: LUQR, Variant: v, NB: 16, Grid: tile.NewGrid(2, 2), Criterion: crit,
			})
			if res.Report.HPL3 > 50 || math.IsNaN(res.Report.HPL3) {
				t.Errorf("variant %v criterion %s: HPL3 = %g", v, crit.Name(), res.Report.HPL3)
				continue
			}
			for i := range xTrue {
				if math.Abs(res.X[i]-xTrue[i]) > 1e-6*(1+math.Abs(xTrue[i])) {
					t.Errorf("variant %v criterion %s: x[%d] = %g, want %g", v, crit.Name(), i, res.X[i], xTrue[i])
					break
				}
			}
		}
	}
}

// TestVariantsMixedSteps exercises a matrix that forces both branches: an
// anti-diagonal-ish block that defeats the tile-local trial on step 0.
func TestVariantsMixedSteps(t *testing.T) {
	nb := 8
	n := 4 * nb
	a := mat.New(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, n-1-i, 1) // nonsingular, singular leading tile
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i + 1)
	}
	for _, v := range allVariants {
		res := runOn(t, a, b, Config{
			Alg: LUQR, Variant: v, NB: nb, Grid: tile.NewGrid(4, 1),
			Criterion: criteria.Max{Alpha: 100},
		})
		if res.Report.QRSteps == 0 {
			t.Errorf("variant %v: singular leading tile did not force a QR step", v)
		}
		if res.Report.HPL3 > 10 {
			t.Errorf("variant %v: HPL3 = %g on mixed run", v, res.Report.HPL3)
		}
	}
}

// TestVariantB1BlockTriangularResult: after an all-LU (B1) run, the final
// matrix is block upper triangular (dense diagonal tiles with their LU
// factors, untouched row blocks) and the block back-substitution still
// reproduces the solution; meanwhile an (A1) run leaves a scalar upper
// triangular factor.
func TestVariantB1BlockTriangularResult(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 64
	a := matgen.DiagDominant(n, rng)
	xTrue := matgen.RandomVector(n, rng)
	b := mat.MulVec(a, xTrue)
	res := runOn(t, a, b, Config{Alg: LUQR, Variant: VarB1, NB: 16, Criterion: criteria.Always{}})
	if res.Report.LUSteps != 4 {
		t.Fatalf("expected 4 LU steps, got %d", res.Report.LUSteps)
	}
	for i := range xTrue {
		if math.Abs(res.X[i]-xTrue[i]) > 1e-8*(1+math.Abs(xTrue[i])) {
			t.Fatalf("B1 solve error at %d: %g vs %g", i, res.X[i], xTrue[i])
		}
	}
	// Row block 0's trailing tiles must equal the ORIGINAL A (no Apply).
	ta := tile.FromDense(a, 16)
	for j := 1; j < 4; j++ {
		if !mat.Equal(res.Factored.Tile(0, j), ta.Tile(0, j)) {
			t.Fatalf("B1 modified row block 0, column %d", j)
		}
	}
}

// TestVariantA2ReusesTrialOnQRPath: with the Never criterion, (A2) must
// take all QR steps and still be bitwise identical to plain HQR — the trial
// GEQRT is exactly the elimination's first kernel.
func TestVariantA2ReusesTrialOnQRPath(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	n := 96
	a := matgen.Random(n, rng)
	b := matgen.RandomVector(n, rng)
	hqr := runOn(t, a, b, Config{Alg: HQR, NB: 16, Grid: tile.NewGrid(2, 2)})
	for _, v := range []LUVariant{VarA2, VarB2} {
		res := runOn(t, a, b, Config{Alg: LUQR, Variant: v, NB: 16, Grid: tile.NewGrid(2, 2), Criterion: criteria.Never{}})
		if res.Report.LUSteps != 0 {
			t.Fatalf("variant %v: Never criterion took LU steps", v)
		}
		for i := range hqr.X {
			if res.X[i] != hqr.X[i] {
				t.Fatalf("variant %v: x[%d] differs from HQR (%g vs %g)", v, i, res.X[i], hqr.X[i])
			}
		}
	}
}

// TestVariantA2NoRestoreTasks: the (A2) trace must contain no Backup or
// Restore tasks (the stated benefit over (A1)), while (B1) keeps them.
func TestVariantA2NoRestoreTasks(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	n := 64
	a := matgen.Random(n, rng)
	b := matgen.RandomVector(n, rng)
	count := func(v LUVariant) (backup, restore int) {
		res := runOn(t, a, b, Config{
			Alg: LUQR, Variant: v, NB: 16, Grid: tile.NewGrid(2, 2),
			Criterion: criteria.Never{}, Trace: true,
		})
		for _, task := range res.Report.Trace {
			switch task.Kernel {
			case "BACKUP":
				backup++
			case "RESTORE":
				restore++
			}
		}
		return
	}
	if bk, rs := count(VarA2); bk != 0 || rs != 0 {
		t.Fatalf("A2 trace has %d backup / %d restore tasks", bk, rs)
	}
	if bk, rs := count(VarB1); bk == 0 || rs == 0 {
		t.Fatalf("B1 trace missing backup/restore tasks (%d/%d)", bk, rs)
	}
}

// TestVariantsDeterministic: worker-count independence holds for the
// variants too.
func TestVariantsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	n := 64
	a := matgen.Random(n, rng)
	b := matgen.RandomVector(n, rng)
	for _, v := range allVariants {
		var ref []float64
		for _, w := range []int{1, 4} {
			res := runOn(t, a, b, Config{
				Alg: LUQR, Variant: v, NB: 16, Grid: tile.NewGrid(2, 2),
				Criterion: criteria.Max{Alpha: 100}, Workers: w,
			})
			if ref == nil {
				ref = res.X
				continue
			}
			for i := range ref {
				if res.X[i] != ref[i] {
					t.Fatalf("variant %v: workers=%d changed the result", v, w)
				}
			}
		}
	}
}

// TestVariantStabilityOnPathological: the B variants' criterion must still
// steer pathological panels to QR.
func TestVariantStabilityOnPathological(t *testing.T) {
	n := 128
	a := matgen.Foster(n)
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	for _, v := range allVariants {
		res := runOn(t, a, b, Config{Alg: LUQR, Variant: v, NB: 16, Grid: tile.NewGrid(4, 1), Criterion: criteria.Max{Alpha: 1}})
		if res.Report.HPL3 > 10 {
			t.Errorf("variant %v: HPL3 = %g on foster", v, res.Report.HPL3)
		}
		if res.Report.Growth > 1e4 {
			t.Errorf("variant %v: growth %g not contained", v, res.Report.Growth)
		}
	}
}

func TestParseVariant(t *testing.T) {
	for _, v := range []LUVariant{VarA1, VarA2, VarB1, VarB2} {
		got, err := ParseVariant(v.String())
		if err != nil || got != v {
			t.Fatalf("ParseVariant(%q) = %v, %v", v.String(), got, err)
		}
	}
	if _, err := ParseVariant("zz"); err == nil {
		t.Fatal("expected error")
	}
}
