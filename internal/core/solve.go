package core

import (
	"luqr/internal/blas"
	"luqr/internal/mat"
	"luqr/internal/tile"
)

// backSubstitute solves the (block) upper triangular system left by the
// factorization: for each block row k (last to first),
//
//	x_k = A_kk⁻¹ · (b_k − Σ_{j>k} A_kj·x_j)
//
// where A_kk⁻¹ is the plain upper-triangular solve for the (A) variants and
// the pure algorithms (their diagonal tiles hold R/U), or the stored
// diagonal factorization for block-LU steps (variants (B1)/(B2), §II-C.2,
// whose U factor is only block upper triangular). solvers[k] == nil selects
// the default. The O(N²) solve is serial; its cost is negligible next to
// the O(N³) factorization the paper measures (§II-D.1).
func backSubstitute(a *tile.Matrix, rhs *tile.Vector, solvers []func(b *mat.Matrix)) []float64 {
	backSubstituteBlock(a, rhs, solvers)
	return rhs.ToSlice()
}

// backSubstituteBlock is the width-generic body of backSubstitute: rhs may
// carry any number of columns (SolveBatch packs a whole batch of right-hand
// sides), and every kernel below — GEMM, TRSM, and the stored block-LU
// diagonal solvers — operates on the full NB×W tile, so one pass solves all
// columns.
func backSubstituteBlock(a *tile.Matrix, rhs *tile.Vector, solvers []func(b *mat.Matrix)) {
	nt := a.NT
	for k := nt - 1; k >= 0; k-- {
		bk := rhs.Tile(k)
		for j := k + 1; j < nt; j++ {
			blas.Gemm(blas.NoTrans, blas.NoTrans, -1, a.Tile(k, j), rhs.Tile(j), 1, bk)
		}
		if solvers != nil && solvers[k] != nil {
			solvers[k](bk)
			continue
		}
		blas.Trsm(blas.Left, blas.Upper, blas.NoTrans, blas.NonUnit, 1, a.Tile(k, k), bk)
	}
}
