package core

import (
	"fmt"

	"luqr/internal/flops"
	"luqr/internal/lapack"
	"luqr/internal/mat"
	"luqr/internal/runtime"
)

// CALU (§VI-D) is communication-avoiding LU with tournament pivoting
// (Grigori, Demmel, Xiang 2011). The paper could not compare against it —
// "there is no publicly available implementation of parallel distributed
// CALU" — so this implementation closes that gap as an extension.
//
// Panel k proceeds in three phases:
//
//  1. Tournament: each panel tile enters a binary reduction; every match
//     stacks the two candidate blocks, runs LU with partial pivoting, and
//     promotes the nb rows chosen as pivots (their original values). The
//     final winners are nb "good pivot rows" found with O(log #tiles)
//     messages — the communication-avoiding property.
//  2. Pivoting: one block of row interchanges brings the winners to the top
//     of the panel, applied across the trailing columns and the RHS.
//  3. Elimination: the panel is factored without further pivoting and the
//     trailing matrix updated with the same TRSM/GEMM tasks as an LU step.
//
// Like the hybrid's LU steps, the update is embarrassingly parallel; unlike
// them, every step is an LU step and stability rests on tournament pivoting
// being "stable in practice" [14].

// caluCandidate is a tournament entrant: an nb×nb block of candidate pivot
// rows with, for each, its stacked index within the panel (tile order × nb
// + local row).
type caluCandidate struct {
	vals *mat.Matrix // candidate block, nb×nb (original row values)
	refs []int       // stacked panel row index of each candidate row
}

// scheduleCALU builds the CALU task graph. Steps unfold dynamically, like
// the hybrid's: the tournament of step k+1 must be submitted after step k's
// update tasks exist, because its leaves read the updated panel tiles.
func (f *fact) scheduleCALU() {
	f.scheduleCALUStep(0)
}

func (f *fact) scheduleCALUStep(k int) {
	st := &stepState{k: k, rows: f.panelRows(k)}
	f.steps[k] = st
	f.report.Decisions[k] = true
	nb := f.nb

	// Phase 1: tournament. Leaves are the panel tiles; the bracket is a
	// binary tree over tile order (adjacent pairing), matching the binary
	// TSLU reduction of [14].
	type entrant struct {
		cand *caluCandidate
		h    *runtime.Handle
		node int
	}
	var round []entrant
	for idx, i := range st.rows {
		i, idx := i, idx
		c := &caluCandidate{}
		h := f.e.NewHandle(fmt.Sprintf("cand(%d,%d)", i, k), nb*nb*8, f.owner(i, k))
		f.e.Submit(runtime.TaskSpec{
			Name:     fmt.Sprintf("TournLeaf(%d,%d)", i, k),
			Kernel:   "TOURN",
			Node:     f.owner(i, k),
			Flops:    flops.Getrf(nb, nb),
			Priority: prioPanel(k),
			Accesses: []runtime.Access{runtime.R(f.h[i][k]), runtime.W(h)},
			Run: func() {
				// The leaf's candidates are its rows in the pivot order of a
				// local GEPP — a leaf that wins unopposed (single-tile
				// panels, odd brackets) must already provide good pivots.
				tile := f.A.Tile(i, k)
				s := tile.Clone()
				piv, _ := lapack.Getrf(s)
				pos := make([]int, nb)
				for r := range pos {
					pos[r] = r
				}
				for r, p := range piv {
					pos[r], pos[p] = pos[p], pos[r]
				}
				c.vals = mat.New(nb, nb)
				c.refs = make([]int, nb)
				for r := 0; r < nb; r++ {
					copy(c.vals.Row(r), tile.Row(pos[r]))
					c.refs[r] = idx*nb + pos[r]
				}
			},
		})
		round = append(round, entrant{cand: c, h: h, node: f.owner(i, k)})
	}
	for len(round) > 1 {
		var next []entrant
		for p := 0; p < len(round); p += 2 {
			if p+1 == len(round) {
				next = append(next, round[p])
				continue
			}
			a, b := round[p], round[p+1]
			winner := &caluCandidate{}
			h := f.e.NewHandle(fmt.Sprintf("cand-merge(%d)", k), nb*nb*8, a.node)
			f.e.Submit(runtime.TaskSpec{
				Name:     fmt.Sprintf("TournMatch(%d)", k),
				Kernel:   "TOURN",
				Node:     a.node,
				Flops:    flops.Getrf(2*nb, nb),
				Priority: prioPanel(k),
				Accesses: []runtime.Access{runtime.R(a.h), runtime.R(b.h), runtime.W(h)},
				Run:      func() { *winner = caluMatch(a.cand, b.cand) },
			})
			next = append(next, entrant{cand: winner, h: h, node: a.node})
		}
		round = next
	}
	final := round[0]

	// Phase 2+3 are scheduled once the tournament result is known: the
	// swap list depends on the winners, so the step unfolds dynamically
	// (the same mechanism as the hybrid's decision task).
	f.e.Submit(runtime.TaskSpec{
		Name:     fmt.Sprintf("TournFinal(%d)", k),
		Kernel:   "TOURN",
		Node:     f.owner(k, k),
		Priority: prioPanel(k),
		Accesses: []runtime.Access{runtime.R(final.h), runtime.W(st.hNorms0(f))},
		Run: func() {
			st.piv = caluSwapList(final.cand.refs, len(st.rows)*nb)
		},
		Then: func(*runtime.Engine) {
			f.submitCALUSwapsAndFactor(st)
			f.submitLUStep(st)
			f.submitGrowthProbe(k)
			if k+1 < f.nt {
				f.scheduleCALUStep(k + 1)
			}
		},
	})
}

// hNorms0 lazily allocates a control handle that orders the tournament
// final before the swap/factor tasks of the step.
func (st *stepState) hNorms0(f *fact) *runtime.Handle {
	if st.hStack == nil {
		st.hStack = f.e.NewHandle(fmt.Sprintf("panelLU(%d)", st.k), len(st.rows)*f.nb*f.nb*8, f.owner(st.k, st.k))
	}
	return st.hStack
}

// caluMatch plays one tournament match: stack the two candidate blocks,
// factor with partial pivoting, and return the nb winning rows with their
// original values and references.
func caluMatch(a, b *caluCandidate) caluCandidate {
	nb := a.vals.Cols
	s := mat.New(2*nb, nb)
	s.View(0, 0, nb, nb).CopyFrom(a.vals)
	s.View(nb, 0, nb, nb).CopyFrom(b.vals)
	piv, _ := lapack.Getrf(s) // a singular stack still yields an ordering
	// Track which original stacked positions the pivoting moved on top.
	pos := make([]int, 2*nb)
	for i := range pos {
		pos[i] = i
	}
	for r, p := range piv {
		pos[r], pos[p] = pos[p], pos[r]
	}
	w := caluCandidate{vals: mat.New(nb, nb), refs: make([]int, nb)}
	for r := 0; r < nb; r++ {
		src := pos[r]
		if src < nb {
			copy(w.vals.Row(r), a.vals.Row(src))
			w.refs[r] = a.refs[src]
		} else {
			copy(w.vals.Row(r), b.vals.Row(src-nb))
			w.refs[r] = b.refs[src-nb]
		}
	}
	return w
}

// caluSwapList converts the winners' stacked row indices into a LASWP-style
// transposition list that brings them to positions 0..nb−1 of the stacked
// panel.
func caluSwapList(winners []int, stackedRows int) []int {
	pos := make([]int, stackedRows) // current position of each original row
	at := make([]int, stackedRows)  // original row at each position
	for i := range pos {
		pos[i] = i
		at[i] = i
	}
	swaps := make([]int, len(winners))
	for r, w := range winners {
		p := pos[w]
		swaps[r] = p
		if p != r {
			or := at[r]
			pos[or], pos[w] = p, r
			at[r], at[p] = w, or
		}
	}
	return swaps
}

// submitCALUSwapsAndFactor applies the tournament's row interchanges to the
// panel and RHS and factors the pivoted panel without further pivoting.
// After this, submitLUStep's SWPTRSM tasks apply the same swaps to each
// trailing column before the triangular solve.
func (f *fact) submitCALUSwapsAndFactor(st *stepState) {
	k := st.k
	nb := f.nb
	acc := []runtime.Access{runtime.W(st.hNorms0(f))}
	acc = append(acc, f.accRows(st.rows, k)...)
	f.e.Submit(runtime.TaskSpec{
		Name:     fmt.Sprintf("CALUPanel(%d)", k),
		Kernel:   "GETRF",
		Node:     f.owner(k, k),
		Flops:    flops.Getrf(len(st.rows)*nb, nb),
		Priority: prioPanel(k),
		Accesses: acc,
		Run: func() {
			st.stack = f.A.StackRows(st.rows, k)
			lapack.Laswp(st.stack, st.piv, false)
			st.luErr = lapack.GetrfNoPiv(st.stack)
			f.noteBreakdown(st.luErr)
			// The panel tiles now hold the factored, pivoted panel; the
			// trailing columns receive the same swaps in their SWPTRSM
			// tasks, so the whole factorization is consistently
			// row-permuted, exactly as in LUPP.
			f.A.UnstackRows(st.stack, st.rows, k)
		},
	})
}
