package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"luqr/internal/criteria"
	"luqr/internal/matgen"
	"luqr/internal/tile"
)

// Property tests over randomly drawn solver configurations, per the
// testing/quick idiom: every configuration in the space must produce a
// finite, backward-stable solve on well-conditioned inputs, and the stored
// transformations must behave linearly.

// randomConfig draws an arbitrary-but-valid solver configuration.
func randomConfig(rng *rand.Rand) Config {
	algs := []Algorithm{LUQR, LUNoPiv, LUIncPiv, LUPP, HQR, CALU, HLU}
	cfg := Config{
		Alg:  algs[rng.Intn(len(algs))],
		NB:   []int{8, 12, 16}[rng.Intn(3)],
		Grid: tile.NewGrid(1+rng.Intn(3), 1+rng.Intn(3)),
		Seed: rng.Int63(),
	}
	if cfg.Alg == LUQR {
		switch rng.Intn(5) {
		case 0:
			cfg.Criterion = criteria.Max{Alpha: math.Pow(10, float64(rng.Intn(5)))}
		case 1:
			cfg.Criterion = criteria.Sum{Alpha: math.Pow(10, float64(rng.Intn(6)))}
		case 2:
			cfg.Criterion = criteria.MUMPS{Alpha: 0.5 + rng.Float64()*4}
		case 3:
			cfg.Criterion = criteria.Random{Alpha: float64(rng.Intn(101))}
		case 4:
			cfg.Criterion = criteria.Always{}
		}
		cfg.Variant = []LUVariant{VarA1, VarA2, VarB1, VarB2}[rng.Intn(4)]
		if rng.Intn(2) == 0 {
			cfg.Scope = ScopeTile
		}
	}
	return cfg
}

// TestPropertyRandomConfigsSolve: any drawn configuration solves a
// well-conditioned random system with a sane backward error.
func TestPropertyRandomConfigsSolve(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := randomConfig(rng)
		nt := 1 + rng.Intn(5)
		n := nt * cfg.NB
		a := matgen.Random(n, rng)
		b := matgen.RandomVector(n, rng)
		res, err := Run(a, b, cfg)
		if err != nil {
			t.Logf("seed %d cfg %+v: %v", seed, cfg, err)
			return false
		}
		if math.IsNaN(res.Report.HPL3) || res.Report.HPL3 > 1e3 {
			t.Logf("seed %d cfg alg=%v variant=%v: HPL3 = %g", seed, cfg.Alg, cfg.Variant, res.Report.HPL3)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertySolveLinearity: the replayed solve is a linear operator (up
// to rounding): Solve(b1 + b2) ≈ Solve(b1) + Solve(b2) and
// Solve(c·b) ≈ c·Solve(b).
func TestPropertySolveLinearity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := randomConfig(rng)
		nt := 2 + rng.Intn(3)
		n := nt * cfg.NB
		a := matgen.DiagDominant(n, rng) // keep the solve well conditioned
		b1 := matgen.RandomVector(n, rng)
		b2 := matgen.RandomVector(n, rng)
		res, err := Run(a, b1, cfg)
		if err != nil {
			return false
		}
		x1, err1 := res.Solve(b1)
		x2, err2 := res.Solve(b2)
		sum := make([]float64, n)
		for i := range sum {
			sum[i] = b1[i] + b2[i]
		}
		x12, err3 := res.Solve(sum)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		for i := range x12 {
			if math.Abs(x12[i]-(x1[i]+x2[i])) > 1e-8*(1+math.Abs(x12[i])) {
				t.Logf("seed %d alg %v: additivity violated at %d", seed, cfg.Alg, i)
				return false
			}
		}
		const c = 3.0
		scaled := make([]float64, n)
		for i := range scaled {
			scaled[i] = c * b1[i]
		}
		xc, err4 := res.Solve(scaled)
		if err4 != nil {
			return false
		}
		for i := range xc {
			if math.Abs(xc[i]-c*x1[i]) > 1e-8*(1+math.Abs(xc[i])) {
				t.Logf("seed %d alg %v: homogeneity violated at %d", seed, cfg.Alg, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyFactorizationResidual: for every configuration, the factored
// system reproduces A's action: solving with b = A·e_j recovers e_j (a
// columnwise inverse check on a well-conditioned matrix).
func TestPropertyFactorizationResidual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := randomConfig(rng)
		n := (1 + rng.Intn(3)) * cfg.NB
		a := matgen.DiagDominant(n, rng)
		b := matgen.RandomVector(n, rng)
		res, err := Run(a, b, cfg)
		if err != nil {
			return false
		}
		j := rng.Intn(n)
		ej := make([]float64, n)
		for i := 0; i < n; i++ {
			ej[i] = a.At(i, j)
		}
		x, err := res.Solve(ej)
		if err != nil {
			return false
		}
		for i := range x {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(x[i]-want) > 1e-8 {
				t.Logf("seed %d alg %v: A⁻¹(A·e_%d)[%d] = %g", seed, cfg.Alg, j, i, x[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDecisionsConsistent: the report's step counts always add up
// and breakdown implies an LU-type algorithm took a bad pivot.
func TestPropertyDecisionsConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := randomConfig(rng)
		n := (1 + rng.Intn(4)) * cfg.NB
		a := matgen.Random(n, rng)
		b := matgen.RandomVector(n, rng)
		res, err := Run(a, b, cfg)
		if err != nil {
			return false
		}
		r := res.Report
		if r.LUSteps+r.QRSteps != len(r.Decisions) || len(r.Decisions) != n/cfg.NB {
			return false
		}
		if r.Alg == HQR && r.LUSteps != 0 {
			return false
		}
		if (r.Alg == LUNoPiv || r.Alg == LUPP || r.Alg == CALU || r.Alg == HLU || r.Alg == LUIncPiv) && r.QRSteps != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyGrowthAtLeastOne: the growth factor of any elimination is ≥
// ~1 on matrices whose maximum entry does not shrink (the final U contains
// at least one entry of original magnitude after pivoting).
func TestPropertyGrowthAtLeastOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := randomConfig(rng)
		cfg.TrackGrowth = true
		n := (1 + rng.Intn(3)) * cfg.NB
		a := matgen.Random(n, rng)
		b := matgen.RandomVector(n, rng)
		res, err := Run(a, b, cfg)
		if err != nil {
			return false
		}
		return res.Report.PeakGrowth > 0.5 && res.Report.PeakGrowth >= res.Report.Growth*0.999 &&
			!math.IsNaN(res.Report.Growth)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
