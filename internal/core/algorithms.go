package core

import (
	"fmt"

	"luqr/internal/dist"
	"luqr/internal/mat"
	"luqr/internal/runtime"
)

// scheduleHybridStep builds step k of the hybrid LU-QR algorithm
// (Algorithm 1 / Figure 1): norm collection, panel backup, trial LU on the
// diagonal domain, the criterion decision, and — from the decision task's
// unfolding hook — either the LU step (keeping the trial factorization) or
// the restore + QR step; finally it schedules step k+1.
func (f *fact) scheduleHybridStep(k int) {
	st := &stepState{k: k, rows: f.pivotRows(k, f.cfg.Scope)}
	st.f32 = f.cfg.Precision == PrecisionF32
	f.steps[k] = st

	f.submitNormTasks(st)
	f.submitBackup(st)
	f.submitPanelFactor(st, true)

	// Decide: every node evaluates the same criterion on the all-reduced
	// data; here the task reads the small norm handles (the trace charges
	// their movement) and unfolds the chosen subgraph.
	acc := []runtime.Access{runtime.R(st.hStack), runtime.R(st.hBackup)}
	for _, h := range st.hNorms {
		acc = append(acc, runtime.R(h))
	}
	f.e.Submit(runtime.TaskSpec{
		Name:      fmt.Sprintf("Decide(%d)", k),
		Kernel:    "DECIDE",
		Node:      f.owner(k, k),
		Flops:     float64(10 * f.nb * f.nb), // norm estimate + reductions, O(nb²)
		Priority:  prioPanel(k),
		ExtraComm: f.allReduceComm(k),
		Accesses:  acc,
		Run: func() {
			in := f.criterionInput(st)
			st.decision = f.cfg.Criterion.Decide(in)
			f.report.Decisions[k] = st.decision
			f.report.Margins[k] = in.Margin
			// PrecisionAuto: a comfortable LU margin — the decision quantity
			// at least 1/F32Margin below the α threshold — licenses float32
			// for this step's eliminations and updates. The trial panel
			// already ran (at f64, for free), and any f32 excursion later
			// demotes, so the gamble costs nothing on the downside.
			// NaN margins (Random criterion) fail the comparison and stay f64.
			if f.cfg.Precision == PrecisionAuto && st.decision && in.Margin <= f.cfg.F32Margin {
				st.f32 = true
				if f.res != nil {
					// Resident SWPTRSM applies solve against a float32 image
					// of the factored panel's top block; build it once here
					// (the trial panel ran at f64, so st.stack is the
					// authoritative copy) instead of once per apply.
					st.l11_32 = mat.NewMatrix32(f.nb, f.nb)
					st.l11_32.RoundFrom(st.stack.View(0, 0, f.nb, f.nb))
				}
			}
			if st.decision {
				f.noteBreakdown(st.luErr)
			}
		},
		Then: func(*runtime.Engine) {
			if st.decision {
				st.releaseBackup() // LU keeps the trial factors; drop the snapshot
				f.submitLUStep(st)
			} else {
				f.submitRestore(st)
				f.submitQRStep(st)
			}
			f.submitGrowthProbe(k)
			if k+1 < f.nt {
				f.scheduleHybridStep(k + 1)
			}
		},
	})
}

// allReduceComm models the Bruck all-reduce of the criterion data among the
// nodes hosting panel-k tiles (§III): ⌈log₂ p⌉ serial rounds, each carrying
// the tile norms and column maxima.
func (f *fact) allReduceComm(k int) []runtime.Message {
	nodes := dist.PanelNodes(f.cfg.Grid, k, f.nt)
	rounds := dist.AllReduceRounds(len(nodes))
	if rounds == 0 {
		return nil
	}
	msgs := make([]runtime.Message, rounds)
	for i := range msgs {
		msgs[i] = runtime.Message{From: -1, To: f.owner(k, k), Bytes: 8 * (f.nb + 1)}
	}
	return msgs
}

// scheduleLU builds the static task graph of the pure LU algorithms: LU
// NoPiv (pivot search inside the diagonal tile) and LUPP (pivot search over
// the whole panel). Both take an LU step at every panel, so the entire
// graph is known upfront — no backup, criterion, or propagate tasks.
func (f *fact) scheduleLU(scope Scope, wholePanel bool) {
	for k := 0; k < f.nt; k++ {
		st := &stepState{k: k}
		st.f32 = f.cfg.Precision == PrecisionF32
		if wholePanel {
			st.rows = f.panelRows(k)
		} else {
			st.rows = f.pivotRows(k, scope)
		}
		f.steps[k] = st
		f.report.Decisions[k] = true
		f.submitPanelFactorStatic(st)
		f.submitLUStep(st)
		f.submitGrowthProbe(k)
	}
}

// submitPanelFactorStatic is submitPanelFactor without criterion data, and
// with breakdown reporting in the factor task itself (there is no decision
// task to defer it to).
func (f *fact) submitPanelFactorStatic(st *stepState) {
	f.submitPanelFactor(st, false)
	// Wrap breakdown reporting: the panel task stores luErr; a tiny control
	// task reads the stack handle and records it.
	k := st.k
	f.e.Submit(runtime.TaskSpec{
		Name:     fmt.Sprintf("CheckPanel(%d)", k),
		Kernel:   "DECIDE",
		Node:     f.owner(k, k),
		Priority: prioPanel(k),
		Accesses: []runtime.Access{runtime.R(st.hStack)},
		Run:      func() { f.noteBreakdown(st.luErr) },
	})
}

// scheduleHQR builds the static task graph of the hierarchical tiled QR
// factorization [8]: a QR step at every panel, with no decision path — the
// baseline whose gap to LUQR(α=0) measures the decision-path overhead
// (§V-B).
func (f *fact) scheduleHQR() {
	for k := 0; k < f.nt; k++ {
		st := &stepState{k: k}
		st.f32 = f.cfg.Precision == PrecisionF32
		f.steps[k] = st
		f.report.Decisions[k] = false
		f.submitQRStep(st)
		f.submitGrowthProbe(k)
	}
}
