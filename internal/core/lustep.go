package core

import (
	"fmt"

	"luqr/internal/blas"
	"luqr/internal/flops"
	"luqr/internal/lapack"
	"luqr/internal/mat"
	"luqr/internal/runtime"
	"luqr/internal/tile"
)

// submitLUStep emits the elimination and update tasks of an LU step at
// panel k (Algorithm 2, variant (A1)), assuming the panel factorization of
// the pivot rows (st.stack, st.piv) has been kept:
//
//   - SWPTRSM per trailing column (and RHS): apply the recorded row swaps to
//     the stacked pivot-row column, then the unit-lower solve to its top
//     tile — the "Apply" of Algorithm 2.
//   - TRSM per off-pivot panel tile: A_ik ← A_ik·U⁻¹ — the "Eliminate".
//   - GEMM per trailing tile: A_ij ← A_ij − A_ik·A_kj — the "Update". For
//     rows inside the pivot set, A_ik holds the panel's L block, making the
//     GEMM the in-domain Schur update; for rows outside, A_ik is the TRSM
//     result. Either way the update is embarrassingly parallel.
func (f *fact) submitLUStep(st *stepState) {
	k := st.k
	nb := f.nb
	cols := f.trailingCols(k)

	// Apply: SWPTRSM on every trailing column restricted to the pivot rows.
	for _, j := range cols {
		j := j
		acc := []runtime.Access{runtime.R(st.hStack)}
		acc = append(acc, f.accRows(st.rows, j)...)
		f.e.Submit(runtime.TaskSpec{
			Name:     fmt.Sprintf("SWPTRSM(%d,%d)", k, j),
			Kernel:   "SWPTRSM",
			Node:     f.owner(k, j),
			Flops:    flops.Trsm(nb, nb),
			Priority: prioElim(k),
			Accesses: acc,
			RunTraced: func(tr *runtime.TraceTask) {
				m := &tile.Meter{}
				defer func() { tr.ChargeConv(m.NS) }()
				if f.res != nil && st.f32 {
					// Resident apply: acquire the column's step stack (one
					// rounding pass per stateF64 tile), swap and solve in
					// place, then commit — the stack views become the tiles'
					// dirty images, with no scatter-back copy and no pooled
					// scratch to leak on panic. The tiles are untouched until
					// commit, so a demotion just abandons the stack and falls
					// through to the float64 apply below.
					s32 := f.res.AcquireRowStack32(st.rows, j, m)
					lapack.Laswp32R(s32, st.piv, false)
					blas.Trsm32R(blas.Left, blas.Lower, blas.NoTrans, blas.Unit, 1, st.l11_32, s32.View(0, 0, nb, nb))
					if !f.excursion32(s32) {
						f.res.CommitRowStack32(s32, st.rows, j)
						return
					}
					f.noteDemotion()
				}
				f.ensure64(m, colRefs(st.rows, j)...)
				// Pooled stacking scratch: StackRowsInto overwrites every
				// element, and the buffer never outlives the task.
				s, sbuf := mat.GetMatrix(len(st.rows)*nb, nb)
				defer mat.PutBuf(sbuf)
				l11 := st.stack.View(0, 0, nb, nb)
				apply := func(f32 bool) {
					f.A.StackRowsInto(s, st.rows, j)
					lapack.Laswp(s, st.piv, false)
					if f32 {
						blas.Trsm32(blas.Left, blas.Lower, blas.NoTrans, blas.Unit, 1, l11, s.View(0, 0, nb, nb))
					} else {
						blas.Trsm(blas.Left, blas.Lower, blas.NoTrans, blas.Unit, 1, l11, s.View(0, 0, nb, nb))
					}
				}
				f32 := st.f32 && f.res == nil
				apply(f32)
				if f32 && f.excursion(s) {
					// Demotion needs no snapshot: the column tiles are
					// untouched until UnstackRows, so re-stacking restarts
					// the apply from clean data.
					f.noteDemotion()
					apply(false)
				}
				f.A.UnstackRows(s, st.rows, j)
			},
		})
	}
	// Apply to the RHS.
	{
		acc := []runtime.Access{runtime.R(st.hStack)}
		acc = append(acc, f.accRHSRows(st.rows)...)
		f.e.Submit(runtime.TaskSpec{
			Name:     fmt.Sprintf("SWPTRSM(%d,rhs)", k),
			Kernel:   "SWPTRSM",
			Node:     f.owner(k, k),
			Flops:    flops.Trsm(nb, f.rhs.W),
			Priority: prioElim(k),
			Accesses: acc,
			RunTraced: func(tr *runtime.TraceTask) {
				m := &tile.Meter{}
				defer func() { tr.ChargeConv(m.NS) }()
				if f.res != nil && st.f32 {
					s32 := f.res.AcquireVecStack32(st.rows, m)
					lapack.Laswp32R(s32, st.piv, false)
					blas.Trsm32R(blas.Left, blas.Lower, blas.NoTrans, blas.Unit, 1, st.l11_32, s32.View(0, 0, nb, f.rhs.W))
					if !f.excursion32(s32) {
						f.res.CommitVecStack32(s32, st.rows)
						return
					}
					f.noteDemotion()
				}
				f.ensure64(m, vecRefs(st.rows)...)
				s, sbuf := mat.GetMatrix(len(st.rows)*nb, f.rhs.W)
				defer mat.PutBuf(sbuf)
				l11 := st.stack.View(0, 0, nb, nb)
				apply := func(f32 bool) {
					f.rhs.StackRowsInto(s, st.rows)
					lapack.Laswp(s, st.piv, false)
					if f32 {
						blas.Trsm32(blas.Left, blas.Lower, blas.NoTrans, blas.Unit, 1, l11, s.View(0, 0, nb, f.rhs.W))
					} else {
						blas.Trsm(blas.Left, blas.Lower, blas.NoTrans, blas.Unit, 1, l11, s.View(0, 0, nb, f.rhs.W))
					}
				}
				f32 := st.f32 && f.res == nil
				apply(f32)
				if f32 && f.excursion(s) {
					f.noteDemotion()
					apply(false)
				}
				f.rhs.UnstackRows(s, st.rows)
			},
		})
	}

	// Eliminate: off-pivot panel tiles against U of the diagonal tile.
	for i := k + 1; i < f.nt; i++ {
		if inSet(st.rows, i) {
			continue
		}
		i := i
		f.e.Submit(runtime.TaskSpec{
			Name:     fmt.Sprintf("TRSM(%d,%d)", i, k),
			Kernel:   "TRSM",
			Node:     f.owner(i, k),
			Flops:    flops.Trsm(nb, nb),
			Priority: prioElim(k),
			Accesses: []runtime.Access{runtime.R(f.h[k][k]), runtime.W(f.h[i][k])},
			RunTraced: func(tr *runtime.TraceTask) {
				f.runTileTask(tr, st, []tileRef{mref(k, k)}, []tileRef{mref(i, k)},
					func(in, out []*mat.Matrix32) {
						blas.Trsm32R(blas.Right, blas.Upper, blas.NoTrans, blas.NonUnit, 1, in[0], out[0])
					},
					func() {
						blas.Trsm32(blas.Right, blas.Upper, blas.NoTrans, blas.NonUnit, 1, f.A.Tile(k, k), f.A.Tile(i, k))
					},
					func() {
						blas.Trsm(blas.Right, blas.Upper, blas.NoTrans, blas.NonUnit, 1, f.A.Tile(k, k), f.A.Tile(i, k))
					})
			},
		})
	}

	// Update: the trailing submatrix and the RHS.
	for i := k + 1; i < f.nt; i++ {
		i := i
		for _, j := range cols {
			j := j
			f.e.Submit(runtime.TaskSpec{
				Name:     fmt.Sprintf("GEMM(%d,%d,%d)", k, i, j),
				Kernel:   "GEMM",
				Node:     f.owner(i, j),
				Flops:    flops.Gemm(nb, nb, nb),
				Priority: prioUpdate(k, j),
				Accesses: []runtime.Access{runtime.R(f.h[i][k]), runtime.R(f.h[k][j]), runtime.W(f.h[i][j])},
				RunTraced: func(tr *runtime.TraceTask) {
					f.runTileTask(tr, st, []tileRef{mref(i, k), mref(k, j)}, []tileRef{mref(i, j)},
						func(in, out []*mat.Matrix32) {
							blas.Gemm32R(blas.NoTrans, blas.NoTrans, -1, in[0], in[1], 1, out[0])
						},
						func() {
							blas.Gemm32(blas.NoTrans, blas.NoTrans, -1, f.A.Tile(i, k), f.A.Tile(k, j), 1, f.A.Tile(i, j))
						},
						func() {
							blas.Gemm(blas.NoTrans, blas.NoTrans, -1, f.A.Tile(i, k), f.A.Tile(k, j), 1, f.A.Tile(i, j))
						})
				},
			})
		}
		f.e.Submit(runtime.TaskSpec{
			Name:     fmt.Sprintf("GEMM(%d,%d,rhs)", k, i),
			Kernel:   "GEMM",
			Node:     f.owner(i, k),
			Flops:    flops.Gemm(nb, f.rhs.W, nb),
			Priority: prioUpdate(k, k+1),
			Accesses: []runtime.Access{runtime.R(f.h[i][k]), runtime.R(f.hb[k]), runtime.W(f.hb[i])},
			RunTraced: func(tr *runtime.TraceTask) {
				f.runTileTask(tr, st, []tileRef{mref(i, k), vref(k)}, []tileRef{vref(i)},
					func(in, out []*mat.Matrix32) {
						blas.Gemm32R(blas.NoTrans, blas.NoTrans, -1, in[0], in[1], 1, out[0])
					},
					func() {
						blas.Gemm32(blas.NoTrans, blas.NoTrans, -1, f.A.Tile(i, k), f.rhs.Tile(k), 1, f.rhs.Tile(i))
					},
					func() {
						blas.Gemm(blas.NoTrans, blas.NoTrans, -1, f.A.Tile(i, k), f.rhs.Tile(k), 1, f.rhs.Tile(i))
					})
			},
		})
	}
}
