package core

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"luqr/internal/criteria"
	"luqr/internal/lapack"
	"luqr/internal/mat"
	"luqr/internal/runtime"
	"luqr/internal/tile"
)

// Task priorities: the panel path (backup, trial factorization, decision,
// restore, panel eliminations) must outrun trailing updates so the next
// step's decision is never starved — the lookahead that makes the hybrid
// algorithm pipeline (§IV). Within each family, earlier panels first; among
// updates, nearer columns first.
//
// The split maps onto the engine's two-level scheduler: prioPanel, prioElim
// and prioLookahead stay at or above runtime.LanePriority, so those tasks
// ride the shared priority lane every worker polls first, while the general
// trailing updates stay below it and ride the per-worker deques with their
// locality-aware work stealing. The lookahead band matters because the
// deques are LIFO and priority-blind: the updates of column k+1 (and the
// RHS) gate step k+1's panel, and on the old priority heap they ran first
// among updates — dropped into a deque they would queue behind arbitrary
// trailing work and stall the pipeline. The k<<8 / k<<10 terms order
// concurrent steps (earlier panel first) within each band without letting
// the bands overlap for any realistic tile count.
func prioPanel(k int) int     { return 1<<28 - k<<8 }
func prioElim(k int) int      { return 1<<27 - k<<8 }
func prioLookahead(k int) int { return 3<<25 - k<<8 }
func prioUpdate(k, j int) int {
	if j == k+1 {
		return prioLookahead(k)
	}
	return 1<<26 - k<<10 - (j - k)
}

type normResult struct {
	row      int
	inDomain bool
	norm1    float64
	colMax   []float64
}

type stepState struct {
	k    int
	rows []int // pivot rows: the diagonal domain (or tile, or whole panel)

	backup    []*mat.Matrix // pre-factorization copies of the pivot-row tiles
	backupBuf *mat.Buf      // pooled storage backing the backup views
	localMax  []float64     // per-column max |a| over the pivot rows (backup)

	stack *mat.Matrix // the factored stacked panel (L\U), kept for applies
	// stack32 is the resident forced-f32 factored panel (same values as
	// stack, float32 storage); l11_32 is the float32 image of stack's top
	// nb×nb block, built once per step for the resident SWPTRSM applies.
	stack32 *mat.Matrix32
	l11_32  *mat.Matrix32
	piv     []int
	pivots  []float64 // |U_jj|
	invNorm float64   // ‖(A_kk^(k))⁻¹‖₁ estimate
	luErr   error

	norms []*normResult // one per sub-diagonal panel tile

	decision bool // true = LU step
	// f32 marks the step's kernels for the float32 path: set at schedule
	// time under PrecisionF32, or by the decision task when PrecisionAuto
	// finds the criterion margin comfortable. A panel excursion clears it
	// (the whole step demotes); individual update-task demotions re-run at
	// f64 without clearing it.
	f32 bool
	// preFactored marks that the diagonal tile already holds a QR
	// factorization from an (A2)/(B2) trial, reusable by the QR step.
	preFactored bool
	// variant records which LU-step formulation the step used (for RHS
	// replay in Result.Solve).
	variant LUVariant
	// inc retains the incremental-pivoting factors of an LU IncPiv step.
	inc *incState
	// hlu retains the multi-eliminator LU factors of an HLU step.
	hlu *hluState

	hBackup *runtime.Handle
	hStack  *runtime.Handle
	hNorms  []*runtime.Handle

	// QR-step reflector storage, keyed by tile row. The 32 maps hold the
	// float32 T images used by the resident path: populated at submit time
	// (single-threaded, so the map writes never race with worker reads),
	// kept in sync with the f64 T by the factor task (widened on an
	// accepted f32 factor, re-rounded after a demotion).
	tGeqrt   map[int]*mat.Matrix
	tKill    map[int]*mat.Matrix
	tGeqrt32 map[int]*mat.Matrix32
	tKill32  map[int]*mat.Matrix32
	hTGeqrt  map[int]*runtime.Handle
	hTKill   map[int]*runtime.Handle
}

// fact carries one factorization through the runtime.
type fact struct {
	cfg Config
	A   *tile.Matrix
	rhs *tile.Vector
	e   *runtime.Engine

	h  [][]*runtime.Handle // tile handles
	hb []*runtime.Handle   // rhs tile handles

	// ib is the panel kernels' inner block size, resolved once from
	// Config.IB (process default when unset) and passed explicitly to the
	// blocked kernels so concurrent runs never share the global knob.
	nt, nb, ib int
	steps      []*stepState

	// diagSolvers[k] applies A_kk⁻¹ to an RHS tile during the block
	// back-substitution; nil means the default upper-triangular solve
	// (variants (B1)/(B2) install custom solvers).
	diagSolvers []func(b *mat.Matrix)

	// Mixed-precision state (Config.Precision != PrecisionF64): a0 retains a
	// clone of the input for the refinement residuals, f32Bound is the
	// excursion ceiling 1e8·max(1, max|A|) beyond which a float32 result is
	// rejected and its task re-run at float64.
	a0       *mat.Matrix
	maxA0    float64
	f32Bound float64
	// res is the float32 tile-residency store (nil for f64-effective runs
	// and under the residencyOff test toggle). When set, float32 kernels
	// run on resident tile images through the runMixed32R harness and
	// every float64 task normalizes its tiles with ensure64 first.
	res *tile.Residency

	mu        sync.Mutex
	breakdown bool
	peakAbs   float64 // max |a_ij| seen by growth probes
	demotions int     // f32 tasks re-run at f64 after an excursion

	report *Report
}

func newFact(cfg Config, a *tile.Matrix, rhs *tile.Vector) *fact {
	ib := cfg.IB
	if ib <= 0 {
		ib = lapack.PanelIB()
	}
	f := &fact{
		cfg: cfg, A: a, rhs: rhs,
		nt: a.NT, nb: a.NB, ib: ib,
		steps:       make([]*stepState, a.NT),
		diagSolvers: make([]func(b *mat.Matrix), a.NT),
		report: &Report{
			Alg: cfg.Alg, N: a.N(), NB: a.NB, NT: a.NT, IB: ib,
			GridP: cfg.Grid.P, GridQ: cfg.Grid.Q,
			Decisions: make([]bool, a.NT),
			Precision: cfg.Precision,
			StepF32:   make([]bool, a.NT),
			Margins:   make([]float64, a.NT),
		},
	}
	for k := range f.report.Margins {
		f.report.Margins[k] = math.NaN() // no criterion margin recorded (yet)
	}
	f.e = runtime.NewEngine(runtime.Config{Workers: cfg.Workers, Trace: cfg.Trace})
	tileBytes := a.NB * a.NB * 8
	f.h = make([][]*runtime.Handle, a.MT)
	for i := range f.h {
		f.h[i] = make([]*runtime.Handle, a.NT)
		for j := range f.h[i] {
			f.h[i][j] = f.e.NewHandle(fmt.Sprintf("A(%d,%d)", i, j), tileBytes, cfg.Grid.Owner(i, j))
		}
	}
	f.hb = make([]*runtime.Handle, a.MT)
	for i := range f.hb {
		f.hb[i] = f.e.NewHandle(fmt.Sprintf("b(%d)", i), a.NB*8, cfg.Grid.Owner(i, 0))
	}
	return f
}

func (f *fact) owner(i, j int) int { return f.cfg.Grid.Owner(i, j) }

func (f *fact) noteBreakdown(err error) {
	if err == nil {
		return
	}
	f.mu.Lock()
	f.breakdown = true
	f.mu.Unlock()
}

func (f *fact) noteDemotion() {
	f.mu.Lock()
	f.demotions++
	f.mu.Unlock()
}

// excursion reports whether any of the matrices holds a float32 casualty:
// a non-finite entry, or growth past f.f32Bound — far beyond what a healthy
// elimination step produces, yet far below float32 overflow, so it flags a
// factorization going wrong before the poison spreads.
func (f *fact) excursion(ms ...*mat.Matrix) bool {
	for _, m := range ms {
		for i := 0; i < m.Rows; i++ {
			for _, v := range m.Row(i) {
				if math.IsNaN(v) || v > f.f32Bound || v < -f.f32Bound {
					return true
				}
			}
		}
	}
	return false
}

// runMixed32 is the demotion harness for an in-place float32 kernel:
// snapshot the output tiles into a pooled slab, run the float32 closure,
// and on an excursion restore the snapshots, re-run the float64 closure,
// and count the demotion. The accepted result is therefore never a bad
// float32 one — PrecisionAuto/PrecisionF32 trade flops, not safety.
func (f *fact) runMixed32(run32, run64 func(), outs ...*mat.Matrix) {
	n := 0
	for _, m := range outs {
		n += m.Rows * m.Cols
	}
	buf := mat.GetBuf(n)
	defer mat.PutBuf(buf)
	snaps := make([]*mat.Matrix, len(outs))
	off := 0
	for i, m := range outs {
		s := &mat.Matrix{Rows: m.Rows, Cols: m.Cols, Stride: m.Cols, Data: buf.Data[off : off+m.Rows*m.Cols]}
		s.CopyFrom(m)
		snaps[i] = s
		off += m.Rows * m.Cols
	}
	run32()
	if !f.excursion(outs...) {
		return
	}
	for i, m := range outs {
		m.CopyFrom(snaps[i])
	}
	run64()
	f.noteDemotion()
}

// residencyOff disables the float32 tile-residency store for tests that
// want the per-task round/widen path (the PR-8 behavior) for bit-equality
// comparisons against the resident path.
var residencyOff = false

// tileRef names a tile in the residency store: matrix tile (i, j), or RHS
// tile i when j < 0.
type tileRef struct{ i, j int }

func mref(i, j int) tileRef { return tileRef{i, j} }
func vref(i int) tileRef    { return tileRef{i, -1} }

// colRefs builds refs for column j's tiles at the given rows.
func colRefs(rows []int, j int) []tileRef {
	refs := make([]tileRef, len(rows))
	for r, i := range rows {
		refs[r] = tileRef{i, j}
	}
	return refs
}

// vecRefs builds refs for the RHS tiles at the given rows.
func vecRefs(rows []int) []tileRef {
	refs := make([]tileRef, len(rows))
	for r, i := range rows {
		refs[r] = vref(i)
	}
	return refs
}

// tile64 resolves a ref to its float64 storage.
func (f *fact) tile64(r tileRef) *mat.Matrix {
	if r.j < 0 {
		return f.rhs.Tile(r.i)
	}
	return f.A.Tile(r.i, r.j)
}

// ensure64 normalizes the listed tiles to current float64 storage (no-op
// without residency). Every task that runs a float64 body must ensure every
// tile it touches; on non-resident tiles this is a single lock check.
func (f *fact) ensure64(m *tile.Meter, refs ...tileRef) {
	if f.res == nil {
		return
	}
	for _, r := range refs {
		if r.j < 0 {
			f.res.EnsureVecF64(r.i, m)
		} else {
			f.res.EnsureF64(r.i, r.j, m)
		}
	}
}

// excursion32 is the excursion scan over resident float32 images — the same
// predicate as excursion, evaluated over the widened values.
func (f *fact) excursion32(ms ...*mat.Matrix32) bool {
	for _, m := range ms {
		for i := 0; i < m.Rows; i++ {
			for _, v := range m.Row(i) {
				w := float64(v)
				if math.IsNaN(w) || w > f.f32Bound || w < -f.f32Bound {
					return true
				}
			}
		}
	}
	return false
}

// runMixed32R is the demotion harness of the resident float32 path. It
// acquires the out tiles' images (snapshotting only those that were already
// dirty — for the rest the float64 array is the epoch's master copy and a
// restore is free), acquires the in images, runs the resident float32
// closure, and scans the out images. On an excursion it rolls the outs back
// (restore-from-snapshot for dirty-before, plain image discard otherwise),
// normalizes every accessed tile to float64, re-runs the float64 closure
// and counts the demotion — so a rejected float32 result never leaks, and a
// fully-demoted run is bit-identical to a pure float64 one.
//
// t/t32 (optional, both nil or both set) carry a QR factor task's T: t32 is
// written by run32 and included in the excursion scan; an accepted float32
// factor widens it into t (keeping the f64 T valid for replay and
// serialization), a demotion re-rounds t from the float64 result (keeping
// t32 valid for the step's remaining resident update tasks).
func (f *fact) runMixed32R(tr *runtime.TraceTask, ins, outs []tileRef, t *mat.Matrix, t32 *mat.Matrix32,
	run32 func(in, out []*mat.Matrix32), run64 func()) {
	m := &tile.Meter{}
	defer func() { tr.ChargeConv(m.NS) }()

	type outState struct {
		img     *mat.Matrix32
		dirty   bool
		snap    *mat.Matrix32
		snapBuf *mat.Buf32
	}
	os := make([]outState, len(outs))
	outImgs := make([]*mat.Matrix32, len(outs))
	for idx, o := range outs {
		var img *mat.Matrix32
		var dirty bool
		if o.j < 0 {
			img, dirty = f.res.WriteVec32(o.i, m)
		} else {
			img, dirty = f.res.Write32(o.i, o.j, m)
		}
		os[idx] = outState{img: img, dirty: dirty}
		if dirty {
			s, b := mat.GetMatrix32(img.Rows, img.Cols)
			s.CopyFrom(img)
			os[idx].snap, os[idx].snapBuf = s, b
		}
		outImgs[idx] = img
	}
	inImgs := make([]*mat.Matrix32, len(ins))
	for idx, r := range ins {
		if r.j < 0 {
			inImgs[idx] = f.res.ReadVec32(r.i, m)
		} else {
			inImgs[idx] = f.res.Read32(r.i, r.j, m)
		}
	}

	run32(inImgs, outImgs)

	scan := outImgs
	if t32 != nil {
		scan = append(append([]*mat.Matrix32{}, outImgs...), t32)
	}
	if !f.excursion32(scan...) {
		for idx := range os {
			mat.PutBuf32(os[idx].snapBuf)
		}
		if t != nil {
			t32.WidenInto(t)
		}
		return
	}

	for idx, o := range outs {
		if os[idx].dirty {
			os[idx].img.CopyFrom(os[idx].snap)
		} else if o.j < 0 {
			f.res.DiscardVec32(o.i)
		} else {
			f.res.Discard32(o.i, o.j)
		}
		mat.PutBuf32(os[idx].snapBuf)
	}
	f.ensure64(m, outs...)
	f.ensure64(m, ins...)
	run64()
	if t != nil {
		t32.RoundFrom(t)
	}
	f.noteDemotion()
}

// runTileTask dispatches one tile-kernel body under the run's precision
// regime: resident float32 (runMixed32R), float64 under residency (ensure64
// then the plain body), per-task round/widen float32 (runMixed32, the
// residencyOff path), or plain float64.
func (f *fact) runTileTask(tr *runtime.TraceTask, st *stepState, ins, outs []tileRef,
	run32R func(in, out []*mat.Matrix32), run32, run64 func()) {
	f.runTileTaskT(tr, st, ins, outs, nil, nil, run32R, run32, run64)
}

// runTileTaskT is runTileTask for QR factor tasks that also produce a T
// factor (see runMixed32R's t/t32 contract; the non-resident float32 path
// snapshots t alongside the out tiles).
func (f *fact) runTileTaskT(tr *runtime.TraceTask, st *stepState, ins, outs []tileRef, t *mat.Matrix, t32 *mat.Matrix32,
	run32R func(in, out []*mat.Matrix32), run32, run64 func()) {
	switch {
	case f.res != nil && st.f32:
		f.runMixed32R(tr, ins, outs, t, t32, run32R, run64)
	case f.res != nil:
		m := &tile.Meter{}
		f.ensure64(m, ins...)
		f.ensure64(m, outs...)
		run64()
		tr.ChargeConv(m.NS)
	case st.f32:
		snaps := make([]*mat.Matrix, 0, len(outs)+1)
		for _, o := range outs {
			snaps = append(snaps, f.tile64(o))
		}
		if t != nil {
			snaps = append(snaps, t)
		}
		f.runMixed32(run32, run64, snaps...)
	default:
		run64()
	}
}

// trailingCols returns the column indices j > k.
func (f *fact) trailingCols(k int) []int {
	cols := make([]int, 0, f.nt-k-1)
	for j := k + 1; j < f.nt; j++ {
		cols = append(cols, j)
	}
	return cols
}

// pivotRows returns the rows participating in the panel factorization of
// step k for the given scope.
func (f *fact) pivotRows(k int, scope Scope) []int {
	switch scope {
	case ScopeTile:
		return []int{k}
	case ScopeDomain:
		return f.cfg.Grid.DiagonalDomain(k, f.nt)
	}
	panic("core: unknown scope")
}

// panelRows returns all rows of panel k.
func (f *fact) panelRows(k int) []int {
	rows := make([]int, 0, f.nt-k)
	for i := k; i < f.nt; i++ {
		rows = append(rows, i)
	}
	return rows
}

// accRows builds write accesses for the panel tiles of the given rows in
// column j.
func (f *fact) accRows(rows []int, j int) []runtime.Access {
	acc := make([]runtime.Access, 0, len(rows))
	for _, i := range rows {
		acc = append(acc, runtime.W(f.h[i][j]))
	}
	return acc
}

// accRHSRows builds write accesses for the RHS tiles of the given rows.
func (f *fact) accRHSRows(rows []int) []runtime.Access {
	acc := make([]runtime.Access, 0, len(rows))
	for _, i := range rows {
		acc = append(acc, runtime.W(f.hb[i]))
	}
	return acc
}

// inSet reports membership of i in sorted rows.
func inSet(rows []int, i int) bool {
	for _, r := range rows {
		if r == i {
			return true
		}
	}
	return false
}

// submitNormTasks measures ‖A_ik‖₁ and the per-column maxima of every
// sub-diagonal panel tile before the trial factorization (criterion data,
// §III). One task per tile, on the tile's owner, so that the trace charges
// only the small norm payloads for the criterion exchange.
func (f *fact) submitNormTasks(st *stepState) {
	k := st.k
	nb := f.nb
	for i := k + 1; i < f.nt; i++ {
		i := i
		nr := &normResult{row: i, inDomain: inSet(st.rows, i)}
		st.norms = append(st.norms, nr)
		h := f.e.NewHandle(fmt.Sprintf("norm(%d,%d)", i, k), 16, f.owner(i, k))
		st.hNorms = append(st.hNorms, h)
		f.e.Submit(runtime.TaskSpec{
			Name:     fmt.Sprintf("Norm(%d,%d)", i, k),
			Kernel:   "NORM",
			Node:     f.owner(i, k),
			Flops:    float64(2 * nb * nb),
			Priority: prioPanel(k),
			Accesses: []runtime.Access{runtime.R(f.h[i][k]), runtime.W(h)},
			Run: func() {
				nr.colMax = make([]float64, nb)
				if f.res != nil {
					// Read through the residency state: a resident tile is
					// measured over its image without being demoted, so a
					// criterion probe never ends a float32 epoch.
					nr.norm1 = f.res.TileNorm1(i, k)
					for j := 0; j < nb; j++ {
						nr.colMax[j] = f.res.TileColAbsMax(i, k, j)
					}
					return
				}
				t := f.A.Tile(i, k)
				nr.norm1 = t.Norm1()
				for j := 0; j < nb; j++ {
					nr.colMax[j] = t.ColAbsMax(j)
				}
			},
		})
	}
}

// submitBackup snapshots the pivot-row tiles (and records their pre-factor
// column maxima for the MUMPS criterion) — the Backup Panel stage of Fig. 1.
func (f *fact) submitBackup(st *stepState) {
	k := st.k
	st.hBackup = f.e.NewHandle(fmt.Sprintf("backup(%d)", k), len(st.rows)*f.nb*f.nb*8, f.owner(k, k))
	acc := []runtime.Access{runtime.W(st.hBackup)}
	for _, i := range st.rows {
		acc = append(acc, runtime.R(f.h[i][k]))
	}
	f.e.Submit(runtime.TaskSpec{
		Name:     fmt.Sprintf("Backup(%d)", k),
		Kernel:   "BACKUP",
		Node:     f.owner(k, k),
		Flops:    0,
		Priority: prioPanel(k),
		Accesses: acc,
		Run: func() {
			// One pooled slab backs all the row snapshots; it is released by
			// releaseBackup once the step's decision no longer needs it
			// ("destroyed on exit of Propagate", §IV). CopyFrom overwrites
			// every element, so the unzeroed pool buffer is safe.
			nb := f.nb
			st.backupBuf = mat.GetBuf(len(st.rows) * nb * nb)
			st.backup = make([]*mat.Matrix, len(st.rows))
			for r, i := range st.rows {
				d := st.backupBuf.Data[r*nb*nb : (r+1)*nb*nb]
				st.backup[r] = &mat.Matrix{Rows: nb, Cols: nb, Stride: nb, Data: d}
				if f.res != nil {
					// Snapshot the tile's current values (widening a live
					// image) without ending its float32 epoch.
					f.res.CopyTileInto(st.backup[r], i, k)
				} else {
					st.backup[r].CopyFrom(f.A.Tile(i, k))
				}
			}
			st.localMax = make([]float64, f.nb)
			for j := 0; j < f.nb; j++ {
				m := 0.0
				for _, t := range st.backup {
					m = foldAbsMax(m, t.ColAbsMax(j))
				}
				st.localMax[j] = m
			}
		},
	})
}

// submitPanelFactor stacks the pivot-row tiles of column k, factors them
// with partial pivoting, writes the factors back into the tiles, and
// computes the criterion's diagonal-tile data (pivot magnitudes and the
// Hager–Higham estimate of ‖(A_kk^(k))⁻¹‖₁). This is the LU On Panel stage
// of Fig. 1; the paper uses the multithreaded recursive-LU kernel of PLASMA
// here, our stand-in is the stacked Getrf.
func (f *fact) submitPanelFactor(st *stepState, withCriterion bool) {
	k := st.k
	nb := f.nb
	st.hStack = f.e.NewHandle(fmt.Sprintf("panelLU(%d)", k), len(st.rows)*nb*nb*8, f.owner(k, k))
	acc := []runtime.Access{runtime.W(st.hStack)}
	acc = append(acc, f.accRows(st.rows, k)...)
	// When the pivot search spans several nodes (LUPP), every column pays a
	// sequential pivot exchange — ScaLAPACK's IDAMAX all-reduce — which is
	// the latency the communication-avoiding algorithms eliminate. The
	// diagonal-domain and tile scopes are node-local and pay nothing.
	var pivComm []runtime.Message
	if rounds := pivotExchangeRounds(f.cfg.Grid, st.rows); rounds > 0 {
		pivComm = make([]runtime.Message, nb*rounds)
		for i := range pivComm {
			pivComm[i] = runtime.Message{From: -1, To: f.owner(k, k), Bytes: 16}
		}
	}
	flop := float64(len(st.rows)*nb) * float64(nb) * float64(nb)
	f.e.Submit(runtime.TaskSpec{
		Name:      fmt.Sprintf("PanelLU(%d)", k),
		Kernel:    "GETRF",
		Node:      f.owner(k, k),
		Flops:     flop - float64(nb)*float64(nb)*float64(nb)/3,
		Priority:  prioPanel(k),
		ExtraComm: pivComm,
		Accesses:  acc,
		RunTraced: func(tr *runtime.TraceTask) {
			m := &tile.Meter{}
			if f.res != nil && st.f32 {
				// Forced-float32 resident panel: factor a float32 step stack
				// acquired by reading through each tile's current state, then
				// commit it — the stack views become the panel tiles' dirty
				// images — and keep a widened float64 copy in st.stack,
				// exactly the values the per-task round/widen path would have
				// produced, so the criterion quantities, applies and the RHS
				// replay are unchanged.
				st.stack32 = f.res.AcquireRowStack32(st.rows, k, m)
				st.piv, st.luErr = lapack.Getrf32R(st.stack32)
				if st.luErr != nil || f.excursion32(st.stack32) {
					// Demote the whole step: the images are untouched until
					// commit, so abandoning the stack, normalizing the tiles
					// to float64 and refactoring restarts from clean data —
					// bit-identical to the non-resident demote.
					st.stack32, st.l11_32 = nil, nil
					f.ensure64(m, colRefs(st.rows, k)...)
					st.stack = f.A.StackRows(st.rows, k)
					st.piv, st.luErr = lapack.Getrf(st.stack)
					st.f32 = false
					f.noteDemotion()
					f.A.UnstackRows(st.stack, st.rows, k)
				} else {
					st.stack = mat.New(len(st.rows)*nb, nb)
					st.stack32.WidenInto(st.stack)
					st.l11_32 = st.stack32.View(0, 0, nb, nb)
					f.res.CommitRowStack32(st.stack32, st.rows, k)
				}
			} else {
				// The float64 trial (and the non-resident float32 path)
				// factors the tiles' float64 content — normalize any images
				// left behind by the previous step's float32 updates first.
				f.ensure64(m, colRefs(st.rows, k)...)
				st.stack = f.A.StackRows(st.rows, k)
				if st.f32 {
					st.piv, st.luErr = lapack.Getrf32(st.stack)
					if st.luErr != nil || f.excursion(st.stack) {
						// Demote the whole step: the panel tiles are untouched
						// until UnstackRows, so a fresh stack restarts the
						// factorization from clean float64 data. Clearing st.f32
						// keeps the step's eliminations and updates at f64 too —
						// a panel that misbehaves at float32 has no business
						// driving float32 updates.
						st.stack = f.A.StackRows(st.rows, k)
						st.piv, st.luErr = lapack.Getrf(st.stack)
						st.f32 = false
						f.noteDemotion()
					}
				} else {
					st.piv, st.luErr = lapack.Getrf(st.stack)
				}
				f.A.UnstackRows(st.stack, st.rows, k)
			}
			if withCriterion {
				top := st.stack.View(0, 0, nb, nb)
				st.pivots = lapack.LUPivotGrowth(top)
				if st.luErr != nil {
					st.invNorm = math.Inf(1)
				} else {
					st.invNorm = lapack.InvNorm1EstLU(top, nil)
				}
			}
			tr.ChargeConv(m.NS)
		},
	})
}

// pivotExchangeRounds returns the number of communication rounds of one
// per-column pivot exchange among the nodes owning the given panel rows:
// ⌈log₂ #node-rows⌉, 0 when the rows live on a single node.
func pivotExchangeRounds(g tile.Grid, rows []int) int {
	seen := map[int]bool{}
	for _, i := range rows {
		seen[i%g.P] = true
	}
	p := len(seen)
	r := 0
	for (1 << r) < p {
		r++
	}
	return r
}

// stepRng returns the Random criterion's generator for step k, derived from
// the run seed and the step index by a SplitMix64 mix. Decide callbacks run
// on worker goroutines and *rand.Rand is not safe for concurrent use, so a
// generator shared across steps would race (and make decisions depend on
// execution order); a per-step derivation keeps every decision reproducible
// for a given (seed, step) regardless of worker count or scheduling.
func stepRng(seed int64, k int) *rand.Rand {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(k+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return rand.New(rand.NewSource(int64(z ^ (z >> 31))))
}

// criterionInput assembles the Input for the configured criterion from the
// data gathered by the norm, backup and panel tasks.
func (f *fact) criterionInput(st *stepState) *criteria.Input {
	in := &criteria.Input{
		Step:         st.k,
		InvDiagNorm1: st.invNorm,
		LocalMax:     st.localMax,
		Pivots:       st.pivots,
		Rng:          stepRng(f.cfg.Seed, st.k),
	}
	away := make([]float64, f.nb)
	for _, nr := range st.norms {
		in.OffDiagTileNorms = append(in.OffDiagTileNorms, nr.norm1)
		if !nr.inDomain {
			for j, v := range nr.colMax {
				away[j] = foldAbsMax(away[j], v)
			}
		}
	}
	in.AwayMax = away
	return in
}

// foldAbsMax folds one magnitude into a running maximum, propagating NaN: a
// plain `v > m` comparison drops NaN (every comparison with NaN is false),
// which would let a poisoned column feed finite maxima into the criteria and
// mask the QR fallback they owe the §III growth bounds.
func foldAbsMax(m, v float64) float64 {
	if math.IsNaN(v) {
		return v
	}
	if v > m {
		return v
	}
	return m
}

// submitRestore undoes the trial factorization when the criterion picks a
// QR step (the Propagate tasks' restore path of Fig. 1).
func (f *fact) submitRestore(st *stepState) {
	k := st.k
	acc := []runtime.Access{runtime.R(st.hBackup)}
	acc = append(acc, f.accRows(st.rows, k)...)
	f.e.Submit(runtime.TaskSpec{
		Name:     fmt.Sprintf("Restore(%d)", k),
		Kernel:   "RESTORE",
		Node:     f.owner(k, k),
		Priority: prioPanel(k),
		Accesses: acc,
		Run: func() {
			for r, i := range st.rows {
				if f.res != nil {
					// Overwrite the float64 array and invalidate any image in
					// one locked step, so a stale image can never resurface.
					f.res.StoreF64(i, k, st.backup[r])
				} else {
					f.A.Tile(i, k).CopyFrom(st.backup[r])
				}
			}
			st.releaseBackup() // destroyed on exit of Propagate, as in §IV
		},
	})
}

// releaseBackup returns the step's backup slab to the workspace pool. Called
// from the Restore task (QR decision) or right after the decision unfolds an
// LU step (where the snapshot is simply dropped) — the backup's only reader
// downstream of Decide is Restore.
func (st *stepState) releaseBackup() {
	st.backup = nil
	mat.PutBuf(st.backupBuf)
	st.backupBuf = nil
}

// submitGrowthProbe samples max|A^(k+1)| over the trailing submatrix after
// step k's updates and folds it into the report's peak intermediate growth
// (Config.TrackGrowth). The probe reads every trailing tile, so it also
// acts as a soft barrier; it is purely observational.
func (f *fact) submitGrowthProbe(k int) {
	if !f.cfg.TrackGrowth {
		return
	}
	acc := make([]runtime.Access, 0, (f.nt-k)*(f.nt-k))
	for i := k; i < f.nt; i++ {
		for j := k; j < f.nt; j++ {
			acc = append(acc, runtime.R(f.h[i][j]))
		}
	}
	f.e.Submit(runtime.TaskSpec{
		Name:     fmt.Sprintf("GrowthProbe(%d)", k),
		Kernel:   "PROBE",
		Node:     f.owner(k, k),
		Priority: prioUpdate(k, f.nt),
		Accesses: acc,
		Run: func() {
			m := 0.0
			for i := k; i < f.nt; i++ {
				for j := k; j < f.nt; j++ {
					v := 0.0
					if f.res != nil {
						// Read through a live image without demoting it.
						v = f.res.TileNormMax(i, j)
					} else {
						v = f.A.Tile(i, j).NormMax()
					}
					if v > m {
						m = v
					}
				}
			}
			f.mu.Lock()
			if m > f.peakAbs {
				f.peakAbs = m
			}
			f.mu.Unlock()
		},
	})
}
