package core

import (
	"math"
	"math/rand"
	"testing"

	"luqr/internal/mat"
	"luqr/internal/matgen"
	"luqr/internal/sim"
	"luqr/internal/tile"
	"luqr/internal/tree"
)

// TestHLUSolvesAccurately: the multi-eliminator LU must solve random
// systems across grids and tree families.
func TestHLUSolvesAccurately(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	for _, cfg := range []struct {
		nt, nb, p, q int
		intra, inter tree.Tree
	}{
		{1, 12, 1, 1, tree.Greedy, tree.Fibonacci},
		{4, 12, 2, 2, tree.Greedy, tree.Fibonacci},
		{8, 8, 4, 1, tree.Binary, tree.Binary},
		{6, 8, 1, 1, tree.FlatTS, tree.FlatTT}, // flat tree ≈ IncPiv order
	} {
		n := cfg.nt * cfg.nb
		a := matgen.Random(n, rng)
		xTrue := matgen.RandomVector(n, rng)
		b := mat.MulVec(a, xTrue)
		res := runOn(t, a, b, Config{
			Alg: HLU, NB: cfg.nb, Grid: tile.NewGrid(cfg.p, cfg.q),
			IntraTree: cfg.intra, InterTree: cfg.inter,
		})
		for i := range xTrue {
			if math.Abs(res.X[i]-xTrue[i]) > 1e-6*(1+math.Abs(xTrue[i])) {
				t.Fatalf("%+v: x[%d] = %g, want %g", cfg, i, res.X[i], xTrue[i])
			}
		}
	}
}

// TestHLUCriticalPathTradeoffs documents the pipelining trade-off of [8]
// as it applies to the LU trees: on SQUARE matrices the flat chain
// pipelines consecutive panels perfectly (the next panel's diagonal tile is
// the chain's first elimination), so the tree's advantage shows in the
// per-panel reduction depth, not the full-run critical path. Both facts are
// asserted: (a) the greedy tree reduces a panel in logarithmically many
// rounds where the flat chain is linear (the §VII motivation); (b) on a
// square run the flat variant's full critical path is at least competitive
// (which is why [8] pipelines FLAT/FIBONACCI trees on square matrices).
func TestHLUCriticalPathTradeoffs(t *testing.T) {
	// (a) per-panel reduction depth.
	rows := make([]int, 16)
	for i := range rows {
		rows[i] = i
	}
	flat := tree.CriticalPath(tree.Eliminations(rows, tree.FlatTS))
	greedy := tree.CriticalPath(tree.Eliminations(rows, tree.Greedy))
	if !(greedy < flat/2) {
		t.Fatalf("greedy panel depth %d not far below flat %d", greedy, flat)
	}
	// (b) full-run critical paths are in the same ballpark, flat ≤ greedy
	// is acceptable on square matrices thanks to pipelining.
	rng := rand.New(rand.NewSource(81))
	n := 160
	a := matgen.Random(n, rng)
	b := matgen.RandomVector(n, rng)
	cp := func(intra, inter tree.Tree) float64 {
		res := runOn(t, a, b, Config{Alg: HLU, NB: 16, Grid: tile.NewGrid(2, 2), Trace: true, IntraTree: intra, InterTree: inter})
		return sim.CriticalPath(res.Report.Trace, 1)
	}
	cpGreedy := cp(tree.Greedy, tree.Fibonacci)
	cpFlat := cp(tree.FlatTS, tree.FlatTT)
	if cpGreedy > 3*cpFlat || cpFlat > 3*cpGreedy {
		t.Fatalf("tree critical paths diverged unexpectedly: greedy %.3g flat %.3g", cpGreedy, cpFlat)
	}
}

// TestHLUStabilityClass: pairwise pivoting — stable on random matrices,
// not necessarily on pathological ones; it must never be wildly worse than
// IncPiv (same kernel class).
func TestHLUStabilityClass(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	n := 128
	a := matgen.Random(n, rng)
	b := matgen.RandomVector(n, rng)
	hlu := runOn(t, a, b, Config{Alg: HLU, NB: 16, Grid: tile.NewGrid(2, 2)})
	if hlu.Report.HPL3 > 50 {
		t.Fatalf("HLU unstable on random: HPL3 = %g", hlu.Report.HPL3)
	}
	// The anti-diagonal system (singular tiles) is survivable thanks to the
	// pairwise pivoting.
	n2 := 64
	ad := mat.New(n2, n2)
	for i := 0; i < n2; i++ {
		ad.Set(i, n2-1-i, 1)
	}
	b2 := make([]float64, n2)
	for i := range b2 {
		b2[i] = float64(i + 1)
	}
	res := runOn(t, ad, b2, Config{Alg: HLU, NB: 16, Grid: tile.NewGrid(4, 1)})
	if res.Report.HPL3 > 10 {
		t.Fatalf("HLU failed the anti-diagonal system: HPL3 = %g", res.Report.HPL3)
	}
}

// TestHLUDeterministicAndReplay: worker independence and RHS replay.
func TestHLUDeterministicAndReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	n := 96
	a := matgen.Random(n, rng)
	b := matgen.RandomVector(n, rng)
	var ref []float64
	for _, w := range []int{1, 4} {
		res := runOn(t, a, b, Config{Alg: HLU, NB: 16, Grid: tile.NewGrid(2, 2), Workers: w})
		if ref == nil {
			ref = res.X
			// Replay the same RHS: must be bitwise identical.
			x2, err := res.Solve(b)
			if err != nil {
				t.Fatal(err)
			}
			for i := range ref {
				if x2[i] != ref[i] {
					t.Fatal("HLU replay diverged from the original solve")
				}
			}
			continue
		}
		for i := range ref {
			if res.X[i] != ref[i] {
				t.Fatalf("workers=%d changed the HLU result", w)
			}
		}
	}
}
