package core

import (
	"fmt"

	"luqr/internal/blas"
	"luqr/internal/flops"
	"luqr/internal/lapack"
	"luqr/internal/mat"
	"luqr/internal/runtime"
	"luqr/internal/tree"
)

// HLU — hierarchical LU with multiple eliminators per panel — is a
// prototype of the final future-work item of §VII: "derive LU algorithms
// with several eliminators per panel (just as for HQR) to decrease the
// critical path". It reuses the QR step's reduction-tree machinery with LU
// pair kernels:
//
//	GETRF(i)        each panel tile is factored locally (pivoting inside
//	                the tile); its U part becomes the row's representative,
//	                and the L/P factors are applied to the row's trailing
//	                tiles (a GESSM per column) — the analogue of
//	                GEQRT+UNMQR.
//	PairLU(i, piv)  two representatives merge: the stacked pair of upper
//	                triangles is factored with partial pivoting, the
//	                winner's U survives at row piv, and the pair's L/P
//	                factors update both rows' trailing tiles (an SSSSM per
//	                column) — the analogue of TTQRT+TTMQR.
//
// With a FLAT tree this degenerates to classical incremental pivoting; with
// GREEDY/FIBONACCI trees one panel reduces in ⌈log₂ m⌉ rounds instead of m —
// the critical-path improvement §VII asks for. As with the QR trees of [8],
// the win materializes on tall panels and latency-bound settings: on square
// matrices the flat chain pipelines consecutive panels perfectly (the next
// diagonal tile is the chain's first elimination), so tree choice is a
// genuine trade-off there too. Stability is pairwise-pivoting class (growth
// compounds along the tree), which is exactly why the paper says such an
// algorithm needs "a reliable robustness test" before it can replace the
// hybrid's LU step; quantifying that gap is what this prototype is for.

// pairLU holds the factors of one pair merge, for updates and RHS replay.
type pairLU struct {
	s   *mat.Matrix // factored 2nb×nb stack (L\U)
	piv []int
}

// hluState retains a step's elimination factors. Per-row data lives in
// slices indexed by tile row so concurrent factor tasks never share a map.
type hluState struct {
	headPiv [][]int       // local GETRF pivots per row
	headL   []*mat.Matrix // local GETRF factors (tile snapshot) per row
	pairs   []*pairLU     // pair factors indexed by the killed row
	hPair   []*runtime.Handle
	hHead   []*runtime.Handle
	ops     []tree.Op
}

// scheduleHLU builds the multi-eliminator LU task graph (static, like HQR).
func (f *fact) scheduleHLU() {
	for k := 0; k < f.nt; k++ {
		st := &stepState{k: k}
		f.steps[k] = st
		f.report.Decisions[k] = true
		f.scheduleHLUStep(st)
		f.submitGrowthProbe(k)
	}
}

func (f *fact) scheduleHLUStep(st *stepState) {
	k := st.k
	hs := &hluState{
		headPiv: make([][]int, f.nt),
		headL:   make([]*mat.Matrix, f.nt),
		pairs:   make([]*pairLU, f.nt),
		hPair:   make([]*runtime.Handle, f.nt),
		hHead:   make([]*runtime.Handle, f.nt),
	}
	st.hlu = hs
	domains := f.cfg.Grid.PanelDomains(k, f.nt)
	hs.ops = tree.Hierarchical(domains, f.cfg.IntraTree, f.cfg.InterTree)
	for _, op := range hs.ops {
		switch op.Kind {
		case tree.OpGeqrt:
			f.submitHLULocalFactor(st, op.I)
		case tree.OpTS:
			// TS kill: the killed row was never locally factored; its full
			// square tile enters the pair (exactly IncPiv's TSTRF).
			f.submitHLUPair(st, op.I, op.Piv, true)
		case tree.OpTT:
			f.submitHLUPair(st, op.I, op.Piv, false)
		}
	}
}

// submitHLULocalFactor factors tile row i in place and applies its L/P to
// the row's trailing tiles and RHS tile.
func (f *fact) submitHLULocalFactor(st *stepState, i int) {
	k := st.k
	nb := f.nb
	hs := st.hlu
	hH := f.e.NewHandle(fmt.Sprintf("hluHead(%d,%d)", i, k), nb*nb*8, f.owner(i, k))
	hs.hHead[i] = hH
	f.e.Submit(runtime.TaskSpec{
		Name:     fmt.Sprintf("GETRF(%d,%d)", i, k),
		Kernel:   "GETRF",
		Node:     f.owner(i, k),
		Flops:    flops.Getrf(nb, nb),
		Priority: prioElim(k),
		Accesses: []runtime.Access{runtime.W(f.h[i][k]), runtime.W(hH)},
		Run: func() {
			piv, err := lapack.Getrf(f.A.Tile(i, k))
			f.noteBreakdown(err)
			hs.headPiv[i] = piv
			// Later pair merges overwrite the tile's upper triangle; the
			// replay needs the whole factored tile, so keep a snapshot.
			hs.headL[i] = f.A.Tile(i, k).Clone()
		},
	})
	gessm := func(c *mat.Matrix) {
		lapack.Laswp(c, hs.headPiv[i], false)
		blas.Trsm(blas.Left, blas.Lower, blas.NoTrans, blas.Unit, 1, hs.headL[i], c)
	}
	for _, j := range f.trailingCols(k) {
		j := j
		f.e.Submit(runtime.TaskSpec{
			Name:     fmt.Sprintf("GESSM(%d,%d,%d)", i, k, j),
			Kernel:   "GESSM",
			Node:     f.owner(i, j),
			Flops:    flops.Trsm(nb, nb),
			Priority: prioUpdate(k, j),
			Accesses: []runtime.Access{runtime.R(hH), runtime.W(f.h[i][j])},
			Run:      func() { gessm(f.A.Tile(i, j)) },
		})
	}
	f.e.Submit(runtime.TaskSpec{
		Name:     fmt.Sprintf("GESSM(%d,%d,rhs)", i, k),
		Kernel:   "GESSM",
		Node:     f.owner(i, k),
		Flops:    flops.Trsm(nb, f.rhs.W),
		Priority: prioUpdate(k, k+1),
		Accesses: []runtime.Access{runtime.R(hH), runtime.W(f.hb[i])},
		Run:      func() { gessm(f.rhs.Tile(i)) },
	})
}

// submitHLUPair merges the representatives of rows piv and i: the stacked
// pair of upper triangles is factored with partial pivoting and both rows'
// trailing tiles receive the pair transformation.
func (f *fact) submitHLUPair(st *stepState, i, piv int, ts bool) {
	k := st.k
	nb := f.nb
	hs := st.hlu
	hP := f.e.NewHandle(fmt.Sprintf("hluPair(%d,%d)", i, k), 2*nb*nb*8, f.owner(i, k))
	hs.hPair[i] = hP
	f.e.Submit(runtime.TaskSpec{
		Name:     fmt.Sprintf("PAIRLU(%d,%d,%d)", i, piv, k),
		Kernel:   "TSTRF",
		Node:     f.owner(i, k),
		Flops:    flops.Trsm(nb, nb), // structure-exploiting pairwise count
		Priority: prioElim(k),
		Accesses: []runtime.Access{runtime.W(f.h[piv][k]), runtime.W(f.h[i][k]), runtime.W(hP)},
		Run: func() {
			s := mat.New(2*nb, nb)
			copyUpper(s.View(0, 0, nb, nb), f.A.Tile(piv, k))
			if ts {
				s.View(nb, 0, nb, nb).CopyFrom(f.A.Tile(i, k))
			} else {
				copyUpper(s.View(nb, 0, nb, nb), f.A.Tile(i, k))
			}
			ppiv, err := lapack.Getrf(s)
			f.noteBreakdown(err)
			hs.pairs[i] = &pairLU{s: s, piv: ppiv}
			// The winner's upper triangle moves to row piv; row i's upper
			// is dead (its storage keeps the local L for the replay).
			writeUpper(f.A.Tile(piv, k), s.View(0, 0, nb, nb))
		},
	})
	ssssmPair := func(c1, c2 *mat.Matrix) {
		p := hs.pairs[i]
		w := c1.Cols
		s := mat.New(2*nb, w)
		s.View(0, 0, nb, w).CopyFrom(c1)
		s.View(nb, 0, nb, w).CopyFrom(c2)
		lapack.Laswp(s, p.piv, false)
		blas.Trsm(blas.Left, blas.Lower, blas.NoTrans, blas.Unit, 1, p.s.View(0, 0, nb, nb), s.View(0, 0, nb, w))
		blas.Gemm(blas.NoTrans, blas.NoTrans, -1, p.s.View(nb, 0, nb, nb), s.View(0, 0, nb, w), 1, s.View(nb, 0, nb, w))
		c1.CopyFrom(s.View(0, 0, nb, w))
		c2.CopyFrom(s.View(nb, 0, nb, w))
	}
	for _, j := range f.trailingCols(k) {
		j := j
		f.e.Submit(runtime.TaskSpec{
			Name:     fmt.Sprintf("SSSSM(%d,%d,%d)", i, piv, j),
			Kernel:   "SSSSM",
			Node:     f.owner(i, j),
			Flops:    flops.Trsm(nb, nb) + flops.Gemm(nb, nb, nb),
			Priority: prioUpdate(k, j),
			Accesses: []runtime.Access{runtime.R(hP), runtime.W(f.h[piv][j]), runtime.W(f.h[i][j])},
			Run:      func() { ssssmPair(f.A.Tile(piv, j), f.A.Tile(i, j)) },
		})
	}
	f.e.Submit(runtime.TaskSpec{
		Name:     fmt.Sprintf("SSSSM(%d,%d,rhs)", i, piv),
		Kernel:   "SSSSM",
		Node:     f.owner(i, k),
		Flops:    flops.Trsm(nb, f.rhs.W) + flops.Gemm(nb, f.rhs.W, nb),
		Priority: prioUpdate(k, k+1),
		Accesses: []runtime.Access{runtime.R(hP), runtime.W(f.hb[piv]), runtime.W(f.hb[i])},
		Run:      func() { ssssmPair(f.rhs.Tile(piv), f.rhs.Tile(i)) },
	})
}

// writeUpper copies src's upper triangle into dst's upper triangle, leaving
// dst's strictly lower part (the local L factors) intact.
func writeUpper(dst, src *mat.Matrix) {
	n := dst.Rows
	for i := 0; i < n; i++ {
		copy(dst.Row(i)[i:n], src.Row(i)[i:n])
	}
}

// replayHLUStep applies an HLU step's transformations to a fresh RHS.
func (f *fact) replayHLUStep(st *stepState, rhs interface {
	Tile(i int) *mat.Matrix
}) error {
	hs := st.hlu
	for _, op := range hs.ops {
		switch op.Kind {
		case tree.OpGeqrt:
			l := hs.headL[op.I]
			if l == nil {
				return fmt.Errorf("core: step %d missing HLU head factors for row %d", st.k, op.I)
			}
			c := rhs.Tile(op.I)
			lapack.Laswp(c, hs.headPiv[op.I], false)
			blas.Trsm(blas.Left, blas.Lower, blas.NoTrans, blas.Unit, 1, l, c)
		case tree.OpTS, tree.OpTT:
			p := hs.pairs[op.I]
			if p == nil {
				return fmt.Errorf("core: step %d missing HLU pair factors for row %d", st.k, op.I)
			}
			c1, c2 := rhs.Tile(op.Piv), rhs.Tile(op.I)
			nb := f.nb
			w := c1.Cols
			s := mat.New(2*nb, w)
			s.View(0, 0, nb, w).CopyFrom(c1)
			s.View(nb, 0, nb, w).CopyFrom(c2)
			lapack.Laswp(s, p.piv, false)
			blas.Trsm(blas.Left, blas.Lower, blas.NoTrans, blas.Unit, 1, p.s.View(0, 0, nb, nb), s.View(0, 0, nb, w))
			blas.Gemm(blas.NoTrans, blas.NoTrans, -1, p.s.View(nb, 0, nb, nb), s.View(0, 0, nb, w), 1, s.View(nb, 0, nb, w))
			c1.CopyFrom(s.View(0, 0, nb, w))
			c2.CopyFrom(s.View(nb, 0, nb, w))
		}
	}
	return nil
}
