package core

import (
	"fmt"
	"math"

	"luqr/internal/blas"
	"luqr/internal/flops"
	"luqr/internal/lapack"
	"luqr/internal/mat"
	"luqr/internal/runtime"
)

// scheduleVariantStep builds step k of the hybrid algorithm for the §II-C
// LU-step variants (A2), (B1), (B2). All three factor the *diagonal tile*
// (the variants are defined at tile granularity in the paper):
//
//	(A2)  trial = GEQRT; on LU keep it (Apply = UNMQR, Eliminate = TRSM
//	      with R, Update = GEMM); on QR *reuse* it — no restore needed.
//	(B1)  trial = GETRF with pivoting inside the tile; on LU, Eliminate =
//	      A_ik·A_kk⁻¹ (TRSM·TRSM·column swaps), no Apply, Schur update with
//	      the original row k; on QR, restore from backup. The diagonal
//	      factors are retained for the block back-substitution.
//	(B2)  trial = GEQRT; on LU, Eliminate = (A_ik·R⁻¹)·Qᵀ, no Apply; on QR,
//	      reuse as in (A2).
func (f *fact) scheduleVariantStep(k int) {
	st := &stepState{k: k, rows: []int{k}}
	st.variant = f.cfg.Variant
	f.steps[k] = st
	variant := f.cfg.Variant

	f.submitNormTasks(st)
	if variant == VarB1 {
		f.submitBackup(st)
	}
	f.submitVariantTrial(st, variant)

	acc := []runtime.Access{runtime.R(st.hStack)}
	if st.hBackup != nil {
		acc = append(acc, runtime.R(st.hBackup))
	}
	for _, h := range st.hNorms {
		acc = append(acc, runtime.R(h))
	}
	f.e.Submit(runtime.TaskSpec{
		Name:     fmt.Sprintf("Decide(%d)", k),
		Kernel:   "DECIDE",
		Node:     f.owner(k, k),
		Flops:    float64(10 * f.nb * f.nb),
		Priority: prioPanel(k),
		Accesses: acc,
		Run: func() {
			st.decision = f.cfg.Criterion.Decide(f.criterionInput(st))
			f.report.Decisions[k] = st.decision
			if st.decision {
				f.noteBreakdown(st.luErr)
			}
		},
		Then: func(*runtime.Engine) {
			if st.decision {
				st.releaseBackup() // only VarB1 holds one; no-op otherwise
				f.submitVariantLUStep(st, variant)
			} else {
				switch variant {
				case VarB1:
					f.submitRestore(st)
				case VarA2, VarB2:
					// The QR factorization of the diagonal tile is reused:
					// mark the step so submitQRStep skips GEQRT(k).
					st.preFactored = true
				}
				f.submitQRStep(st)
			}
			f.submitGrowthProbe(k)
			if k+1 < f.nt {
				f.scheduleVariantStep(k + 1)
			}
		},
	})
}

// submitVariantTrial factors the diagonal tile in place and collects the
// criterion data. For the QR-based variants the reflector block T is stored
// in st.tGeqrt[k] so both the LU and the QR branch can apply it.
func (f *fact) submitVariantTrial(st *stepState, variant LUVariant) {
	k := st.k
	nb := f.nb
	st.hStack = f.e.NewHandle(fmt.Sprintf("panelTrial(%d)", k), nb*nb*8, f.owner(k, k))
	if st.tGeqrt == nil {
		st.tGeqrt = map[int]*mat.Matrix{}
		st.tKill = map[int]*mat.Matrix{}
		st.hTGeqrt = map[int]*runtime.Handle{}
		st.hTKill = map[int]*runtime.Handle{}
	}

	qrBased := variant == VarA2 || variant == VarB2
	var t *mat.Matrix
	var hT *runtime.Handle
	kernel, flop := "GETRF", flops.Getrf(nb, nb)
	accesses := []runtime.Access{runtime.W(st.hStack), runtime.W(f.h[k][k])}
	if qrBased {
		kernel, flop = "GEQRT", flops.Geqrt(nb, nb)
		t = mat.New(nb, nb)
		st.tGeqrt[k] = t
		hT = f.e.NewHandle(fmt.Sprintf("Tg(%d,%d)", k, k), nb*nb*8, f.owner(k, k))
		st.hTGeqrt[k] = hT
		accesses = append(accesses, runtime.W(hT))
	}

	f.e.Submit(runtime.TaskSpec{
		Name:     fmt.Sprintf("PanelTrial%s(%d)", kernel, k),
		Kernel:   kernel,
		Node:     f.owner(k, k),
		Flops:    flop,
		Priority: prioPanel(k),
		Accesses: accesses,
		Run: func() {
			tile := f.A.Tile(k, k)
			// Pre-factorization column maxima for the MUMPS criterion.
			st.localMax = make([]float64, nb)
			for j := 0; j < nb; j++ {
				st.localMax[j] = tile.ColAbsMax(j)
			}
			if qrBased {
				lapack.GeqrtIB(tile, t, f.ib)
				// |R_jj| plays the pivot role in the MUMPS input; the
				// estimate of ‖A_kk⁻¹‖₁ uses the exact operator
				// R⁻¹·Qᵀ / Q·R⁻ᵀ through the stored reflectors.
				st.pivots = lapack.LUPivotGrowth(tile)
				st.invNorm = lapack.OneNormEst(nb,
					func(x []float64) {
						c := &mat.Matrix{Rows: nb, Cols: 1, Stride: 1, Data: x}
						lapack.Unmqr(blas.Trans, tile, t, c)
						blas.Trsv(blas.Upper, blas.NoTrans, blas.NonUnit, tile, x)
					},
					func(x []float64) {
						blas.Trsv(blas.Upper, blas.Trans, blas.NonUnit, tile, x)
						c := &mat.Matrix{Rows: nb, Cols: 1, Stride: 1, Data: x}
						lapack.Unmqr(blas.NoTrans, tile, t, c)
					},
				)
				return
			}
			piv, err := lapack.Getrf(tile)
			st.piv = piv
			st.luErr = err
			st.pivots = lapack.LUPivotGrowth(tile)
			if err != nil {
				st.invNorm = math.Inf(1)
			} else {
				st.invNorm = lapack.InvNorm1EstLU(tile, piv)
			}
		},
	})
}

// submitVariantLUStep emits the Apply/Eliminate/Update tasks of the chosen
// variant, assuming the trial factorization of the diagonal tile was kept.
func (f *fact) submitVariantLUStep(st *stepState, variant LUVariant) {
	k := st.k
	nb := f.nb
	cols := f.trailingCols(k)

	// Apply (row k and the RHS tile) — (A2) only; the B variants leave row
	// k untouched, which is what makes their result block triangular.
	if variant == VarA2 {
		f.submitGeqrtUpdates(st, k) // UNMQR on A_kj and b_k
	}

	// Eliminate every sub-diagonal panel tile against the diagonal factors.
	for i := k + 1; i < f.nt; i++ {
		i := i
		var elim func()
		var kernel string
		var flop float64
		accesses := []runtime.Access{runtime.R(f.h[k][k]), runtime.W(f.h[i][k])}
		switch variant {
		case VarA2:
			kernel, flop = "TRSM", flops.Trsm(nb, nb)
			elim = func() {
				blas.Trsm(blas.Right, blas.Upper, blas.NoTrans, blas.NonUnit, 1, f.A.Tile(k, k), f.A.Tile(i, k))
			}
		case VarB1:
			kernel, flop = "TRSM2", 2*flops.Trsm(nb, nb)
			elim = func() {
				akk := f.A.Tile(k, k)
				x := f.A.Tile(i, k)
				blas.Trsm(blas.Right, blas.Upper, blas.NoTrans, blas.NonUnit, 1, akk, x)
				blas.Trsm(blas.Right, blas.Lower, blas.NoTrans, blas.Unit, 1, akk, x)
				lapack.LaswpCols(x, st.piv, true)
			}
		case VarB2:
			kernel, flop = "TRSMQR", flops.Trsm(nb, nb)+flops.Unmqr(nb, nb)
			t := st.tGeqrt[k]
			elim = func() {
				akk := f.A.Tile(k, k)
				x := f.A.Tile(i, k)
				blas.Trsm(blas.Right, blas.Upper, blas.NoTrans, blas.NonUnit, 1, akk, x)
				lapack.UnmqrRight(blas.Trans, akk, t, x)
			}
			accesses = append(accesses, runtime.R(st.hTGeqrt[k]))
		default:
			panic("core: submitVariantLUStep with variant A1")
		}
		f.e.Submit(runtime.TaskSpec{
			Name:     fmt.Sprintf("Elim%s(%d,%d)", variant, i, k),
			Kernel:   kernel,
			Node:     f.owner(i, k),
			Flops:    flop,
			Priority: prioElim(k),
			Accesses: accesses,
			Run:      elim,
		})
	}

	// Update: A_ij −= A_ik·A_kj and b_i −= A_ik·b_k. For (A2) row k has
	// been Qᵀ-applied; for (B1)/(B2) it carries its step-k values, as block
	// LU requires.
	for i := k + 1; i < f.nt; i++ {
		i := i
		for _, j := range cols {
			j := j
			f.e.Submit(runtime.TaskSpec{
				Name:     fmt.Sprintf("GEMM(%d,%d,%d)", k, i, j),
				Kernel:   "GEMM",
				Node:     f.owner(i, j),
				Flops:    flops.Gemm(nb, nb, nb),
				Priority: prioUpdate(k, j),
				Accesses: []runtime.Access{runtime.R(f.h[i][k]), runtime.R(f.h[k][j]), runtime.W(f.h[i][j])},
				Run: func() {
					blas.Gemm(blas.NoTrans, blas.NoTrans, -1, f.A.Tile(i, k), f.A.Tile(k, j), 1, f.A.Tile(i, j))
				},
			})
		}
		f.e.Submit(runtime.TaskSpec{
			Name:     fmt.Sprintf("GEMM(%d,%d,rhs)", k, i),
			Kernel:   "GEMM",
			Node:     f.owner(i, k),
			Flops:    flops.Gemm(nb, f.rhs.W, nb),
			Priority: prioUpdate(k, k+1),
			Accesses: []runtime.Access{runtime.R(f.h[i][k]), runtime.R(f.hb[k]), runtime.W(f.hb[i])},
			Run: func() {
				blas.Gemm(blas.NoTrans, blas.NoTrans, -1, f.A.Tile(i, k), f.rhs.Tile(k), 1, f.rhs.Tile(i))
			},
		})
	}

	// The B variants leave a block-triangular factor: install the diagonal
	// solver for the back-substitution.
	switch variant {
	case VarB1:
		piv := &st.piv
		f.diagSolvers[k] = func(b *mat.Matrix) {
			lapack.Getrs(blas.NoTrans, f.A.Tile(k, k), *piv, b)
		}
	case VarB2:
		t := st.tGeqrt[k]
		f.diagSolvers[k] = func(b *mat.Matrix) {
			lapack.Unmqr(blas.Trans, f.A.Tile(k, k), t, b)
			blas.Trsm(blas.Left, blas.Upper, blas.NoTrans, blas.NonUnit, 1, f.A.Tile(k, k), b)
		}
	}
}
