package core

import (
	"fmt"
	"math"

	"luqr/internal/blas"
	"luqr/internal/lapack"
	"luqr/internal/mat"
	"luqr/internal/tile"
	"luqr/internal/tree"
)

// Solve solves A·x = b2 for a new right-hand side by replaying the stored
// per-step transformations of the factorization on b2 (the "second pass"
// alternative of §II-D.1: "all needed information about the transformations
// is stored in place of A, so one can apply the transformations on b during
// a second pass") and back-substituting. The replay is serial — O(N²) — and
// reproduces the in-flight RHS processing of the original Run bit for bit.
//
// Solve only reads the stored factors, so concurrent calls on the same
// Result are safe.
func (r *Result) Solve(b2 []float64) ([]float64, error) {
	xs, err := r.SolveBatch([][]float64{b2})
	if err != nil {
		return nil, err
	}
	return xs[0], nil
}

// SolveBatch solves A·x_j = b_j for many right-hand sides at once: the
// vectors are packed as the columns of one NB×w tiled RHS, every stored
// per-step transformation is replayed once over the whole block, and a
// single block back-substitution pass produces all solutions. Every replay
// and solve kernel is rank-w BLAS instead of w separate rank-1 passes, so a
// batch of w costs far less than w Solve calls — this is the amortization
// the solver service's RHS batching rides on. Each returned xs[j] equals
// Solve(bs[j]) exactly (column j of the block never mixes with the others).
//
// SolveBatch only reads the stored factors, so concurrent calls on the same
// Result are safe.
func (r *Result) SolveBatch(bs [][]float64) ([][]float64, error) {
	xs, _, err := r.SolveBatchRefined(bs)
	return xs, err
}

// SolveBatchRefined is SolveBatch plus the mixed-precision accuracy
// guarantee: when the factorization accepted float32 steps, every solution
// column is iteratively refined through the stored factors — float64
// residual against the retained original matrix, O(N²) correction solve —
// until its HPL3 backward error reaches float64 territory or stops
// improving. The middle return is the number of refinement rounds (0 for
// pure-f64 factorizations, whose solutions need none).
//
// Like SolveBatch, it only reads the stored factorization state, so
// concurrent calls on the same Result are safe.
func (r *Result) SolveBatchRefined(bs [][]float64) ([][]float64, int, error) {
	f := r.f
	if f == nil {
		return nil, 0, fmt.Errorf("core: Result does not carry factorization state")
	}
	if len(bs) == 0 {
		return nil, 0, nil
	}
	n := r.Report.N
	for j, b := range bs {
		if len(b) != n {
			return nil, 0, fmt.Errorf("core: rhs %d has length %d for N=%d", j, len(b), n)
		}
	}
	// Pad to the tiled order if the original system was padded (§II-D.2):
	// the pad rows stay zero, matching diag(A, I).
	full := make([][]float64, len(bs))
	for j, b := range bs {
		fb := make([]float64, f.nt*f.nb)
		copy(fb, b)
		full[j] = fb
	}
	xs, err := f.solveVecsRaw(full)
	if err != nil {
		return nil, 0, err
	}
	iters := 0
	if r.Report.F32Steps > 0 {
		iters = f.refineVecs(full, xs)
	}
	out := make([][]float64, len(xs))
	for j, x := range xs {
		out[j] = x[:n:n]
	}
	return out, iters, nil
}

// solveVecsRaw replays every stored per-step transformation over the packed
// right-hand-side columns and back-substitutes — the raw second pass, with
// no refinement. Inputs and outputs are full tiled-order (padded) vectors.
func (f *fact) solveVecsRaw(bs [][]float64) ([][]float64, error) {
	w := len(bs)
	nb := f.nb
	rhs := tile.NewVector(f.nt, nb, w)
	for j, b := range bs {
		for i, v := range b {
			rhs.Tiles[i/nb].Set(i%nb, j, v)
		}
	}
	for k := 0; k < f.nt; k++ {
		if err := f.replayStep(f.steps[k], rhs); err != nil {
			return nil, err
		}
	}
	backSubstituteBlock(f.A, rhs, f.diagSolvers)
	xs := make([][]float64, w)
	for j := range xs {
		x := make([]float64, f.nt*nb)
		for i := range x {
			x[i] = rhs.Tiles[i/nb].At(i%nb, j)
		}
		xs[j] = x
	}
	return xs, nil
}

// Refinement bounds: at double precision, each round through sound factors
// multiplies the residual by roughly the f32/f64 epsilon gap, so a handful
// of rounds suffice; refineHPL3Tol is the HPL3 level at which a column is
// declared converged (HPL3 ≲ O(10) is the paper's §V-A acceptance band).
const (
	refineMaxIters = 10
	refineHPL3Tol  = 16.0
)

// refineVecs runs iterative refinement on the solution columns xs of the
// systems a0·x = bs, in place: r = b − A·x at float64 (the retained
// original matrix), dx from a raw replay solve, and the update x += dx is
// accepted per column only when its HPL3 improves — so refinement can stall
// but never degrade a solution. Columns at or below refineHPL3Tol are left
// alone. Returns the number of rounds performed. Vectors are full
// tiled-order (padded) length; for a padded system the pad rows of b are
// zero and the identity block keeps their residual exact.
func (f *fact) refineVecs(bs, xs [][]float64) int {
	a := f.a0
	if a == nil {
		return 0
	}
	best := make([]float64, len(xs))
	for j := range xs {
		best[j] = mat.HPL3(a, xs[j], bs[j])
	}
	iters := 0
	for it := 0; it < refineMaxIters; it++ {
		var idx []int
		for j := range xs {
			if !(best[j] <= refineHPL3Tol) { // NaN counts as unconverged
				idx = append(idx, j)
			}
		}
		if len(idx) == 0 {
			break
		}
		rs := make([][]float64, len(idx))
		for m, j := range idx {
			rs[m] = mat.Residual(a, xs[j], bs[j])
		}
		dxs, err := f.solveVecsRaw(rs)
		if err != nil {
			break
		}
		iters++
		improved := false
		for m, j := range idx {
			cand := make([]float64, len(xs[j]))
			for i := range cand {
				cand[i] = xs[j][i] + dxs[m][i]
			}
			if h := mat.HPL3(a, cand, bs[j]); h < best[j] || (math.IsNaN(best[j]) && !math.IsNaN(h)) {
				copy(xs[j], cand)
				best[j] = h
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return iters
}

// replayStep applies step k's transformation to a fresh RHS vector.
func (f *fact) replayStep(st *stepState, rhs *tile.Vector) error {
	if st == nil {
		return fmt.Errorf("core: missing step state")
	}
	k := st.k
	if f.report.Decisions[k] {
		return f.replayLUStep(st, rhs)
	}
	return f.replayQRStep(st, rhs)
}

func (f *fact) replayLUStep(st *stepState, rhs *tile.Vector) error {
	k := st.k
	nb := f.nb
	if st.inc != nil {
		return f.replayIncPivStep(st, rhs)
	}
	if st.hlu != nil {
		return f.replayHLUStep(st, rhs)
	}
	switch st.variant {
	case VarA1:
		// Apply: swaps + unit-lower solve on the stacked pivot rows.
		s, sbuf := mat.GetMatrix(len(st.rows)*nb, rhs.W)
		defer mat.PutBuf(sbuf)
		rhs.StackRowsInto(s, st.rows)
		lapack.Laswp(s, st.piv, false)
		l11 := st.stack.View(0, 0, nb, nb)
		blas.Trsm(blas.Left, blas.Lower, blas.NoTrans, blas.Unit, 1, l11, s.View(0, 0, nb, rhs.W))
		rhs.UnstackRows(s, st.rows)
	case VarA2:
		lapack.Unmqr(blas.Trans, f.A.Tile(k, k), st.tGeqrt[k], rhs.Tile(k))
	case VarB1, VarB2:
		// Block LU: row k's RHS is untouched at step k.
	}
	// Update: b_i −= A_ik·b_k for every sub-diagonal row.
	for i := k + 1; i < f.nt; i++ {
		blas.Gemm(blas.NoTrans, blas.NoTrans, -1, f.A.Tile(i, k), rhs.Tile(k), 1, rhs.Tile(i))
	}
	return nil
}

func (f *fact) replayQRStep(st *stepState, rhs *tile.Vector) error {
	k := st.k
	domains := f.cfg.Grid.PanelDomains(k, f.nt)
	ops := tree.Hierarchical(domains, f.cfg.IntraTree, f.cfg.InterTree)
	for _, op := range ops {
		switch op.Kind {
		case tree.OpGeqrt:
			t := st.tGeqrt[op.I]
			if t == nil {
				return fmt.Errorf("core: step %d missing GEQRT factor for row %d", k, op.I)
			}
			lapack.Unmqr(blas.Trans, f.A.Tile(op.I, k), t, rhs.Tile(op.I))
		case tree.OpTS:
			t := st.tKill[op.I]
			if t == nil {
				return fmt.Errorf("core: step %d missing TSQRT factor for row %d", k, op.I)
			}
			lapack.Tsmqr(blas.Trans, f.A.Tile(op.I, k), t, rhs.Tile(op.Piv), rhs.Tile(op.I))
		case tree.OpTT:
			t := st.tKill[op.I]
			if t == nil {
				return fmt.Errorf("core: step %d missing TTQRT factor for row %d", k, op.I)
			}
			lapack.Ttmqr(blas.Trans, f.A.Tile(op.I, k), t, rhs.Tile(op.Piv), rhs.Tile(op.I))
		}
	}
	return nil
}

func (f *fact) replayIncPivStep(st *stepState, rhs *tile.Vector) error {
	k := st.k
	is := st.inc
	if is.l0 == nil {
		return fmt.Errorf("core: step %d missing incremental-pivoting factors", k)
	}
	// GESSM on the diagonal row's RHS.
	bk := rhs.Tile(k)
	lapack.Laswp(bk, is.piv[k], false)
	blas.Trsm(blas.Left, blas.Lower, blas.NoTrans, blas.Unit, 1, is.l0, bk)
	// Pairwise SSSSM applications, serial in i as in the factorization.
	for i := k + 1; i < f.nt; i++ {
		f.ssssm(is, i, rhs.Tile(k), rhs.Tile(i))
	}
	return nil
}

// Refine performs iterative refinement on an already computed solution:
// r = b − A·x, dx = Solve(r), x += dx, for iters rounds. It uses the stored
// factorization, so each round costs O(N²). Refinement recovers accuracy
// when the factorization was fast-but-mildly-unstable (e.g. LU NoPiv on a
// matrix with moderate growth), and is an extension beyond the paper.
func (r *Result) Refine(a *mat.Matrix, b, x []float64, iters int) ([]float64, error) {
	out := append([]float64(nil), x...)
	for it := 0; it < iters; it++ {
		res := mat.Residual(a, out, b)
		dx, err := r.Solve(res)
		if err != nil {
			return nil, err
		}
		for i := range out {
			out[i] += dx[i]
		}
	}
	return out, nil
}
