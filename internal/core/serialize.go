package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
	"sort"
	"time"

	"luqr/internal/blas"
	"luqr/internal/criteria"
	"luqr/internal/lapack"
	"luqr/internal/mat"
	"luqr/internal/tile"
	"luqr/internal/tree"
)

// This file implements the versioned serialization of a finished
// factorization: everything Result.Solve / Result.SolveBatch need to replay
// the stored per-step transformations on new right-hand sides — the factored
// tile payloads, pivot vectors, per-step LU/QR decisions and reflector
// blocks, and the numerically relevant configuration — but none of the
// runtime machinery (engine, handles, workspace pools), which exists only
// while the factorization is in flight.
//
// The wire layout is a small fixed header followed by a gob payload:
//
//	magic   [8]byte  "LUQRFACT"
//	version uint32   factEncodingVersion, little endian
//	length  uint64   payload length in bytes
//	sha256  [32]byte checksum of the payload
//	payload []byte   gob(facPayload)
//
// The checksum makes torn or bit-rotted files detectable before the gob
// decoder sees them, and the version field turns any format change into an
// explicit "version skew" error instead of a silent misread. Callers that
// persist encoded factorizations (the service's factor store) treat every
// decode error the same way: discard and re-factor.

// factEncodingVersion is bumped whenever the payload layout — or the replay
// semantics it feeds — changes incompatibly. v2 added the mixed-precision
// state (precision mode, per-step f32 flags, criterion margins, and the
// retained original matrix that feeds refinement residuals). v1 streams are
// still readable: gob matches payload fields by name, so the new fields
// decode to their zero values, which is exactly the pure-f64 meaning every
// v1 factorization had. Decoding any version newer than this build fails.
const factEncodingVersion = 2

var factMagic = [8]byte{'L', 'U', 'Q', 'R', 'F', 'A', 'C', 'T'}

// factHeaderLen is the fixed prefix before the gob payload.
const factHeaderLen = 8 + 4 + 8 + sha256.Size

func init() {
	// The criterion travels inside the payload as an interface value, so the
	// concrete types must be registered. All implementations are small value
	// structs with exported fields.
	gob.Register(criteria.Max{})
	gob.Register(criteria.Sum{})
	gob.Register(criteria.MUMPS{})
	gob.Register(criteria.Random{})
	gob.Register(criteria.Always{})
	gob.Register(criteria.Never{})
}

// facMatrix is a densely packed matrix. The zero value (Rows == Cols == 0)
// encodes an absent matrix, which keeps every payload field a gob-friendly
// value type (gob rejects nil pointers inside slices).
type facMatrix struct {
	Rows, Cols int
	Data       []float64
}

// facKeyed is one sparse (index → matrix) association, used for the QR
// reflector maps and the per-row factor slices of IncPiv/HLU.
type facKeyed struct {
	I   int
	M   facMatrix
	Piv []int // meaning depends on context; empty when unused
}

// facOp mirrors tree.Op.
type facOp struct {
	Kind, I, Piv int
}

// facInc is the serialized incState of one incremental-pivoting step.
type facInc struct {
	L0   facMatrix
	PivK []int      // the diagonal GETRF's pivots (is.piv[k])
	Rows []facKeyed // per killed row: stacked L factors + pivots
}

// facHLU is the serialized hluState of one multi-eliminator LU step.
type facHLU struct {
	Ops   []facOp
	Heads []facKeyed // local GETRF factors + pivots, by row
	Pairs []facKeyed // pair-merge stacks + pivots, by killed row
}

// facStep is the replay-relevant subset of one stepState.
type facStep struct {
	K       int
	Rows    []int
	Piv     []int
	Stack   facMatrix
	Variant int
	TGeqrt  []facKeyed
	TKill   []facKeyed
	HasInc  bool
	Inc     facInc
	HasHLU  bool
	HLU     facHLU
}

// facPayload is the complete serialized factorization.
type facPayload struct {
	// Numerically relevant config. Workers/Trace are deliberately absent:
	// the runtime produces bit-identical factors at any worker count.
	Alg       int
	NB        int
	GridP     int
	GridQ     int
	Scope     int
	Variant   int
	IntraTree int
	InterTree int
	Seed      int64
	Criterion criteria.Criterion

	// Factored tiles, tile-major: tile (i, j) occupies the NB·NB elements
	// starting at (i*NT+j)*NB*NB, row-major within the tile.
	MT, NT int
	Tiles  []float64

	// Per-step replay state and the criterion's decisions.
	Decisions []bool
	Steps     []facStep

	// Report scalars (Trace and Sched do not survive serialization).
	N          int // original order, before any tile padding
	LUSteps    int
	QRSteps    int
	Breakdown  bool
	WallNS     int64
	HPL3       float64
	Growth     float64
	PeakGrowth float64

	// X is the solution of the original run, kept so a warm-loaded Result is
	// indistinguishable from the in-memory one.
	X []float64

	// Mixed-precision state (v2; absent in v1 streams, where gob leaves the
	// zero values — the pure-f64 meaning). A0 is the retained original
	// matrix, packed only when the run accepted f32 steps: without it a
	// reloaded Result could not form the float64 refinement residuals its
	// solves owe the caller.
	Precision   int
	StepF32     []bool
	Margins     []float64
	F32Steps    int
	Demotions   int
	RefineIters int
	MarginMin   float64
	MarginMax   float64
	A0          facMatrix
}

// packMatrix copies m (which may be a strided view) into a tight facMatrix.
func packMatrix(m *mat.Matrix) facMatrix {
	if m == nil {
		return facMatrix{}
	}
	out := facMatrix{Rows: m.Rows, Cols: m.Cols, Data: make([]float64, m.Rows*m.Cols)}
	for i := 0; i < m.Rows; i++ {
		copy(out.Data[i*m.Cols:(i+1)*m.Cols], m.Row(i)[:m.Cols])
	}
	return out
}

// unpackMatrix inverts packMatrix; the zero facMatrix yields nil.
func unpackMatrix(f facMatrix) (*mat.Matrix, error) {
	if f.Rows == 0 && f.Cols == 0 {
		return nil, nil
	}
	if f.Rows < 0 || f.Cols < 0 || len(f.Data) != f.Rows*f.Cols {
		return nil, fmt.Errorf("core: matrix payload %dx%d with %d elements", f.Rows, f.Cols, len(f.Data))
	}
	return &mat.Matrix{Rows: f.Rows, Cols: f.Cols, Stride: f.Cols, Data: f.Data}, nil
}

// packKeyedMap flattens a reflector map in ascending key order (gob encodes
// maps in random order; a sorted slice keeps the payload deterministic).
func packKeyedMap(m map[int]*mat.Matrix) []facKeyed {
	if len(m) == 0 {
		return nil
	}
	keys := make([]int, 0, len(m))
	for i := range m {
		keys = append(keys, i)
	}
	sort.Ints(keys)
	out := make([]facKeyed, 0, len(keys))
	for _, i := range keys {
		out = append(out, facKeyed{I: i, M: packMatrix(m[i])})
	}
	return out
}

// EncodeFactorization serializes the factorization state retained by the
// Result into a self-describing, checksummed byte stream. The encoding
// captures exactly what Solve/SolveBatch replay — DecodeFactorization
// returns a Result whose solves are bit-identical to this one's — and omits
// the trace and scheduler counters. It only reads the stored factors, so it
// is safe to call concurrently with Solve/SolveBatch.
func (r *Result) EncodeFactorization() ([]byte, error) {
	f := r.f
	if f == nil {
		return nil, fmt.Errorf("core: Result does not carry factorization state")
	}
	p := facPayload{
		Alg:       int(f.cfg.Alg),
		NB:        f.nb,
		GridP:     f.cfg.Grid.P,
		GridQ:     f.cfg.Grid.Q,
		Scope:     int(f.cfg.Scope),
		Variant:   int(f.cfg.Variant),
		IntraTree: int(f.cfg.IntraTree),
		InterTree: int(f.cfg.InterTree),
		Seed:      f.cfg.Seed,
		Criterion: f.cfg.Criterion,

		MT:    f.A.MT,
		NT:    f.A.NT,
		Tiles: make([]float64, f.A.MT*f.A.NT*f.nb*f.nb),

		Decisions: append([]bool(nil), f.report.Decisions...),
		Steps:     make([]facStep, len(f.steps)),

		N:          r.Report.N,
		LUSteps:    r.Report.LUSteps,
		QRSteps:    r.Report.QRSteps,
		Breakdown:  r.Report.Breakdown,
		WallNS:     r.Report.WallTime.Nanoseconds(),
		HPL3:       r.Report.HPL3,
		Growth:     r.Report.Growth,
		PeakGrowth: r.Report.PeakGrowth,

		X: append([]float64(nil), r.X...),

		Precision:   int(r.Report.Precision),
		StepF32:     append([]bool(nil), r.Report.StepF32...),
		Margins:     append([]float64(nil), r.Report.Margins...),
		F32Steps:    r.Report.F32Steps,
		Demotions:   r.Report.Demotions,
		RefineIters: r.Report.RefineIters,
		MarginMin:   r.Report.MarginMin,
		MarginMax:   r.Report.MarginMax,
	}
	if r.Report.F32Steps > 0 {
		p.A0 = packMatrix(f.a0)
	}
	tb := f.nb * f.nb
	for i := 0; i < f.A.MT; i++ {
		for j := 0; j < f.A.NT; j++ {
			t := packMatrix(f.A.Tile(i, j))
			copy(p.Tiles[(i*f.A.NT+j)*tb:], t.Data)
		}
	}
	for k, st := range f.steps {
		if st == nil {
			return nil, fmt.Errorf("core: step %d has no state to encode", k)
		}
		fs := facStep{
			K:       st.k,
			Rows:    append([]int(nil), st.rows...),
			Variant: int(st.variant),
			TGeqrt:  packKeyedMap(st.tGeqrt),
			TKill:   packKeyedMap(st.tKill),
		}
		if f.report.Decisions[k] {
			// The stacked panel factors and pivots matter only for the LU
			// replay; a restored (QR-decided) trial would be dead weight.
			fs.Piv = append([]int(nil), st.piv...)
			fs.Stack = packMatrix(st.stack)
		}
		if st.inc != nil {
			fs.HasInc = true
			fs.Inc = facInc{L0: packMatrix(st.inc.l0), PivK: append([]int(nil), st.inc.piv[st.k]...)}
			for i := st.k + 1; i < f.nt; i++ {
				if st.inc.l[i] == nil {
					continue
				}
				fs.Inc.Rows = append(fs.Inc.Rows, facKeyed{
					I: i, M: packMatrix(st.inc.l[i]), Piv: append([]int(nil), st.inc.piv[i]...),
				})
			}
		}
		if st.hlu != nil {
			fs.HasHLU = true
			for _, op := range st.hlu.ops {
				fs.HLU.Ops = append(fs.HLU.Ops, facOp{Kind: int(op.Kind), I: op.I, Piv: op.Piv})
			}
			for i, l := range st.hlu.headL {
				if l == nil {
					continue
				}
				fs.HLU.Heads = append(fs.HLU.Heads, facKeyed{
					I: i, M: packMatrix(l), Piv: append([]int(nil), st.hlu.headPiv[i]...),
				})
			}
			for i, pr := range st.hlu.pairs {
				if pr == nil {
					continue
				}
				fs.HLU.Pairs = append(fs.HLU.Pairs, facKeyed{
					I: i, M: packMatrix(pr.s), Piv: append([]int(nil), pr.piv...),
				})
			}
		}
		p.Steps[k] = fs
	}

	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&p); err != nil {
		return nil, fmt.Errorf("core: encoding factorization: %w", err)
	}
	sum := sha256.Sum256(payload.Bytes())
	out := bytes.NewBuffer(make([]byte, 0, factHeaderLen+payload.Len()))
	out.Write(factMagic[:])
	binary.Write(out, binary.LittleEndian, uint32(factEncodingVersion))
	binary.Write(out, binary.LittleEndian, uint64(payload.Len()))
	out.Write(sum[:])
	out.Write(payload.Bytes())
	return out.Bytes(), nil
}

// DecodeFactorization reconstructs a Result from a stream produced by
// EncodeFactorization. The returned Result solves new right-hand sides via
// Solve/SolveBatch exactly as the original would have (bit-identically); it
// carries no trace and cannot be re-factored. A truncated, corrupted, or
// version-skewed stream fails with a descriptive error and never yields a
// partially initialized Result.
func DecodeFactorization(data []byte) (*Result, error) {
	if len(data) < factHeaderLen {
		return nil, fmt.Errorf("core: factorization stream truncated: %d bytes, header needs %d", len(data), factHeaderLen)
	}
	if !bytes.Equal(data[:8], factMagic[:]) {
		return nil, fmt.Errorf("core: not a factorization stream (bad magic)")
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v < 1 || v > factEncodingVersion {
		return nil, fmt.Errorf("core: factorization version skew: stream v%d, this build reads v1–v%d", v, factEncodingVersion)
	}
	plen := binary.LittleEndian.Uint64(data[12:20])
	if uint64(len(data)-factHeaderLen) != plen {
		return nil, fmt.Errorf("core: factorization stream truncated: %d payload bytes, header promises %d", len(data)-factHeaderLen, plen)
	}
	payload := data[factHeaderLen:]
	if sum := sha256.Sum256(payload); !bytes.Equal(sum[:], data[20:20+sha256.Size]) {
		return nil, fmt.Errorf("core: factorization checksum mismatch (corrupted payload)")
	}

	var p facPayload
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&p); err != nil {
		return nil, fmt.Errorf("core: decoding factorization: %w", err)
	}
	if p.NB <= 0 || p.MT < 0 || p.NT < 0 {
		return nil, fmt.Errorf("core: factorization payload with invalid shape mt=%d nt=%d nb=%d", p.MT, p.NT, p.NB)
	}
	tb := p.NB * p.NB
	if len(p.Tiles) != p.MT*p.NT*tb {
		return nil, fmt.Errorf("core: factorization payload holds %d tile elements, want %d", len(p.Tiles), p.MT*p.NT*tb)
	}
	if len(p.Decisions) != p.NT || len(p.Steps) != p.NT {
		return nil, fmt.Errorf("core: factorization payload has %d decisions / %d steps for nt=%d", len(p.Decisions), len(p.Steps), p.NT)
	}
	if p.N < 0 || p.N > p.NT*p.NB {
		return nil, fmt.Errorf("core: factorization payload order n=%d exceeds tiled order %d", p.N, p.NT*p.NB)
	}
	// Mixed-precision fields: v1 streams leave them empty (all-f64); v2
	// streams must carry consistent per-step slices, and a factorization
	// that accepted f32 steps must bring the matrix its refinement needs.
	if len(p.StepF32) != 0 && len(p.StepF32) != p.NT {
		return nil, fmt.Errorf("core: factorization payload has %d f32 flags for nt=%d", len(p.StepF32), p.NT)
	}
	if len(p.Margins) != 0 && len(p.Margins) != p.NT {
		return nil, fmt.Errorf("core: factorization payload has %d margins for nt=%d", len(p.Margins), p.NT)
	}
	if p.F32Steps > 0 && (p.A0.Rows != p.NT*p.NB || p.A0.Cols != p.NT*p.NB) {
		return nil, fmt.Errorf("core: f32 factorization payload without a %d×%d original matrix", p.NT*p.NB, p.NT*p.NB)
	}

	ta := tile.New(p.MT, p.NT, p.NB)
	for i := 0; i < p.MT; i++ {
		for j := 0; j < p.NT; j++ {
			copy(ta.Tile(i, j).Data, p.Tiles[(i*p.NT+j)*tb:(i*p.NT+j+1)*tb])
		}
	}

	f := &fact{
		cfg: Config{
			Alg:       Algorithm(p.Alg),
			NB:        p.NB,
			Grid:      tile.Grid{P: p.GridP, Q: p.GridQ},
			Criterion: p.Criterion,
			Scope:     Scope(p.Scope),
			Variant:   LUVariant(p.Variant),
			IntraTree: tree.Tree(p.IntraTree),
			InterTree: tree.Tree(p.InterTree),
			Seed:      p.Seed,
		},
		A:           ta,
		nt:          p.NT,
		nb:          p.NB,
		steps:       make([]*stepState, p.NT),
		diagSolvers: make([]func(b *mat.Matrix), p.NT),
		report: &Report{
			Alg: Algorithm(p.Alg), N: p.N, NB: p.NB, NT: p.NT,
			GridP: p.GridP, GridQ: p.GridQ,
			Decisions: append([]bool(nil), p.Decisions...),
			LUSteps:   p.LUSteps, QRSteps: p.QRSteps,
			Breakdown: p.Breakdown,
			WallTime:  time.Duration(p.WallNS),
			HPL3:      p.HPL3, Growth: p.Growth, PeakGrowth: p.PeakGrowth,
			Precision: Precision(p.Precision),
			F32Steps:  p.F32Steps, Demotions: p.Demotions,
			RefineIters: p.RefineIters,
			MarginMin:   p.MarginMin, MarginMax: p.MarginMax,
		},
	}
	f.cfg.Precision = Precision(p.Precision)
	f.report.StepF32 = make([]bool, p.NT)
	copy(f.report.StepF32, p.StepF32)
	f.report.Margins = make([]float64, p.NT)
	for k := range f.report.Margins {
		f.report.Margins[k] = math.NaN()
	}
	copy(f.report.Margins, p.Margins)
	if len(p.Margins) == 0 {
		// v1 stream: no margin data was recorded, so the summary is NaN (the
		// zero values gob left in MarginMin/MarginMax would read as real 0s).
		f.report.MarginMin, f.report.MarginMax = math.NaN(), math.NaN()
	}
	a0, err := unpackMatrix(p.A0)
	if err != nil {
		return nil, fmt.Errorf("core: original-matrix payload: %w", err)
	}
	f.a0 = a0

	for k := range p.Steps {
		st, err := unpackStep(&p.Steps[k], p.NT)
		if err != nil {
			return nil, fmt.Errorf("core: step %d: %w", k, err)
		}
		st.decision = p.Decisions[k]
		f.steps[k] = st
		// The B variants leave block-triangular factors; reinstall the
		// diagonal solver exactly as submitVariantLUStep does.
		if p.Decisions[k] && Algorithm(p.Alg) == LUQR {
			f.installDiagSolver(st)
		}
	}

	return &Result{X: p.X, Factored: ta, Report: f.report, f: f}, nil
}

// unpackStep inverts the facStep packing.
func unpackStep(fs *facStep, nt int) (*stepState, error) {
	st := &stepState{
		k:       fs.K,
		rows:    fs.Rows,
		piv:     fs.Piv,
		variant: LUVariant(fs.Variant),
	}
	var err error
	if st.stack, err = unpackMatrix(fs.Stack); err != nil {
		return nil, err
	}
	if len(fs.TGeqrt) > 0 || len(fs.TKill) > 0 {
		st.tGeqrt = make(map[int]*mat.Matrix, len(fs.TGeqrt))
		st.tKill = make(map[int]*mat.Matrix, len(fs.TKill))
		for _, kv := range fs.TGeqrt {
			if st.tGeqrt[kv.I], err = unpackMatrix(kv.M); err != nil {
				return nil, err
			}
		}
		for _, kv := range fs.TKill {
			if st.tKill[kv.I], err = unpackMatrix(kv.M); err != nil {
				return nil, err
			}
		}
	}
	if fs.HasInc {
		is := &incState{l: make([]*mat.Matrix, nt), piv: make([][]int, nt)}
		if is.l0, err = unpackMatrix(fs.Inc.L0); err != nil {
			return nil, err
		}
		if fs.K < 0 || fs.K >= nt {
			return nil, fmt.Errorf("step index %d out of range", fs.K)
		}
		is.piv[fs.K] = fs.Inc.PivK
		for _, kv := range fs.Inc.Rows {
			if kv.I < 0 || kv.I >= nt {
				return nil, fmt.Errorf("incpiv row %d out of range", kv.I)
			}
			if is.l[kv.I], err = unpackMatrix(kv.M); err != nil {
				return nil, err
			}
			is.piv[kv.I] = kv.Piv
		}
		st.inc = is
	}
	if fs.HasHLU {
		hs := &hluState{
			headPiv: make([][]int, nt),
			headL:   make([]*mat.Matrix, nt),
			pairs:   make([]*pairLU, nt),
		}
		for _, op := range fs.HLU.Ops {
			hs.ops = append(hs.ops, tree.Op{Kind: tree.Kind(op.Kind), I: op.I, Piv: op.Piv})
		}
		for _, kv := range fs.HLU.Heads {
			if kv.I < 0 || kv.I >= nt {
				return nil, fmt.Errorf("hlu head row %d out of range", kv.I)
			}
			if hs.headL[kv.I], err = unpackMatrix(kv.M); err != nil {
				return nil, err
			}
			hs.headPiv[kv.I] = kv.Piv
		}
		for _, kv := range fs.HLU.Pairs {
			if kv.I < 0 || kv.I >= nt {
				return nil, fmt.Errorf("hlu pair row %d out of range", kv.I)
			}
			s, err := unpackMatrix(kv.M)
			if err != nil {
				return nil, err
			}
			hs.pairs[kv.I] = &pairLU{s: s, piv: kv.Piv}
		}
		st.hlu = hs
	}
	return st, nil
}

// installDiagSolver recreates the stored block-LU diagonal solver of a
// decoded (B1)/(B2) LU step — the same closures submitVariantLUStep installs
// during a live factorization.
func (f *fact) installDiagSolver(st *stepState) {
	k := st.k
	switch st.variant {
	case VarB1:
		f.diagSolvers[k] = func(b *mat.Matrix) {
			lapack.Getrs(blas.NoTrans, f.A.Tile(k, k), st.piv, b)
		}
	case VarB2:
		t := st.tGeqrt[k]
		f.diagSolvers[k] = func(b *mat.Matrix) {
			lapack.Unmqr(blas.Trans, f.A.Tile(k, k), t, b)
			blas.Trsm(blas.Left, blas.Upper, blas.NoTrans, blas.NonUnit, 1, f.A.Tile(k, k), b)
		}
	}
}
