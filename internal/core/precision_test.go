package core

import (
	"math"
	"math/rand"
	"testing"

	"luqr/internal/criteria"
	"luqr/internal/mat"
	"luqr/internal/matgen"
	"luqr/internal/tile"
)

func TestParsePrecision(t *testing.T) {
	for _, p := range []Precision{PrecisionF64, PrecisionAuto, PrecisionF32} {
		got, err := ParsePrecision(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePrecision(%q) = %v, %v", p.String(), got, err)
		}
	}
	if p, err := ParsePrecision(""); err != nil || p != PrecisionF64 {
		t.Fatalf("ParsePrecision(\"\") = %v, %v", p, err)
	}
	if _, err := ParsePrecision("half"); err == nil {
		t.Fatal("ParsePrecision(\"half\") accepted")
	}
}

// TestPrecisionResetForUnsupportedAlgorithms checks withDefaults silently
// falls back to f64 where the precision layer has no kernel coverage.
func TestPrecisionResetForUnsupportedAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	n := 32
	a := matgen.DiagDominant(n, rng)
	b := matgen.RandomVector(n, rng)
	for _, alg := range []Algorithm{LUIncPiv, CALU, HLU} {
		res := runOn(t, a, b, Config{Alg: alg, NB: 16, Precision: PrecisionF32})
		if res.Report.Precision != PrecisionF64 || res.Report.F32Steps != 0 {
			t.Fatalf("%v: precision not reset (prec=%v, f32 steps=%d)", alg, res.Report.Precision, res.Report.F32Steps)
		}
	}
	res := runOn(t, a, b, Config{Alg: LUQR, NB: 16, Variant: VarB1, Precision: PrecisionF32})
	if res.Report.Precision != PrecisionF64 {
		t.Fatalf("LUQR (B1): precision not reset, got %v", res.Report.Precision)
	}
}

// TestForcedF32RefinesToTolerance forces every kernel through the float32
// path and checks the refined solve lands inside the HPL acceptance band —
// the raw f32 solution sits many orders of magnitude above it, so passing
// proves both that f32 kernels ran and that refinement recovered the
// accuracy.
func TestForcedF32RefinesToTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	n := 96
	b := matgen.RandomVector(n, rng)
	for _, alg := range []Algorithm{LUQR, LUNoPiv, LUPP, HQR} {
		a := matgen.DiagDominant(n, rng)
		res := runOn(t, a, b, Config{Alg: alg, NB: 16, Grid: tile.NewGrid(2, 2), Precision: PrecisionF32})
		r := res.Report
		if r.Precision != PrecisionF32 {
			t.Fatalf("%v: report precision = %v", alg, r.Precision)
		}
		if r.F32Steps == 0 {
			t.Fatalf("%v: no f32 steps under PrecisionF32 (demotions=%d)", alg, r.Demotions)
		}
		if r.RefineIters == 0 {
			t.Fatalf("%v: f32 run performed no refinement", alg)
		}
		if math.IsNaN(r.HPL3) || r.HPL3 > refineHPL3Tol {
			t.Fatalf("%v: refined HPL3 = %g > %g (f32 steps=%d, iters=%d)", alg, r.HPL3, refineHPL3Tol, r.F32Steps, r.RefineIters)
		}
	}
}

// TestAutoSelectsF32OnComfortableMargins runs the hybrid in auto mode on a
// diagonally dominant system, where the criterion margin is far below the
// threshold: the LU steps must pick up float32 kernels, the margins must be
// recorded, and the solution must stay in the acceptance band.
func TestAutoSelectsF32OnComfortableMargins(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	n := 96
	a := matgen.DiagDominant(n, rng)
	b := matgen.RandomVector(n, rng)
	res := runOn(t, a, b, Config{
		Alg: LUQR, NB: 16, Criterion: criteria.Max{Alpha: 10000},
		Precision: PrecisionAuto,
	})
	r := res.Report
	if r.F32Steps == 0 {
		t.Fatalf("auto mode picked no f32 steps (margins=%v)", r.Margins)
	}
	count := 0
	for k, f32 := range r.StepF32 {
		if f32 {
			count++
			if !(r.Margins[k] <= DefaultF32Margin) {
				t.Fatalf("step %d ran f32 with margin %g > %g", k, r.Margins[k], DefaultF32Margin)
			}
			if !r.Decisions[k] {
				t.Fatalf("step %d ran f32 on a QR decision in auto mode", k)
			}
		}
	}
	if count != r.F32Steps {
		t.Fatalf("StepF32 count %d != F32Steps %d", count, r.F32Steps)
	}
	if math.IsNaN(r.MarginMin) || math.IsNaN(r.MarginMax) || r.MarginMin > r.MarginMax {
		t.Fatalf("margin summary broken: min=%g max=%g", r.MarginMin, r.MarginMax)
	}
	if math.IsNaN(r.HPL3) || r.HPL3 > refineHPL3Tol {
		t.Fatalf("auto HPL3 = %g > %g", r.HPL3, refineHPL3Tol)
	}
}

// TestMixedAutoWithin10xOfF64 is the accuracy property of the mixed path:
// over well- and ill-conditioned matrix classes, auto mode plus refinement
// must land within 10× of the pure-f64 backward error or inside the HPL
// acceptance band (refinement's declared target), whichever is looser. On
// the ill-conditioned classes the criterion margin is uncomfortable and
// auto quietly stays at f64 — that retreat is part of the property.
func TestMixedAutoWithin10xOfF64(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	n := 64
	gens := map[string]*mat.Matrix{
		"diagdom":      matgen.DiagDominant(n, rng),
		"random":       matgen.Random(n, rng),
		"randsvd-1e10": matgen.RandSVD(n, 1e10, matgen.SigmaGeometric, rng),
		"foster":       matgen.Foster(n),
		"condex":       matgen.Condex(n),
		"fiedler":      matgen.Fiedler(n),
	}
	for name, a := range gens {
		b := matgen.RandomVector(n, rng)
		cfg := Config{Alg: LUQR, NB: 16, Criterion: criteria.Max{Alpha: 100}}
		ref := runOn(t, a, b, cfg)
		cfg.Precision = PrecisionAuto
		mixed := runOn(t, a, b, cfg)
		limit := math.Max(10*ref.Report.HPL3, refineHPL3Tol)
		if math.IsNaN(mixed.Report.HPL3) || mixed.Report.HPL3 > limit {
			t.Errorf("%s: mixed HPL3 = %g vs f64 %g (limit %g, f32 steps=%d, demotions=%d)",
				name, mixed.Report.HPL3, ref.Report.HPL3, limit, mixed.Report.F32Steps, mixed.Report.Demotions)
		}
		// No accepted excursion may survive in the factors.
		for i := 0; i < mixed.Factored.MT; i++ {
			for j := 0; j < mixed.Factored.NT; j++ {
				if v := mixed.Factored.Tile(i, j).NormMax(); math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s: non-finite factor tile (%d,%d)", name, i, j)
				}
			}
		}
	}
}

// TestF32ExcursionDemotes feeds the forced-f32 path a matrix whose entries
// overflow float32 outright: every f32 kernel must detect the excursion,
// demote to f64, and the run must come out as accurate as pure f64 — the
// zero-accepted-excursions guarantee at its most extreme.
func TestF32ExcursionDemotes(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	n := 48
	a := matgen.DiagDominant(n, rng)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, a.At(i, j)*1e200) // well past float32 overflow
		}
	}
	xTrue := matgen.RandomVector(n, rng)
	b := mat.MulVec(a, xTrue)
	res := runOn(t, a, b, Config{Alg: LUQR, NB: 16, Precision: PrecisionF32})
	r := res.Report
	if r.Demotions == 0 {
		t.Fatal("no demotions on a float32-overflowing matrix")
	}
	if r.F32Steps != 0 {
		t.Fatalf("%d steps kept their f32 flag after panel overflow", r.F32Steps)
	}
	if math.IsNaN(r.HPL3) || r.HPL3 > 50 {
		t.Fatalf("demoted run HPL3 = %g", r.HPL3)
	}
	for i := range xTrue {
		if math.Abs(res.X[i]-xTrue[i]) > 1e-6*(1+math.Abs(xTrue[i])) {
			t.Fatalf("x[%d] = %g, want %g", i, res.X[i], xTrue[i])
		}
	}
}

// TestSolveBatchRefinedNewRHS factors once at forced f32 and solves fresh
// right-hand sides: SolveBatchRefined must refine each column into the
// acceptance band, and SolveBatch must return exactly the refined columns.
func TestSolveBatchRefinedNewRHS(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	n := 80
	a := matgen.DiagDominant(n, rng)
	b := matgen.RandomVector(n, rng)
	res := runOn(t, a, b, Config{Alg: LUQR, NB: 16, Precision: PrecisionF32})
	if res.Report.F32Steps == 0 {
		t.Fatal("no f32 steps to exercise the refined solve")
	}
	bs := [][]float64{matgen.RandomVector(n, rng), matgen.RandomVector(n, rng), matgen.RandomVector(n, rng)}
	xs, iters, err := res.SolveBatchRefined(bs)
	if err != nil {
		t.Fatal(err)
	}
	if iters == 0 {
		t.Fatal("SolveBatchRefined did no refinement on an f32 factorization")
	}
	for j := range xs {
		if h := mat.HPL3(a, xs[j], bs[j]); math.IsNaN(h) || h > refineHPL3Tol {
			t.Fatalf("column %d: refined HPL3 = %g > %g", j, h, refineHPL3Tol)
		}
	}
	xs2, err := res.SolveBatch(bs)
	if err != nil {
		t.Fatal(err)
	}
	for j := range xs2 {
		for i := range xs2[j] {
			if xs2[j][i] != xs[j][i] {
				t.Fatalf("SolveBatch diverges from SolveBatchRefined at (%d,%d)", j, i)
			}
		}
	}
}

// TestMixedPaddedSystem checks the precision layer composes with the
// §II-D.2 padding path (N not a multiple of NB).
func TestMixedPaddedSystem(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	n := 75 // pads to 80 with NB=16
	a := matgen.DiagDominant(n, rng)
	b := matgen.RandomVector(n, rng)
	res := runOn(t, a, b, Config{Alg: LUQR, NB: 16, Precision: PrecisionF32})
	if res.Report.F32Steps == 0 {
		t.Fatal("padded run took no f32 steps")
	}
	if math.IsNaN(res.Report.HPL3) || res.Report.HPL3 > refineHPL3Tol {
		t.Fatalf("padded mixed HPL3 = %g", res.Report.HPL3)
	}
	x2, err := res.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if h := mat.HPL3(a, x2, b); math.IsNaN(h) || h > refineHPL3Tol {
		t.Fatalf("padded refined re-solve HPL3 = %g", h)
	}
}
