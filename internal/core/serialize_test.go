package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"math"
	"math/rand"
	"strings"
	"testing"

	"luqr/internal/criteria"
	"luqr/internal/mat"
	"luqr/internal/matgen"
	"luqr/internal/tile"
)

// roundTrip encodes res, decodes the stream, and fails the test on any
// divergence in the carried solution or report scalars.
func roundTrip(t *testing.T, res *Result) *Result {
	t.Helper()
	data, err := res.EncodeFactorization()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeFactorization(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got.X) != len(res.X) {
		t.Fatalf("decoded X has length %d, want %d", len(got.X), len(res.X))
	}
	for i := range res.X {
		if got.X[i] != res.X[i] {
			t.Fatalf("decoded X[%d] = %g, want %g", i, got.X[i], res.X[i])
		}
	}
	r1, r2 := res.Report, got.Report
	if r2.N != r1.N || r2.NB != r1.NB || r2.NT != r1.NT || r2.LUSteps != r1.LUSteps ||
		r2.QRSteps != r1.QRSteps || r2.Breakdown != r1.Breakdown ||
		r2.HPL3 != r1.HPL3 || r2.Growth != r1.Growth {
		t.Fatalf("decoded report %+v diverges from %+v", r2, r1)
	}
	if len(r2.Decisions) != len(r1.Decisions) {
		t.Fatalf("decoded %d decisions, want %d", len(r2.Decisions), len(r1.Decisions))
	}
	for k := range r1.Decisions {
		if r2.Decisions[k] != r1.Decisions[k] {
			t.Fatalf("decoded decision[%d] = %v, want %v", k, r2.Decisions[k], r1.Decisions[k])
		}
	}
	return got
}

// assertReplaysIdentically drives both Results through Solve and SolveBatch
// on fresh right-hand sides and demands bit-identical solutions — the
// contract a warm-loaded service cache entry must honor.
func assertReplaysIdentically(t *testing.T, want, got *Result, n int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b1 := matgen.RandomVector(n, rng)
	x1, err := want.Solve(b1)
	if err != nil {
		t.Fatalf("original Solve: %v", err)
	}
	x2, err := got.Solve(b1)
	if err != nil {
		t.Fatalf("decoded Solve: %v", err)
	}
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("Solve diverges at x[%d]: %g vs %g", i, x1[i], x2[i])
		}
	}
	bs := [][]float64{matgen.RandomVector(n, rng), matgen.RandomVector(n, rng), matgen.RandomVector(n, rng)}
	xs1, err := want.SolveBatch(bs)
	if err != nil {
		t.Fatalf("original SolveBatch: %v", err)
	}
	xs2, err := got.SolveBatch(bs)
	if err != nil {
		t.Fatalf("decoded SolveBatch: %v", err)
	}
	for j := range xs1 {
		for i := range xs1[j] {
			if xs1[j][i] != xs2[j][i] {
				t.Fatalf("SolveBatch diverges at x[%d][%d]: %g vs %g", j, i, xs1[j][i], xs2[j][i])
			}
		}
	}
}

// TestSerializeRoundTripAllAlgorithms: every algorithm's replay state must
// survive encode/decode bit-identically. The LUQR entries force mixed LU/QR
// decision sequences (including pure-QR via alpha 0), and the grid entries
// exercise multi-domain panels.
func TestSerializeRoundTripAllAlgorithms(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"lunopiv", Config{Alg: LUNoPiv, NB: 16}},
		{"lupp", Config{Alg: LUPP, NB: 16, Grid: tile.NewGrid(2, 2)}},
		{"luincpiv", Config{Alg: LUIncPiv, NB: 16}},
		{"hqr", Config{Alg: HQR, NB: 16, Grid: tile.NewGrid(2, 1)}},
		{"calu", Config{Alg: CALU, NB: 16, Grid: tile.NewGrid(2, 1)}},
		{"hlu", Config{Alg: HLU, NB: 16, Grid: tile.NewGrid(2, 1)}},
		{"luqr-a1", Config{Alg: LUQR, NB: 16, Grid: tile.NewGrid(2, 2), Criterion: criteria.Max{Alpha: 1.5}}},
		{"luqr-a1-pure-qr", Config{Alg: LUQR, NB: 16, Criterion: criteria.Max{Alpha: 0}}},
		{"luqr-a2", Config{Alg: LUQR, NB: 16, Variant: VarA2, Criterion: criteria.Max{Alpha: 2}}},
		{"luqr-b1", Config{Alg: LUQR, NB: 16, Variant: VarB1, Criterion: criteria.Max{Alpha: 2}}},
		{"luqr-b2", Config{Alg: LUQR, NB: 16, Variant: VarB2, Criterion: criteria.Max{Alpha: 2}}},
		{"luqr-random", Config{Alg: LUQR, NB: 16, Criterion: criteria.Random{Alpha: 50}, Seed: 11}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n := 64
			rng := rand.New(rand.NewSource(77))
			a := matgen.Random(n, rng)
			b := matgen.RandomVector(n, rng)
			res := runOn(t, a, b, tc.cfg)
			got := roundTrip(t, res)
			assertReplaysIdentically(t, res, got, n, 400)
		})
	}
}

// TestSerializeRoundTripPadded: a system whose order is not a tile multiple
// is padded internally (§II-D.2); the decoded Result must keep solving at
// the original order.
func TestSerializeRoundTripPadded(t *testing.T) {
	n := 50 // NB defaults to 40 → padded to 80
	rng := rand.New(rand.NewSource(78))
	a := matgen.Random(n, rng)
	b := matgen.RandomVector(n, rng)
	res, err := Run(a, b, Config{Alg: LUQR, Criterion: criteria.Max{Alpha: 100}})
	if err != nil {
		t.Fatal(err)
	}
	got := roundTrip(t, res)
	if got.Report.N != n {
		t.Fatalf("decoded Report.N = %d, want %d", got.Report.N, n)
	}
	assertReplaysIdentically(t, res, got, n, 401)
}

// TestSerializeRejectsDamage: every class of on-disk damage — truncation,
// bad magic, version skew, and payload corruption — must fail decoding with
// a descriptive error, never a wrong Result.
func TestSerializeRejectsDamage(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	n := 32
	a := matgen.Random(n, rng)
	b := matgen.RandomVector(n, rng)
	res := runOn(t, a, b, Config{Alg: LUNoPiv, NB: 16})
	data, err := res.EncodeFactorization()
	if err != nil {
		t.Fatal(err)
	}

	damage := []struct {
		name    string
		mutate  func([]byte) []byte
		wantSub string
	}{
		{"empty", func(d []byte) []byte { return nil }, "truncated"},
		{"header-only", func(d []byte) []byte { return d[:20] }, "truncated"},
		{"truncated-payload", func(d []byte) []byte { return d[:len(d)-7] }, "truncated"},
		{"bad-magic", func(d []byte) []byte {
			d[0] = 'X'
			return d
		}, "bad magic"},
		{"version-skew", func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[8:12], factEncodingVersion+1)
			return d
		}, "version skew"},
		{"flipped-payload-byte", func(d []byte) []byte {
			d[len(d)-1] ^= 0x40
			return d
		}, "checksum"},
		{"flipped-checksum-byte", func(d []byte) []byte {
			d[24] ^= 0x01
			return d
		}, "checksum"},
	}
	for _, tc := range damage {
		t.Run(tc.name, func(t *testing.T) {
			d := tc.mutate(append([]byte(nil), data...))
			if _, err := DecodeFactorization(d); err == nil {
				t.Fatal("decode accepted damaged stream")
			} else if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}

	// The undamaged copy still decodes after all that slicing around.
	if _, err := DecodeFactorization(data); err != nil {
		t.Fatalf("pristine stream rejected: %v", err)
	}
}

// TestSerializeDeterministic: encoding the same Result twice yields the same
// bytes — map iteration order and other nondeterminism must not leak into
// the stream (the service stores and checksums these files).
func TestSerializeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	n := 64
	a := matgen.Random(n, rng)
	b := matgen.RandomVector(n, rng)
	// HQR has the richest reflector maps (tGeqrt + tKill per step).
	res := runOn(t, a, b, Config{Alg: HQR, NB: 16, Grid: tile.NewGrid(2, 1)})
	d1, err := res.EncodeFactorization()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := res.EncodeFactorization()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1, d2) {
		t.Fatal("two encodings of one Result differ")
	}
}

// TestSerializeCriterionSurvives: the decoded config carries the criterion
// (type and threshold), which the service reports in job views.
func TestSerializeCriterionSurvives(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	n := 32
	a := matgen.Random(n, rng)
	b := matgen.RandomVector(n, rng)
	res := runOn(t, a, b, Config{Alg: LUQR, NB: 16, Criterion: criteria.Sum{Alpha: 7.5}})
	got := roundTrip(t, res)
	c, ok := got.f.cfg.Criterion.(criteria.Sum)
	if !ok {
		t.Fatalf("decoded criterion has type %T, want criteria.Sum", got.f.cfg.Criterion)
	}
	if c.Alpha != 7.5 {
		t.Fatalf("decoded alpha = %g, want 7.5", c.Alpha)
	}
}

// TestSerializeResultWithoutState: a Result that carries no factorization
// state (never produced by Run, but constructible) must refuse to encode.
func TestSerializeResultWithoutState(t *testing.T) {
	if _, err := (&Result{X: []float64{1}}).EncodeFactorization(); err == nil {
		t.Fatal("encode of a state-less Result succeeded")
	}
}

// TestSerializeRefineWorks: the decoded factorization also backs iterative
// refinement (it goes through Solve).
func TestSerializeRefineWorks(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	n := 32
	a := matgen.Random(n, rng)
	xTrue := matgen.RandomVector(n, rng)
	b := mat.MulVec(a, xTrue)
	res := runOn(t, a, b, Config{Alg: LUPP, NB: 16})
	got := roundTrip(t, res)
	refined, err := got.Refine(a, b, got.X, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(refined) != n {
		t.Fatalf("refined solution has length %d, want %d", len(refined), n)
	}
}

// rebuildStream reassembles a wire stream around a raw gob payload with the
// given header version — the test-side counterpart of EncodeFactorization's
// framing, for crafting legacy and hand-damaged payloads.
func rebuildStream(version uint32, payload []byte) []byte {
	sum := sha256.Sum256(payload)
	out := bytes.NewBuffer(make([]byte, 0, factHeaderLen+len(payload)))
	out.Write(factMagic[:])
	binary.Write(out, binary.LittleEndian, version)
	binary.Write(out, binary.LittleEndian, uint64(len(payload)))
	out.Write(sum[:])
	out.Write(payload)
	return out.Bytes()
}

// TestSerializeMixedPrecisionRoundTrip: an f32 factorization's precision
// state — mode, per-step flags, margins, demotions, and the retained
// original matrix that feeds refinement — must survive encode/decode, and
// the reloaded Result must still refine fresh right-hand sides into the
// acceptance band (the service restart scenario).
func TestSerializeMixedPrecisionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	n := 64
	a := matgen.DiagDominant(n, rng)
	b := matgen.RandomVector(n, rng)
	res := runOn(t, a, b, Config{Alg: LUQR, NB: 16, Precision: PrecisionF32, Criterion: criteria.Max{Alpha: 100}})
	if res.Report.F32Steps == 0 {
		t.Fatal("run accepted no f32 steps; nothing to round-trip")
	}
	got := roundTrip(t, res)
	r1, r2 := res.Report, got.Report
	if r2.Precision != r1.Precision || r2.F32Steps != r1.F32Steps ||
		r2.Demotions != r1.Demotions || r2.RefineIters != r1.RefineIters {
		t.Fatalf("precision scalars diverge: %v/%d/%d/%d vs %v/%d/%d/%d",
			r2.Precision, r2.F32Steps, r2.Demotions, r2.RefineIters,
			r1.Precision, r1.F32Steps, r1.Demotions, r1.RefineIters)
	}
	for k := range r1.StepF32 {
		if r2.StepF32[k] != r1.StepF32[k] {
			t.Fatalf("StepF32[%d] diverges", k)
		}
		m1, m2 := r1.Margins[k], r2.Margins[k]
		if m1 != m2 && !(math.IsNaN(m1) && math.IsNaN(m2)) {
			t.Fatalf("Margins[%d] = %g, want %g", k, m2, m1)
		}
	}
	if got.f.a0 == nil {
		t.Fatal("decoded f32 factorization lost the original matrix")
	}
	assertReplaysIdentically(t, res, got, n, 402)
	bs := [][]float64{matgen.RandomVector(n, rng)}
	xs, iters, err := got.SolveBatchRefined(bs)
	if err != nil {
		t.Fatal(err)
	}
	if iters == 0 {
		t.Fatal("reloaded f32 factorization did not refine")
	}
	if h := mat.HPL3(a, xs[0], bs[0]); math.IsNaN(h) || h > refineHPL3Tol {
		t.Fatalf("reloaded refined HPL3 = %g > %g", h, refineHPL3Tol)
	}
}

// facPayloadV1 is the exact field set of the v1 payload, used to fabricate
// genuine legacy streams (gob matches struct fields by name, so encoding
// this subset reproduces what a v1 build wrote).
type facPayloadV1 struct {
	Alg       int
	NB        int
	GridP     int
	GridQ     int
	Scope     int
	Variant   int
	IntraTree int
	InterTree int
	Seed      int64
	Criterion criteria.Criterion

	MT, NT int
	Tiles  []float64

	Decisions []bool
	Steps     []facStep

	N          int
	LUSteps    int
	QRSteps    int
	Breakdown  bool
	WallNS     int64
	HPL3       float64
	Growth     float64
	PeakGrowth float64

	X []float64
}

// TestSerializeV1Migration: a v1 stream (no precision fields) must decode as
// a pure-f64 factorization — precision f64, no f32 steps, NaN margins — and
// replay bit-identically to the live Result it mirrors.
func TestSerializeV1Migration(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	n := 64
	a := matgen.Random(n, rng)
	b := matgen.RandomVector(n, rng)
	res := runOn(t, a, b, Config{Alg: LUQR, NB: 16, Grid: tile.NewGrid(2, 1), Criterion: criteria.Max{Alpha: 1.5}})
	data, err := res.EncodeFactorization()
	if err != nil {
		t.Fatal(err)
	}
	var p facPayload
	if err := gob.NewDecoder(bytes.NewReader(data[factHeaderLen:])).Decode(&p); err != nil {
		t.Fatal(err)
	}
	v1 := facPayloadV1{
		Alg: p.Alg, NB: p.NB, GridP: p.GridP, GridQ: p.GridQ,
		Scope: p.Scope, Variant: p.Variant, IntraTree: p.IntraTree, InterTree: p.InterTree,
		Seed: p.Seed, Criterion: p.Criterion,
		MT: p.MT, NT: p.NT, Tiles: p.Tiles,
		Decisions: p.Decisions, Steps: p.Steps,
		N: p.N, LUSteps: p.LUSteps, QRSteps: p.QRSteps, Breakdown: p.Breakdown,
		WallNS: p.WallNS, HPL3: p.HPL3, Growth: p.Growth, PeakGrowth: p.PeakGrowth,
		X: p.X,
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&v1); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFactorization(rebuildStream(1, payload.Bytes()))
	if err != nil {
		t.Fatalf("v1 stream rejected: %v", err)
	}
	r := got.Report
	if r.Precision != PrecisionF64 || r.F32Steps != 0 || r.Demotions != 0 || r.RefineIters != 0 {
		t.Fatalf("v1 migration not pure-f64: prec=%v f32=%d dem=%d ref=%d", r.Precision, r.F32Steps, r.Demotions, r.RefineIters)
	}
	if len(r.StepF32) != r.NT || len(r.Margins) != r.NT {
		t.Fatalf("v1 migration slices: %d f32 flags, %d margins for nt=%d", len(r.StepF32), len(r.Margins), r.NT)
	}
	for k := range r.StepF32 {
		if r.StepF32[k] || !math.IsNaN(r.Margins[k]) {
			t.Fatalf("v1 step %d migrated with f32=%v margin=%g", k, r.StepF32[k], r.Margins[k])
		}
	}
	if !math.IsNaN(r.MarginMin) || !math.IsNaN(r.MarginMax) {
		t.Fatalf("v1 margin summary = [%g, %g], want NaNs", r.MarginMin, r.MarginMax)
	}
	assertReplaysIdentically(t, res, got, n, 403)
}

// TestSerializeRejectsF32WithoutA0: a stream claiming f32 steps but missing
// the original matrix cannot honor refined solves and must be rejected.
func TestSerializeRejectsF32WithoutA0(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	n := 48
	a := matgen.DiagDominant(n, rng)
	b := matgen.RandomVector(n, rng)
	res := runOn(t, a, b, Config{Alg: LUNoPiv, NB: 16, Precision: PrecisionF32})
	if res.Report.F32Steps == 0 {
		t.Fatal("run accepted no f32 steps")
	}
	data, err := res.EncodeFactorization()
	if err != nil {
		t.Fatal(err)
	}
	var p facPayload
	if err := gob.NewDecoder(bytes.NewReader(data[factHeaderLen:])).Decode(&p); err != nil {
		t.Fatal(err)
	}
	p.A0 = facMatrix{}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&p); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeFactorization(rebuildStream(factEncodingVersion, payload.Bytes())); err == nil {
		t.Fatal("decode accepted an f32 stream without the original matrix")
	} else if !strings.Contains(err.Error(), "original matrix") {
		t.Fatalf("error %q does not mention the missing original matrix", err)
	}
}
