package core

import (
	"encoding/gob"
	"math"
	"math/rand"
	"testing"

	"luqr/internal/criteria"
	"luqr/internal/matgen"
)

func init() {
	gob.Register(flipCriterion{}) // so serialized configs round-trip in tests
}

// flipCriterion takes an LU step everywhere but alternates the reported
// margin between maximally comfortable and merely passing, so an auto-
// precision run flips float32 → float64 → float32 mid-factorization: every
// resident tile is demoted at each odd step and re-promoted at the next even
// one — real epoch boundaries, not just one epoch per run.
type flipCriterion struct{}

func (flipCriterion) Name() string { return "flip" }

func (flipCriterion) Decide(in *criteria.Input) bool {
	if in.Step%2 == 0 {
		in.Margin = 0 // comfortable: licenses float32 for the step
	} else {
		in.Margin = 1 // LU step, but no float32 license
	}
	return true
}

// withResidencyOff runs fn with the residency store disabled (the per-task
// round/widen conversion path of the pre-resident implementation).
func withResidencyOff(fn func()) {
	residencyOff = true
	defer func() { residencyOff = false }()
	fn()
}

// expectTilesBitEqual asserts every factored tile of got equals want
// bit for bit.
func expectTilesBitEqual(t *testing.T, label string, got, want *Result) {
	t.Helper()
	for i := 0; i < want.Factored.MT; i++ {
		for j := 0; j < want.Factored.NT; j++ {
			g, w := got.Factored.Tile(i, j), want.Factored.Tile(i, j)
			for r := 0; r < w.Rows; r++ {
				for c := 0; c < w.Cols; c++ {
					a, b := g.At(r, c), w.At(r, c)
					if a != b && !(a != a && b != b) {
						t.Fatalf("%s: tile (%d,%d) entry (%d,%d): %v != %v", label, i, j, r, c, a, b)
					}
				}
			}
		}
	}
}

// TestEpochRoundTripMatchesPerTaskPath is the resident path's exactness
// contract on its accepted branch: a run with float32 epochs opened and
// closed mid-factorization (f32 → f64 → f32 flips) must produce factors
// pointwise equal to the per-task round/widen path — bit-identical, except
// for entries a float32 kernel passes through untouched (the unit row of a
// triangular solve, say), which the per-task path leaves at float64 while
// tile promotion rounds them with the rest of the tile. Those may differ by
// exactly one float32 rounding and nothing more; any resident kernel that
// diverges from its converting sibling, or any epoch demotion that loses
// bits, breaks the relation.
func TestEpochRoundTripMatchesPerTaskPath(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	n := 96
	a := matgen.DiagDominant(n, rng)
	b := matgen.RandomVector(n, rng)
	cfg := Config{Alg: LUQR, NB: 16, Criterion: flipCriterion{}, Precision: PrecisionAuto}

	var ref *Result
	withResidencyOff(func() { ref = runOn(t, a, b, cfg) })
	res := runOn(t, a, b, cfg)

	// The schedule must actually flip: f32 steps interleaved with f64 ones.
	if res.Report.F32Steps == 0 || res.Report.F32Steps == res.Report.NT {
		t.Fatalf("no precision flips: %d f32 steps of %d", res.Report.F32Steps, res.Report.NT)
	}
	if res.Report.F32Steps != ref.Report.F32Steps {
		t.Fatalf("paths disagree on f32 steps: resident %d, per-task %d", res.Report.F32Steps, ref.Report.F32Steps)
	}
	if res.Report.Demotions != 0 || ref.Report.Demotions != 0 {
		t.Fatalf("unexpected excursion demotions (resident %d, per-task %d)", res.Report.Demotions, ref.Report.Demotions)
	}
	// Epoch accounting: tiles entered residency, conversions ran, and the
	// per-task path reports none of either.
	if res.Report.F32Epochs == 0 || res.Report.Conversions == 0 {
		t.Fatalf("resident run recorded no epochs/conversions: %+d/%+d", res.Report.F32Epochs, res.Report.Conversions)
	}
	if ref.Report.F32Epochs != 0 || ref.Report.Conversions != 0 {
		t.Fatalf("per-task path recorded residency counters: %d/%d", ref.Report.F32Epochs, ref.Report.Conversions)
	}

	exact, rounded := 0, 0
	for i := 0; i < ref.Factored.MT; i++ {
		for j := 0; j < ref.Factored.NT; j++ {
			g, w := res.Factored.Tile(i, j), ref.Factored.Tile(i, j)
			for r := 0; r < w.Rows; r++ {
				for c := 0; c < w.Cols; c++ {
					a, b := g.At(r, c), w.At(r, c)
					switch {
					case a == b:
						exact++
					case a == float64(float32(b)):
						rounded++
					default:
						t.Fatalf("tile (%d,%d) entry (%d,%d): resident %v is neither per-task %v nor its f32 rounding %v",
							i, j, r, c, a, b, float64(float32(b)))
					}
				}
			}
		}
	}
	if exact == 0 {
		t.Fatal("no bit-identical entries at all — resident path is not tracking the per-task path")
	}
	t.Logf("entries: %d bit-identical, %d one-rounding-apart", exact, rounded)
	if math.IsNaN(res.Report.HPL3) || res.Report.HPL3 > refineHPL3Tol {
		t.Fatalf("resident flip run HPL3 = %g > %g", res.Report.HPL3, refineHPL3Tol)
	}
}

// TestAllDemoteBitIdenticalToPureF64 is the contract's rejected branch: on a
// matrix whose entries overflow float32, every resident task promotes its
// tiles, fails the excursion scan, rolls the images back and re-runs at
// float64 — and the factors must come out bit-identical to a pure-f64 run,
// across repeated promote/discard epochs.
func TestAllDemoteBitIdenticalToPureF64(t *testing.T) {
	rng := rand.New(rand.NewSource(58))
	n := 64
	b := matgen.RandomVector(n, rng)
	for _, alg := range []Algorithm{HQR, LUQR} {
		a := matgen.DiagDominant(n, rng)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, a.At(i, j)*1e200) // far past float32 overflow
			}
		}
		ref := runOn(t, a, b, Config{Alg: alg, NB: 16})
		res := runOn(t, a, b, Config{Alg: alg, NB: 16, Precision: PrecisionF32})
		if res.Report.Demotions == 0 {
			t.Fatalf("%v: no demotions on a float32-overflowing matrix", alg)
		}
		if alg == HQR {
			// HQR keeps the step f32 flags, so every task individually
			// promotes, rejects and demotes — the counters must show it.
			if res.Report.F32Epochs == 0 || res.Report.Conversions == 0 {
				t.Fatalf("HQR: demoting run recorded no epochs/conversions: %d/%d",
					res.Report.F32Epochs, res.Report.Conversions)
			}
		}
		expectTilesBitEqual(t, alg.String(), res, ref)
	}
}

// TestWarmRestartReplayWithEpochs serializes an epoch-bearing factorization,
// restores it, and replays a fresh right-hand side: the stored factors are
// pure float64 (the run flushed every image before serialization), so the
// replayed solve must be bit-identical to the live Result's.
func TestWarmRestartReplayWithEpochs(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	n := 96
	a := matgen.DiagDominant(n, rng)
	b := matgen.RandomVector(n, rng)
	res := runOn(t, a, b, Config{Alg: LUQR, NB: 16, Criterion: flipCriterion{}, Precision: PrecisionAuto})
	if res.Report.F32Epochs == 0 {
		t.Fatal("run carried no float32 epochs")
	}

	blob, err := res.EncodeFactorization()
	if err != nil {
		t.Fatal(err)
	}
	warm, err := DecodeFactorization(blob)
	if err != nil {
		t.Fatal(err)
	}

	b2 := matgen.RandomVector(n, rng)
	x1, err := res.Solve(b2)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := warm.Solve(b2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x1 {
		if x1[i] != x2[i] && !(x1[i] != x1[i] && x2[i] != x2[i]) {
			t.Fatalf("warm replay diverges at x[%d]: %v != %v", i, x2[i], x1[i])
		}
	}
}
