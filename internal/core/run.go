package core

import (
	"fmt"
	"math"
	"time"

	"luqr/internal/mat"
	"luqr/internal/tile"
)

// Result is the outcome of a Run: the solution, the factored tiled matrix
// (upper triangles hold R/U, lower parts hold eliminator data), and the run
// report.
type Result struct {
	X        []float64
	Factored *tile.Matrix
	Report   *Report

	// f retains the factorization state for Solve/Refine (new right-hand
	// sides via transformation replay, §II-D.1's second-pass alternative).
	f *fact
}

// Run factors A (augmented with the right-hand side b, §II-D.1) with the
// configured algorithm, solves for x, and evaluates the HPL3 backward error
// against the original system. A and b are not modified.
//
// N need not be a multiple of NB: as the paper notes (§II-D.2) the
// restriction is only for simplicity of presentation, and the clean-up here
// pads the system to the next tile boundary with an identity block —
// diag(A, I)·[x; 0] = [b; 0] — which leaves the solution, the backward
// error, and the algorithm's numerical path on the original rows unchanged.
func Run(a *mat.Matrix, b []float64, cfg Config) (*Result, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("core: matrix must be square, got %dx%d", a.Rows, a.Cols)
	}
	if len(b) != a.Rows {
		return nil, fmt.Errorf("core: rhs length %d for N=%d", len(b), a.Rows)
	}
	if cfg.NB <= 0 {
		cfg.NB = 40
		if a.Rows < cfg.NB {
			cfg.NB = a.Rows
		}
	}
	if nb := cfg.NB; a.Rows%nb != 0 {
		padded := (a.Rows/nb + 1) * nb
		ap := mat.Identity(padded)
		ap.View(0, 0, a.Rows, a.Cols).CopyFrom(a)
		bp := make([]float64, padded)
		copy(bp, b)
		res, err := Run(ap, bp, cfg)
		if err != nil {
			return nil, err
		}
		res.X = res.X[:a.Rows]
		res.Report.N = a.Rows
		res.Report.HPL3 = mat.HPL3(a, res.X, b)
		return res, nil
	}
	c, err := cfg.withDefaults(a.Rows)
	if err != nil {
		return nil, err
	}

	ta := tile.FromDense(a, c.NB)
	rhs := tile.VectorFromSlice(b, c.NB)
	maxA0 := a.NormMax()

	f := newFact(c, ta, rhs)
	f.maxA0 = maxA0
	f.f32Bound = 1e8 * math.Max(1, maxA0)
	if c.Precision != PrecisionF64 {
		// The refinement residuals need the original matrix; factors
		// overwrite the tiles, so keep a clone for the run's lifetime.
		f.a0 = a.Clone()
		if !residencyOff {
			// Float32 steps run on resident tile images, converting only at
			// epoch boundaries instead of once per task. f64-effective runs
			// never construct the store, so their path is byte-for-byte the
			// plain one.
			f.res = tile.NewResidency(ta, rhs)
		}
	}
	start := time.Now()
	switch c.Alg {
	case LUQR:
		if c.Variant == VarA1 {
			f.scheduleHybridStep(0)
		} else {
			f.scheduleVariantStep(0)
		}
	case LUNoPiv:
		f.scheduleLU(ScopeTile, false)
	case LUPP:
		f.scheduleLU(ScopeDomain, true)
	case LUIncPiv:
		f.scheduleIncPiv()
	case HQR:
		f.scheduleHQR()
	case CALU:
		f.scheduleCALU()
	case HLU:
		f.scheduleHLU()
	default:
		f.e.Close()
		return nil, fmt.Errorf("core: unknown algorithm %v", c.Alg)
	}
	f.e.Wait()
	if f.res != nil {
		// End the run's last float32 epochs: widen every dirty tile back to
		// float64 before the clock stops, so the epoch-boundary conversion
		// cost is charged to the wall time it belongs to — and so growth,
		// solves and serialization below only ever see float64 tiles.
		f.res.Flush(nil)
		epochs, to32, to64 := f.res.Counters()
		f.report.F32Epochs = int(epochs)
		f.report.Conversions = int(to32 + to64)
		f.report.ConvTime = time.Duration(f.res.ConvNS())
	}
	f.report.WallTime = time.Since(start)
	if c.Trace {
		f.report.Trace = f.e.Trace()
	}
	f.report.Sched = f.e.SchedCounters()
	f.e.Close()

	for _, d := range f.report.Decisions {
		if d {
			f.report.LUSteps++
		} else {
			f.report.QRSteps++
		}
	}
	f.report.Breakdown = f.breakdown
	f.report.Demotions = f.demotions
	for k, st := range f.steps {
		f.report.StepF32[k] = st.f32
		if st.f32 {
			f.report.F32Steps++
		}
	}
	f.report.MarginMin, f.report.MarginMax = math.NaN(), math.NaN()
	for _, m := range f.report.Margins {
		if math.IsNaN(m) || math.IsInf(m, 0) {
			continue
		}
		if math.IsNaN(f.report.MarginMin) || m < f.report.MarginMin {
			f.report.MarginMin = m
		}
		if math.IsNaN(f.report.MarginMax) || m > f.report.MarginMax {
			f.report.MarginMax = m
		}
	}

	// Growth factor: max|final tiles| / max|A|.
	maxF := 0.0
	for i := 0; i < ta.MT; i++ {
		for j := 0; j < ta.NT; j++ {
			if v := ta.Tile(i, j).NormMax(); v > maxF {
				maxF = v
			}
		}
	}
	if maxA0 > 0 {
		f.report.Growth = maxF / maxA0
		if f.peakAbs > 0 {
			f.report.PeakGrowth = f.peakAbs / maxA0
		}
	}

	x := backSubstitute(ta, rhs, f.diagSolvers)
	// A mixed-precision factorization delivers a float32-accurate solution;
	// iterative refinement through the stored factors (float64 residuals,
	// O(N²) per round) brings it back to float64 backward error before the
	// run's HPL3 is judged.
	if f.report.F32Steps > 0 && !f.breakdown {
		f.report.RefineIters = f.refineVecs([][]float64{b}, [][]float64{x})
	}
	f.report.HPL3 = mat.HPL3(a, x, b)
	return &Result{X: x, Factored: ta, Report: f.report, f: f}, nil
}
