package core

import (
	"math"
	"math/rand"
	"testing"

	"luqr/internal/criteria"
	"luqr/internal/mat"
	"luqr/internal/matgen"
	"luqr/internal/tile"
)

// TestSolveReplayMatchesOriginal: replaying the stored transformations on
// the ORIGINAL b must reproduce the original solution bit for bit, for
// every algorithm and variant.
func TestSolveReplayMatchesOriginal(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	n := 96
	a := matgen.Random(n, rng)
	b := matgen.RandomVector(n, rng)
	cfgs := []Config{
		{Alg: LUQR, Criterion: criteria.Max{Alpha: 200}},
		{Alg: LUQR, Criterion: criteria.Never{}},
		{Alg: LUQR, Variant: VarA2, Criterion: criteria.Max{Alpha: 200}},
		{Alg: LUQR, Variant: VarB1, Criterion: criteria.Max{Alpha: 200}},
		{Alg: LUQR, Variant: VarB2, Criterion: criteria.Max{Alpha: 200}},
		{Alg: LUNoPiv},
		{Alg: LUPP},
		{Alg: HQR},
		{Alg: CALU},
		{Alg: LUIncPiv},
	}
	for _, cfg := range cfgs {
		cfg.NB = 16
		cfg.Grid = tile.NewGrid(2, 2)
		res := runOn(t, a, b, cfg)
		x2, err := res.Solve(b)
		if err != nil {
			t.Fatalf("%v/%v: %v", cfg.Alg, cfg.Variant, err)
		}
		for i := range res.X {
			if x2[i] != res.X[i] {
				t.Fatalf("%v/%v: replayed x[%d] = %g, original %g", cfg.Alg, cfg.Variant, i, x2[i], res.X[i])
			}
		}
	}
}

// TestSolveNewRHS: a second right-hand side must be solved accurately
// without re-factoring.
func TestSolveNewRHS(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	n := 96
	a := matgen.Random(n, rng)
	b1 := matgen.RandomVector(n, rng)
	for _, alg := range []Algorithm{LUQR, HQR, LUPP, CALU, LUIncPiv} {
		res := runOn(t, a, b1, Config{Alg: alg, NB: 16, Grid: tile.NewGrid(2, 2), Criterion: criteria.Max{Alpha: 500}})
		xTrue := matgen.RandomVector(n, rng)
		b2 := mat.MulVec(a, xTrue)
		x2, err := res.Solve(b2)
		if err != nil {
			t.Fatal(err)
		}
		for i := range xTrue {
			if math.Abs(x2[i]-xTrue[i]) > 1e-7*(1+math.Abs(xTrue[i])) {
				t.Fatalf("%v: new-RHS solve error at %d: %g vs %g", alg, i, x2[i], xTrue[i])
			}
		}
	}
}

// TestSolvePaddedSystem: Solve must work when the original N was not a tile
// multiple.
func TestSolvePaddedSystem(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	n := 37
	a := matgen.Random(n, rng)
	b := matgen.RandomVector(n, rng)
	res := runOn(t, a, b, Config{Alg: LUQR, NB: 16})
	xTrue := matgen.RandomVector(n, rng)
	b2 := mat.MulVec(a, xTrue)
	x2, err := res.Solve(b2)
	if err != nil {
		t.Fatal(err)
	}
	if len(x2) != n {
		t.Fatalf("solution length %d", len(x2))
	}
	for i := range xTrue {
		if math.Abs(x2[i]-xTrue[i]) > 1e-7*(1+math.Abs(xTrue[i])) {
			t.Fatalf("padded solve error at %d", i)
		}
	}
}

// TestSolveBatchMatchesSolve: a batched solve must produce, column for
// column, exactly what the one-at-a-time replay produces — the block kernels
// never mix columns — for every algorithm family, including the block-LU
// variants whose diagonal solvers run on the full NB×W tile. Also covers a
// padded (non-tile-multiple) system.
func TestSolveBatchMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	cfgs := []Config{
		{Alg: LUQR, Criterion: criteria.Max{Alpha: 200}},
		{Alg: LUQR, Variant: VarB2, Criterion: criteria.Max{Alpha: 200}},
		{Alg: HQR},
		{Alg: LUIncPiv},
		{Alg: HLU},
	}
	for _, n := range []int{96, 37} {
		a := matgen.Random(n, rng)
		b := matgen.RandomVector(n, rng)
		bs := make([][]float64, 5)
		for j := range bs {
			bs[j] = matgen.RandomVector(n, rng)
		}
		for _, cfg := range cfgs {
			cfg.NB = 16
			if n%cfg.NB == 0 {
				cfg.Grid = tile.NewGrid(2, 2)
			}
			res := runOn(t, a, b, cfg)
			xs, err := res.SolveBatch(bs)
			if err != nil {
				t.Fatalf("%v n=%d: %v", cfg.Alg, n, err)
			}
			for j := range bs {
				want, err := res.Solve(bs[j])
				if err != nil {
					t.Fatal(err)
				}
				if len(xs[j]) != n {
					t.Fatalf("%v n=%d: batch solution %d has length %d", cfg.Alg, n, j, len(xs[j]))
				}
				for i := range want {
					if xs[j][i] != want[i] {
						t.Fatalf("%v n=%d: batch x[%d][%d] = %g, solo %g", cfg.Alg, n, j, i, xs[j][i], want[i])
					}
				}
			}
		}
	}
}

// TestSolveBatchValidation covers the batch error paths.
func TestSolveBatchValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	a := matgen.Random(32, rng)
	b := matgen.RandomVector(32, rng)
	res := runOn(t, a, b, Config{Alg: HQR, NB: 16})
	if xs, err := res.SolveBatch(nil); err != nil || xs != nil {
		t.Fatalf("empty batch: got %v, %v", xs, err)
	}
	if _, err := res.SolveBatch([][]float64{b, make([]float64, 31)}); err == nil {
		t.Fatal("wrong-length RHS in batch accepted")
	}
	bare := &Result{}
	if _, err := bare.SolveBatch([][]float64{b}); err == nil {
		t.Fatal("SolveBatch on a bare Result must fail")
	}
}

// TestSolveInputValidation covers the error paths.
func TestSolveInputValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	a := matgen.Random(32, rng)
	b := matgen.RandomVector(32, rng)
	res := runOn(t, a, b, Config{Alg: HQR, NB: 16})
	if _, err := res.Solve(make([]float64, 31)); err == nil {
		t.Fatal("wrong-length RHS accepted")
	}
	bare := &Result{}
	if _, err := bare.Solve(b); err == nil {
		t.Fatal("Solve on a bare Result must fail")
	}
}

// TestRefineImprovesUnstableSolve: iterative refinement with a
// mildly-unstable LU NoPiv factorization must reduce the backward error
// substantially.
func TestRefineImprovesUnstableSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	n := 128
	a := matgen.Random(n, rng)
	xTrue := matgen.RandomVector(n, rng)
	b := mat.MulVec(a, xTrue)
	res := runOn(t, a, b, Config{Alg: LUNoPiv, NB: 16, Grid: tile.NewGrid(4, 1)})
	before := mat.HPL3(a, res.X, b)
	if res.Report.Breakdown {
		t.Skip("factorization broke down; nothing to refine")
	}
	refined, err := res.Refine(a, b, res.X, 3)
	if err != nil {
		t.Fatal(err)
	}
	after := mat.HPL3(a, refined, b)
	if !(after < before/2) && before > 1 {
		t.Fatalf("refinement did not help: HPL3 %g → %g", before, after)
	}
	if after > 10 {
		t.Fatalf("refined solution still unstable: HPL3 = %g", after)
	}
}
