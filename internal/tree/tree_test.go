package tree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

var allTrees = []Tree{FlatTS, FlatTT, Binary, Greedy, Fibonacci}

// checkValid verifies the structural invariants of an elimination list over
// the given rows: rows[0] survives and is triangularized; every other row is
// killed exactly once; eliminators are alive and triangular when used;
// TT-killed rows are triangular, TS-killed rows are square and never
// triangularized.
func checkValid(t *testing.T, rows []int, ops []Op) {
	t.Helper()
	tri := map[int]bool{}
	dead := map[int]bool{}
	inSet := map[int]bool{}
	for _, r := range rows {
		inSet[r] = true
	}
	for _, op := range ops {
		if !inSet[op.I] {
			t.Fatalf("op %v touches row %d outside the panel", op, op.I)
		}
		if dead[op.I] {
			t.Fatalf("op %v touches dead row", op)
		}
		switch op.Kind {
		case OpGeqrt:
			if tri[op.I] {
				t.Fatalf("row %d triangularized twice", op.I)
			}
			tri[op.I] = true
		case OpTS, OpTT:
			if !inSet[op.Piv] || dead[op.Piv] {
				t.Fatalf("op %v uses invalid pivot", op)
			}
			if !tri[op.Piv] {
				t.Fatalf("op %v pivot %d not triangular", op, op.Piv)
			}
			if op.Piv >= op.I {
				t.Fatalf("op %v pivot not above killed row", op)
			}
			if op.Kind == OpTT && !tri[op.I] {
				t.Fatalf("TT kill of square row %d", op.I)
			}
			if op.Kind == OpTS && tri[op.I] {
				t.Fatalf("TS kill of triangular row %d", op.I)
			}
			dead[op.I] = true
		}
	}
	if dead[rows[0]] {
		t.Fatal("surviving row killed")
	}
	if !tri[rows[0]] {
		t.Fatal("surviving row never triangularized")
	}
	for _, r := range rows[1:] {
		if !dead[r] {
			t.Fatalf("row %d never killed", r)
		}
	}
}

func TestEliminationsValidAllTrees(t *testing.T) {
	for _, tr := range allTrees {
		for _, n := range []int{1, 2, 3, 4, 7, 8, 16, 31} {
			rows := make([]int, n)
			for i := range rows {
				rows[i] = 5 + i // arbitrary offset
			}
			checkValid(t, rows, Eliminations(rows, tr))
		}
	}
}

func TestEliminationsValidProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := allTrees[rng.Intn(len(allTrees))]
		n := 1 + rng.Intn(40)
		start := rng.Intn(10)
		stride := 1 + rng.Intn(4) // non-contiguous rows, like a cyclic domain
		rows := make([]int, n)
		for i := range rows {
			rows[i] = start + i*stride
		}
		ok := true
		func() {
			defer func() {
				if recover() != nil {
					ok = false
				}
			}()
			tt := &testing.T{}
			checkValid(tt, rows, Eliminations(rows, tr))
			if tt.Failed() {
				ok = false
			}
		}()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestSingleRowOnlyGeqrt(t *testing.T) {
	for _, tr := range allTrees {
		ops := Eliminations([]int{3}, tr)
		if len(ops) != 1 || ops[0].Kind != OpGeqrt || ops[0].I != 3 {
			t.Fatalf("%v: single row ops = %v", tr, ops)
		}
	}
}

func TestFlatTSUsesOnlyTSKernels(t *testing.T) {
	ops := Eliminations([]int{0, 1, 2, 3, 4}, FlatTS)
	geqrt, ts := 0, 0
	for _, op := range ops {
		switch op.Kind {
		case OpGeqrt:
			geqrt++
		case OpTS:
			ts++
		case OpTT:
			t.Fatal("FlatTS emitted a TT kernel")
		}
	}
	if geqrt != 1 || ts != 4 {
		t.Fatalf("FlatTS counts: geqrt=%d ts=%d", geqrt, ts)
	}
}

func TestCriticalPathOrdering(t *testing.T) {
	rows := make([]int, 32)
	for i := range rows {
		rows[i] = i
	}
	cpFlat := CriticalPath(Eliminations(rows, FlatTS))
	cpBin := CriticalPath(Eliminations(rows, Binary))
	cpGreedy := CriticalPath(Eliminations(rows, Greedy))
	cpFib := CriticalPath(Eliminations(rows, Fibonacci))
	// Flat trees have linear critical paths; greedy/binary logarithmic.
	if cpFlat < 32 {
		t.Fatalf("flat critical path %d suspiciously short", cpFlat)
	}
	if cpGreedy >= cpFlat || cpBin >= cpFlat {
		t.Fatalf("tree CPs: flat=%d binary=%d greedy=%d", cpFlat, cpBin, cpGreedy)
	}
	if cpGreedy > 14 { // ~2·log₂(32) + slack
		t.Fatalf("greedy critical path %d too long", cpGreedy)
	}
	if cpFib < cpGreedy {
		t.Fatalf("fibonacci CP %d shorter than greedy %d", cpFib, cpGreedy)
	}
}

func TestHierarchicalValid(t *testing.T) {
	// 3 domains as produced by a 3×1 grid on a 10-row panel at k=1:
	// rows 1..9, domains {1,4,7}, {2,5,8}, {3,6,9}.
	domains := [][]int{{1, 4, 7}, {2, 5, 8}, {3, 6, 9}}
	all := []int{1, 2, 3, 4, 5, 6, 7, 8, 9}
	for _, intra := range allTrees {
		for _, inter := range []Tree{FlatTT, Binary, Greedy, Fibonacci} {
			ops := Hierarchical(domains, intra, inter)
			checkValid(t, all, ops)
		}
	}
}

func TestHierarchicalSingleDomain(t *testing.T) {
	ops := Hierarchical([][]int{{2, 3, 4}}, Greedy, Fibonacci)
	checkValid(t, []int{2, 3, 4}, ops)
}

func TestHierarchicalReducesInterDomainOps(t *testing.T) {
	// The inter stage must only merge the domain heads: count TT kills of
	// head rows.
	domains := [][]int{{0, 2, 4, 6}, {1, 3, 5, 7}}
	ops := Hierarchical(domains, Greedy, Fibonacci)
	headKills := 0
	for _, op := range ops {
		if op.Kind == OpTT && op.I == 1 {
			headKills++
		}
	}
	if headKills != 1 {
		t.Fatalf("head row 1 killed %d times", headKills)
	}
}

func TestParseTree(t *testing.T) {
	for _, tr := range allTrees {
		got, err := ParseTree(tr.String())
		if err != nil || got != tr {
			t.Fatalf("ParseTree(%q) = %v, %v", tr.String(), got, err)
		}
	}
	if _, err := ParseTree("bogus"); err == nil {
		t.Fatal("expected error")
	}
}

func TestFibonacciKillCounts(t *testing.T) {
	// With 12 rows (11 to kill), Fibonacci rounds kill 1,1,2,3,… from the
	// bottom, capped at half the alive rows.
	rows := make([]int, 12)
	for i := range rows {
		rows[i] = i
	}
	ops := Eliminations(rows, Fibonacci)
	var kills []int
	for _, op := range ops {
		if op.Kind == OpTT {
			kills = append(kills, op.I)
		}
	}
	if len(kills) != 11 {
		t.Fatalf("killed %d rows, want 11", len(kills))
	}
	// First two rounds kill single rows from the bottom.
	if kills[0] != 11 || kills[1] != 10 {
		t.Fatalf("first fibonacci kills = %v", kills[:2])
	}
}

func TestKindAndTreeStrings(t *testing.T) {
	if OpGeqrt.String() != "GEQRT" || OpTS.String() != "TSQRT" || OpTT.String() != "TTQRT" {
		t.Fatal("Kind strings wrong")
	}
	if Kind(99).String() == "" || Tree(99).String() == "" {
		t.Fatal("unknown enum values must still render")
	}
	for _, tr := range allTrees {
		if tr.String() == "" {
			t.Fatal("empty tree name")
		}
	}
}

func TestEliminationsPanics(t *testing.T) {
	mustPanic := func(f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		f()
	}
	mustPanic(func() { Eliminations([]int{3, 1, 2}, Greedy) })      // unsorted
	mustPanic(func() { Eliminations([]int{0, 1}, Tree(42)) })       // unknown tree
	mustPanic(func() { Hierarchical([][]int{{}}, Greedy, Greedy) }) // empty domain
	mustPanic(func() { Hierarchical([][]int{{2, 1}}, Greedy, Greedy) })
	// The diagonal domain's head must be the overall smallest row.
	mustPanic(func() { Hierarchical([][]int{{5, 7}, {1, 3}}, Greedy, Greedy) })
}

func TestEliminationsEmpty(t *testing.T) {
	if ops := Eliminations(nil, Greedy); ops != nil {
		t.Fatal("empty row set must produce no ops")
	}
	if ops := Hierarchical(nil, Greedy, Greedy); ops != nil {
		t.Fatal("empty domain set must produce no ops")
	}
}

func TestHierarchicalFlatTSInterMapsToTT(t *testing.T) {
	// A FlatTS inter tree must be promoted to TT kernels (survivor heads
	// are triangular); the result must still be valid.
	domains := [][]int{{0, 2}, {1, 3}}
	ops := Hierarchical(domains, FlatTS, FlatTS)
	checkValid(t, []int{0, 1, 2, 3}, ops)
	for _, op := range ops {
		if op.Kind == OpTS && op.I == 1 {
			t.Fatal("inter-domain head kill must use TT kernels")
		}
	}
}
