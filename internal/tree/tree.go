// Package tree generates elimination orderings for the tiled-QR step of the
// hybrid algorithm: given the panel rows that must be reduced to a single
// triangular tile, it emits the ordered list of GEQRT / TSQRT / TTQRT
// operations of a chosen reduction tree.
//
// The trees mirror the HQR framework of Dongarra et al. (Parallel Computing
// 2013), reference [8] of the paper: FLAT trees with TS kernels (long
// critical path, cheap kernels), and TT-kernel trees — BINARY, GREEDY and
// FIBONACCI — that trade kernel count for critical-path length. The paper's
// default configuration is GREEDY inside a node and FIBONACCI across nodes,
// composed by Hierarchical.
package tree

import (
	"fmt"
	"sort"
)

// Kind discriminates the three operations of an elimination list.
type Kind int

// Operations appear in dependency-respecting order.
const (
	// OpGeqrt triangularizes tile row I (GEQRT kernel + UNMQR updates).
	OpGeqrt Kind = iota
	// OpTS kills square tile row I with triangular pivot row Piv
	// (TSQRT kernel + TSMQR updates).
	OpTS
	// OpTT kills triangular tile row I with triangular pivot row Piv
	// (TTQRT kernel + TTMQR updates).
	OpTT
)

func (k Kind) String() string {
	switch k {
	case OpGeqrt:
		return "GEQRT"
	case OpTS:
		return "TSQRT"
	case OpTT:
		return "TTQRT"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Op is one step of an elimination list. For OpGeqrt, Piv is unused (−1).
type Op struct {
	Kind Kind
	I    int // the tile row operated on / killed
	Piv  int // the eliminator tile row (OpTS, OpTT)
}

// Tree selects a reduction-tree family.
type Tree int

// Families available to the QR step (§II-B).
const (
	// FlatTS: the pivot row kills every other row in sequence with TS
	// kernels — the PLASMA-style "flat tree", maximum locality, critical
	// path linear in the number of rows.
	FlatTS Tree = iota
	// FlatTT: all rows triangularized, then killed in sequence by the pivot
	// with TT kernels.
	FlatTT
	// Binary: adjacent pairing by rounds (distance 1, 2, 4, …), critical
	// path ⌈log₂ m⌉ rounds.
	Binary
	// Greedy: every round kills ⌊alive/2⌋ rows, pairing the top half as
	// eliminators of the bottom half — the tree used inside nodes by the
	// paper's default configuration.
	Greedy
	// Fibonacci: round r kills fib(r) rows from the bottom; slightly longer
	// than Greedy in isolation but pipelines consecutive panels better —
	// the paper's default between nodes.
	Fibonacci
)

func (t Tree) String() string {
	switch t {
	case FlatTS:
		return "flatts"
	case FlatTT:
		return "flattt"
	case Binary:
		return "binary"
	case Greedy:
		return "greedy"
	case Fibonacci:
		return "fibonacci"
	}
	return fmt.Sprintf("Tree(%d)", int(t))
}

// ParseTree converts a name used by CLI flags into a Tree.
func ParseTree(s string) (Tree, error) {
	for _, t := range []Tree{FlatTS, FlatTT, Binary, Greedy, Fibonacci} {
		if t.String() == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("tree: unknown reduction tree %q", s)
}

// Eliminations returns the ordered operation list reducing rows (sorted
// ascending; rows[0] is the surviving eliminator) to a single triangular
// tile at rows[0]. The result always begins by triangularizing rows[0]
// (even for a single row: the panel's diagonal tile must end up triangular).
func Eliminations(rows []int, tr Tree) []Op {
	if len(rows) == 0 {
		return nil
	}
	if !sort.IntsAreSorted(rows) {
		panic("tree: Eliminations requires sorted rows")
	}
	ops := []Op{{Kind: OpGeqrt, I: rows[0], Piv: -1}}
	if len(rows) == 1 {
		return ops
	}
	switch tr {
	case FlatTS:
		for _, i := range rows[1:] {
			ops = append(ops, Op{Kind: OpTS, I: i, Piv: rows[0]})
		}
	case FlatTT:
		for _, i := range rows[1:] {
			ops = append(ops, Op{Kind: OpGeqrt, I: i, Piv: -1})
		}
		for _, i := range rows[1:] {
			ops = append(ops, Op{Kind: OpTT, I: i, Piv: rows[0]})
		}
	case Binary, Greedy, Fibonacci:
		for _, i := range rows[1:] {
			ops = append(ops, Op{Kind: OpGeqrt, I: i, Piv: -1})
		}
		ops = append(ops, roundsTT(rows, tr)...)
	default:
		panic(fmt.Sprintf("tree: unknown tree %v", tr))
	}
	return ops
}

// roundsTT emits TT eliminations round by round until one row survives.
func roundsTT(rows []int, tr Tree) []Op {
	alive := append([]int(nil), rows...)
	var ops []Op
	fa, fb := 1, 1 // Fibonacci state: kill counts 1, 1, 2, 3, 5, …
	for len(alive) > 1 {
		var kills int
		switch tr {
		case Binary, Greedy:
			kills = len(alive) / 2
		case Fibonacci:
			kills = fa
			fa, fb = fb, fa+fb
			if max := len(alive) / 2; kills > max {
				kills = max
			}
			if kills == 0 {
				kills = 1
			}
		}
		m := len(alive)
		if tr == Binary {
			// Pair adjacent alive rows: alive[2j] kills alive[2j+1].
			var next []int
			for j := 0; j < m; j += 2 {
				next = append(next, alive[j])
				if j+1 < m {
					ops = append(ops, Op{Kind: OpTT, I: alive[j+1], Piv: alive[j]})
				}
			}
			alive = next
			continue
		}
		// Greedy/Fibonacci: the bottom `kills` rows are killed by the rows
		// immediately above them (disjoint pairs).
		for j := 0; j < kills; j++ {
			killed := alive[m-kills+j]
			piv := alive[m-2*kills+j]
			ops = append(ops, Op{Kind: OpTT, I: killed, Piv: piv})
		}
		alive = alive[:m-kills]
	}
	return ops
}

// Hierarchical composes a two-level reduction, the paper's default QR step:
// each domain (the panel rows local to one node, from Grid.PanelDomains) is
// reduced to its head row with the intra tree; the surviving head rows are
// then merged across domains with the inter tree (TT kernels only, since
// every survivor is triangular). domains[0] must be the diagonal domain; its
// head row is the final survivor.
func Hierarchical(domains [][]int, intra, inter Tree) []Op {
	if len(domains) == 0 {
		return nil
	}
	var ops []Op
	heads := make([]int, 0, len(domains))
	for _, d := range domains {
		if len(d) == 0 {
			panic("tree: empty domain")
		}
		if !sort.IntsAreSorted(d) {
			panic("tree: Hierarchical requires sorted domain rows")
		}
		ops = append(ops, Eliminations(d, intra)...)
		heads = append(heads, d[0])
	}
	if len(heads) == 1 {
		return ops
	}
	// Inter-domain stage: survivors are already triangular, so only the TT
	// eliminations of the inter tree apply (strip the GEQRT ops).
	sorted := append([]int(nil), heads...)
	sort.Ints(sorted)
	if sorted[0] != heads[0] {
		panic("tree: diagonal domain head must be the smallest row")
	}
	for _, op := range Eliminations(sorted, ttOnly(inter)) {
		if op.Kind == OpTT {
			ops = append(ops, op)
		}
	}
	return ops
}

// ttOnly maps TS-kernel trees onto their TT equivalent for the inter-domain
// stage, where both operands are always triangular.
func ttOnly(tr Tree) Tree {
	if tr == FlatTS {
		return FlatTT
	}
	return tr
}

// CriticalPath returns the number of dependency-ordered levels of an
// operation list, counting each operation as one unit and serializing
// operations that touch the same tile row. It is the unit-cost critical
// path used to compare tree families (Table 1 of [8]).
func CriticalPath(ops []Op) int {
	ready := map[int]int{}
	maxT := 0
	for _, op := range ops {
		t := ready[op.I]
		if op.Kind != OpGeqrt {
			if pt := ready[op.Piv]; pt > t {
				t = pt
			}
		}
		t++
		ready[op.I] = t
		if op.Kind != OpGeqrt {
			ready[op.Piv] = t
		}
		if t > maxT {
			maxT = t
		}
	}
	return maxT
}
