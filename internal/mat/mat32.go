package mat

import (
	"fmt"
	"math"
)

// Matrix32 is a dense row-major float32 matrix view — the storage type of
// the mixed-precision path's resident tile images. Element (i, j) lives at
// Data[i*Stride+j]; like Matrix, a Matrix32 may be a view into a larger
// allocation, so mutating a view mutates the parent.
//
// Every float32 value widens to float64 exactly, and rounding a widened
// float32 returns the same bits, so a chain of float32 kernels over a
// Matrix32 image produces bit-identical values to the same chain run through
// the round-on-read/widen-on-write kernels on float64 storage. That identity
// is what lets the residency layer (package tile) convert once per precision
// epoch instead of once per kernel call without changing any result.
type Matrix32 struct {
	Rows   int
	Cols   int
	Stride int
	Data   []float32
}

// NewMatrix32 allocates a zeroed rows×cols float32 matrix with a tight
// stride.
func NewMatrix32(rows, cols int) *Matrix32 {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", rows, cols))
	}
	return &Matrix32{Rows: rows, Cols: cols, Stride: cols, Data: make([]float32, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix32) At(i, j int) float32 {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("mat: At(%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
	return m.Data[i*m.Stride+j]
}

// Set assigns element (i, j).
func (m *Matrix32) Set(i, j int, v float32) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("mat: Set(%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
	m.Data[i*m.Stride+j] = v
}

// View returns a sub-matrix view of size rows×cols starting at (i, j),
// sharing storage with m.
func (m *Matrix32) View(i, j, rows, cols int) *Matrix32 {
	if i < 0 || j < 0 || rows < 0 || cols < 0 || i+rows > m.Rows || j+cols > m.Cols {
		panic(fmt.Sprintf("mat: View(%d,%d,%d,%d) out of range %dx%d", i, j, rows, cols, m.Rows, m.Cols))
	}
	return &Matrix32{
		Rows:   rows,
		Cols:   cols,
		Stride: m.Stride,
		Data:   m.Data[i*m.Stride+j:],
	}
}

// Row returns row i as a length-Cols slice aliasing m's storage.
func (m *Matrix32) Row(i int) []float32 {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("mat: Row(%d) out of range %d", i, m.Rows))
	}
	return m.Data[i*m.Stride : i*m.Stride+m.Cols]
}

// CopyFrom overwrites m with src. Shapes must match exactly.
func (m *Matrix32) CopyFrom(src *Matrix32) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("mat: CopyFrom shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		copy(m.Row(i), src.Row(i))
	}
}

// Zero clears every element of m (only the viewed region).
func (m *Matrix32) Zero() {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = 0
		}
	}
}

// SwapRows exchanges rows i and j in place.
func (m *Matrix32) SwapRows(i, j int) {
	if i == j {
		return
	}
	ri, rj := m.Row(i), m.Row(j)
	for c, v := range ri {
		ri[c], rj[c] = rj[c], v
	}
}

// RoundFrom overwrites m with float32(src): the tile promotion conversion.
// Shapes must match exactly.
func (m *Matrix32) RoundFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("mat: RoundFrom shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		d, s := m.Row(i), src.Row(i)
		for j, v := range s {
			d[j] = float32(v)
		}
	}
}

// WidenInto overwrites dst with float64(m): the demotion conversion. Every
// float32 is exactly representable, so the widening is lossless. Shapes must
// match exactly.
func (m *Matrix32) WidenInto(dst *Matrix) {
	if m.Rows != dst.Rows || m.Cols != dst.Cols {
		panic(fmt.Sprintf("mat: WidenInto shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, dst.Rows, dst.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		d, s := dst.Row(i), m.Row(i)
		for j, v := range s {
			d[j] = float64(v)
		}
	}
}

// Norm1 returns the induced 1-norm over the widened values, NaN-propagating
// exactly like Matrix.Norm1 — the criterion must see identical norms whether
// a tile is float32-resident or not.
func (m *Matrix32) Norm1() float64 {
	sums := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			sums[j] += math.Abs(float64(v))
		}
	}
	max := 0.0
	for _, s := range sums {
		if math.IsNaN(s) {
			return s
		}
		if s > max {
			max = s
		}
	}
	return max
}

// ColAbsMax returns max_i |a(i,j)| for column j over the widened values,
// propagating NaN like Matrix.ColAbsMax.
func (m *Matrix32) ColAbsMax(j int) float64 {
	if j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("mat: ColAbsMax(%d) out of range %d", j, m.Cols))
	}
	max := 0.0
	for i := 0; i < m.Rows; i++ {
		a := math.Abs(float64(m.Data[i*m.Stride+j]))
		if math.IsNaN(a) {
			return a
		}
		if a > max {
			max = a
		}
	}
	return max
}

// NormMax returns max |a_ij| over the widened values.
func (m *Matrix32) NormMax() float64 {
	max := 0.0
	for i := 0; i < m.Rows; i++ {
		for _, v := range m.Row(i) {
			if a := math.Abs(float64(v)); a > max {
				max = a
			}
		}
	}
	return max
}
