package mat

import (
	"fmt"
	"math"
)

// Vector helpers. Vectors are plain []float64; these functions implement the
// handful of reductions the solver needs outside of BLAS.

// VecNormInf returns max_i |x_i|.
func VecNormInf(x []float64) float64 {
	max := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// VecNorm1 returns Σ|x_i|.
func VecNorm1(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// VecNorm2 returns the Euclidean norm.
func VecNorm2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// MulVec computes y = A·x for a dense A. len(x) must equal A.Cols; the result
// has length A.Rows.
func MulVec(a *Matrix, x []float64) []float64 {
	if len(x) != a.Cols {
		panic(fmt.Sprintf("mat: MulVec dimension mismatch: %dx%d by %d", a.Rows, a.Cols, len(x)))
	}
	y := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// Residual returns r = b − A·x.
func Residual(a *Matrix, x, b []float64) []float64 {
	ax := MulVec(a, x)
	r := make([]float64, len(b))
	for i := range b {
		r[i] = b[i] - ax[i]
	}
	return r
}

// HPL3 computes the High-Performance Linpack backward-error metric used
// throughout the paper's evaluation (§V-A):
//
//	HPL3 = ‖Ax − b‖∞ / (‖A‖∞ · ‖x‖∞ · ε · N)
//
// where ε is the double-precision machine epsilon and N the matrix order. A
// result of order 1 or below indicates a backward-stable solve.
func HPL3(a *Matrix, x, b []float64) float64 {
	n := float64(a.Rows)
	eps := math.Nextafter(1, 2) - 1
	// A non-finite solution (breakdown, overflow) is an unconditional
	// failure, not a zero residual.
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return math.Inf(1)
		}
	}
	r := VecNormInf(Residual(a, x, b))
	if math.IsNaN(r) {
		return math.Inf(1)
	}
	den := a.NormInf() * VecNormInf(x) * eps * n
	if den == 0 {
		if r == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return r / den
}
