package mat

import "sync"

// Workspace management: a size-classed sync.Pool arena for the float64
// scratch buffers every kernel call needs (GEMM pack panels, Householder
// work vectors, stacked-panel copies). The factorization engine executes
// O(nt³) kernel tasks; without pooling, each task performs several
// make([]float64, …) calls and the allocator + GC become a measurable part
// of the critical path. With the arena, steady-state kernel calls perform
// zero heap allocations.
//
// Ownership rules (see DESIGN.md "Kernel layer"):
//
//   - The function that calls GetBuf must PutBuf the same *Buf before it
//     returns (defer is fine). Buffers are never retained across kernel
//     calls or tasks, and never shared between goroutines.
//   - Buffer contents are unspecified on Get: callers must fully overwrite
//     (or explicitly zero) what they read.
//   - PutBuf(nil) is a no-op so error paths stay simple.

// wsClasses are power-of-two size classes from 1<<wsMinBits to
// 1<<(wsMinBits+wsClasses-1) float64s (64 … 4M floats, i.e. 512 B … 32 MiB).
// Requests above the largest class fall back to plain allocation.
const (
	wsMinBits = 6
	wsClasses = 17
)

// Buf is a pooled float64 scratch buffer. Data has exactly the requested
// length; its backing array is the size-class capacity.
type Buf struct {
	Data  []float64
	class int // pool index, or -1 for an unpooled (oversized) buffer
}

var wsPools [wsClasses]sync.Pool

func init() {
	for c := range wsPools {
		c := c
		wsPools[c].New = func() any {
			return &Buf{Data: make([]float64, 1<<(wsMinBits+c)), class: c}
		}
	}
}

// classFor returns the smallest size class holding n float64s, or -1 when n
// exceeds every class.
func classFor(n int) int {
	for c := 0; c < wsClasses; c++ {
		if n <= 1<<(wsMinBits+c) {
			return c
		}
	}
	return -1
}

// GetBuf returns a buffer with len(Data) == n. Contents are unspecified.
func GetBuf(n int) *Buf {
	if n < 0 {
		panic("mat: GetBuf with negative size")
	}
	c := classFor(n)
	if c < 0 {
		return &Buf{Data: make([]float64, n), class: -1}
	}
	b := wsPools[c].Get().(*Buf)
	b.Data = b.Data[:cap(b.Data)][:n]
	return b
}

// GetBufZero returns a zeroed buffer with len(Data) == n.
func GetBufZero(n int) *Buf {
	b := GetBuf(n)
	for i := range b.Data {
		b.Data[i] = 0
	}
	return b
}

// PutBuf returns a buffer to its pool. The caller must not use b (or any
// Matrix view created from it) afterwards. PutBuf(nil) is a no-op.
func PutBuf(b *Buf) {
	if b == nil || b.class < 0 {
		return
	}
	wsPools[b.class].Put(b)
}

// Matrix views the first rows·cols elements of the buffer as a rows×cols
// row-major matrix with tight stride. The view aliases b.Data; it dies with
// the buffer at PutBuf. Contents are unspecified (call Zero if needed).
func (b *Buf) Matrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 || rows*cols > len(b.Data) {
		panic("mat: Buf.Matrix view larger than buffer")
	}
	return &Matrix{Rows: rows, Cols: cols, Stride: cols, Data: b.Data[:rows*cols]}
}

// GetMatrix returns a rows×cols matrix backed by a pooled buffer, plus the
// buffer to PutBuf when done. Contents are unspecified.
func GetMatrix(rows, cols int) (*Matrix, *Buf) {
	b := GetBuf(rows * cols)
	return b.Matrix(rows, cols), b
}
