package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || m.Stride != 4 {
		t.Fatalf("unexpected shape: %+v", m)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("New not zeroed at (%d,%d)", i, j)
			}
		}
	}
}

func TestFromSliceRoundTrip(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	m := FromSlice(2, 3, data)
	if m.At(0, 0) != 1 || m.At(0, 2) != 3 || m.At(1, 0) != 4 || m.At(1, 2) != 6 {
		t.Fatalf("FromSlice layout wrong: %v", m.Data)
	}
	// FromSlice copies: mutating the source must not affect the matrix.
	data[0] = 99
	if m.At(0, 0) != 1 {
		t.Fatal("FromSlice did not copy its input")
	}
}

func TestFromSlicePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 3, []float64{1, 2, 3})
}

func TestIdentity(t *testing.T) {
	m := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1.0
			}
			if m.At(i, j) != want {
				t.Fatalf("Identity(4)[%d,%d] = %g", i, j, m.At(i, j))
			}
		}
	}
}

func TestViewAliasesParent(t *testing.T) {
	m := New(4, 4)
	v := m.View(1, 1, 2, 2)
	v.Set(0, 0, 7)
	if m.At(1, 1) != 7 {
		t.Fatal("view write not visible in parent")
	}
	m.Set(2, 2, 9)
	if v.At(1, 1) != 9 {
		t.Fatal("parent write not visible in view")
	}
	if v.Stride != m.Stride {
		t.Fatal("view must inherit parent stride")
	}
}

func TestViewBounds(t *testing.T) {
	m := New(4, 4)
	for _, bad := range [][4]int{{-1, 0, 1, 1}, {0, -1, 1, 1}, {3, 3, 2, 1}, {0, 0, 5, 1}, {0, 0, 1, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("View%v should panic", bad)
				}
			}()
			m.View(bad[0], bad[1], bad[2], bad[3])
		}()
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randomMatrix(rng, 5, 7)
	c := m.Clone()
	if !Equal(m, c) {
		t.Fatal("clone differs from original")
	}
	c.Set(0, 0, 1234)
	if m.At(0, 0) == 1234 {
		t.Fatal("clone shares storage with original")
	}
}

func TestCloneOfViewTightStride(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randomMatrix(rng, 6, 6)
	v := m.View(2, 3, 3, 2)
	c := v.Clone()
	if c.Stride != 2 {
		t.Fatalf("clone stride = %d, want tight 2", c.Stride)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != m.At(2+i, 3+j) {
				t.Fatal("clone of view has wrong contents")
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomMatrix(rng, 4, 6)
	tr := m.T()
	if tr.Rows != 6 || tr.Cols != 4 {
		t.Fatalf("transpose shape %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 6; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatal("transpose content mismatch")
			}
		}
	}
	if !Equal(m, tr.T()) {
		t.Fatal("double transpose is not identity")
	}
}

func TestNormsKnownValues(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, -2, -3, 4})
	if got := m.Norm1(); got != 6 { // max col sum: |−2|+|4| = 6
		t.Fatalf("Norm1 = %g, want 6", got)
	}
	if got := m.NormInf(); got != 7 { // max row sum: 3+4
		t.Fatalf("NormInf = %g, want 7", got)
	}
	if got := m.NormMax(); got != 4 {
		t.Fatalf("NormMax = %g, want 4", got)
	}
	if got := m.NormFro(); math.Abs(got-math.Sqrt(30)) > 1e-15 {
		t.Fatalf("NormFro = %g, want sqrt(30)", got)
	}
	if got := m.ColAbsMax(0); got != 3 {
		t.Fatalf("ColAbsMax(0) = %g, want 3", got)
	}
}

func TestNorm1EqualsTransposeNormInf(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomMatrix(rng, 1+rng.Intn(8), 1+rng.Intn(8))
		return math.Abs(m.Norm1()-m.T().NormInf()) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(6), 1+rng.Intn(6)
		a := randomMatrix(rng, r, c)
		b := randomMatrix(rng, r, c)
		s := New(r, c)
		for i := range s.Data {
			s.Data[i] = a.Data[i] + b.Data[i]
		}
		const tol = 1e-12
		return s.Norm1() <= a.Norm1()+b.Norm1()+tol &&
			s.NormInf() <= a.NormInf()+b.NormInf()+tol &&
			s.NormFro() <= a.NormFro()+b.NormFro()+tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSwapRows(t *testing.T) {
	m := FromSlice(3, 2, []float64{1, 2, 3, 4, 5, 6})
	m.SwapRows(0, 2)
	want := FromSlice(3, 2, []float64{5, 6, 3, 4, 1, 2})
	if !Equal(m, want) {
		t.Fatalf("SwapRows got %v", m.Data)
	}
	m.SwapRows(1, 1) // no-op
	if !Equal(m, want) {
		t.Fatal("SwapRows(i,i) changed the matrix")
	}
}

func TestMaxDiff(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 2, []float64{1, 2.5, 3, 3})
	if got := MaxDiff(a, b); got != 1 {
		t.Fatalf("MaxDiff = %g, want 1", got)
	}
}

func TestEqualNaNHandling(t *testing.T) {
	a := FromSlice(1, 2, []float64{math.NaN(), 1})
	b := FromSlice(1, 2, []float64{math.NaN(), 1})
	if !Equal(a, b) {
		t.Fatal("Equal should treat NaN==NaN for comparison purposes")
	}
}

func TestIsFinite(t *testing.T) {
	m := New(2, 2)
	if !m.IsFinite() {
		t.Fatal("zero matrix should be finite")
	}
	m.Set(1, 1, math.Inf(1))
	if m.IsFinite() {
		t.Fatal("Inf not detected")
	}
	m.Set(1, 1, math.NaN())
	if m.IsFinite() {
		t.Fatal("NaN not detected")
	}
}

func TestZeroAndFillRespectViews(t *testing.T) {
	m := New(4, 4)
	m.Fill(5)
	v := m.View(1, 1, 2, 2)
	v.Zero()
	if m.At(0, 0) != 5 || m.At(3, 3) != 5 {
		t.Fatal("Zero on view leaked outside the view")
	}
	if m.At(1, 1) != 0 || m.At(2, 2) != 0 {
		t.Fatal("Zero on view did not clear the view")
	}
}

func TestMulVecKnown(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	y := MulVec(a, []float64{1, 1, 1})
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MulVec got %v", y)
	}
}

func TestResidualZeroForExactSolution(t *testing.T) {
	a := Identity(3)
	x := []float64{1, 2, 3}
	r := Residual(a, x, []float64{1, 2, 3})
	if VecNormInf(r) != 0 {
		t.Fatalf("residual %v", r)
	}
}

func TestHPL3ExactSolutionIsZero(t *testing.T) {
	a := Identity(5)
	x := []float64{1, 2, 3, 4, 5}
	if got := HPL3(a, x, x); got != 0 {
		t.Fatalf("HPL3 = %g for exact solve", got)
	}
}

func TestHPL3ScalesWithResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomMatrix(rng, 10, 10)
	x := make([]float64, 10)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b := MulVec(a, x)
	// Perturb x: the backward error must become clearly nonzero.
	x[0] += 1e-8
	v := HPL3(a, x, b)
	if v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
		t.Fatalf("HPL3 = %g after perturbation", v)
	}
}

func TestVecNorms(t *testing.T) {
	x := []float64{3, -4}
	if VecNorm1(x) != 7 || VecNormInf(x) != 4 || math.Abs(VecNorm2(x)-5) > 1e-15 {
		t.Fatalf("vector norms wrong: %g %g %g", VecNorm1(x), VecNormInf(x), VecNorm2(x))
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	small := Identity(2)
	if s := small.String(); len(s) == 0 {
		t.Fatal("empty String for small matrix")
	}
	big := New(20, 20)
	if s := big.String(); s != "Matrix 20x20" {
		t.Fatalf("large matrix String = %q", s)
	}
}
