// Package mat provides the dense matrix core used by every other package in
// the solver: a row-major float64 matrix type with views, copies, norms and
// residual helpers.
//
// The representation is deliberately minimal — a (rows, cols, stride, data)
// quadruple — so that tiles, panels and stacked panels can all alias the same
// backing storage without copies. All numerical kernels live in the blas and
// lapack packages; this package only carries data and cheap O(rows·cols)
// reductions.
package mat

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix view. Element (i, j) lives at
// Data[i*Stride+j]. A Matrix may be a view into a larger allocation, so
// len(Data) can exceed Rows*Stride; mutating a view mutates the parent.
type Matrix struct {
	Rows   int
	Cols   int
	Stride int
	Data   []float64
}

// New allocates a zeroed rows×cols matrix with a tight stride.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Stride: cols, Data: make([]float64, rows*cols)}
}

// FromSlice builds a rows×cols matrix backed by a copy of data, which must
// hold exactly rows*cols elements in row-major order.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: FromSlice got %d elements for %dx%d", len(data), rows, cols))
	}
	m := New(rows, cols)
	copy(m.Data, data)
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*m.Stride+i] = 1
	}
	return m
}

// At returns element (i, j). Bounds are checked by the slice access in the
// common case; explicit checks are reserved for Set/At in debug helpers.
func (m *Matrix) At(i, j int) float64 {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("mat: At(%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
	return m.Data[i*m.Stride+j]
}

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("mat: Set(%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
	m.Data[i*m.Stride+j] = v
}

// View returns a sub-matrix view of size rows×cols starting at (i, j). The
// view shares storage with m.
func (m *Matrix) View(i, j, rows, cols int) *Matrix {
	if i < 0 || j < 0 || rows < 0 || cols < 0 || i+rows > m.Rows || j+cols > m.Cols {
		panic(fmt.Sprintf("mat: View(%d,%d,%d,%d) out of range %dx%d", i, j, rows, cols, m.Rows, m.Cols))
	}
	return &Matrix{
		Rows:   rows,
		Cols:   cols,
		Stride: m.Stride,
		Data:   m.Data[i*m.Stride+j:],
	}
}

// Row returns row i as a length-Cols slice aliasing m's storage.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("mat: Row(%d) out of range %d", i, m.Rows))
	}
	return m.Data[i*m.Stride : i*m.Stride+m.Cols]
}

// Clone returns a deep copy of m with a tight stride.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		copy(c.Row(i), m.Row(i))
	}
	return c
}

// CopyFrom overwrites m with src. Shapes must match exactly.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("mat: CopyFrom shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		copy(m.Row(i), src.Row(i))
	}
}

// Zero clears every element of m (only the viewed region).
func (m *Matrix) Zero() {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = 0
		}
	}
}

// Fill sets every element of m to v.
func (m *Matrix) Fill(v float64) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = v
		}
	}
}

// T returns a newly allocated transpose of m.
func (m *Matrix) T() *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Stride+i] = v
		}
	}
	return t
}

// Equal reports whether a and b have the same shape and identical elements.
func Equal(a, b *Matrix) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := 0; i < a.Rows; i++ {
		ra, rb := a.Row(i), b.Row(i)
		for j := range ra {
			if ra[j] != rb[j] && !(math.IsNaN(ra[j]) && math.IsNaN(rb[j])) {
				return false
			}
		}
	}
	return true
}

// MaxDiff returns max_{i,j} |a(i,j) − b(i,j)|. Shapes must match.
func MaxDiff(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MaxDiff shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	d := 0.0
	for i := 0; i < a.Rows; i++ {
		ra, rb := a.Row(i), b.Row(i)
		for j := range ra {
			if v := math.Abs(ra[j] - rb[j]); v > d {
				d = v
			}
		}
	}
	return d
}

// Norm1 returns the induced 1-norm (maximum absolute column sum). A NaN
// entry yields NaN: the column sums propagate it, and the final max must not
// drop it through a `>` comparison — the robustness criteria rely on NaN
// surviving into the tile norms to force a QR step on a poisoned panel.
func (m *Matrix) Norm1() float64 {
	sums := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			sums[j] += math.Abs(v)
		}
	}
	max := 0.0
	for _, s := range sums {
		if math.IsNaN(s) {
			return s
		}
		if s > max {
			max = s
		}
	}
	return max
}

// NormInf returns the induced ∞-norm (maximum absolute row sum).
func (m *Matrix) NormInf() float64 {
	max := 0.0
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		for _, v := range m.Row(i) {
			s += math.Abs(v)
		}
		if s > max {
			max = s
		}
	}
	return max
}

// NormFro returns the Frobenius norm.
func (m *Matrix) NormFro() float64 {
	// Two-pass scaling is unnecessary at the magnitudes used here; keep the
	// straightforward accumulation.
	s := 0.0
	for i := 0; i < m.Rows; i++ {
		for _, v := range m.Row(i) {
			s += v * v
		}
	}
	return math.Sqrt(s)
}

// NormMax returns max |a_ij| (not an induced norm).
func (m *Matrix) NormMax() float64 {
	max := 0.0
	for i := 0; i < m.Rows; i++ {
		for _, v := range m.Row(i) {
			if a := math.Abs(v); a > max {
				max = a
			}
		}
	}
	return max
}

// ColAbsMax returns max_i |a(i,j)| for column j, propagating NaN (see
// Norm1): the per-column maxima feed the MUMPS criterion, which must see a
// poisoned column rather than the max of its finite entries.
func (m *Matrix) ColAbsMax(j int) float64 {
	if j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("mat: ColAbsMax(%d) out of range %d", j, m.Cols))
	}
	max := 0.0
	for i := 0; i < m.Rows; i++ {
		a := math.Abs(m.Data[i*m.Stride+j])
		if math.IsNaN(a) {
			return a
		}
		if a > max {
			max = a
		}
	}
	return max
}

// SwapRows exchanges rows i and j in place.
func (m *Matrix) SwapRows(i, j int) {
	if i == j {
		return
	}
	ri, rj := m.Row(i), m.Row(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// IsFinite reports whether every element is finite (no NaN or ±Inf).
func (m *Matrix) IsFinite() bool {
	for i := 0; i < m.Rows; i++ {
		for _, v := range m.Row(i) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
	}
	return true
}

// String renders the matrix for debugging; large matrices are elided.
func (m *Matrix) String() string {
	const maxShow = 8
	var b strings.Builder
	fmt.Fprintf(&b, "Matrix %dx%d", m.Rows, m.Cols)
	if m.Rows > maxShow || m.Cols > maxShow {
		return b.String()
	}
	b.WriteString("\n")
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			fmt.Fprintf(&b, "% 12.5g", m.At(i, j))
		}
		b.WriteString("\n")
	}
	return b.String()
}
