package mat

import "sync"

// Float32 side of the workspace arena. The mixed-precision kernel path packs
// f64 operands into float32 micro-panels and accumulates float32 results in
// scratch blocks; those buffers churn exactly like the float64 ones, so they
// get the same size-classed sync.Pool treatment and the same ownership rules
// (Get → use → Put within one call, contents unspecified on Get).

// Buf32 is a pooled float32 scratch buffer. Data has exactly the requested
// length; its backing array is the size-class capacity.
type Buf32 struct {
	Data  []float32
	class int // pool index, or -1 for an unpooled (oversized) buffer
}

var ws32Pools [wsClasses]sync.Pool

func init() {
	for c := range ws32Pools {
		c := c
		ws32Pools[c].New = func() any {
			return &Buf32{Data: make([]float32, 1<<(wsMinBits+c)), class: c}
		}
	}
}

// GetBuf32 returns a buffer with len(Data) == n. Contents are unspecified.
func GetBuf32(n int) *Buf32 {
	if n < 0 {
		panic("mat: GetBuf32 with negative size")
	}
	c := classFor(n)
	if c < 0 {
		return &Buf32{Data: make([]float32, n), class: -1}
	}
	b := ws32Pools[c].Get().(*Buf32)
	b.Data = b.Data[:cap(b.Data)][:n]
	return b
}

// GetBuf32Zero returns a zeroed buffer with len(Data) == n.
func GetBuf32Zero(n int) *Buf32 {
	b := GetBuf32(n)
	for i := range b.Data {
		b.Data[i] = 0
	}
	return b
}

// PutBuf32 returns a buffer to its pool. The caller must not use b
// afterwards. PutBuf32(nil) is a no-op.
func PutBuf32(b *Buf32) {
	if b == nil || b.class < 0 {
		return
	}
	ws32Pools[b.class].Put(b)
}

// Matrix32 views the first rows·cols elements of the buffer as a rows×cols
// row-major float32 matrix with tight stride. The view aliases b.Data; it
// dies with the buffer at PutBuf32. Contents are unspecified.
func (b *Buf32) Matrix32(rows, cols int) *Matrix32 {
	if rows < 0 || cols < 0 || rows*cols > len(b.Data) {
		panic("mat: Buf32.Matrix32 view larger than buffer")
	}
	return &Matrix32{Rows: rows, Cols: cols, Stride: cols, Data: b.Data[:rows*cols]}
}

// GetMatrix32 returns a rows×cols float32 matrix backed by a pooled buffer,
// plus the buffer to PutBuf32 when done. Contents are unspecified.
func GetMatrix32(rows, cols int) (*Matrix32, *Buf32) {
	b := GetBuf32(rows * cols)
	return b.Matrix32(rows, cols), b
}
