package runtime

import (
	"encoding/json"
	"fmt"
	"io"
)

// traceEvent is one entry of the trace-event JSON array. Timestamps and
// durations are in microseconds, per the format specification.
type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	ID    int            `json:"id,omitempty"`
	BP    string         `json:"bp,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

func us(ns int64) float64 { return float64(ns) / 1e3 }

// WriteChromeTrace writes the measured trace in the Chrome trace-event JSON
// format that chrome://tracing and Perfetto (ui.perfetto.dev) load directly,
// so the panel path, the update fronts, and the communication structure of a
// real run are visible on a timeline, the way the paper reads PaRSEC traces
// (§V). Tasks appear as complete ("X") events on one track per executing
// worker; each cross-node Recv message becomes a flow arrow from the sending
// task (the dependency that produced the data on the source node) to the
// receiving task. Metadata events name the process and the worker tracks.
func WriteChromeTrace(w io.Writer, trace []*TraceTask) error {
	out := chromeTrace{DisplayTimeUnit: "ms"}

	// Process + per-worker thread names.
	out.TraceEvents = append(out.TraceEvents, traceEvent{
		Name: "process_name", Phase: "M", PID: 0, TID: 0,
		Args: map[string]any{"name": "luqr runtime"},
	})
	workers := 0
	for _, t := range trace {
		if t.Worker+1 > workers {
			workers = t.Worker + 1
		}
	}
	for wid := 0; wid < workers; wid++ {
		out.TraceEvents = append(out.TraceEvents, traceEvent{
			Name: "thread_name", Phase: "M", PID: 0, TID: wid,
			Args: map[string]any{"name": fmt.Sprintf("worker %d", wid)},
		})
	}

	byID := make(map[int]*TraceTask, len(trace))
	for _, t := range trace {
		byID[t.ID] = t
	}

	flowID := 0
	for _, t := range trace {
		dur := us(t.EndNS - t.BeginNS)
		out.TraceEvents = append(out.TraceEvents, traceEvent{
			Name: t.Name, Cat: t.Kernel, Phase: "X",
			TS: us(t.BeginNS), Dur: &dur, PID: 0, TID: t.Worker,
			Args: map[string]any{
				"id": t.ID, "kernel": t.Kernel, "node": t.Node,
				"flops": t.Flops, "priority": t.Priority,
				"dispatch": t.Dispatch.String(),
			},
		})
		// One flow arrow per cross-node message: bind each Recv to the
		// dependency task on the message's source node (the producer whose
		// output had to travel).
		for _, msg := range t.Recv {
			var src *TraceTask
			for _, d := range t.Deps {
				if p, ok := byID[d]; ok && p.Node == msg.From {
					src = p
					break
				}
			}
			if src == nil {
				continue // initial home transfer: no producing task
			}
			flowID++
			out.TraceEvents = append(out.TraceEvents,
				traceEvent{
					Name: "msg", Cat: "comm", Phase: "s", ID: flowID,
					TS: us(src.EndNS), PID: 0, TID: src.Worker,
					Args: map[string]any{"from": msg.From, "to": msg.To, "bytes": msg.Bytes},
				},
				traceEvent{
					Name: "msg", Cat: "comm", Phase: "f", BP: "e", ID: flowID,
					TS: us(t.BeginNS), PID: 0, TID: t.Worker,
				},
			)
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
