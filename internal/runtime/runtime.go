// Package runtime is the dataflow task engine the hybrid solver runs on — a
// pure-Go stand-in for the PaRSEC runtime of the paper (§IV).
//
// Tasks declare the data handles they read and write; the engine derives the
// read-after-write, write-after-read and write-after-write dependencies
// automatically from the submission order, exactly as a sequential-task-flow
// runtime does, and executes ready tasks on a pool of workers with
// priority-ordered scheduling.
//
// The paper extends PaRSEC's static parameterized task graphs with dynamic
// selection tasks (Backup Panel / Propagate, Fig. 1) so the LU and QR
// subgraphs of a step can be chosen at run time. This engine supports the
// same pattern through dynamic unfolding: a task's Then callback runs after
// its kernel and may submit further tasks — the hybrid algorithm's decision
// task evaluates the robustness criterion there and materializes either the
// LU or the QR subgraph of the step. Because submission order is
// deterministic, the task graph and every numerical result are independent
// of the number of workers and of scheduling; only timing varies.
//
// For the distributed-memory reproduction the engine also performs
// owner-computes accounting: each task carries the rank of the node it would
// run on, and the engine records, per dependency edge that crosses nodes,
// one message per (version, destination-node) pair — the same dedup a
// runtime's broadcast tree gives. The recorded trace feeds the sim package's
// discrete-event replay.
package runtime

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Handle identifies one datum (typically a tile) tracked by the engine.
type Handle struct {
	id    int
	name  string
	bytes int

	// Dependency state, guarded by the engine mutex.
	lastWriter *task
	readers    []*task
	writerNode int // node holding the current version (−1: home)
	home       int // node owning the datum (block-cyclic owner)
	// sentTo lists the nodes already holding the current version (the
	// broadcast-tree dedup). It is a small reused slice rather than a map so
	// that each new version costs zero allocations: a version reaches a
	// handful of nodes at most, and a linear scan is faster than hashing.
	sentTo  []int
	version int
}

// sentToContains reports whether node already received the current version.
func (h *Handle) sentToContains(node int) bool {
	for _, n := range h.sentTo {
		if n == node {
			return true
		}
	}
	return false
}

// Name returns the debug name given at creation.
func (h *Handle) Name() string { return h.name }

// Access describes one handle access of a task.
type Access struct {
	H     *Handle
	Write bool
}

// R declares a read access.
func R(h *Handle) Access { return Access{H: h} }

// W declares a write (or read-write — in-place kernels are writes) access.
func W(h *Handle) Access { return Access{H: h, Write: true} }

// Message records one inter-node transfer implied by a dependency edge.
type Message struct {
	From, To int
	Bytes    int
}

// TraceTask is the execution-trace record of one task, consumed by the
// discrete-event simulator.
type TraceTask struct {
	ID       int
	Name     string
	Kernel   string
	Node     int
	Flops    float64
	Priority int
	Deps     []int
	Recv     []Message
	// ExtraComm records communication the task performs internally as a
	// synchronous phase (pivot-search exchanges, criterion all-reduces):
	// the simulator charges latency + bytes for each, serially.
	ExtraComm []Message

	// Measured execution record, filled in by the executing worker. The
	// fields live in the TraceTask allocated at Submit, so recording them
	// costs zero allocations on the execution path.
	//
	// BeginNS/EndNS are wall-clock nanoseconds since the engine started
	// (monotonic). EndNS covers Run and Then: the full occupancy of the
	// worker, so dynamic-unfolding overhead is charged to the decision task
	// that pays it.
	BeginNS int64
	EndNS   int64
	// Worker is the ID (0-based) of the worker that executed the task.
	Worker int
	// QueueDepth is the number of ready tasks left in the queue at the
	// moment this task was dispatched — a sample of scheduler pressure.
	QueueDepth int
}

// Duration returns the measured execution time of the task.
func (t *TraceTask) Duration() time.Duration {
	return time.Duration(t.EndNS - t.BeginNS)
}

// TaskSpec describes a task to submit.
type TaskSpec struct {
	Name     string  // debug / DOT label
	Kernel   string  // kernel family, e.g. "GEMM" (for the trace)
	Node     int     // owner-computes placement rank
	Flops    float64 // operation count (for the trace / simulator)
	Priority int     // higher runs earlier among ready tasks
	Accesses []Access
	// ExtraComm declares internal synchronous communication phases (see
	// TraceTask.ExtraComm); only meaningful when tracing.
	ExtraComm []Message
	Run       func() // the kernel body (may be nil for pure control tasks)
	// Then runs on the worker right after Run, while the task is still
	// considered pending, and may submit further tasks: this is the dynamic
	// unfolding hook. It must not block on the engine.
	Then func(e *Engine)
}

type task struct {
	id      int
	spec    TaskSpec
	nDeps   int // unresolved dependency count
	succs   []*task
	done    bool
	trace   *TraceTask
	heapIdx int
	seq     int
}

// Engine executes a dynamically unfolding task graph.
type Engine struct {
	mu      sync.Mutex
	cond    *sync.Cond
	ready   readyQueue
	pending int // submitted but not finished
	nextID  int // task ids, in submission order
	nextHdl int // handle ids
	closed  bool
	workers int
	trace   []*TraceTask
	tracing bool
	start   time.Time // timestamp origin for BeginNS/EndNS
	// depScratch is the per-Submit predecessor dedup set, reused across
	// submissions (guarded by mu) so edge dedup costs no allocation.
	depScratch []*task
	wg         sync.WaitGroup
}

// Config configures a new engine.
type Config struct {
	Workers int  // number of worker goroutines (≥ 1)
	Trace   bool // record a TraceTask per task
}

// NewEngine starts an engine with the given number of workers. Callers must
// Close it when done.
func NewEngine(cfg Config) *Engine {
	if cfg.Workers < 1 {
		panic(fmt.Sprintf("runtime: need at least one worker, got %d", cfg.Workers))
	}
	e := &Engine{workers: cfg.Workers, tracing: cfg.Trace, start: time.Now()}
	e.cond = sync.NewCond(&e.mu)
	e.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go e.worker(i)
	}
	return e
}

// Workers returns the size of the worker pool.
func (e *Engine) Workers() int { return e.workers }

// sinceStart returns nanoseconds since the engine started (monotonic).
func (e *Engine) sinceStart() int64 { return int64(time.Since(e.start)) }

// NewHandle registers a datum of the given size owned by node home.
func (e *Engine) NewHandle(name string, bytes, home int) *Handle {
	e.mu.Lock()
	defer e.mu.Unlock()
	h := &Handle{id: e.nextHdl, name: name, bytes: bytes, home: home, writerNode: home}
	e.nextHdl++
	return h
}

// Submit adds a task. Dependencies on previously submitted tasks are derived
// from the declared accesses. Submit may be called from Then callbacks.
func (e *Engine) Submit(spec TaskSpec) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		panic("runtime: Submit after Close")
	}
	t := &task{id: e.nextID, spec: spec, seq: e.nextID}
	e.nextID++
	e.pending++

	var tr *TraceTask
	if e.tracing {
		tr = &TraceTask{ID: t.id, Name: spec.Name, Kernel: spec.Kernel, Node: spec.Node, Flops: spec.Flops, Priority: spec.Priority, ExtraComm: spec.ExtraComm}
		t.trace = tr
		e.trace = append(e.trace, tr)
	}

	// Dedup set: a task touching the same handle several times (read+write,
	// stacked-rows access lists) or several handles with the same last
	// writer must record each predecessor once — duplicate edges would
	// double-draw in DOT, double-count in the simulator, and bloat succs.
	// The nDeps/decrement bookkeeping stays balanced because the succs
	// append and the nDeps increment are skipped together. The scratch
	// slice is reused across Submits, so the dedup costs no allocation.
	e.depScratch = e.depScratch[:0]
	dep := func(p *task) {
		if p == nil {
			return
		}
		for _, q := range e.depScratch {
			if q == p {
				return
			}
		}
		e.depScratch = append(e.depScratch, p)
		// Record the edge in the trace even when the predecessor has
		// already finished: dynamically unfolded subgraphs submit after
		// their predecessors ran, but the logical dependency still holds
		// and the simulator must see it.
		if tr != nil {
			tr.Deps = append(tr.Deps, p.id)
		}
		if p.done {
			return
		}
		p.succs = append(p.succs, t)
		t.nDeps++
	}

	for ai, a := range spec.Accesses {
		h := a.H
		// RAW (and WAW for writes): depend on the last writer.
		dep(h.lastWriter)
		// Record data movement for this version once per destination. The
		// duplicate-handle dedup scans the access-list prefix instead of
		// keeping a per-Submit map: access lists are short, and the scan
		// (needed only when tracing) costs no allocation.
		if tr != nil && !accessSeen(spec.Accesses, ai) {
			if h.lastWriter != nil {
				if h.writerNode != spec.Node && len(h.sentTo) > 0 && !h.sentToContains(spec.Node) {
					tr.Recv = append(tr.Recv, Message{From: h.writerNode, To: spec.Node, Bytes: h.bytes})
					h.sentTo = append(h.sentTo, spec.Node)
				}
			} else if h.home != spec.Node && !h.sentToContains(spec.Node) {
				// Initial version lives at the home node.
				tr.Recv = append(tr.Recv, Message{From: h.home, To: spec.Node, Bytes: h.bytes})
				h.sentTo = append(h.sentTo, spec.Node)
			}
		}
		if a.Write {
			// WAR: depend on every reader of the current version.
			for _, r := range h.readers {
				if r != t {
					dep(r)
				}
			}
		}
	}
	// Second pass: update handle states (kept separate so a task that
	// accesses a handle twice does not depend on itself).
	for _, a := range spec.Accesses {
		h := a.H
		if a.Write {
			h.lastWriter = t
			h.readers = h.readers[:0]
			h.version++
			h.writerNode = spec.Node
			h.sentTo = append(h.sentTo[:0], spec.Node)
		} else if h.lastWriter != t {
			// Dedup: a task reading the same handle twice is one reader. A
			// duplicate could only have been appended by this same Submit,
			// so checking the tail suffices. A task that already wrote the
			// handle is its last writer — recording it as a reader of its
			// own version would be redundant.
			if n := len(h.readers); n == 0 || h.readers[n-1] != t {
				h.readers = append(h.readers, t)
			}
		}
	}

	if t.nDeps == 0 {
		heap.Push(&e.ready, t)
		e.cond.Broadcast()
	}
}

// accessSeen reports whether the handle of accs[idx] already appears earlier
// in the access list — the duplicate-access dedup for trace recording.
func accessSeen(accs []Access, idx int) bool {
	h := accs[idx].H
	for q := 0; q < idx; q++ {
		if accs[q].H == h {
			return true
		}
	}
	return false
}

func (e *Engine) worker(id int) {
	defer e.wg.Done()
	e.mu.Lock()
	for {
		for e.ready.Len() == 0 && !e.closed {
			e.cond.Wait()
		}
		if e.closed && e.ready.Len() == 0 {
			e.mu.Unlock()
			return
		}
		t := heap.Pop(&e.ready).(*task)
		if t.trace != nil {
			// All measurement writes go into the TraceTask preallocated at
			// Submit; with tracing off this is a single nil check, so the
			// execution hot path stays allocation- and instrumentation-free.
			t.trace.Worker = id
			t.trace.QueueDepth = e.ready.Len()
		}
		e.mu.Unlock()

		if t.trace != nil {
			t.trace.BeginNS = e.sinceStart()
		}
		if t.spec.Run != nil {
			t.spec.Run()
		}
		if t.spec.Then != nil {
			t.spec.Then(e)
		}
		if t.trace != nil {
			t.trace.EndNS = e.sinceStart()
		}

		e.mu.Lock()
		t.done = true
		for _, s := range t.succs {
			s.nDeps--
			if s.nDeps == 0 {
				heap.Push(&e.ready, s)
			}
		}
		e.pending--
		e.cond.Broadcast()
	}
}

// Wait blocks until every submitted task (including tasks submitted from
// Then callbacks) has finished.
func (e *Engine) Wait() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for e.pending > 0 {
		e.cond.Wait()
	}
}

// Close shuts the workers down. Pending tasks are drained first.
func (e *Engine) Close() {
	e.Wait()
	e.mu.Lock()
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
	e.wg.Wait()
}

// Trace returns the recorded execution trace (submission order). Only valid
// after Wait, and only when tracing was enabled.
func (e *Engine) Trace() []*TraceTask {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*TraceTask, len(e.trace))
	copy(out, e.trace)
	return out
}

// readyQueue is a max-heap on (Priority, −seq): higher priority first, FIFO
// among equals.
type readyQueue []*task

func (q readyQueue) Len() int { return len(q) }
func (q readyQueue) Less(i, j int) bool {
	if q[i].spec.Priority != q[j].spec.Priority {
		return q[i].spec.Priority > q[j].spec.Priority
	}
	return q[i].seq < q[j].seq
}
func (q readyQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].heapIdx = i
	q[j].heapIdx = j
}
func (q *readyQueue) Push(x any) {
	t := x.(*task)
	t.heapIdx = len(*q)
	*q = append(*q, t)
}
func (q *readyQueue) Pop() any {
	old := *q
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return t
}
