// Package runtime is the dataflow task engine the hybrid solver runs on — a
// pure-Go stand-in for the PaRSEC runtime of the paper (§IV).
//
// Tasks declare the data handles they read and write; the engine derives the
// read-after-write, write-after-read and write-after-write dependencies
// automatically from the submission order, exactly as a sequential-task-flow
// runtime does, and executes ready tasks on a pool of workers.
//
// Scheduling is work-stealing and locality-aware. Each worker owns a deque
// of ready tasks (LIFO for the owner, FIFO for thieves); a shared priority
// lane, polled before the deques, carries the panel-path tasks whose
// progress bounds the whole factorization (the lookahead pipeline of §IV);
// and a newly ready task is pushed to the deque of the worker that produced
// the previous version of the tile it will write, so a tile's update chain
// stays in one worker's cache. Workers park individually and are woken one
// at a time, targeted at the worker whose deque just received work — there
// is no global ready-heap, no engine-wide dispatch lock, and no broadcast
// wakeup storm on task completion.
//
// The paper extends PaRSEC's static parameterized task graphs with dynamic
// selection tasks (Backup Panel / Propagate, Fig. 1) so the LU and QR
// subgraphs of a step can be chosen at run time. This engine supports the
// same pattern through dynamic unfolding: a task's Then callback runs after
// its kernel and may submit further tasks — the hybrid algorithm's decision
// task evaluates the robustness criterion there and materializes either the
// LU or the QR subgraph of the step. Submission (and with it dependency
// derivation) stays serialized under one mutex, so the task graph and every
// numerical result are independent of the number of workers and of
// scheduling; only timing and the dispatch route of each task vary.
//
// For the distributed-memory reproduction the engine also performs
// owner-computes accounting: each task carries the rank of the node it would
// run on, and the engine records, per dependency edge that crosses nodes,
// one message per (version, destination-node) pair — the same dedup a
// runtime's broadcast tree gives. The recorded trace feeds the sim package's
// discrete-event replay.
package runtime

import (
	"container/heap"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// LanePriority is the threshold of the shared priority lane: a task
// submitted with Priority ≥ LanePriority is dispatched from a single
// priority-ordered queue that every worker polls before its own deque, so
// such tasks always outrun deque work regardless of which worker's deque
// the deque work sits in. The solver maps its panel path (backup, trial
// factorization, decision, restore, eliminations) above this threshold and
// its trailing updates below it. Tasks below the threshold obey deque
// order (local LIFO, steal FIFO), not priority order.
const LanePriority = 1 << 26

// Handle identifies one datum (typically a tile) tracked by the engine.
type Handle struct {
	id    int
	name  string
	bytes int

	// Dependency state, guarded by the engine mutex (only Submit touches
	// it, and Submit is serialized).
	lastWriter *task
	readers    []*task
	writerNode int // node holding the current version (−1: home)
	home       int // node owning the datum (block-cyclic owner)
	// sentTo lists the nodes already holding the current version (the
	// broadcast-tree dedup). It is a small reused slice rather than a map so
	// that each new version costs zero allocations: a version reaches a
	// handful of nodes at most, and a linear scan is faster than hashing.
	sentTo  []int
	version int
}

// sentToContains reports whether node already received the current version.
func (h *Handle) sentToContains(node int) bool {
	for _, n := range h.sentTo {
		if n == node {
			return true
		}
	}
	return false
}

// Name returns the debug name given at creation.
func (h *Handle) Name() string { return h.name }

// Access describes one handle access of a task.
type Access struct {
	H     *Handle
	Write bool
}

// R declares a read access.
func R(h *Handle) Access { return Access{H: h} }

// W declares a write (or read-write — in-place kernels are writes) access.
func W(h *Handle) Access { return Access{H: h, Write: true} }

// Message records one inter-node transfer implied by a dependency edge.
type Message struct {
	From, To int
	Bytes    int
}

// DispatchKind records how the executing worker obtained a task.
type DispatchKind uint8

const (
	// DispatchLane: popped from the shared priority lane (panel path and
	// ready-at-submit injections).
	DispatchLane DispatchKind = iota
	// DispatchLocal: popped from the worker's own deque (the locality hit —
	// the task's input tiles were produced by this worker).
	DispatchLocal
	// DispatchSteal: stolen FIFO from another worker's deque.
	DispatchSteal
)

// String names the dispatch route for traces and tables.
func (d DispatchKind) String() string {
	switch d {
	case DispatchLane:
		return "lane"
	case DispatchLocal:
		return "local"
	case DispatchSteal:
		return "steal"
	}
	return "?"
}

// TraceTask is the execution-trace record of one task, consumed by the
// discrete-event simulator.
type TraceTask struct {
	ID       int
	Name     string
	Kernel   string
	Node     int
	Flops    float64
	Priority int
	Deps     []int
	Recv     []Message
	// ExtraComm records communication the task performs internally as a
	// synchronous phase (pivot-search exchanges, criterion all-reduces):
	// the simulator charges latency + bytes for each, serially.
	ExtraComm []Message

	// Measured execution record, filled in by the executing worker. The
	// fields live in the TraceTask allocated at Submit, so recording them
	// costs zero allocations on the execution path.
	//
	// BeginNS/EndNS are wall-clock nanoseconds since the engine started
	// (monotonic). EndNS covers Run and Then: the full occupancy of the
	// worker, so dynamic-unfolding overhead is charged to the decision task
	// that pays it.
	BeginNS int64
	EndNS   int64
	// Worker is the ID (0-based) of the worker that executed the task.
	Worker int
	// Dispatch is the route the task took to its worker: the shared
	// priority lane, the worker's own deque (a locality hit), or a steal.
	Dispatch DispatchKind
	// QueueDepth is the number of ready tasks left across the priority lane
	// and all worker deques at the moment this task was dispatched — a
	// sample of scheduler pressure.
	QueueDepth int
	// ConvNS is the portion of the task's execution spent in precision
	// conversions (float32 tile promotions/demotions), charged by the task
	// body through ChargeConv. It lets the breakdown experiment attribute
	// conversion overhead separately from kernel arithmetic.
	ConvNS int64
}

// ChargeConv adds ns nanoseconds of precision-conversion time to the task's
// record. Safe on a nil receiver, so task bodies may charge unconditionally.
func (t *TraceTask) ChargeConv(ns int64) {
	if t != nil {
		t.ConvNS += ns
	}
}

// Duration returns the measured execution time of the task.
func (t *TraceTask) Duration() time.Duration {
	return time.Duration(t.EndNS - t.BeginNS)
}

// TaskSpec describes a task to submit.
type TaskSpec struct {
	Name     string  // debug / DOT label
	Kernel   string  // kernel family, e.g. "GEMM" (for the trace)
	Node     int     // owner-computes placement rank
	Flops    float64 // operation count (for the trace / simulator)
	Priority int     // ≥ LanePriority: shared priority lane; below: deques
	Accesses []Access
	// ExtraComm declares internal synchronous communication phases (see
	// TraceTask.ExtraComm); only meaningful when tracing.
	ExtraComm []Message
	Run       func() // the kernel body (may be nil for pure control tasks)
	// RunTraced, when set, is called instead of Run with the task's trace
	// record (nil when tracing is off). Bodies that want to charge
	// conversion time via TraceTask.ChargeConv use this form; everything
	// else keeps the plain Run.
	RunTraced func(tr *TraceTask)
	// Then runs on the worker right after Run, while the task is still
	// considered pending, and may submit further tasks: this is the dynamic
	// unfolding hook. It must not block on the engine.
	Then func(e *Engine)
}

type task struct {
	id   int
	spec TaskSpec

	// nDeps is the count of unresolved dependencies plus one submission
	// guard. The guard (taken at creation, dropped at the end of Submit)
	// keeps a concurrently completing predecessor from seeing a transient
	// zero while Submit is still attaching the remaining edges; whoever
	// drops the count to zero — the final predecessor or Submit itself —
	// releases the task.
	nDeps atomic.Int32

	// mu guards done and succs: Submit attaches successor edges while
	// worker-side completion detaches the list, and the two race once
	// dispatch no longer funnels through the engine mutex. doneA mirrors
	// done, set after it under mu: a Submit that reads doneA == true may
	// skip the lock entirely (the edge is trivially satisfied), which is
	// the common case for dynamically unfolded subgraphs whose
	// predecessors ran long before submission.
	mu    sync.Mutex
	done  bool
	doneA atomic.Bool
	succs []*task

	// affinity is the submission-time last writer of the task's first
	// written handle — the producer of the previous version of the tile
	// this task will overwrite. When the task becomes ready it is pushed to
	// that producer's deque (see release), so a tile's TRSM→GEMM→GEMM
	// version chain stays in the cache of one worker. Nil when the task
	// writes nothing or writes a fresh handle.
	affinity *task
	// execWorker is the worker that dispatched the task, recorded before
	// Run. Readers (successor releases) are ordered after this task's
	// completion, so the plain write is safe.
	execWorker int32

	trace *TraceTask
}

// worker is the per-worker scheduler state. The counters are written only by
// the owning worker (or, for remoteReleases, by the releasing worker into
// its own struct) but read by SchedCounters at any time, hence atomic.
type worker struct {
	dq deque
	// wake carries at most one parking token: a waker pops the worker from
	// the idle set and sends here; the worker consumes exactly one token
	// per removal it did not perform itself.
	wake chan struct{}

	laneHits       atomic.Int64 // dispatches from the shared priority lane
	localHits      atomic.Int64 // dispatches from the own deque
	steals         atomic.Int64 // dispatches stolen from another deque
	remoteReleases atomic.Int64 // successors pushed to another worker's deque
	parks          atomic.Int64 // times this worker went to sleep
}

// lane is the shared priority queue for panel-path tasks and ready-at-submit
// injections. The atomic length counter keeps the common dispatch path (lane
// empty) down to one load, with no lock traffic.
type lane struct {
	mu sync.Mutex
	q  laneHeap
	n  atomic.Int64
}

func (l *lane) push(t *task) {
	l.mu.Lock()
	heap.Push(&l.q, t)
	l.n.Add(1)
	l.mu.Unlock()
}

func (l *lane) tryPop() *task {
	if l.n.Load() == 0 {
		return nil
	}
	l.mu.Lock()
	if len(l.q) == 0 {
		l.mu.Unlock()
		return nil
	}
	t := heap.Pop(&l.q).(*task)
	l.n.Add(-1)
	l.mu.Unlock()
	return t
}

// laneHeap is a max-heap on (Priority, −id): higher priority first, FIFO in
// submission order among equals.
type laneHeap []*task

func (q laneHeap) Len() int { return len(q) }
func (q laneHeap) Less(i, j int) bool {
	if q[i].spec.Priority != q[j].spec.Priority {
		return q[i].spec.Priority > q[j].spec.Priority
	}
	return q[i].id < q[j].id
}
func (q laneHeap) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *laneHeap) Push(x any)   { *q = append(*q, x.(*task)) }
func (q *laneHeap) Pop() any {
	old := *q
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return t
}

// idleSet tracks parked workers as a stack: wakers pop the most recently
// parked worker (warmest stack), or a specifically preferred one when the
// work they just pushed has cache affinity for it.
type idleSet struct {
	mu  sync.Mutex
	n   atomic.Int64
	ids []int // preallocated to the worker count: parking never allocates
}

func (s *idleSet) push(id int) {
	s.mu.Lock()
	s.ids = append(s.ids, id)
	s.n.Add(1)
	s.mu.Unlock()
}

// remove takes id out of the set; it reports false when a waker already
// popped it (in which case a wake token is in flight for it).
func (s *idleSet) remove(id int) bool {
	s.mu.Lock()
	for i, v := range s.ids {
		if v == id {
			s.ids[i] = s.ids[len(s.ids)-1]
			s.ids = s.ids[:len(s.ids)-1]
			s.n.Add(-1)
			s.mu.Unlock()
			return true
		}
	}
	s.mu.Unlock()
	return false
}

// pop removes and returns a parked worker: prefer if it is parked, the most
// recently parked otherwise. The fast path (nobody parked) is one atomic
// load.
func (s *idleSet) pop(prefer int) (int, bool) {
	if s.n.Load() == 0 {
		return 0, false
	}
	s.mu.Lock()
	if len(s.ids) == 0 {
		s.mu.Unlock()
		return 0, false
	}
	at := len(s.ids) - 1
	if prefer >= 0 {
		for i, v := range s.ids {
			if v == prefer {
				at = i
				break
			}
		}
	}
	id := s.ids[at]
	s.ids[at] = s.ids[len(s.ids)-1]
	s.ids = s.ids[:len(s.ids)-1]
	s.n.Add(-1)
	s.mu.Unlock()
	return id, true
}

// Engine executes a dynamically unfolding task graph.
type Engine struct {
	// mu serializes Submit and NewHandle: handle dependency state, task and
	// handle ids, and the trace log. Dispatch, execution, completion and
	// successor release never take it.
	mu        sync.Mutex
	nextID    int // task ids, in submission order
	nextHdl   int // handle ids
	trace     []*TraceTask
	tracing   bool
	ownerLIFO bool
	// depScratch is the per-Submit predecessor dedup set, reused across
	// submissions (guarded by mu) so edge dedup costs no allocation.
	depScratch []*task

	lane lane
	ws   []*worker
	idle idleSet

	pending  atomic.Int64 // submitted but not finished
	closed   atomic.Bool
	waitMu   sync.Mutex
	waitCond *sync.Cond

	start time.Time // timestamp origin for BeginNS/EndNS
	wg    sync.WaitGroup
}

// Config configures a new engine.
type Config struct {
	Workers int  // number of worker goroutines (≥ 1)
	Trace   bool // record a TraceTask per task

	// OwnerLIFO makes each worker pop its own deque newest-first (the
	// classic Chase–Lev owner end) instead of the default oldest-first.
	// LIFO maximizes producer→consumer cache reuse on short chains, but on
	// the factorization DAG it strands early-step updates under newer
	// pushes, and the panel of step k+1 then stalls on a buried column
	// update; oldest-first drains the wavefront in pipeline order and
	// measures faster end-to-end (see EXPERIMENTS.md, worker scaling).
	OwnerLIFO bool
}

// NewEngine starts an engine with the given number of workers. Callers must
// Close it when done.
func NewEngine(cfg Config) *Engine {
	if cfg.Workers < 1 {
		panic(fmt.Sprintf("runtime: need at least one worker, got %d", cfg.Workers))
	}
	e := &Engine{tracing: cfg.Trace, ownerLIFO: cfg.OwnerLIFO, start: time.Now()}
	e.waitCond = sync.NewCond(&e.waitMu)
	e.lane.q = make(laneHeap, 0, dequeInitCap)
	e.idle.ids = make([]int, 0, cfg.Workers)
	e.ws = make([]*worker, cfg.Workers)
	for i := range e.ws {
		e.ws[i] = &worker{wake: make(chan struct{}, 1)}
		e.ws[i].dq.init()
	}
	e.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go e.worker(i)
	}
	return e
}

// Workers returns the size of the worker pool.
func (e *Engine) Workers() int { return len(e.ws) }

// sinceStart returns nanoseconds since the engine started (monotonic).
func (e *Engine) sinceStart() int64 { return int64(time.Since(e.start)) }

// NewHandle registers a datum of the given size owned by node home.
func (e *Engine) NewHandle(name string, bytes, home int) *Handle {
	e.mu.Lock()
	defer e.mu.Unlock()
	h := &Handle{id: e.nextHdl, name: name, bytes: bytes, home: home, writerNode: home}
	e.nextHdl++
	return h
}

// Submit adds a task. Dependencies on previously submitted tasks are derived
// from the declared accesses. Submit may be called from Then callbacks.
func (e *Engine) Submit(spec TaskSpec) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed.Load() {
		panic("runtime: Submit after Close")
	}
	t := &task{id: e.nextID, spec: spec}
	t.nDeps.Store(1) // submission guard, dropped at the end of Submit
	e.nextID++
	e.pending.Add(1)

	var tr *TraceTask
	if e.tracing {
		tr = &TraceTask{ID: t.id, Name: spec.Name, Kernel: spec.Kernel, Node: spec.Node, Flops: spec.Flops, Priority: spec.Priority, ExtraComm: spec.ExtraComm}
		t.trace = tr
		e.trace = append(e.trace, tr)
	}

	// Dedup set: a task touching the same handle several times (read+write,
	// stacked-rows access lists) or several handles with the same last
	// writer must record each predecessor once — duplicate edges would
	// double-draw in DOT, double-count in the simulator, and bloat succs.
	// The nDeps/decrement bookkeeping stays balanced because the succs
	// append and the nDeps increment are skipped together. The scratch
	// slice is reused across Submits, so the dedup costs no allocation.
	e.depScratch = e.depScratch[:0]
	dep := func(p *task) {
		if p == nil {
			return
		}
		for _, q := range e.depScratch {
			if q == p {
				return
			}
		}
		e.depScratch = append(e.depScratch, p)
		// Record the edge in the trace even when the predecessor has
		// already finished: dynamically unfolded subgraphs submit after
		// their predecessors ran, but the logical dependency still holds
		// and the simulator must see it.
		if tr != nil {
			tr.Deps = append(tr.Deps, p.id)
		}
		// Lock-free fast path: a predecessor observed done can never gain
		// the edge back, so the dependency is trivially satisfied.
		if p.doneA.Load() {
			return
		}
		// The predecessor may be completing on a worker right now; its mu
		// arbitrates between "edge attached before completion" (the
		// completer will decrement) and "already done" (no edge, the
		// dependency is trivially satisfied).
		p.mu.Lock()
		if !p.done {
			p.succs = append(p.succs, t)
			t.nDeps.Add(1)
		}
		p.mu.Unlock()
	}

	for ai, a := range spec.Accesses {
		h := a.H
		// RAW (and WAW for writes): depend on the last writer.
		dep(h.lastWriter)
		if a.Write && t.affinity == nil && h.lastWriter != t {
			// Cache-affinity hint: the producer of the previous version of
			// the first tile this task overwrites (see task.affinity).
			t.affinity = h.lastWriter
		}
		// Record data movement for this version once per destination. The
		// duplicate-handle dedup scans the access-list prefix instead of
		// keeping a per-Submit map: access lists are short, and the scan
		// (needed only when tracing) costs no allocation.
		if tr != nil && !accessSeen(spec.Accesses, ai) {
			if h.lastWriter != nil {
				if h.writerNode != spec.Node && len(h.sentTo) > 0 && !h.sentToContains(spec.Node) {
					tr.Recv = append(tr.Recv, Message{From: h.writerNode, To: spec.Node, Bytes: h.bytes})
					h.sentTo = append(h.sentTo, spec.Node)
				}
			} else if h.home != spec.Node && !h.sentToContains(spec.Node) {
				// Initial version lives at the home node.
				tr.Recv = append(tr.Recv, Message{From: h.home, To: spec.Node, Bytes: h.bytes})
				h.sentTo = append(h.sentTo, spec.Node)
			}
		}
		if a.Write {
			// WAR: depend on every reader of the current version.
			for _, r := range h.readers {
				if r != t {
					dep(r)
				}
			}
		}
	}
	// Second pass: update handle states (kept separate so a task that
	// accesses a handle twice does not depend on itself).
	for _, a := range spec.Accesses {
		h := a.H
		if a.Write {
			h.lastWriter = t
			h.readers = h.readers[:0]
			h.version++
			h.writerNode = spec.Node
			h.sentTo = append(h.sentTo[:0], spec.Node)
		} else if h.lastWriter != t {
			// Dedup: a task reading the same handle twice is one reader. A
			// duplicate could only have been appended by this same Submit,
			// so checking the tail suffices. A task that already wrote the
			// handle is its last writer — recording it as a reader of its
			// own version would be redundant.
			if n := len(h.readers); n == 0 || h.readers[n-1] != t {
				h.readers = append(h.readers, t)
			}
		}
	}

	// Drop the submission guard. A task ready at submit is injected into
	// the shared lane regardless of priority — the submitter is not a
	// worker (or is a worker unfolding a new subgraph), so there is no
	// meaningful deque to push to, and lane injection preserves
	// priority-then-submission order among simultaneously ready roots.
	if t.nDeps.Add(-1) == 0 {
		e.lane.push(t)
		e.wake(-1)
	}
}

// accessSeen reports whether the handle of accs[idx] already appears earlier
// in the access list — the duplicate-access dedup for trace recording.
func accessSeen(accs []Access, idx int) bool {
	h := accs[idx].H
	for q := 0; q < idx; q++ {
		if accs[q].H == h {
			return true
		}
	}
	return false
}

// wake unparks one worker, preferring the given id (the worker whose deque
// just received work), if anyone is parked. The no-sleeper fast path is a
// single atomic load.
func (e *Engine) wake(prefer int) {
	if id, ok := e.idle.pop(prefer); ok {
		select {
		case e.ws[id].wake <- struct{}{}:
		default:
		}
	}
}

// wakeID unparks worker id specifically, reporting false when it is not
// parked (no token is sent; the worker is running and will reach its own
// deque on its next poll).
func (e *Engine) wakeID(id int) bool {
	if e.idle.n.Load() == 0 || !e.idle.remove(id) {
		return false
	}
	select {
	case e.ws[id].wake <- struct{}{}:
	default:
	}
	return true
}

// release routes a newly ready task to its queue and wakes a worker to run
// it. byWorker is the worker whose task completion performed the release
// (ready-at-submit tasks take the lane-injection path in Submit instead).
func (e *Engine) release(s *task, byWorker int) {
	if s.spec.Priority >= LanePriority {
		e.lane.push(s)
		e.wake(-1)
		return
	}
	// Locality-aware placement: prefer the deque of the worker that
	// produced the previous version of the tile this task writes — the
	// worker whose cache holds the task's write target — falling back to
	// the releasing worker (which just wrote one of the task's inputs).
	target := byWorker
	if s.affinity != nil {
		// The affinity predecessor necessarily completed before s became
		// ready, so its execWorker is set and stable.
		target = int(s.affinity.execWorker)
	}
	e.ws[target].dq.push(s)
	if target != byWorker {
		e.ws[byWorker].remoteReleases.Add(1)
		// Wake the target itself if it is parked; a busy target will drain
		// its own deque, and waking some other sleeper would just steal the
		// task straight off the cache it was placed for. Summon a thief
		// only when the target has more queued than it can start next.
		if !e.wakeID(target) && e.ws[target].dq.n.Load() > 1 {
			e.wake(-1)
		}
		return
	}
	// Pushed onto our own deque: we will pop it ourselves shortly, so only
	// summon help when there is surplus beyond that — waking a thief for a
	// single-task deque would just migrate the chain off its cache.
	if e.ws[byWorker].dq.n.Load() > 1 {
		e.wake(-1)
	}
}

// poll finds the next task for worker id: the shared priority lane first
// (the panel path must outrun everything), then the worker's own deque
// (oldest-first by default — wavefront order; newest-first under
// Config.OwnerLIFO), then a FIFO steal sweep over the other deques in ring
// order. Thieves always take the oldest end, leaving the recent
// affinity-placed chain tasks at the tail for the owner.
func (e *Engine) poll(id int) (*task, DispatchKind) {
	if t := e.lane.tryPop(); t != nil {
		return t, DispatchLane
	}
	if e.ownerLIFO {
		if t := e.ws[id].dq.popTail(); t != nil {
			return t, DispatchLocal
		}
	} else if t := e.ws[id].dq.popHead(); t != nil {
		return t, DispatchLocal
	}
	nw := len(e.ws)
	for i := 1; i < nw; i++ {
		v := e.ws[(id+i)%nw]
		if t := v.dq.popHead(); t != nil {
			return t, DispatchSteal
		}
	}
	return nil, 0
}

// workAvailable reports whether any queue holds a ready task — the parking
// re-check that closes the race between a failed poll and idle registration.
func (e *Engine) workAvailable() bool {
	if e.lane.n.Load() > 0 {
		return true
	}
	for _, w := range e.ws {
		if w.dq.n.Load() > 0 {
			return true
		}
	}
	return false
}

// park blocks worker id until a waker hands it a token or work shows up.
func (e *Engine) park(id int) {
	w := e.ws[id]
	// Drain a stale token (Close broadcasts unconditionally) so the
	// at-most-one-token invariant holds for this parking cycle.
	select {
	case <-w.wake:
	default:
	}
	e.idle.push(id)
	// Re-check after registering: a producer that pushed work before we
	// appeared in the idle set could not have woken us; its push is visible
	// to us now (idle set and queue counters synchronize through their
	// locks), so one of the two sides always acts.
	if e.workAvailable() || e.closed.Load() {
		if !e.idle.remove(id) {
			// A waker claimed us concurrently; consume its token.
			<-w.wake
		}
		return
	}
	w.parks.Add(1)
	<-w.wake
}

func (e *Engine) worker(id int) {
	defer e.wg.Done()
	for {
		t, src := e.poll(id)
		if t == nil {
			if e.closed.Load() {
				return
			}
			e.park(id)
			continue
		}
		e.execute(t, id, src)
	}
}

// queuedLen samples the total number of ready tasks across the lane and all
// deques (trace-only bookkeeping).
func (e *Engine) queuedLen() int {
	n := int(e.lane.n.Load())
	for _, w := range e.ws {
		n += int(w.dq.n.Load())
	}
	return n
}

// execute runs one dispatched task and completes it.
func (e *Engine) execute(t *task, id int, src DispatchKind) {
	w := e.ws[id]
	t.execWorker = int32(id)
	switch src {
	case DispatchLane:
		w.laneHits.Add(1)
	case DispatchLocal:
		w.localHits.Add(1)
	case DispatchSteal:
		w.steals.Add(1)
	}
	if t.trace != nil {
		// All measurement writes go into the TraceTask preallocated at
		// Submit; with tracing off this is a single nil check, so the
		// execution hot path stays allocation- and instrumentation-free.
		t.trace.Worker = id
		t.trace.Dispatch = src
		t.trace.QueueDepth = e.queuedLen()
		t.trace.BeginNS = e.sinceStart()
	}
	if t.spec.RunTraced != nil {
		t.spec.RunTraced(t.trace)
	} else if t.spec.Run != nil {
		t.spec.Run()
	}
	if t.spec.Then != nil {
		t.spec.Then(e)
	}
	if t.trace != nil {
		t.trace.EndNS = e.sinceStart()
	}

	// Completion: close the task against new successor edges, then release
	// every successor whose last unresolved dependency this was. None of
	// this touches the engine mutex.
	t.mu.Lock()
	t.done = true
	t.doneA.Store(true)
	succs := t.succs
	t.succs = nil
	t.mu.Unlock()
	for _, s := range succs {
		if s.nDeps.Add(-1) == 0 {
			e.release(s, id)
		}
	}
	if e.pending.Add(-1) == 0 {
		e.waitMu.Lock()
		e.waitCond.Broadcast()
		e.waitMu.Unlock()
	}
}

// Wait blocks until every submitted task (including tasks submitted from
// Then callbacks) has finished.
func (e *Engine) Wait() {
	e.waitMu.Lock()
	defer e.waitMu.Unlock()
	for e.pending.Load() > 0 {
		e.waitCond.Wait()
	}
}

// Close shuts the workers down. Pending tasks are drained first.
func (e *Engine) Close() {
	e.Wait()
	e.closed.Store(true)
	for _, w := range e.ws {
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
	e.wg.Wait()
}

// Trace returns the recorded execution trace (submission order). Only valid
// after Wait, and only when tracing was enabled.
func (e *Engine) Trace() []*TraceTask {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*TraceTask, len(e.trace))
	copy(out, e.trace)
	return out
}

// SchedCounters aggregates the scheduler's dispatch accounting: how tasks
// reached their workers and how the pool slept. Valid at any time; the
// counts are exact once Wait has returned.
type SchedCounters struct {
	// LaneHits, LocalHits and Steals partition the dispatches: shared
	// priority lane, own-deque pop, and steal respectively.
	LaneHits  int64
	LocalHits int64
	Steals    int64
	// RemoteReleases counts successors pushed to another worker's deque
	// because their written tile's previous version lives in that worker's
	// cache (the locality heuristic crossing workers).
	RemoteReleases int64
	// Parks counts worker sleep transitions — under the old single-heap
	// engine every completion broadcast-woke the whole pool; here wakeups
	// are targeted, so parks roughly track genuine idle periods.
	Parks int64
}

// Dispatches returns the total number of task dispatches.
func (c SchedCounters) Dispatches() int64 { return c.LaneHits + c.LocalHits + c.Steals }

// LocalHitRate returns the fraction of deque-path dispatches (everything
// below LanePriority) that the owning worker served from its own deque —
// the locality heuristic's hit rate.
func (c SchedCounters) LocalHitRate() float64 {
	if c.LocalHits+c.Steals == 0 {
		return 0
	}
	return float64(c.LocalHits) / float64(c.LocalHits+c.Steals)
}

// SchedCounters sums the per-worker scheduler counters.
func (e *Engine) SchedCounters() SchedCounters {
	var c SchedCounters
	for _, w := range e.ws {
		c.LaneHits += w.laneHits.Load()
		c.LocalHits += w.localHits.Load()
		c.Steals += w.steals.Load()
		c.RemoteReleases += w.remoteReleases.Load()
		c.Parks += w.parks.Load()
	}
	return c
}
