package runtime

import (
	"sync"
	"sync/atomic"
)

// deque is one worker's ready-task queue: a growable power-of-two ring with
// pushes at the tail and pops at either end.
//
// Thieves always take from the head — the oldest entry, the one whose cache
// affinity has decayed most, leaving the recently affinity-placed chain
// tasks at the tail for the owner. The owner's end is a policy choice
// (Config.OwnerLIFO, see the engine docs): the classic Chase–Lev discipline
// pops the tail (the successor just made ready, tiles still hot), but the
// default here is the head, because on the factorization DAG oldest-first
// drains the update wavefront in pipeline order instead of stranding
// early-step updates under newer pushes.
//
// Each deque carries its own mutex rather than a lock-free Chase–Lev
// protocol: the owner's push/pop fast path is uncontended (thieves only
// arrive when their own deque and the priority lane are empty), so the
// mutex is normally a single CAS, and the engine-wide contention the old
// single-heap scheduler suffered — every dispatch and every completion
// through one lock — is gone because each worker locks only its own queue.
// The separate atomic length counter lets thieves and the parking protocol
// probe for work without touching the mutex at all.
type deque struct {
	mu   sync.Mutex
	buf  []*task // power-of-two ring; index i lives at buf[i&(len-1)]
	head int64   // oldest element (steal end)
	tail int64   // one past the youngest element (owner end)
	n    atomic.Int64
}

// dequeInitCap is sized so a factorization step's trailing-update fan-out
// fits without growing: growth allocates, and the execution hot path is
// pinned allocation-free by TestExecutionZeroAllocNoTrace.
const dequeInitCap = 256

func (d *deque) init() {
	d.buf = make([]*task, dequeInitCap)
}

// grow doubles the ring. Callers hold d.mu.
func (d *deque) grow() {
	old := d.buf
	buf := make([]*task, 2*len(old))
	oldMask := int64(len(old) - 1)
	mask := int64(len(buf) - 1)
	for i := d.head; i < d.tail; i++ {
		buf[i&mask] = old[i&oldMask]
	}
	d.buf = buf
}

// push appends t at the owner end (the LIFO top). The owner pushes its own
// newly ready successors here; other workers push here too when t's cache
// affinity points at this deque's owner (locality-aware release).
func (d *deque) push(t *task) {
	d.mu.Lock()
	if d.tail-d.head == int64(len(d.buf)) {
		d.grow()
	}
	d.buf[d.tail&int64(len(d.buf)-1)] = t
	d.tail++
	d.n.Add(1)
	d.mu.Unlock()
}

// popTail removes and returns the youngest task — the owner's LIFO pop — or
// nil when the deque is empty.
func (d *deque) popTail() *task {
	if d.n.Load() == 0 {
		return nil
	}
	d.mu.Lock()
	if d.tail == d.head {
		d.mu.Unlock()
		return nil
	}
	d.tail--
	i := d.tail & int64(len(d.buf)-1)
	t := d.buf[i]
	d.buf[i] = nil
	d.n.Add(-1)
	d.mu.Unlock()
	return t
}

// popHead removes and returns the oldest task — the thief's FIFO steal — or
// nil when the deque is empty.
func (d *deque) popHead() *task {
	if d.n.Load() == 0 {
		return nil
	}
	d.mu.Lock()
	if d.tail == d.head {
		d.mu.Unlock()
		return nil
	}
	i := d.head & int64(len(d.buf)-1)
	t := d.buf[i]
	d.buf[i] = nil
	d.head++
	d.n.Add(-1)
	d.mu.Unlock()
	return t
}
