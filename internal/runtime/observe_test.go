package runtime

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	goruntime "runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestStatsHandBuiltGraph checks the Stats() aggregation on a small task
// graph with known kernels and a forced serial chain.
func TestStatsHandBuiltGraph(t *testing.T) {
	e := NewEngine(Config{Workers: 2, Trace: true})
	defer e.Close()
	h := e.NewHandle("x", 8, 0)
	spin := func() {
		deadline := time.Now().Add(200 * time.Microsecond)
		for time.Now().Before(deadline) {
		}
	}
	// Serial chain of three writers (GEMM, GEMM, TRSM) plus two parallel
	// readers (NORM).
	e.Submit(TaskSpec{Name: "g1", Kernel: "GEMM", Flops: 10, Accesses: []Access{W(h)}, Run: spin})
	e.Submit(TaskSpec{Name: "g2", Kernel: "GEMM", Flops: 10, Accesses: []Access{W(h)}, Run: spin})
	e.Submit(TaskSpec{Name: "t1", Kernel: "TRSM", Flops: 5, Accesses: []Access{W(h)}, Run: spin})
	e.Submit(TaskSpec{Name: "n1", Kernel: "NORM", Accesses: []Access{R(h)}, Run: spin})
	e.Submit(TaskSpec{Name: "n2", Kernel: "NORM", Accesses: []Access{R(h)}, Run: spin})
	e.Wait()

	s := e.Stats()
	if s.Tasks != 5 {
		t.Fatalf("Tasks = %d, want 5", s.Tasks)
	}
	if got := s.Kernels["GEMM"].Count; got != 2 {
		t.Fatalf("GEMM count = %d, want 2", got)
	}
	if got := s.Kernels["NORM"].Count; got != 2 {
		t.Fatalf("NORM count = %d, want 2", got)
	}
	g := s.Kernels["GEMM"]
	if g.Total <= 0 || g.Mean <= 0 || g.Max <= 0 || g.Max > g.Total {
		t.Fatalf("GEMM stat implausible: %+v", g)
	}
	if g.Flops != 20 {
		t.Fatalf("GEMM flops = %g, want 20", g.Flops)
	}
	if g.Mean > g.Max {
		t.Fatalf("mean %v > max %v", g.Mean, g.Max)
	}
	// The chain g1→g2→t1 serializes at least three spins; the critical path
	// must cover them and fit inside the span.
	if s.CriticalPath < 3*200*time.Microsecond/2 {
		t.Fatalf("critical path %v too short for a 3-task serial chain", s.CriticalPath)
	}
	if s.CriticalPath > s.Span+time.Millisecond {
		t.Fatalf("critical path %v exceeds span %v", s.CriticalPath, s.Span)
	}
	if s.Workers < 1 || s.Workers > 2 {
		t.Fatalf("Workers = %d", s.Workers)
	}
	var busy time.Duration
	for _, w := range s.Worker {
		busy += w.Busy
		if w.Busy+w.Idle < s.Span-time.Millisecond {
			t.Fatalf("worker busy+idle %v does not cover span %v", w.Busy+w.Idle, s.Span)
		}
	}
	if busy != s.TotalBusy() {
		t.Fatal("TotalBusy mismatch")
	}
	if u := s.Utilization(); u <= 0 || u > 1 {
		t.Fatalf("utilization %g out of range", u)
	}
	if s.QueueDepthMax < 0 || s.QueueDepthMean < 0 {
		t.Fatalf("queue depth stats negative: %+v", s)
	}
	names := s.KernelNames()
	if len(names) != 3 {
		t.Fatalf("kernel names %v", names)
	}
	var buf bytes.Buffer
	s.WriteTable(&buf)
	if buf.Len() == 0 {
		t.Fatal("WriteTable produced nothing")
	}
}

func TestStatsEmptyTrace(t *testing.T) {
	s := ComputeStats(nil)
	if s.Tasks != 0 || s.Span != 0 || len(s.Kernels) != 0 {
		t.Fatalf("empty-trace stats = %+v", s)
	}
	if s.Utilization() != 0 {
		t.Fatal("empty-trace utilization must be 0")
	}
}

// TestTraceTimestamps checks that every executed task records a worker slot
// and a begin ≤ end window, and that a dependent task begins after its
// predecessor ends.
func TestTraceTimestamps(t *testing.T) {
	e := NewEngine(Config{Workers: 4, Trace: true})
	defer e.Close()
	h := e.NewHandle("x", 8, 0)
	e.Submit(TaskSpec{Name: "a", Kernel: "A", Accesses: []Access{W(h)}})
	e.Submit(TaskSpec{Name: "b", Kernel: "B", Accesses: []Access{W(h)}})
	e.Wait()
	tr := e.Trace()
	for _, tt := range tr {
		if tt.BeginNS < 0 || tt.EndNS < tt.BeginNS {
			t.Fatalf("task %s window [%d, %d]", tt.Name, tt.BeginNS, tt.EndNS)
		}
		if tt.Worker < 0 || tt.Worker >= 4 {
			t.Fatalf("task %s worker %d", tt.Name, tt.Worker)
		}
	}
	if tr[1].BeginNS < tr[0].EndNS {
		t.Fatalf("dependent task began at %d before predecessor ended at %d", tr[1].BeginNS, tr[0].EndNS)
	}
}

// TestChromeTraceExport loads the exported JSON back and checks the
// trace-event structure: complete events on per-worker tracks, metadata,
// and one flow pair per cross-node message.
func TestChromeTraceExport(t *testing.T) {
	e := NewEngine(Config{Workers: 2, Trace: true})
	defer e.Close()
	a := e.NewHandle("a", 100, 0)
	e.Submit(TaskSpec{Name: "w", Kernel: "GETRF", Node: 0, Flops: 5, Accesses: []Access{W(a)}})
	e.Submit(TaskSpec{Name: "r", Kernel: "GEMM", Node: 1, Accesses: []Access{R(a)}}) // cross-node: one message
	e.Wait()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, e.Trace()); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	var xEvents, flowS, flowF, meta int
	for _, ev := range out.TraceEvents {
		switch ev["ph"] {
		case "X":
			xEvents++
			if _, ok := ev["dur"]; !ok {
				t.Fatalf("complete event without dur: %v", ev)
			}
			if ev["ts"].(float64) < 0 {
				t.Fatalf("negative timestamp: %v", ev)
			}
		case "s":
			flowS++
		case "f":
			flowF++
		case "M":
			meta++
		}
	}
	if xEvents != 2 {
		t.Fatalf("%d complete events, want 2", xEvents)
	}
	if flowS != 1 || flowF != 1 {
		t.Fatalf("flow events s=%d f=%d, want one pair for the cross-node message", flowS, flowF)
	}
	if meta < 2 {
		t.Fatalf("missing metadata events (%d)", meta)
	}
}

// TestSubmitDedupesPredecessorEdges covers the duplicate-access and
// shared-writer cases: the trace graph must stay simple and the dependency
// bookkeeping balanced (the engine would deadlock in Wait otherwise).
func TestSubmitDedupesPredecessorEdges(t *testing.T) {
	e := NewEngine(Config{Workers: 2, Trace: true})
	defer e.Close()
	h1 := e.NewHandle("h1", 8, 0)
	h2 := e.NewHandle("h2", 8, 0)

	// One writer for both handles...
	e.Submit(TaskSpec{Name: "w", Accesses: []Access{W(h1), W(h2)}})
	// ...then a task reading+writing the same handle (SWPTRSM-style stacked
	// access list) and reading the second: without dedup this records the
	// writer three times.
	e.Submit(TaskSpec{Name: "rw", Accesses: []Access{R(h1), W(h1), R(h2)}})
	// A task reading the same handle twice.
	e.Submit(TaskSpec{Name: "rr", Accesses: []Access{R(h2), R(h2)}})
	// A writer after the readers: WAR edges to rw and rr, once each.
	e.Submit(TaskSpec{Name: "w2", Accesses: []Access{W(h1), W(h2)}})
	e.Wait()

	tr := e.Trace()
	for _, tt := range tr {
		seen := map[int]bool{}
		for _, d := range tt.Deps {
			if seen[d] {
				t.Fatalf("task %s has duplicate dependency edge on %d: %v", tt.Name, d, tt.Deps)
			}
			seen[d] = true
		}
	}
	if n := len(tr[1].Deps); n != 1 {
		t.Fatalf("rw should depend on w exactly once, got %v", tr[1].Deps)
	}
	if n := len(tr[2].Deps); n != 1 {
		t.Fatalf("rr should depend on its writer exactly once, got %v", tr[2].Deps)
	}
	// w2 depends on rw (last writer of h1, reader of h2), w (last writer of
	// h2) and rr (reader of h2) — each exactly once.
	if n := len(tr[3].Deps); n != 3 {
		t.Fatalf("w2 deps = %v, want exactly {rw, w, rr}", tr[3].Deps)
	}
}

// TestExecutionZeroAllocNoTrace verifies the acceptance criterion that the
// instrumentation adds zero allocations to task execution when tracing is
// disabled: tasks are submitted up front behind a gate, then executed while
// allocation counters run. The single-worker case pins the serial
// dispatch/completion/release path; the multi-worker fan-out case pins the
// steal path, the locality-release path, and the park/wake protocol.
func TestExecutionZeroAllocNoTrace(t *testing.T) {
	t.Run("serial-chain", func(t *testing.T) {
		e := NewEngine(Config{Workers: 1})
		defer e.Close()
		h := e.NewHandle("x", 8, 0)
		release := make(chan struct{})
		e.Submit(TaskSpec{Name: "gate", Accesses: []Access{W(h)}, Run: func() { <-release }})
		var sink int
		for i := 0; i < 200; i++ {
			e.Submit(TaskSpec{Name: "t", Accesses: []Access{W(h)}, Run: func() { sink++ }})
		}

		var before, after goruntime.MemStats
		goruntime.GC()
		goruntime.ReadMemStats(&before)
		close(release)
		e.Wait()
		goruntime.ReadMemStats(&after)

		// Allow a little slack for runtime-internal bookkeeping (goroutine
		// wakeups etc.), but 200 task executions must not allocate per task.
		if got := after.Mallocs - before.Mallocs; got > 20 {
			t.Fatalf("executing 200 traced-off tasks allocated %d objects, want ~0", got)
		}
		if sink != 200 {
			t.Fatalf("ran %d tasks", sink)
		}
	})

	t.Run("fanout-steal", func(t *testing.T) {
		e := NewEngine(Config{Workers: 4})
		defer e.Close()
		h := e.NewHandle("x", 8, 0)
		release := make(chan struct{})
		// The fan-out stays below dequeInitCap so the release path never
		// grows a deque ring; ring growth is the one amortized allocation
		// the scheduler is allowed outside this pin.
		e.Submit(TaskSpec{Name: "gate", Accesses: []Access{W(h)}, Run: func() { <-release }})
		var sink atomic.Int32
		for i := 0; i < 200; i++ {
			e.Submit(TaskSpec{Name: "t", Accesses: []Access{R(h)}, Run: func() { sink.Add(1) }})
		}

		var before, after goruntime.MemStats
		goruntime.GC()
		goruntime.ReadMemStats(&before)
		close(release)
		e.Wait()
		goruntime.ReadMemStats(&after)

		if got := after.Mallocs - before.Mallocs; got > 30 {
			t.Fatalf("executing a 200-task fan-out across 4 workers allocated %d objects, want ~0", got)
		}
		if sink.Load() != 200 {
			t.Fatalf("ran %d tasks", sink.Load())
		}
		if c := e.SchedCounters(); c.Steals == 0 {
			t.Logf("note: fan-out completed without steals (counters %+v)", c)
		}
	})
}

// BenchmarkDispatchContended measures the per-task scheduler overhead under
// worker contention: 64 independent WAW chains keep every queue busy while
// the submitting goroutine races the pool. This is the dispatch benchmark
// BENCH_solver.json's overhead comparison refers to. Under -benchmem the
// steady 2 allocs/op are the task record and access list Submit allocates;
// dispatch, steal and successor release add none
// (TestExecutionZeroAllocNoTrace pins the execution side in isolation).
func BenchmarkDispatchContended(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e := NewEngine(Config{Workers: workers})
			defer e.Close()
			hs := make([]*Handle, 64)
			for i := range hs {
				hs[i] = e.NewHandle("x", 8, 0)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Submit(TaskSpec{Name: "t", Accesses: []Access{W(hs[i%64])}})
			}
			e.Wait()
		})
	}
}

// BenchmarkTaskExecution measures the per-task engine overhead
// (submission + dispatch + completion) with tracing off and on; run with
// -benchmem to see the allocation counts the DESIGN.md overhead guarantees
// refer to.
func BenchmarkTaskExecution(b *testing.B) {
	for _, tracing := range []bool{false, true} {
		name := "trace=off"
		if tracing {
			name = "trace=on"
		}
		b.Run(name, func(b *testing.B) {
			e := NewEngine(Config{Workers: 1, Trace: tracing})
			defer e.Close()
			h := e.NewHandle("x", 8, 0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Submit(TaskSpec{Name: "t", Accesses: []Access{W(h)}})
			}
			e.Wait()
		})
	}
}

// TestStatsSnapshotExportAndMerge: the wire-form export must mirror the
// aggregate exactly, survive a JSON round-trip, and fold additively.
func TestStatsSnapshotExportAndMerge(t *testing.T) {
	s := &Stats{
		Tasks:        3,
		Span:         10 * time.Millisecond,
		CriticalPath: 4 * time.Millisecond,
		Worker:       []WorkerStat{{Busy: 6 * time.Millisecond}, {Busy: 2 * time.Millisecond}},
		Kernels: map[string]KernelStat{
			"GEMM": {Count: 2, Total: 6 * time.Millisecond, Mean: 3 * time.Millisecond, Max: 4 * time.Millisecond, Flops: 20},
			"TRSM": {Count: 1, Total: 2 * time.Millisecond, Mean: 2 * time.Millisecond, Max: 2 * time.Millisecond, Flops: 5},
		},
	}
	snap := s.Snapshot()
	if snap.Tasks != 3 || snap.SpanNS != int64(10*time.Millisecond) || snap.BusyNS != int64(8*time.Millisecond) {
		t.Fatalf("snapshot header wrong: %+v", snap)
	}
	if g := snap.Kernels["GEMM"]; g.Count != 2 || g.TotalNS != int64(6*time.Millisecond) || g.Flops != 20 {
		t.Fatalf("GEMM snapshot wrong: %+v", g)
	}

	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(snap); err != nil {
		t.Fatal(err)
	}
	var back StatsSnapshot
	if err := json.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Fatalf("JSON round-trip changed the snapshot:\n  out %+v\n  in  %+v", snap, back)
	}

	var acc StatsSnapshot
	acc.Add(snap)
	acc.Add(snap)
	if acc.Tasks != 6 || acc.BusyNS != 2*snap.BusyNS {
		t.Fatalf("merge totals wrong: %+v", acc)
	}
	g := acc.Kernels["GEMM"]
	if g.Count != 4 || g.TotalNS != 2*int64(6*time.Millisecond) || g.MaxNS != int64(4*time.Millisecond) {
		t.Fatalf("merged GEMM wrong: %+v", g)
	}
	if g.MeanNS != g.TotalNS/4 {
		t.Fatalf("merged GEMM mean %d, want %d", g.MeanNS, g.TotalNS/4)
	}
}
