package runtime

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestStealStress floods one worker's deque through a fan-out hub and checks
// that the rest of the pool steals its way through the backlog. The task
// bodies sleep so the hub worker cannot drain its own deque before the woken
// thieves arrive; run under -race this also stress-tests the deque, parking
// and wake protocols.
func TestStealStress(t *testing.T) {
	const workers, fan = 8, 400
	e := NewEngine(Config{Workers: workers})
	defer e.Close()
	hub := e.NewHandle("hub", 8, 0)
	var ran atomic.Int64
	// The hub blocks until every leaf is submitted, so all of them become
	// ready through its completion (the deque release path), not at submit
	// (the lane injection path).
	gate := make(chan struct{})
	e.Submit(TaskSpec{Name: "hub", Accesses: []Access{W(hub)}, Run: func() { <-gate }})
	for i := 0; i < fan; i++ {
		// Pure readers of the hub's output: no written handle, so no cache
		// affinity — every one lands on the deque of the worker that ran
		// the hub, and the thieves must pull from there.
		e.Submit(TaskSpec{Name: "leaf", Accesses: []Access{R(hub)}, Run: func() {
			time.Sleep(50 * time.Microsecond)
			ran.Add(1)
		}})
	}
	close(gate)
	e.Wait()
	if got := ran.Load(); got != fan {
		t.Fatalf("ran %d of %d leaves", got, fan)
	}
	c := e.SchedCounters()
	if c.Dispatches() != fan+1 {
		t.Fatalf("dispatches = %d, want %d", c.Dispatches(), fan+1)
	}
	if c.Steals == 0 {
		t.Fatalf("no steals despite a %d-task fan-out on one deque: %+v", fan, c)
	}
}

// TestLocalityChainStaysLocal checks the locality-aware release: a WAW chain
// on one handle re-versions the same datum, so every link's affinity points
// at the worker that ran the previous link, and with nothing else to do the
// whole chain must execute on a single worker from its own deque — no
// steals, no lane traffic after the injected head.
func TestLocalityChainStaysLocal(t *testing.T) {
	const links = 50
	e := NewEngine(Config{Workers: 4, Trace: true})
	defer e.Close()
	h := e.NewHandle("tile", 8, 0)
	for i := 0; i < links; i++ {
		var body func()
		if i == 0 {
			// The head sleeps long enough for the other workers' startup
			// polls to settle into parking; afterwards nothing wakes them —
			// a one-deep own-deque push never summons help.
			body = func() { time.Sleep(time.Millisecond) }
		}
		e.Submit(TaskSpec{Name: "link", Accesses: []Access{W(h)}, Run: body})
	}
	e.Wait()
	tr := e.Trace()
	if len(tr) != links {
		t.Fatalf("traced %d tasks", len(tr))
	}
	if tr[0].Dispatch != DispatchLane {
		t.Fatalf("chain head dispatched via %v, want lane injection", tr[0].Dispatch)
	}
	owner := tr[0].Worker
	for _, tt := range tr[1:] {
		if tt.Worker != owner {
			t.Fatalf("link %d migrated to worker %d (chain owner %d)", tt.ID, tt.Worker, owner)
		}
		if tt.Dispatch != DispatchLocal {
			t.Fatalf("link %d dispatched via %v, want local", tt.ID, tt.Dispatch)
		}
	}
	c := e.SchedCounters()
	if c.Steals != 0 || c.RemoteReleases != 0 {
		t.Fatalf("single chain caused steals/remote releases: %+v", c)
	}
	if c.LocalHits != links-1 {
		t.Fatalf("local hits = %d, want %d", c.LocalHits, links-1)
	}
}

// TestAffinityReleaseCrossesWorkers checks the cross-worker half of the
// locality heuristic: when worker A produced version v of a tile and worker
// B's task completion makes the tile's v+1 writer ready, the new task must
// land on A's deque (a remote release), not B's.
func TestAffinityReleaseCrossesWorkers(t *testing.T) {
	e := NewEngine(Config{Workers: 2, Trace: true})
	defer e.Close()
	tile := e.NewHandle("tile", 8, 0)
	dep := e.NewHandle("dep", 8, 0)

	step := make(chan struct{})
	// v1 writer of tile: runs first, on some worker A.
	e.Submit(TaskSpec{Name: "produce", Accesses: []Access{W(tile)}})
	// A long task occupies A... then "other" (below) must run on worker B.
	e.Submit(TaskSpec{Name: "occupy", Accesses: []Access{R(tile)}, Run: func() { <-step }})
	// Runs on worker B (A is blocked in occupy); its completion releases
	// "consume", whose affinity (last writer of tile) executed on A.
	e.Submit(TaskSpec{Name: "other", Accesses: []Access{W(dep)}, Run: func() {
		close(step) // free A so it can pop the affinity-released task
		time.Sleep(200 * time.Microsecond)
	}})
	e.Submit(TaskSpec{Name: "consume", Accesses: []Access{W(tile), R(dep)}})
	e.Wait()

	tr := e.Trace()
	byName := map[string]*TraceTask{}
	for _, tt := range tr {
		byName[tt.Name] = tt
	}
	prod, other, cons := byName["produce"], byName["other"], byName["consume"]
	if other.Worker == prod.Worker {
		t.Skip("occupy/other landed on one worker; affinity path not exercised this run")
	}
	if cons.Worker != prod.Worker {
		t.Fatalf("consume ran on worker %d, want the tile producer's worker %d", cons.Worker, prod.Worker)
	}
	if c := e.SchedCounters(); c.RemoteReleases == 0 {
		t.Fatalf("expected a remote release, counters %+v", c)
	}
}

// TestDeterminismManyWorkersRace is the scheduler-correctness pin of the
// dataflow contract at scale: the same submission program yields bit-equal
// results at 1, 2, 8 and 16 workers, with enough parallel slack in the graph
// that deques, steals, parking and the lane all engage (run under -race by
// the tier1 gate).
func TestDeterminismManyWorkersRace(t *testing.T) {
	run := func(workers int, lifo bool) []int {
		e := NewEngine(Config{Workers: workers, OwnerLIFO: lifo})
		defer e.Close()
		const n = 16
		hs := make([]*Handle, n)
		vals := make([]int, n)
		for i := range hs {
			hs[i] = e.NewHandle("h", 8, 0)
		}
		for i := 0; i < n; i++ {
			i := i
			e.Submit(TaskSpec{Name: "init", Accesses: []Access{W(hs[i])}, Run: func() { vals[i] = i + 1 }})
		}
		for step := 0; step < 30; step++ {
			prio := 0
			if step%3 == 0 {
				prio = LanePriority + step // every third wave through the lane
			}
			for i := 0; i < n-1; i++ {
				i := i
				e.Submit(TaskSpec{Name: "mix", Priority: prio, Accesses: []Access{R(hs[i]), W(hs[i+1])}, Run: func() {
					vals[i+1] = vals[i+1]*31 + vals[i]
				}})
			}
		}
		e.Wait()
		return vals
	}
	want := run(1, false)
	for _, w := range []int{2, 8, 16} {
		// Both owner-pop policies must leave the results untouched: the
		// policy changes dispatch order, never the dataflow.
		for _, lifo := range []bool{false, true} {
			got := run(w, lifo)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("workers=%d lifo=%v: vals[%d]=%d, want %d", w, lifo, i, got[i], want[i])
				}
			}
		}
	}
}

// TestParkWakeChurn drives the pool through repeated empty→full→empty
// transitions so the targeted parking protocol's register/re-check/wake
// handshake is exercised from both sides (lost-wakeup hunting, -race).
func TestParkWakeChurn(t *testing.T) {
	e := NewEngine(Config{Workers: 4})
	defer e.Close()
	var total atomic.Int64
	for round := 0; round < 200; round++ {
		var wg sync.WaitGroup
		wg.Add(8)
		for i := 0; i < 8; i++ {
			e.Submit(TaskSpec{Name: "burst", Run: func() {
				total.Add(1)
				wg.Done()
			}})
		}
		wg.Wait() // drain fully so every round re-parks the pool
	}
	e.Wait()
	if got := total.Load(); got != 1600 {
		t.Fatalf("ran %d tasks, want 1600", got)
	}
	if c := e.SchedCounters(); c.Parks == 0 {
		t.Fatalf("pool never parked across 200 empty transitions: %+v", c)
	}
}
