package runtime

import (
	"fmt"
	"strings"
)

// DOT renders a recorded trace as a Graphviz digraph, one node per task,
// one edge per dependency — the reproduction of the paper's Figure 1
// dataflow diagram. Tasks are colored by kernel family and clustered by
// node rank when clusterByNode is set.
func DOT(trace []*TraceTask, clusterByNode bool) string {
	var b strings.Builder
	b.WriteString("digraph luqr {\n  rankdir=TB;\n  node [shape=box, style=filled, fontname=\"Helvetica\"];\n")
	color := func(kernel string) string {
		switch {
		case strings.HasPrefix(kernel, "GETRF"), kernel == "TRSM", kernel == "GEMM", kernel == "SWPTRSM":
			return "#c6dbef" // LU path: blue family
		case strings.HasPrefix(kernel, "GEQRT"), strings.HasPrefix(kernel, "TS"), strings.HasPrefix(kernel, "TT"), strings.HasPrefix(kernel, "UNMQR"):
			return "#c7e9c0" // QR path: green family
		case kernel == "BACKUP", kernel == "RESTORE", kernel == "PROPAGATE", kernel == "DECIDE":
			return "#fdd0a2" // control path: orange family
		}
		return "#eeeeee"
	}
	writeNode := func(t *TraceTask) {
		fmt.Fprintf(&b, "  t%d [label=\"%s\", fillcolor=\"%s\"];\n", t.ID, t.Name, color(t.Kernel))
	}
	if clusterByNode {
		byNode := map[int][]*TraceTask{}
		order := []int{}
		for _, t := range trace {
			if _, ok := byNode[t.Node]; !ok {
				order = append(order, t.Node)
			}
			byNode[t.Node] = append(byNode[t.Node], t)
		}
		for _, n := range order {
			fmt.Fprintf(&b, "  subgraph cluster_node%d {\n    label=\"node %d\";\n", n, n)
			for _, t := range byNode[n] {
				b.WriteString("  ")
				writeNode(t)
			}
			b.WriteString("  }\n")
		}
	} else {
		for _, t := range trace {
			writeNode(t)
		}
	}
	for _, t := range trace {
		for _, d := range t.Deps {
			fmt.Fprintf(&b, "  t%d -> t%d;\n", d, t.ID)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
