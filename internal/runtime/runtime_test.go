package runtime

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestSequentialChain(t *testing.T) {
	e := NewEngine(Config{Workers: 4})
	defer e.Close()
	h := e.NewHandle("x", 8, 0)
	var order []int
	var mu sync.Mutex
	for i := 0; i < 50; i++ {
		i := i
		e.Submit(TaskSpec{
			Name:     "step",
			Accesses: []Access{W(h)},
			Run: func() {
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
			},
		})
	}
	e.Wait()
	if len(order) != 50 {
		t.Fatalf("ran %d tasks", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("WAW chain executed out of order: %v", order)
		}
	}
}

func TestReadersRunConcurrentlyBetweenWrites(t *testing.T) {
	e := NewEngine(Config{Workers: 4})
	defer e.Close()
	h := e.NewHandle("x", 8, 0)
	var stage int32
	e.Submit(TaskSpec{Name: "w1", Accesses: []Access{W(h)}, Run: func() { atomic.StoreInt32(&stage, 1) }})
	var readsOK int32
	for i := 0; i < 10; i++ {
		e.Submit(TaskSpec{Name: "r", Accesses: []Access{R(h)}, Run: func() {
			if atomic.LoadInt32(&stage) == 1 {
				atomic.AddInt32(&readsOK, 1)
			}
		}})
	}
	e.Submit(TaskSpec{Name: "w2", Accesses: []Access{W(h)}, Run: func() { atomic.StoreInt32(&stage, 2) }})
	e.Wait()
	if readsOK != 10 {
		t.Fatalf("only %d reads saw the first write and not the second", readsOK)
	}
}

func TestRAWDependency(t *testing.T) {
	e := NewEngine(Config{Workers: 8})
	defer e.Close()
	a := e.NewHandle("a", 8, 0)
	b := e.NewHandle("b", 8, 0)
	val := 0
	e.Submit(TaskSpec{Name: "wa", Accesses: []Access{W(a)}, Run: func() { val = 42 }})
	got := 0
	e.Submit(TaskSpec{Name: "copy", Accesses: []Access{R(a), W(b)}, Run: func() { got = val }})
	e.Wait()
	if got != 42 {
		t.Fatalf("RAW violated: got %d", got)
	}
}

func TestDiamond(t *testing.T) {
	// a -> (b, c) -> d: d must see both updates.
	e := NewEngine(Config{Workers: 4})
	defer e.Close()
	ha := e.NewHandle("a", 8, 0)
	hb := e.NewHandle("b", 8, 0)
	hc := e.NewHandle("c", 8, 0)
	var a, b, c, d int
	e.Submit(TaskSpec{Name: "a", Accesses: []Access{W(ha)}, Run: func() { a = 1 }})
	e.Submit(TaskSpec{Name: "b", Accesses: []Access{R(ha), W(hb)}, Run: func() { b = a + 1 }})
	e.Submit(TaskSpec{Name: "c", Accesses: []Access{R(ha), W(hc)}, Run: func() { c = a + 2 }})
	e.Submit(TaskSpec{Name: "d", Accesses: []Access{R(hb), R(hc)}, Run: func() { d = b + c }})
	e.Wait()
	if d != 5 {
		t.Fatalf("diamond result %d, want 5", d)
	}
}

func TestDynamicUnfolding(t *testing.T) {
	// A decision task submits a different follow-up task depending on a
	// value computed at run time — the hybrid algorithm's core pattern.
	e := NewEngine(Config{Workers: 4})
	defer e.Close()
	h := e.NewHandle("x", 8, 0)
	result := ""
	decide := func(branch string) {
		e.Submit(TaskSpec{Name: "decision", Accesses: []Access{W(h)}, Then: func(en *Engine) {
			if branch == "lu" {
				en.Submit(TaskSpec{Name: "lu-step", Accesses: []Access{W(h)}, Run: func() { result += "L" }})
			} else {
				en.Submit(TaskSpec{Name: "qr-step", Accesses: []Access{W(h)}, Run: func() { result += "Q" }})
			}
		}})
	}
	decide("lu")
	e.Wait()
	decide("qr")
	e.Wait()
	decide("lu")
	e.Wait()
	if result != "LQL" {
		t.Fatalf("dynamic unfolding produced %q", result)
	}
}

func TestNestedUnfoldingCountsPending(t *testing.T) {
	// Wait must not return before recursively submitted tasks finish.
	e := NewEngine(Config{Workers: 2})
	defer e.Close()
	var count int32
	var spawn func(depth int) TaskSpec
	spawn = func(depth int) TaskSpec {
		return TaskSpec{
			Name: "spawn",
			Run:  func() { atomic.AddInt32(&count, 1) },
			Then: func(en *Engine) {
				if depth > 0 {
					en.Submit(spawn(depth - 1))
					en.Submit(spawn(depth - 1))
				}
			},
		}
	}
	e.Submit(spawn(6))
	e.Wait()
	if got := atomic.LoadInt32(&count); got != 127 { // 2^7 − 1
		t.Fatalf("ran %d tasks, want 127", got)
	}
}

func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	// The same submission program must give identical results for any
	// worker count (the paper's dataflow semantics).
	run := func(workers int) []int {
		e := NewEngine(Config{Workers: workers})
		defer e.Close()
		n := 8
		hs := make([]*Handle, n)
		vals := make([]int, n)
		for i := range hs {
			hs[i] = e.NewHandle("h", 8, 0)
		}
		for i := 0; i < n; i++ {
			i := i
			e.Submit(TaskSpec{Name: "init", Accesses: []Access{W(hs[i])}, Run: func() { vals[i] = i }})
		}
		for step := 0; step < 20; step++ {
			for i := 0; i < n-1; i++ {
				i := i
				e.Submit(TaskSpec{Name: "mix", Accesses: []Access{R(hs[i]), W(hs[i+1])}, Run: func() {
					vals[i+1] = vals[i+1]*3 + vals[i]
				}})
			}
		}
		e.Wait()
		return vals
	}
	want := run(1)
	for _, w := range []int{2, 4, 8, 16} {
		got := run(w)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: vals[%d]=%d, want %d", w, i, got[i], want[i])
			}
		}
	}
}

func TestPriorityOrderWhenSerialized(t *testing.T) {
	// With one worker and all tasks ready, lane tasks (Priority ≥
	// LanePriority) must run in priority order, before any deque task.
	e := NewEngine(Config{Workers: 1})
	defer e.Close()
	var mu sync.Mutex
	var order []string
	gate := e.NewHandle("gate", 8, 0)
	// Block the single worker so the queues can fill up.
	release := make(chan struct{})
	e.Submit(TaskSpec{Name: "gate", Accesses: []Access{W(gate)}, Run: func() { <-release }})
	add := func(name string, prio int) {
		e.Submit(TaskSpec{Name: name, Priority: prio, Accesses: []Access{R(gate)}, Run: func() {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
		}})
	}
	add("low", 0) // below LanePriority: rides the worker deque
	add("high", LanePriority+10)
	add("mid", LanePriority+5)
	close(release)
	e.Wait()
	if len(order) != 3 || order[0] != "high" || order[1] != "mid" || order[2] != "low" {
		t.Fatalf("priority order %v", order)
	}
}

func TestLanePriorityOrderAtSubmit(t *testing.T) {
	// Ready-at-submit tasks are injected into the shared lane regardless of
	// priority, so a burst of independent roots still runs highest-first
	// when serialized on one worker.
	e := NewEngine(Config{Workers: 1})
	defer e.Close()
	gate := e.NewHandle("gate", 8, 0)
	release := make(chan struct{})
	e.Submit(TaskSpec{Name: "gate", Accesses: []Access{W(gate)}, Run: func() { <-release }})
	var mu sync.Mutex
	var order []int
	for _, prio := range []int{3, 9, 1, 7} {
		prio := prio
		// Independent tasks (no accesses) are ready at submit; the gate task
		// keeps the worker busy while they pile up in the lane.
		e.Submit(TaskSpec{Name: "root", Priority: prio, Run: func() {
			mu.Lock()
			order = append(order, prio)
			mu.Unlock()
		}})
	}
	close(release)
	e.Wait()
	want := []int{9, 7, 3, 1}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("lane order %v, want %v", order, want)
		}
	}
}

func TestTraceDepsAndMessages(t *testing.T) {
	e := NewEngine(Config{Workers: 1, Trace: true})
	defer e.Close()
	a := e.NewHandle("a", 100, 0) // owned by node 0
	e.Submit(TaskSpec{Name: "w", Kernel: "GETRF", Node: 0, Flops: 5, Accesses: []Access{W(a)}})
	e.Submit(TaskSpec{Name: "r1", Kernel: "GEMM", Node: 1, Accesses: []Access{R(a)}})
	e.Submit(TaskSpec{Name: "r2", Kernel: "GEMM", Node: 1, Accesses: []Access{R(a)}}) // same node: no second message
	e.Submit(TaskSpec{Name: "r3", Kernel: "GEMM", Node: 2, Accesses: []Access{R(a)}})
	e.Wait()
	tr := e.Trace()
	if len(tr) != 4 {
		t.Fatalf("trace has %d tasks", len(tr))
	}
	if tr[0].Flops != 5 || tr[0].Kernel != "GETRF" {
		t.Fatal("trace metadata lost")
	}
	if len(tr[1].Deps) != 1 || tr[1].Deps[0] != tr[0].ID {
		t.Fatalf("r1 deps = %v", tr[1].Deps)
	}
	if len(tr[1].Recv) != 1 || tr[1].Recv[0] != (Message{From: 0, To: 1, Bytes: 100}) {
		t.Fatalf("r1 messages = %v", tr[1].Recv)
	}
	if len(tr[2].Recv) != 0 {
		t.Fatalf("r2 should reuse the broadcast: %v", tr[2].Recv)
	}
	if len(tr[3].Recv) != 1 || tr[3].Recv[0].To != 2 {
		t.Fatalf("r3 messages = %v", tr[3].Recv)
	}
}

func TestTraceInitialHomeTransfer(t *testing.T) {
	e := NewEngine(Config{Workers: 1, Trace: true})
	defer e.Close()
	a := e.NewHandle("a", 64, 3) // initial version lives on node 3
	e.Submit(TaskSpec{Name: "r", Node: 1, Accesses: []Access{R(a)}})
	e.Wait()
	tr := e.Trace()
	if len(tr[0].Recv) != 1 || tr[0].Recv[0] != (Message{From: 3, To: 1, Bytes: 64}) {
		t.Fatalf("initial transfer = %v", tr[0].Recv)
	}
}

func TestWARBlocksEarlyWrite(t *testing.T) {
	f := func(seed int64) bool {
		e := NewEngine(Config{Workers: 4})
		defer e.Close()
		h := e.NewHandle("x", 8, 0)
		v := 0
		e.Submit(TaskSpec{Name: "w1", Accesses: []Access{W(h)}, Run: func() { v = 1 }})
		saw := make([]int, 5)
		for i := 0; i < 5; i++ {
			i := i
			e.Submit(TaskSpec{Name: "r", Accesses: []Access{R(h)}, Run: func() { saw[i] = v }})
		}
		e.Submit(TaskSpec{Name: "w2", Accesses: []Access{W(h)}, Run: func() { v = 2 }})
		e.Wait()
		for _, s := range saw {
			if s != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestDOTOutput(t *testing.T) {
	e := NewEngine(Config{Workers: 1, Trace: true})
	defer e.Close()
	h := e.NewHandle("x", 8, 0)
	e.Submit(TaskSpec{Name: "Backup(0)", Kernel: "BACKUP", Accesses: []Access{W(h)}})
	e.Submit(TaskSpec{Name: "GEMM(1,1)", Kernel: "GEMM", Node: 1, Accesses: []Access{W(h)}})
	e.Wait()
	dot := DOT(e.Trace(), true)
	for _, want := range []string{"digraph", "Backup(0)", "GEMM(1,1)", "t0 -> t1", "cluster_node1"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, dot)
		}
	}
}
