package runtime

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// KernelStat aggregates the measured execution times of one kernel family.
type KernelStat struct {
	Count int
	Total time.Duration
	Mean  time.Duration
	Max   time.Duration
	Flops float64 // model flops summed over the family's tasks
	// Conv is the portion of Total spent in precision conversions (float32
	// tile promotions/demotions charged via TraceTask.ChargeConv).
	Conv time.Duration
}

// WorkerStat reports how one worker spent the measured span.
type WorkerStat struct {
	Tasks int
	Busy  time.Duration // Σ task durations executed by this worker
	Idle  time.Duration // Span − Busy
}

// Stats is the aggregate view of one measured execution, computed from the
// recorded trace. It answers the paper's §V time-breakdown questions for a
// real run: where did the time go (per-kernel), how well were the workers
// used (busy vs. idle), how deep did the ready queue run (scheduler
// pressure), and how long is the dependency-critical path through the
// measured durations (the lower bound no worker count can beat).
type Stats struct {
	Tasks   int
	Workers int
	// Span is the wall-clock window covered by the trace: latest task end
	// minus earliest task begin.
	Span    time.Duration
	Kernels map[string]KernelStat
	Worker  []WorkerStat
	// CriticalPath is the longest chain of measured task durations through
	// the dependency edges.
	CriticalPath time.Duration
	// QueueDepthMean / QueueDepthMax summarize the ready-queue depth
	// sampled at every task dispatch.
	QueueDepthMean float64
	QueueDepthMax  int
	// LaneHits, LocalHits and Steals partition the dispatches by route:
	// shared priority lane, the executing worker's own deque, or a steal
	// from another worker's deque.
	LaneHits  int
	LocalHits int
	Steals    int
	// ConvTotal is the total time tasks spent in precision conversions
	// (summed TraceTask.ConvNS) — the quantity the resident-tile epochs
	// exist to shrink.
	ConvTotal time.Duration
}

// LocalHitRate returns the fraction of deque-path dispatches the executing
// worker served from its own deque — how often the locality-aware release
// kept a task's tile chain on the worker that produced it.
func (s *Stats) LocalHitRate() float64 {
	if s.LocalHits+s.Steals == 0 {
		return 0
	}
	return float64(s.LocalHits) / float64(s.LocalHits+s.Steals)
}

// Stats aggregates the engine's recorded trace. Only valid after Wait, and
// only when tracing was enabled; returns an empty Stats otherwise.
func (e *Engine) Stats() *Stats {
	return ComputeStats(e.Trace())
}

// ComputeStats aggregates a measured trace (any slice of TraceTasks with
// Begin/End timestamps, e.g. core.Report.Trace).
func ComputeStats(trace []*TraceTask) *Stats {
	s := &Stats{Kernels: map[string]KernelStat{}}
	if len(trace) == 0 {
		return s
	}
	s.Tasks = len(trace)

	minBegin, maxEnd := trace[0].BeginNS, trace[0].EndNS
	maxWorker := 0
	depthSum := 0
	for _, t := range trace {
		if t.BeginNS < minBegin {
			minBegin = t.BeginNS
		}
		if t.EndNS > maxEnd {
			maxEnd = t.EndNS
		}
		if t.Worker > maxWorker {
			maxWorker = t.Worker
		}
		depthSum += t.QueueDepth
		if t.QueueDepth > s.QueueDepthMax {
			s.QueueDepthMax = t.QueueDepth
		}
		switch t.Dispatch {
		case DispatchLane:
			s.LaneHits++
		case DispatchLocal:
			s.LocalHits++
		case DispatchSteal:
			s.Steals++
		}

		d := t.Duration()
		ks := s.Kernels[t.Kernel]
		ks.Count++
		ks.Total += d
		if d > ks.Max {
			ks.Max = d
		}
		ks.Flops += t.Flops
		ks.Conv += time.Duration(t.ConvNS)
		s.Kernels[t.Kernel] = ks
		s.ConvTotal += time.Duration(t.ConvNS)
	}
	for k, ks := range s.Kernels {
		ks.Mean = ks.Total / time.Duration(ks.Count)
		s.Kernels[k] = ks
	}
	s.Span = time.Duration(maxEnd - minBegin)
	s.QueueDepthMean = float64(depthSum) / float64(len(trace))

	s.Workers = maxWorker + 1
	s.Worker = make([]WorkerStat, s.Workers)
	for _, t := range trace {
		w := &s.Worker[t.Worker]
		w.Tasks++
		w.Busy += t.Duration()
	}
	for i := range s.Worker {
		if idle := s.Span - s.Worker[i].Busy; idle > 0 {
			s.Worker[i].Idle = idle
		}
	}

	// Critical path: longest measured-duration chain through the dependency
	// edges. Task IDs are assigned in submission order and every recorded
	// dependency points at an earlier submission, so one pass over the trace
	// in ID order is a topological sweep.
	byID := make(map[int]int, len(trace))
	order := make([]int, len(trace))
	for pos := range trace {
		order[pos] = pos
	}
	sort.Slice(order, func(i, j int) bool { return trace[order[i]].ID < trace[order[j]].ID })
	longest := make([]time.Duration, len(trace))
	for _, pos := range order {
		t := trace[pos]
		var ready time.Duration
		for _, d := range t.Deps {
			if dp, ok := byID[d]; ok && longest[dp] > ready {
				ready = longest[dp]
			}
		}
		longest[pos] = ready + t.Duration()
		byID[t.ID] = pos
		if longest[pos] > s.CriticalPath {
			s.CriticalPath = longest[pos]
		}
	}
	return s
}

// KernelSnapshot is the JSON-serializable export of one kernel family's
// aggregate (KernelStat with explicit nanosecond fields, so the wire format
// is stable regardless of how time.Duration marshals).
type KernelSnapshot struct {
	Count   int     `json:"count"`
	TotalNS int64   `json:"total_ns"`
	MeanNS  int64   `json:"mean_ns"`
	MaxNS   int64   `json:"max_ns"`
	Flops   float64 `json:"flops"`
	ConvNS  int64   `json:"conv_ns,omitempty"`
}

// StatsSnapshot is the JSON-serializable export of a Stats aggregate — the
// shape the solver service's /metrics endpoint accumulates and serves.
// Mergeable: Add folds another snapshot in, so long-running consumers can
// keep one running total across many factorizations.
type StatsSnapshot struct {
	Tasks          int                       `json:"tasks"`
	SpanNS         int64                     `json:"span_ns"`
	BusyNS         int64                     `json:"busy_ns"`
	CriticalPathNS int64                     `json:"critical_path_ns"`
	ConvNS         int64                     `json:"conv_ns,omitempty"`
	Kernels        map[string]KernelSnapshot `json:"kernels"`
}

// Snapshot exports the aggregate in wire form.
func (s *Stats) Snapshot() StatsSnapshot {
	out := StatsSnapshot{
		Tasks:          s.Tasks,
		SpanNS:         int64(s.Span),
		BusyNS:         int64(s.TotalBusy()),
		CriticalPathNS: int64(s.CriticalPath),
		ConvNS:         int64(s.ConvTotal),
		Kernels:        make(map[string]KernelSnapshot, len(s.Kernels)),
	}
	for name, ks := range s.Kernels {
		out.Kernels[name] = KernelSnapshot{
			Count:   ks.Count,
			TotalNS: int64(ks.Total),
			MeanNS:  int64(ks.Mean),
			MaxNS:   int64(ks.Max),
			Flops:   ks.Flops,
			ConvNS:  int64(ks.Conv),
		}
	}
	return out
}

// Add folds another snapshot into this one (counts and totals sum, maxima
// fold, per-kernel means are recomputed from the folded totals).
func (s *StatsSnapshot) Add(o StatsSnapshot) {
	s.Tasks += o.Tasks
	s.SpanNS += o.SpanNS
	s.BusyNS += o.BusyNS
	s.CriticalPathNS += o.CriticalPathNS
	s.ConvNS += o.ConvNS
	if s.Kernels == nil {
		s.Kernels = make(map[string]KernelSnapshot, len(o.Kernels))
	}
	for name, ks := range o.Kernels {
		acc := s.Kernels[name]
		acc.Count += ks.Count
		acc.TotalNS += ks.TotalNS
		acc.Flops += ks.Flops
		acc.ConvNS += ks.ConvNS
		if ks.MaxNS > acc.MaxNS {
			acc.MaxNS = ks.MaxNS
		}
		if acc.Count > 0 {
			acc.MeanNS = acc.TotalNS / int64(acc.Count)
		}
		s.Kernels[name] = acc
	}
}

// TotalBusy returns the summed busy time of all workers (core-seconds).
func (s *Stats) TotalBusy() time.Duration {
	var b time.Duration
	for _, w := range s.Worker {
		b += w.Busy
	}
	return b
}

// Utilization returns TotalBusy / (Span × Workers) in [0, 1].
func (s *Stats) Utilization() float64 {
	if s.Span <= 0 || s.Workers == 0 {
		return 0
	}
	return float64(s.TotalBusy()) / (float64(s.Span) * float64(s.Workers))
}

// KernelNames returns the kernel families sorted by descending total time.
func (s *Stats) KernelNames() []string {
	names := make([]string, 0, len(s.Kernels))
	for k := range s.Kernels {
		names = append(names, k)
	}
	sort.Slice(names, func(i, j int) bool {
		a, b := s.Kernels[names[i]], s.Kernels[names[j]]
		if a.Total != b.Total {
			return a.Total > b.Total
		}
		return names[i] < names[j]
	})
	return names
}

// WriteTable renders the per-kernel breakdown and the worker summary as a
// fixed-width text table.
func (s *Stats) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "%-10s %6s %12s %12s %12s %8s\n", "kernel", "count", "total", "mean", "max", "share")
	total := s.TotalBusy()
	for _, name := range s.KernelNames() {
		ks := s.Kernels[name]
		share := 0.0
		if total > 0 {
			share = 100 * float64(ks.Total) / float64(total)
		}
		fmt.Fprintf(w, "%-10s %6d %12v %12v %12v %7.1f%%\n",
			name, ks.Count, ks.Total.Round(time.Microsecond), ks.Mean.Round(time.Microsecond),
			ks.Max.Round(time.Microsecond), share)
	}
	fmt.Fprintf(w, "%d tasks on %d workers: span %v, busy %v, utilization %.1f%%, critical path %v\n",
		s.Tasks, s.Workers, s.Span.Round(time.Microsecond), total.Round(time.Microsecond),
		100*s.Utilization(), s.CriticalPath.Round(time.Microsecond))
	fmt.Fprintf(w, "ready-queue depth: mean %.1f, max %d\n", s.QueueDepthMean, s.QueueDepthMax)
	if s.ConvTotal > 0 {
		fmt.Fprintf(w, "precision conversions: %v (%.1f%% of busy)\n",
			s.ConvTotal.Round(time.Microsecond), 100*float64(s.ConvTotal)/float64(total))
	}
	fmt.Fprintf(w, "dispatch: lane %d, local %d, stolen %d (local-hit rate %.1f%%)\n",
		s.LaneHits, s.LocalHits, s.Steals, 100*s.LocalHitRate())
}
